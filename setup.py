"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` also works on
offline machines whose setuptools lacks the ``wheel`` package required by
PEP 660 editable builds (fall back with
``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
