"""Repo-level pytest configuration.

Registers the ``slow`` marker that :mod:`benchmarks.conftest` applies to
every figure/table regeneration test, so the fast tier-1 suite can be run
with ``pytest -m "not slow"`` (what CI's tier-1 job does) while the full
``pytest`` invocation still runs everything.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: heavy benchmark / figure-regeneration tests "
        "(deselect with -m \"not slow\")",
    )
