"""Reverse-mode automatic differentiation as an IR-to-IR transform.

``value_and_grad(f)`` traces ``f`` into a sub-jaxpr, re-plays it through the
active context (inlining the forward equations), then walks the tape in
reverse applying each primitive's VJP rule. Because VJP rules are written in
user-level ops, the backward pass *emits equations into the same trace* —
producing exactly the combined forward+backward program of the paper's
Figure 3, with backward ``pipeline_yield`` markers generated automatically
at stage boundaries.

Closures are handled: if ``f`` closes over tracers of an outer trace (the
``state.params`` capture in Figure 4), they are lifted as free variables and
do not receive gradients (matching ``jax.grad``'s treatment of captured
tracers as constants would be wrong — JAX differentiates only explicit
arguments, which is also what we do).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.ir import ops
from repro.ir.avals import abstractify
from repro.ir.dtypes import is_float
from repro.ir.interpreter import eval_jaxpr_with_tape
from repro.ir.jaxpr import Literal, Var
from repro.ir.pytree import tree_flatten, tree_unflatten
from repro.ir.tracer import trace_flat

__all__ = ["value_and_grad", "grad"]


def value_and_grad(
    f: Callable[..., Any],
    argnums: int | Sequence[int] = 0,
    has_aux: bool = False,
) -> Callable[..., Any]:
    """Return ``g(*args) -> (value, grads)``.

    ``f`` must return a scalar loss (or ``(loss, aux)`` when ``has_aux``).
    ``grads`` matches the structure of ``args[argnums]`` (or a tuple of
    structures for tuple ``argnums``). Works eagerly on NumPy inputs and
    symbolically under a trace.
    """
    single = isinstance(argnums, int)
    argnum_tuple = (argnums,) if single else tuple(argnums)

    def wrapped(*args: Any) -> Any:
        # Flatten each argument separately so we can map gradient slots
        # back to the requested argnums.
        flats, trees, offsets = [], [], [0]
        for a in args:
            leaves, td = tree_flatten(a)
            flats.extend(leaves)
            trees.append(td)
            offsets.append(offsets[-1] + len(leaves))

        aux_cell: dict[str, Any] = {}

        def f_flat(*flat_leaves: Any) -> list[Any]:
            rebuilt = [
                tree_unflatten(trees[i], flat_leaves[offsets[i]:offsets[i + 1]])
                for i in range(len(args))
            ]
            out = f(*rebuilt)
            if has_aux:
                if not (isinstance(out, tuple) and len(out) == 2):
                    raise TypeError("has_aux=True requires f to return (loss, aux)")
                loss, aux = out
            else:
                loss, aux = out, None
            aux_leaves, aux_tree = tree_flatten(aux)
            aux_cell["tree"] = aux_tree
            aux_cell["n"] = len(aux_leaves)
            return [loss, *aux_leaves]

        in_avals = [abstractify(x) for x in flats]
        jaxpr, free_vals = trace_flat(f_flat, in_avals, name="value_and_grad")

        loss_aval = jaxpr.outvars[0].aval
        if loss_aval.shape != ():
            raise TypeError(f"loss must be scalar, got {loss_aval!r}")
        if not is_float(loss_aval.dtype):
            raise TypeError(f"loss must be floating point, got {loss_aval!r}")

        # Forward replay (inlines into any active trace), recording a tape.
        outs, tape = eval_jaxpr_with_tape(jaxpr, list(flats) + list(free_vals))
        loss = outs[0]

        # Reverse sweep.
        ct_env: dict[int, Any] = {}
        loss_atom = jaxpr.outvars[0]
        if isinstance(loss_atom, Var):
            ct_env[id(loss_atom)] = ops.ones((), loss_aval.dtype)
        # else: loss is a literal constant; all gradients are zero.

        for entry in reversed(tape):
            eqn = entry.eqn
            cts_out = [ct_env.pop(id(v), None) for v in eqn.outvars]
            if all(c is None for c in cts_out):
                continue
            if not eqn.prim.differentiable:
                # Cotangent arrived at a non-differentiable op whose inputs
                # are all non-float (comparisons etc.): drop silently only
                # when no float input could receive it.
                if any(is_float(abstractify(v).dtype) for v in entry.invals):
                    raise TypeError(
                        f"cannot differentiate through primitive {eqn.prim.name!r}"
                    )
                continue
            cts_in = eqn.prim.vjp(cts_out, entry.invals, entry.outvals, **eqn.params)
            if len(cts_in) != len(eqn.invars):
                raise RuntimeError(
                    f"vjp rule of {eqn.prim.name} returned {len(cts_in)} "
                    f"cotangents for {len(eqn.invars)} inputs"
                )
            for atom, ct in zip(eqn.invars, cts_in):
                if ct is None or isinstance(atom, Literal):
                    continue
                prev = ct_env.get(id(atom))
                ct_env[id(atom)] = ct if prev is None else ops.add(prev, ct)

        # Collect gradients for the requested arguments.
        grad_trees = []
        for an in argnum_tuple:
            if not (0 <= an < len(args)):
                raise ValueError(f"argnums {an} out of range for {len(args)} args")
            leaves = []
            for v in jaxpr.invars[offsets[an]:offsets[an + 1]]:
                g = ct_env.get(id(v))
                if g is None:
                    g = ops.zeros_like_aval(v.aval)
                leaves.append(g)
            grad_trees.append(tree_unflatten(trees[an], leaves))
        grads = grad_trees[0] if single else tuple(grad_trees)

        if has_aux:
            aux = tree_unflatten(aux_cell["tree"], outs[1:1 + aux_cell["n"]])
            return (loss, aux), grads
        return loss, grads

    return wrapped


def grad(
    f: Callable[..., Any],
    argnums: int | Sequence[int] = 0,
    has_aux: bool = False,
) -> Callable[..., Any]:
    """Like :func:`value_and_grad` but returning only the gradients (and
    aux when ``has_aux``)."""
    vg = value_and_grad(f, argnums=argnums, has_aux=has_aux)

    def wrapped(*args: Any) -> Any:
        out, grads = vg(*args)
        if has_aux:
            _, aux = out
            return grads, aux
        return grads

    return wrapped
