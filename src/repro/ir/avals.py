"""Abstract values (shape + dtype) for the mini-JAX IR.

Every variable in a :class:`~repro.ir.jaxpr.Jaxpr` carries a
:class:`ShapedArray`, the same abstraction JAX uses: enough structure for
the SPMD partitioner and the MPMD stage splitter to reason about programs
without concrete data.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.ir import dtypes
from repro.ir.dtypes import DType

__all__ = ["ShapedArray", "abstractify", "broadcast_shapes"]


@dataclasses.dataclass(frozen=True)
class ShapedArray:
    """Static shape and dtype of an array value.

    Attributes:
        shape: tuple of ints (static shapes only; the paper's pipeline
            transformations never need dynamic shapes).
        dtype: logical :class:`~repro.ir.dtypes.DType`.
    """

    shape: tuple[int, ...]
    dtype: DType

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        if not isinstance(self.dtype, DType):
            object.__setattr__(self, "dtype", dtypes.canonicalize_dtype(self.dtype))

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Logical size in bytes (uses the *logical* itemsize, e.g. 2 for
        bf16), which is what the memory model and object store account."""
        return self.size * self.dtype.itemsize

    def update(self, shape: tuple[int, ...] | None = None, dtype: DType | None = None) -> "ShapedArray":
        """Return a copy with ``shape`` and/or ``dtype`` replaced."""
        return ShapedArray(
            self.shape if shape is None else tuple(shape),
            self.dtype if dtype is None else dtype,
        )

    def __repr__(self) -> str:
        dims = ",".join(str(d) for d in self.shape)
        return f"{self.dtype.name}[{dims}]"


def abstractify(value: object) -> ShapedArray:
    """Compute the :class:`ShapedArray` of a concrete value.

    Accepts NumPy arrays, Python scalars, and anything with ``.aval``
    (tracers and device buffers).
    """
    aval = getattr(value, "aval", None)
    if aval is not None:
        return aval
    if isinstance(value, (bool, np.bool_)):
        return ShapedArray((), dtypes.bool_)
    if isinstance(value, (int, np.integer)):
        return ShapedArray((), dtypes.int32)
    if isinstance(value, (float, np.floating)):
        return ShapedArray((), dtypes.float32)
    arr = np.asarray(value)
    return ShapedArray(arr.shape, dtypes.canonicalize_dtype(arr.dtype))


def broadcast_shapes(*shapes: tuple[int, ...]) -> tuple[int, ...]:
    """NumPy broadcasting rule over static shapes.

    Raises:
        ValueError: if the shapes are not broadcast-compatible.
    """
    try:
        return tuple(int(d) for d in np.broadcast_shapes(*shapes))
    except ValueError as e:
        raise ValueError(f"shapes are not broadcastable: {shapes}") from e
