"""Jaxpr evaluation (the tree-walking reference interpreter).

:func:`eval_jaxpr` applies each equation through :func:`repro.ir.tracer.bind`
rather than calling impls directly; under an active trace this *inlines* the
jaxpr into the current trace (the mechanism autodiff and ``accumulate_grads``
use to splice sub-programs into an outer program), and otherwise it
evaluates concretely with NumPy.

This is the *reference* backend: it re-resolves atoms through an
``id()``-keyed env dict and re-runs ``abstract_eval`` on every call.  The
steady-state hot path uses :mod:`repro.ir.linearize`, which lowers a jaxpr
once into a slot-indexed :class:`~repro.ir.linearize.LinearProgram` and is
differential-tested against this interpreter (pick with
``task_backend="linear" | "interpret"``).  Inlining under a trace and
tape recording for autodiff always go through this module.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.ir import tracer
from repro.ir.jaxpr import Eqn, Jaxpr, Literal, Var

__all__ = ["eval_jaxpr", "eval_jaxpr_with_tape", "TapeEntry"]


class TapeEntry:
    """One executed equation: the eqn plus the concrete/traced values that
    flowed through it. Consumed by reverse-mode AD."""

    __slots__ = ("eqn", "invals", "outvals")

    def __init__(self, eqn: Eqn, invals: list[Any], outvals: list[Any]):
        self.eqn = eqn
        self.invals = invals
        self.outvals = outvals


def _bind_env(jaxpr: Jaxpr, args: Sequence[Any]) -> dict[int, Any]:
    if len(args) != len(jaxpr.invars):
        raise TypeError(
            f"jaxpr expects {len(jaxpr.invars)} inputs, got {len(args)}"
        )
    return {id(v): a for v, a in zip(jaxpr.invars, args)}


def _read(env: dict[int, Any], atom: Var | Literal) -> Any:
    if isinstance(atom, Literal):
        return atom.value
    return env[id(atom)]


def eval_jaxpr(jaxpr: Jaxpr, args: Sequence[Any]) -> list[Any]:
    """Evaluate ``jaxpr`` on ``args`` (concrete arrays or tracers).

    Returns the flat list of outputs.
    """
    env = _bind_env(jaxpr, args)
    for eqn in jaxpr.eqns:
        invals = [_read(env, a) for a in eqn.invars]
        out = tracer.bind(eqn.prim, *invals, **eqn.params)
        outs = out if eqn.prim.multiple_results else [out]
        for v, val in zip(eqn.outvars, outs):
            env[id(v)] = val
    return [_read(env, a) for a in jaxpr.outvars]


def eval_jaxpr_with_tape(jaxpr: Jaxpr, args: Sequence[Any]) -> tuple[list[Any], list[TapeEntry]]:
    """Like :func:`eval_jaxpr` but also records a tape for reverse-mode AD."""
    env = _bind_env(jaxpr, args)
    tape: list[TapeEntry] = []
    for eqn in jaxpr.eqns:
        invals = [_read(env, a) for a in eqn.invars]
        out = tracer.bind(eqn.prim, *invals, **eqn.params)
        outs = out if eqn.prim.multiple_results else [out]
        for v, val in zip(eqn.outvars, outs):
            env[id(v)] = val
        tape.append(TapeEntry(eqn, invals, list(outs)))
    return [_read(env, a) for a in jaxpr.outvars], tape
