"""Dtype registry for the mini-JAX IR.

We track dtypes separately from NumPy for one reason the paper cares about:
**byte accounting**. Training in the paper runs at BF16 while NumPy has no
native bfloat16, so :class:`DType` records the *logical* itemsize (2 bytes
for bf16) used by the memory model and the runtime object store, while the
*storage* dtype used for actual NumPy computation may be wider (float32).
Numerics are therefore exact while memory/communication volumes match the
paper's precision.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "DType",
    "float32",
    "bfloat16",
    "float16",
    "int32",
    "int64",
    "bool_",
    "NP_CANONICAL",
    "canonicalize_dtype",
    "promote_types",
    "is_float",
]


@dataclasses.dataclass(frozen=True)
class DType:
    """A logical dtype.

    Attributes:
        name: human-readable name (``"bfloat16"``).
        np_dtype: NumPy dtype used for actual computation.
        itemsize: logical bytes per element, used for all memory and
            communication accounting (2 for bf16 even though computation is
            carried out in float32).
        inexact: whether the dtype supports gradients.
    """

    name: str
    np_dtype: np.dtype
    itemsize: int
    inexact: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


float32 = DType("float32", np.dtype(np.float32), 4, True)
# bfloat16 computes in float32 (NumPy has no bf16) but is *accounted* at
# 2 bytes/element, matching the BF16 training runs in the paper.
bfloat16 = DType("bfloat16", np.dtype(np.float32), 2, True)
float16 = DType("float16", np.dtype(np.float16), 2, True)
int32 = DType("int32", np.dtype(np.int32), 4, False)
int64 = DType("int64", np.dtype(np.int64), 8, False)
bool_ = DType("bool", np.dtype(np.bool_), 1, False)

#: registry interning the canonical DType singletons by name, so pickling
#: round-trips to the *same objects* (dataclass pickling would otherwise
#: rebuild fresh DType/np.dtype instances — np.dtype does not unpickle to
#: its singleton — and downstream identity-based fast paths, e.g. the
#: codegen backend's dtype-prediction tables regenerating source on an mp
#: worker, would silently degrade to the dynamic-check slow path).
_BY_NAME: dict[str, DType] = {
    d.name: d for d in (float32, bfloat16, float16, int32, int64, bool_)
}


def _intern(name: str) -> DType:
    return _BY_NAME[name]


def _dtype_reduce(self: DType):
    canon = _BY_NAME.get(self.name)
    if canon is not None and canon is self:
        return (_intern, (self.name,))
    return (  # pragma: no cover - no ad-hoc DTypes exist today
        DType, (self.name, self.np_dtype, self.itemsize, self.inexact)
    )


DType.__reduce__ = _dtype_reduce  # type: ignore[method-assign]

_BY_NP: dict[np.dtype, DType] = {
    np.dtype(np.float64): float32,  # canonicalized down, like JAX's x64 default
    np.dtype(np.float32): float32,
    np.dtype(np.float16): float16,
    np.dtype(np.int64): int32,  # canonicalized down
    np.dtype(np.int32): int32,
    np.dtype(np.int16): int32,
    np.dtype(np.int8): int32,
    np.dtype(np.uint32): int32,
    np.dtype(np.uint64): int32,
    np.dtype(np.bool_): bool_,
}


#: NumPy-level view of the canonicalization table: the storage dtype each
#: NumPy dtype canonicalizes to (float64 -> float32, int64 -> int32, ...).
#: Hot paths (the linear task VM) use this to normalize operands with one
#: dict lookup instead of a full ``abstractify`` round-trip.
NP_CANONICAL: dict[np.dtype, np.dtype] = {k: v.np_dtype for k, v in _BY_NP.items()}


def canonicalize_dtype(dtype: object) -> DType:
    """Map a NumPy dtype / Python scalar type / DType to a logical DType.

    Like JAX without ``jax_enable_x64``: float64 canonicalizes to float32
    and int64 to int32 so that results are deterministic across platforms.
    """
    if isinstance(dtype, DType):
        return dtype
    npd = np.dtype(dtype)
    try:
        return _BY_NP[npd]
    except KeyError:
        raise TypeError(f"unsupported dtype: {dtype!r}") from None


def is_float(dtype: DType) -> bool:
    """True if ``dtype`` participates in differentiation."""
    return dtype.inexact


def promote_types(a: DType, b: DType) -> DType:
    """Binary dtype promotion.

    The lattice is small and explicit: bool < int32 < int64 < float16/bf16 <
    float32. Mixing bf16 with f16 promotes to float32 (they are unordered).
    """
    if a is b:
        return a
    order = {bool_: 0, int32: 1, int64: 2, float16: 3, bfloat16: 3, float32: 4}
    if order[a] == order[b]:  # float16 vs bfloat16
        return float32
    return a if order[a] > order[b] else b
