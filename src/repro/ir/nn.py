"""Neural-network composites built purely from :mod:`repro.ir.ops`.

Everything here is a composition of primitives (no new primitives, no new
VJP rules) — the same layering JAX uses for ``jax.nn``. These are the
building blocks of the example models (FFN of Fig. 1/4, mini-GPT).
"""

from __future__ import annotations

import math
from typing import Any

from repro.ir import dtypes, ops

__all__ = [
    "relu", "gelu", "silu", "sigmoid",
    "softmax", "log_softmax", "logsumexp",
    "one_hot", "softmax_cross_entropy", "label_smoothing",
    "layer_norm", "rms_norm", "linear",
    "causal_mask",
]

ArrayLike = Any


def relu(x: ArrayLike) -> ArrayLike:
    """Rectified linear unit."""
    return ops.maximum(x, 0.0)


def sigmoid(x: ArrayLike) -> ArrayLike:
    """Logistic sigmoid, written in terms of tanh for numerical stability."""
    return ops.mul(0.5, ops.add(1.0, ops.tanh(ops.mul(0.5, x))))


def silu(x: ArrayLike) -> ArrayLike:
    """SiLU / swish activation (used by Llama's SwiGLU MLP)."""
    return ops.mul(x, sigmoid(x))


def gelu(x: ArrayLike, approximate: bool = True) -> ArrayLike:
    """Gaussian error linear unit (GPT-3's activation).

    ``approximate=True`` uses the tanh approximation (what most trainers
    run); ``False`` uses the exact erf form.
    """
    if approximate:
        c = math.sqrt(2.0 / math.pi)
        inner = ops.mul(c, ops.add(x, ops.mul(0.044715, ops.mul(x, ops.mul(x, x)))))
        return ops.mul(0.5, ops.mul(x, ops.add(1.0, ops.tanh(inner))))
    return ops.mul(0.5, ops.mul(x, ops.add(1.0, ops.erf(ops.div(x, math.sqrt(2.0))))))


def logsumexp(x: ArrayLike, axis: int = -1, keepdims: bool = False) -> ArrayLike:
    """Numerically-stable log-sum-exp over ``axis``."""
    m = ops.stop_gradient(ops.reduce_max(x, axes=axis, keepdims=True))
    shifted = ops.sub(x, m)
    out = ops.add(ops.log(ops.reduce_sum(ops.exp(shifted), axes=axis, keepdims=True)), m)
    if not keepdims:
        out = ops.squeeze(out, axis % len(ops.shape_of(x)))
    return out


def softmax(x: ArrayLike, axis: int = -1) -> ArrayLike:
    """Softmax over ``axis`` with max-subtraction stabilisation."""
    m = ops.stop_gradient(ops.reduce_max(x, axes=axis, keepdims=True))
    e = ops.exp(ops.sub(x, m))
    return ops.div(e, ops.reduce_sum(e, axes=axis, keepdims=True))


def log_softmax(x: ArrayLike, axis: int = -1) -> ArrayLike:
    """Log-softmax over ``axis``."""
    return ops.sub(x, logsumexp(x, axis=axis, keepdims=True))


def one_hot(labels: ArrayLike, num_classes: int, dtype=dtypes.float32) -> ArrayLike:
    """One-hot encode integer ``labels`` to ``(..., num_classes)``."""
    classes = ops.iota(num_classes)
    expanded = ops.expand_dims(labels, axis=len(ops.shape_of(labels)))
    return ops.convert(ops.equal(expanded, classes), dtype)


def label_smoothing(onehot: ArrayLike, alpha: float, num_classes: int) -> ArrayLike:
    """Smooth one-hot targets: ``(1 - a) * y + a / K`` (Figure 3, line 3)."""
    return ops.add(ops.mul(1.0 - alpha, onehot), alpha / num_classes)


def softmax_cross_entropy(logits: ArrayLike, targets: ArrayLike) -> ArrayLike:
    """Cross entropy between ``logits (..., K)`` and dense ``targets
    (..., K)`` (one-hot or smoothed). Returns per-example loss ``(...)``."""
    return ops.neg(ops.reduce_sum(ops.mul(targets, log_softmax(logits)), axes=-1))


def layer_norm(x: ArrayLike, gamma: ArrayLike, beta: ArrayLike, eps: float = 1e-5) -> ArrayLike:
    """Layer normalisation over the last axis."""
    mu = ops.mean(x, axes=-1, keepdims=True)
    xc = ops.sub(x, mu)
    var = ops.mean(ops.mul(xc, xc), axes=-1, keepdims=True)
    inv = ops.rsqrt(ops.add(var, eps))
    return ops.add(ops.mul(ops.mul(xc, inv), gamma), beta)


def rms_norm(x: ArrayLike, gamma: ArrayLike, eps: float = 1e-6) -> ArrayLike:
    """RMS normalisation over the last axis (Llama-style)."""
    ms = ops.mean(ops.mul(x, x), axes=-1, keepdims=True)
    return ops.mul(ops.mul(x, ops.rsqrt(ops.add(ms, eps))), gamma)


def linear(x: ArrayLike, w: ArrayLike, b: ArrayLike | None = None) -> ArrayLike:
    """Affine map ``x @ w (+ b)``."""
    out = ops.matmul(x, w)
    if b is not None:
        out = ops.add(out, b)
    return out


def causal_mask(seq_len: int) -> ArrayLike:
    """Additive causal attention mask: 0 on/below the diagonal, -1e9 above."""
    rows = ops.expand_dims(ops.iota(seq_len), 1)
    cols = ops.expand_dims(ops.iota(seq_len), 0)
    allowed = ops.greater_equal(rows, cols)
    return ops.where(allowed, ops.zeros(()), ops.full((), -1e9))
