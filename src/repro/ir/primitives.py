"""Primitive machinery: the extension point every op is built from.

A :class:`Primitive` bundles three rules, mirroring JAX:

- ``impl``: concrete NumPy evaluation;
- ``abstract_eval``: shape/dtype inference used during tracing;
- ``vjp``: reverse-mode rule building cotangents for the inputs. VJP rules
  are written in terms of the user-level ops in :mod:`repro.ir.ops`, so the
  same rule works both eagerly (NumPy in, NumPy out) and under a trace
  (tracers in, new equations out). This is what lets autodiff be an
  IR-to-IR transform, which the MPMD stage splitter depends on (backward
  ``pipeline_yield`` markers are emitted by a VJP rule like any other op).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.ir.avals import ShapedArray

__all__ = ["Primitive", "registry"]

registry: dict[str, "Primitive"] = {}


class Primitive:
    """A named operation with pluggable impl / abstract-eval / vjp rules.

    Attributes:
        name: unique op name (also the key in :data:`registry`).
        multiple_results: if True, ``bind`` returns a list of values.
        elementwise: set by :mod:`repro.ir.ops` on ops whose impl is a pure
            per-element map; the linear task VM
            (:mod:`repro.ir.linearize`) fuses single-consumer chains of
            these into one composite callable.
        returns_fresh: impl always allocates a new array (never returns a
            view of an input). Only values produced by fresh ops are
            eligible as in-place donation targets in the linear VM.
        inplace_fn: optional NumPy ufunc equivalent of the impl that
            accepts ``out=``; enables buffer donation when the operand
            dies at this equation.
        identity_alias: impl is the identity on its (single) input value
            (``pipeline_yield``, ``stop_gradient``); the linear VM elides
            the equation entirely by aliasing slots.
    """

    def __init__(self, name: str, multiple_results: bool = False):
        if name in registry:
            raise ValueError(f"duplicate primitive name: {name}")
        self.name = name
        self.multiple_results = multiple_results
        self._impl: Callable[..., Any] | None = None
        self._abstract: Callable[..., Any] | None = None
        self._vjp: Callable[..., Sequence[Any]] | None = None
        self.elementwise = False
        self.returns_fresh = False
        self.inplace_fn: Callable[..., Any] | None = None
        self.identity_alias = False
        registry[name] = self

    # -- rule registration (decorator style) --------------------------------
    def def_impl(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Register the concrete NumPy implementation."""
        self._impl = fn
        return fn

    def def_abstract(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Register the abstract (shape/dtype) evaluation rule."""
        self._abstract = fn
        return fn

    def def_vjp(self, fn: Callable[..., Sequence[Any]]) -> Callable[..., Sequence[Any]]:
        """Register the reverse-mode rule.

        The rule receives ``(cts_out, invals, outvals, **params)`` — output
        cotangents, primal inputs, primal outputs — and returns one
        cotangent (or ``None``) per input.
        """
        self._vjp = fn
        return fn

    # -- rule access ---------------------------------------------------------
    def impl(self, *args: Any, **params: Any) -> Any:
        """Evaluate concretely."""
        if self._impl is None:
            raise NotImplementedError(f"no impl rule for {self.name}")
        return self._impl(*args, **params)

    def abstract_eval(self, *avals: ShapedArray, **params: Any) -> Any:
        """Infer output aval(s) from input avals."""
        if self._abstract is None:
            raise NotImplementedError(f"no abstract rule for {self.name}")
        return self._abstract(*avals, **params)

    def vjp(self, cts_out: Sequence[Any], invals: Sequence[Any], outvals: Sequence[Any], **params: Any) -> Sequence[Any]:
        """Apply the reverse-mode rule."""
        if self._vjp is None:
            raise NotImplementedError(f"{self.name} is not differentiable")
        return self._vjp(cts_out, invals, outvals, **params)

    @property
    def differentiable(self) -> bool:
        """Whether a VJP rule is registered."""
        return self._vjp is not None

    def bind(self, *args: Any, **params: Any) -> Any:
        """Apply the primitive: traces when a trace is active, otherwise
        evaluates eagerly with NumPy."""
        from repro.ir import tracer  # local import: tracer depends on this module

        return tracer.bind(self, *args, **params)

    def __reduce__(self):
        """Pickle by registry name.

        Primitives are process-wide singletons whose rules (impl /
        abstract / vjp) are frequently lambdas, so pickling the object
        itself would both fail and break the identity invariants the
        compiler relies on (``eqn.prim is registry[name]``).  Reducing to
        a registry lookup keeps jaxprs — and through them compiled task
        payloads — spawn-context picklable for the multi-process MPMD
        backend (:mod:`repro.runtime.mp`).
        """
        return _lookup, (self.name,)

    def __repr__(self) -> str:
        return f"Primitive({self.name})"


def _lookup(name: str) -> "Primitive":
    """Unpickling hook: resolve a primitive by name in this process's
    registry (populated by importing :mod:`repro.ir.ops` et al.)."""
    import repro.ir.ops  # noqa: F401  (registers the standard primitives)
    import repro.core.accumulate  # noqa: F401  (pipeline_loop)
    import repro.ir.pipeline  # noqa: F401  (pipeline_yield markers)
    import repro.spmd.collectives  # noqa: F401  (shard_constraint et al.)

    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"cannot unpickle primitive {name!r}: not registered in this "
            "process (import the module that defines it first)"
        ) from None
