"""Codegen task backend: a lowered :class:`~repro.ir.linearize.LinearProgram`
emitted as one Python function, ``compile()``d once, cached on jaxpr identity.

The linear VM (:mod:`repro.ir.linearize`) already pays tracing, slot
resolution, folding, fusion, liveness, and donation planning exactly once —
but its steady state still runs a Python dispatch loop: one 7-tuple unpack,
one operand-gather loop, and one dtype check *per operand per instruction
per microbatch per step*.  This module removes that residue.  It walks the
lowered instruction list and prints it back out as straight-line Python
source over named locals:

- each slot becomes a local variable (``v12 = _f3(x0, _kc1)``), so operand
  reads are LOAD_FAST, not list indexing through an interpreter loop;
- fused elementwise chains are inlined as nested expressions — no
  :class:`~repro.ir.linearize.FusedChain` register file at runtime;
- liveness frees are emitted as ``v12 = None`` statements;
- buffer donations are emitted as ``out=`` keyword calls;
- ``functools.partial`` wrappers are unwrapped: static params are emitted
  as literal keyword arguments bound to globals, so each instruction costs
  exactly one impl call frame;
- operand canonicalization is hoisted from per-consumption to
  per-production, and *elided entirely* where a static dtype-stability
  analysis proves it a no-op (see below).

The source is ``compile()``d and ``exec``'d once at construction; the hot
path is then a single call of the generated function.  ``program.source``
exposes the text (also via ``python -m repro dump-codegen``), and the
generated file is registered with :mod:`linecache` so tracebacks show real
lines.

Dtype-stability analysis
------------------------

The VM canonicalizes every operand at every consumption with
:data:`~repro.ir.dtypes.NP_CANONICAL` (``float64 -> float32`` etc.).  For
values whose runtime dtype is statically known that check is dead code.
The emitter runs a forward dataflow over the instruction list: program
inputs are *assumed* to match their traced avals (after entry
canonicalization — the same static contract an AOT compiler holds callers
to; the entry check still converts wider storage like float64 down),
constants are pre-canonicalized at build time so their dtype is exact, and
an instruction's output dtype is propagated when every operand dtype is
known to be float32/float16/bool and the traced output dtype is too —
NumPy's float ufuncs, contractions, reductions, and comparisons are closed
over those dtypes.  Everything else (integer arithmetic, ``argmax``-style
dtype jumps, unknown inputs) keeps a dynamic per-value check, so programs
over canonical float data run check-free while the general case stays
bit-identical to the VM.

Equivalence: results are **bit-identical** to ``task_backend="linear"``
(and therefore to :func:`~repro.ir.interpreter.eval_jaxpr`) for arguments
conforming to the traced avals; ``tests/core/test_codegen_backend.py``
asserts this across the whole schedule gallery on every engine.  Under an
active trace the program falls back to ``eval_jaxpr`` so inlining
semantics (autodiff, accumulate splicing) are preserved.  Pickling ships
only the jaxpr (``__reduce__`` re-lowers and re-generates source on the
receiving side), so ``engine="mp"`` and the persistent ``ActorPool`` ship
codegen programs unchanged.
"""

from __future__ import annotations

import itertools
import linecache
import weakref
from functools import partial
from typing import Any, Sequence

import numpy as np

from repro.ir import tracer
from repro.ir.dtypes import NP_CANONICAL
from repro.ir.interpreter import eval_jaxpr
from repro.ir.jaxpr import Jaxpr
from repro.ir.linearize import FusedChain, LinearProgram, RecentPins, _consume, linearize

__all__ = ["CodegenProgram", "codegen", "eval_jaxpr_codegen"]

#: dtypes every impl in the op set is closed over: operands of these dtypes
#: produce exactly the traced output dtype, so canonicalization checks on
#: such values are statically dead and elided from the generated source
_STABLE = frozenset(
    {np.dtype(np.float32), np.dtype(np.float16), np.dtype(np.bool_)}
)

#: impls whose output dtype equals one operand's *actual* dtype exactly,
#: whatever it is — layout ops (np.reshape/transpose/... preserve storage),
#: gathers (np.take returns the table's dtype), and scatter_add (the output
#: buffer is allocated with the updates' dtype); the value is that operand's
#: position
_PRESERVES = {
    "reshape": 0,
    "transpose": 0,
    "broadcast_to": 0,
    "slice": 0,
    "unslice": 0,
    "take": 0,
    "scatter_add": 1,
    "shard_constraint": 0,
}

#: impls that emit exactly the traced target dtype regardless of operand
#: storage (astype-style conversions)
_STATIC_OUT = frozenset({"convert"})

#: multi-operand promotion that collapses to identity when every operand
#: shares one dtype (np.concatenate)
_ALL_SAME = frozenset({"concatenate"})

#: kernel specializations: primitives whose impl is *exactly* one NumPy
#: C entry point (possibly behind a Python wrapper frame in ops.py).
#: Generated code calls the C function directly — same kernel, same bits,
#: one frame per instruction instead of two.  Comparison impls wrap the
#: ufunc in ``np.asarray(..., bool)``, which is the identity for every
#: non-0-d result (the ufuncs already return bool), so binding the raw
#: ufunc is value- and dtype-identical.
_UFUNC_IMPLS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "maximum": np.maximum,
    "minimum": np.minimum,
    "pow": np.power,
    "greater": np.greater,
    "greater_equal": np.greater_equal,
    "less": np.less,
    "less_equal": np.less_equal,
    "equal": np.equal,
    "not_equal": np.not_equal,
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "tanh": np.tanh,
    "sqrt": np.sqrt,
    "sin": np.sin,
    "cos": np.cos,
    "abs": np.abs,
    "sign": np.sign,
    "logical_not": np.logical_not,
    "matmul": np.matmul,
    "where": np.where,
}

# ufunc -> Python operator: ``a * b`` on ndarrays invokes the exact same
# ufunc through the number-protocol slot, ~100ns cheaper than the explicit
# ``np.multiply(a, b)`` call (no argument-tuple build, no name load)
_OPERATOR_OF = {
    np.add: "+",
    np.subtract: "-",
    np.multiply: "*",
    np.true_divide: "/",
    np.power: "**",
    np.greater: ">",
    np.greater_equal: ">=",
    np.less: "<",
    np.less_equal: "<=",
    np.equal: "==",
    np.not_equal: "!=",
}

_FLOATS = frozenset({np.dtype(np.float32), np.dtype(np.float16)})


def _predict(name: str, ins_known: list, out_dts: tuple):
    """Statically known output dtype of one instruction (or chain step),
    or ``None`` when the runtime dtype cannot be proven.

    ``ins_known`` holds the operands' statically known post-
    canonicalization dtypes (``None`` = unknown).  The general rule is
    float closure: NumPy's float ufuncs, contractions, reductions, and
    comparisons over float32/float16/bool operands produce exactly the
    traced output dtype.  ``_PRESERVES``/``_STATIC_OUT``/``_ALL_SAME``
    extend that with per-primitive structure (index operands cannot leak
    into the output dtype, astype is exact, ...)."""
    if name in _STATIC_OUT:
        return out_dts[0]
    p = _PRESERVES.get(name)
    if p is not None:
        return ins_known[p]
    if name in _ALL_SAME:
        d0 = ins_known[0]
        if d0 is not None and all(t is d0 for t in ins_known):
            return d0
        return None
    if all(t in _STABLE for t in ins_known) and all(d in _STABLE for d in out_dts):
        return out_dts[0]
    return None

#: chains longer than this fall back to named temporaries instead of nested
#: expressions (keeps generated expressions within parser-friendly depth)
_MAX_NEST = 40

#: multi-operand elementwise primitives whose NumPy kernels broadcast
#: natively: feeding them a pre-``broadcast_to`` operand or the original
#: (smaller) value is the same C loop over the same elements, so an explicit
#: ``broadcast_to`` whose consumers all sit here can be elided entirely.
#: Unary elementwise ops are excluded — their output takes the operand's
#: shape, so elision would shrink the result.
_BCAST_SINKS = frozenset(
    {
        "add", "sub", "mul", "div", "pow", "maximum", "minimum",
        "greater", "greater_equal", "less", "less_equal", "equal",
        "not_equal", "where",
    }
)

_fresh = itertools.count()


def _plan_broadcast_elision(instrs, instr_names, instr_out_shp, shape, out_set):
    """Decide which ``broadcast_to`` instructions can delegate to the
    consumers' native NumPy broadcasting.

    Explicit broadcasts are materialized zero-stride views that are *slower*
    to produce and to consume than letting the consuming ufunc broadcast the
    original operand (NumPy's inner loops pay for the degenerate strides).
    A use of a broadcast output may read the pre-broadcast value instead
    when (a) the consumer is a multi-operand elementwise kernel
    (``_BCAST_SINKS``, including fused-chain steps), (b) the statically
    known operand shapes still broadcast to the consumer's traced output
    shape after substitution, and (c) the consumer does not donate into the
    substituted operand position (``out=`` must match the result shape).
    The source value's lifetime is extended across the rewritten uses: the
    plan rejects the elision if the source buffer is donated away in
    between, and relocates its liveness free when it originally died
    earlier.  A broadcast whose uses are all rewritten (and which is not a
    program output) is dropped from the emitted source entirely.

    Returns ``(subs, chain_subs, dropped, moved_free)`` where ``subs`` maps
    ``(instr_idx, operand_pos)`` and ``chain_subs`` maps ``(instr_idx,
    step_idx, operand_pos)`` to the replacement slot, ``dropped`` is the set
    of fully elided instruction indices, and ``moved_free`` maps a source
    slot to the instruction index after which its relocated free runs.
    """
    subs: dict[tuple[int, int], int] = {}
    chain_subs: dict[tuple[int, int, int], int] = {}
    dropped: set[int] = set()
    moved_free: dict[int, int] = {}

    free_at: dict[int, int] = {}
    sites: dict[int, list[tuple]] = {}
    for i2, (fn2, srcs2, _, _, _, _, fr2) in enumerate(instrs):
        for s2 in fr2:
            free_at[s2] = i2
        if isinstance(fn2, FusedChain):
            for k2, st in enumerate(fn2.steps):
                for p2, r2 in enumerate(st[1]):
                    if r2 < fn2.n_ext:
                        sites.setdefault(srcs2[r2], []).append(("c", i2, k2, p2))
        else:
            for p2, s2 in enumerate(srcs2):
                sites.setdefault(s2, []).append(("i", i2, p2))

    def fits(shps, out_shp):
        if any(x is None for x in shps):
            return False
        try:
            return tuple(np.broadcast_shapes(*shps)) == tuple(out_shp)
        except ValueError:
            return False

    for b, (fnb, srcsb, dstb, dstsb, dposb, _, _) in enumerate(instrs):
        if (
            instr_names[b] != "broadcast_to"
            or isinstance(fnb, FusedChain)
            or dstsb is not None
            or dposb >= 0
        ):
            continue
        s, d = srcsb[0], dstb
        uses = sites.get(d, [])
        if not uses:
            continue
        # tentative rewrites for *this* broadcast; committed only if the
        # source's lifetime can be extended safely
        tsubs: dict[tuple[int, int], int] = {}
        tchain: dict[tuple[int, int, int], int] = {}
        all_ok = True
        for u in uses:
            if u[0] == "i":
                _, i2, p2 = u
                fn2, srcs2, _, dsts2, dpos2, _, _ = instrs[i2]
                if instr_names[i2] not in _BCAST_SINKS or dsts2 is not None or dpos2 == p2:
                    all_ok = False
                    continue
                shps = []
                for q, s3 in enumerate(srcs2):
                    if q == p2:
                        shps.append(shape.get(s))
                    else:
                        eff = tsubs.get((i2, q), subs.get((i2, q), s3))
                        shps.append(shape.get(eff))
                if not fits(shps, instr_out_shp[i2][0]):
                    all_ok = False
                    continue
                tsubs[(i2, p2)] = s
            else:
                _, i2, k2, p2 = u
                fn2, srcs2 = instrs[i2][0], instrs[i2][1]
                st = fn2.steps[k2]
                if (
                    fn2.out_shapes is None
                    or instr_names[i2].split("+")[k2] not in _BCAST_SINKS
                    or st[3] == p2
                ):
                    all_ok = False
                    continue
                shps = []
                for q, r3 in enumerate(st[1]):
                    if q == p2:
                        shps.append(shape.get(s))
                    elif r3 < fn2.n_ext:
                        key = (i2, k2, q)
                        eff = tchain.get(key, chain_subs.get(key, srcs2[r3]))
                        shps.append(shape.get(eff))
                    else:
                        shps.append(fn2.out_shapes[r3 - fn2.n_ext])
                if not fits(shps, fn2.out_shapes[k2]):
                    all_ok = False
                    continue
                tchain[(i2, k2, p2)] = s
        if not tsubs and not tchain:
            continue
        last = max(k[0] for k in tsubs) if tsubs else -1
        for k in tchain:
            last = max(last, k[0])
        # the source buffer must survive untouched through the last
        # rewritten use: reject if it is donated away in between
        donated = False
        for i2 in range(b + 1, last + 1):
            fn2, srcs2, _, _, dpos2, _, _ = instrs[i2]
            if not isinstance(fn2, FusedChain) and dpos2 >= 0 and srcs2[dpos2] == s:
                donated = True
                break
        if donated:
            continue
        fa = moved_free.get(s, free_at.get(s))
        if fa is not None and b <= fa < last:
            moved_free[s] = last
        subs.update(tsubs)
        chain_subs.update(tchain)
        if all_ok and d not in out_set:
            dropped.add(b)
    return subs, chain_subs, dropped, moved_free


def _emit(base: LinearProgram) -> tuple[str, dict, dict]:
    """Render ``base``'s instruction list as the source of one Python
    function ``program(a)``.

    Returns ``(source, globals, counters)`` where ``globals`` maps the
    ``_f*/_p*/_k*`` names referenced by the source to impls, static
    params, and constants, and ``counters`` holds the static per-run call
    accounting (``calls`` = guaranteed impl/asarray call sites,
    ``checks`` = residual dynamic dtype checks).
    """
    jaxpr = base.jaxpr
    n_in = base._n_in
    n_consts = base._n_consts
    template = base._template
    instrs = base._instrs
    instr_names = base._instr_names
    instr_out_dts = base._instr_out_dtypes
    instr_out_shp = base._instr_out_shapes
    out_slots = base._out_slots
    out_set = set(out_slots)
    canon_out = set(base._canon_out)

    consumed: set[int] = set()
    for ins in instrs:
        consumed.update(ins[1])

    env: dict[str, Any] = {
        "_A": np.asarray,
        "_G": NP_CANONICAL.get,
        "_C": _consume,
        "_Z": np.zeros,
    }
    counters = {"calls": 0, "checks": 0}

    #: slot -> static (traced) shape, for the broadcast-elision and
    #: unslice-precompute rewrites below
    shape: dict[int, tuple] = {}
    for i, v in enumerate(jaxpr.invars):
        shape[i] = tuple(v.aval.shape)
    for ci in range(n_consts):
        shape[n_in + ci] = np.shape(template[n_in + ci])
    for idx, ins in enumerate(instrs):
        produced = ins[3] if ins[3] is not None else (ins[2],)
        for k, d in enumerate(produced):
            shape[d] = tuple(instr_out_shp[idx][k])

    subs, chain_subs, dropped, moved_free = _plan_broadcast_elision(
        instrs, instr_names, instr_out_shp, shape, out_set
    )
    moved_by_site: dict[int, list[int]] = {}
    for s, site in moved_free.items():
        moved_by_site.setdefault(site, []).append(s)

    #: slot -> statically known (post-canonicalization) runtime dtype
    known: dict[int, np.dtype] = {}
    #: out slots that needed a separate canonical name for consumers
    dual: set[int] = set()

    # constants: consumers read a pre-canonicalized global (``_kc*``, built
    # once here with the exact conversion the VM performs per consumption);
    # the raw value (``_k*``) survives only when the slot is a program
    # output, mirroring the VM's raw slot template
    for ci in range(n_consts):
        s = n_in + ci
        if s in consumed:
            kc = _consume(template[s])
            env[f"_kc{ci}"] = kc
            known[s] = kc.dtype
        if s in out_set:
            env[f"_k{ci}"] = template[s]

    # inputs: assumed to conform to their traced avals (see module doc);
    # the entry check below still canonicalizes wider storage dynamically
    for i, v in enumerate(jaxpr.invars):
        d = v.aval.dtype.np_dtype
        if NP_CANONICAL.get(d) is d:
            known[i] = d

    def raw(s: int) -> str:
        if s < n_in:
            return f"x{s}"
        if s < n_in + n_consts:
            return f"_k{s - n_in}"
        return f"v{s}"

    def use(s: int) -> str:
        if n_in <= s < n_in + n_consts:
            return f"_kc{s - n_in}"
        return f"c{s}" if s in dual else raw(s)

    lines: list[str] = [f"def program(a):"]

    def emit(stmt: str) -> None:
        lines.append("    " + stmt)

    def specialize(tag: str, name: str, fn: Any, args: list[str], knowns) -> str | None:
        """Render a call directly against the impl's underlying NumPy C
        entry point when that is provably bit-identical, else ``None``.

        - ``_UFUNC_IMPLS``: the ops.py impl *is* that ufunc (modulo a
          wrapper frame / a no-op bool asarray);
        - ``div``: the impl forces ``dtype=result_type(x, y)`` — for two
          float operands of one known dtype that is the ufunc's default
          loop, so plain ``np.divide`` is identical;
        - ``reduce_sum``/``reduce_max``: ``np.sum``/``np.max`` dispatch to
          ``np.add.reduce``/``np.maximum.reduce`` (same C reduction, same
          pairwise order); the impl's explicit ``dtype=x.dtype`` matches
          the default accumulator for float operands, so the reduction is
          called directly when the operand dtype is a known float;
        - ``reshape``/``transpose``: ``np.reshape``/``np.transpose``
          delegate to the array method with the same static argument.
        """
        uf = _UFUNC_IMPLS.get(name)
        if uf is not None:
            op = _OPERATOR_OF.get(uf)
            if op is not None and len(args) == 2:
                return f"({args[0]} {op} {args[1]})"
            if uf is np.negative and len(args) == 1:
                return f"(-{args[0]})"
            g = f"_f{tag}"
            env[g] = uf
            return f"{g}({', '.join(args)})"
        if name == "div":
            if (
                knowns
                and len(knowns) == 2
                and knowns[0] is knowns[1]
                and knowns[0] in _FLOATS
            ):
                return f"({args[0]} / {args[1]})"
            return None
        if (
            name in ("reduce_sum", "reduce_max")
            and isinstance(fn, partial)
            and knowns
            and knowns[0] in _FLOATS
        ):
            g = f"_f{tag}"
            env[g] = np.add.reduce if name == "reduce_sum" else np.maximum.reduce
            env[f"_p{tag}_axis"] = fn.keywords["axes"]
            env[f"_p{tag}_kd"] = fn.keywords["keepdims"]
            return f"{g}({args[0]}, axis=_p{tag}_axis, keepdims=_p{tag}_kd)"
        if name in ("reshape", "transpose") and isinstance(fn, partial):
            key = "new_sizes" if name == "reshape" else "perm"
            g = f"_p{tag}_{key}"
            env[g] = fn.keywords[key]
            return f"{args[0]}.{name}({g})"
        return None

    def call_expr(
        tag: str,
        fn: Any,
        args: list[str],
        out: str | None = None,
        name: str | None = None,
        knowns: list | None = None,
    ) -> str:
        """Register ``fn`` in the globals and render one call expression.

        ``functools.partial`` wrappers are unwrapped: the raw impl is the
        global and its static params are emitted as keyword arguments over
        per-site globals, so the generated call pays no wrapper frame.
        When ``name`` is given (and the call is not a donation), kernel
        specialization may bind the NumPy C entry point directly."""
        if out is None and name is not None:
            sp = specialize(tag, name, fn, args, knowns)
            if sp is not None:
                return sp
        kws: list[str] = []
        if isinstance(fn, partial) and not fn.args:
            for k, val in fn.keywords.items():
                g = f"_p{tag}_{k}"
                env[g] = val
                kws.append(f"{k}={g}")
            fn = fn.func
        g = f"_f{tag}"
        env[g] = fn
        parts = list(args)
        if out is not None:
            parts.append(f"out={out}")
        parts.extend(kws)
        return f"{g}({', '.join(parts)})"

    def after_produce(s: int) -> None:
        """Hoisted canonicalization: emitted once per produced value (the
        VM re-checks per consumption), skipped when statically dead."""
        if s not in consumed or known.get(s) is not None:
            return
        counters["checks"] += 1
        r = raw(s)
        if s in out_set:
            # consumers need the canonical value but the program returns
            # the raw one (VM slots hold raw values): keep both names
            dual.add(s)
            emit(f"c{s} = {r} if _G({r}.dtype) is {r}.dtype else _C({r})")
        else:
            emit(f"if _G({r}.dtype) is not {r}.dtype: {r} = _C({r})")

    def emit_chain(idx: int, chain: FusedChain, srcs: tuple, out_slot: int) -> None:
        steps = chain.steps
        step_dts = chain.out_dtypes or (None,) * len(steps)
        step_names = chain.name.split("+")
        n_ext = chain.n_ext
        root_k = len(steps) - 1
        # consuming step per internal register (single consumer by fusion
        # construction; external registers may be read by several steps)
        consumer: dict[int, int] = {}
        for k, (_, ss, _, _, _) in enumerate(steps):
            for r in ss:
                if r >= n_ext and r not in consumer:
                    consumer[r] = k
        rknown: dict[int, np.dtype] = {
            j: known.get(s) for j, s in enumerate(srcs)  # ext register dtypes
        }
        namer: dict[int, str] = {j: use(s) for j, s in enumerate(srcs)}
        expr_of: dict[int, str] = {}  # nested (not yet named) step results
        allow_nest = len(steps) <= _MAX_NEST
        for k, (fn, ss, d, dp, dd) in enumerate(steps):
            predicted = (
                _predict(step_names[k], [rknown.get(r) for r in ss], (step_dts[k],))
                if step_dts[k] is not None
                else None
            )
            args = []
            for p, r in enumerate(ss):
                t = chain_subs.get((idx, k, p)) if r < n_ext else None
                if t is not None:
                    args.append(use(t))  # elided broadcast: read the source
                elif r in expr_of:
                    args.append(expr_of[r])
                else:
                    args.append(namer[r])
            tag = f"{idx}_{k}"
            if dp >= 0:
                on = namer[ss[dp]]  # the donated register is always named
                dcall = call_expr(tag, fn, args, out=on)
                if rknown.get(ss[dp]) is dd:
                    rhs = dcall
                else:
                    env[f"_d{tag}"] = dd
                    rhs = f"({dcall} if {on}.dtype is _d{tag} else {call_expr(tag, fn, args)})"
            else:
                rhs = call_expr(
                    tag,
                    fn,
                    args,
                    name=step_names[k],
                    knowns=[rknown.get(r) for r in ss],
                )
            counters["calls"] += 1
            if predicted is not None:
                rknown[d] = predicted
            ck = consumer.get(d)
            nest = (
                allow_nest
                and k != root_k
                and predicted is not None
                and ck is not None
                # never nest into the consumer's donated operand position:
                # ``out=`` targets must be names (referenced twice)
                and not (steps[ck][3] >= 0 and steps[ck][1][steps[ck][3]] == d)
            )
            if nest:
                expr_of[d] = f"({rhs})"
                continue
            if k == root_k:
                emit(f"{raw(out_slot)} = {rhs}")
            else:
                t = f"t{idx}_{k}"
                emit(f"{t} = {rhs}")
                namer[d] = t
                if predicted is None:
                    # the VM canonicalizes this register at its consuming
                    # step; hoist that check to production
                    counters["checks"] += 1
                    emit(f"if _G({t}.dtype) is not {t}.dtype: {t} = _C({t})")
        if rknown.get(steps[root_k][2]) is not None:
            known[out_slot] = rknown[steps[root_k][2]]
        after_produce(out_slot)

    # ---- entry: arity check + input canonicalization ---------------------
    emit(f"if len(a) != {n_in}:")
    emit(f'    raise TypeError("program expects {n_in} inputs, got %d" % len(a))')
    for i in range(n_in):
        if i in consumed or i in out_set:
            emit(f"x{i} = _A(a[{i}])")
            counters["calls"] += 1
            if i in consumed:
                counters["checks"] += 1
                if i in out_set:
                    dual.add(i)
                    emit(f"c{i} = x{i} if _G(x{i}.dtype) is x{i}.dtype else _C(x{i})")
                else:
                    emit(f"if _G(x{i}.dtype) is not x{i}.dtype: x{i} = _C(x{i})")

    # ---- body: one statement group per instruction -----------------------
    for idx, (fn, srcs, dst, dsts, dpos, ddt, frees) in enumerate(instrs):
        emit(f"# [{idx}] {instr_names[idx]}")
        if isinstance(fn, FusedChain):
            emit_chain(idx, fn, srcs, dsts[0])
        elif dsts is not None:
            # multi-result primitive: no stability claim, unpack by index
            emit(f"_t = {call_expr(str(idx), fn, [use(s) for s in srcs])}")
            counters["calls"] += 1
            for k, d in enumerate(dsts):
                emit(f"{raw(d)} = _t[{k}]")
            for d in dsts:
                after_produce(d)
        else:
            nm = instr_names[idx]
            eff = [subs.get((idx, p), s) for p, s in enumerate(srcs)]
            knowns = [known.get(s) for s in eff]
            predicted = _predict(nm, knowns, instr_out_dts[idx])
            args = [use(s) for s in eff]
            if idx in dropped:
                # fully elided broadcast: every consumer reads the
                # un-broadcast operand and lets the kernel broadcast natively
                emit("# elided: consumers broadcast natively")
            elif nm == "shard_constraint" and dpos < 0:
                # the impl is the identity — a plain alias, no call frame
                emit(f"{raw(dst)} = {args[0]}")
            elif (
                nm == "slice"
                and dpos < 0
                and isinstance(fn, partial)
                and not fn.args
            ):
                # static strided-1 slice: a precomputed index tuple turns
                # the impl frame + per-call genexpr into one subscript
                env[f"_p{idx}_ix"] = tuple(
                    slice(st, li)
                    for st, li in zip(fn.keywords["starts"], fn.keywords["limits"])
                )
                counters["calls"] += 1
                emit(f"{raw(dst)} = {args[0]}[_p{idx}_ix]")
            elif nm == "take" and dpos < 0:
                # np.take(x, idx, axis=0) == x.take(idx, 0): same C gather,
                # no dispatcher frame
                counters["calls"] += 1
                emit(f"{raw(dst)} = {args[0]}.take({args[1]}, 0)")
            elif (
                nm == "unslice"
                and dpos < 0
                and isinstance(fn, partial)
                and not fn.args
                and shape.get(eff[0]) is not None
            ):
                # adjoint of slice: zeros + one precomputed-setitem — the
                # embed index only depends on the operand's static shape
                env[f"_p{idx}_sh"] = tuple(fn.keywords["shape"])
                env[f"_p{idx}_ix"] = tuple(
                    slice(st, st + dd)
                    for st, dd in zip(fn.keywords["starts"], shape[eff[0]])
                )
                counters["calls"] += 2
                if knowns[0] is not None:
                    env[f"_p{idx}_dt"] = knowns[0]
                    emit(f"{raw(dst)} = _Z(_p{idx}_sh, _p{idx}_dt)")
                else:
                    emit(f"{raw(dst)} = _Z(_p{idx}_sh, {args[0]}.dtype)")
                emit(f"{raw(dst)}[_p{idx}_ix] = {args[0]}")
            elif (
                nm == "matmul"
                and dpos < 0
                and len(eff) == 2
                and knowns[0] in _FLOATS
                and knowns[1] in _FLOATS
                and len(shape.get(eff[0], ())) == 2
                and len(shape.get(eff[1], ())) == 2
            ):
                # 2-D float matmul: np.dot reaches the same GEMM with a
                # slightly thinner wrapper than the np.matmul gufunc
                env.setdefault("_dot", np.dot)
                counters["calls"] += 1
                emit(f"{raw(dst)} = _dot({args[0]}, {args[1]})")
            elif dpos >= 0:
                counters["calls"] += 1
                on = use(srcs[dpos])
                dcall = call_expr(str(idx), fn, args, out=on)
                if known.get(srcs[dpos]) is ddt:
                    emit(f"{raw(dst)} = {dcall}")
                else:
                    env[f"_d{idx}"] = ddt
                    emit(
                        f"{raw(dst)} = {dcall} if {on}.dtype is _d{idx}"
                        f" else {call_expr(str(idx), fn, args)}"
                    )
            else:
                counters["calls"] += 1
                emit(
                    f"{raw(dst)} = "
                    + call_expr(str(idx), fn, args, name=nm, knowns=knowns)
                )
            if predicted is not None:
                # recorded even for dropped broadcasts: consumers read the
                # un-broadcast source, whose dtype the broadcast preserves
                known[dst] = predicted
            if idx not in dropped:
                after_produce(dst)
        for s in frees:
            if moved_free.get(s, -1) > idx:
                continue  # lifetime extended past a rewritten broadcast use
            emit(f"{raw(s)} = None")
        for s in moved_by_site.get(idx, ()):
            emit(f"{raw(s)} = None")

    # ---- return: raw slot values, aliased outputs canonicalized ----------
    rets = []
    for k, s in enumerate(out_slots):
        nm = raw(s)
        if k in canon_out:
            nm = f"_C({nm})"
            counters["calls"] += 1
        rets.append(nm)
    emit(f"return [{', '.join(rets)}]")

    return "\n".join(lines) + "\n", env, counters


class CodegenProgram:
    """A jaxpr lowered through :func:`~repro.ir.linearize.linearize` and
    emitted as one exec-compiled Python function.

    Calling the program with a flat list of arguments runs the generated
    function (bit-identical to the linear VM for aval-conforming
    arguments); under an active trace it delegates to ``eval_jaxpr`` so
    the jaxpr inlines into the outer trace.

    Attributes:
        jaxpr: the source program (kept for the traced fallback + pickle).
        program: the underlying (cached) :class:`LinearProgram` lowering.
        source: the generated Python source text.
        stats: the lowering stats of ``program`` plus
            ``codegen_calls_per_run`` (guaranteed Python-level call sites
            the generated function performs per run: impls, input
            conversions, residual dtype checks) and
            ``codegen_residual_checks`` (how many dynamic dtype checks the
            stability analysis could *not* elide).
    """

    def __init__(self, jaxpr: Jaxpr):
        self.jaxpr = jaxpr
        self.program = linearize(jaxpr)
        source, env, counters = _emit(self.program)
        self.source = source
        filename = f"<repro.codegen:{next(_fresh)}>"
        code = compile(source, filename, "exec")
        exec(code, env)
        self._fn = env["program"]
        # make tracebacks into generated code show real source lines
        linecache.cache[filename] = (
            len(source),
            None,
            source.splitlines(keepends=True),
            filename,
        )
        self.n_instructions = self.program.n_instructions
        self.stats = dict(self.program.stats)
        self.stats["codegen_calls_per_run"] = counters["calls"] + counters["checks"]
        self.stats["codegen_residual_checks"] = counters["checks"]

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"CodegenProgram({s['n_eqns']} eqns -> {s['n_instructions']} instrs, "
            f"{len(self.source.splitlines())} source lines, "
            f"calls/run={s['codegen_calls_per_run']})"
        )

    def __reduce__(self):
        """Pickle as ``codegen(jaxpr)``: ship the (picklable) source jaxpr
        and re-lower + re-generate source on the other side.  Emission is
        deterministic, so the regenerated program is bit-identical; pickle
        memo sharing plus the identity-keyed cache collapse the many
        ``RunTask`` payloads of one stage task to one program per process,
        exactly like :class:`LinearProgram`."""
        return codegen, (self.jaxpr,)

    def __call__(self, args: Sequence[Any]) -> list[Any]:
        if tracer.current_trace() is not None:
            # inlining semantics (autodiff / accumulate splicing) must go
            # through bind — generated code is a steady-state path only
            return eval_jaxpr(self.jaxpr, list(args))
        return self._fn(args)


# ---------------------------------------------------------------------------
# program cache: same jaxpr-identity pattern as ``linearize`` — stage tasks
# are shared across microbatches and steps, so one emission amortizes over
# the whole schedule
# ---------------------------------------------------------------------------

_programs: "weakref.WeakValueDictionary[int, CodegenProgram]" = (
    weakref.WeakValueDictionary()
)
#: shared pinning helper (see :class:`repro.ir.linearize.RecentPins`):
#: refreshed on hit *and* miss so hot programs never age out of the pin
#: set while 128 other lowerings stream past
_recent = RecentPins(maxlen=128)


def codegen(jaxpr: Jaxpr) -> CodegenProgram:
    """Emit + compile ``jaxpr``'s generated function, cached on identity."""
    prog = _programs.get(id(jaxpr))
    if prog is None or prog.jaxpr is not jaxpr:
        prog = CodegenProgram(jaxpr)
        _programs[id(jaxpr)] = prog
    _recent.touch(prog)
    return prog


def eval_jaxpr_codegen(jaxpr: Jaxpr, args: Sequence[Any]) -> list[Any]:
    """Drop-in replacement for :func:`~repro.ir.interpreter.eval_jaxpr`
    that emits once (cached) and dispatches through the generated code."""
    return codegen(jaxpr)(args)
