"""The ``pipeline_yield`` stage-marking primitive (§3.2 of the paper).

``pipeline_yield`` is semantically the identity: models remain runnable on
a single device with no code changes (the paper's key usability claim).
Under a trace it records a marker equation carrying a stage-boundary
``index``; reverse-mode AD emits a mirrored ``direction="bwd"`` marker for
the cotangent, which is how the backward stages of Figure 3 (``b2``, ``b1``
and the fused ``f3b3``) arise without user intervention.

Stage indices are assigned per *call* in trace order, so yielding a pytree
keeps all of its leaves on the same boundary.
"""

from __future__ import annotations

from typing import Any, TypeVar

from repro.ir.primitives import Primitive
from repro.ir.pytree import tree_map
from repro.ir.tracer import current_trace

__all__ = ["pipeline_yield", "pipeline_yield_p", "FWD", "BWD"]

FWD = "fwd"
BWD = "bwd"

pipeline_yield_p = Primitive("pipeline_yield")
# Semantically the identity: the linear task VM (repro.ir.linearize) elides
# the marker by slot aliasing instead of dispatching a call per microbatch.
pipeline_yield_p.identity_alias = True


@pipeline_yield_p.def_impl
def _yield_impl(x, *, index: int, direction: str):
    return x


@pipeline_yield_p.def_abstract
def _yield_abs(xa, *, index: int, direction: str):
    return xa


@pipeline_yield_p.def_vjp
def _yield_vjp(cts, invals, outvals, *, index: int, direction: str):
    if direction != FWD:
        raise ValueError("differentiating an already-backward pipeline_yield")
    return [pipeline_yield_p.bind(cts[0], index=index, direction=BWD)]


T = TypeVar("T")


def pipeline_yield(x: T) -> T:
    """Mark the end of the current pipeline stage (identity on values).

    Computation that ``x`` depends on belongs to the current stage; any
    computation depending on the result belongs to the next stage. May be
    called multiple times; may yield a pytree (all leaves share one
    boundary). Outside a trace this is a no-op, so annotated models still
    run unmodified on one device.
    """
    trace = current_trace()
    if trace is None:
        return x
    index = trace.yield_count
    trace.yield_count += 1
    return tree_map(
        lambda leaf: pipeline_yield_p.bind(leaf, index=index, direction=FWD), x
    )
