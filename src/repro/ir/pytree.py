"""Minimal pytree utilities (flatten/unflatten nested containers).

The public API of the reproduction — like JAX's — passes parameters,
optimizer state, and batches around as nested dicts/tuples/lists of arrays.
These helpers flatten such containers to leaf lists plus a static
:class:`TreeDef` that can rebuild them, which is how traced functions with
structured inputs/outputs are handled throughout :mod:`repro.core`.

Only the containers the repo actually uses are supported: ``dict`` (keys
sorted for determinism), ``list``, ``tuple``, ``namedtuple``, dataclasses
(e.g. ``TrainState``), and ``None``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

__all__ = [
    "TreeDef",
    "tree_flatten",
    "tree_unflatten",
    "tree_map",
    "tree_leaves",
    "tree_structure",
    "tree_all",
]


_LEAF = "leaf"
_NONE = "none"


@dataclasses.dataclass(frozen=True)
class TreeDef:
    """Static structure of a pytree.

    ``kind`` is one of ``"leaf"``, ``"none"``, ``"list"``, ``"tuple"``,
    ``"namedtuple"``, ``"dict"``. ``meta`` holds dict keys or the namedtuple
    class; ``children`` the child TreeDefs.
    """

    kind: str
    meta: Any = None
    children: tuple["TreeDef", ...] = ()

    @property
    def num_leaves(self) -> int:
        """Number of leaf slots in the tree."""
        if self.kind == _LEAF:
            return 1
        return sum(c.num_leaves for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == _LEAF:
            return "*"
        if self.kind == _NONE:
            return "None"
        if self.kind == "dict":
            inner = ", ".join(f"{k!r}: {c!r}" for k, c in zip(self.meta, self.children))
            return "{" + inner + "}"
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self.kind}({inner})"


_LEAF_DEF = TreeDef(_LEAF)
_NONE_DEF = TreeDef(_NONE)


def _is_namedtuple(x: object) -> bool:
    return isinstance(x, tuple) and hasattr(type(x), "_fields")


def tree_flatten(tree: Any) -> tuple[list[Any], TreeDef]:
    """Flatten ``tree`` into ``(leaves, treedef)``."""
    leaves: list[Any] = []

    def go(node: Any) -> TreeDef:
        if node is None:
            return _NONE_DEF
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            fields = tuple(f.name for f in dataclasses.fields(node))
            kids = tuple(go(getattr(node, f)) for f in fields)
            return TreeDef("dataclass", (type(node), fields), kids)
        if _is_namedtuple(node):
            kids = tuple(go(c) for c in node)
            return TreeDef("namedtuple", type(node), kids)
        if isinstance(node, tuple):
            return TreeDef("tuple", None, tuple(go(c) for c in node))
        if isinstance(node, list):
            return TreeDef("list", None, tuple(go(c) for c in node))
        if isinstance(node, dict):
            keys = tuple(sorted(node.keys(), key=repr))
            kids = tuple(go(node[k]) for k in keys)
            return TreeDef("dict", keys, kids)
        leaves.append(node)
        return _LEAF_DEF

    treedef = go(tree)
    return leaves, treedef


def tree_unflatten(treedef: TreeDef, leaves: Iterable[Any]) -> Any:
    """Rebuild a pytree from ``treedef`` and an iterable of leaves."""
    it = iter(leaves)

    def go(td: TreeDef) -> Any:
        if td.kind == _LEAF:
            return next(it)
        if td.kind == _NONE:
            return None
        if td.kind == "dict":
            return {k: go(c) for k, c in zip(td.meta, td.children)}
        kids = [go(c) for c in td.children]
        if td.kind == "list":
            return kids
        if td.kind == "namedtuple":
            return td.meta(*kids)
        if td.kind == "dataclass":
            cls, fields = td.meta
            return cls(**dict(zip(fields, kids)))
        return tuple(kids)

    out = go(treedef)
    rest = list(it)
    if rest:
        raise ValueError(f"too many leaves for treedef: {len(rest)} left over")
    return out


def tree_leaves(tree: Any) -> list[Any]:
    """Return the flat list of leaves of ``tree``."""
    return tree_flatten(tree)[0]


def tree_structure(tree: Any) -> TreeDef:
    """Return the :class:`TreeDef` of ``tree``."""
    return tree_flatten(tree)[1]


def tree_map(f: Callable[..., Any], tree: Any, *rest: Any) -> Any:
    """Map ``f`` over corresponding leaves of one or more pytrees.

    All trees must share the structure of the first one.
    """
    leaves, treedef = tree_flatten(tree)
    other = []
    for t in rest:
        lv, td = tree_flatten(t)
        if td != treedef:
            raise ValueError(f"tree structure mismatch: {treedef!r} vs {td!r}")
        other.append(lv)
    return tree_unflatten(treedef, [f(*args) for args in zip(leaves, *other)])


def tree_all(tree: Any) -> bool:
    """True if every leaf of ``tree`` is truthy."""
    return all(bool(x) for x in tree_leaves(tree))
