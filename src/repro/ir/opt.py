"""Algebraic optimizer over stage jaxprs (funsor-style term rewriting).

The MPMD compiler pays its interpretation cost once at compile time, but
the stage jaxprs that :mod:`repro.core.stage_split` produces still carry
redundant work into :mod:`repro.ir.linearize` / :mod:`repro.ir.codegen`:
duplicated subexpressions (the tracer records every syntactic occurrence),
values no downstream stage ever consumes, and loop-invariant subgraphs —
attention masks, positional iotas, weight transposes in the backward —
recomputed for every microbatch of every step.  This module is the rewrite
pipeline that runs on each stage jaxpr in ``core/compile.py`` *before*
linearization:

``level 1`` (the default; **bit-identical** to unoptimized):

- **identity elision** — ``identity_alias`` equations (``pipeline_yield``,
  ``stop_gradient`` — and ``shard_constraint`` when the compile has no
  inner SPMD mesh, where its impl is the identity) are removed by aliasing
  their output to their input;
- **CSE** — structurally-hashed value numbering over ``(prim, resolved
  inputs, params)``; commutative primitives canonicalize operand order
  (IEEE add/mul are bitwise commutative), small literals hash by value;
- **DCE** — equations whose outputs are never (transitively) consumed are
  dropped, *including across the stage boundary*: a stage output no
  downstream stage's task consumes (a yielded auxiliary nobody reads) is
  pruned from the task's boundary, which cascades — the upstream producing
  chain dies too, and send/recv metadata shrinks accordingly;
- **cross-microbatch memoization** — subgraphs depending only on
  loop-invariant task inputs (captured weights — everything except the
  microbatched batch) are hoisted into a once-per-step *prologue* jaxpr
  that the compiler emits as a single ``memo.t{i}`` task per actor,
  feeding every microbatch instance of the stage task.  A hoisted value
  that *escapes* the stage moves off the per-microbatch boundary
  entirely: downstream tasks read the memo buffer (sent once per step if
  cross-actor), so send/recv metadata and
  ``CostModel.from_tasks`` boundary bytes both shrink.

``level 2`` (opt-in; **value-changing in floats**, so never default):

- **transpose composition** — ``transpose(transpose(x))`` folds into one
  permutation (or an alias when the composition is the identity);
- **matmul reassociation** — ``(x @ y) @ z`` is re-parenthesized to
  ``x @ (y @ z)`` when the contraction-order cost, priced through the
  :mod:`repro.perf.kernels` model (peak-FLOPs efficiency + per-kernel
  dispatch overhead), is strictly cheaper.  FP addition is not
  associative, so results are ``allclose`` rather than bit-identical.

All rewrites preserve IR well-formedness (``validate`` holds on every
output jaxpr) and the task-boundary contract of
:class:`~repro.core.stage_split.StageTask`: :func:`optimize_split` returns
rewritten tasks *plus* the bookkeeping the compiler needs — boundary
aliases for deduplicated outputs, memo pseudo-inputs for hoisted
prologues, and a per-task :class:`OptReport` (before/after eqn counts and
boundary bytes) that lands on ``CompiledStep.opt_report``.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable

import numpy as np

from repro.ir.jaxpr import Atom, Eqn, Jaxpr, Literal, Var, dce, validate

__all__ = [
    "OPT_LEVELS",
    "JaxprOptStats",
    "OptReport",
    "Prologue",
    "SplitOpt",
    "default_matmul_price",
    "normalize_opt_level",
    "optimize_jaxpr",
    "optimize_split",
]

OPT_LEVELS = (0, 1, 2)

#: commutative binops whose IEEE semantics make operand order bitwise
#: irrelevant (NaN-payload propagation aside), so CSE may canonicalize
_COMMUTATIVE = frozenset({"add", "mul", "maximum", "minimum"})

#: literals up to this many elements hash by value (dtype, shape, bytes);
#: larger ones only merge on object identity
_LIT_KEY_MAX = 256


def normalize_opt_level(optimize: bool | int) -> int:
    """Map the user-facing ``optimize`` argument onto a level in 0..2.

    ``True`` (the default) means level 1 — the full exact pipeline;
    ``False`` disables optimization entirely; an explicit int picks the
    level (2 enables the value-changing reassociation pass).
    """
    if optimize is True:
        return 1
    if optimize is False:
        return 0
    level = int(optimize)
    if level not in OPT_LEVELS:
        raise ValueError(f"optimize must be one of {OPT_LEVELS} (or bool), got {optimize!r}")
    return level


# ---------------------------------------------------------------------------
# structural hashing
# ---------------------------------------------------------------------------


class _Unhashable(Exception):
    """Raised by :func:`_freeze` on param values with no stable key."""


def _freeze(value: Any) -> Any:
    """Recursively freeze an eqn param value into a hashable key.

    Nested jaxprs and arbitrary objects key on identity — sound (identical
    objects are interchangeable) but deliberately conservative.
    """
    if isinstance(value, (str, int, float, bool, bytes, type(None))):
        return value
    if isinstance(value, (tuple, list)):
        return (type(value).__name__,) + tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return ("dict",) + tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, np.dtype):
        return ("dtype", str(value))
    if isinstance(value, np.ndarray):
        if value.size <= _LIT_KEY_MAX:
            return ("ndarray", str(value.dtype), value.shape, value.tobytes())
        return ("id", id(value))
    if isinstance(value, (np.generic,)):
        return ("scalar", str(value.dtype), value.item())
    return ("id", id(value))


def _aval_eq(a, b) -> bool:
    return a.shape == b.shape and a.dtype == b.dtype


@dataclasses.dataclass
class JaxprOptStats:
    """Rewrite counters for one jaxpr (summed into :class:`OptReport`)."""

    eqns_before: int = 0
    eqns_after: int = 0
    cse_removed: int = 0
    identity_elided: int = 0
    dce_removed: int = 0
    reassociated: int = 0
    hoisted: int = 0

    @property
    def removed(self) -> int:
        """Equations removed from the per-microbatch path."""
        return self.eqns_before - self.eqns_after


def _is_identity(eqn: Eqn, elide_sharding: bool) -> bool:
    if len(eqn.invars) != 1 or len(eqn.outvars) != 1:
        return False
    if getattr(eqn.prim, "identity_alias", False):
        return True
    # outside the SPMD partitioner, shard_constraint's impl is the identity
    return elide_sharding and eqn.prim.name == "shard_constraint"


def _cse(
    jaxpr: Jaxpr, *, elide_sharding: bool, stats: JaxprOptStats
) -> Jaxpr:
    """Identity elision + common-subexpression elimination.

    Value-numbering in one forward sweep: every kept equation's key is
    ``(prim, resolved input keys, frozen params)``; a repeat maps its
    outputs onto the first occurrence's.  Reusing the *first computed
    value* is bitwise-safe because every primitive impl is a deterministic
    NumPy kernel — same inputs, same bits.
    """
    repl: dict[int, Atom] = {}  # id(var) -> representative atom

    def res(a: Atom) -> Atom:
        while isinstance(a, Var) and id(a) in repl:
            a = repl[id(a)]
        return a

    vn: dict[int, int] = {}
    fresh = itertools.count()
    for v in jaxpr.invars:
        vn[id(v)] = next(fresh)

    def atom_key(a: Atom) -> Any:
        if isinstance(a, Literal):
            val = np.asarray(a.value)
            if val.size <= _LIT_KEY_MAX:
                return ("lit", str(val.dtype), val.shape, val.tobytes())
            return ("litid", id(a))
        return ("v", vn[id(a)])

    table: dict[Any, list[Var]] = {}
    kept: list[Eqn] = []
    for eqn in jaxpr.eqns:
        ins = [res(a) for a in eqn.invars]
        if _is_identity(eqn, elide_sharding) and isinstance(ins[0], Var):
            if _aval_eq(eqn.outvars[0].aval, ins[0].aval):
                repl[id(eqn.outvars[0])] = ins[0]
                stats.identity_elided += 1
                continue
        key = None
        try:
            in_keys = tuple(atom_key(a) for a in ins)
            if eqn.prim.name in _COMMUTATIVE and len(in_keys) == 2:
                in_keys = tuple(sorted(in_keys, key=repr))
            key = (eqn.prim.name, in_keys, _freeze(eqn.params))
            hash(key)
        except (_Unhashable, TypeError):
            key = None
        if key is not None:
            prev = table.get(key)
            if prev is not None and len(prev) == len(eqn.outvars):
                for old, new in zip(eqn.outvars, prev):
                    repl[id(old)] = new
                stats.cse_removed += 1
                continue
        if any(b is not a for a, b in zip(eqn.invars, ins)):
            eqn = Eqn(eqn.prim, ins, eqn.outvars, dict(eqn.params))
        kept.append(eqn)
        for v in eqn.outvars:
            vn[id(v)] = next(fresh)
        if key is not None:
            table[key] = list(eqn.outvars)
    outvars = [res(a) for a in jaxpr.outvars]
    return Jaxpr(jaxpr.invars, kept, outvars)


# ---------------------------------------------------------------------------
# level 2: transpose composition + matmul reassociation, priced by
# perf.kernels
# ---------------------------------------------------------------------------


def default_matmul_price(kernels=None, gpu=None) -> Callable[[float], float]:
    """Seconds for one matmul of a given FLOP count under the §5.1 kernel
    model: ``flops / (peak * base_eff) + dispatch_s``.  Monotone in FLOPs
    but with a real per-kernel launch overhead, so a reassociation that
    adds a kernel must buy enough FLOP savings to pay for the dispatch.
    """
    if kernels is None:
        from repro.perf.kernels import JAX_KERNELS

        kernels = JAX_KERNELS
    if gpu is None:
        from repro.cluster.specs import H100_SXM

        gpu = H100_SXM

    peak = gpu.peak_flops * kernels.base_eff
    dispatch = kernels.dispatch_s

    def price(flops: float) -> float:
        return flops / peak + dispatch

    return price


def _matmul_flops(lhs_shape: tuple, rhs_shape: tuple) -> float:
    """FLOPs of ``matmul(lhs, rhs)``: ``2 * out_size * contraction``."""
    k = lhs_shape[-1]
    if len(rhs_shape) == 1 or len(lhs_shape) == 1:
        raise _Unhashable  # vector cases: don't reassociate
    out_elems = float(np.prod(lhs_shape[:-1], dtype=np.float64)) * rhs_shape[-1]
    return 2.0 * out_elems * float(k)


def _reassociate(
    jaxpr: Jaxpr, price: Callable[[float], float], stats: JaxprOptStats
) -> Jaxpr:
    """Transpose composition and cost-priced matmul re-parenthesization.

    Both rewrites change FP rounding (reassociation) or skip intermediate
    materializations (composition), so they live behind ``opt_level=2``.
    """
    from repro.ir.avals import ShapedArray
    from repro.ir.ops import matmul_p, transpose_p

    producer: dict[int, Eqn] = {}
    use_count: dict[int, int] = {}
    for eqn in jaxpr.eqns:
        for a in eqn.invars:
            if isinstance(a, Var):
                use_count[id(a)] = use_count.get(id(a), 0) + 1
        for v in eqn.outvars:
            producer[id(v)] = eqn
    for a in jaxpr.outvars:
        if isinstance(a, Var):
            use_count[id(a)] = use_count.get(id(a), 0) + 1

    repl: dict[int, Atom] = {}

    def res(a: Atom) -> Atom:
        while isinstance(a, Var) and id(a) in repl:
            a = repl[id(a)]
        return a

    new_eqns: list[Eqn] = []
    for eqn in jaxpr.eqns:
        ins = [res(a) for a in eqn.invars]
        if eqn.prim is transpose_p and isinstance(ins[0], Var):
            inner = producer.get(id(ins[0]))
            if inner is not None and inner.prim is transpose_p:
                p1 = inner.params["perm"]
                p2 = eqn.params["perm"]
                composed = tuple(p1[i] for i in p2)
                src = res(inner.invars[0])
                if composed == tuple(range(len(composed))) and isinstance(src, Var):
                    repl[id(eqn.outvars[0])] = src
                    stats.reassociated += 1
                    continue
                if use_count.get(id(ins[0]), 0) == 1:
                    new_eqns.append(
                        Eqn(transpose_p, [src], eqn.outvars, {"perm": composed})
                    )
                    stats.reassociated += 1
                    continue
        if eqn.prim is matmul_p and isinstance(ins[0], Var):
            inner = producer.get(id(ins[0]))
            if (
                inner is not None
                and inner.prim is matmul_p
                and use_count.get(id(ins[0]), 0) == 1
            ):
                x, y = (res(a) for a in inner.invars)
                z = ins[1]
                xs, ys, zs = x.aval.shape, y.aval.shape, z.aval.shape
                # only the weight-chain case: y and z plain 2-D matrices,
                # x arbitrarily batched — (x @ y) @ z == x @ (y @ z) up
                # to FP rounding
                if len(ys) == 2 and len(zs) == 2 and len(xs) >= 2:
                    cur = price(_matmul_flops(xs, ys)) + price(
                        _matmul_flops(inner.outvars[0].aval.shape, zs)
                    )
                    alt = price(_matmul_flops(ys, zs)) + price(
                        _matmul_flops(xs, (ys[0], zs[1]))
                    )
                    if alt < cur:
                        yz = Var(ShapedArray((ys[0], zs[1]), y.aval.dtype))
                        new_eqns.append(Eqn(matmul_p, [y, z], [yz], {}))
                        new_eqns.append(Eqn(matmul_p, [x, yz], eqn.outvars, {}))
                        stats.reassociated += 1
                        continue
        if any(b is not a for a, b in zip(eqn.invars, ins)):
            eqn = Eqn(eqn.prim, ins, eqn.outvars, dict(eqn.params))
        new_eqns.append(eqn)
    outvars = [res(a) for a in jaxpr.outvars]
    return Jaxpr(jaxpr.invars, new_eqns, outvars)


# ---------------------------------------------------------------------------
# local pipeline over one jaxpr
# ---------------------------------------------------------------------------


def optimize_jaxpr(
    jaxpr: Jaxpr,
    level: int = 1,
    *,
    elide_sharding: bool = False,
    price: Callable[[float], float] | None = None,
) -> tuple[Jaxpr, JaxprOptStats]:
    """Run the rewrite pipeline on one closed jaxpr.

    The output preserves the invar list (callers align inputs positionally;
    use :func:`used_invars` to prune) and the outvar arity.  Level ≤1 is
    bit-identical; level 2 adds the value-changing reassociation pass.
    """
    if level not in OPT_LEVELS:
        raise ValueError(f"opt level must be one of {OPT_LEVELS}, got {level!r}")
    stats = JaxprOptStats(eqns_before=jaxpr.n_eqns, eqns_after=jaxpr.n_eqns)
    if level == 0:
        return jaxpr, stats
    out = _cse(jaxpr, elide_sharding=elide_sharding, stats=stats)
    if level >= 2:
        out = _reassociate(out, price or default_matmul_price(), stats)
    n = out.n_eqns
    out = dce(out)
    stats.dce_removed = n - out.n_eqns
    stats.eqns_after = out.n_eqns
    validate(out)
    return out, stats


def used_invars(jaxpr: Jaxpr) -> list[bool]:
    """Per-invar mask: does the jaxpr actually read this input?"""
    used: set[int] = set()
    for eqn in jaxpr.eqns:
        for a in eqn.invars:
            if isinstance(a, Var):
                used.add(id(a))
    for a in jaxpr.outvars:
        if isinstance(a, Var):
            used.add(id(a))
    return [id(v) in used for v in jaxpr.invars]


# ---------------------------------------------------------------------------
# cross-stage orchestration over a SplitResult
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Prologue:
    """Once-per-step memoized prefix of a stage task.

    Attributes:
        jaxpr: the hoisted loop-invariant subgraph; its invars mirror
            ``in_atoms``.
        in_atoms: body-coordinate atoms consumed — always non-batch body
            invars (captured weights), never another task's output.
        out_vars: aligned with ``jaxpr.outvars`` — a fresh
            body-coordinate pseudo var where the output feeds the main
            task's ``in_atoms`` (the compiler maps it onto the
            ``memo.t{i}.o{j}`` buffer), or ``None`` where the output only
            serves the stage boundary (a moved escaping value downstream
            tasks read directly from the memo buffer).
    """

    jaxpr: Jaxpr
    in_atoms: list[Atom]
    out_vars: list[Var | None]


@dataclasses.dataclass
class TaskOptEntry:
    """Per-task line of an :class:`OptReport`."""

    index: int
    kind: str
    stage: int
    eqns_before: int
    eqns_after: int
    cse_removed: int
    identity_elided: int
    dce_removed: int
    reassociated: int
    hoisted: int
    invars_pruned: int
    outputs_pruned: int
    outputs_deduped: int
    outputs_memoized: int
    boundary_bytes_before: int
    boundary_bytes_after: int

    @property
    def eqn_reduction(self) -> float:
        """Fractional reduction of the per-microbatch eqn count."""
        if self.eqns_before == 0:
            return 0.0
        return 1.0 - self.eqns_after / self.eqns_before


@dataclasses.dataclass
class OptReport:
    """What the optimizer did to one compiled step, per stage task.

    ``eqns_after`` counts the *per-microbatch* path: hoisted equations run
    once per step in a ``memo`` prologue and no longer count against the
    loop body.  Boundary bytes are the task's escaping-output bytes (the
    same accounting :meth:`repro.core.autotune.CostModel.from_tasks`
    budgets against).
    """

    level: int
    tasks: list[TaskOptEntry] = dataclasses.field(default_factory=list)

    @property
    def eqns_before(self) -> int:
        return sum(t.eqns_before for t in self.tasks)

    @property
    def eqns_after(self) -> int:
        return sum(t.eqns_after for t in self.tasks)

    @property
    def boundary_bytes_before(self) -> int:
        return sum(t.boundary_bytes_before for t in self.tasks)

    @property
    def boundary_bytes_after(self) -> int:
        return sum(t.boundary_bytes_after for t in self.tasks)

    def stage_eqn_reduction(self) -> dict[int, float]:
        """Max fractional per-microbatch eqn reduction per pipeline stage."""
        out: dict[int, float] = {}
        for t in self.tasks:
            out[t.stage] = max(out.get(t.stage, 0.0), t.eqn_reduction)
        return out

    def summary(self) -> str:
        """Human-readable per-task table (diagnostics / benchmark logs)."""
        lines = [
            f"opt_level={self.level}: eqns {self.eqns_before} -> "
            f"{self.eqns_after} per microbatch, boundary bytes "
            f"{self.boundary_bytes_before} -> {self.boundary_bytes_after}",
            "task kind          stage  eqns      cse  ident  dce  hoist  outs",
        ]
        for t in self.tasks:
            lines.append(
                f"t{t.index:<3} {t.kind:<13} s{t.stage:<4} "
                f"{t.eqns_before:>4}->{t.eqns_after:<4} "
                f"{t.cse_removed:>4} {t.identity_elided:>5} {t.dce_removed:>4} "
                f"{t.hoisted:>5}  -{t.outputs_pruned}/-{t.outputs_deduped}"
                f"/-{t.outputs_memoized}"
            )
        return "\n".join(lines)


@dataclasses.dataclass
class SplitOpt:
    """Output of :func:`optimize_split` — everything the compiler needs.

    Attributes:
        split: a rewritten :class:`~repro.core.stage_split.SplitResult`
            (same task indices/kinds/stages, optimized jaxprs, pruned
            ``in_atoms``/``out_vars``).
        prologues: task index -> :class:`Prologue` for tasks with a
            hoisted loop-invariant prefix.
        out_aliases: deduplicated boundary outputs — ``(body var, task
            index, out position)`` triples naming extra producers: the
            var's value is task ``t``'s output ``j`` (e.g. a yielded
            activation that aliases the pre-yield residual).
        memo_vars: ``id(pseudo var) -> (task index, prologue out pos)``
            for every memo pseudo-input appearing in a task's
            ``in_atoms``.
        memo_boundary: ``id(body var) -> (task index, prologue out pos)``
            for escaping outputs that moved off the per-microbatch
            boundary onto the once-per-step memo path — these body vars
            no longer appear in any task's ``out_vars``; consumers
            resolve them to the producer's memo buffer.
        report: the per-task :class:`OptReport`.
    """

    split: Any
    prologues: dict[int, Prologue]
    out_aliases: list[tuple[Var, int, int]]
    memo_vars: dict[int, tuple[int, int]]
    memo_boundary: dict[int, tuple[int, int]]
    report: OptReport


def optimize_split(
    split: Any,
    *,
    n_batch: int,
    n_mbs: int,
    level: int = 1,
    elide_sharding: bool = True,
    price: Callable[[float], float] | None = None,
) -> SplitOpt:
    """Optimize every stage task of a :class:`SplitResult`, cross-boundary.

    One reverse-topological sweep (the task list is topologically ordered
    by construction, so consumers are processed before their producers):

    1. drop boundary outputs no downstream task consumes and the loop
       does not return (dead-yield pruning) — processing consumers first
       makes the pruning cascade upstream in a single sweep;
    2. run the local pipeline (:func:`optimize_jaxpr`) on the task jaxpr;
    3. prune now-unused inputs from ``in_atoms``;
    4. deduplicate boundary outputs that alias the same value after
       identity elision (a yielded activation and its pre-yield residual
       collapse to one buffer — recorded in ``out_aliases`` so the
       compiler's producer map still resolves both body vars);
    5. hoist the loop-invariant prefix into a :class:`Prologue` when
       ``n_mbs > 1`` (memoized once per step).
    """
    from repro.core.stage_split import SplitResult

    body = split.body
    level = int(level)
    if level not in OPT_LEVELS:
        raise ValueError(f"opt level must be one of {OPT_LEVELS}, got {level!r}")
    report = OptReport(level=level)
    if level == 0:
        for t in split.tasks:
            bnd = sum(v.aval.nbytes for v in t.out_vars)
            report.tasks.append(
                TaskOptEntry(
                    index=t.index, kind=t.kind, stage=t.stage,
                    eqns_before=t.jaxpr.n_eqns, eqns_after=t.jaxpr.n_eqns,
                    cse_removed=0, identity_elided=0, dce_removed=0,
                    reassociated=0, hoisted=0, invars_pruned=0,
                    outputs_pruned=0, outputs_deduped=0, outputs_memoized=0,
                    boundary_bytes_before=bnd, boundary_bytes_after=bnd,
                )
            )
        return SplitOpt(split, {}, [], {}, {}, report)

    body_invar_pos = {id(v): k for k, v in enumerate(body.invars)}
    # seeded with the loop's own outputs; each processed task adds its
    # (pruned) in_atoms, so upstream tasks see exactly the surviving
    # consumers
    consumed: set[int] = {id(a) for a in body.outvars if isinstance(a, Var)}

    new_tasks: list[Any] = [None] * len(split.tasks)
    prologues: dict[int, Prologue] = {}
    out_aliases: list[tuple[Var, int, int]] = []
    memo_vars: dict[int, tuple[int, int]] = {}
    memo_boundary: dict[int, tuple[int, int]] = {}
    entries: dict[int, TaskOptEntry] = {}
    body_out_ids = {id(a) for a in body.outvars if isinstance(a, Var)}

    for task in reversed(split.tasks):
        jaxpr = task.jaxpr
        bnd_before = sum(v.aval.nbytes for v in task.out_vars)

        # 1. dead boundary outputs
        keep_pos = [j for j, v in enumerate(task.out_vars) if id(v) in consumed]
        outputs_pruned = len(task.out_vars) - len(keep_pos)
        out_vars = [task.out_vars[j] for j in keep_pos]
        jaxpr = Jaxpr(jaxpr.invars, jaxpr.eqns, [jaxpr.outvars[j] for j in keep_pos])

        # 2. local rewrite pipeline
        jaxpr, stats = optimize_jaxpr(
            jaxpr, level, elide_sharding=elide_sharding, price=price
        )

        # 3. prune unused inputs
        mask = used_invars(jaxpr)
        in_atoms = [a for a, u in zip(task.in_atoms, mask) if u]
        invars = [v for v, u in zip(jaxpr.invars, mask) if u]
        invars_pruned = len(mask) - len(invars)
        jaxpr = Jaxpr(invars, jaxpr.eqns, jaxpr.outvars)

        # 4. dedupe boundary outputs aliasing one value
        first_pos: dict[int, int] = {}
        dedup_keep: list[int] = []
        pending_alias: list[tuple[Var, int]] = []  # (body var, kept pos idx)
        for j, local in enumerate(jaxpr.outvars):
            if isinstance(local, Var) and id(local) in first_pos:
                pending_alias.append((out_vars[j], first_pos[id(local)]))
                continue
            if isinstance(local, Var):
                first_pos[id(local)] = len(dedup_keep)
            dedup_keep.append(j)
        outputs_deduped = len(jaxpr.outvars) - len(dedup_keep)
        if outputs_deduped:
            jaxpr = Jaxpr(
                jaxpr.invars, jaxpr.eqns, [jaxpr.outvars[j] for j in dedup_keep]
            )
            out_vars = [out_vars[j] for j in dedup_keep]
        for body_var, pos in pending_alias:
            out_aliases.append((body_var, task.index, pos))

        # 5. hoist the loop-invariant prefix (cross-microbatch memoization)
        hoisted = 0
        outputs_memoized = 0
        if n_mbs > 1:
            invariant = {
                i
                for i, a in enumerate(in_atoms)
                if isinstance(a, Var)
                and body_invar_pos.get(id(a), -1) >= n_batch
            }
            # escaping outputs may move off the per-mb boundary onto the
            # memo path — unless the loop itself reduces/stacks them
            movable = [id(v) not in body_out_ids for v in out_vars]
            pro, jaxpr, in_atoms, pseudo, moved = _hoist_prologue(
                jaxpr, in_atoms, invariant, movable
            )
            if pro is not None:
                hoisted = pro.jaxpr.n_eqns
                prologues[task.index] = pro
                for j, pv in enumerate(pro.out_vars):
                    if pv is not None:
                        memo_vars[id(pv)] = (task.index, j)
                if moved:
                    moved_set = set(moved)
                    for out_pos, pro_pos in moved.items():
                        memo_boundary[id(out_vars[out_pos])] = (
                            task.index, pro_pos,
                        )
                    out_vars = [
                        v for j, v in enumerate(out_vars)
                        if j not in moved_set
                    ]
                    outputs_memoized = len(moved)
        stats.hoisted = hoisted
        stats.eqns_after = jaxpr.n_eqns

        validate(jaxpr)
        new_tasks[task.index] = dataclasses.replace(
            task, jaxpr=jaxpr, in_atoms=in_atoms, out_vars=out_vars
        )
        for a in in_atoms:
            if isinstance(a, Var) and id(a) not in memo_vars:
                consumed.add(id(a))
        entries[task.index] = TaskOptEntry(
            index=task.index, kind=task.kind, stage=task.stage,
            eqns_before=stats.eqns_before, eqns_after=stats.eqns_after,
            cse_removed=stats.cse_removed,
            identity_elided=stats.identity_elided,
            dce_removed=stats.dce_removed, reassociated=stats.reassociated,
            hoisted=hoisted, invars_pruned=invars_pruned,
            outputs_pruned=outputs_pruned, outputs_deduped=outputs_deduped,
            outputs_memoized=outputs_memoized,
            boundary_bytes_before=bnd_before,
            boundary_bytes_after=sum(v.aval.nbytes for v in out_vars),
        )

    report.tasks = [entries[i] for i in sorted(entries)]
    new_split = SplitResult(
        tasks=new_tasks,
        n_stages=split.n_stages,
        fwd_task_of_stage=dict(split.fwd_task_of_stage),
        bwd_task_of_stage=dict(split.bwd_task_of_stage),
        assignment=dict(split.assignment),
        body=split.body,
    )
    return SplitOpt(
        new_split, prologues, out_aliases, memo_vars, memo_boundary, report
    )


def _hoist_prologue(
    jaxpr: Jaxpr,
    in_atoms: list[Atom],
    invariant_positions: set[int],
    movable_outputs: list[bool],
) -> tuple[Prologue | None, Jaxpr, list[Atom], list[Var], dict[int, int]]:
    """Partition ``jaxpr`` into an invariant prologue and the per-mb rest.

    An equation is hoistable when every Var operand is an invariant input
    or another hoisted equation's output.  Hoisted values consumed by the
    remaining equations become prologue outputs, re-entering the main
    jaxpr as fresh invars backed by pseudo ``in_atoms`` the compiler maps
    to ``memo`` buffers.  Hoisted values that *escape* (task outvars) are
    moved off the per-microbatch boundary when ``movable_outputs`` allows
    (i.e. the loop doesn't reduce/stack them): the returned ``moved`` map
    (original out position -> prologue out position) tells the caller
    which boundary slots now resolve to the memo buffer instead.
    """
    inv: set[int] = {
        id(v) for i, v in enumerate(jaxpr.invars) if i in invariant_positions
    }
    hoist_flags: list[bool] = []
    hoisted_eqns: list[Eqn] = []
    for eqn in jaxpr.eqns:
        ok = all(not isinstance(a, Var) or id(a) in inv for a in eqn.invars)
        hoist_flags.append(ok)
        if ok:
            hoisted_eqns.append(eqn)
            inv.update(id(v) for v in eqn.outvars)
    if not hoisted_eqns:
        return None, jaxpr, in_atoms, [], {}

    hoisted_out_ids = {id(v) for e in hoisted_eqns for v in e.outvars}
    main_eqns = [e for e, h in zip(jaxpr.eqns, hoist_flags) if not h]

    # prologue outputs: hoisted values the main body still needs (fed back
    # as memo pseudo-inputs), plus escaping hoisted values (kept as task
    # outputs when not movable, dropped from the boundary when movable)
    needed: list[Var] = []
    pos_of: dict[int, int] = {}

    def note(a: Atom) -> int | None:
        if not (isinstance(a, Var) and id(a) in hoisted_out_ids):
            return None
        if id(a) not in pos_of:
            pos_of[id(a)] = len(needed)
            needed.append(a)
        return pos_of[id(a)]

    main_fed: set[int] = set()
    for eqn in main_eqns:
        for a in eqn.invars:
            p = note(a)
            if p is not None:
                main_fed.add(p)
    moved: dict[int, int] = {}
    for j, a in enumerate(jaxpr.outvars):
        p = note(a)
        if p is not None and movable_outputs[j]:
            moved[j] = p
        elif p is not None:
            main_fed.add(p)  # stays an outvar -> main passes it through
    if not needed:
        # fully dead invariant prefix (already DCE'd in practice)
        return None, jaxpr, in_atoms, [], {}

    # prologue invars: the invariant task inputs the hoisted eqns read
    pro_used: set[int] = set()
    for eqn in hoisted_eqns:
        for a in eqn.invars:
            if isinstance(a, Var):
                pro_used.add(id(a))
    pro_invars = [
        v
        for i, v in enumerate(jaxpr.invars)
        if i in invariant_positions and id(v) in pro_used
    ]
    pro_in_atoms = [
        a
        for i, a in enumerate(in_atoms)
        if i in invariant_positions and id(jaxpr.invars[i]) in pro_used
    ]
    pro_jaxpr = Jaxpr(pro_invars, hoisted_eqns, list(needed))
    validate(pro_jaxpr)

    # main jaxpr: original invars still used by the rest + the main-fed
    # prologue outputs (the same Var objects simply become invars)
    main_outvars = [a for j, a in enumerate(jaxpr.outvars) if j not in moved]
    main_used: set[int] = set()
    for eqn in main_eqns:
        for a in eqn.invars:
            if isinstance(a, Var):
                main_used.add(id(a))
    for a in main_outvars:
        if isinstance(a, Var):
            main_used.add(id(a))
    keep = [
        (v, a)
        for v, a in zip(jaxpr.invars, in_atoms)
        if id(v) in main_used
    ]
    fed = [needed[p] for p in sorted(main_fed)]
    pseudo_of: dict[int, Var] = {id(v): Var(v.aval) for v in fed}
    main_invars = [v for v, _ in keep] + fed
    main_atoms = [a for _, a in keep] + [pseudo_of[id(v)] for v in fed]
    main_jaxpr = Jaxpr(main_invars, main_eqns, main_outvars)
    pro = Prologue(
        jaxpr=pro_jaxpr,
        in_atoms=pro_in_atoms,
        out_vars=[
            pseudo_of[id(v)] if p in main_fed else None
            for p, v in enumerate(needed)
        ],
    )
    return pro, main_jaxpr, main_atoms, pro.out_vars, moved
