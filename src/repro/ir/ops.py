"""User-level array ops and their impl / abstract-eval / VJP rules.

Every op routes through :func:`repro.ir.tracer.bind`, so the same code runs
eagerly on NumPy arrays or symbolically under a trace. VJP rules are
written with these ops, making reverse-mode differentiation an IR-to-IR
transform (see :mod:`repro.ir.autodiff`).

Vectorization discipline follows the project's performance guide: every
impl is a single NumPy expression; there are no Python loops over elements
anywhere in the interpreter path.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np
from scipy import special as _sp_special

from repro.ir import dtypes
from repro.ir.avals import ShapedArray, abstractify, broadcast_shapes
from repro.ir.dtypes import DType
from repro.ir.primitives import Primitive
from repro.ir.tracer import TracerArray

__all__ = [
    # constructors
    "full", "zeros", "ones", "zeros_like_aval", "iota",
    # arithmetic
    "add", "sub", "mul", "div", "pow", "neg", "abs_", "sign",
    "exp", "log", "tanh", "sqrt", "rsqrt", "erf", "sin", "cos",
    "maximum", "minimum", "where",
    # comparisons
    "greater", "greater_equal", "less", "less_equal", "equal", "not_equal",
    "logical_not",
    # linear algebra / structure
    "matmul", "reshape", "transpose", "broadcast_to", "concatenate",
    "slice_", "unslice", "take", "scatter_add", "expand_dims", "squeeze",
    # reductions
    "reduce_sum", "reduce_max", "sum_", "mean", "max_",
    # misc
    "convert", "astype", "stop_gradient", "shape_of", "dtype_of",
]

ArrayLike = Any  # np.ndarray | TracerArray | python scalar


# ---------------------------------------------------------------------------
# small helpers
# ---------------------------------------------------------------------------

def shape_of(x: ArrayLike) -> tuple[int, ...]:
    """Static shape of an array, tracer, or scalar."""
    return abstractify(x).shape


def dtype_of(x: ArrayLike) -> DType:
    """Logical dtype of an array, tracer, or scalar."""
    return abstractify(x).dtype


def _norm_axes(axes: int | Sequence[int] | None, ndim: int) -> tuple[int, ...]:
    if axes is None:
        return tuple(range(ndim))
    if isinstance(axes, int):
        axes = (axes,)
    return tuple(sorted(a % ndim for a in axes))


def _reduced_shape(shape: tuple[int, ...], axes: tuple[int, ...], keepdims: bool) -> tuple[int, ...]:
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


def unbroadcast(g: ArrayLike, target_shape: tuple[int, ...]) -> ArrayLike:
    """Sum ``g`` down to ``target_shape`` (reverse of NumPy broadcasting).

    This is the workhorse of every broadcasting binary op's VJP.
    """
    g_shape = shape_of(g)
    if g_shape == tuple(target_shape):
        return g
    # Sum away leading extra dims.
    extra = len(g_shape) - len(target_shape)
    if extra > 0:
        g = reduce_sum(g, axes=tuple(range(extra)))
        g_shape = shape_of(g)
    # Sum broadcast (size-1) dims, keeping them so shapes still line up.
    bcast_axes = tuple(
        i for i, (gd, td) in enumerate(zip(g_shape, target_shape)) if td == 1 and gd != 1
    )
    if bcast_axes:
        g = reduce_sum(g, axes=bcast_axes, keepdims=True)
    if shape_of(g) != tuple(target_shape):
        g = reshape(g, tuple(target_shape))
    return g


# ---------------------------------------------------------------------------
# constant constructors (plain NumPy; become Literals when traced)
# ---------------------------------------------------------------------------

def full(shape: Sequence[int], value: float, dtype: DType = dtypes.float32) -> np.ndarray:
    """Constant array. Returns NumPy directly; under a trace it is embedded
    as a literal at first use."""
    return np.full(tuple(shape), value, dtype=dtype.np_dtype)


def zeros(shape: Sequence[int], dtype: DType = dtypes.float32) -> np.ndarray:
    """Zero-filled constant array."""
    return np.zeros(tuple(shape), dtype=dtype.np_dtype)


def ones(shape: Sequence[int], dtype: DType = dtypes.float32) -> np.ndarray:
    """One-filled constant array."""
    return np.ones(tuple(shape), dtype=dtype.np_dtype)


def zeros_like_aval(aval: ShapedArray) -> np.ndarray:
    """Zeros with the shape/dtype of an abstract value (autodiff's zero
    cotangent)."""
    return np.zeros(aval.shape, dtype=aval.dtype.np_dtype)


# ---------------------------------------------------------------------------
# elementwise binary ops
# ---------------------------------------------------------------------------

def _binop(name: str, np_fn, vjp_fn=None, *, bool_out: bool = False, inplace_fn=None) -> Primitive:
    p = Primitive(name)
    # Fusion/donation hooks for the linear task VM (repro.ir.linearize):
    # every binop is a per-element map over fresh output storage; ops whose
    # impl is exactly a NumPy ufunc also advertise the ufunc for ``out=``
    # buffer donation.
    p.elementwise = True
    p.returns_fresh = True
    p.inplace_fn = inplace_fn

    @p.def_impl
    def _impl(x, y):
        out = np_fn(x, y)
        if bool_out:
            return np.asarray(out, dtype=np.bool_)
        return out

    @p.def_abstract
    def _abs(xa: ShapedArray, ya: ShapedArray):
        shape = broadcast_shapes(xa.shape, ya.shape)
        if bool_out:
            return ShapedArray(shape, dtypes.bool_)
        return ShapedArray(shape, dtypes.promote_types(xa.dtype, ya.dtype))

    if vjp_fn is not None:
        @p.def_vjp
        def _vjp(cts, invals, outvals):
            g = cts[0]
            x, y = invals
            gx, gy = vjp_fn(g, x, y, outvals[0])
            gx = None if gx is None else unbroadcast(gx, shape_of(x))
            gy = None if gy is None else unbroadcast(gy, shape_of(y))
            return [gx, gy]

    return p


add_p = _binop("add", np.add, lambda g, x, y, o: (g, g), inplace_fn=np.add)
sub_p = _binop("sub", np.subtract, lambda g, x, y, o: (g, neg(g)), inplace_fn=np.subtract)
mul_p = _binop("mul", np.multiply, lambda g, x, y, o: (mul(g, y), mul(g, x)), inplace_fn=np.multiply)
div_p = _binop(
    "div",
    lambda x, y: np.divide(x, y, dtype=np.result_type(x, y) if np.result_type(x, y).kind == "f" else np.float32),
    lambda g, x, y, o: (div(g, y), neg(div(mul(g, o), y))),
)
maximum_p = _binop(
    "maximum", np.maximum,
    lambda g, x, y, o: (
        mul(g, convert(greater_equal(x, y), dtype_of(g))),
        mul(g, convert(less(x, y), dtype_of(g))),
    ),
    inplace_fn=np.maximum,
)
minimum_p = _binop(
    "minimum", np.minimum,
    lambda g, x, y, o: (
        mul(g, convert(less_equal(x, y), dtype_of(g))),
        mul(g, convert(greater(x, y), dtype_of(g))),
    ),
    inplace_fn=np.minimum,
)
# Exponent is treated as a constant (sufficient for x**2 etc.; general
# d/dy x**y needs log(x) which is undefined for x <= 0).
pow_p = _binop("pow", np.power, lambda g, x, y, o: (mul(g, mul(y, pow(x, sub(y, 1.0)))), None))

greater_p = _binop("greater", np.greater, bool_out=True)
greater_equal_p = _binop("greater_equal", np.greater_equal, bool_out=True)
less_p = _binop("less", np.less, bool_out=True)
less_equal_p = _binop("less_equal", np.less_equal, bool_out=True)
equal_p = _binop("equal", np.equal, bool_out=True)
not_equal_p = _binop("not_equal", np.not_equal, bool_out=True)


def add(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x + y`` with broadcasting."""
    return add_p.bind(x, y)


def sub(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x - y`` with broadcasting."""
    return sub_p.bind(x, y)


def mul(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x * y`` with broadcasting."""
    return mul_p.bind(x, y)


def div(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x / y`` (true division) with broadcasting."""
    return div_p.bind(x, y)


def pow(x: ArrayLike, y: ArrayLike) -> ArrayLike:  # noqa: A001 - mirrors jnp.pow
    """Elementwise ``x ** y``. Gradient flows to ``x`` only."""
    return pow_p.bind(x, y)


def maximum(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise maximum."""
    return maximum_p.bind(x, y)


def minimum(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise minimum."""
    return minimum_p.bind(x, y)


def greater(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x > y`` (bool)."""
    return greater_p.bind(x, y)


def greater_equal(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x >= y`` (bool)."""
    return greater_equal_p.bind(x, y)


def less(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x < y`` (bool)."""
    return less_p.bind(x, y)


def less_equal(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x <= y`` (bool)."""
    return less_equal_p.bind(x, y)


def equal(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x == y`` (bool)."""
    return equal_p.bind(x, y)


def not_equal(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise ``x != y`` (bool)."""
    return not_equal_p.bind(x, y)


# ---------------------------------------------------------------------------
# elementwise unary ops
# ---------------------------------------------------------------------------

def _unop(name: str, np_fn, vjp_fn=None, *, out_dtype: DType | None = None, inplace_fn=None) -> Primitive:
    p = Primitive(name)
    p.elementwise = True
    p.returns_fresh = True
    p.inplace_fn = inplace_fn

    @p.def_impl
    def _impl(x):
        return np_fn(x)

    @p.def_abstract
    def _abs(xa: ShapedArray):
        return ShapedArray(xa.shape, out_dtype or xa.dtype)

    if vjp_fn is not None:
        @p.def_vjp
        def _vjp(cts, invals, outvals):
            return [vjp_fn(cts[0], invals[0], outvals[0])]

    return p


neg_p = _unop("neg", np.negative, lambda g, x, o: neg(g), inplace_fn=np.negative)
exp_p = _unop("exp", np.exp, lambda g, x, o: mul(g, o), inplace_fn=np.exp)
log_p = _unop("log", np.log, lambda g, x, o: div(g, x), inplace_fn=np.log)
tanh_p = _unop("tanh", np.tanh, lambda g, x, o: mul(g, sub(1.0, mul(o, o))), inplace_fn=np.tanh)
sqrt_p = _unop("sqrt", np.sqrt, lambda g, x, o: div(g, mul(2.0, o)), inplace_fn=np.sqrt)
erf_p = _unop(
    "erf", _sp_special.erf,
    lambda g, x, o: mul(g, mul(2.0 / math.sqrt(math.pi), exp(neg(mul(x, x))))),
    inplace_fn=_sp_special.erf,
)
sin_p = _unop("sin", np.sin, lambda g, x, o: mul(g, cos(x)), inplace_fn=np.sin)
cos_p = _unop("cos", np.cos, lambda g, x, o: neg(mul(g, sin(x))), inplace_fn=np.cos)
abs_p = _unop("abs", np.abs, lambda g, x, o: mul(g, sign(x)), inplace_fn=np.absolute)
sign_p = _unop("sign", np.sign, inplace_fn=np.sign)
logical_not_p = _unop("logical_not", np.logical_not, out_dtype=dtypes.bool_)


def neg(x: ArrayLike) -> ArrayLike:
    """Elementwise negation."""
    return neg_p.bind(x)


def exp(x: ArrayLike) -> ArrayLike:
    """Elementwise exponential."""
    return exp_p.bind(x)


def log(x: ArrayLike) -> ArrayLike:
    """Elementwise natural log."""
    return log_p.bind(x)


def tanh(x: ArrayLike) -> ArrayLike:
    """Elementwise hyperbolic tangent."""
    return tanh_p.bind(x)


def sqrt(x: ArrayLike) -> ArrayLike:
    """Elementwise square root."""
    return sqrt_p.bind(x)


def rsqrt(x: ArrayLike) -> ArrayLike:
    """Elementwise reciprocal square root (composite)."""
    return div(1.0, sqrt(x))


def erf(x: ArrayLike) -> ArrayLike:
    """Elementwise error function (used by exact GeLU)."""
    return erf_p.bind(x)


def sin(x: ArrayLike) -> ArrayLike:
    """Elementwise sine."""
    return sin_p.bind(x)


def cos(x: ArrayLike) -> ArrayLike:
    """Elementwise cosine."""
    return cos_p.bind(x)


def abs_(x: ArrayLike) -> ArrayLike:
    """Elementwise absolute value."""
    return abs_p.bind(x)


def sign(x: ArrayLike) -> ArrayLike:
    """Elementwise sign (non-differentiable)."""
    return sign_p.bind(x)


def logical_not(x: ArrayLike) -> ArrayLike:
    """Elementwise boolean negation."""
    return logical_not_p.bind(x)


# ---------------------------------------------------------------------------
# where / convert / stop_gradient
# ---------------------------------------------------------------------------

where_p = Primitive("where")
where_p.elementwise = True
where_p.returns_fresh = True


@where_p.def_impl
def _where_impl(c, x, y):
    return np.where(c, x, y)


@where_p.def_abstract
def _where_abs(ca, xa, ya):
    shape = broadcast_shapes(ca.shape, xa.shape, ya.shape)
    return ShapedArray(shape, dtypes.promote_types(xa.dtype, ya.dtype))


@where_p.def_vjp
def _where_vjp(cts, invals, outvals):
    g = cts[0]
    c, x, y = invals
    gx = where(c, g, zeros((), dtype_of(g)))
    gy = where(c, zeros((), dtype_of(g)), g)
    return [None, unbroadcast(gx, shape_of(x)), unbroadcast(gy, shape_of(y))]


def where(cond: ArrayLike, x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Elementwise select: ``cond ? x : y``."""
    return where_p.bind(cond, x, y)


# convert is elementwise but NOT returns_fresh: when the storage dtypes
# coincide (e.g. bf16 <-> f32, both stored as float32) its impl returns the
# input array unchanged, so its output may alias an input.  The linear VM
# additionally elides such same-storage converts by slot aliasing.
convert_p = Primitive("convert")
convert_p.elementwise = True


@convert_p.def_impl
def _convert_impl(x, *, dtype: DType):
    return np.asarray(x, dtype=dtype.np_dtype)


@convert_p.def_abstract
def _convert_abs(xa, *, dtype: DType):
    return ShapedArray(xa.shape, dtype)


@convert_p.def_vjp
def _convert_vjp(cts, invals, outvals, *, dtype: DType):
    src = dtype_of(invals[0])
    if not src.inexact:
        return [None]
    return [convert(cts[0], src)]


def convert(x: ArrayLike, dtype: DType) -> ArrayLike:
    """Cast to ``dtype`` (no-op equations are still recorded, matching
    XLA's explicit converts)."""
    return convert_p.bind(x, dtype=dtype)


def astype(x: ArrayLike, dtype: DType) -> ArrayLike:
    """Alias of :func:`convert`."""
    return convert(x, dtype)


stop_gradient_p = Primitive("stop_gradient")
stop_gradient_p.identity_alias = True


@stop_gradient_p.def_impl
def _stopgrad_impl(x):
    return x


@stop_gradient_p.def_abstract
def _stopgrad_abs(xa):
    return xa


@stop_gradient_p.def_vjp
def _stopgrad_vjp(cts, invals, outvals):
    return [None]


def stop_gradient(x: ArrayLike) -> ArrayLike:
    """Identity in the forward pass; blocks the gradient."""
    return stop_gradient_p.bind(x)


# ---------------------------------------------------------------------------
# matmul
# ---------------------------------------------------------------------------

matmul_p = Primitive("matmul")
matmul_p.returns_fresh = True


@matmul_p.def_impl
def _matmul_impl(x, y):
    return np.matmul(x, y)


@matmul_p.def_abstract
def _matmul_abs(xa: ShapedArray, ya: ShapedArray):
    if xa.ndim < 2 or ya.ndim < 2:
        raise ValueError(f"matmul requires >=2-D operands, got {xa!r} @ {ya!r}")
    if xa.shape[-1] != ya.shape[-2]:
        raise ValueError(f"matmul contraction mismatch: {xa!r} @ {ya!r}")
    batch = broadcast_shapes(xa.shape[:-2], ya.shape[:-2])
    shape = batch + (xa.shape[-2], ya.shape[-1])
    return ShapedArray(shape, dtypes.promote_types(xa.dtype, ya.dtype))


@matmul_p.def_vjp
def _matmul_vjp(cts, invals, outvals):
    g = cts[0]
    x, y = invals
    gx = matmul(g, swap_last2(y))
    gy = matmul(swap_last2(x), g)
    return [unbroadcast(gx, shape_of(x)), unbroadcast(gy, shape_of(y))]


def matmul(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """Batched matrix multiply with NumPy semantics (operands >= 2-D)."""
    return matmul_p.bind(x, y)


def swap_last2(x: ArrayLike) -> ArrayLike:
    """Transpose the trailing two dimensions."""
    n = len(shape_of(x))
    perm = tuple(range(n - 2)) + (n - 1, n - 2)
    return transpose(x, perm)


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

reshape_p = Primitive("reshape")


@reshape_p.def_impl
def _reshape_impl(x, *, new_sizes: tuple[int, ...]):
    return np.reshape(x, new_sizes)


@reshape_p.def_abstract
def _reshape_abs(xa: ShapedArray, *, new_sizes: tuple[int, ...]):
    if math.prod(new_sizes) != xa.size:
        raise ValueError(f"cannot reshape {xa!r} to {new_sizes}")
    return ShapedArray(tuple(new_sizes), xa.dtype)


@reshape_p.def_vjp
def _reshape_vjp(cts, invals, outvals, *, new_sizes):
    return [reshape(cts[0], shape_of(invals[0]))]


def reshape(x: ArrayLike, new_sizes: Sequence[int]) -> ArrayLike:
    """Reshape. One dimension may be ``-1`` (inferred)."""
    new_sizes = tuple(int(d) for d in new_sizes)
    if any(d == -1 for d in new_sizes):
        known = math.prod(d for d in new_sizes if d != -1)
        total = abstractify(x).size
        new_sizes = tuple(total // known if d == -1 else d for d in new_sizes)
    return reshape_p.bind(x, new_sizes=new_sizes)


transpose_p = Primitive("transpose")


@transpose_p.def_impl
def _transpose_impl(x, *, perm: tuple[int, ...]):
    return np.transpose(x, perm)


@transpose_p.def_abstract
def _transpose_abs(xa: ShapedArray, *, perm: tuple[int, ...]):
    if sorted(perm) != list(range(xa.ndim)):
        raise ValueError(f"bad perm {perm} for {xa!r}")
    return ShapedArray(tuple(xa.shape[p] for p in perm), xa.dtype)


@transpose_p.def_vjp
def _transpose_vjp(cts, invals, outvals, *, perm):
    inv = tuple(np.argsort(perm))
    return [transpose(cts[0], inv)]


def transpose(x: ArrayLike, perm: Sequence[int] | None = None) -> ArrayLike:
    """Permute dimensions (defaults to full reversal like ``ndarray.T``)."""
    n = len(shape_of(x))
    if perm is None:
        perm = tuple(reversed(range(n)))
    return transpose_p.bind(x, perm=tuple(int(p) for p in perm))


broadcast_to_p = Primitive("broadcast_to")


@broadcast_to_p.def_impl
def _broadcast_impl(x, *, shape: tuple[int, ...]):
    return np.broadcast_to(x, shape)


@broadcast_to_p.def_abstract
def _broadcast_abs(xa: ShapedArray, *, shape: tuple[int, ...]):
    if broadcast_shapes(xa.shape, shape) != tuple(shape):
        raise ValueError(f"cannot broadcast {xa!r} to {shape}")
    return ShapedArray(tuple(shape), xa.dtype)


@broadcast_to_p.def_vjp
def _broadcast_vjp(cts, invals, outvals, *, shape):
    return [unbroadcast(cts[0], shape_of(invals[0]))]


def broadcast_to(x: ArrayLike, shape: Sequence[int]) -> ArrayLike:
    """Broadcast ``x`` to ``shape`` (NumPy rules)."""
    return broadcast_to_p.bind(x, shape=tuple(int(d) for d in shape))


def expand_dims(x: ArrayLike, axis: int) -> ArrayLike:
    """Insert a size-1 dimension at ``axis`` (composite via reshape)."""
    s = list(shape_of(x))
    axis = axis % (len(s) + 1)
    s.insert(axis, 1)
    return reshape(x, s)


def squeeze(x: ArrayLike, axis: int) -> ArrayLike:
    """Remove a size-1 dimension at ``axis`` (composite via reshape)."""
    s = list(shape_of(x))
    if s[axis] != 1:
        raise ValueError(f"cannot squeeze axis {axis} of shape {tuple(s)}")
    del s[axis]
    return reshape(x, s)


concatenate_p = Primitive("concatenate")
concatenate_p.returns_fresh = True


@concatenate_p.def_impl
def _concat_impl(*xs, axis: int):
    return np.concatenate(xs, axis=axis)


@concatenate_p.def_abstract
def _concat_abs(*xas: ShapedArray, axis: int):
    base = list(xas[0].shape)
    dtype = xas[0].dtype
    total = 0
    for xa in xas:
        if len(xa.shape) != len(base):
            raise ValueError("concatenate rank mismatch")
        for i, (a, b) in enumerate(zip(xa.shape, base)):
            if i != axis and a != b:
                raise ValueError(f"concatenate shape mismatch on axis {i}")
        total += xa.shape[axis]
        dtype = dtypes.promote_types(dtype, xa.dtype)
    base[axis] = total
    return ShapedArray(tuple(base), dtype)


@concatenate_p.def_vjp
def _concat_vjp(cts, invals, outvals, *, axis):
    g = cts[0]
    outs = []
    offset = 0
    for x in invals:
        n = shape_of(x)[axis]
        starts = [0] * len(shape_of(g))
        limits = list(shape_of(g))
        starts[axis], limits[axis] = offset, offset + n
        outs.append(slice_(g, starts, limits))
        offset += n
    return outs


def concatenate(xs: Sequence[ArrayLike], axis: int = 0) -> ArrayLike:
    """Concatenate arrays along ``axis``."""
    if len(xs) == 1:
        return xs[0]
    axis = axis % len(shape_of(xs[0]))
    return concatenate_p.bind(*xs, axis=axis)


slice_p = Primitive("slice")


@slice_p.def_impl
def _slice_impl(x, *, starts, limits):
    idx = tuple(slice(s, l) for s, l in zip(starts, limits))
    return x[idx]


@slice_p.def_abstract
def _slice_abs(xa: ShapedArray, *, starts, limits):
    for s, l, d in zip(starts, limits, xa.shape):
        if not (0 <= s <= l <= d):
            raise ValueError(f"bad slice [{starts}:{limits}] of {xa!r}")
    return ShapedArray(tuple(l - s for s, l in zip(starts, limits)), xa.dtype)


@slice_p.def_vjp
def _slice_vjp(cts, invals, outvals, *, starts, limits):
    return [unslice(cts[0], shape_of(invals[0]), starts)]


def slice_(x: ArrayLike, starts: Sequence[int], limits: Sequence[int]) -> ArrayLike:
    """Static strided-1 slice ``x[starts:limits]`` over all dims."""
    return slice_p.bind(x, starts=tuple(int(s) for s in starts), limits=tuple(int(l) for l in limits))


unslice_p = Primitive("unslice")
unslice_p.returns_fresh = True


@unslice_p.def_impl
def _unslice_impl(g, *, shape, starts):
    out = np.zeros(shape, dtype=g.dtype)
    idx = tuple(slice(s, s + d) for s, d in zip(starts, g.shape))
    out[idx] = g
    return out


@unslice_p.def_abstract
def _unslice_abs(ga: ShapedArray, *, shape, starts):
    return ShapedArray(tuple(shape), ga.dtype)


@unslice_p.def_vjp
def _unslice_vjp(cts, invals, outvals, *, shape, starts):
    g = cts[0]
    piece = shape_of(invals[0])
    limits = [s + d for s, d in zip(starts, piece)]
    return [slice_(g, starts, limits)]


def unslice(g: ArrayLike, shape: Sequence[int], starts: Sequence[int]) -> ArrayLike:
    """Embed ``g`` into zeros of ``shape`` at offset ``starts`` (the adjoint
    of :func:`slice_`)."""
    return unslice_p.bind(g, shape=tuple(int(d) for d in shape), starts=tuple(int(s) for s in starts))


# ---------------------------------------------------------------------------
# gather / scatter (axis-0 only: embedding lookups)
# ---------------------------------------------------------------------------

take_p = Primitive("take")
take_p.returns_fresh = True


@take_p.def_impl
def _take_impl(x, indices):
    return np.take(x, indices, axis=0)


@take_p.def_abstract
def _take_abs(xa: ShapedArray, ia: ShapedArray):
    if ia.dtype.inexact:
        raise ValueError("take indices must be integer")
    return ShapedArray(ia.shape + xa.shape[1:], xa.dtype)


@take_p.def_vjp
def _take_vjp(cts, invals, outvals):
    x, indices = invals
    return [scatter_add(indices, cts[0], shape_of(x)), None]


def take(x: ArrayLike, indices: ArrayLike) -> ArrayLike:
    """Gather rows of ``x`` (axis 0) at ``indices`` — embedding lookup."""
    return take_p.bind(x, indices)


scatter_add_p = Primitive("scatter_add")
scatter_add_p.returns_fresh = True


@scatter_add_p.def_impl
def _scatter_impl(indices, updates, *, shape):
    out = np.zeros(shape, dtype=updates.dtype)
    np.add.at(out, np.asarray(indices).reshape(-1), updates.reshape((-1,) + tuple(shape[1:])))
    return out


@scatter_add_p.def_abstract
def _scatter_abs(ia: ShapedArray, ua: ShapedArray, *, shape):
    return ShapedArray(tuple(shape), ua.dtype)


@scatter_add_p.def_vjp
def _scatter_vjp(cts, invals, outvals, *, shape):
    indices, _ = invals
    return [None, take(cts[0], indices)]


def scatter_add(indices: ArrayLike, updates: ArrayLike, shape: Sequence[int]) -> ArrayLike:
    """Scatter-add ``updates`` rows into zeros of ``shape`` at ``indices``
    (the adjoint of :func:`take`)."""
    return scatter_add_p.bind(indices, updates, shape=tuple(int(d) for d in shape))


iota_p = Primitive("iota")
iota_p.returns_fresh = True


@iota_p.def_impl
def _iota_impl(*, size, dtype):
    return np.arange(size, dtype=dtype.np_dtype)


@iota_p.def_abstract
def _iota_abs(*, size, dtype):
    return ShapedArray((size,), dtype)


def iota(size: int, dtype: DType = dtypes.int32) -> ArrayLike:
    """1-D ``arange(size)``."""
    return iota_p.bind(size=int(size), dtype=dtype)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

reduce_sum_p = Primitive("reduce_sum")
reduce_sum_p.returns_fresh = True


@reduce_sum_p.def_impl
def _rsum_impl(x, *, axes, keepdims):
    return np.sum(x, axis=axes, keepdims=keepdims, dtype=x.dtype)


@reduce_sum_p.def_abstract
def _rsum_abs(xa: ShapedArray, *, axes, keepdims):
    return ShapedArray(_reduced_shape(xa.shape, axes, keepdims), xa.dtype)


@reduce_sum_p.def_vjp
def _rsum_vjp(cts, invals, outvals, *, axes, keepdims):
    g = cts[0]
    x_shape = shape_of(invals[0])
    if not keepdims:
        kshape = tuple(1 if i in axes else d for i, d in enumerate(x_shape))
        g = reshape(g, kshape)
    return [broadcast_to(g, x_shape)]


def reduce_sum(x: ArrayLike, axes: int | Sequence[int] | None = None, keepdims: bool = False) -> ArrayLike:
    """Sum over ``axes`` (all axes when ``None``)."""
    axes = _norm_axes(axes, len(shape_of(x)))
    return reduce_sum_p.bind(x, axes=axes, keepdims=bool(keepdims))


reduce_max_p = Primitive("reduce_max")
reduce_max_p.returns_fresh = True


@reduce_max_p.def_impl
def _rmax_impl(x, *, axes, keepdims):
    return np.max(x, axis=axes, keepdims=keepdims)


@reduce_max_p.def_abstract
def _rmax_abs(xa: ShapedArray, *, axes, keepdims):
    return ShapedArray(_reduced_shape(xa.shape, axes, keepdims), xa.dtype)


@reduce_max_p.def_vjp
def _rmax_vjp(cts, invals, outvals, *, axes, keepdims):
    x = invals[0]
    x_shape = shape_of(x)
    g, o = cts[0], outvals[0]
    if not keepdims:
        kshape = tuple(1 if i in axes else d for i, d in enumerate(x_shape))
        g = reshape(g, kshape)
        o = reshape(o, kshape)
    mask = convert(equal(x, o), dtype_of(g))
    count = reduce_sum(mask, axes=axes, keepdims=True)
    return [mul(div(mask, count), broadcast_to(g, x_shape))]


def reduce_max(x: ArrayLike, axes: int | Sequence[int] | None = None, keepdims: bool = False) -> ArrayLike:
    """Max over ``axes``; ties share the gradient equally."""
    axes = _norm_axes(axes, len(shape_of(x)))
    return reduce_max_p.bind(x, axes=axes, keepdims=bool(keepdims))


def sum_(x: ArrayLike, axes: int | Sequence[int] | None = None, keepdims: bool = False) -> ArrayLike:
    """Alias of :func:`reduce_sum`."""
    return reduce_sum(x, axes, keepdims)


def max_(x: ArrayLike, axes: int | Sequence[int] | None = None, keepdims: bool = False) -> ArrayLike:
    """Alias of :func:`reduce_max`."""
    return reduce_max(x, axes, keepdims)


def mean(x: ArrayLike, axes: int | Sequence[int] | None = None, keepdims: bool = False) -> ArrayLike:
    """Arithmetic mean over ``axes`` (composite: sum / count)."""
    naxes = _norm_axes(axes, len(shape_of(x)))
    count = math.prod(shape_of(x)[a] for a in naxes)
    return div(reduce_sum(x, naxes, keepdims), float(count))


# ---------------------------------------------------------------------------
# operator overloads for TracerArray
# ---------------------------------------------------------------------------

def _getitem(x: ArrayLike, idx: Any) -> ArrayLike:
    """Basic indexing on tracers: ints and contiguous slices per dim."""
    if not isinstance(idx, tuple):
        idx = (idx,)
    shape = shape_of(x)
    if len(idx) > len(shape):
        raise IndexError(f"too many indices for shape {shape}")
    starts, limits, squeeze_axes = [], [], []
    for i, d in enumerate(shape):
        sel = idx[i] if i < len(idx) else slice(None)
        if isinstance(sel, slice):
            s, l, step = sel.indices(d)
            if step != 1:
                raise IndexError("strided slicing of tracers is not supported")
            starts.append(s)
            limits.append(l)
        elif isinstance(sel, (int, np.integer)):
            s = int(sel) % d
            starts.append(s)
            limits.append(s + 1)
            squeeze_axes.append(i)
        else:
            raise IndexError(f"unsupported tracer index: {sel!r}")
    out = slice_(x, starts, limits)
    for ax in reversed(squeeze_axes):
        out = squeeze(out, ax)
    return out


def _install_operators() -> None:
    """Attach operator overloads to :class:`TracerArray`.

    Done here (not in :mod:`repro.ir.tracer`) to break the circular import
    between the tracer and the op definitions.
    """
    T = TracerArray
    T.__add__ = lambda s, o: add(s, o)
    T.__radd__ = lambda s, o: add(o, s)
    T.__sub__ = lambda s, o: sub(s, o)
    T.__rsub__ = lambda s, o: sub(o, s)
    T.__mul__ = lambda s, o: mul(s, o)
    T.__rmul__ = lambda s, o: mul(o, s)
    T.__truediv__ = lambda s, o: div(s, o)
    T.__rtruediv__ = lambda s, o: div(o, s)
    T.__pow__ = lambda s, o: pow(s, o)
    T.__neg__ = lambda s: neg(s)
    T.__matmul__ = lambda s, o: matmul(s, o)
    T.__rmatmul__ = lambda s, o: matmul(o, s)
    T.__gt__ = lambda s, o: greater(s, o)
    T.__ge__ = lambda s, o: greater_equal(s, o)
    T.__lt__ = lambda s, o: less(s, o)
    T.__le__ = lambda s, o: less_equal(s, o)
    T.__getitem__ = _getitem
    T.T = property(lambda s: transpose(s))
    T.reshape = lambda s, *sh: reshape(s, sh[0] if len(sh) == 1 and isinstance(sh[0], (tuple, list)) else sh)
    T.sum = lambda s, axes=None, keepdims=False: reduce_sum(s, axes, keepdims)
    T.mean = lambda s, axes=None, keepdims=False: mean(s, axes, keepdims)
    T.max = lambda s, axes=None, keepdims=False: reduce_max(s, axes, keepdims)
    T.astype = lambda s, dt: convert(s, dt)


_install_operators()
