"""One-time lowering of a :class:`~repro.ir.jaxpr.Jaxpr` into a slot-indexed
:class:`LinearProgram` — the steady-state task VM.

The execution stack is ``trace -> Jaxpr -> LinearProgram -> event engine``:
the tracer records a jaxpr once, the MPMD compiler splits it into stage
tasks, and *this* module lowers each task jaxpr once so that the per-
microbatch, per-step hot path is a flat loop over pre-resolved
instructions.  The tree-walking interpreter
(:func:`repro.ir.interpreter.eval_jaxpr`) walks ``jaxpr.eqns`` through
``tracer.bind`` on every invocation — an ``id()``-keyed dict lookup per
atom, an ``abstractify`` + ``_concretize`` per operand, and an
``abstract_eval`` per equation.  A :class:`LinearProgram` pays all of that
exactly once, at lowering:

- **slot indexing** — every value lives at a fixed integer index in a flat
  slot list; operand reads are ``slots[i]``, not dict lookups, and
  ``Literal`` atoms are resolved into a constant pool baked into the
  slot template;
- **pre-bound impls** — each instruction carries the primitive's raw impl
  (with static params already bound), bypassing ``tracer.bind`` and the
  per-call ``abstract_eval`` re-check;
- **constant folding** — equations whose inputs are all literals are
  evaluated at lowering and become constants;
- **identity elision** — ``pipeline_yield`` / ``stop_gradient`` markers
  (and converts between dtypes that share storage, e.g. bf16 <-> f32) are
  elided by slot aliasing;
- **elementwise fusion** — maximal single-consumer chains of elementwise
  equations collapse into one :class:`FusedChain` composite callable
  (one VM dispatch for the whole chain);
- **liveness plan** — each instruction lists the slots whose last use it
  is; they are freed eagerly so intermediate activations die as early as
  the dataflow allows;
- **buffer donation** — an elementwise instruction whose operand dies at
  that instruction, was freshly allocated by this program, and has the
  same shape/dtype as the output, computes in place via the NumPy ufunc's
  ``out=`` (no allocation, no copy).

Donation safety: a value is donated only when (a) it was produced *inside*
this program by a primitive tagged ``returns_fresh`` (so it cannot alias a
caller-owned buffer, an object-store buffer shared across actors, or a
view of either), and (b) its total consumer count — including program
outputs — is exactly one, so no view or later reader can observe the
mutation.

Numeric equivalence: operands are canonicalized with the same NumPy-dtype
table ``bind`` applies eagerly (:data:`repro.ir.dtypes.NP_CANONICAL`), so a
``LinearProgram`` produces **bit-identical** results to ``eval_jaxpr``;
``tests/core/test_linear_backend.py`` asserts this across the whole
schedule gallery.  Under an *active trace* the program transparently falls
back to ``eval_jaxpr`` so inlining semantics (autodiff, accumulate) are
preserved.

Backend selection: ``compile_train_step(..., task_backend="linear")`` (the
default) runs stage tasks through this VM; ``task_backend="interpret"``
keeps the reference interpreter, mirroring the repo's reference-engine +
differential-test pattern (``engine="roundrobin"`` in the runtime).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from functools import partial
from typing import Any, Callable, Sequence

import numpy as np

from repro.ir import tracer
from repro.ir.dtypes import NP_CANONICAL
from repro.ir.interpreter import eval_jaxpr
from repro.ir.jaxpr import Jaxpr, Literal, Var

__all__ = ["LinearProgram", "FusedChain", "linearize", "eval_jaxpr_linear"]


class FusedChain:
    """Composite callable for one fused group of elementwise equations.

    Executes its steps over a local register file: external operands first,
    then one register per fused intermediate.  Intermediates that die
    mid-chain are donated to the consuming ufunc via ``out=``.
    """

    __slots__ = (
        "steps", "n_ext", "width", "out_idx", "name", "out_dtypes", "out_shapes"
    )

    def __init__(
        self, steps, n_ext, width, out_idx, name, out_dtypes=None, out_shapes=None
    ):
        self.steps = steps  # [(fn, src_regs, dst_reg, donate_pos, donate_dtype)]
        self.n_ext = n_ext
        self.width = width
        self.out_idx = out_idx
        self.name = name
        # per-step traced output np dtype/shape, parallel to ``steps`` —
        # consumed by the codegen backend's static dtype-stability and
        # broadcast-elision analyses; unused at runtime
        self.out_dtypes = out_dtypes
        self.out_shapes = out_shapes

    def __call__(self, *ext: Any) -> list[Any]:
        canon = NP_CANONICAL
        regs = list(ext) + [None] * (self.width - self.n_ext)
        for fn, srcs, dst, dpos, ddt in self.steps:
            ivals = []
            for s in srcs:
                v = regs[s]
                t = canon.get(v.dtype)
                if t is not v.dtype:
                    if t is None:
                        raise TypeError(f"unsupported dtype: {v.dtype!r}")
                    v = np.asarray(v, t)
                ivals.append(v)
            if dpos >= 0 and ivals[dpos].dtype is ddt:
                regs[dst] = fn(*ivals, out=ivals[dpos])
            else:
                regs[dst] = fn(*ivals)
        return [regs[i] for i in self.out_idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FusedChain({self.name}, {len(self.steps)} ops)"


def _bind_impl(prim, params: dict) -> Callable[..., Any]:
    """The primitive's raw impl with static params pre-bound."""
    impl = prim._impl
    if impl is None:
        raise NotImplementedError(f"no impl rule for {prim.name}")
    return partial(impl, **params) if params else impl


def _consume(v: np.ndarray) -> np.ndarray:
    """Canonicalize one operand exactly like eager ``bind``'s
    ``_concretize``: unsupported dtypes raise, non-canonical storage
    (float64/int64/...) converts down."""
    t = NP_CANONICAL.get(v.dtype)
    if t is None:
        raise TypeError(f"unsupported dtype: {v.dtype!r}")
    if t is not v.dtype:
        v = np.asarray(v, t)
    return v


class LinearProgram:
    """A jaxpr lowered once into a flat, slot-indexed instruction list.

    Calling the program with a flat list of arguments evaluates it
    concretely (bit-identical to :func:`~repro.ir.interpreter.eval_jaxpr`)
    and returns the flat list of outputs.  Under an active trace it
    delegates to ``eval_jaxpr`` so the jaxpr inlines into the outer trace.

    Attributes:
        jaxpr: the source program (kept for the traced fallback).
        stats: lowering statistics — ``n_eqns``, ``n_instructions``,
            ``folded``, ``aliased``, ``fused_groups``, ``fused_away``,
            ``donations``, plus the per-run Python dispatch counts
            ``vm_calls_per_run`` (this VM) and ``interp_calls_per_run``
            (what the tree-walking interpreter performs for the same
            jaxpr: bind + abstract_eval + impl + two normalizations per
            operand).
        free_plan: per instruction, the slots freed after it runs (the
            liveness plan; exposed for tests and introspection).
    """

    def __init__(self, jaxpr: Jaxpr):
        self.jaxpr = jaxpr
        n_in = len(jaxpr.invars)
        consts: list[np.ndarray] = []

        # cell: ("in", i) | ("const", ci) | ("body", body_idx, out_pos)
        cell_of: dict[int, tuple] = {}
        for i, v in enumerate(jaxpr.invars):
            cell_of[id(v)] = ("in", i)

        def const_cell(value: Any) -> tuple:
            # stored *raw*: the interpreter only canonicalizes values when
            # an equation consumes them, never the values themselves — the
            # VM's per-operand canonicalization reproduces that timing
            consts.append(np.asarray(value))
            return ("const", len(consts) - 1)

        lit_cells: dict[int, tuple] = {}  # id(Literal) -> cell (the pool)

        def cell(atom) -> tuple:
            if isinstance(atom, Literal):
                c = lit_cells.get(id(atom))
                if c is None:
                    c = lit_cells[id(atom)] = const_cell(atom.value)
                return c
            return cell_of[id(atom)]

        # ---- pass 1: constant folding + identity/convert aliasing --------
        body: list = []  # surviving eqns
        in_cells: list[list[tuple]] = []  # resolved operand cells per survivor
        n_folded = n_aliased = 0
        # vars defined by an elided identity eqn.  The interpreter
        # canonicalizes the operand when it *executes* the identity
        # (float64 -> float32 etc.); aliasing skips that, which is
        # invisible to downstream instructions (they canonicalize their own
        # operands) but observable when the alias is a program output — so
        # those outputs are canonicalized at return.
        aliased_ids: set[int] = set()
        for eqn in jaxpr.eqns:
            prim = eqn.prim
            cells = [cell(a) for a in eqn.invars]
            if (
                prim.identity_alias
                and len(eqn.invars) == 1
                and len(eqn.outvars) == 1
            ):
                cell_of[id(eqn.outvars[0])] = cells[0]
                aliased_ids.add(id(eqn.outvars[0]))
                n_aliased += 1
                continue
            if (
                prim.name == "convert"
                and eqn.invars[0].aval.dtype.np_dtype
                == eqn.outvars[0].aval.dtype.np_dtype
            ):
                # storage dtypes coincide (bf16 <-> f32): the impl is the
                # identity on the stored array
                cell_of[id(eqn.outvars[0])] = cells[0]
                aliased_ids.add(id(eqn.outvars[0]))
                n_aliased += 1
                continue
            if all(c[0] == "const" for c in cells) and prim._impl is not None:
                # fold with consumer-side canonicalization of the operands
                # (what bind would do each call) but store the raw impl
                # result, which is what the interpreter's env would hold
                ivals = [_consume(consts[c[1]]) for c in cells]
                out = prim.impl(*ivals, **eqn.params)
                outs = list(out) if prim.multiple_results else [out]
                for v, o in zip(eqn.outvars, outs):
                    cell_of[id(v)] = const_cell(o)
                n_folded += 1
                continue
            for k, v in enumerate(eqn.outvars):
                cell_of[id(v)] = ("body", len(body), k)
            body.append(eqn)
            in_cells.append(cells)

        out_cells = [cell(a) for a in jaxpr.outvars]

        # ---- pass 2: consumer counts per body-produced cell --------------
        use_count: dict[tuple, int] = {}
        for cells in in_cells:
            for c in cells:
                if c[0] == "body":
                    use_count[c] = use_count.get(c, 0) + 1
        for c in out_cells:
            if c[0] == "body":
                use_count[c] = use_count.get(c, 0) + 1

        def fresh(c: tuple) -> bool:
            return c[0] == "body" and body[c[1]].prim.returns_fresh

        # ---- pass 3: fusion grouping (union-find, root = final consumer) -
        def fusible(j: int) -> bool:
            p = body[j].prim
            return p.elementwise and not p.multiple_results and p._impl is not None

        parent = list(range(len(body)))

        def find(j: int) -> int:
            while parent[j] != j:
                parent[j] = parent[parent[j]]
                j = parent[j]
            return j

        for j, cells in enumerate(in_cells):
            if not fusible(j):
                continue
            for c in cells:
                if (
                    c[0] == "body"
                    and use_count.get(c) == 1
                    and fusible(c[1])
                ):
                    # producer's single consumer is this eqn: same group.
                    # Root is always the later (consuming) eqn, so a group
                    # executes at its final member's position and only the
                    # root's output escapes.
                    parent[find(c[1])] = find(j)

        members: dict[int, list[int]] = {}
        for j in range(len(body)):
            members.setdefault(find(j), []).append(j)

        # ---- pass 4: emission --------------------------------------------
        n_slots = n_in + len(consts)
        slot_of_cell: dict[tuple, int] = {}

        def slot(c: tuple) -> int:
            if c[0] == "in":
                return c[1]
            if c[0] == "const":
                return n_in + c[1]
            return slot_of_cell[c]

        instrs: list[tuple] = []
        instr_outs: list[tuple[int, ...]] = []  # produced slots per instruction
        # codegen hooks, parallel to ``instrs``: primitive name(s) and the
        # traced output np dtypes of each instruction
        instr_names: list[str] = []
        instr_out_dtypes: list[tuple] = []
        instr_out_shapes: list[tuple] = []
        n_donations = 0
        n_fused_groups = 0
        n_fused_away = 0
        vm_calls = 0

        def donation(eqn, cells, local_ok=None):
            """(pos, np_dtype) of a donatable dying operand, or (-1, None).

            ``local_ok`` restricts candidates (fused chains donate only
            chain-internal registers)."""
            prim = eqn.prim
            if prim.inplace_fn is None or prim.multiple_results:
                return -1, None
            out_aval = eqn.outvars[0].aval
            if out_aval.shape == ():  # 0-d results may be NumPy scalars
                return -1, None
            for pos, (atom, c) in enumerate(zip(eqn.invars, cells)):
                if local_ok is not None and not local_ok(c):
                    continue
                if (
                    c[0] == "body"
                    and use_count.get(c) == 1
                    and fresh(c)
                    and isinstance(atom, Var)
                    and atom.aval == out_aval
                ):
                    return pos, out_aval.dtype.np_dtype
            return -1, None

        for root in range(len(body)):
            group = members.get(root)
            if group is None:
                continue  # non-root member: emitted inside its group
            if len(group) == 1:
                eqn = body[root]
                cells = in_cells[root]
                dpos, ddt = donation(eqn, cells)
                fn = eqn.prim.inplace_fn if dpos >= 0 else _bind_impl(eqn.prim, eqn.params)
                if dpos >= 0:
                    n_donations += 1
                srcs = tuple(slot(c) for c in cells)
                out_slots_ = []
                for k, v in enumerate(eqn.outvars):
                    slot_of_cell[("body", root, k)] = n_slots
                    out_slots_.append(n_slots)
                    n_slots += 1
                if eqn.prim.multiple_results:
                    instrs.append((fn, srcs, -1, tuple(out_slots_), -1, None, ()))
                else:
                    instrs.append((fn, srcs, out_slots_[0], None, dpos, ddt, ()))
                instr_outs.append(tuple(out_slots_))
                instr_names.append(eqn.prim.name)
                instr_out_dtypes.append(
                    tuple(v.aval.dtype.np_dtype for v in eqn.outvars)
                )
                instr_out_shapes.append(tuple(v.aval.shape for v in eqn.outvars))
                vm_calls += 1
                continue

            # fused group: registers = [external operands..., member outputs...]
            n_fused_groups += 1
            n_fused_away += len(group) - 1
            in_group = {("body", m, 0) for m in group}
            ext_cells: list[tuple] = []
            ext_index: dict[tuple, int] = {}
            for m in group:  # first sweep: collect external operands
                for c in in_cells[m]:
                    if c not in in_group and c not in ext_index:
                        ext_index[c] = len(ext_cells)
                        ext_cells.append(c)
            n_ext = len(ext_cells)
            reg_of = {("body", m, 0): n_ext + t for t, m in enumerate(group)}
            steps = []
            for m in group:  # second sweep: build steps (original eqn order)
                eqn = body[m]
                srcs_local = tuple(
                    reg_of[c] if c in in_group else ext_index[c] for c in in_cells[m]
                )
                dpos, ddt = donation(eqn, in_cells[m], local_ok=lambda c: c in in_group)
                fn = eqn.prim.inplace_fn if dpos >= 0 else _bind_impl(eqn.prim, eqn.params)
                if dpos >= 0:
                    n_donations += 1
                steps.append((fn, srcs_local, reg_of[("body", m, 0)], dpos, ddt))
            name = "+".join(body[m].prim.name for m in group)
            step_out_dtypes = tuple(
                body[m].outvars[0].aval.dtype.np_dtype for m in group
            )
            step_out_shapes = tuple(body[m].outvars[0].aval.shape for m in group)
            chain = FusedChain(
                steps,
                n_ext,
                n_ext + len(group),
                (reg_of[("body", root, 0)],),
                name,
                out_dtypes=step_out_dtypes,
                out_shapes=step_out_shapes,
            )
            srcs = tuple(slot(c) for c in ext_cells)
            slot_of_cell[("body", root, 0)] = n_slots
            instrs.append((chain, srcs, -1, (n_slots,), -1, None, ()))
            instr_outs.append((n_slots,))
            instr_names.append(name)
            instr_out_dtypes.append((step_out_dtypes[-1],))
            instr_out_shapes.append((step_out_shapes[-1],))
            n_slots += 1
            vm_calls += len(group)

        self._out_slots = [slot(c) for c in out_cells]
        self._canon_out = tuple(
            k
            for k, atom in enumerate(jaxpr.outvars)
            if isinstance(atom, Var) and id(atom) in aliased_ids
        )

        # ---- pass 5: liveness plan ---------------------------------------
        protected = set(range(n_in, n_in + len(consts))) | set(self._out_slots)
        last_use: dict[int, int] = {}
        for idx, instr in enumerate(instrs):
            for s in instr[1]:
                last_use[s] = idx
        frees_at: dict[int, list[int]] = {}
        for s, idx in last_use.items():
            if s not in protected:
                frees_at.setdefault(idx, []).append(s)
        for idx, outs in enumerate(instr_outs):  # dead outputs die immediately
            for s in outs:
                if s not in last_use and s not in protected:
                    frees_at.setdefault(idx, []).append(s)
        self._instrs = [
            instr[:6] + (tuple(sorted(frees_at.get(idx, ()))),)
            for idx, instr in enumerate(instrs)
        ]

        # ---- bookkeeping --------------------------------------------------
        self._n_in = n_in
        self._n_consts = len(consts)
        self._instr_names = instr_names
        self._instr_out_dtypes = instr_out_dtypes
        self._instr_out_shapes = instr_out_shapes
        self._template: list[Any] = [None] * n_slots
        for ci, v in enumerate(consts):
            self._template[n_in + ci] = v
        self._cell_of = cell_of
        self._slot_of_cell = slot_of_cell
        self.n_slots = n_slots
        self.n_instructions = len(self._instrs)
        interp_calls = sum(3 + 2 * len(e.invars) for e in jaxpr.eqns)
        self.stats = {
            "n_eqns": len(jaxpr.eqns),
            "n_instructions": self.n_instructions,
            "folded": n_folded,
            "aliased": n_aliased,
            "fused_groups": n_fused_groups,
            "fused_away": n_fused_away,
            "donations": n_donations,
            "vm_calls_per_run": vm_calls,
            "interp_calls_per_run": interp_calls,
        }

    # -- introspection ------------------------------------------------------
    @property
    def free_plan(self) -> list[tuple[int, ...]]:
        """Per instruction, the slots freed (set to ``None``) after it."""
        return [instr[6] for instr in self._instrs]

    def slot_of(self, var: Var) -> int:
        """Slot index holding ``var``'s value (raises ``KeyError`` for
        variables fused away into a chain's local registers)."""
        c = self._cell_of[id(var)]
        if c[0] == "in":
            return c[1]
        if c[0] == "const":
            return self._n_in + c[1]
        return self._slot_of_cell[c]

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"LinearProgram({s['n_eqns']} eqns -> {s['n_instructions']} instrs, "
            f"folded={s['folded']}, aliased={s['aliased']}, "
            f"fused={s['fused_away']}, donations={s['donations']})"
        )

    def __reduce__(self):
        """Pickle as ``linearize(jaxpr)``: ship the (picklable) source
        jaxpr and re-lower on the other side.

        The lowered form is full of things pickle cannot and should not
        carry — ``functools.partial`` over primitive impls,
        :class:`FusedChain` steps holding raw NumPy ufuncs, and the
        identity-keyed caches.  Lowering is deterministic, so rebuilding
        from the jaxpr yields a bit-identical program; pickle's memo table
        preserves sharing, so the many :class:`~repro.runtime.instructions.RunTask`
        payloads of one stage task still collapse to a single program per
        pickle (and the identity-keyed ``linearize`` cache deduplicates
        again in the receiving process).  This is what makes compiled
        per-actor programs spawn-context clean for the multi-process MPMD
        backend (:mod:`repro.runtime.mp`).
        """
        return linearize, (self.jaxpr,)

    # -- execution ----------------------------------------------------------
    def __call__(self, args: Sequence[Any]) -> list[Any]:
        if tracer.current_trace() is not None:
            # inlining semantics (autodiff / accumulate splicing) must go
            # through bind — the VM is a steady-state fast path only
            return eval_jaxpr(self.jaxpr, list(args))
        n_in = self._n_in
        if len(args) != n_in:
            raise TypeError(f"program expects {n_in} inputs, got {len(args)}")
        slots = self._template[:]
        for i in range(n_in):
            slots[i] = np.asarray(args[i])
        canon = NP_CANONICAL
        for fn, srcs, dst, dsts, dpos, ddt, frees in self._instrs:
            ivals = []
            for s in srcs:
                v = slots[s]
                t = canon.get(v.dtype)
                if t is not v.dtype:
                    if t is None:
                        raise TypeError(f"unsupported dtype: {v.dtype!r}")
                    v = np.asarray(v, t)
                ivals.append(v)
            if dsts is None:
                if dpos >= 0 and ivals[dpos].dtype is ddt:
                    slots[dst] = fn(*ivals, out=ivals[dpos])
                else:
                    slots[dst] = fn(*ivals)
            else:
                outs = fn(*ivals)
                for d, o in zip(dsts, outs):
                    slots[d] = o
            for s in frees:
                slots[s] = None
        outs = [slots[s] for s in self._out_slots]
        for k in self._canon_out:
            # outputs reached through an elided identity eqn: apply the
            # canonicalization the interpreter would have performed there
            outs[k] = _consume(outs[k])
        return outs


# ---------------------------------------------------------------------------
# program cache: stage tasks are shared across microbatches and steps, so
# one lowering amortizes over the whole schedule
# ---------------------------------------------------------------------------

class RecentPins:
    """LRU strong-pin set for weak program caches.

    The program caches here and in :mod:`repro.ir.codegen` are
    weak-valued; these pins are what keeps a program alive when nothing
    else holds it (the eager ``accumulate_grads`` reference path).  The
    pin must be refreshed on every cache *hit*, not only on misses — the
    old miss-only deque silently evicted a hot program after 128 other
    lowerings, re-lowering it on every subsequent step.  ``touch`` is
    LRU with identity-deduped entries: a re-touched program moves to the
    back instead of occupying multiple slots.
    """

    def __init__(self, maxlen: int = 128):
        self.maxlen = maxlen
        self._pins: "OrderedDict[int, Any]" = OrderedDict()

    def touch(self, prog: Any) -> None:
        key = id(prog)
        if self._pins.get(key) is prog:
            self._pins.move_to_end(key)
            return
        self._pins[key] = prog
        while len(self._pins) > self.maxlen:
            self._pins.popitem(last=False)

    def __len__(self) -> int:
        return len(self._pins)

    def __contains__(self, prog: Any) -> bool:
        return self._pins.get(id(prog)) is prog

    def clear(self) -> None:
        self._pins.clear()


#: compiled programs keyed on jaxpr identity.  Values are weak — a program
#: lives exactly as long as someone (a CompiledStep's RunTask, the pin
#: below) holds it, and each program keeps its jaxpr alive, so a dead
#: entry can never be confused with a recycled ``id()``.
_programs: "weakref.WeakValueDictionary[int, LinearProgram]" = weakref.WeakValueDictionary()
#: strong pins for recently linearized programs (keeps the eager
#: ``accumulate_grads`` reference path from re-lowering every step);
#: refreshed on hit *and* miss so hot programs never age out
_recent = RecentPins(maxlen=128)


def linearize(jaxpr: Jaxpr) -> LinearProgram:
    """Lower ``jaxpr`` to a :class:`LinearProgram`, cached on identity."""
    prog = _programs.get(id(jaxpr))
    if prog is None or prog.jaxpr is not jaxpr:
        prog = LinearProgram(jaxpr)
        _programs[id(jaxpr)] = prog
    _recent.touch(prog)
    return prog


def eval_jaxpr_linear(jaxpr: Jaxpr, args: Sequence[Any]) -> list[Any]:
    """Drop-in replacement for :func:`~repro.ir.interpreter.eval_jaxpr`
    that lowers once (cached) and dispatches through the linear VM."""
    return linearize(jaxpr)(args)
