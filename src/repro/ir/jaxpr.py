"""The typed dataflow IR ("Jaxpr") that every compiler pass operates on.

This mirrors JAX's Jaxpr closely enough that the paper's transformations
(stage splitting, placement inference, loop commuting) translate directly:
a :class:`Jaxpr` is a list of single-assignment :class:`Eqn` equations over
:class:`Var`/:class:`Literal` atoms, with declared inputs and outputs.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable

import numpy as np

from repro.ir.avals import ShapedArray, abstractify

__all__ = ["Var", "Literal", "Atom", "Eqn", "Jaxpr", "dce", "validate", "pretty_print"]

_var_ids = itertools.count()


class Var:
    """A single-assignment IR variable. Identity-hashed; ``id`` is a global
    counter used only for stable printing."""

    __slots__ = ("id", "aval")

    def __init__(self, aval: ShapedArray):
        self.id = next(_var_ids)
        self.aval = aval

    def __repr__(self) -> str:
        return f"v{self.id}:{self.aval!r}"


class Literal:
    """A constant embedded in an equation's inputs."""

    __slots__ = ("value", "aval")

    def __init__(self, value: np.ndarray, aval: ShapedArray | None = None):
        self.value = value
        self.aval = abstractify(value) if aval is None else aval

    def __repr__(self) -> str:
        if self.aval.size == 1:
            return f"{np.asarray(self.value).reshape(())}"
        return f"lit{self.aval!r}"


Atom = Var | Literal


class Eqn:
    """One IR equation: ``outvars = prim(*invars, **params)``."""

    __slots__ = ("prim", "invars", "outvars", "params")

    def __init__(self, prim: Any, invars: list[Atom], outvars: list[Var], params: dict[str, Any]):
        self.prim = prim
        self.invars = invars
        self.outvars = outvars
        self.params = params

    def __repr__(self) -> str:
        outs = ", ".join(repr(v) for v in self.outvars)
        ins = ", ".join(repr(v) for v in self.invars)
        ps = ""
        if self.params:
            shown = {k: v for k, v in self.params.items() if not k.startswith("_")}
            if shown:
                ps = " [" + ", ".join(f"{k}={_short(v)}" for k, v in shown.items()) + "]"
        return f"{outs} = {self.prim.name}{ps} {ins}"


def _short(v: Any) -> str:
    s = repr(v)
    return s if len(s) <= 40 else s[:37] + "..."


class Jaxpr:
    """A closed, typed dataflow program.

    Attributes:
        invars: declared inputs, in call order. When a function was traced
            with free variables (closure over outer tracers), the lifted
            free variables appear *after* the explicit arguments.
        eqns: equations in topological (trace) order.
        outvars: outputs; may be ``Var`` or ``Literal`` (constant outputs).
    """

    # __weakref__ lets the linear-VM cache (repro.ir.linearize) key compiled
    # LinearPrograms on jaxpr identity without pinning jaxprs alive.
    __slots__ = ("invars", "eqns", "outvars", "__weakref__")

    def __init__(self, invars: list[Var], eqns: list[Eqn], outvars: list[Atom]):
        self.invars = invars
        self.eqns = eqns
        self.outvars = outvars

    def __repr__(self) -> str:
        return pretty_print(self)

    @property
    def n_eqns(self) -> int:
        """Number of equations."""
        return len(self.eqns)


def pretty_print(jaxpr: Jaxpr) -> str:
    """Human-readable multi-line rendering of a :class:`Jaxpr`."""
    lines = ["{ lambda " + " ".join(repr(v) for v in jaxpr.invars) + " ."]
    for eqn in jaxpr.eqns:
        lines.append(f"    {eqn!r}")
    lines.append("  return (" + ", ".join(repr(v) for v in jaxpr.outvars) + ") }")
    return "\n".join(lines)


def validate(jaxpr: Jaxpr) -> None:
    """Check IR well-formedness.

    Verifies single assignment, def-before-use, and that every output is
    either a literal or a defined/input variable. Raises ``ValueError`` on
    the first violation. Compiler passes call this in their own tests to
    guarantee they preserve well-formedness.
    """
    defined: set[int] = {id(v) for v in jaxpr.invars}
    if len(defined) != len(jaxpr.invars):
        raise ValueError("duplicate invars")
    for i, eqn in enumerate(jaxpr.eqns):
        for a in eqn.invars:
            if isinstance(a, Var) and id(a) not in defined:
                raise ValueError(f"eqn {i} ({eqn.prim.name}) uses undefined {a!r}")
        for v in eqn.outvars:
            if id(v) in defined:
                raise ValueError(f"eqn {i} redefines {v!r}")
            defined.add(id(v))
    for a in jaxpr.outvars:
        if isinstance(a, Var) and id(a) not in defined:
            raise ValueError(f"output {a!r} is undefined")


def dce(jaxpr: Jaxpr, keep_effects: Callable[[Eqn], bool] | None = None) -> Jaxpr:
    """Dead code elimination.

    Removes equations none of whose outputs are (transitively) used by the
    jaxpr outputs. ``keep_effects`` may mark equations that must be kept
    regardless (none of our primitives are effectful, but passes can opt
    markers in).
    """
    live: set[int] = {id(a) for a in jaxpr.outvars if isinstance(a, Var)}
    keep: list[Eqn] = []
    for eqn in reversed(jaxpr.eqns):
        needed = any(id(v) in live for v in eqn.outvars)
        if not needed and keep_effects is not None and keep_effects(eqn):
            needed = True
        if needed:
            keep.append(eqn)
            for a in eqn.invars:
                if isinstance(a, Var):
                    live.add(id(a))
    keep.reverse()
    return Jaxpr(jaxpr.invars, keep, jaxpr.outvars)


def eqn_dependencies(eqns: Iterable[Eqn]) -> dict[int, set[int]]:
    """Map eqn index -> set of producer eqn indices (within ``eqns``).

    Used by the stage splitter and task-graph builder to compute dependency
    closures exactly as §3.3 describes.
    """
    eqns = list(eqns)
    producer: dict[int, int] = {}
    for i, eqn in enumerate(eqns):
        for v in eqn.outvars:
            producer[id(v)] = i
    deps: dict[int, set[int]] = {}
    for i, eqn in enumerate(eqns):
        deps[i] = {
            producer[id(a)]
            for a in eqn.invars
            if isinstance(a, Var) and id(a) in producer
        }
    return deps
