"""Mini-JAX substrate: tracer, typed IR, interpreter, autodiff, stage marks.

Public surface::

    from repro import ir
    from repro.ir import ops, nn

    loss, grads = ir.value_and_grad(loss_fn)(params, batch)
    jaxpr, in_tree, out_tree = ir.trace(train_step, state, batch)
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ir import dtypes, nn, ops  # noqa: F401 (re-exported modules)
from repro.ir.autodiff import grad, value_and_grad
from repro.ir.avals import ShapedArray, abstractify
from repro.ir.dtypes import bfloat16, bool_, float16, float32, int32
from repro.ir.codegen import CodegenProgram, codegen, eval_jaxpr_codegen
from repro.ir.interpreter import eval_jaxpr
from repro.ir.jaxpr import Eqn, Jaxpr, Literal, Var, dce, pretty_print, validate
from repro.ir.linearize import LinearProgram, eval_jaxpr_linear, linearize
from repro.ir.pipeline import pipeline_yield
from repro.ir.primitives import Primitive, registry
from repro.ir.pytree import (
    TreeDef,
    tree_flatten,
    tree_leaves,
    tree_map,
    tree_structure,
    tree_unflatten,
)
from repro.ir.tracer import TracerArray, current_trace, new_trace, trace_flat

__all__ = [
    "dtypes", "ops", "nn",
    "grad", "value_and_grad",
    "ShapedArray", "abstractify",
    "float32", "bfloat16", "float16", "int32", "bool_",
    "eval_jaxpr",
    "LinearProgram", "linearize", "eval_jaxpr_linear",
    "CodegenProgram", "codegen", "eval_jaxpr_codegen",
    "Jaxpr", "Eqn", "Var", "Literal", "dce", "validate", "pretty_print",
    "pipeline_yield",
    "Primitive", "registry",
    "TreeDef", "tree_flatten", "tree_unflatten", "tree_map", "tree_leaves",
    "tree_structure",
    "TracerArray", "current_trace", "new_trace", "trace_flat",
    "trace",
]


def trace(f: Callable[..., Any], *example_args: Any):
    """Trace ``f`` on example arguments (or avals) into a :class:`Jaxpr`.

    Returns ``(jaxpr, in_tree, out_tree)`` where the trees rebuild the
    argument tuple and the (pytree) output from flat leaf lists. Example
    arguments may be concrete arrays or :class:`ShapedArray` avals.
    """
    flat, in_tree = tree_flatten(example_args)
    in_avals = [a if isinstance(a, ShapedArray) else abstractify(a) for a in flat]
    out_tree_cell: dict[str, Any] = {}

    def f_flat(*leaves: Any):
        args = tree_unflatten(in_tree, leaves)
        out = f(*args)
        out_leaves, out_tree = tree_flatten(out)
        out_tree_cell["tree"] = out_tree
        return out_leaves

    jaxpr, free_vals = trace_flat(f_flat, in_avals, name=getattr(f, "__name__", "fn"))
    if free_vals:
        raise ValueError(
            "ir.trace requires a closed function; it captured tracers from an "
            "enclosing trace"
        )
    return jaxpr, in_tree, out_tree_cell["tree"]
