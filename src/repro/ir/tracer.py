"""Tracing machinery: turns Python functions into :class:`~repro.ir.jaxpr.Jaxpr`.

Design notes
------------
- A global trace stack holds at most a handful of nested traces. ``bind``
  routes each primitive application to the innermost trace, or evaluates it
  eagerly with NumPy when no trace is active. Eager mode makes unit tests
  and VJP rules trivially debuggable (the scikit-learn performance guide's
  "keep a gold-standard Python version" advice).
- **Free-variable lifting**: when an inner trace (e.g. the body of
  ``accumulate_grads``) encounters a tracer that belongs to an *outer*
  trace — the closure over ``state.params`` in Figure 4 of the paper — the
  value is lifted to an extra input of the inner jaxpr. The caller receives
  the list of outer values aligned with those appended inputs, which is how
  the pipeline-loop equation captures the weights it uses.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.ir import dtypes
from repro.ir.avals import ShapedArray, abstractify
from repro.ir.jaxpr import Eqn, Jaxpr, Literal, Var
from repro.ir.primitives import Primitive

__all__ = ["TracerArray", "Trace", "bind", "new_trace", "trace_flat", "current_trace"]


class TracerArray:
    """A symbolic array flowing through a trace.

    Operator overloads are installed by :mod:`repro.ir.ops` at import time
    (to avoid a circular import); every overload simply calls the
    corresponding user-level op, which routes back through :func:`bind`.
    """

    # Make NumPy defer to our reflected operators instead of looping over
    # array elements when e.g. ``np_array @ tracer`` is evaluated.
    __array_ufunc__ = None
    __array_priority__ = 1000

    __slots__ = ("trace", "var")

    def __init__(self, trace: "Trace", var: Var):
        self.trace = trace
        self.var = var

    @property
    def aval(self) -> ShapedArray:
        """Abstract value (shape + dtype) of this tracer."""
        return self.var.aval

    @property
    def shape(self) -> tuple[int, ...]:
        """Static shape."""
        return self.var.aval.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.var.aval.ndim

    @property
    def dtype(self) -> dtypes.DType:
        """Logical dtype."""
        return self.var.aval.dtype

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of a 0-d tracer")
        return self.shape[0]

    def __repr__(self) -> str:
        return f"Tracer<{self.var!r}>"

    def __bool__(self) -> bool:
        raise TypeError(
            "The truth value of a traced array is unknown at trace time. "
            "Use ir.ops.where instead of Python control flow on traced values."
        )

    def __iter__(self):
        raise TypeError("iteration over a traced array is not supported")


class Trace:
    """One level of tracing: an equation recorder.

    Attributes:
        eqns: recorded equations in order.
        yield_count: running counter assigning indices to
            ``pipeline_yield`` calls (see :mod:`repro.ir.pipeline`).
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.eqns: list[Eqn] = []
        self.invars: list[Var] = []
        # id(outer tracer or ndarray) -> (Var, outer value), for closure lifting.
        self._free: dict[int, tuple[Var, Any]] = {}
        self.yield_count = 0

    # -- argument and free-variable handling ---------------------------------
    def new_arg(self, aval: ShapedArray) -> TracerArray:
        """Declare a fresh input of this trace."""
        v = Var(aval)
        self.invars.append(v)
        return TracerArray(self, v)

    def lift_free(self, value: Any) -> Var:
        """Import a value from outside this trace (an outer trace's tracer)
        as a free variable, deduplicated by identity."""
        key = id(value)
        hit = self._free.get(key)
        if hit is not None:
            return hit[0]
        v = Var(abstractify(value))
        self._free[key] = (v, value)
        return v

    @property
    def free_vars(self) -> list[Var]:
        """Lifted free variables, in first-use order."""
        return [v for v, _ in self._free.values()]

    @property
    def free_values(self) -> list[Any]:
        """Outer values corresponding to :attr:`free_vars`."""
        return [val for _, val in self._free.values()]

    # -- equation recording ---------------------------------------------------
    def process(self, prim: Primitive, args: Sequence[Any], params: dict[str, Any]) -> Any:
        """Record one application of ``prim`` and return output tracer(s)."""
        in_atoms = []
        for a in args:
            if isinstance(a, TracerArray):
                if a.trace is self:
                    in_atoms.append(a.var)
                else:
                    in_atoms.append(self.lift_free(a))
            else:
                in_atoms.append(_literal(a))
        out_avals = prim.abstract_eval(*[a.aval for a in in_atoms], **params)
        if prim.multiple_results:
            out_vars = [Var(av) for av in out_avals]
        else:
            out_vars = [Var(out_avals)]
        self.eqns.append(Eqn(prim, in_atoms, out_vars, dict(params)))
        outs = [TracerArray(self, v) for v in out_vars]
        return outs if prim.multiple_results else outs[0]


_TRACE_STACK: list[Trace] = []


def current_trace() -> Trace | None:
    """The innermost active trace, or ``None`` in eager mode."""
    return _TRACE_STACK[-1] if _TRACE_STACK else None


@contextlib.contextmanager
def new_trace(name: str = "") -> Iterator[Trace]:
    """Push a fresh trace for the duration of the context."""
    t = Trace(name)
    _TRACE_STACK.append(t)
    try:
        yield t
    finally:
        popped = _TRACE_STACK.pop()
        assert popped is t, "trace stack corrupted"


def _literal(value: Any) -> Literal:
    arr = np.asarray(value)
    aval = abstractify(arr)
    return Literal(np.asarray(arr, dtype=aval.dtype.np_dtype), aval)


def _concretize(value: Any) -> np.ndarray:
    if isinstance(value, TracerArray):
        raise TypeError(
            f"tracer {value!r} leaked into eager evaluation; it belongs to a "
            "trace that is no longer active"
        )
    arr = np.asarray(value)
    aval = abstractify(arr)
    return np.asarray(arr, dtype=aval.dtype.np_dtype)


def bind(prim: Primitive, *args: Any, **params: Any) -> Any:
    """Apply ``prim``: route to the innermost trace, or evaluate eagerly.

    A tracer belonging to *any* active trace forces tracing into the
    innermost trace (outer tracers are lifted as free variables). Plain
    arrays with no active trace evaluate immediately.
    """
    trace = current_trace()
    if trace is None or not _involves_tracing(args, trace):
        concrete = [_concretize(a) for a in args]
        # Run the abstract rule in eager mode too, so shape/dtype errors are
        # identical whether code runs eagerly or traced.
        prim.abstract_eval(*[abstractify(a) for a in concrete], **params)
        return prim.impl(*concrete, **params)
    return trace.process(prim, args, params)


def _involves_tracing(args: Sequence[Any], trace: Trace) -> bool:
    # Inside an active trace everything is traced: even constant-only ops
    # become equations so that placement inference sees them (§3.3 places
    # "computation preceding the pipeline loop", which includes
    # constant-folded label smoothing in Figure 3 of the paper).
    return True


def trace_flat(
    f_flat: Callable[..., Sequence[Any]],
    in_avals: Sequence[ShapedArray],
    name: str = "",
) -> tuple[Jaxpr, list[Any]]:
    """Trace ``f_flat`` (flat list of arrays in, flat list out) to a Jaxpr.

    Returns ``(jaxpr, free_values)``. The jaxpr's invars are the declared
    arguments followed by any lifted free variables; ``free_values`` are the
    outer values (tracers of an enclosing trace, or arrays) to be supplied
    for those extra invars when the jaxpr is invoked.
    """
    with new_trace(name) as trace:
        args = [trace.new_arg(av) for av in in_avals]
        outs = f_flat(*args)
        out_atoms: list[Any] = []
        for o in outs:
            if isinstance(o, TracerArray):
                if o.trace is not trace:
                    out_atoms.append(trace.lift_free(o))
                else:
                    out_atoms.append(o.var)
            else:
                out_atoms.append(_literal(o))
        jaxpr = Jaxpr(list(trace.invars) + trace.free_vars, trace.eqns, out_atoms)
        return jaxpr, trace.free_values
