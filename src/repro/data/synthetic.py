"""Deterministic synthetic workloads.

The paper trains on real token streams we do not have; these generators
produce deterministic synthetic equivalents that exercise identical code
paths: integer token sequences with a Zipf-like marginal (language-model
shape), and teacher-generated regression batches (MLP shape). Shapes follow
Figure 4's convention — batches arrive already microbatched as
``(n_mbs, mbsz, ...)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["token_batches", "regression_batches", "microbatch"]


def token_batches(
    vocab: int,
    seq: int,
    n_mbs: int,
    mbsz: int,
    n_batches: int,
    seed: int = 0,
    zipf_a: float = 1.3,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(tokens, targets)`` int32 pairs shaped ``(n_mbs, mbsz, seq)``.

    Targets are the next-token shift of a ``seq+1``-long sample, and token
    frequencies follow a truncated Zipf distribution so the cross-entropy
    is learnable (the embedding of frequent tokens trains fastest, like
    real text).
    """
    rng = np.random.RandomState(seed)
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    probs = ranks ** (-zipf_a)
    probs /= probs.sum()
    for _ in range(n_batches):
        flat = rng.choice(vocab, size=(n_mbs, mbsz, seq + 1), p=probs)
        yield (
            flat[..., :seq].astype(np.int32),
            flat[..., 1:].astype(np.int32),
        )


def regression_batches(
    d_in: int,
    d_out: int,
    n_mbs: int,
    mbsz: int,
    n_batches: int,
    seed: int = 0,
    noise: float = 0.05,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x, y)`` float32 pairs shaped ``(n_mbs, mbsz, d)``.

    ``y`` comes from a fixed random teacher network plus Gaussian noise,
    so losses have a known achievable floor.
    """
    rng = np.random.RandomState(seed)
    teacher = rng.randn(d_in, d_out).astype(np.float32) / np.sqrt(d_in)
    for _ in range(n_batches):
        x = rng.randn(n_mbs, mbsz, d_in).astype(np.float32)
        y = np.tanh(x @ teacher) + noise * rng.randn(n_mbs, mbsz, d_out).astype(np.float32)
        yield x, y.astype(np.float32)


def microbatch(batch: np.ndarray, n_mbs: int) -> np.ndarray:
    """Reshape a flat batch ``(B, ...)`` into ``(n_mbs, B//n_mbs, ...)`` —
    the reshape on line 2 of Figure 3."""
    b = np.asarray(batch)
    if b.shape[0] % n_mbs != 0:
        raise ValueError(f"batch of {b.shape[0]} does not split into {n_mbs} microbatches")
    return b.reshape(n_mbs, b.shape[0] // n_mbs, *b.shape[1:])
