"""Synthetic workload generators (deterministic stand-ins for the paper's
training data)."""

from repro.data.synthetic import microbatch, regression_batches, token_batches

__all__ = ["token_batches", "regression_batches", "microbatch"]
