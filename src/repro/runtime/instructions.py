"""Per-actor instruction streams (§4.4's fused MPMD "program").

The JaxPP compiler lowers the unrolled task graph into one flat instruction
list per actor — run-task, send, recv, delete, accumulate, all-reduce —
which the driver dispatches in a single RPC per actor. The executor in
:mod:`repro.runtime.executor` interprets these streams for real (numeric
mode) or symbolically under a cost model (simulation mode).
"""

from __future__ import annotations

import dataclasses
from typing import Any

__all__ = [
    "BufferRef",
    "Instruction",
    "RunTask",
    "Send",
    "Recv",
    "Delete",
    "Accumulate",
    "AllReduce",
]


@dataclasses.dataclass(frozen=True)
class BufferRef:
    """A handle naming one buffer in some actor's object store.

    ``uid`` is unique across the whole program; the same uid on two actors
    refers to the two ends of a transfer.
    """

    uid: str

    def __repr__(self) -> str:
        return f"&{self.uid}"


class Instruction:
    """Base class for actor instructions (see subclasses)."""

    __slots__ = ()


@dataclasses.dataclass
class RunTask(Instruction):
    """Execute one SPMD task (a pipeline-stage computation).

    Attributes:
        name: display name, e.g. ``"f1(3)"`` — stage & microbatch like Fig 3.
        in_refs: operand buffers (must all be present & arrived).
        out_refs: buffers the task defines.
        fn: executable payload — ``None`` in simulation mode. Numeric mode
            uses a callable ``fn(list_of_arrays) -> list_of_arrays``.
        cost: virtual seconds of device time (simulation mode; numeric mode
            may leave 0). Dispatch overhead is added by the cost model.
        meta: free-form details (stage id, microbatch, kind) for timelines.
    """

    name: str
    in_refs: list[BufferRef]
    out_refs: list[BufferRef]
    fn: Any = None
    cost: float = 0.0
    meta: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class Send(Instruction):
    """Post an asynchronous point-to-point send of ``ref`` to ``dst``.

    NCCL semantics: the k-th send from A to B matches the k-th recv from A
    posted on B; matching order must agree or the program deadlocks
    (Figure 5). ``key`` is carried for cross-checking that matched pairs
    refer to the same logical value.
    """

    ref: BufferRef
    dst: int
    key: str


@dataclasses.dataclass
class Recv(Instruction):
    """Post an asynchronous receive into ``ref`` from ``src`` (see
    :class:`Send` for matching semantics)."""

    ref: BufferRef
    src: int
    key: str
    nbytes: int = 0  # simulation mode: expected transfer size


@dataclasses.dataclass
class Delete(Instruction):
    """Free a buffer (§4.3).

    If the buffer has an outstanding send, deletion is deferred into the
    actor's pending-deletions queue and retried by later deletes — exactly
    the reclamation scheme the paper describes.
    """

    ref: BufferRef


@dataclasses.dataclass
class Accumulate(Instruction):
    """Gradient accumulation: ``acc += value`` (first use initialises).

    This is the loop-carried state of ``accumulate_grads`` made explicit in
    the instruction stream so that schedules are free to interleave
    microbatches arbitrarily.
    """

    acc: BufferRef
    value: BufferRef
    delete_value: bool = True


@dataclasses.dataclass
class AllReduce(Instruction):
    """Cross-actor collective (data-parallel gradient sync across pipeline
    replicas). All actors listing the same ``group_key`` rendezvous; each
    contributes ``ref`` and receives the elementwise sum."""

    ref: BufferRef
    group: tuple[int, ...]
    group_key: str
