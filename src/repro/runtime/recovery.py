"""Fault-tolerant step replay: training survives worker death.

The persistent pool (PR 6) already *detects* failure well — a killed
worker fails pending futures with a crash diagnostic, a wedged one trips
the no-progress watchdog, and :class:`~repro.core.api.RemoteMesh`
transparently respawns a dead pool.  But detection alone loses all
in-flight training state: the caller's loop dies at step 4217 of a
long-running job, which is precisely the workload the paper targets
(§6: "JaxPP focuses on long-running training jobs") and the PipeDream
lineage assumes survivable.

This module closes the loop with the classic recover-and-continue state
machine::

    run ──failure──▶ classify ──recoverable──▶ respawn ──▶ restore ──▶ replay ─┐
     ▲                   │                                                     │
     └───────────────────┼──────────────────────◀──────────────────────────────┘
                         └──unrecoverable / budget exhausted──▶ re-raise (fail fast)

- **Snapshot.**  Before step ``i`` (every ``snapshot_every`` steps) the
  program-owned state — the first argument of the functional step, by
  convention ``(state, batch) -> (state, loss)`` — is written through
  :func:`repro.models.checkpoint.save_checkpoint` (atomic: tmp +
  rename), optionally on a background thread so training does not stall
  on the disk.  The last ``keep`` snapshots are retained.
- **Classify.**  The failure is promoted into a typed
  :class:`RankFailure` event (kind ``"crash"`` / ``"deadlock"`` /
  ``"pool"``, implicated ranks parsed from the diagnostic) and appended
  to ``step_fn.failures``.  :func:`is_recoverable` draws the line:
  infrastructure failures (worker death, watchdog expiry, a dead pool)
  are retried; deterministic program bugs
  (:class:`~repro.runtime.executor.CommMismatchError`, a task raising)
  re-raise immediately — replaying a compiler bug can only fail again.
- **Respawn + re-ship.**  Nothing to do here beyond calling the step
  again: ``RemoteMesh._acquire_mp_pool`` notices the dead pool and
  spawns a fresh one (bumping the mesh's pool *generation*, which is
  what keeps a generation-0 :class:`~repro.runtime.faults.FaultPlan`
  from re-firing during replay), and the new pool re-ships the compiled
  program under its :attr:`~repro.core.compile.CompiledStep.program_key`
  on first submission.
- **Restore + replay.**  State reloads from the newest *loadable*
  snapshot — a corrupt file (torn write, scribbled bytes) raises the
  typed :class:`~repro.models.checkpoint.CheckpointCorruptError` and
  restore falls back to the next-older snapshot — then the failed step
  window replays: steps ``snap .. i-1`` re-run to regenerate state
  (bit-identical, because steps are functional and deterministic), and
  step ``i`` re-runs for real.  Bounded: ``max_retries`` attempts per
  step, ``give_up_after`` failures per run, optional exponential
  ``backoff_s`` — exhausting either budget re-raises the underlying
  exception, degrading gracefully to exactly the fail-fast behavior a
  policy-less mesh has.

Opt-in::

    mesh = RemoteMesh((4,), engine="mp",
                      recovery=RecoveryPolicy(snapshot_every=2, keep=2))
    step = mesh.distributed(train_step)      # a ResilientStepFunction
    for batch in data:
        state, loss = step(state, batch)     # survives rank death
    step.failures                            # typed RankFailure events

Every path through the state machine is exercised deterministically by
``tests/runtime/test_recovery.py`` via :mod:`repro.runtime.faults` —
no racy ``kill -9`` timing anywhere.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re
import shutil
import tempfile
import threading
import time
import weakref
from typing import Any

from repro.models.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.executor import CommMismatchError, DeadlockError

__all__ = [
    "RecoveryPolicy",
    "RankFailure",
    "ResilientStepFunction",
    "ResilientMesh",
    "is_recoverable",
    "classify_failure",
]

#: diagnostic substrings that mark an *infrastructure* failure — the
#: kinds a respawn-restore-replay cycle can actually cure.
_RECOVERABLE_PATTERNS = (
    "died without reporting",        # worker killed (pool & one-shot)
    "ActorPool is dead",             # submission raced the pool's death
    "driver thread crashed",         # pool driver thread fell over
    "shut down before completion",   # workers wedged during shutdown
)


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """How a :class:`ResilientStepFunction` snapshots and retries.

    Attributes:
        snapshot_every: snapshot the input state every this-many steps
            (1 = before every step; larger trades replay length for
            snapshot overhead).
        keep: snapshots retained on disk — more than one lets restore
            survive a corrupt newest snapshot.
        max_retries: recovery attempts per failing step before giving up.
        give_up_after: total failures tolerated over the run (a lifetime
            budget across steps); ``0`` disables recovery outright —
            the first failure re-raises, restoring fail-fast behavior.
        backoff_s: sleep before attempt ``k`` is ``backoff_s * 2**(k-1)``
            (0 disables; keeps chaos tests fast).
        snapshot_dir: where snapshots live; ``None`` creates a private
            temporary directory, removed when the step function is
            garbage-collected.
        snapshot_async: write snapshots on a background thread (joined
            before the next snapshot and before any restore), so the
            step stream does not stall on disk.  The functional-step
            convention makes this safe without copying: state pytrees
            are replaced, never mutated in place.
        state_arg: index of the program-owned state in the step's
            positional arguments.
        state_output: index of the updated state in the step's output
            tuple (ignored when the step returns the state bare).
    """

    snapshot_every: int = 1
    keep: int = 2
    max_retries: int = 2
    give_up_after: int = 3
    backoff_s: float = 0.0
    snapshot_dir: str | pathlib.Path | None = None
    snapshot_async: bool = True
    state_arg: int = 0
    state_output: int = 0

    def __post_init__(self):
        if self.snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {self.snapshot_every}")
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.give_up_after < 0:
            raise ValueError(f"give_up_after must be >= 0, got {self.give_up_after}")


@dataclasses.dataclass(frozen=True)
class RankFailure:
    """One detected infrastructure failure, promoted from a raw runtime
    exception into a typed event (``step_fn.failures`` accumulates them).

    Attributes:
        step: driver-side step index the failure interrupted.
        attempt: 1-based recovery attempt this failure triggered.
        kind: ``"crash"`` (worker died), ``"deadlock"`` (watchdog
            expired: wedged worker or lost message), or ``"pool"``
            (pool-level failure without a more specific diagnosis).
        ranks: actor ranks implicated by the diagnostic (may be empty).
        message: the underlying exception text.
    """

    step: int
    attempt: int
    kind: str
    ranks: tuple[int, ...]
    message: str


def classify_failure(exc: BaseException) -> tuple[str, tuple[int, ...]]:
    """Map a runtime exception to a :class:`RankFailure` kind plus the
    actor ranks its diagnostic implicates."""
    text = str(exc)
    ranks = tuple(dict.fromkeys(int(r) for r in re.findall(r"actor (\d+)", text)))
    if isinstance(exc, DeadlockError):
        return "deadlock", ranks
    if "died without reporting" in text:
        return "crash", ranks
    return "pool", ranks


def is_recoverable(exc: BaseException) -> bool:
    """True when respawn + restore + replay can plausibly cure ``exc``.

    Infrastructure failures qualify: a killed worker, an expired
    watchdog (wedged worker, lost message), a dead pool.  Deterministic
    program failures do not — :class:`CommMismatchError` is a compiler
    bug and a worker *raising* is a task bug; both would simply recur on
    replay, so they fail fast exactly as without recovery.
    """
    if isinstance(exc, CommMismatchError):
        return False
    if isinstance(exc, DeadlockError):
        return True
    if isinstance(exc, RuntimeError):
        text = str(exc)
        return any(pat in text for pat in _RECOVERABLE_PATTERNS)
    return False


class ResilientStepFunction:
    """Wraps a :class:`~repro.core.api.StepFunction` with the
    snapshot / restore / replay state machine described in the module
    docstring.  Built by ``mesh.distributed(...)`` when the mesh has a
    :class:`RecoveryPolicy` (``RemoteMesh(recovery=...)``); everything
    of the inner step function (``.compiled``, ``.last_result``, …) is
    reachable by delegation.

    Attributes:
        failures: typed :class:`RankFailure` events, oldest first.
        recoveries: completed restore-replay cycles.
        snapshots_written: state snapshots persisted so far.
    """

    def __init__(self, inner, policy: RecoveryPolicy):
        self._inner = inner
        self.policy = policy
        self.failures: list[RankFailure] = []
        self.recoveries = 0
        self.snapshots_written = 0
        self._step = 0
        self._snapshots: dict[int, pathlib.Path] = {}  # step -> file
        self._window: dict[int, tuple] = {}  # step -> full args tuple
        self._snap_thread: threading.Thread | None = None
        self._snap_error: BaseException | None = None
        if policy.snapshot_dir is None:
            self._dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-recovery-"))
            self._rmdir = weakref.finalize(
                self, shutil.rmtree, str(self._dir), ignore_errors=True
            )
        else:
            self._dir = pathlib.Path(policy.snapshot_dir)
            self._dir.mkdir(parents=True, exist_ok=True)
            self._rmdir = None

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return (
            f"ResilientStepFunction({self._inner!r}, step={self._step}, "
            f"failures={len(self.failures)})"
        )

    # -- snapshotting ------------------------------------------------------
    def _join_snapshot(self) -> None:
        t = self._snap_thread
        if t is not None:
            t.join()
            self._snap_thread = None
        if self._snap_error is not None:
            exc, self._snap_error = self._snap_error, None
            raise exc

    def _checkpoint_faults(self):
        plan = getattr(getattr(self._inner, "mesh", None), "fault_plan", None)
        return plan.checkpoint_faults if plan is not None else []

    def _maybe_snapshot(self, step: int, state: Any) -> None:
        if step % self.policy.snapshot_every != 0:
            return
        if step in self._snapshots:  # retry of a step already snapshotted
            return
        self._join_snapshot()
        path = self._dir / f"snap-{step:08d}.npz"
        seq = self.snapshots_written
        self.snapshots_written += 1
        faults = self._checkpoint_faults()

        def write() -> None:
            try:
                # fsync=False: snapshots outlive dead *workers*, not dead
                # hosts — a machine crash kills the replaying driver too,
                # so paying ~ms of stable-storage flush per step buys
                # nothing here
                final = save_checkpoint(path, state, fsync=False)
                for f in faults:
                    if f.at_snapshot == seq:
                        f.apply(final)  # injected torn write / bit rot
            except BaseException as e:  # surfaced at the next join
                self._snap_error = e

        self._snapshots[step] = path
        if self.policy.snapshot_async:
            self._snap_thread = threading.Thread(
                target=write, name="repro-snapshot", daemon=True
            )
            self._snap_thread.start()
        else:
            write()
        self._prune(step)

    def _prune(self, step: int) -> None:
        """Retain the ``keep`` newest snapshots; the replay window only
        needs batches back to the oldest snapshot still on disk."""
        steps = sorted(self._snapshots)
        for s in steps[: -self.policy.keep]:
            path = self._snapshots.pop(s)
            try:
                path.unlink()
            except OSError:
                pass
        horizon = min(self._snapshots, default=step)
        for s in [s for s in self._window if s < horizon]:
            del self._window[s]

    # -- restore + replay --------------------------------------------------
    def _restore(self, last_exc: BaseException) -> tuple[int, Any]:
        """State from the newest loadable snapshot, falling back past
        corrupt files; with none loadable, recovery is impossible and the
        underlying failure re-raises."""
        self._join_snapshot()
        for snap_step in sorted(self._snapshots, reverse=True):
            try:
                return snap_step, load_checkpoint(self._snapshots[snap_step])
            except CheckpointError:
                continue  # torn/scribbled snapshot: fall back one older
        raise last_exc

    def _replay(self, snap_step: int, state: Any, upto: int) -> Any:
        """Re-run steps ``snap_step .. upto-1`` from restored state.
        Functional, deterministic steps make the regenerated state
        bit-identical to the lost one."""
        idx = self.policy.state_arg
        for s in range(snap_step, upto):
            args = list(self._window[s])
            args[idx] = state
            out = self._inner(*args)
            state = (
                out[self.policy.state_output] if isinstance(out, tuple) else out
            )
        return state

    # -- the step ----------------------------------------------------------
    def __call__(self, *args: Any) -> Any:
        step = self._step
        self._window[step] = args
        self._maybe_snapshot(step, args[self.policy.state_arg])
        attempt = 0
        while True:
            try:
                out = self._inner(*args)
            except BaseException as e:
                if not is_recoverable(e):
                    raise
                attempt += 1
                kind, ranks = classify_failure(e)
                self.failures.append(
                    RankFailure(step, attempt, kind, ranks, str(e))
                )
                # both budgets degrade to fail-fast: the *underlying*
                # exception propagates, same as a policy-less mesh
                if len(self.failures) > self.policy.give_up_after:
                    raise
                if attempt > self.policy.max_retries:
                    raise
                if self.policy.backoff_s > 0.0:
                    time.sleep(self.policy.backoff_s * 2.0 ** (attempt - 1))
                # respawn happens inside the retried call: the mesh sees
                # the dead pool and spawns generation g+1, which re-ships
                # the compiled program on first submission
                snap_step, state = self._restore(e)
                state = self._replay(snap_step, state, step)
                new_args = list(args)
                new_args[self.policy.state_arg] = state
                args = tuple(new_args)
                self.recoveries += 1
                continue
            self._step = step + 1
            return out

    def close(self) -> None:
        """Join any in-flight snapshot write and delete a private
        snapshot directory (explicit ``snapshot_dir`` is left alone)."""
        try:
            self._join_snapshot()
        finally:
            if self._rmdir is not None:
                self._rmdir()


class ResilientMesh:
    """A :class:`~repro.core.api.RemoteMesh` view whose ``distributed``
    always returns resilient step functions — the wrapper form of
    ``RemoteMesh(recovery=policy)`` for meshes built elsewhere::

        rmesh = ResilientMesh(mesh, RecoveryPolicy(snapshot_every=2))
        step = rmesh.distributed(train_step)

    Everything else (``close()``, ``n_actors``, …) delegates to the
    wrapped mesh.
    """

    def __init__(self, mesh, policy: RecoveryPolicy):
        self.mesh = mesh
        self.policy = policy

    def distributed(self, *args: Any, **kwargs: Any):
        fn = self.mesh.distributed(*args, **kwargs)
        if isinstance(fn, ResilientStepFunction):
            return fn  # the mesh already wraps (RemoteMesh(recovery=...))
        return ResilientStepFunction(fn, self.policy)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.mesh, name)

    def __repr__(self) -> str:
        return f"ResilientMesh({self.mesh!r}, {self.policy!r})"
