"""Whole-actor loop fusion: instruction streams -> generated driver source.

The codegen task backend (:mod:`repro.ir.codegen`) removes per-equation
dispatch *inside* one stage task; what remains of a steady-state step is
the engine's instruction loop itself — one Python-level dispatch (plus
store, arrival and timeline bookkeeping) per instruction per microbatch.
This module freezes that loop too, the same way the task backend freezes
a jaxpr: walk the per-actor instruction streams once, emit straight-line
Python source, ``exec``-compile it, and run the generated driver on
every subsequent step.

Two fusion surfaces, both opt-in via ``RemoteMesh(codegen_actor=True)``:

* :func:`fuse_mesh` — the in-process fast path.  All actors' programs
  are merged into ONE driver function in global data-dependency order:
  a matched send/recv pair collapses into a local rebind (``b12 = b7``),
  tasks call their compiled payloads directly on locals, deletes become
  ``= None`` and accumulates become ``acc = acc + v``.  Steady-state
  dispatch is O(task calls), and point-to-point transfers cost nothing
  at all.  Values are bit-identical to the event engine (same payload
  callables, same operand objects, same all-reduce fold order); what the
  fused driver deliberately does *not* produce is the virtual-time
  timeline and wait profile — introspection is the price of fusion, so
  the flag refuses to combine with a ``cost_model``.
* :func:`worker_driver` — the ``engine="mp"`` variant.  One straight-line
  driver per actor process: RunTask bodies are inlined over the worker's
  object store (require checks survive only for recv-fed operands),
  comm and collective instructions delegate to the worker's channel
  methods, which block for real.  Source is regenerated from the shipped
  program after unpickling — the pickle-clean contract is untouched —
  and cached per program identity, so the persistent pool (which ships
  a program object once) generates once per pool lifetime.

Both generators attach the emitted text as ``.source`` for inspection,
mirroring ``CodegenProgram.source``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.runtime.instructions import (
    Accumulate,
    AllReduce,
    Delete,
    Instruction,
    Recv,
    RunTask,
    Send,
)

__all__ = ["FusionError", "MeshDriver", "fuse_mesh", "worker_driver"]


class FusionError(RuntimeError):
    """The instruction streams cannot be fused into a straight-line driver
    (mismatched send/recv pairing, simulation-mode tasks without payloads,
    or a dependency cycle that would also deadlock the real engines)."""


# ---------------------------------------------------------------------------
# whole-mesh fusion (in-process engines)
# ---------------------------------------------------------------------------


class MeshDriver:
    """One exec-compiled function executing a whole mesh's step.

    Call with a dict mapping ``(actor, uid)`` to the placed input arrays;
    returns the requested output buffers as a list, in the order the
    ``outputs`` argument of :func:`fuse_mesh` listed them.

    Attributes:
        source: the generated Python text (debugging / ``dump-codegen``).
        n_instructions: instructions fused away across all programs.
        n_tasks: RunTask payload calls the driver makes per step.
        p2p_count: send/recv pairs collapsed into local rebinds.
        p2p_bytes: their total payload bytes (from the compiler's size
            hints), reported in the synthetic
            :class:`~repro.runtime.executor.ExecutionResult`.
    """

    __slots__ = (
        "_fn", "source", "n_instructions", "n_tasks", "p2p_count", "p2p_bytes",
    )

    def __init__(self, fn, source, n_instructions, n_tasks, p2p_count, p2p_bytes):
        self._fn = fn
        self.source = source
        self.n_instructions = n_instructions
        self.n_tasks = n_tasks
        self.p2p_count = p2p_count
        self.p2p_bytes = p2p_bytes

    def __call__(self, placed: dict) -> list:
        return self._fn(placed)


def _match_pairs(programs: Sequence[Sequence[Instruction]]):
    """FIFO-match every send to its recv (NCCL semantics: the k-th send
    from A to B pairs with the k-th recv from A posted on B)."""
    sends: dict[tuple[int, int], list[Send]] = {}
    recvs: dict[tuple[int, int], list[Recv]] = {}
    for a, prog in enumerate(programs):
        for instr in prog:
            if isinstance(instr, Send):
                sends.setdefault((a, instr.dst), []).append(instr)
            elif isinstance(instr, Recv):
                recvs.setdefault((instr.src, a), []).append(instr)
    pair_of_send: dict[int, tuple[int, Recv]] = {}
    for chan in set(sends) | set(recvs):
        ss, rr = sends.get(chan, []), recvs.get(chan, [])
        if len(ss) != len(rr):
            raise FusionError(
                f"channel {chan[0]}->{chan[1]} has {len(ss)} sends but "
                f"{len(rr)} recvs; streams cannot be fused"
            )
        for s, r in zip(ss, rr):
            if s.key != r.key:
                raise FusionError(
                    f"channel {chan[0]}->{chan[1]} pairs send {s.key!r} "
                    f"with recv {r.key!r}; matching order disagrees"
                )
            pair_of_send[id(s)] = (chan[1], r)
    return pair_of_send


def fuse_mesh(
    programs: Sequence[Sequence[Instruction]],
    outputs: Sequence[tuple[int, str]],
    initial: Sequence[tuple[int, str]],
) -> MeshDriver:
    """Fuse all actors' instruction streams into one driver function.

    Instructions are merged in global data-dependency order (a valid
    topological interleaving; values are order-independent because every
    task consumes exact operand objects).  The all-reduce fold replicates
    the engines' deterministic sorted-actor order, so results stay
    bit-identical to the unfused engines.

    Args:
        programs: one instruction stream per actor (numeric mode — every
            RunTask must carry its payload callable).
        outputs: ``(actor, uid)`` buffers the driver must return, in order.
        initial: ``(actor, uid)`` keys of the placed input buffers.
    """
    pair_of_send = _match_pairs(programs)
    n = len(programs)
    env: dict[str, Any] = {}
    names: dict[tuple[int, str], str] = {}
    out_set = set(outputs)

    def name(actor: int, uid: str) -> str:
        key = (actor, uid)
        nm = names.get(key)
        if nm is None:
            nm = names[key] = f"b{len(names)}"
        return nm

    lines: list[str] = []
    avail: set[tuple[int, str]] = set()
    for actor, uid in initial:
        lines.append(f"    {name(actor, uid)} = _in[({actor}, {uid!r})]")
        avail.add((actor, uid))

    pcs = [0] * n
    posted: dict[str, dict[int, None]] = {}
    done_groups: set[str] = set()
    n_instructions = sum(len(p) for p in programs)
    n_tasks = 0
    p2p_count = 0
    p2p_bytes = 0
    remaining = n_instructions
    progress = True
    while remaining and progress:
        progress = False
        for a in range(n):
            prog = programs[a]
            while pcs[a] < len(prog):
                instr = prog[pcs[a]]
                if isinstance(instr, RunTask):
                    if instr.fn is None:
                        # cost-only markers (zero-bubble W units) carry no
                        # payload and no refs: pure no-ops once fused
                        if instr.in_refs or instr.out_refs:
                            raise FusionError(
                                f"task {instr.name!r} has no payload "
                                "(simulation mode); whole-actor fusion is "
                                "numeric-only"
                            )
                        pcs[a] += 1
                        remaining -= 1
                        progress = True
                        continue
                    if any((a, r.uid) not in avail for r in instr.in_refs):
                        break
                    tag = f"_t{n_tasks}"
                    env[tag] = instr.fn
                    n_tasks += 1
                    ins = ", ".join(name(a, r.uid) for r in instr.in_refs)
                    outs = ", ".join(name(a, r.uid) for r in instr.out_refs)
                    sep = "," if len(instr.out_refs) == 1 else ""
                    lines.append(f"    {outs}{sep} = {tag}([{ins}])  # {instr.name}")
                    for r in instr.out_refs:
                        avail.add((a, r.uid))
                elif isinstance(instr, Send):
                    if (a, instr.ref.uid) not in avail:
                        break
                    dst, recv = pair_of_send[id(instr)]
                    lines.append(
                        f"    {name(dst, recv.ref.uid)} = {name(a, instr.ref.uid)}"
                        f"  # {a}->{dst} {instr.key}"
                    )
                    avail.add((dst, recv.ref.uid))
                    p2p_count += 1
                    p2p_bytes += recv.nbytes
                elif isinstance(instr, Recv):
                    # delivery happens at the paired send; just wait for it
                    if (a, instr.ref.uid) not in avail:
                        break
                elif isinstance(instr, Delete):
                    key = (a, instr.ref.uid)
                    if key in names and key not in out_set:
                        lines.append(f"    {names[key]} = None")
                    avail.discard(key)
                elif isinstance(instr, Accumulate):
                    if (a, instr.value.uid) not in avail:
                        break
                    acc, val = (a, instr.acc.uid), (a, instr.value.uid)
                    if acc in avail:
                        lines.append(
                            f"    {name(*acc)} = {names[acc]} + {names[val]}"
                        )
                    else:
                        lines.append(f"    {name(*acc)} = {names[val]}")
                        avail.add(acc)
                    if instr.delete_value:
                        lines.append(f"    {names[val]} = None")
                        avail.discard(val)
                elif isinstance(instr, AllReduce):
                    gk = instr.group_key
                    if gk not in done_groups:
                        if (a, instr.ref.uid) not in avail:
                            break
                        group_posts = posted.setdefault(gk, {})
                        group_posts[a] = None
                        if set(group_posts) != set(instr.group):
                            break  # park until the whole group arrives
                        # rendezvous complete: fold in sorted-actor order
                        # (the engines' deterministic reduction order) and
                        # hand every participant the same result object
                        refs = {
                            m: next(
                                i.ref
                                for i in programs[m]
                                if isinstance(i, AllReduce) and i.group_key == gk
                            )
                            for m in instr.group
                        }
                        members = sorted(instr.group)
                        fold = names[(members[0], refs[members[0]].uid)]
                        for m in members[1:]:
                            fold = f"{fold} + {names[(m, refs[m].uid)]}"
                        tot = f"_ar{len(done_groups)}"
                        lines.append(f"    {tot} = {fold}  # allreduce {gk}")
                        for m in members:
                            lines.append(f"    {name(m, refs[m].uid)} = {tot}")
                        done_groups.add(gk)
                else:
                    raise FusionError(f"unknown instruction {instr!r}")
                pcs[a] += 1
                remaining -= 1
                progress = True
    if remaining:
        stuck = [
            f"actor {a} at [{pcs[a]}] {programs[a][pcs[a]]!r}"
            for a in range(n)
            if pcs[a] < len(programs[a])
        ]
        raise FusionError(
            "instruction streams deadlock under dataflow order:\n  "
            + "\n  ".join(stuck)
        )

    rets = ", ".join(names[key] for key in outputs)
    lines.append(f"    return [{rets}]")
    source = "def _driver(_in):\n" + "\n".join(lines) + "\n"
    code = compile(source, "<fused-mesh>", "exec")
    exec(code, env)
    return MeshDriver(
        env["_driver"], source, n_instructions, n_tasks, p2p_count, p2p_bytes
    )


# ---------------------------------------------------------------------------
# per-actor fusion (mp workers)
# ---------------------------------------------------------------------------

#: id(program) -> (program, driver).  The strong reference to the program
#: pins its id, so the persistent pool's re-submissions of the same shipped
#: object hit the cache instead of regenerating source every step.
_WORKER_DRIVERS: dict[int, tuple[Any, Callable]] = {}


def worker_driver(program: Sequence[Instruction]) -> Callable:
    """Generate (or fetch) the fused driver for one mp worker's program.

    The driver takes the :class:`~repro.runtime.mp._Worker` and replays
    its interpretation loop as straight-line source: RunTask store
    traffic and timeline events are inlined (``require`` survives only
    for operands fed by a recv — everything else is provably present),
    while send/recv/accumulate/all-reduce delegate to the worker's
    blocking channel methods.  ``W.pc`` is kept exact so error reports
    and deadlock diagnostics are unchanged.
    """
    cached = _WORKER_DRIVERS.get(id(program))
    if cached is not None and cached[0] is program:
        return cached[1]

    from repro.runtime.mp import TimelineEvent  # re-exported there

    env: dict[str, Any] = {"_TE": TimelineEvent}
    lines = [
        "    _s = W.store",
        "    _get = _s.get; _put = _s.put; _del = _s.delete",
        "    _now = W.now; _tl = W.timeline.append; _rank = W.rank",
    ]
    recv_fed: set[str] = set()
    for k, instr in enumerate(program):
        lines.append(f"    W.pc = {k}")
        if isinstance(instr, RunTask):
            onb = instr.meta.get("out_nbytes", [0] * len(instr.out_refs))
            for j, r in enumerate(instr.in_refs):
                env[f"_i{k}r{j}"] = r
                if r.uid in recv_fed:
                    lines.append(f"    W.require(_i{k}r{j})")
            if instr.fn is not None:
                env[f"_f{k}"] = instr.fn
                env[f"_m{k}"] = instr.meta
                ins = ", ".join(
                    f"_get(_i{k}r{j}).value" for j in range(len(instr.in_refs))
                )
                lines.append("    _t0 = _now()")
                lines.append(f"    _o = _f{k}([{ins}])")
                lines.append(
                    f"    if len(_o) != {len(instr.out_refs)}:"
                    f" W.fail('protocol', 'task {instr.name} arity')"
                )
                for j, r in enumerate(instr.out_refs):
                    env[f"_o{k}r{j}"] = r
                    nb = onb[j] if j < len(onb) else 0
                    nbexpr = str(nb) if nb else f"getattr(_o[{j}], 'nbytes', 0)"
                    lines.append(f"    _put(_o{k}r{j}, _o[{j}], {nbexpr})")
                lines.append(
                    f"    _tl(_TE(_rank, 'task', {instr.name!r}, _t0, _now(),"
                    f" meta=dict(_m{k})))"
                )
            else:  # pragma: no cover - mp runs are numeric
                env[f"_i{k}"] = instr
                lines.append(f"    W.exec_task(_i{k})")
        elif isinstance(instr, Delete):
            env[f"_i{k}r"] = instr.ref
            lines.append(f"    _del(_i{k}r)")
        elif isinstance(instr, Recv):
            recv_fed.add(instr.ref.uid)
            env[f"_i{k}"] = instr
            lines.append(f"    W.exec_recv(_i{k})")
        else:
            env[f"_i{k}"] = instr
            handler = {
                Send: "exec_send",
                Accumulate: "exec_accumulate",
                AllReduce: "exec_allreduce",
            }.get(type(instr))
            if handler is None:
                raise FusionError(f"unknown instruction {instr!r}")
            lines.append(f"    W.{handler}(_i{k})")
    lines.append(f"    W.visits += {len(program)}")
    source = "def _drive(W):\n" + "\n".join(lines) + "\n"
    code = compile(source, "<fused-worker>", "exec")
    exec(code, env)
    fn = env["_drive"]
    fn.source = source
    _WORKER_DRIVERS[id(program)] = (program, fn)
    return fn
