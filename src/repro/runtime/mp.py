"""True multi-process MPMD backend: one OS process per rank.

Everything upstream of this module executes the paper's design inside a
single Python process on virtual time.  This backend is the real thing —
the reproduction of JaxPP's Ray+NCCL runtime (§4): each pipeline rank is
an independent **actor process** (``multiprocessing`` *spawn* context)
that owns its object store and asynchronously executes its fused
instruction program; timing is real wall-clock, not simulated.

Design
======

Channels (§4.2's ordering contract)
    One FIFO queue per *directed* rank pair that the programs actually
    use.  The k-th message a worker takes from channel ``src->dst`` is
    matched against the k-th receive it posted on that channel — the same
    pairwise-FIFO contract the in-process engine implements and NCCL
    imposes on P2P ops.  Matched keys are cross-checked; a mismatch
    surfaces as :class:`~repro.runtime.executor.CommMismatchError` at the
    driver instead of silent data corruption.  Under
    :attr:`CommMode.SYNC <repro.runtime.executor.CommMode>` every send
    additionally blocks on a per-channel ack (the NCCL-rendezvous
    semantics under which Figure 5's naive ordering genuinely deadlocks);
    under ``ASYNC`` (JaxPP's mode) sends return immediately and posted
    receives are drained lazily by the first consuming instruction.

Shared-memory transport
    ndarray payloads at or above ``shm_threshold`` bytes travel through
    ``multiprocessing.shared_memory`` segments: the sender copies into a
    fresh segment and passes only its name through the queue; the
    receiver attaches, copies out, and unlinks.  Everything smaller is
    pickled inline.  Ownership is handed over explicitly (the sender
    unregisters the segment from its resource tracker), so the normal
    path neither leaks nor double-frees; on an abnormal stop the driver
    drains the channels and unlinks whatever was still in flight.

Collectives
    Data-parallel all-reduce is a **barrier-backed reduce**: every
    participant enters a per-group ``Barrier`` (the rendezvous), members
    then funnel their contribution to the lowest rank, which reduces in
    sorted-rank order — bit-identical to the in-process engine — and
    broadcasts the result back.  The barrier serialises successive
    collectives of the same group, so gather/result traffic can never
    interleave across ``group_key``\\ s.

Deadlock watchdog
    Workers report to a control queue: a state message immediately
    before every potentially-unbounded block (channel drain, ack wait,
    barrier), a coarse heartbeat while computing, and a final
    done/error message.  The driver raises
    :class:`~repro.runtime.executor.DeadlockError` when no worker has
    reported progress for ``watchdog_s`` seconds, terminating the
    processes and aggregating each actor's last program counter and
    blocking resource into the diagnostic — a hung schedule reports,
    it never hangs the test suite.

The merged :class:`~repro.runtime.executor.ExecutionResult` carries the
real wall-clock timeline (per-instruction intervals with their stage /
unit ``meta``), the per-resource wait profile, per-actor finish times,
and summed scheduler counters — exactly the shape
:meth:`CostModel.from_result <repro.core.autotune.CostModel.from_result>`
replays, which is what closes the measure → retune loop on a *real*
concurrent execution.

Requirements: per-actor programs must be pickle-clean (the compiler's
payload contract, ``tests/core/test_pickle.py``); virtual cost models do
not apply (time is measured, not simulated).

This module is the *one-shot* driver: :func:`execute_mp` spawns the
mesh, runs a single step, and tears everything down — correct, but ~139×
per-step overhead on small workloads.  The persistent sibling,
:class:`repro.runtime.pool.ActorPool`, keeps the same worker loop
(:class:`_Worker` is reused verbatim through queue-routing shims) alive
across a *stream* of step submissions; shared-memory segments are
accounted per submission there, not per process death.
"""

from __future__ import annotations

import dataclasses
import queue as _queue
import threading
import time
import traceback
from collections import deque
from typing import Any, Sequence

import multiprocessing as _mp

from repro.runtime.executor import (
    CommMismatchError,
    CommMode,
    DeadlockError,
    ExecutionResult,
    TimelineEvent,
    WaitStat,
)
from repro.runtime.instructions import (
    Accumulate,
    AllReduce,
    BufferRef,
    Delete,
    Instruction,
    Recv,
    RunTask,
    Send,
)
from repro.runtime.store import ObjectStore

__all__ = ["execute_mp", "DEFAULT_SHM_THRESHOLD", "DEFAULT_WATCHDOG_S"]

#: ndarray payloads at or above this many bytes use shared-memory segments
#: instead of inline pickling through the channel queue.
DEFAULT_SHM_THRESHOLD = 1 << 16

#: driver-side no-progress window before a run is declared deadlocked.
DEFAULT_WATCHDOG_S = 30.0

#: extra patience while spawn-context workers import and report in —
#: interpreter start-up must not count against the deadlock watchdog.
_SPAWN_GRACE_S = 120.0

#: minimum interval between worker heartbeats during long compute phases.
_HEARTBEAT_S = 1.0


# ---------------------------------------------------------------------------
# payload transport
# ---------------------------------------------------------------------------


def _encode_payload(value: Any, shm_threshold: int) -> tuple:
    """``("inline", value)`` or ``("shm", name, shape, dtype, nbytes)``."""
    import numpy as np

    if (
        isinstance(value, np.ndarray)
        and value.nbytes >= shm_threshold
        and value.nbytes > 0
    ):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=value.nbytes)
        view = np.ndarray(value.shape, value.dtype, buffer=shm.buf)
        view[...] = value
        name = shm.name
        tracked = shm._name  # registered form ("/name" on POSIX)
        shm.close()
        # hand ownership to the receiver: without this, the sender's
        # resource tracker would warn about (and destroy) a segment the
        # receiver is responsible for unlinking
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(tracked, "shared_memory")
        except Exception:  # pragma: no cover - tracker impl detail
            pass
        return ("shm", name, value.shape, value.dtype.str, value.nbytes)
    return ("inline", value)


def _decode_payload(payload: tuple) -> Any:
    """Materialise a transported payload (copy + unlink for shm)."""
    if payload[0] == "inline":
        return payload[1]
    import numpy as np
    from multiprocessing import shared_memory

    _, name, shape, dtype, _ = payload
    shm = shared_memory.SharedMemory(name=name)
    try:
        out = np.array(np.ndarray(shape, np.dtype(dtype), buffer=shm.buf))
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
    return out


def _discard_payload(obj) -> None:
    """Reclaim every shm payload nested in ``obj`` — a message that will
    never be consumed (mismatch bail-out, abnormal stop)."""
    if isinstance(obj, tuple):
        if len(obj) == 5 and obj[0] == "shm":
            from multiprocessing import shared_memory

            try:
                shm = shared_memory.SharedMemory(name=obj[1])
                shm.close()
                shm.unlink()
            except Exception:
                pass
            return
        for item in obj:
            _discard_payload(item)
    elif isinstance(obj, list):
        for item in obj:
            _discard_payload(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            _discard_payload(item)


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _WorkerSpec:
    """Everything one actor process needs, shipped by pickle at spawn."""

    rank: int
    program: list[Instruction]
    buffers: dict[str, tuple[Any, int, bool]]  # uid -> (value, nbytes, pinned)
    comm_mode: CommMode
    shm_threshold: int
    epoch: float  # driver's monotonic base; CLOCK_MONOTONIC is system-wide
    codegen_actor: bool = False  # fuse the instruction loop (runtime.actorgen)
    faults: Any = None  # RankFaultState for injected chaos (runtime.faults)


class _WorkerStop(Exception):
    """Internal: abort the worker after an error was reported."""


class _Worker:
    """Single-threaded interpreter for one actor's instruction stream.

    Semantically the numeric-mode subset of the in-process engine's
    ``step``; the differential suite (``tests/runtime/test_mp_equivalence``)
    asserts bit-identical results across the whole schedule gallery.
    """

    def __init__(self, spec, send_qs, recv_qs, ack_wait, ack_send, coll, ctrl):
        self.rank = spec.rank
        self.program = spec.program
        self.codegen_actor = getattr(spec, "codegen_actor", False)
        self.faults = getattr(spec, "faults", None)
        self.comm_mode = spec.comm_mode
        self.shm_threshold = spec.shm_threshold
        self.epoch = spec.epoch
        self.send_qs = send_qs  # dst -> data queue (self -> dst)
        self.recv_qs = recv_qs  # src -> data queue (src -> self)
        self.ack_wait = ack_wait  # dst -> ack queue (dst -> self)
        self.ack_send = ack_send  # src -> ack queue (self -> src)
        self.coll = coll  # group tuple -> (barrier, gather_q, result_qs)
        self.ctrl = ctrl

        self.store = ObjectStore(spec.rank)
        self.initial_uids = set(spec.buffers)
        for uid, (value, nbytes, pinned) in spec.buffers.items():
            self.store.put(BufferRef(uid), value, nbytes, pinned=pinned)

        self.pending_by_src: dict[int, deque[Recv]] = {}
        self.pending_uid_src: dict[str, int] = {}
        self.timeline: list[TimelineEvent] = []
        self.wait_profile: dict[str, WaitStat] = {}
        self.visits = 0
        self.p2p_bytes = 0
        self.p2p_count = 0
        self.pc = 0
        # the heartbeat thread posts "hb" only while this flag is set —
        # during compute (an instr.fn may legitimately run longer than
        # the watchdog window), never while blocked on a channel / ack /
        # barrier, so genuine deadlocks still go silent and trip the
        # driver's watchdog
        self._busy = True
        self._stop_heartbeat = threading.Event()

    # -- clocks & control --------------------------------------------------
    def now(self) -> float:
        return time.monotonic() - self.epoch

    def _heartbeat_loop(self) -> None:
        while not self._stop_heartbeat.wait(_HEARTBEAT_S):
            if self._busy:
                self.ctrl.put(("hb", self.rank, self.pc))

    def blocking(self, label: str, note: str):
        """Context manager: report the imminent block, time it, charge the
        parked interval to ``label`` in the wait profile."""
        return _BlockScope(self, label, note)

    def fail(self, kind: str, message: str) -> None:
        self.ctrl.put(("error", self.rank, self.pc, kind, message))
        raise _WorkerStop

    # -- channel plumbing --------------------------------------------------
    def drain(self, src: int, until_uid: str | None = None) -> None:
        """Match messages from channel ``src -> self`` against posted
        receives, in FIFO order, until ``until_uid`` is delivered (or one
        message when ``None``)."""
        posted = self.pending_by_src.get(src)
        while True:
            if not posted:
                self.fail(
                    "protocol",
                    f"message available on channel {src}->{self.rank} "
                    "but no receive is posted (compiler bug)",
                )
            rec = posted[0]
            with self.blocking(
                f"channel {src}->{self.rank}",
                f"send of {rec.key!r} on channel {src}->{self.rank}",
            ) as t0:
                msg = self.recv_qs[src].get()
            tag, key, nbytes, payload = msg
            assert tag == "data"
            posted.popleft()
            if key != rec.key:
                _discard_payload(payload)
                self.fail(
                    "mismatch",
                    f"send/recv order mismatch on channel {src}->{self.rank}: "
                    f"send key {key!r} met recv key {rec.key!r} "
                    "(NCCL would deadlock or corrupt data here)",
                )
            value = _decode_payload(payload)
            self.store.put(rec.ref, value, nbytes)
            self.pending_uid_src.pop(rec.ref.uid, None)
            self.p2p_bytes += nbytes
            self.p2p_count += 1
            end = self.now()
            self.timeline.append(
                TimelineEvent(self.rank, "recv", key, t0, end, nbytes)
            )
            if self.comm_mode is CommMode.SYNC:
                self.ack_send[src].put(key)
            if until_uid is None or rec.ref.uid == until_uid:
                return

    def require(self, ref: BufferRef) -> None:
        """Ensure ``ref`` is live locally, draining its channel if a
        posted receive is still outstanding."""
        if ref in self.store:
            return
        src = self.pending_uid_src.get(ref.uid)
        if src is None:
            self.fail(
                "protocol",
                f"buffer {ref.uid!r} is neither live nor awaited from any "
                "channel (deleted too early or never produced)",
            )
        self.drain(src, until_uid=ref.uid)

    # -- instruction handlers ---------------------------------------------
    def run(self) -> dict:
        hb = threading.Thread(target=self._heartbeat_loop, daemon=True)
        hb.start()
        try:
            return self._run_program()
        finally:
            self._stop_heartbeat.set()

    def _run_program(self) -> dict:
        if self.codegen_actor and self.program:
            # whole-actor fusion: the shipped program is regenerated into
            # one straight-line driver (cached per program identity, so
            # the persistent pool compiles it once per ship)
            from repro.runtime.actorgen import worker_driver

            worker_driver(self.program)(self)
            return self._finish_report()
        for self.pc, instr in enumerate(self.program):
            self.visits += 1
            if isinstance(instr, RunTask):
                self.exec_task(instr)
            elif isinstance(instr, Send):
                self.exec_send(instr)
            elif isinstance(instr, Recv):
                self.exec_recv(instr)
            elif isinstance(instr, Delete):
                self.store.delete(instr.ref)
            elif isinstance(instr, Accumulate):
                self.exec_accumulate(instr)
            elif isinstance(instr, AllReduce):
                self.exec_allreduce(instr)
            else:
                self.fail("protocol", f"unknown instruction {instr!r}")
        return self._finish_report()

    def _finish_report(self) -> dict:
        self.pc = len(self.program)
        finish = self.now()
        live = {}
        for uid in self.store.live_refs():
            if uid in self.initial_uids:
                continue  # the driver already holds every placed input
            buf = self.store.get(BufferRef(uid))
            # large results (updated parameters, stacked losses) take the
            # shared-memory path home too, not a pickle through the pipe
            live[uid] = (
                _encode_payload(buf.value, self.shm_threshold),
                buf.nbytes,
                buf.pinned,
            )
        return {
            "rank": self.rank,
            "pc": self.pc,
            "finish": finish,
            "timeline": self.timeline,
            "wait_profile": self.wait_profile,
            "visits": self.visits,
            "p2p_bytes": self.p2p_bytes,
            "p2p_count": self.p2p_count,
            "peak_bytes": self.store.peak_bytes,
            "buffers": live,
        }

    def exec_task(self, instr: RunTask) -> None:
        for r in instr.in_refs:
            self.require(r)
        start = self.now()
        out_nbytes = instr.meta.get("out_nbytes", [0] * len(instr.out_refs))
        if instr.fn is not None:
            invals = [self.store.get(r).value for r in instr.in_refs]
            outvals = instr.fn(invals)
            if len(outvals) != len(instr.out_refs):
                self.fail(
                    "protocol",
                    f"task {instr.name} returned {len(outvals)} values "
                    f"for {len(instr.out_refs)} out_refs",
                )
            for ref, val, nb in zip(instr.out_refs, outvals, out_nbytes):
                self.store.put(ref, val, nb if nb else getattr(val, "nbytes", 0))
        else:
            for ref, nb in zip(instr.out_refs, out_nbytes):
                self.store.put(ref, None, nb)
        end = self.now()
        self.timeline.append(
            TimelineEvent(
                self.rank, "task", instr.name, start, end, meta=dict(instr.meta)
            )
        )

    def exec_send(self, instr: Send) -> None:
        self.require(instr.ref)
        # injected channel faults: a dropped send is swallowed before any
        # segment is created (nothing to leak); a delayed send sleeps here
        if self.faults is not None and self.faults.on_send(instr.dst) == "drop":
            return
        buf = self.store.get(instr.ref)
        start = self.now()
        payload = _encode_payload(buf.value, self.shm_threshold)
        self.send_qs[instr.dst].put(("data", instr.key, buf.nbytes, payload))
        self.timeline.append(
            TimelineEvent(
                self.rank, "send", instr.key, start, self.now(), buf.nbytes
            )
        )
        if self.comm_mode is CommMode.SYNC:
            with self.blocking(
                f"channel {self.rank}->{instr.dst}",
                f"recv of {instr.key!r} on channel {self.rank}->{instr.dst}",
            ):
                ack = self.ack_wait[instr.dst].get()
            if ack != instr.key:  # pragma: no cover - FIFO acks
                self.fail(
                    "mismatch",
                    f"out-of-order ack on channel {self.rank}->{instr.dst}: "
                    f"expected {instr.key!r}, got {ack!r}",
                )

    def exec_recv(self, instr: Recv) -> None:
        self.pending_by_src.setdefault(instr.src, deque()).append(instr)
        self.pending_uid_src[instr.ref.uid] = instr.src
        if self.comm_mode is CommMode.SYNC:
            # rendezvous semantics: block until this transfer completes
            self.drain(instr.src, until_uid=instr.ref.uid)

    def exec_accumulate(self, instr: Accumulate) -> None:
        self.require(instr.value)
        start = self.now()
        vbuf = self.store.get(instr.value)
        if instr.acc in self.store:
            abuf = self.store.get(instr.acc)
            if abuf.value is not None and vbuf.value is not None:
                self.store.update(instr.acc, abuf.value + vbuf.value)
        else:
            self.store.put(instr.acc, vbuf.value, vbuf.nbytes)
        if instr.delete_value:
            self.store.delete(instr.value)
        self.timeline.append(
            TimelineEvent(self.rank, "accum", instr.acc.uid, start, start)
        )

    def exec_allreduce(self, instr: AllReduce) -> None:
        group = tuple(sorted(instr.group))
        barrier, gather_q, result_qs = self.coll[group]
        root = group[0]
        key = instr.group_key
        self.require(instr.ref)
        with self.blocking(
            f"allreduce {key!r}",
            f"all-reduce rendezvous {key!r} (group {list(group)})",
        ):
            barrier.wait()
        start = self.now()
        buf = self.store.get(instr.ref)
        if self.rank == root:
            contribs = {self.rank: buf.value}
            while len(contribs) < len(group):
                with self.blocking(
                    f"allreduce {key!r}",
                    f"all-reduce contributions for {key!r} "
                    f"(have {sorted(contribs)})",
                ):
                    gk, r, payload = gather_q.get()
                if gk != key:  # pragma: no cover - barrier serialises groups
                    self.fail(
                        "protocol",
                        f"all-reduce contribution for {gk!r} arrived during "
                        f"{key!r}",
                    )
                contribs[r] = _decode_payload(payload)
            vals = [contribs[r] for r in sorted(contribs)]
            total = None
            if all(v is not None for v in vals):
                total = vals[0]
                for v in vals[1:]:
                    total = total + v
            for r in group:
                if r != root:
                    # one payload per member: a shm segment is consumed
                    # (copied + unlinked) by exactly one receiver
                    result_qs[r].put(
                        (key, _encode_payload(total, self.shm_threshold))
                    )
            if total is not None:
                self.store.update(instr.ref, total)
            self.timeline.append(
                TimelineEvent(
                    root, "allreduce", key, start, self.now(), buf.nbytes
                )
            )
        else:
            gather_q.put(
                (key, self.rank, _encode_payload(buf.value, self.shm_threshold))
            )
            with self.blocking(
                f"allreduce {key!r}", f"all-reduce result for {key!r}"
            ):
                gk, payload = result_qs[self.rank].get()
            if gk != key:  # pragma: no cover - barrier serialises groups
                self.fail(
                    "protocol",
                    f"all-reduce result for {gk!r} arrived during {key!r}",
                )
            total = _decode_payload(payload)
            if total is not None:
                self.store.update(instr.ref, total)


class _BlockScope:
    """Times one blocking wait and charges it to the wait profile."""

    def __init__(self, worker: _Worker, label: str, note: str):
        self.worker = worker
        self.label = label
        self.note = note
        self.start = 0.0

    def __enter__(self) -> float:
        w = self.worker
        w._busy = False  # silence the heartbeat: a block is not progress
        w.ctrl.put(("wait", w.rank, w.pc, self.note, self.label))
        self.start = w.now()
        return self.start

    def __exit__(self, exc_type, exc, tb) -> None:
        w = self.worker
        w._busy = True
        if exc_type is not None:
            return
        parked = max(0.0, w.now() - self.start)
        stat = w.wait_profile.setdefault(self.label, WaitStat())
        stat.count += 1
        stat.total += parked
        stat.by_rank[w.rank] = stat.by_rank.get(w.rank, 0.0) + parked


def _worker_main(spec, send_qs, recv_qs, ack_wait, ack_send, coll, ctrl) -> None:
    """Spawn entry point: build the worker, announce, run, report."""
    try:
        worker = _Worker(spec, send_qs, recv_qs, ack_wait, ack_send, coll, ctrl)
        ctrl.put(("hello", spec.rank))
        # a one-shot run is step 0 of a one-step stream; the fault hooks
        # mirror the pool worker loop's boundaries exactly
        if worker.faults is not None:
            worker.faults.begin_step(0)
        result = worker.run()
        if worker.faults is not None:
            worker.faults.end_step(0, payloads=result["buffers"])
        ctrl.put(("done", spec.rank, result))
    except _WorkerStop:
        pass  # error already reported
    except BaseException:
        try:
            ctrl.put(
                ("error", spec.rank, -1, "exception", traceback.format_exc())
            )
        except Exception:  # pragma: no cover - ctrl queue gone
            pass


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def _scan_programs(
    programs: Sequence[Sequence[Instruction]],
) -> tuple[set[tuple[int, int]], set[tuple[int, ...]]]:
    """Directed channels and collective groups the programs use."""
    pairs: set[tuple[int, int]] = set()
    groups: set[tuple[int, ...]] = set()
    for rank, prog in enumerate(programs):
        for instr in prog:
            if isinstance(instr, Send):
                pairs.add((rank, instr.dst))
            elif isinstance(instr, Recv):
                pairs.add((instr.src, rank))
            elif isinstance(instr, AllReduce):
                groups.add(tuple(sorted(instr.group)))
    return pairs, groups


def execute_mp(
    programs: Sequence[Sequence[Instruction]],
    stores: Sequence[ObjectStore],
    comm_mode: CommMode = CommMode.ASYNC,
    *,
    watchdog_s: float = DEFAULT_WATCHDOG_S,
    shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    codegen_actor: bool = False,
    fault_plan: Any = None,
    generation: int = 0,
) -> ExecutionResult:
    """Run one fused program per actor, each in its own OS process.

    ``stores`` are the driver-side object stores holding the placed
    inputs; each worker starts from a copy of its store's buffers and the
    driver merges every *new* live buffer (and the worker's peak-memory
    statistic) back afterwards, so
    :meth:`~repro.runtime.executor.MpmdExecutor.fetch` works unchanged.

    Raises:
        DeadlockError: when no worker reports progress for ``watchdog_s``
            seconds — the message aggregates each stuck actor's program
            counter and the resource it last blocked on.
        CommMismatchError: when pairwise-FIFO matching pairs a send and a
            recv that disagree on the logical value.
        RuntimeError: when a worker raises (the traceback is embedded) or
            dies without reporting.
    """
    n = len(programs)
    if len(stores) != n:
        raise ValueError(f"expected {n} stores, got {len(stores)}")
    # a window shorter than two heartbeat periods would flag healthy
    # compute-bound workers (first "hb" arrives after _HEARTBEAT_S)
    watchdog_s = max(watchdog_s, 2.0 * _HEARTBEAT_S)

    ctx = _mp.get_context("spawn")
    pairs, groups = _scan_programs(programs)
    data_qs = {pair: ctx.Queue() for pair in pairs}
    ack_qs = {pair: ctx.Queue() for pair in pairs} if comm_mode is CommMode.SYNC else {}
    coll: dict[tuple[int, ...], tuple] = {}
    for group in groups:
        barrier = ctx.Barrier(len(group))
        gather_q = ctx.Queue()
        result_qs = {r: ctx.Queue() for r in group if r != group[0]}
        coll[group] = (barrier, gather_q, result_qs)
    ctrl = ctx.Queue()
    epoch = time.monotonic()

    procs: list = []
    try:
        for rank in range(n):
            spec = _WorkerSpec(
                rank=rank,
                program=list(programs[rank]),
                buffers={
                    uid: (buf.value, buf.nbytes, buf.pinned)
                    for uid in stores[rank].live_refs()
                    for buf in [stores[rank].get(BufferRef(uid))]
                },
                comm_mode=comm_mode,
                shm_threshold=shm_threshold,
                epoch=epoch,
                codegen_actor=codegen_actor,
                faults=(
                    fault_plan.for_rank(rank, generation)
                    if fault_plan is not None
                    else None
                ),
            )
            send_qs = {d: q for (s, d), q in data_qs.items() if s == rank}
            recv_qs = {s: q for (s, d), q in data_qs.items() if d == rank}
            ack_wait = {d: q for (s, d), q in ack_qs.items() if s == rank}
            ack_send = {s: q for (s, d), q in ack_qs.items() if d == rank}
            my_coll = {g: c for g, c in coll.items() if rank in g}
            p = ctx.Process(
                target=_worker_main,
                args=(spec, send_qs, recv_qs, ack_wait, ack_send, my_coll, ctrl),
                name=f"mpmd-actor-{rank}",
                daemon=True,
            )
            try:
                p.start()
            except Exception as e:
                raise TypeError(
                    f"engine='mp' could not ship actor {rank}'s program to a "
                    "spawn-context worker; task payloads must be pickle-clean "
                    f"(offender: {e})"
                ) from e
            procs.append(p)

        return _drive(procs, ctrl, data_qs, stores, watchdog_s, n)
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - stubborn child
                p.kill()
                p.join(timeout=5.0)
        coll_qs = [
            q
            for _, gather_q, result_qs in coll.values()
            for q in (gather_q, *result_qs.values())
        ]
        all_qs = [*data_qs.values(), *coll_qs, ctrl]
        # drain in a bounded daemon thread: a message truncated by
        # terminate() can make a queue read block forever, and cleanup
        # must never convert a reported failure into a hang.  Closing the
        # queues below unsticks (OSError) a drain still in flight.
        drain = threading.Thread(
            target=_reclaim_in_flight, args=(all_qs,), daemon=True
        )
        drain.start()
        drain.join(timeout=5.0)
        # drop queue feeder threads promptly
        for q in all_qs:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - already closed
                pass


def _reclaim_in_flight(queues: Sequence[Any]) -> None:
    """Unlink shared-memory segments still sitting in any queue."""
    for q in queues:
        while True:
            try:
                msg = q.get_nowait()
            except (_queue.Empty, OSError, ValueError):
                break
            _discard_payload(msg)


def _drive(procs, ctrl, data_qs, stores, watchdog_s, n) -> ExecutionResult:
    """Collect worker reports; enforce the no-progress watchdog."""
    states: dict[int, tuple[int, str, str]] = {}  # rank -> (pc, note, label)
    pcs: dict[int, int] = {}
    hello: set[int] = set()
    results: dict[int, dict] = {}
    last_progress = time.monotonic()

    while len(results) < n:
        grace = watchdog_s if len(hello) == n else max(watchdog_s, _SPAWN_GRACE_S)
        try:
            msg = ctrl.get(timeout=0.2)
        except _queue.Empty:
            dead = [
                rank
                for rank, p in enumerate(procs)
                if rank not in results and not p.is_alive()
            ]
            if dead:
                # the final done/error report may still be in the pipe
                # (the worker can flush and exit between our poll and the
                # liveness check) — give it one beat before declaring a
                # silent death
                try:
                    msg = ctrl.get(timeout=1.0)
                except _queue.Empty:
                    p = procs[dead[0]]
                    raise RuntimeError(
                        f"mp worker for actor {dead[0]} died without "
                        f"reporting (exitcode {p.exitcode})"
                    ) from None
            elif time.monotonic() - last_progress > grace:
                _raise_deadlock(procs, states, pcs, results, watchdog_s)
                continue  # pragma: no cover - _raise_deadlock raises
            else:
                continue
        last_progress = time.monotonic()
        kind = msg[0]
        if kind == "hello":
            hello.add(msg[1])
        elif kind == "hb":
            _, rank, pc = msg
            pcs[rank] = pc
            # clear a recorded wait only when the worker demonstrably
            # moved past it — the heartbeat thread can race a block and
            # emit one stale "hb" carrying the same pc as the "wait"
            if rank in states and states[rank][0] != pc:
                states.pop(rank)
        elif kind == "wait":
            _, rank, pc, note, label = msg
            pcs[rank] = pc
            states[rank] = (pc, note, label)
        elif kind == "done":
            results[msg[1]] = msg[2]
            pcs[msg[1]] = msg[2]["pc"]  # fully retired
        elif kind == "error":
            _, rank, pc, err_kind, text = msg
            if err_kind == "mismatch":
                raise CommMismatchError(text)
            raise RuntimeError(
                f"mp worker for actor {rank} failed at [{pc}]:\n{text}"
            )
        else:  # pragma: no cover - future-proofing
            raise RuntimeError(f"unknown control message {msg!r}")

    return _merge_results(results, stores, n)


def _merge_results(
    results: dict[int, dict], stores: Sequence[ObjectStore], n: int
) -> ExecutionResult:
    """Merge per-worker reports into one :class:`ExecutionResult`.

    New live buffers (and the peak-memory statistic) land back in the
    driver-side ``stores``; the wall-clock timeline is rebased to the
    first executed instruction.  Shared by the one-shot driver above and
    the persistent :class:`~repro.runtime.pool.ActorPool`, which calls
    this once per completed submission.
    """
    timeline: list[TimelineEvent] = []
    wait_profile: dict[str, WaitStat] = {}
    actor_finish = [0.0] * n
    visits = p2p_bytes = p2p_count = 0
    for rank in range(n):
        res = results[rank]
        timeline.extend(res["timeline"])
        actor_finish[rank] = res["finish"]
        visits += res["visits"]
        p2p_bytes += res["p2p_bytes"]
        p2p_count += res["p2p_count"]
        for label, stat in res["wait_profile"].items():
            agg = wait_profile.setdefault(label, WaitStat())
            agg.count += stat.count
            agg.total += stat.total
            for r, t in stat.by_rank.items():
                agg.by_rank[r] = agg.by_rank.get(r, 0.0) + t
        store = stores[rank]
        for uid, (payload, nbytes, pinned) in res["buffers"].items():
            ref = BufferRef(uid)
            value = _decode_payload(payload)
            if ref not in store:
                store.put(ref, value, nbytes, pinned=pinned)
        store.peak_bytes = max(store.peak_bytes, res["peak_bytes"])

    # rebase to the first executed instruction: interpreter start-up
    # (spawn + import, hundreds of ms per worker) is driver overhead, not
    # part of the program's measured makespan — callers timing the whole
    # dispatch still see it on their own wall clock
    t0 = min((e.start for e in timeline), default=0.0)
    if t0 > 0.0:
        for e in timeline:
            e.start -= t0
            e.end -= t0
        actor_finish = [max(0.0, t - t0) for t in actor_finish]

    timeline.sort(key=lambda e: (e.start, e.actor, e.end, e.kind, e.name))
    return ExecutionResult(
        makespan=max(actor_finish) if actor_finish else 0.0,
        timeline=timeline,
        actor_finish=actor_finish,
        p2p_bytes=p2p_bytes,
        p2p_count=p2p_count,
        engine="mp",
        visits=visits,
        repolls=0,
        wait_profile=wait_profile,
    )


def _raise_deadlock(procs, states, pcs, results, watchdog_s) -> None:
    stuck = [rank for rank in range(len(procs)) if rank not in results]
    raise _deadlock_error(stuck, range(len(procs)), states, pcs, watchdog_s)


def _deadlock_error(
    stuck_ranks, all_ranks, states, pcs, watchdog_s, context: str = "mp run"
) -> DeadlockError:
    """Build the watchdog diagnostic: one line per stuck actor (its last
    program counter and blocked resource) plus the aggregated counters.
    Shared by the one-shot driver and the persistent pool."""
    lines = []
    for rank in stuck_ranks:
        pc = pcs.get(rank, "?")
        if rank in states:
            _, note, label = states[rank]
            lines.append(
                f"  actor {rank} stuck at [{pc}]: waiting for {note} "
                f"[{label}]"
            )
        else:
            lines.append(f"  actor {rank} stuck at [{pc}]: no wait reported")
    counters = ", ".join(
        f"{rank}: pc={pcs.get(rank, '?')}" for rank in all_ranks
    )
    return DeadlockError(
        f"{context} made no progress for {watchdog_s:.1f}s "
        "(watchdog expired; workers terminated):\n"
        + "\n".join(lines)
        + f"\naggregated per-actor program counters: {{{counters}}}"
    )
