"""Event-driven dataflow executor for per-actor instruction streams.

This is the reproduction's stand-in for the paper's Ray+NCCL runtime (§4):
each actor owns an object store and a fused instruction stream; point-to-
point transfers use **pairwise-FIFO matching** (the k-th send from A to B
matches the k-th recv from A posted on B — NCCL's ordering contract from
§4.2), so a mis-ordered schedule genuinely deadlocks (Figure 5) and the
executor reports it instead of hanging.

Engine design
=============

Instruction *semantics* live in :class:`_RunState.step`, which executes one
instruction of one actor and either makes progress or returns a
:class:`_Wait` naming the exact resource the actor is blocked on.  Two
interchangeable scheduling loops drive ``step``:

- ``engine="event"`` (default) — an **event-driven engine**: a ready-queue
  keyed on virtual time (a heap of ``(actor.time, seq, actor)``) plus
  per-resource wait-lists.  A blocked actor parks on exactly one waiter
  entry — a buffer arrival ``(actor, uid)``, a posted send/recv awaiting
  its channel match, or an all-reduce rendezvous key — and is re-enqueued
  only when that resource changes (a ``put`` delivers the buffer, a match
  completes the transfer, the last rendezvous participant arrives).  Each
  instruction is therefore visited O(1) times: once to run or park, once
  per genuine dependency arrival.

- ``engine="roundrobin"`` — the original fixpoint loop, kept as the
  differential-testing reference: every pass re-polls every blocked actor
  until nothing progresses.  Correct, but blocked instructions are
  re-scanned on every pass (quadratic in the worst case), which made it
  the hot path of figure regeneration.

Both engines share ``step`` verbatim, so they are semantically identical
by construction; ``tests/runtime/test_engine_equivalence.py`` checks the
results are bit-identical anyway.  :class:`ExecutionResult` carries two
scheduling counters for the comparison:

- ``visits`` — total ``step`` invocations by the scheduling loop;
- ``repolls`` — visits that found an instruction still parked on the
  *unchanged* wait condition (pure wasted polls).  The event engine's
  precise wake-ups make this structurally zero; the round-robin reference
  accrues one per blocked actor per pass.

Deadlocks are reported deterministically with a wait-for-graph diagnostic:
each stuck actor's program counter, instruction, and the buffer / channel /
rendezvous it is blocked on, plus the actor-level wait-for cycle when one
exists.

Every run also produces a **wait profile**
(:attr:`ExecutionResult.wait_profile`): per resource, how often actors
newly parked on it and for how much virtual time, with the per-rank
split kept on each :class:`WaitStat`.  "Parked" means the interval from
an instruction first blocking to the virtual time it finally ran,
charged to the resource whose arrival released it — the runtime's
measurement of the schedule's bubble.  :meth:`ExecutionResult.top_waits`
ranks resources, :meth:`ExecutionResult.parked_by_rank` sums per actor;
:func:`repro.core.autotune.tune` feeds both back into schedule search,
and ``CostModel.from_result`` replays the timeline's per-``(stage,
kind)`` durations (busy time only — parked time belongs to the schedule
under search, not the workload).

Two communication modes:

- ``CommMode.SYNC`` — send/recv block their actor until the transfer
  completes (the "synchronous counterpart" the paper compares against, and
  the mode in which Figure 5's naive ordering deadlocks);
- ``CommMode.ASYNC`` — posts return immediately; consuming tasks wait for
  data arrival, and deletions of in-flight send buffers are deferred via
  the pending-deletions queue (§4.3). This is JaxPP's mode: transfers
  overlap compute, visible in the virtual-time timeline.

The executor advances a **virtual clock** from a pluggable
:class:`~repro.runtime.clock.CostModel`; with ``ZeroCost`` it is a pure
correctness interpreter, with a topology-backed model it is the discrete-
event simulator used to regenerate the paper's figures.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
from collections import deque
from typing import Any, Callable, Sequence

from repro.runtime.clock import CostModel, ZeroCost
from repro.runtime.instructions import (
    Accumulate,
    AllReduce,
    BufferRef,
    Delete,
    Instruction,
    Recv,
    RunTask,
    Send,
)
from repro.runtime.store import ObjectStore

__all__ = [
    "CommMode",
    "DeadlockError",
    "CommMismatchError",
    "TimelineEvent",
    "ExecutionResult",
    "WaitStat",
    "MpmdExecutor",
    "ENGINES",
    "TIE_BREAKS",
]

ENGINES = ("event", "roundrobin", "mp")

#: Ready-queue orderings for actors runnable at the same virtual time:
#: ``"fifo"`` (default — wake order, the historical behaviour),
#: ``"depth_first"`` (most recently woken first — chases a microbatch down
#: the pipeline before starting the next), ``"rank"`` (lowest actor id
#: first).  Execution is dataflow-deterministic, so every policy produces
#: identical results; the policies exist to study scheduler-visit patterns.
TIE_BREAKS = ("fifo", "depth_first", "rank")


class CommMode(enum.Enum):
    """Point-to-point communication semantics (see module docstring)."""

    SYNC = "sync"
    ASYNC = "async"


class DeadlockError(RuntimeError):
    """No actor can make progress and the program is not finished."""


class CommMismatchError(RuntimeError):
    """Matched send/recv pair disagrees on the logical value (the data
    corruption NCCL would silently produce with mis-ordered P2P ops)."""


@dataclasses.dataclass
class TimelineEvent:
    """One interval on an actor's device or communication lane."""

    actor: int
    kind: str  # "task" | "send" | "recv" | "allreduce" | "accum"
    name: str
    start: float
    end: float
    nbytes: int = 0
    meta: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class WaitStat:
    """Accumulated parking on one resource.

    "Parked time" is *virtual device-idle* time: the interval between the
    moment an actor's current instruction first blocked and the virtual
    time at which it finally ran, charged to the resource whose arrival
    released it (the wait the actor was last recorded in).  It is the
    schedule's bubble as the runtime experiences it — the quantity the
    autotuner's wait-profile feedback minimises.

    Attributes:
        count: distinct parks (an instruction newly blocking on the
            resource; re-polls of an unchanged wait are not counted).
        total: total virtual time actors spent parked, charged to the
            resource whose arrival released the instruction.
        by_rank: the same parked time split by the *waiting* actor — who
            sat idle on this resource, and for how long (feeds
            :meth:`ExecutionResult.parked_by_rank` and, through it,
            ``CostModel.from_result`` / warmup-shift proposals in
            :mod:`repro.core.autotune`).
    """

    count: int = 0
    total: float = 0.0
    by_rank: dict[int, float] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one program execution.

    Attributes:
        makespan: virtual completion time (max over actors).
        timeline: all recorded events (sorted by start).
        actor_finish: per-actor completion times.
        p2p_bytes: total bytes moved point-to-point.
        p2p_count: number of point-to-point transfers.
        engine: which scheduling loop produced this result.
        visits: total instruction visits by the scheduling loop.
        repolls: visits that re-examined an instruction still blocked on an
            unchanged wait condition (pure scheduler waste; zero under the
            event engine).
        wait_profile: per-resource parked-time histogram — label
            (``"buffer a0:uid"``, ``"channel 0->1"``,
            ``"allreduce 'key'"``) to :class:`WaitStat`.  Virtual parked
            time is charged to the resource that released the instruction,
            so the histogram answers "which channels/buffers do actors
            block on longest" for schedule tuning.
    """

    makespan: float
    timeline: list[TimelineEvent]
    actor_finish: list[float]
    p2p_bytes: int
    p2p_count: int
    engine: str = "event"
    visits: int = 0
    repolls: int = 0
    wait_profile: dict[str, WaitStat] = dataclasses.field(default_factory=dict)

    def top_waits(self, n: int = 5) -> list[tuple[str, WaitStat]]:
        """The ``n`` resources actors spent longest parked on."""
        return sorted(
            self.wait_profile.items(), key=lambda kv: (-kv[1].total, kv[0])
        )[:n]

    def to_json(self) -> str:
        """Serialize to a JSON string (schema version 1).

        Everything :meth:`CostModel.from_result
        <repro.core.autotune.CostModel.from_result>` replays — the
        timeline with per-event ``meta`` (stage / unit annotations) — plus
        the wait profile and scheduler counters survives the trip, so a
        measured run (e.g. a real ``engine="mp"`` execution) can be
        persisted and replay-tuned later.  Event ``meta`` values are
        coerced to JSON-native types (NumPy scalars become Python
        numbers); payload-free fields only, never buffer contents.
        """
        import json

        import numpy as np

        def jsonable(v):
            if isinstance(v, (np.integer,)):
                return int(v)
            if isinstance(v, (np.floating,)):
                return float(v)
            if isinstance(v, (list, tuple)):
                return [jsonable(x) for x in v]
            if isinstance(v, dict):
                return {str(k): jsonable(x) for k, x in v.items()}
            return v

        return json.dumps(
            {
                "version": 1,
                "makespan": self.makespan,
                "engine": self.engine,
                "visits": self.visits,
                "repolls": self.repolls,
                "actor_finish": list(self.actor_finish),
                "p2p_bytes": self.p2p_bytes,
                "p2p_count": self.p2p_count,
                "timeline": [
                    {
                        "actor": e.actor,
                        "kind": e.kind,
                        "name": e.name,
                        "start": e.start,
                        "end": e.end,
                        "nbytes": e.nbytes,
                        "meta": jsonable(e.meta),
                    }
                    for e in self.timeline
                ],
                "wait_profile": {
                    label: {
                        "count": stat.count,
                        "total": stat.total,
                        "by_rank": {str(r): t for r, t in stat.by_rank.items()},
                    }
                    for label, stat in self.wait_profile.items()
                },
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ExecutionResult":
        """Rebuild an :class:`ExecutionResult` from :meth:`to_json` output."""
        import json

        d = json.loads(text)
        version = d.get("version")
        if version != 1:
            raise ValueError(f"unsupported ExecutionResult JSON version {version!r}")
        return cls(
            makespan=d["makespan"],
            timeline=[
                TimelineEvent(
                    actor=e["actor"],
                    kind=e["kind"],
                    name=e["name"],
                    start=e["start"],
                    end=e["end"],
                    nbytes=e["nbytes"],
                    meta=dict(e["meta"]),
                )
                for e in d["timeline"]
            ],
            actor_finish=list(d["actor_finish"]),
            p2p_bytes=d["p2p_bytes"],
            p2p_count=d["p2p_count"],
            engine=d["engine"],
            visits=d["visits"],
            repolls=d["repolls"],
            wait_profile={
                label: WaitStat(
                    count=s["count"],
                    total=s["total"],
                    by_rank={int(r): t for r, t in s["by_rank"].items()},
                )
                for label, s in d["wait_profile"].items()
            },
        )

    def parked_by_rank(self) -> list[float]:
        """Total virtual time each actor spent parked, summed over every
        resource in :attr:`wait_profile`.

        This is the per-rank bubble as measured by the engine (idle time
        between an instruction blocking and the blocking resource
        arriving) — the signal :func:`repro.core.autotune.tune` uses to
        shift warmup toward the longest-parked rank.
        """
        out = [0.0] * len(self.actor_finish)
        for stat in self.wait_profile.values():
            for rank, t in stat.by_rank.items():
                if 0 <= rank < len(out):
                    out[rank] += t
        return out


@dataclasses.dataclass
class _PostedSend:
    ref: BufferRef
    key: str
    value: Any
    nbytes: int
    post_time: float
    src: int
    # filled at match time:
    end_time: float | None = None
    # actor id parked on this post's completion (event engine, SYNC mode)
    waiter: int | None = None


@dataclasses.dataclass
class _PostedRecv:
    ref: BufferRef
    key: str
    nbytes: int
    post_time: float
    dst: int
    end_time: float | None = None
    waiter: int | None = None


@dataclasses.dataclass
class _Wait:
    """Why an actor's current instruction cannot run.

    Attributes:
        kind: ``"buffer"`` (a store put on ``key = (actor, uid)``),
            ``"match"`` (a posted send/recv awaiting its channel match), or
            ``"allreduce"`` (rendezvous on ``key = group_key``).
        key: the resource identity the engine parks the actor on.
        note: human-readable description for deadlock diagnostics.
        post: the posted comm op (``kind == "match"`` only).
        peers: actors this wait depends on, for the wait-for graph
            (unknown peers — e.g. a buffer nobody has promised — are
            resolved at diagnostic time from posted recvs).
    """

    kind: str
    key: Any
    note: str
    post: Any = None
    peers: tuple[int, ...] = ()


class _Actor:
    def __init__(self, actor_id: int, program: Sequence[Instruction], store: ObjectStore):
        self.id = actor_id
        self.program = list(program)
        self.store = store
        self.pc = 0
        self.time = 0.0  # device lane availability
        # uid -> posted send (None end_time until matched) for outstanding sends
        self.outstanding_sends: dict[str, _PostedSend] = {}
        self.posted: set[int] = set()  # pcs whose comm op has been posted
        self.posted_ops: dict[int, Any] = {}  # pc -> posted send/recv
        # last wait signature, for repoll accounting and diagnostics
        self.last_wait_sig: tuple | None = None
        self.wait: _Wait | None = None
        # wait-profile bookkeeping: pc and virtual time of the current park
        self.park_pc: int | None = None
        self.park_time = 0.0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.program)

    def current(self) -> Instruction | None:
        return None if self.done else self.program[self.pc]


def _wait_label(wait: _Wait) -> str:
    """Stable resource label for the wait-profile histogram: buffers keep
    their uid (per-buffer attribution), posted sends/recvs aggregate per
    channel, all-reduces per rendezvous key."""
    if wait.kind == "buffer":
        aid, uid = wait.key
        return f"buffer a{aid}:{uid}"
    if wait.kind == "match":
        _, src, dst, _ = wait.key
        return f"channel {src}->{dst}"
    return f"allreduce {wait.key!r}"


def _noop_put(actor_id: int, uid: str) -> None:
    return None


def _noop_match(post: Any) -> None:
    return None


def _noop_allreduce(group_key: str) -> None:
    return None


class _RunState:
    """Mutable state of one :meth:`MpmdExecutor.execute` call.

    Holds the channels, arrival clocks, rendezvous state, timeline, and the
    shared single-instruction interpreter (:meth:`step`).  The scheduling
    loops plug into the ``on_put`` / ``on_match`` / ``on_allreduce`` hooks
    to learn when a blocked actor's resource changed; the round-robin
    reference leaves them as no-ops and simply re-polls.
    """

    def __init__(
        self,
        actors: list[_Actor],
        stores: list[ObjectStore],
        cost: CostModel,
        comm_mode: CommMode,
    ):
        self.actors = actors
        self.stores = stores
        self.cost = cost
        self.comm_mode = comm_mode
        self.channels: dict[tuple[int, int], tuple[deque, deque]] = {}
        self.arrivals: dict[tuple[int, str], float] = {}
        self.allreduce_posts: dict[str, dict[int, tuple[float, BufferRef]]] = {}
        self.allreduce_done: set[str] = set()
        self.timeline: list[TimelineEvent] = []
        self.p2p_bytes = 0
        self.p2p_count = 0
        self.visits = 0
        self.repolls = 0
        self.wait_profile: dict[str, WaitStat] = {}
        # virtual start of the instruction the current step() executed —
        # used to price how long a previously parked actor sat idle
        self._exec_start = 0.0
        # engine hooks (event engine overrides these)
        self.on_put: Callable[[int, str], None] = _noop_put
        self.on_match: Callable[[Any], None] = _noop_match
        self.on_allreduce: Callable[[str], None] = _noop_allreduce

    # -- shared helpers ---------------------------------------------------------
    def channel(self, src: int, dst: int) -> tuple[deque, deque]:
        return self.channels.setdefault((src, dst), (deque(), deque()))

    def ready_time(self, actor: _Actor, refs: Sequence[BufferRef]) -> float:
        t = actor.time
        for r in refs:
            t = max(t, self.arrivals.get((actor.id, r.uid), 0.0))
        return t

    def try_match(self, src: int, dst: int) -> None:
        sends, recvs = self.channel(src, dst)
        while sends and recvs:
            s: _PostedSend = sends.popleft()
            r: _PostedRecv = recvs.popleft()
            if s.key != r.key:
                raise CommMismatchError(
                    f"send/recv order mismatch on channel {src}->{dst}: "
                    f"send key {s.key!r} met recv key {r.key!r} "
                    "(NCCL would deadlock or corrupt data here)"
                )
            nbytes = s.nbytes
            start = max(s.post_time, r.post_time)
            dur = self.cost.transfer_time(nbytes, src, dst)
            end = start + dur
            s.end_time = end
            r.end_time = end
            self.actors[dst].store.put(r.ref, s.value, nbytes)
            self.arrivals[(dst, r.ref.uid)] = end
            self.p2p_bytes += nbytes
            self.p2p_count += 1
            self.timeline.append(TimelineEvent(src, "send", s.key, start, end, nbytes))
            self.timeline.append(TimelineEvent(dst, "recv", r.key, start, end, nbytes))
            self.on_put(dst, r.ref.uid)
            self.on_match(s)
            self.on_match(r)

    def flush_pending_deletes(self, actor: _Actor) -> None:
        still = []
        for ref in actor.store.pending_deletions:
            posted = actor.outstanding_sends.get(ref.uid)
            if posted is not None and posted.end_time is None:
                still.append(ref)
            else:
                actor.outstanding_sends.pop(ref.uid, None)
                actor.store.delete(ref)
        actor.store.pending_deletions = still

    # -- the instruction interpreter -------------------------------------------
    def step(self, actor: _Actor) -> _Wait | None:
        """Execute the actor's current instruction.

        Returns ``None`` on progress (pc advanced, possibly after posting a
        comm op) or a :class:`_Wait` naming the blocking resource.

        Also maintains the per-resource wait profile: when an instruction
        that previously parked finally runs, the virtual time between the
        park and the instruction's start is charged to the resource whose
        arrival released it (the last recorded wait).
        """
        self.visits += 1
        pc_before = actor.pc
        prev_wait = actor.wait
        self._exec_start = actor.time
        wait = self._step_instr(actor)
        if wait is None:
            if prev_wait is not None and actor.park_pc == pc_before:
                stat = self.wait_profile.setdefault(_wait_label(prev_wait), WaitStat())
                parked = max(0.0, self._exec_start - actor.park_time)
                stat.total += parked
                stat.by_rank[actor.id] = stat.by_rank.get(actor.id, 0.0) + parked
            actor.park_pc = None
            actor.last_wait_sig = None
            actor.wait = None
        else:
            sig = (actor.pc, wait.kind, wait.key)
            if actor.last_wait_sig == sig:
                self.repolls += 1
            else:
                # a fresh park: the first block of this instruction keeps
                # its park time; moving on to the next missing resource of
                # the same instruction re-labels but not re-clocks it
                if actor.park_pc != actor.pc:
                    actor.park_pc = actor.pc
                    actor.park_time = actor.time
                self.wait_profile.setdefault(_wait_label(wait), WaitStat()).count += 1
            actor.last_wait_sig = sig
            actor.wait = wait
        return wait

    def _step_instr(self, actor: _Actor) -> _Wait | None:
        instr = actor.current()
        assert instr is not None

        if isinstance(instr, RunTask):
            for r in instr.in_refs:
                if r not in actor.store:
                    return _Wait(
                        "buffer", (actor.id, r.uid),
                        f"buffer {r.uid!r} on actor {actor.id}",
                    )
            start = self.ready_time(actor, instr.in_refs)
            self._exec_start = start
            overhead = self.cost.dispatch_overhead()
            dur = self.cost.task_time(instr.cost, instr.meta)
            end = start + overhead + dur
            if instr.fn is not None:
                invals = [actor.store.get(r).value for r in instr.in_refs]
                outvals = instr.fn(invals)
                if len(outvals) != len(instr.out_refs):
                    raise RuntimeError(
                        f"task {instr.name} returned {len(outvals)} values "
                        f"for {len(instr.out_refs)} out_refs"
                    )
                out_nbytes = instr.meta.get("out_nbytes", [0] * len(instr.out_refs))
                for ref, val, nb in zip(instr.out_refs, outvals, out_nbytes):
                    actor.store.put(ref, val, nb if nb else getattr(val, "nbytes", 0))
                    self.arrivals[(actor.id, ref.uid)] = end
                    self.on_put(actor.id, ref.uid)
            else:
                out_nbytes = instr.meta.get("out_nbytes", [0] * len(instr.out_refs))
                for ref, nb in zip(instr.out_refs, out_nbytes):
                    actor.store.put(ref, None, nb)
                    self.arrivals[(actor.id, ref.uid)] = end
                    self.on_put(actor.id, ref.uid)
            actor.time = end
            self.timeline.append(
                TimelineEvent(actor.id, "task", instr.name, start, end, meta=dict(instr.meta))
            )
            actor.pc += 1
            return None

        if isinstance(instr, Send):
            if actor.pc not in actor.posted:
                if instr.ref not in actor.store:
                    # value not produced yet (compiler bug upstream)
                    return _Wait(
                        "buffer", (actor.id, instr.ref.uid),
                        f"buffer {instr.ref.uid!r} on actor {actor.id} (send operand)",
                    )
                buf = actor.store.get(instr.ref)
                post = _PostedSend(
                    instr.ref, instr.key, buf.value, buf.nbytes,
                    self.ready_time(actor, [instr.ref]), actor.id,
                )
                self.channel(actor.id, instr.dst)[0].append(post)
                actor.outstanding_sends[instr.ref.uid] = post
                actor.posted.add(actor.pc)
                actor.posted_ops[actor.pc] = post
                self.try_match(actor.id, instr.dst)
                if self.comm_mode is CommMode.ASYNC:
                    actor.pc += 1
                    return None
            # SYNC: posted, block until the pairwise match completes
            post = actor.posted_ops[actor.pc]
            if post.end_time is None:
                return _Wait(
                    "match", ("send", actor.id, instr.dst, post.key),
                    f"recv of {post.key!r} on channel {actor.id}->{instr.dst}",
                    post=post, peers=(instr.dst,),
                )
            self._exec_start = post.end_time
            actor.time = max(actor.time, post.end_time)
            actor.pc += 1
            return None

        if isinstance(instr, Recv):
            if actor.pc not in actor.posted:
                post = _PostedRecv(instr.ref, instr.key, instr.nbytes, actor.time, actor.id)
                self.channel(instr.src, actor.id)[1].append(post)
                actor.posted.add(actor.pc)
                actor.posted_ops[actor.pc] = post
                self.try_match(instr.src, actor.id)
                if self.comm_mode is CommMode.ASYNC:
                    actor.pc += 1
                    return None
            post = actor.posted_ops[actor.pc]
            if post.end_time is None:
                return _Wait(
                    "match", ("recv", instr.src, actor.id, post.key),
                    f"send of {post.key!r} on channel {instr.src}->{actor.id}",
                    post=post, peers=(instr.src,),
                )
            self._exec_start = post.end_time
            actor.time = max(actor.time, post.end_time)
            actor.pc += 1
            return None

        if isinstance(instr, Delete):
            self.flush_pending_deletes(actor)
            posted = actor.outstanding_sends.get(instr.ref.uid)
            if posted is not None and posted.end_time is None:
                actor.store.pending_deletions.append(instr.ref)
            else:
                actor.outstanding_sends.pop(instr.ref.uid, None)
                actor.store.delete(instr.ref)
            actor.pc += 1
            return None

        if isinstance(instr, Accumulate):
            if instr.value not in actor.store:
                return _Wait(
                    "buffer", (actor.id, instr.value.uid),
                    f"buffer {instr.value.uid!r} on actor {actor.id} (accumulate operand)",
                )
            start = self.ready_time(
                actor, [instr.value] + ([instr.acc] if instr.acc in actor.store else [])
            )
            self._exec_start = start
            vbuf = actor.store.get(instr.value)
            if instr.acc in actor.store:
                abuf = actor.store.get(instr.acc)
                if abuf.value is not None and vbuf.value is not None:
                    actor.store.update(instr.acc, abuf.value + vbuf.value)
            else:
                actor.store.put(instr.acc, vbuf.value, vbuf.nbytes)
                self.on_put(actor.id, instr.acc.uid)
            self.arrivals[(actor.id, instr.acc.uid)] = start
            if instr.delete_value:
                actor.store.delete(instr.value)
            self.timeline.append(TimelineEvent(actor.id, "accum", instr.acc.uid, start, start))
            actor.pc += 1
            return None

        if isinstance(instr, AllReduce):
            posts = self.allreduce_posts.setdefault(instr.group_key, {})
            if actor.id not in posts:
                if instr.ref not in actor.store:
                    return _Wait(
                        "buffer", (actor.id, instr.ref.uid),
                        f"buffer {instr.ref.uid!r} on actor {actor.id} (all-reduce operand)",
                    )
                posts[actor.id] = (self.ready_time(actor, [instr.ref]), instr.ref)
                if set(posts) == set(instr.group):
                    # rendezvous complete: release the parked participants
                    self.on_allreduce(instr.group_key)
            if set(posts) != set(instr.group):
                missing = tuple(sorted(set(instr.group) - set(posts)))
                return _Wait(
                    "allreduce", instr.group_key,
                    f"all-reduce rendezvous {instr.group_key!r} "
                    f"(missing actors {list(missing)})",
                    peers=missing,
                )
            start = max(t for t, _ in posts.values())
            self._exec_start = start
            buf0 = actor.store.get(instr.ref)
            dur = self.cost.collective_time(buf0.nbytes, instr.group)
            end = start + dur
            # First actor to observe completion computes the reduction for
            # the whole group (deterministic order); the collective's
            # timeline event is attributed to the lowest-id participant so
            # both engines record identical timelines.
            if instr.group_key not in self.allreduce_done:
                vals = [
                    self.stores[a].get(ref).value for a, (_, ref) in sorted(posts.items())
                ]
                total = None
                if all(v is not None for v in vals):
                    total = vals[0]
                    for v in vals[1:]:
                        total = total + v
                for a, (_, ref) in posts.items():
                    if total is not None:
                        self.stores[a].update(ref, total)
                    self.arrivals[(a, ref.uid)] = end
                self.allreduce_done.add(instr.group_key)
                self.timeline.append(
                    TimelineEvent(
                        min(instr.group), "allreduce", instr.group_key, start, end, buf0.nbytes
                    )
                )
            actor.time = max(actor.time, end)
            actor.pc += 1
            return None

        raise TypeError(f"unknown instruction {instr!r}")

    # -- deadlock diagnostics ---------------------------------------------------
    def raise_deadlock(self) -> None:
        """Build the wait-for-graph diagnostic and raise DeadlockError."""
        stuck = [a for a in self.actors if not a.done]
        edges: dict[int, tuple[int, ...]] = {}
        lines = []
        for a in stuck:
            wait = a.wait
            if wait is None:  # blocked without a recorded wait (defensive)
                lines.append(f"  actor {a.id} stuck at [{a.pc}] {a.current()!r}")
                continue
            peers = wait.peers
            if wait.kind == "buffer" and not peers:
                # a buffer nobody delivered: if this actor has an unmatched
                # posted recv for the uid, the sender is the missing peer
                _, uid = wait.key
                found = []
                for (src, dst), (_, recvs) in self.channels.items():
                    if dst != a.id:
                        continue
                    for r in recvs:
                        if r.ref.uid == uid:
                            found.append(src)
                peers = tuple(sorted(set(found)))
            edges[a.id] = peers
            via = f" (via actor{'s' if len(peers) > 1 else ''} {sorted(peers)})" if peers else ""
            lines.append(
                f"  actor {a.id} stuck at [{a.pc}] {a.current()!r}: "
                f"waiting for {wait.note}{via}"
            )
        cycle = _find_cycle(edges)
        graph = ", ".join(
            f"{a}->{{{','.join(map(str, ps))}}}" for a, ps in sorted(edges.items()) if ps
        )
        msg = "no actor can make progress:\n" + "\n".join(lines)
        if graph:
            msg += f"\nwait-for graph: {graph}"
        if cycle:
            msg += f"\nwait-for cycle: {' -> '.join(map(str, cycle))}"
        raise DeadlockError(msg)


def _find_cycle(edges: dict[int, tuple[int, ...]]) -> list[int] | None:
    """First wait-for cycle among stuck actors (deterministic DFS order)."""
    finished: set[int] = set()
    for root in sorted(edges):
        if root in finished:
            continue
        path = [root]
        on_path = {root: 0}
        stack = [iter(sorted(edges.get(root, ())))]
        while stack:
            advanced = False
            for nxt in stack[-1]:
                if nxt in on_path:
                    return path[on_path[nxt]:] + [nxt]
                if nxt not in finished and nxt in edges:
                    on_path[nxt] = len(path)
                    path.append(nxt)
                    stack.append(iter(sorted(edges.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                node = path.pop()
                on_path.pop(node, None)
                finished.add(node)
    return None


class MpmdExecutor:
    """Executes per-actor instruction streams over persistent object stores.

    The object stores persist across :meth:`execute` calls, so weights live
    on their actors between training steps (the paper's "long-lived SPMD
    actors").

    Args:
        n_actors: number of actors (one program per actor).
        cost_model: virtual-time provider (default ``ZeroCost``).
        comm_mode: point-to-point semantics.
        engine: ``"event"`` (default, O(1) visits per instruction),
            ``"roundrobin"`` (the polling-fixpoint reference; identical
            results, kept for differential testing), or ``"mp"`` (the
            process-per-rank backend of :mod:`repro.runtime.mp`: real OS
            processes, real wall-clock timing; requires pickle-clean
            programs and accepts no virtual cost model).
        tie_break: event-engine ready-queue ordering for actors runnable
            at the same virtual time — one of :data:`TIE_BREAKS`
            (``"fifo"`` default).  Results are identical under every
            policy (dataflow determinism); only scheduler visit patterns
            differ.  Ignored by the round-robin reference.
        mp_watchdog_s: ``engine="mp"`` only — driver-side no-progress
            window before a run is declared deadlocked.
        mp_shm_threshold: ``engine="mp"`` only — ndarray payload size (in
            bytes) at which point-to-point transfers switch from inline
            pickling to shared-memory segments.
        mp_pool: ``engine="mp"`` only — a warm
            :class:`~repro.runtime.pool.ActorPool` to submit steps to
            instead of spawning a fresh process mesh per
            :meth:`execute` (the pool's watchdog / shm settings apply).
        mp_program_key: advisory cache-key prefix for the pool's
            worker-side program cache (diagnostics only).
        mp_codegen_actor: ``engine="mp"`` only — workers execute their
            programs through the fused straight-line driver generated by
            :mod:`repro.runtime.actorgen` instead of the per-instruction
            interpretation loop (results are bit-identical).
    """

    def __init__(
        self,
        n_actors: int,
        cost_model: CostModel | None = None,
        comm_mode: CommMode = CommMode.ASYNC,
        engine: str = "event",
        tie_break: str = "fifo",
        mp_watchdog_s: float | None = None,
        mp_shm_threshold: int | None = None,
        mp_pool: Any = None,
        mp_program_key: str | None = None,
        mp_codegen_actor: bool = False,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if tie_break not in TIE_BREAKS:
            raise ValueError(
                f"unknown tie_break {tie_break!r}; expected one of {TIE_BREAKS}"
            )
        if engine == "mp" and cost_model is not None:
            raise ValueError(
                "engine='mp' measures real wall-clock time; virtual cost "
                "models only apply to the in-process engines"
            )
        if mp_pool is not None:
            if engine != "mp":
                raise ValueError("mp_pool requires engine='mp'")
            if mp_pool.n_actors != n_actors:
                raise ValueError(
                    f"mp_pool has {mp_pool.n_actors} actors, executor needs "
                    f"{n_actors}"
                )
        self.n_actors = n_actors
        self.cost = cost_model or ZeroCost()
        self.comm_mode = comm_mode
        self.engine = engine
        self.tie_break = tie_break
        self.mp_watchdog_s = mp_watchdog_s
        self.mp_shm_threshold = mp_shm_threshold
        self.mp_pool = mp_pool
        self.mp_program_key = mp_program_key
        self.mp_codegen_actor = mp_codegen_actor
        self.stores = [ObjectStore(i) for i in range(n_actors)]

    # -- store management (driver-facing) -------------------------------------
    def place(self, actor: int, ref: BufferRef, value: Any, nbytes: int, pinned: bool = False) -> None:
        """Put an input buffer on an actor before execution."""
        self.stores[actor].put(ref, value, nbytes, pinned=pinned)

    def fetch(self, actor: int, ref: BufferRef) -> Any:
        """Read a buffer's payload from an actor."""
        return self.stores[actor].get(ref).value

    def delete(self, actor: int, ref: BufferRef) -> None:
        """Driver-side delete (used between steps for retired state)."""
        store = self.stores[actor]
        buf = store.get(ref)
        buf.pinned = False
        store.delete(ref)

    def rename(self, actor: int, src: BufferRef, dst: BufferRef) -> None:
        """Move a buffer to a new uid without copying (state hand-over
        between training steps)."""
        store = self.stores[actor]
        buf = store.get(src)
        pinned = buf.pinned
        buf.pinned = False
        value, nbytes = buf.value, buf.nbytes
        store.delete(src)
        store.put(dst, value, nbytes, pinned=pinned)

    # -- execution --------------------------------------------------------------
    def execute(
        self,
        programs: Sequence[Sequence[Instruction]],
        wake_order: Sequence[int] | None = None,
    ) -> ExecutionResult:
        """Run one fused program per actor to completion.

        Args:
            programs: one instruction stream per actor.
            wake_order: optional initial ready-queue seeding order for the
                event engine — typically
                :meth:`ScheduleIR.initial_ready_ranks`, so actors whose
                first slot has no unmet dependency are polled first.
                Results are identical either way (dataflow determinism);
                ignored by the round-robin reference.

        Raises:
            DeadlockError: if no actor can progress (mis-ordered send/recv
                under SYNC mode, or a genuine scheduling bug). The message
                includes each stuck actor's blocking resource and the
                wait-for cycle.
            CommMismatchError: if a matched send/recv pair disagrees on keys.
        """
        if len(programs) != self.n_actors:
            raise ValueError(f"expected {self.n_actors} programs, got {len(programs)}")
        if self.engine == "mp":
            if self.mp_pool is not None:
                # persistent path: submit to the warm mesh and wait — the
                # one-step one-result contract of this method is preserved,
                # but the process spawn/teardown is amortised pool-wide
                future = self.mp_pool.submit(
                    programs,
                    self.stores,
                    comm_mode=self.comm_mode,
                    program_key=self.mp_program_key,
                    codegen_actor=self.mp_codegen_actor,
                )
                return future.result()
            from repro.runtime import mp as _mp_backend

            kw: dict = {}
            if self.mp_watchdog_s is not None:
                kw["watchdog_s"] = self.mp_watchdog_s
            if self.mp_shm_threshold is not None:
                kw["shm_threshold"] = self.mp_shm_threshold
            return _mp_backend.execute_mp(
                programs, self.stores, comm_mode=self.comm_mode,
                codegen_actor=self.mp_codegen_actor, **kw
            )
        actors = [_Actor(i, prog, self.stores[i]) for i, prog in enumerate(programs)]
        state = _RunState(actors, self.stores, self.cost, self.comm_mode)

        if self.engine == "event":
            self._drive_event(state, wake_order)
        else:
            self._drive_roundrobin(state)

        if not all(a.done for a in actors):
            state.raise_deadlock()

        # final pending deletions (sends all matched by now or program bug)
        for actor in actors:
            state.flush_pending_deletes(actor)

        # fully deterministic order so both engines emit identical timelines
        state.timeline.sort(key=lambda e: (e.start, e.actor, e.end, e.kind, e.name))
        finish = [a.time for a in actors]
        return ExecutionResult(
            makespan=max(finish) if finish else 0.0,
            timeline=state.timeline,
            actor_finish=finish,
            p2p_bytes=state.p2p_bytes,
            p2p_count=state.p2p_count,
            engine=self.engine,
            visits=state.visits,
            repolls=state.repolls,
            wait_profile=state.wait_profile,
        )

    # -- scheduling loops --------------------------------------------------------
    def _drive_event(
        self, state: _RunState, wake_order: Sequence[int] | None = None
    ) -> None:
        """Ready-queue + wait-list scheduler (see module docstring)."""
        actors = state.actors
        # heap entries are (virtual time, tie-break key, actor id); the
        # tie-break key orders actors runnable at the same virtual time
        ready: list[tuple[float, int, int]] = []
        seq = 0
        scheduled = [False] * len(actors)
        buffer_waiters: dict[tuple[int, str], list[int]] = {}
        allreduce_waiters: dict[str, list[int]] = {}
        tie_break = self.tie_break

        def wake(aid: int) -> None:
            nonlocal seq
            if scheduled[aid] or actors[aid].done:
                return
            scheduled[aid] = True
            if tie_break == "depth_first":
                key = -seq  # most recently woken first
            elif tie_break == "rank":
                key = aid  # lowest actor id first
            else:  # fifo
                key = seq
            heapq.heappush(ready, (actors[aid].time, key, aid))
            seq += 1

        def on_put(aid: int, uid: str) -> None:
            for waiter in buffer_waiters.pop((aid, uid), ()):
                wake(waiter)

        def on_match(post: Any) -> None:
            if post.waiter is not None:
                waiter, post.waiter = post.waiter, None
                wake(waiter)

        def on_allreduce(group_key: str) -> None:
            for waiter in allreduce_waiters.pop(group_key, ()):
                wake(waiter)

        state.on_put = on_put
        state.on_match = on_match
        state.on_allreduce = on_allreduce

        # seed the ready-queue — from the schedule IR's hint when given
        # (ranks with a dependency-free first slot first), else actor order
        if wake_order is not None:
            seeded = [aid for aid in wake_order if 0 <= aid < len(actors)]
            known = set(seeded)
            seeded += [a.id for a in actors if a.id not in known]
        else:
            seeded = [a.id for a in actors]
        for aid in seeded:
            wake(aid)
        while ready:
            _, _, aid = heapq.heappop(ready)
            scheduled[aid] = False
            actor = actors[aid]
            while not actor.done:
                wait = state.step(actor)
                if wait is None:
                    continue
                if wait.kind == "buffer":
                    buffer_waiters.setdefault(wait.key, []).append(aid)
                elif wait.kind == "match":
                    wait.post.waiter = aid
                else:  # allreduce
                    allreduce_waiters.setdefault(wait.key, []).append(aid)
                break

    def _drive_roundrobin(self, state: _RunState) -> None:
        """The original polling fixpoint, kept as the reference engine."""
        actors = state.actors
        while True:
            progress = False
            for actor in actors:
                while not actor.done and state.step(actor) is None:
                    progress = True
            if all(a.done for a in actors):
                break
            if not progress:
                return  # caller raises with diagnostics
