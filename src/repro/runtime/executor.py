"""Deterministic dataflow executor for per-actor instruction streams.

This is the reproduction's stand-in for the paper's Ray+NCCL runtime (§4):
each actor owns an object store and a fused instruction stream; point-to-
point transfers use **pairwise-FIFO matching** (the k-th send from A to B
matches the k-th recv from A posted on B — NCCL's ordering contract from
§4.2), so a mis-ordered schedule genuinely deadlocks (Figure 5) and the
executor reports it instead of hanging.

Two communication modes:

- ``CommMode.SYNC`` — send/recv block their actor until the transfer
  completes (the "synchronous counterpart" the paper compares against, and
  the mode in which Figure 5's naive ordering deadlocks);
- ``CommMode.ASYNC`` — posts return immediately; consuming tasks wait for
  data arrival, and deletions of in-flight send buffers are deferred via
  the pending-deletions queue (§4.3). This is JaxPP's mode: transfers
  overlap compute, visible in the virtual-time timeline.

The executor advances a **virtual clock** from a pluggable
:class:`~repro.runtime.clock.CostModel`; with ``ZeroCost`` it is a pure
correctness interpreter, with a topology-backed model it is the discrete-
event simulator used to regenerate the paper's figures.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Any, Sequence

from repro.runtime.clock import CostModel, ZeroCost
from repro.runtime.instructions import (
    Accumulate,
    AllReduce,
    BufferRef,
    Delete,
    Instruction,
    Recv,
    RunTask,
    Send,
)
from repro.runtime.store import ObjectStore

__all__ = [
    "CommMode",
    "DeadlockError",
    "CommMismatchError",
    "TimelineEvent",
    "ExecutionResult",
    "MpmdExecutor",
]


class CommMode(enum.Enum):
    """Point-to-point communication semantics (see module docstring)."""

    SYNC = "sync"
    ASYNC = "async"


class DeadlockError(RuntimeError):
    """No actor can make progress and the program is not finished."""


class CommMismatchError(RuntimeError):
    """Matched send/recv pair disagrees on the logical value (the data
    corruption NCCL would silently produce with mis-ordered P2P ops)."""


@dataclasses.dataclass
class TimelineEvent:
    """One interval on an actor's device or communication lane."""

    actor: int
    kind: str  # "task" | "send" | "recv" | "allreduce" | "accum"
    name: str
    start: float
    end: float
    nbytes: int = 0
    meta: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of one program execution.

    Attributes:
        makespan: virtual completion time (max over actors).
        timeline: all recorded events (sorted by start).
        actor_finish: per-actor completion times.
        p2p_bytes: total bytes moved point-to-point.
        p2p_count: number of point-to-point transfers.
    """

    makespan: float
    timeline: list[TimelineEvent]
    actor_finish: list[float]
    p2p_bytes: int
    p2p_count: int


@dataclasses.dataclass
class _PostedSend:
    ref: BufferRef
    key: str
    value: Any
    nbytes: int
    post_time: float
    src: int
    # filled at match time:
    end_time: float | None = None


@dataclasses.dataclass
class _PostedRecv:
    ref: BufferRef
    key: str
    nbytes: int
    post_time: float
    dst: int
    end_time: float | None = None


class _Actor:
    def __init__(self, actor_id: int, program: Sequence[Instruction], store: ObjectStore):
        self.id = actor_id
        self.program = list(program)
        self.store = store
        self.pc = 0
        self.time = 0.0  # device lane availability
        # uid -> transfer end time (None until matched) for outstanding sends
        self.outstanding_sends: dict[str, _PostedSend] = {}
        self.posted: set[int] = set()  # pcs whose comm op has been posted

    @property
    def done(self) -> bool:
        return self.pc >= len(self.program)

    def current(self) -> Instruction | None:
        return None if self.done else self.program[self.pc]


class MpmdExecutor:
    """Executes per-actor instruction streams over persistent object stores.

    The object stores persist across :meth:`execute` calls, so weights live
    on their actors between training steps (the paper's "long-lived SPMD
    actors").
    """

    def __init__(
        self,
        n_actors: int,
        cost_model: CostModel | None = None,
        comm_mode: CommMode = CommMode.ASYNC,
    ):
        self.n_actors = n_actors
        self.cost = cost_model or ZeroCost()
        self.comm_mode = comm_mode
        self.stores = [ObjectStore(i) for i in range(n_actors)]

    # -- store management (driver-facing) -------------------------------------
    def place(self, actor: int, ref: BufferRef, value: Any, nbytes: int, pinned: bool = False) -> None:
        """Put an input buffer on an actor before execution."""
        self.stores[actor].put(ref, value, nbytes, pinned=pinned)

    def fetch(self, actor: int, ref: BufferRef) -> Any:
        """Read a buffer's payload from an actor."""
        return self.stores[actor].get(ref).value

    def delete(self, actor: int, ref: BufferRef) -> None:
        """Driver-side delete (used between steps for retired state)."""
        store = self.stores[actor]
        buf = store.get(ref)
        buf.pinned = False
        store.delete(ref)

    def rename(self, actor: int, src: BufferRef, dst: BufferRef) -> None:
        """Move a buffer to a new uid without copying (state hand-over
        between training steps)."""
        store = self.stores[actor]
        buf = store.get(src)
        pinned = buf.pinned
        buf.pinned = False
        value, nbytes = buf.value, buf.nbytes
        store.delete(src)
        store.put(dst, value, nbytes, pinned=pinned)

    # -- execution --------------------------------------------------------------
    def execute(self, programs: Sequence[Sequence[Instruction]]) -> ExecutionResult:
        """Run one fused program per actor to completion.

        Raises:
            DeadlockError: if no actor can progress (mis-ordered send/recv
                under SYNC mode, or a genuine scheduling bug).
            CommMismatchError: if a matched send/recv pair disagrees on keys.
        """
        if len(programs) != self.n_actors:
            raise ValueError(f"expected {self.n_actors} programs, got {len(programs)}")
        actors = [
            _Actor(i, prog, self.stores[i]) for i, prog in enumerate(programs)
        ]
        channels: dict[tuple[int, int], tuple[deque, deque]] = {}
        arrivals: dict[tuple[int, str], float] = {}
        allreduce_posts: dict[str, dict[int, tuple[float, BufferRef]]] = {}
        timeline: list[TimelineEvent] = []
        p2p_bytes = 0
        p2p_count = 0

        def channel(src: int, dst: int) -> tuple[deque, deque]:
            return channels.setdefault((src, dst), (deque(), deque()))

        def ready_time(actor: _Actor, refs: Sequence[BufferRef]) -> float:
            t = actor.time
            for r in refs:
                t = max(t, arrivals.get((actor.id, r.uid), 0.0))
            return t

        def try_match(src: int, dst: int) -> None:
            nonlocal p2p_bytes, p2p_count
            sends, recvs = channel(src, dst)
            while sends and recvs:
                s: _PostedSend = sends.popleft()
                r: _PostedRecv = recvs.popleft()
                if s.key != r.key:
                    raise CommMismatchError(
                        f"send/recv order mismatch on channel {src}->{dst}: "
                        f"send key {s.key!r} met recv key {r.key!r} "
                        "(NCCL would deadlock or corrupt data here)"
                    )
                nbytes = s.nbytes
                start = max(s.post_time, r.post_time)
                dur = self.cost.transfer_time(nbytes, src, dst)
                end = start + dur
                s.end_time = end
                r.end_time = end
                actors[dst].store.put(r.ref, s.value, nbytes)
                arrivals[(dst, r.ref.uid)] = end
                p2p_bytes += nbytes
                p2p_count += 1
                timeline.append(TimelineEvent(src, "send", s.key, start, end, nbytes))
                timeline.append(TimelineEvent(dst, "recv", r.key, start, end, nbytes))

        def flush_pending_deletes(actor: _Actor) -> None:
            still = []
            for ref in actor.store.pending_deletions:
                posted = actor.outstanding_sends.get(ref.uid)
                if posted is not None and posted.end_time is None:
                    still.append(ref)
                else:
                    actor.outstanding_sends.pop(ref.uid, None)
                    actor.store.delete(ref)
            actor.store.pending_deletions = still

        def step(actor: _Actor) -> bool:
            """Try to execute the actor's current instruction. Returns True
            on progress (pc advanced or a comm op newly posted)."""
            instr = actor.current()
            if instr is None:
                return False

            if isinstance(instr, RunTask):
                for r in instr.in_refs:
                    if r not in actor.store:
                        return False  # waiting on a recv to deliver
                start = ready_time(actor, instr.in_refs)
                overhead = self.cost.dispatch_overhead()
                dur = self.cost.task_time(instr.cost, instr.meta)
                end = start + overhead + dur
                if instr.fn is not None:
                    invals = [actor.store.get(r).value for r in instr.in_refs]
                    outvals = instr.fn(invals)
                    if len(outvals) != len(instr.out_refs):
                        raise RuntimeError(
                            f"task {instr.name} returned {len(outvals)} values "
                            f"for {len(instr.out_refs)} out_refs"
                        )
                    for ref, val, nb in zip(instr.out_refs, outvals, instr.meta.get("out_nbytes", [0] * len(instr.out_refs))):
                        actor.store.put(ref, val, nb if nb else getattr(val, "nbytes", 0))
                        arrivals[(actor.id, ref.uid)] = end
                else:
                    for ref, nb in zip(instr.out_refs, instr.meta.get("out_nbytes", [0] * len(instr.out_refs))):
                        actor.store.put(ref, None, nb)
                        arrivals[(actor.id, ref.uid)] = end
                actor.time = end
                timeline.append(
                    TimelineEvent(actor.id, "task", instr.name, start, end, meta=dict(instr.meta))
                )
                actor.pc += 1
                return True

            if isinstance(instr, Send):
                if actor.pc not in actor.posted:
                    if instr.ref not in actor.store:
                        return False  # value not produced yet (compiler bug upstream)
                    buf = actor.store.get(instr.ref)
                    post = _PostedSend(
                        instr.ref, instr.key, buf.value, buf.nbytes,
                        ready_time(actor, [instr.ref]), actor.id,
                    )
                    channel(actor.id, instr.dst)[0].append(post)
                    actor.outstanding_sends[instr.ref.uid] = post
                    actor.posted.add(actor.pc)
                    try_match(actor.id, instr.dst)
                    if self.comm_mode is CommMode.ASYNC:
                        actor.pc += 1
                    return True
                # SYNC: already posted, waiting for the match to complete
                post = actor.outstanding_sends[instr.ref.uid]
                if post.end_time is None:
                    return False
                actor.time = max(actor.time, post.end_time)
                actor.pc += 1
                return True

            if isinstance(instr, Recv):
                if actor.pc not in actor.posted:
                    post = _PostedRecv(instr.ref, instr.key, instr.nbytes, actor.time, actor.id)
                    channel(instr.src, actor.id)[1].append(post)
                    actor.posted.add(actor.pc)
                    actor._last_recv = post  # type: ignore[attr-defined]
                    try_match(instr.src, actor.id)
                    if self.comm_mode is CommMode.ASYNC:
                        actor.pc += 1
                    return True
                post = actor._last_recv  # type: ignore[attr-defined]
                if post.end_time is None:
                    return False
                actor.time = max(actor.time, post.end_time)
                actor.pc += 1
                return True

            if isinstance(instr, Delete):
                flush_pending_deletes(actor)
                posted = actor.outstanding_sends.get(instr.ref.uid)
                if posted is not None and posted.end_time is None:
                    actor.store.pending_deletions.append(instr.ref)
                else:
                    actor.outstanding_sends.pop(instr.ref.uid, None)
                    actor.store.delete(instr.ref)
                actor.pc += 1
                return True

            if isinstance(instr, Accumulate):
                if instr.value not in actor.store:
                    return False
                start = ready_time(actor, [instr.value] + ([instr.acc] if instr.acc in actor.store else []))
                vbuf = actor.store.get(instr.value)
                if instr.acc in actor.store:
                    abuf = actor.store.get(instr.acc)
                    if abuf.value is not None and vbuf.value is not None:
                        actor.store.update(instr.acc, abuf.value + vbuf.value)
                else:
                    actor.store.put(instr.acc, vbuf.value, vbuf.nbytes)
                arrivals[(actor.id, instr.acc.uid)] = start
                if instr.delete_value:
                    actor.store.delete(instr.value)
                timeline.append(TimelineEvent(actor.id, "accum", instr.acc.uid, start, start))
                actor.pc += 1
                return True

            if isinstance(instr, AllReduce):
                posts = allreduce_posts.setdefault(instr.group_key, {})
                if actor.id not in posts:
                    if instr.ref not in actor.store:
                        return False
                    posts[actor.id] = (ready_time(actor, [instr.ref]), instr.ref)
                if set(posts) != set(instr.group):
                    return False  # rendezvous incomplete
                start = max(t for t, _ in posts.values())
                buf0 = actor.store.get(instr.ref)
                dur = self.cost.collective_time(buf0.nbytes, instr.group)
                end = start + dur
                # First actor to observe completion computes the reduction
                # for the whole group (deterministic order).
                if not allreduce_posts.get(instr.group_key + "/done"):
                    vals = [
                        self.stores[a].get(ref).value for a, (_, ref) in sorted(posts.items())
                    ]
                    total = None
                    if all(v is not None for v in vals):
                        total = vals[0]
                        for v in vals[1:]:
                            total = total + v
                    for a, (_, ref) in posts.items():
                        if total is not None:
                            self.stores[a].update(ref, total)
                        arrivals[(a, ref.uid)] = end
                    allreduce_posts[instr.group_key + "/done"] = {0: (end, instr.ref)}
                    timeline.append(
                        TimelineEvent(actor.id, "allreduce", instr.group_key, start, end, buf0.nbytes)
                    )
                actor.time = max(actor.time, end)
                actor.pc += 1
                return True

            raise TypeError(f"unknown instruction {instr!r}")

        # round-robin fixpoint; deterministic
        while True:
            progress = False
            for actor in actors:
                while not actor.done and step(actor):
                    progress = True
            if all(a.done for a in actors):
                break
            if not progress:
                state = "; ".join(
                    f"actor {a.id} stuck at [{a.pc}] {a.current()!r}" for a in actors if not a.done
                )
                raise DeadlockError(f"no actor can make progress: {state}")

        # final pending deletions (sends all matched by now or program bug)
        for actor in actors:
            flush_pending_deletes(actor)

        timeline.sort(key=lambda e: (e.start, e.actor))
        finish = [a.time for a in actors]
        return ExecutionResult(
            makespan=max(finish) if finish else 0.0,
            timeline=timeline,
            actor_finish=finish,
            p2p_bytes=p2p_bytes,
            p2p_count=p2p_count,
        )
