"""Cost models: pluggable virtual-time providers for the MPMD executor.

The same executor runs in two modes:

- **numeric mode** with :class:`ZeroCost` — instructions execute real NumPy
  payloads, virtual time stays 0; used for all correctness tests.
- **simulation mode** with a topology-backed cost model — instructions
  carry costs, the executor computes the discrete-event timeline; used to
  regenerate the paper's performance figures at DGX-H100 scale.
"""

from __future__ import annotations

__all__ = ["CostModel", "ZeroCost", "LinearCost"]


class CostModel:
    """Interface for instruction timing."""

    def task_time(self, cost_hint: float, meta: dict) -> float:
        """Device-busy seconds for a RunTask whose compiled cost is
        ``cost_hint`` (already includes compute + intra-actor collectives)."""
        raise NotImplementedError

    def dispatch_overhead(self) -> float:
        """Per-task launch overhead (the XLA asynchronous-dispatch cost of
        §5.1.1). Charged to the device lane before every task."""
        raise NotImplementedError

    def transfer_time(self, nbytes: int, src: int, dst: int) -> float:
        """Point-to-point transfer seconds between two actors."""
        raise NotImplementedError

    def collective_time(self, nbytes: int, group: tuple[int, ...]) -> float:
        """Cross-actor all-reduce seconds for ``nbytes`` per participant."""
        raise NotImplementedError


class ZeroCost(CostModel):
    """Everything is free; virtual time never advances."""

    def task_time(self, cost_hint: float, meta: dict) -> float:
        return 0.0

    def dispatch_overhead(self) -> float:
        return 0.0

    def transfer_time(self, nbytes: int, src: int, dst: int) -> float:
        return 0.0

    def collective_time(self, nbytes: int, group: tuple[int, ...]) -> float:
        return 0.0


class LinearCost(CostModel):
    """Simple affine model: useful for schedule-shape tests without the
    full hardware model (uniform link bandwidth, fixed overheads)."""

    def __init__(
        self,
        dispatch: float = 0.0,
        p2p_latency: float = 0.0,
        p2p_bandwidth: float = float("inf"),
        allreduce_latency: float = 0.0,
        allreduce_bandwidth: float = float("inf"),
    ):
        self.dispatch = dispatch
        self.p2p_latency = p2p_latency
        self.p2p_bandwidth = p2p_bandwidth
        self.allreduce_latency = allreduce_latency
        self.allreduce_bandwidth = allreduce_bandwidth

    def task_time(self, cost_hint: float, meta: dict) -> float:
        return cost_hint

    def dispatch_overhead(self) -> float:
        return self.dispatch

    def transfer_time(self, nbytes: int, src: int, dst: int) -> float:
        return self.p2p_latency + nbytes / self.p2p_bandwidth

    def collective_time(self, nbytes: int, group: tuple[int, ...]) -> float:
        if len(group) <= 1:
            return 0.0
        # ring all-reduce: 2 (n-1)/n * bytes / bw
        n = len(group)
        return self.allreduce_latency + 2 * (n - 1) / n * nbytes / self.allreduce_bandwidth
