"""Deterministic fault injection for the multi-process runtime.

Chaos testing a distributed runtime with ``kill -9`` and ``sleep`` races
is inherently flaky: the signal lands wherever the scheduler happened to
put the worker, so every run exercises a *different* interleaving and a
recovery bug reproduces once a week.  This module replaces wall-clock
racing with a declarative :class:`FaultPlan` — *which* rank fails, at
*which* step, in *which* way — threaded through the worker loops of
:mod:`repro.runtime.mp` and :mod:`repro.runtime.pool` behind a hook that
costs nothing when no plan is armed (``self.faults is None`` is the
entire steady-state overhead).

Fault kinds
===========

- :class:`KillRank` — the worker process ``os._exit``\\ s at a step
  boundary (``when="before"``: the step never starts; ``"after"``: the
  step fully executed but its result report is lost).  Semantically a
  ``SIGKILL`` pinned to a deterministic program point.
- :class:`WedgeRank` — the worker goes silent (no heartbeats, no
  progress) at a step boundary, exactly what a livelocked or paging
  worker looks like; the driver's no-progress watchdog must fire.
- :class:`DropMessage` — one matched channel send is swallowed; the
  receiver blocks on a transfer that never arrives (a lost packet /
  dead NIC), which the watchdog reports as a deadlock.
- :class:`DelayMessage` — a matched channel send is delivered late.
  Latency must never change results, only timing.
- :class:`CorruptCheckpoint` — a recovery snapshot file is truncated or
  scribbled after it is written (torn disk write); restore must detect
  it and fall back to an older snapshot.  Applied driver-side by
  :mod:`repro.runtime.recovery`, not by workers.

Generations
===========

Worker-side faults are gated on the pool *generation* — the 0-based
count of pools a :class:`~repro.core.api.RemoteMesh` has spawned.  A
fault with ``generation=0`` (the default) fires in the first pool and is
inert in the respawned one, so "kill rank 1 at step 7, then recover" is
expressible without any shared mutable state between the dead pool and
its replacement.  A fault targeting the *replay* itself (testing
retry/backoff) simply names ``generation=1``.

Injected faults clean up after themselves: a kill or wedge discards the
shared-memory payloads it makes undeliverable, so chaos batteries keep
the pool's segment-baseline guarantee (``/dev/shm`` returns to baseline
even across kill/respawn cycles).
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Iterable, Sequence

__all__ = [
    "FaultPlan",
    "KillRank",
    "WedgeRank",
    "DropMessage",
    "DelayMessage",
    "CorruptCheckpoint",
    "RankFaultState",
]

#: exit code of an injected kill — the conventional 128+SIGKILL, so the
#: crash diagnostic reads like a real ``kill -9``.
KILL_EXIT_CODE = 137

#: how long a wedged worker sleeps; far beyond any watchdog window, far
#: below forever (the driver terminates the process long before this).
_WEDGE_S = 3600.0


@dataclasses.dataclass(frozen=True)
class KillRank:
    """Kill one rank's worker process at a deterministic step boundary.

    Attributes:
        rank: pool actor index to kill.
        at_step: worker-local step index (the pool's submission counter;
            equal to the driver's loop step when one step is submitted
            per call, which is how ``RemoteMesh`` drives it).
        when: ``"before"`` — the step never starts; ``"after"`` — the
            step fully executed worker-side, but the worker dies before
            its result is reported (forcing a replay of completed work).
        generation: pool generation this fault arms in (see module docs).
    """

    rank: int
    at_step: int
    when: str = "before"
    generation: int = 0

    def __post_init__(self):
        if self.when not in ("before", "after"):
            raise ValueError(f"KillRank.when must be 'before'/'after', got {self.when!r}")


@dataclasses.dataclass(frozen=True)
class WedgeRank:
    """Wedge one rank at a step boundary: the worker stops reporting and
    stops progressing (no heartbeat, no error) until the driver's
    watchdog terminates it — the deterministic stand-in for a livelocked
    or swapped-out worker."""

    rank: int
    at_step: int
    generation: int = 0


@dataclasses.dataclass(frozen=True)
class DropMessage:
    """Kill a channel mid-step: the ``nth`` message ``rank`` sends to
    ``dst`` during ``at_step`` — and every later send on that channel for
    the rest of the step — is never enqueued (the dead-NIC semantics; a
    single swallowed mid-stream message would instead surface as a
    pairwise-FIFO key mismatch, i.e. a *protocol* error, because the
    receiver's posted recv would match the next send).  The receiver
    blocks on a transfer that cannot arrive and the watchdog reports the
    deadlock with the blocked resource named."""

    rank: int
    dst: int
    at_step: int
    nth: int = 0
    generation: int = 0


@dataclasses.dataclass(frozen=True)
class DelayMessage:
    """Deliver matched channel sends late by ``delay_s`` seconds.
    ``at_step``/``nth`` of ``None`` match every step / every send on the
    channel.  Latency reorders wall-clock timing but must never change
    results — the pairwise-FIFO matching contract absorbs it."""

    rank: int
    dst: int
    delay_s: float = 0.05
    at_step: int | None = None
    nth: int | None = None
    generation: int = 0


@dataclasses.dataclass(frozen=True)
class CorruptCheckpoint:
    """Corrupt the ``at_snapshot``-th recovery snapshot after it is
    written (0-based count of snapshot writes).  ``mode="truncate"``
    keeps the first half of the file (torn write); ``"scribble"``
    overwrites bytes in the middle (bit rot).  Driver-side: applied by
    :class:`repro.runtime.recovery.ResilientStepFunction`."""

    at_snapshot: int
    mode: str = "truncate"

    def __post_init__(self):
        if self.mode not in ("truncate", "scribble"):
            raise ValueError(
                f"CorruptCheckpoint.mode must be 'truncate'/'scribble', got {self.mode!r}"
            )

    def apply(self, path) -> None:
        """Corrupt the file at ``path`` in place."""
        size = os.path.getsize(path)
        if self.mode == "truncate":
            with open(path, "r+b") as f:
                f.truncate(max(1, size // 2))
        else:
            with open(path, "r+b") as f:
                f.seek(size // 2)
                f.write(b"\xde\xad\xbe\xef" * 8)


class FaultPlan:
    """An immutable, picklable set of faults to inject into a run.

    Build it from explicit fault objects::

        FaultPlan([KillRank(rank=1, at_step=7),
                   CorruptCheckpoint(at_snapshot=2)])

    or with the single-kill shorthand the common case reads best as::

        FaultPlan(kill_rank=1, at_step=7)            # kill before step 7
        FaultPlan(kill_rank=1, at_step=7, when="after")

    Hand the plan to :class:`~repro.core.api.RemoteMesh`
    (``fault_plan=``), :class:`~repro.runtime.pool.ActorPool`
    (``fault_plan=``) or :func:`~repro.runtime.mp.execute_mp`
    (``fault_plan=``); workers receive it at spawn and arm only the
    faults naming their rank and pool generation — every other code path
    is untouched (``faults is None``).
    """

    def __init__(
        self,
        faults: Iterable[Any] = (),
        *,
        kill_rank: int | None = None,
        at_step: int | None = None,
        when: str = "before",
        generation: int = 0,
    ):
        faults = list(faults)
        if kill_rank is not None:
            if at_step is None:
                raise ValueError("FaultPlan(kill_rank=...) needs at_step=")
            faults.append(
                KillRank(rank=kill_rank, at_step=at_step, when=when, generation=generation)
            )
        kinds = (KillRank, WedgeRank, DropMessage, DelayMessage, CorruptCheckpoint)
        for f in faults:
            if not isinstance(f, kinds):
                raise TypeError(f"unknown fault {f!r}")
        self.faults: tuple = tuple(faults)

    @property
    def checkpoint_faults(self) -> list[CorruptCheckpoint]:
        """Driver-side snapshot corruptions, in plan order."""
        return [f for f in self.faults if isinstance(f, CorruptCheckpoint)]

    def for_rank(self, rank: int, generation: int) -> "RankFaultState | None":
        """Worker-side fault state for ``rank`` in pool ``generation`` —
        ``None`` when nothing in the plan targets it (the zero-cost
        common case: the worker keeps ``faults is None`` everywhere)."""
        mine = [
            f
            for f in self.faults
            if not isinstance(f, CorruptCheckpoint)
            and f.rank == rank
            and f.generation == generation
        ]
        return RankFaultState(mine) if mine else None

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r})"


class RankFaultState:
    """One rank's armed faults plus the step/send counters that match
    them — the object the worker loops consult.  Hook points:

    - :meth:`begin_step` at the top of a step (kill-before / wedge),
    - :meth:`end_step` after execution, before the result report
      (kill-after),
    - :meth:`on_send` in the channel send path (drop / delay).

    Picklable (plain data), so the one-shot driver can ship it inside
    :class:`~repro.runtime.mp._WorkerSpec`.
    """

    def __init__(self, faults: Sequence[Any]):
        self.kill_before = {
            f.at_step: f for f in faults
            if isinstance(f, KillRank) and f.when == "before"
        }
        self.kill_after = {
            f.at_step: f for f in faults
            if isinstance(f, KillRank) and f.when == "after"
        }
        self.wedges = {f.at_step: f for f in faults if isinstance(f, WedgeRank)}
        self.drops = [f for f in faults if isinstance(f, DropMessage)]
        self.delays = [f for f in faults if isinstance(f, DelayMessage)]
        self._step = -1
        self._sends: dict[int, int] = {}
        self._dead_channels: set[int] = set()

    # -- step-boundary hooks ----------------------------------------------
    def begin_step(self, step: int, payloads: Any = None) -> None:
        """Arm ``step``'s counters; kill or wedge if the plan says so.
        ``payloads`` (the step's encoded input buffers) are reclaimed
        first so an injected death never leaks shm segments the dead
        worker was responsible for consuming."""
        self._step = step
        self._sends = {}
        self._dead_channels = set()
        if step in self.kill_before:
            self._discard(payloads)
            os._exit(KILL_EXIT_CODE)
        if step in self.wedges:
            self._discard(payloads)
            time.sleep(_WEDGE_S)  # silent: no heartbeat thread is running

    def end_step(self, step: int, payloads: Any = None) -> None:
        """Kill after execution but before the result report — the step's
        work is complete and lost.  ``payloads`` are the encoded result
        buffers (reclaimed, same hygiene as :meth:`begin_step`)."""
        if step in self.kill_after:
            self._discard(payloads)
            os._exit(KILL_EXIT_CODE)

    # -- channel hook ------------------------------------------------------
    def on_send(self, dst: int) -> str | None:
        """Called per send; counts the channel, applies drop/delay.
        Returns ``"drop"`` when the message must be swallowed."""
        n = self._sends.get(dst, 0)
        self._sends[dst] = n + 1
        if dst in self._dead_channels:
            return "drop"
        for f in self.drops:
            if f.dst == dst and f.at_step == self._step and f.nth == n:
                self._dead_channels.add(dst)  # dead for the rest of the step
                return "drop"
        for f in self.delays:
            if (
                f.dst == dst
                and (f.at_step is None or f.at_step == self._step)
                and (f.nth is None or f.nth == n)
            ):
                time.sleep(f.delay_s)
        return None

    @staticmethod
    def _discard(payloads: Any) -> None:
        if payloads is not None:
            from repro.runtime.mp import _discard_payload

            _discard_payload(payloads)
