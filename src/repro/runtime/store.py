"""Per-actor on-device object store (§4.1: "custom on-device object store
on each actor for storing sharded device buffers").

Tracks logical byte occupancy and its peak — the statistic behind the
paper's activation-memory claims (1F1B ∝ #stages vs GPipe ∝ #microbatches,
§5.3) — and implements the deferred-deletion protocol of §4.3.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.runtime.instructions import BufferRef

__all__ = ["Buffer", "ObjectStore"]


@dataclasses.dataclass
class Buffer:
    """One stored value.

    Attributes:
        value: the payload (NumPy array / list of per-device shards);
            ``None`` in simulation mode.
        nbytes: logical size used for memory accounting.
        pinned: inputs/weights that deletes must never reclaim.
    """

    value: Any
    nbytes: int
    pinned: bool = False


class ObjectStore:
    """Buffer storage for one actor, with peak-memory tracking."""

    def __init__(self, actor_id: int):
        self.actor_id = actor_id
        self._buffers: dict[str, Buffer] = {}
        self.bytes_in_use = 0
        self.peak_bytes = 0
        # refs whose Delete arrived while a send was still outstanding (§4.3)
        self.pending_deletions: list[BufferRef] = []

    def __contains__(self, ref: BufferRef) -> bool:
        return ref.uid in self._buffers

    def put(self, ref: BufferRef, value: Any, nbytes: int, pinned: bool = False) -> None:
        """Store a buffer; replacing an existing uid is a compiler bug."""
        if ref.uid in self._buffers:
            raise KeyError(f"actor {self.actor_id}: buffer {ref} already exists")
        self._buffers[ref.uid] = Buffer(value, int(nbytes), pinned)
        self.bytes_in_use += int(nbytes)
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)

    def get(self, ref: BufferRef) -> Buffer:
        """Look up a live buffer; missing uid means a use-after-free or a
        scheduling bug, so fail loudly."""
        try:
            return self._buffers[ref.uid]
        except KeyError:
            raise KeyError(
                f"actor {self.actor_id}: buffer {ref} is not live "
                "(deleted too early or never produced)"
            ) from None

    def update(self, ref: BufferRef, value: Any, nbytes: int | None = None) -> None:
        """Replace the payload of a live buffer (accumulators, collectives)."""
        buf = self.get(ref)
        buf.value = value
        if nbytes is not None:
            self.bytes_in_use += int(nbytes) - buf.nbytes
            buf.nbytes = int(nbytes)
            self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)

    def delete(self, ref: BufferRef) -> None:
        """Free a buffer immediately."""
        buf = self.get(ref)
        if buf.pinned:
            raise ValueError(f"actor {self.actor_id}: attempted to delete pinned {ref}")
        del self._buffers[ref.uid]
        self.bytes_in_use -= buf.nbytes

    def live_refs(self) -> list[str]:
        """Uids of all live buffers (diagnostics)."""
        return sorted(self._buffers)
