"""Single-controller MPMD runtime (§4): per-actor instruction streams,
object stores, ordered P2P channels, and the deterministic dataflow
executor that doubles as a discrete-event performance simulator — plus
the process-per-rank backend (``engine="mp"``,
:mod:`repro.runtime.mp`) that executes the same programs on real OS
processes and real wall-clock time.  Deterministic fault injection
(:mod:`repro.runtime.faults`) and fault-tolerant step replay
(:mod:`repro.runtime.recovery`) make rank death a survivable, testable
event rather than a lost job."""

from repro.runtime.clock import CostModel, LinearCost, ZeroCost
from repro.runtime.executor import (
    ENGINES,
    TIE_BREAKS,
    CommMismatchError,
    CommMode,
    DeadlockError,
    ExecutionResult,
    MpmdExecutor,
    TimelineEvent,
    WaitStat,
)
from repro.runtime.instructions import (
    Accumulate,
    AllReduce,
    BufferRef,
    Delete,
    Instruction,
    Recv,
    RunTask,
    Send,
)
from repro.runtime.faults import (
    CorruptCheckpoint,
    DelayMessage,
    DropMessage,
    FaultPlan,
    KillRank,
    WedgeRank,
)
from repro.runtime.mp import DEFAULT_SHM_THRESHOLD, DEFAULT_WATCHDOG_S, execute_mp
from repro.runtime.pool import (
    DEFAULT_MAX_INFLIGHT,
    ActorPool,
    PoolBackpressureTimeout,
    PoolFuture,
)
from repro.runtime.recovery import (
    RankFailure,
    RecoveryPolicy,
    ResilientMesh,
    ResilientStepFunction,
    is_recoverable,
)
from repro.runtime.store import Buffer, ObjectStore

__all__ = [
    "execute_mp", "DEFAULT_SHM_THRESHOLD", "DEFAULT_WATCHDOG_S",
    "ActorPool", "PoolFuture", "PoolBackpressureTimeout", "DEFAULT_MAX_INFLIGHT",
    "FaultPlan", "KillRank", "WedgeRank", "DropMessage", "DelayMessage",
    "CorruptCheckpoint",
    "RecoveryPolicy", "RankFailure", "ResilientStepFunction", "ResilientMesh",
    "is_recoverable",
    "CostModel", "ZeroCost", "LinearCost",
    "MpmdExecutor", "CommMode", "DeadlockError", "CommMismatchError",
    "ExecutionResult", "TimelineEvent", "WaitStat", "ENGINES", "TIE_BREAKS",
    "BufferRef", "Instruction", "RunTask", "Send", "Recv", "Delete",
    "Accumulate", "AllReduce",
    "Buffer", "ObjectStore",
]
