"""Single-controller MPMD runtime (§4): per-actor instruction streams,
object stores, ordered P2P channels, and the deterministic dataflow
executor that doubles as a discrete-event performance simulator."""

from repro.runtime.clock import CostModel, LinearCost, ZeroCost
from repro.runtime.executor import (
    ENGINES,
    TIE_BREAKS,
    CommMismatchError,
    CommMode,
    DeadlockError,
    ExecutionResult,
    MpmdExecutor,
    TimelineEvent,
    WaitStat,
)
from repro.runtime.instructions import (
    Accumulate,
    AllReduce,
    BufferRef,
    Delete,
    Instruction,
    Recv,
    RunTask,
    Send,
)
from repro.runtime.store import Buffer, ObjectStore

__all__ = [
    "CostModel", "ZeroCost", "LinearCost",
    "MpmdExecutor", "CommMode", "DeadlockError", "CommMismatchError",
    "ExecutionResult", "TimelineEvent", "WaitStat", "ENGINES", "TIE_BREAKS",
    "BufferRef", "Instruction", "RunTask", "Send", "Recv", "Delete",
    "Accumulate", "AllReduce",
    "Buffer", "ObjectStore",
]
