"""Persistent multi-process actor pool: a warm mesh serving step streams.

:func:`repro.runtime.mp.execute_mp` is the one-shot driver — it spawns
the process mesh, pickles every program across, runs one step, and tears
everything down, which costs ~139× the useful work on small steps
(``BENCH_mp.json``).  The paper's runtime (and its PipeDream-style
lineage) assumes *long-lived* actors that amortise that setup across
thousands of steps.  :class:`ActorPool` is that runtime:

- **Spawn once.**  ``ActorPool(n)`` starts one spawn-context OS process
  per rank at construction and keeps it alive until :meth:`shutdown`.
  All IPC plumbing — one inbox queue per rank plus a control queue back
  to the driver — is created up front and lives for the pool's lifetime.

- **Ship once.**  A program set is pickled to the workers a single time
  and cached worker-side under a program key; every later submission of
  the same programs sends only the key (:attr:`ship_count` counts actual
  shipments, so tests can assert the cache hit).  Many independent
  compiled steps multiplex one warm mesh.

- **Step stream.**  :meth:`submit` enqueues a step — per-rank input
  buffers plus the program key — and returns a :class:`PoolFuture`
  immediately.  Workers execute submissions in FIFO order but are not
  barrier-synchronised across ranks: rank 0 can start step N+1's program
  (warmup) while rank P-1 is still finishing step N (cooldown), because
  cross-step messages queue behind cross-rank FIFO order exactly like
  cross-microbatch messages do within a step.

- **Backpressure.**  At most ``max_inflight`` submissions may be
  outstanding; beyond that :meth:`submit` blocks (or raises
  :class:`PoolBackpressureTimeout` when a ``timeout`` is given), so a
  fast producer cannot queue unbounded pickled work.

- **Pool-lifetime watchdog.**  The no-progress watchdog only arms while
  submissions are outstanding — an *idle* pool never trips it, however
  long it sits warm.  A genuinely stuck submission fails every pending
  future with the same ``DeadlockError`` diagnostic as the one-shot
  driver (per-actor program counters + blocked resources).

- **Crash detection.**  A worker that dies (``kill -9``, OOM, a bug)
  fails all pending futures with a diagnostic naming the actor and exit
  code instead of hanging the driver; the pool is then dead and a fresh
  one must be spawned (``RemoteMesh`` does this automatically).

- **Per-submission shm accounting.**  Large tensors still travel through
  ``multiprocessing.shared_memory`` segments, but every segment is
  consumed within its own submission — inputs when the worker starts the
  step, in-flight transfers by the pairwise-matching drain, results when
  the driver merges — so a long-lived pool returns to its segment
  baseline after every step.  Only an abnormal stop (crash, deadlock,
  forced shutdown) runs the bulk drain-and-unlink reclaim.

Message routing
===============

The one-shot backend allocates one queue per *directed rank pair*, which
only works because the pair set is known from the programs before spawn.
A pool must run programs it has never seen, so each worker instead owns a
single **inbox** queue; every message carries a route key — ``("data",
src)``, ``("ack", from)``, ``("gather", group)``, ``("cmd",)``, … — and a
tiny demultiplexer (:class:`_Inbox`) buffers out-of-route messages until
someone asks for them.  Per-route FIFO order is preserved because each
producer's puts are FIFO and routes never share a producer stream.  Thin
shims re-expose the ``put``/``get``/``wait`` surfaces the one-shot
:class:`~repro.runtime.mp._Worker` expects, so the instruction
interpreter — and therefore bit-identical semantics — is reused verbatim,
including the queue-emulated barrier that serialises collectives per
group.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
import traceback
import weakref
from collections import deque
from typing import Any, Sequence

import multiprocessing as _mp

from repro.runtime.executor import (
    CommMismatchError,
    CommMode,
    ExecutionResult,
)
from repro.runtime.instructions import BufferRef, Instruction
from repro.runtime.mp import (
    DEFAULT_SHM_THRESHOLD,
    DEFAULT_WATCHDOG_S,
    _HEARTBEAT_S,
    _SPAWN_GRACE_S,
    _Worker,
    _WorkerSpec,
    _WorkerStop,
    _deadlock_error,
    _decode_payload,
    _discard_payload,
    _encode_payload,
    _merge_results,
    _reclaim_in_flight,
)
from repro.runtime.store import ObjectStore

__all__ = [
    "ActorPool",
    "PoolFuture",
    "PoolBackpressureTimeout",
    "DEFAULT_MAX_INFLIGHT",
]

#: default bound on outstanding submissions before ``submit`` blocks.
DEFAULT_MAX_INFLIGHT = 4

#: driver-thread control-queue poll period (watchdog / liveness cadence).
_POLL_S = 0.2

#: route key for driver -> worker commands on the inbox.
_CMD = ("cmd",)


class PoolBackpressureTimeout(TimeoutError):
    """``submit(timeout=...)`` could not get a submission slot in time."""


# ---------------------------------------------------------------------------
# worker side: inbox demultiplexer + queue shims
# ---------------------------------------------------------------------------


class _Inbox:
    """Demultiplexes one worker's inbox queue into per-route streams.

    ``get(route)`` blocks for the next message on ``route``; anything
    else that arrives meanwhile is buffered (per route, FIFO) until its
    consumer asks.  This is what lets one queue per rank replace one
    queue per directed pair without losing the pairwise-FIFO contract.
    """

    def __init__(self, q):
        self.q = q
        self.buf: dict[tuple, deque] = {}

    def get(self, route: tuple):
        d = self.buf.get(route)
        if d:
            return d.popleft()
        while True:
            r, msg = self.q.get()
            if r == route:
                return msg
            self.buf.setdefault(r, deque()).append(msg)


class _RoutePut:
    """``put`` surface: wraps messages with a route key for a peer inbox."""

    __slots__ = ("q", "route")

    def __init__(self, q, route):
        self.q = q
        self.route = route

    def put(self, msg) -> None:
        self.q.put((self.route, msg))


class _RouteGet:
    """``get`` surface: one route of the local inbox."""

    __slots__ = ("inbox", "route")

    def __init__(self, inbox: _Inbox, route):
        self.inbox = inbox
        self.route = route

    def get(self):
        return self.inbox.get(self.route)


class _Duplex:
    """Queue shim with both ends: ``put`` targets a peer inbox route,
    ``get`` reads the same route off the local inbox (gather/result
    queues of the collective protocol)."""

    __slots__ = ("put_q", "route", "inbox")

    def __init__(self, put_q, route, inbox: _Inbox):
        self.put_q = put_q
        self.route = route
        self.inbox = inbox

    def put(self, msg) -> None:
        self.put_q.put((self.route, msg))

    def get(self):
        return self.inbox.get(self.route)


class _QueueBarrier:
    """``Barrier.wait`` emulated over the inbox queues.

    The one-shot backend hands each collective group a real
    ``mp.Barrier``, which must be allocated before spawn — impossible for
    a pool that learns its groups from later programs.  Rendezvous
    instead funnels through the group root: members send an arrive
    message (tagged with a generation counter), the root releases them
    once all have arrived.  The generation stash keeps back-to-back
    barriers of the same group from stealing each other's arrivals; the
    serialising property the collective protocol relies on is preserved
    because no member can reach barrier ``g+1`` before the root finished
    collective ``g``.
    """

    def __init__(self, rank: int, group: tuple, inbox: _Inbox, peers):
        self.rank = rank
        self.group = group
        self.root = group[0]
        self.inbox = inbox
        self.peers = peers
        self.gen = 0
        self._early: dict[int, int] = {}  # root: arrivals for future gens

    def wait(self) -> None:
        gen = self.gen
        self.gen += 1
        arrive = ("barrier", self.group)
        release = ("barrier-go", self.group)
        if self.rank == self.root:
            need = len(self.group) - 1
            have = self._early.pop(gen, 0)
            while have < need:
                g = self.inbox.get(arrive)
                if g == gen:
                    have += 1
                else:
                    self._early[g] = self._early.get(g, 0) + 1
            for r in self.group:
                if r != self.root:
                    self.peers[r].put((release, gen))
        else:
            self.peers[self.root].put((arrive, gen))
            g = self.inbox.get(release)
            if g != gen:  # pragma: no cover - releases are FIFO from root
                raise RuntimeError(
                    f"barrier generation skew in group {self.group}: "
                    f"rank {self.rank} at {gen} got release {g}"
                )


class _CollMap(dict):
    """Lazily builds collective plumbing for any group a program uses."""

    def __init__(self, rank: int, inbox: _Inbox, peers):
        super().__init__()
        self.rank = rank
        self.inbox = inbox
        self.peers = peers

    def __missing__(self, group):
        root = group[0]
        barrier = _QueueBarrier(self.rank, group, self.inbox, self.peers)
        gather_q = _Duplex(self.peers[root], ("gather", group), self.inbox)
        result_qs = {
            r: _Duplex(self.peers[r], ("collres", group), self.inbox)
            for r in group
            if r != root
        }
        value = (barrier, gather_q, result_qs)
        self[group] = value
        return value


class _SubCtrl:
    """Control-queue shim tagging every report with its submission id."""

    __slots__ = ("q", "sid")

    def __init__(self, q, sid: int):
        self.q = q
        self.sid = sid

    def put(self, msg) -> None:
        self.q.put(("sub", self.sid, msg))


def _pool_worker_main(
    rank: int, n: int, inboxes, ctrl, fault_plan=None, generation: int = 0
) -> None:
    """Spawn entry point: serve ship/run commands until shutdown.

    One :class:`~repro.runtime.mp._Worker` is built per *run* (fresh
    object store, fresh posted-receive state) over worker-lifetime queue
    shims, so cross-step channel order is exactly the concatenation of
    the per-step orders.

    ``fault_plan``/``generation`` arm deterministic chaos
    (:mod:`repro.runtime.faults`): faults match against this worker's
    0-based *run counter* — the pool's submission stream index — at the
    same step boundaries the one-shot driver uses.  ``faults is None``
    (no plan, or nothing targeting this rank+generation) is the entire
    steady-state cost.
    """
    sid = -1
    faults = (
        fault_plan.for_rank(rank, generation) if fault_plan is not None else None
    )
    step_idx = -1
    try:
        inbox = _Inbox(inboxes[rank])
        peers = dict(enumerate(inboxes))
        send_qs = {d: _RoutePut(peers[d], ("data", rank)) for d in range(n) if d != rank}
        recv_qs = {s: _RouteGet(inbox, ("data", s)) for s in range(n) if s != rank}
        # this worker acks a transfer TO its sender; it awaits acks FROM
        # the destinations of its own sends
        ack_send = {s: _RoutePut(peers[s], ("ack", rank)) for s in range(n) if s != rank}
        ack_wait = {d: _RouteGet(inbox, ("ack", d)) for d in range(n) if d != rank}
        coll = _CollMap(rank, inbox, peers)
        programs: dict[str, list[Instruction]] = {}
        ctrl.put(("hello", rank))
        while True:
            cmd = inbox.get(_CMD)
            kind = cmd[0]
            if kind == "shutdown":
                ctrl.put(("bye", rank))
                return
            if kind == "ship":
                _, key, program = cmd
                programs[key] = program
                continue
            if kind != "run":  # pragma: no cover - future-proofing
                raise RuntimeError(f"unknown pool command {cmd!r}")
            _, sid, key, enc_buffers, comm_mode, shm_threshold, epoch, cga = (
                cmd if len(cmd) == 8 else (*cmd, False)
            )
            sub_ctrl = _SubCtrl(ctrl, sid)
            program = programs.get(key)
            if program is None:
                sub_ctrl.put(
                    ("error", rank, -1, "protocol",
                     f"program {key!r} was never shipped to actor {rank}")
                )
                return
            step_idx += 1
            if faults is not None:
                # kill-before / wedge fire here, with the step's encoded
                # inputs discarded so an injected death leaks no segments
                faults.begin_step(step_idx, payloads=enc_buffers)
            buffers = {
                uid: (_decode_payload(payload), nbytes, pinned)
                for uid, (payload, nbytes, pinned) in enc_buffers.items()
            }
            spec = _WorkerSpec(
                rank=rank,
                program=program,
                buffers=buffers,
                comm_mode=comm_mode,
                shm_threshold=shm_threshold,
                epoch=epoch,
                codegen_actor=cga,
                faults=faults,
            )
            worker = _Worker(
                spec, send_qs, recv_qs, ack_wait, ack_send, coll, sub_ctrl
            )
            result = worker.run()
            if faults is not None:
                # kill-after: the step fully executed but its report is
                # lost — recovery must replay work that already happened
                faults.end_step(step_idx, payloads=result["buffers"])
            sub_ctrl.put(("done", rank, result))
    except _WorkerStop:
        pass  # error already reported; the pool is dead
    except BaseException:
        try:
            ctrl.put(
                ("sub", sid, ("error", rank, -1, "exception", traceback.format_exc()))
            )
        except Exception:  # pragma: no cover - ctrl queue gone
            pass


# ---------------------------------------------------------------------------
# driver side
# ---------------------------------------------------------------------------


class PoolFuture:
    """Handle to one submitted step.

    ``result()`` blocks for the merged
    :class:`~repro.runtime.executor.ExecutionResult` (or re-raises the
    submission's failure).  ``stores`` are the driver-side object stores
    the result's new buffers were merged into.
    """

    def __init__(self, sub_id: int, stores: Sequence[ObjectStore]):
        self.sub_id = sub_id
        self.stores = stores
        self._event = threading.Event()
        self._result: ExecutionResult | None = None
        self._exc: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ExecutionResult:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"pool submission {self.sub_id} not done after {timeout}s"
            )
        if self._exc is not None:
            raise self._exc
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"pool submission {self.sub_id} not done after {timeout}s"
            )
        return self._exc

    def _finish(self, result=None, exc=None) -> None:
        if self._event.is_set():  # pragma: no cover - double completion
            return
        self._result = result
        self._exc = exc
        self._event.set()


class _Submission:
    __slots__ = ("sid", "stores", "future", "results")

    def __init__(self, sid: int, stores, future: PoolFuture):
        self.sid = sid
        self.stores = stores
        self.future = future
        self.results: dict[int, dict] = {}


def _terminate_procs(procs) -> None:
    for p in procs:
        try:
            if p.is_alive():
                p.terminate()
        except Exception:  # pragma: no cover - already reaped
            pass
    for p in procs:
        try:
            p.join(timeout=5.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=5.0)
        except Exception:  # pragma: no cover - already reaped
            pass


def _cleanup_queues(queues) -> None:
    """Reclaim in-flight shm payloads, then drop the queues' feeder
    threads.  Bounded: the drain runs in a daemon thread (a message
    truncated by terminate() can wedge a queue read) and closing the
    queues unsticks it."""
    drain = threading.Thread(
        target=_reclaim_in_flight, args=(list(queues),), daemon=True
    )
    drain.start()
    drain.join(timeout=5.0)
    for q in queues:
        try:
            q.close()
            q.cancel_join_thread()
        except Exception:  # pragma: no cover - already closed
            pass


def _pool_drive(pool_ref) -> None:
    """Driver-thread loop, holding the pool only weakly so an abandoned
    pool can be garbage-collected (its finalizer then reaps the worker
    processes and this loop exits)."""
    while True:
        pool = pool_ref()
        if pool is None or pool._stop.is_set():
            return
        try:
            fatal = pool._drive_once()
        except Exception:  # pragma: no cover - defensive: never kill silently
            fatal = True
            try:
                pool._fail(RuntimeError(
                    "mp pool driver thread crashed:\n" + traceback.format_exc()
                ))
            except Exception:
                pass
        if fatal:
            return
        del pool  # drop the strong ref before sleeping in get()


class ActorPool:
    """A warm mesh of per-rank actor processes serving step submissions.

    Args:
        n_actors: ranks in the mesh (one OS process each, spawned now).
        comm_mode: default point-to-point semantics for submissions.
        watchdog_s: no-progress window while submissions are outstanding
            (an idle pool never trips it); clamped to at least two worker
            heartbeat periods like the one-shot driver.
        shm_threshold: ndarray bytes at which payloads (inputs, transfers
            and results) switch to shared-memory segments.
        max_inflight: bound on outstanding submissions — ``submit``
            blocks (or times out) beyond it.
        fault_plan: optional :class:`repro.runtime.faults.FaultPlan`
            armed in the workers at spawn (deterministic chaos testing).
        generation: which pool generation this is (0-based spawn count of
            the owning mesh) — faults fire only in the generation they
            name, so a respawned pool does not re-trip the fault that
            killed its predecessor.

    A pool that failed (deadlock, worker death, protocol error) is dead:
    every pending future carries the failure and later ``submit`` calls
    raise.  Spawn a new pool to continue —
    :class:`~repro.core.api.RemoteMesh` does so automatically.
    """

    def __init__(
        self,
        n_actors: int,
        *,
        comm_mode: CommMode = CommMode.ASYNC,
        watchdog_s: float | None = None,
        shm_threshold: int | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        fault_plan: Any = None,
        generation: int = 0,
    ):
        n_actors = int(n_actors)
        if n_actors < 1:
            raise ValueError(f"n_actors must be >= 1, got {n_actors}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.n_actors = n_actors
        self.comm_mode = comm_mode
        self.watchdog_s = max(
            DEFAULT_WATCHDOG_S if watchdog_s is None else float(watchdog_s),
            2.0 * _HEARTBEAT_S,
        )
        self.shm_threshold = int(
            DEFAULT_SHM_THRESHOLD if shm_threshold is None else shm_threshold
        )
        self.max_inflight = int(max_inflight)

        # -- submission state (driver + submitter threads, under _lock) --
        self._lock = threading.RLock()
        self._slots = threading.Semaphore(self.max_inflight)
        self._subs: dict[int, _Submission] = {}
        self._next_sid = 0
        self._failure: BaseException | None = None
        self._closing = False
        self._closed = False
        self._stop = threading.Event()

        # -- program cache bookkeeping (driver side) --
        # id(programs) -> (key, strong ref); the strong ref pins the list
        # so a recycled id can never alias a different program set
        self._program_keys: dict[int, tuple[str, Any]] = {}
        #: distinct program sets actually pickled to the workers — a
        #: resubmission that hits the worker-side cache does not bump it.
        self.ship_count = 0
        #: total submissions accepted over the pool's lifetime.
        self.submit_count = 0

        # -- watchdog / diagnostics (driver thread only) --
        self._hello: set[int] = set()
        self._states: dict[int, tuple[int, str, str]] = {}
        self._pcs: dict[int, int] = {}
        self._last_progress = time.monotonic()

        # -- processes & queues --
        ctx = _mp.get_context("spawn")
        self._inboxes = [ctx.Queue() for _ in range(n_actors)]
        self._ctrl = ctx.Queue()
        self._procs = []
        for rank in range(n_actors):
            p = ctx.Process(
                target=_pool_worker_main,
                args=(rank, n_actors, list(self._inboxes), self._ctrl,
                      fault_plan, generation),
                name=f"mpmd-pool-actor-{rank}",
                daemon=True,
            )
            p.start()
            self._procs.append(p)

        self._driver = threading.Thread(
            target=_pool_drive, args=(weakref.ref(self),),
            name="mpmd-pool-driver", daemon=True,
        )
        self._driver.start()
        # reap the workers if the pool is dropped without shutdown()
        self._finalizer = weakref.finalize(
            self, _pool_finalize, list(self._procs),
            [*self._inboxes, self._ctrl],
        )

    # -- introspection -----------------------------------------------------
    @property
    def pids(self) -> list[int]:
        """Worker process ids, by rank (chaos tests kill these)."""
        return [p.pid for p in self._procs]

    @property
    def inflight(self) -> int:
        """Submissions accepted but not yet completed."""
        with self._lock:
            return len(self._subs)

    @property
    def closed(self) -> bool:
        """True once the pool can no longer accept submissions."""
        return self._closed or self._closing or self._failure is not None

    def alive(self) -> bool:
        """All workers running and the pool accepting submissions."""
        return not self.closed and all(p.is_alive() for p in self._procs)

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.inflight} in flight"
        return f"ActorPool(n_actors={self.n_actors}, {state})"

    # -- submission --------------------------------------------------------
    def submit(
        self,
        programs: Sequence[Sequence[Instruction]],
        stores: Sequence[ObjectStore] | None = None,
        *,
        comm_mode: CommMode | None = None,
        program_key: str | None = None,
        timeout: float | None = None,
        codegen_actor: bool = False,
    ) -> PoolFuture:
        """Enqueue one step on the warm mesh; returns immediately.

        Args:
            programs: one instruction stream per rank.  The same *object*
                submitted again hits the worker-side program cache (no
                re-pickle); distinct objects are shipped under fresh keys.
            stores: driver-side object stores holding the placed inputs
                (fresh ones are created when omitted — read them back via
                ``future.stores``).  New live buffers merge into them when
                the step completes, exactly like the one-shot driver.
            comm_mode: per-submission override of the pool default.
            program_key: readable prefix for the program's cache key
                (diagnostics only; identity still keys the cache).
            timeout: backpressure bound — with ``max_inflight``
                submissions outstanding, wait at most this long for a
                slot before raising :class:`PoolBackpressureTimeout`
                (``None`` blocks).
            codegen_actor: workers run the shipped program through the
                fused straight-line driver (:mod:`repro.runtime.actorgen`)
                instead of the interpretation loop; the driver is
                generated once per shipped program and cached.

        Raises:
            RuntimeError: the pool is shut down or died (worker crash,
                deadlock, protocol error — the cause is embedded).
            PoolBackpressureTimeout: no submission slot within ``timeout``.
        """
        if len(programs) != self.n_actors:
            raise ValueError(
                f"expected {self.n_actors} programs, got {len(programs)}"
            )
        self._check_accepting()
        if not self._slots.acquire(timeout=timeout):
            raise PoolBackpressureTimeout(
                f"submission queue full ({self.max_inflight} in flight; "
                f"no slot freed within {timeout}s)"
            )
        try:
            with self._lock:
                self._check_accepting()
                if stores is None:
                    stores = [ObjectStore(i) for i in range(self.n_actors)]
                elif len(stores) != self.n_actors:
                    raise ValueError(
                        f"expected {self.n_actors} stores, got {len(stores)}"
                    )
                key = self._ensure_shipped(programs, program_key)
                sid = self._next_sid
                self._next_sid += 1
                future = PoolFuture(sid, stores)
                self._subs[sid] = _Submission(sid, stores, future)
                self.submit_count += 1
                self._last_progress = time.monotonic()
                cm = self.comm_mode if comm_mode is None else comm_mode
                epoch = time.monotonic()
                for rank in range(self.n_actors):
                    store = stores[rank]
                    buffers = {}
                    for uid in store.live_refs():
                        buf = store.get(BufferRef(uid))
                        buffers[uid] = (
                            _encode_payload(buf.value, self.shm_threshold),
                            buf.nbytes,
                            buf.pinned,
                        )
                    self._inboxes[rank].put(
                        (_CMD,
                         ("run", sid, key, buffers, cm, self.shm_threshold,
                          epoch, codegen_actor))
                    )
            return future
        except BaseException:
            self._slots.release()
            raise

    def _check_accepting(self) -> None:
        if self._failure is not None:
            raise RuntimeError(
                f"ActorPool is dead ({self._failure}); spawn a new pool"
            )
        if self._closing or self._closed:
            raise RuntimeError("ActorPool is shut down; spawn a new pool")

    def _ensure_shipped(self, programs, program_key: str | None) -> str:
        """Ship ``programs`` to every worker unless already cached there."""
        pid = id(programs)
        entry = self._program_keys.get(pid)
        if entry is not None:
            return entry[0]
        base = "prog" if program_key is None else str(program_key)
        key = f"{base}#{self.ship_count}"
        # the strong reference pins the object so its id stays unique
        self._program_keys[pid] = (key, programs)
        self.ship_count += 1
        for rank in range(self.n_actors):
            self._inboxes[rank].put((_CMD, ("ship", key, list(programs[rank]))))
        return key

    # -- driver thread -----------------------------------------------------
    def _drive_once(self) -> bool:
        """One control-queue poll; returns True when the pool is finished
        (failed or stopped) and the driver thread should exit."""
        try:
            msg = self._ctrl.get(timeout=_POLL_S)
        except _queue.Empty:
            if self._maybe_fail_dead_worker():
                return True
            return self._maybe_fail_watchdog()
        except (OSError, ValueError):  # queues closed under us: shutdown
            return True
        return self._dispatch(msg)

    def _dispatch(self, msg) -> bool:
        self._last_progress = time.monotonic()
        kind = msg[0]
        if kind == "hello":
            self._hello.add(msg[1])
        elif kind == "bye":
            pass  # graceful exit; shutdown() joins the process
        elif kind == "sub":
            _, sid, inner = msg
            return self._handle_sub(sid, inner)
        else:  # pragma: no cover - future-proofing
            self._fail(RuntimeError(f"unknown pool control message {msg!r}"))
            return True
        return False

    def _handle_sub(self, sid: int, inner) -> bool:
        kind = inner[0]
        if kind == "hb":
            _, rank, pc = inner
            self._pcs[rank] = pc
            # clear a recorded wait only when the worker demonstrably
            # moved past it (same stale-heartbeat race as the one-shot
            # driver)
            st = self._states.get(rank)
            if st is not None and st[0] != pc:
                self._states.pop(rank, None)
        elif kind == "wait":
            _, rank, pc, note, label = inner
            self._pcs[rank] = pc
            self._states[rank] = (pc, note, label)
        elif kind == "done":
            _, rank, result = inner
            self._pcs[rank] = result["pc"]
            self._states.pop(rank, None)
            completed = None
            with self._lock:
                sub = self._subs.get(sid)
                if sub is not None:
                    sub.results[rank] = result
                    if len(sub.results) == self.n_actors:
                        completed = self._subs.pop(sid)
            if completed is not None:
                try:
                    merged = _merge_results(
                        completed.results, completed.stores, self.n_actors
                    )
                except BaseException as e:
                    self._fail(e)
                    return True
                completed.future._finish(result=merged)
                self._slots.release()
        elif kind == "error":
            _, rank, pc, err_kind, text = inner
            if err_kind == "mismatch":
                exc: BaseException = CommMismatchError(text)
            else:
                exc = RuntimeError(
                    f"mp pool worker for actor {rank} failed at [{pc}]:\n{text}"
                )
            self._fail(exc)
            return True
        return False

    def _maybe_fail_dead_worker(self) -> bool:
        """A dead worker is always fatal for a pool (workers only exit on
        shutdown) — but give its final error report a beat to surface."""
        if self._closing or self._closed or self._failure is not None:
            return False
        dead = [r for r, p in enumerate(self._procs) if not p.is_alive()]
        if not dead:
            return False
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            try:
                msg = self._ctrl.get(timeout=0.1)
            except (_queue.Empty, OSError, ValueError):
                break
            if self._dispatch(msg):
                return True  # the worker's own error report won the race
        p = self._procs[dead[0]]
        self._fail(RuntimeError(
            f"mp pool worker for actor {dead[0]} died without reporting "
            f"(exitcode {p.exitcode}); pending submissions failed"
        ))
        return True

    def _maybe_fail_watchdog(self) -> bool:
        with self._lock:
            outstanding = list(self._subs.values())
        if not outstanding or self._closing or self._failure is not None:
            return False
        grace = (
            self.watchdog_s
            if len(self._hello) == self.n_actors
            else max(self.watchdog_s, _SPAWN_GRACE_S)
        )
        if time.monotonic() - self._last_progress <= grace:
            return False
        stuck = [
            r for r in range(self.n_actors)
            if any(r not in s.results for s in outstanding)
        ]
        self._fail(_deadlock_error(
            stuck, range(self.n_actors), self._states, self._pcs,
            self.watchdog_s, context="mp pool",
        ))
        return True

    # -- failure & shutdown ------------------------------------------------
    def _fail(self, exc: BaseException) -> None:
        """Pool-fatal: fail every pending future, reap the workers,
        reclaim in-flight shared memory.  Idempotent."""
        with self._lock:
            if self._failure is not None or self._closed:
                return
            self._failure = exc
            pending = list(self._subs.values())
            self._subs.clear()
        for sub in pending:
            # partial done-reports from surviving ranks hold encoded shm
            # payloads that will never be merged — reclaim them
            _discard_payload(sub.results)
            sub.future._finish(exc=exc)
            self._slots.release()
        _terminate_procs(self._procs)
        _cleanup_queues([*self._inboxes, self._ctrl])
        self._stop.set()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Gracefully stop the pool.

        Pending submissions run to completion first (the shutdown command
        queues behind them in each worker's inbox); workers then exit,
        processes are joined (terminated past ``timeout``), and the
        queues are drained and closed.  Idempotent, and safe to call on a
        pool that already died.
        """
        with self._lock:
            if self._closed:
                return
            already_dead = self._failure is not None
            self._closing = True
            if not already_dead:
                for q in self._inboxes:
                    try:
                        q.put((_CMD, ("shutdown",)))
                    except (OSError, ValueError):  # pragma: no cover
                        pass
        if not already_dead:
            deadline = time.monotonic() + timeout
            for p in self._procs:
                p.join(timeout=max(0.0, deadline - time.monotonic()))
            _terminate_procs(self._procs)
            # let the driver thread finish merging any final done reports
            quiet = time.monotonic() + 5.0
            while time.monotonic() < quiet:
                with self._lock:
                    if not self._subs:
                        break
                time.sleep(0.05)
        self._stop.set()
        if threading.current_thread() is not self._driver:
            self._driver.join(timeout=5.0)
        with self._lock:
            leftover = list(self._subs.values())
            self._subs.clear()
            self._closed = True
        if leftover:  # pragma: no cover - workers wedged during shutdown
            exc = RuntimeError("ActorPool was shut down before completion")
            for sub in leftover:
                _discard_payload(sub.results)
                sub.future._finish(exc=exc)
                self._slots.release()
        _cleanup_queues([*self._inboxes, self._ctrl])
        self._finalizer.detach()

    close = shutdown

    def __enter__(self) -> "ActorPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def _pool_finalize(procs, queues) -> None:
    """GC fallback for a pool dropped without shutdown(): reap the
    workers and reclaim whatever shared memory was still in flight."""
    _terminate_procs(procs)
    _cleanup_queues(queues)
