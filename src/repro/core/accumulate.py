"""The gradient-accumulation loop construct (§3.1, Figure 4).

``accumulate_grads(fn, schedule)`` returns a callable that applies ``fn``
to every microbatch of its ``batch`` argument and combines the per-
microbatch outputs — summing gradients, collecting losses — exactly like
the reference loop in the paper:

    grads = zeros_like(state.params)
    loss = []
    for i in range(batch.shape[0]):
        mugrads, muloss = microbatch_grads(batch[i])
        grads += mugrads
        loss.append(muloss)

Under a trace it records a single structured ``pipeline_loop`` equation
holding the traced body (with its ``pipeline_yield`` markers), the
schedule, and the output combine ops. The MPMD compiler
(:mod:`repro.core.compile`) pattern-matches this equation and unrolls it
into the scheduled task graph. Evaluated eagerly (or via the reference
interpreter) it implements the loop above — the single-device semantics
every distributed execution is tested against.

The restriction to ``add``/``stack`` combine ops is intentional (§3.1): it
guarantees the loop body cannot create dependencies between earlier stages
of iteration *i* and later stages of iteration *i-1*, which is what makes
arbitrary schedules legal.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.ir import ops
from repro.ir.avals import ShapedArray, abstractify
from repro.ir.primitives import Primitive
from repro.ir.pytree import tree_flatten, tree_unflatten
from repro.ir.tracer import current_trace, trace_flat
from repro.ir.linearize import linearize

__all__ = ["accumulate_grads", "pipeline_loop_p", "ADD", "STACK", "reference_loop"]

ADD = "add"
STACK = "stack"

pipeline_loop_p = Primitive("pipeline_loop", multiple_results=True)


@pipeline_loop_p.def_abstract
def _loop_abstract(*in_avals, body_jaxpr, n_mbs, n_batch_leaves, out_ops, **_):
    del in_avals
    outs = []
    for atom, op in zip(body_jaxpr.outvars, out_ops):
        if op == ADD:
            outs.append(atom.aval)
        elif op == STACK:
            outs.append(ShapedArray((n_mbs,) + atom.aval.shape, atom.aval.dtype))
        else:
            raise ValueError(f"unknown combine op {op!r}")
    return outs


@pipeline_loop_p.def_impl
def _loop_impl(*invals, body_jaxpr, n_mbs, n_batch_leaves, out_ops, schedule=None):
    batch_leaves = invals[:n_batch_leaves]
    captured = list(invals[n_batch_leaves:])
    acc: list[Any] = [None] * len(out_ops)
    stacked: list[list[Any]] = [[] for _ in out_ops]
    # lower the body once through the linear task VM; the per-microbatch
    # loop then dispatches slot-indexed instructions instead of re-walking
    # the jaxpr (the program falls back to eval_jaxpr under an active
    # trace, preserving inlining semantics)
    body_prog = linearize(body_jaxpr)
    for i in range(n_mbs):
        mb = [np.asarray(x)[i] for x in batch_leaves]
        outs = body_prog(mb + captured)
        for j, (op, o) in enumerate(zip(out_ops, outs)):
            if op == ADD:
                acc[j] = o if acc[j] is None else acc[j] + o
            else:
                stacked[j].append(o)
    results = []
    for j, op in enumerate(out_ops):
        if op == ADD:
            results.append(acc[j])
        else:
            results.append(np.stack(stacked[j]))
    return results


def reference_loop(fn: Callable[[Any], Any], batch: Any, out_ops_spec: Sequence[str] | None = None) -> Any:
    """Pure-Python reference semantics of ``accumulate_grads`` (the gold
    standard the distributed runtime is validated against)."""
    leaves, _ = tree_flatten(batch)
    n_mbs = int(np.asarray(leaves[0]).shape[0])
    out = None
    for i in range(n_mbs):
        flat, td = tree_flatten(batch)
        mb = tree_unflatten(td, [np.asarray(x)[i] for x in flat])
        res = fn(mb)
        res_leaves, res_tree = tree_flatten(res)
        ops_per_leaf = _default_out_ops(res, res_tree, out_ops_spec)
        if out is None:
            out = [
                [leaf] if op == STACK else leaf
                for leaf, op in zip(res_leaves, ops_per_leaf)
            ]
            out_tree = res_tree
        else:
            for j, (leaf, op) in enumerate(zip(res_leaves, ops_per_leaf)):
                if op == STACK:
                    out[j].append(leaf)
                else:
                    out[j] = out[j] + leaf
    final = [np.stack(o) if isinstance(o, list) else o for o in out]
    return tree_unflatten(out_tree, final)


def _default_out_ops(out: Any, out_tree, out_ops_spec: Sequence[str] | None) -> list[str]:
    """Per-leaf combine ops.

    Default (matching the paper's API): the body returns
    ``(grads, *metrics)`` — the first element of the output tuple is summed,
    everything else is stacked. A flat spec may override this with one op
    per top-level tuple element.
    """
    leaves, _ = tree_flatten(out)
    if not (isinstance(out, tuple) and len(out) >= 1):
        return [ADD] * len(leaves)
    per_elem = list(out_ops_spec) if out_ops_spec is not None else [ADD] + [STACK] * (len(out) - 1)
    if len(per_elem) != len(out):
        raise ValueError(
            f"out_ops has {len(per_elem)} entries for {len(out)} outputs"
        )
    result = []
    for elem, op in zip(out, per_elem):
        if op not in (ADD, STACK):
            raise ValueError(f"unknown combine op {op!r}")
        n = len(tree_flatten(elem)[0])
        result.extend([op] * n)
    return result


def accumulate_grads(
    fn: Callable[[Any], Any],
    schedule: Any = None,
    out_ops: Sequence[str] | None = None,
) -> Callable[[Any], Any]:
    """Build the gradient-accumulation loop over microbatches (§3.1).

    Args:
        fn: the per-microbatch function (``microbatch_grads`` in Figure 4).
            Receives one microbatch (the batch pytree with the leading
            ``n_mbs`` axis removed); returns a tuple whose first element is
            accumulated by addition (gradients) and whose remaining
            elements are stacked (losses/metrics). ``fn`` may close over
            traced values (e.g. ``state.params``).
        schedule: a :mod:`repro.core.schedules` schedule describing how the
            unrolled tasks map onto actors. Ignored for single-device
            (eager/reference) execution, where the loop is sequential.
        out_ops: optional per-top-level-output combine ops
            (``"add"``/``"stack"``) overriding the default.

    Returns:
        ``run(batch) -> outputs`` with every batch leaf shaped
        ``(n_mbs, ...)``.
    """

    def run(batch: Any) -> Any:
        trace = current_trace()
        if trace is None:
            return reference_loop(fn, batch, out_ops)

        batch_leaves, batch_tree = tree_flatten(batch)
        n_mbs = int(abstractify(batch_leaves[0]).shape[0])
        for leaf in batch_leaves:
            if abstractify(leaf).shape[:1] != (n_mbs,):
                raise ValueError(
                    "all batch leaves must share the leading microbatch axis"
                )

        out_tree_cell: dict[str, Any] = {}

        def body_flat(*mb_leaves: Any) -> list[Any]:
            mb = tree_unflatten(batch_tree, list(mb_leaves))
            out = fn(mb)
            leaves, tree = tree_flatten(out)
            out_tree_cell["tree"] = tree
            out_tree_cell["out"] = out
            return leaves

        mb_avals = [
            ShapedArray(abstractify(leaf).shape[1:], abstractify(leaf).dtype)
            for leaf in batch_leaves
        ]
        body_jaxpr, free_vals = trace_flat(body_flat, mb_avals, name="pipeline_body")
        ops_per_leaf = _default_out_ops(out_tree_cell["out"], out_tree_cell["tree"], out_ops)

        outs = pipeline_loop_p.bind(
            *batch_leaves,
            *free_vals,
            body_jaxpr=body_jaxpr,
            n_mbs=n_mbs,
            n_batch_leaves=len(batch_leaves),
            out_ops=tuple(ops_per_leaf),
            schedule=schedule,
        )
        return tree_unflatten(out_tree_cell["tree"], outs)

    return run
