"""Pipeline schedules: GPipe, 1F1B, Interleaved 1F1B, Eager 1F1B (and
its tunable generalisation Hybrid1F1B), zero-bubble ZB-H1/ZB-H2/ZB-V,
looped-BFS, and interleaved-ZB (§2.2.1, §4.2).

A schedule answers two questions:

- *placement*: which actor executes each pipeline stage
  (``actor_of_stage``), with backward stages pinned to their forward
  stage's actor (§3.3's assumption);
- *order*: the per-actor sequence of scheduled units
  ``(microbatch, stage, kind)`` — exactly the per-actor task lists of
  §4.2's listing.

Schedules are *data*, not control flow: :meth:`Schedule.lower` turns the
per-actor unit lists into a dependency-explicit
:class:`~repro.core.schedule_ir.ScheduleIR` — one table of slots and
resolved edges that the compiler, the runtime, the performance simulator,
and the visualiser all consume.  This user-extensibility is the paper's
core flexibility claim: a new schedule is a new ``units()`` method, and
nothing downstream changes.

:func:`validate_schedule` checks the properties §2.2.1 requires as graph
checks over the lowered IR: every (microbatch, stage) pair runs exactly
once in each direction, backward runs on the forward's actor, every
dependency edge resolves, per-actor orders are executable (a schedule that
would deadlock is rejected here, before it ever reaches the runtime), and
the per-rank activation count stays within the schedule's declared bound.

Schedules with ``backward_split = True`` (ZB-H1/H2, interleaved-ZB) split
each backward into an **input-gradient** unit (``bwd_i`` — the part
downstream stages depend on) and a **weight-gradient** unit (``bwd_w`` —
purely local, free to fill pipeline bubbles).  The dependency structure
follows Qi et al.'s zero-bubble decomposition: ``bwd_i`` of stage *s*
needs the stage's forward and the ``bwd_i`` of stage *s+1*; ``bwd_w`` only
needs the local ``bwd_i``.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schedule_ir import ScheduleIR

__all__ = [
    "Unit",
    "Schedule",
    "GPipe",
    "OneFOneB",
    "Eager1F1B",
    "Hybrid1F1B",
    "Interleaved1F1B",
    "ZBH1",
    "ZBH2",
    "ZBV",
    "LoopedBFS",
    "InterleavedZB",
    "validate_schedule",
    "schedule_stats",
    "toposort_units",
]

FWD = "fwd"
BWD = "bwd"
BWD_I = "bwd_i"  # input-gradient half of a split backward (ZB-H1)
BWD_W = "bwd_w"  # weight-gradient half of a split backward (ZB-H1)


@dataclasses.dataclass(frozen=True)
class Unit:
    """One scheduled work item: the ``Task(i=..., ty=..., stage=...)`` of
    the paper's schedule listing."""

    mb: int
    stage: int
    kind: str  # "fwd" | "bwd" | "bwd_i" | "bwd_w"

    def __repr__(self) -> str:
        tag = {FWD: "f", BWD: "b", BWD_I: "i", BWD_W: "w"}.get(self.kind, "?")
        return f"{tag}{self.stage}({self.mb})"


class Schedule:
    """Base class: a stage->actor placement plus per-actor unit orders."""

    n_actors: int
    n_stages: int
    #: True when units use the split backward (``bwd_i`` + ``bwd_w``)
    #: instead of a monolithic ``bwd`` — see the module docstring.
    backward_split: bool = False
    #: fraction of the full backward cost charged to ``bwd_i`` (the rest
    #: goes to ``bwd_w``); only meaningful when ``backward_split``.
    bwd_input_fraction: float = 0.5

    def actor_of_stage(self, stage: int) -> int:
        """Actor executing (forward and backward of) ``stage``."""
        raise NotImplementedError

    def stages_of_actor(self, actor: int) -> list[int]:
        """Stages placed on ``actor`` (≥1; >1 means circular repeat)."""
        return [s for s in range(self.n_stages) if self.actor_of_stage(s) == actor]

    def units(self, n_mbs: int) -> list[list[Unit]]:
        """Per-actor ordered unit lists for ``n_mbs`` microbatches."""
        raise NotImplementedError

    def lower(self, n_mbs: int) -> "ScheduleIR":
        """Lower this schedule into its dependency-explicit
        :class:`~repro.core.schedule_ir.ScheduleIR` — the single table the
        compiler, runtime, simulator, and visualiser all consume.

        Memoized per ``n_mbs`` on the schedule instance: the compiler,
        simulator, visualiser, and validators all ask for the identical IR,
        and a ``ScheduleIR`` is immutable once built, so one lowering is
        shared by every consumer."""
        cache: dict[int, "ScheduleIR"] = self.__dict__.setdefault("_lower_cache", {})
        ir = cache.get(n_mbs)
        if ir is None:
            from repro.core.schedule_ir import lower_schedule

            ir = cache[n_mbs] = lower_schedule(self, n_mbs)
        return ir

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        """Declared per-rank bound on concurrently live activations, or
        ``None`` when the schedule makes no promise.  ``validate_schedule``
        checks the lowered IR's peak live count against this."""
        return None

    @property
    def name(self) -> str:
        """Display name."""
        return type(self).__name__


class GPipe(Schedule):
    """GPipe (Huang et al. 2019): all forwards, then all backwards in
    reverse microbatch order. Peak activation memory grows with the number
    of microbatches — the §5.3 comparison point."""

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("GPipe places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return n_mbs  # every microbatch's activation is live at the turn

    def units(self, n_mbs: int) -> list[list[Unit]]:
        out = []
        for actor in range(self.n_actors):
            seq = [Unit(i, actor, FWD) for i in range(n_mbs)]
            seq += [Unit(i, actor, BWD) for i in reversed(range(n_mbs))]
            out.append(seq)
        return out


class OneFOneB(Schedule):
    """1F1B (PipeDream-flush, Narayanan et al. 2019): warm up with
    ``p - 1 - rank`` forwards, then alternate one-forward-one-backward.
    Peak activation memory grows with the number of *stages*, not
    microbatches (§2.2.1's 2-3x activation-memory reduction)."""

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("OneFOneB places one stage per actor; use Interleaved1F1B for circular repeat")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return min(self.n_actors - rank, n_mbs)  # §2.2.1: bounded by stages

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            warmup = min(p - 1 - rank, n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb = warmup, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD))
                nb += 1
            out.append(seq)
        return out


class Interleaved1F1B(Schedule):
    """Interleaved 1F1B (Narayanan et al. 2021): each actor owns
    ``circular_repeat`` (the paper's "degree of circular repeat", a.k.a.
    virtual pipeline) stages, assigned round-robin: stage ``s`` runs on
    actor ``s % n_actors``. Microbatches advance in groups of ``n_actors``.

    Requires ``n_mbs % n_actors == 0`` (Megatron's constraint).
    """

    def __init__(self, n_actors: int, circular_repeat: int):
        if circular_repeat < 1:
            raise ValueError("circular_repeat must be >= 1")
        self.n_actors = n_actors
        self.v = circular_repeat
        self.n_stages = n_actors * circular_repeat

    def actor_of_stage(self, stage: int) -> int:
        return stage % self.n_actors

    # -- Megatron-style global orders ----------------------------------------
    def _fwd_unit(self, rank: int, k: int, n_mbs: int) -> Unit:
        p, v = self.n_actors, self.v
        group, within = divmod(k, p * v)
        chunk, mb_in_group = divmod(within, p)
        mb = group * p + mb_in_group
        stage = chunk * p + rank
        return Unit(mb, stage, FWD)

    def _bwd_unit(self, rank: int, k: int, n_mbs: int) -> Unit:
        p, v = self.n_actors, self.v
        group, within = divmod(k, p * v)
        chunk, mb_in_group = divmod(within, p)
        mb = group * p + mb_in_group
        stage = (v - 1 - chunk) * p + rank
        return Unit(mb, stage, BWD)

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p, v = self.n_actors, self.v
        if n_mbs % p != 0:
            raise ValueError(
                f"Interleaved1F1B needs n_mbs divisible by n_actors ({n_mbs} % {p})"
            )
        total = n_mbs * v
        out = []
        for rank in range(p):
            warmup = min((p - rank - 1) * 2 + (v - 1) * p, total)
            seq: list[Unit] = []
            nf = nb = 0
            for _ in range(warmup):
                seq.append(self._fwd_unit(rank, nf, n_mbs))
                nf += 1
            while nf < total:
                seq.append(self._fwd_unit(rank, nf, n_mbs))
                nf += 1
                seq.append(self._bwd_unit(rank, nb, n_mbs))
                nb += 1
            while nb < total:
                seq.append(self._bwd_unit(rank, nb, n_mbs))
                nb += 1
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return f"Interleaved1F1B(v={self.v})"


class Eager1F1B(Schedule):
    """Eager 1F1B (PipeDream's eager warmup variant): same steady-state
    one-forward-one-backward alternation as :class:`OneFOneB`, but each
    rank warms up with ``2 * (p - 1 - rank)`` forwards instead of
    ``p - 1 - rank``.  The doubled warmup keeps an extra in-flight
    microbatch per downstream hop, so activation sends are posted well
    before their recvs are needed — the overlap headroom that hides P2P
    latency at scale — at the price of roughly twice 1F1B's peak
    activation memory (still bounded by stages, never by microbatches).
    """

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("Eager1F1B places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return min(2 * (self.n_actors - 1 - rank) + 1, n_mbs)

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            warmup = min(2 * (p - 1 - rank), n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb = warmup, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD))
                nb += 1
            out.append(seq)
        return out


class Hybrid1F1B(Schedule):
    """1F1B with an explicit per-rank warmup vector — the knob between
    :class:`OneFOneB` (``warmup[r] = p - 1 - r``) and :class:`Eager1F1B`
    (``warmup[r] = 2(p - 1 - r)``), exposed so the autotuner can shift
    warmup toward the rank the wait profile shows parked longest.

    ``warmup[r]`` forwards run before rank ``r`` enters the
    one-forward-one-backward steady state.  The vector must be rank-wise
    non-increasing (``warmup[r] >= warmup[r + 1]``): rank ``r`` posts
    ``warmup[r] + 1`` forwards before blocking on its first backward, and
    rank ``r + 1`` needs ``warmup[r + 1] + 1`` of them before *its* first
    backward can complete the chain — a downstream rank that warms up
    more than its upstream deadlocks, and ``validate_schedule`` rejects
    it.  Peak live activations on rank ``r`` are
    ``min(warmup[r] + 1, n_mbs)``, so warmup buys send-ahead overlap at a
    linear activation-memory price.
    """

    def __init__(self, n_stages: int, warmup: Sequence[int], n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("Hybrid1F1B places one stage per actor")
        warmup = tuple(int(w) for w in warmup)
        if len(warmup) != n_actors:
            raise ValueError(
                f"warmup vector has {len(warmup)} entries for {n_actors} ranks"
            )
        if any(w < 0 for w in warmup):
            raise ValueError("warmup counts must be non-negative")
        self.n_stages = n_stages
        self.n_actors = n_actors
        self.warmup = warmup

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return min(self.warmup[rank] + 1, n_mbs)

    def units(self, n_mbs: int) -> list[list[Unit]]:
        out = []
        for rank in range(self.n_actors):
            w = min(self.warmup[rank], n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(w)]
            nf, nb = w, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD))
                nb += 1
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return f"Hybrid1F1B{list(self.warmup)}"


class ZBH1(Schedule):
    """Zero-bubble ZB-H1 (Qi et al. 2024): 1F1B with the backward split
    into an input-gradient unit (``bwd_i``, on the inter-stage critical
    path) and a weight-gradient unit (``bwd_w``, purely local).

    Weight-gradient work is deferred until either (a) holding more
    activations would exceed 1F1B's per-rank bound ``p - rank`` or (b) the
    rank runs out of other work (the cooldown phase, where ``bwd_w`` fills
    what 1F1B leaves as bubble).  Because downstream stages wait only for
    the cheaper ``bwd_i``, the backward sweep's critical path shrinks and
    the bubble drops to roughly a third of 1F1B's, at the same peak
    activation memory.
    """

    backward_split = True

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("ZBH1 places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return min(self.n_actors - rank, n_mbs)  # 1F1B's bound, kept

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            bound = p - rank  # 1F1B's peak live-activation count
            warmup = min(p - 1 - rank, n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb, nw = warmup, 0, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD_I))
                nb += 1
                # retire weight-gradients eagerly enough to keep the
                # activation count at 1F1B's bound
                while nw < nb and nf - nw >= bound:
                    seq.append(Unit(nw, rank, BWD_W))
                    nw += 1
            while nw < n_mbs:  # cooldown tail: pure bubble-filling
                seq.append(Unit(nw, rank, BWD_W))
                nw += 1
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return "ZB-H1"


class ZBH2(Schedule):
    """Zero-bubble ZB-H2 (Qi et al. 2024): ZB-H1 with the activation bound
    relaxed from 1F1B's rank-dependent ``p - rank`` to a uniform
    ``2p - 1``.

    Two things change relative to ZB-H1.  Each rank warms up with
    ``2(p - 1 - rank)`` forwards (twice ZB-H1's), shrinking the warmup
    bubble; and — crucially — the uniform bound lets *downstream* ranks
    defer their weight-gradient units too, so the critical backward path
    is a pure ``bwd_i`` chain (period ``fwd + bwd_i`` instead of
    ``fwd + bwd_i + bwd_w`` on the last rank) and the deferred ``bwd_w``
    work drains in the cooldown.  Peak activation memory roughly doubles
    relative to ZB-H1/1F1B (``min(2p - 1, n_mbs)`` per rank) but stays
    bounded by the stage count, never by the microbatch count — the
    paper's "no bubble when memory allows" point on the memory/bubble
    trade-off curve.
    """

    backward_split = True

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("ZBH2 places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return min(2 * self.n_actors - 1, n_mbs)

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            bound = 2 * p - 1  # the relaxed H2 bound, uniform over ranks
            warmup = min(2 * (p - 1 - rank), n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb, nw = warmup, 0, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD_I))
                nb += 1
                while nw < nb and nf - nw >= bound:
                    seq.append(Unit(nw, rank, BWD_W))
                    nw += 1
            while nw < n_mbs:  # cooldown tail: pure bubble-filling
                seq.append(Unit(nw, rank, BWD_W))
                nw += 1
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return "ZB-H2"


class ZBV(Schedule):
    """Zero-bubble ZB-V (Qi et al. 2024): two chunks per rank placed in a
    **V shape** — stage ``s`` runs on actor ``s`` while descending
    (``s < p``) and on actor ``2p - 1 - s`` coming back up, so actor 0
    owns the first *and* last stage and the pipeline turns around on
    actor ``p - 1`` (which owns the two adjacent middle stages).

    The V placement is what lets ZB-V approach ZB-H2's bubble at roughly
    ZB-H1/1F1B's activation memory: the backward chain re-enters each rank
    twice per microbatch, so weight-gradient units (``bwd_w``) find bubble
    slots without any rank having to hold ``2p - 1`` activations the way
    ZB-H2 does.  Loss computation lands on actor 0, so the backward sweep
    starts where the forward sweep started — there is no idle drain on the
    last rank.

    The per-rank order is derived by a deterministic greedy list
    scheduler over the unit dependency graph at ZB-V's design point
    (``fwd = bwd_i = bwd_w`` unit cost): every rank runs the ready unit
    with the earliest start time, preferring input-gradient units (the
    cross-rank critical path), then forwards (downstream-first, matching
    the interleaved V warmup), and deferring weight-gradient units to
    bubbles — or emitting them eagerly once the rank's live-activation
    count reaches the ``2p`` chunk budget (1F1B's byte budget, since each
    chunk holds half a microbatch's layers).
    """

    backward_split = True

    def __init__(self, n_actors: int):
        if n_actors < 1:
            raise ValueError("ZBV needs at least one actor")
        self.n_actors = n_actors
        self.n_stages = 2 * n_actors
        self._units_cache: dict[int, list[list[Unit]]] = {}
        self._peaks_cache: dict[int, list[int]] = {}

    def actor_of_stage(self, stage: int) -> int:
        p = self.n_actors
        return stage if stage < p else 2 * p - 1 - stage

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        if n_mbs not in self._peaks_cache:
            self.units(n_mbs)  # populate the measured-peak cache
        return self._peaks_cache[n_mbs][rank]

    def units(self, n_mbs: int) -> list[list[Unit]]:
        cached = self._units_cache.get(n_mbs)
        if cached is not None:
            return [list(seq) for seq in cached]
        from repro.core.schedule_ir import iter_unit_deps

        p, S = self.n_actors, self.n_stages
        budget = 2 * p  # chunk-activations/rank == 1F1B's byte budget
        kind_prio = {BWD_I: 0, FWD: 1, BWD_W: 2}

        pending: list[set[Unit]] = [set() for _ in range(p)]
        deps_of: dict[Unit, tuple[Unit, ...]] = {}
        for mb in range(n_mbs):
            for s in range(S):
                for k in (FWD, BWD_I, BWD_W):
                    u = Unit(mb, s, k)
                    pending[self.actor_of_stage(s)].add(u)
                    deps_of[u] = tuple(iter_unit_deps(u, S))

        finish: dict[Unit, float] = {}
        rank_time = [0.0] * p
        live = [0] * p
        seqs: list[list[Unit]] = [[] for _ in range(p)]
        n_left = n_mbs * S * 3

        def candidate(rank: int, allow_over_budget: bool) -> tuple | None:
            """Best (start, prio, stage-key, mb, unit) ready on ``rank``."""
            best = None
            at_budget = live[rank] >= budget and not allow_over_budget
            for u in pending[rank]:
                if u.kind == FWD and at_budget:
                    continue
                deps = deps_of[u]
                if any(d not in finish for d in deps):
                    continue
                start = max([rank_time[rank]] + [finish[d] for d in deps])
                # forwards downstream-first (the interleaved V warmup);
                # input-gradients deepest-chain-first (stage s still has s
                # hops of bwd_i chain left below it)
                stage_key = -u.stage
                key = (start, kind_prio[u.kind], stage_key, u.mb, u.stage)
                if best is None or key < best[:-1]:
                    best = key + (u,)
            return best

        while n_left:
            best = None
            for rank in range(p):
                c = candidate(rank, allow_over_budget=False)
                if c is not None and (best is None or c[:-1] < best[0][:-1]):
                    best = (c, rank)
            if best is None:
                # every rank is memory-blocked on a forward: relax the
                # budget for the earliest one (termination guarantee; does
                # not trigger for the gallery's p/n_mbs grid)
                for rank in range(p):  # pragma: no cover - safety valve
                    c = candidate(rank, allow_over_budget=True)
                    if c is not None and (best is None or c[:-1] < best[0][:-1]):
                        best = (c, rank)
                if best is None:  # pragma: no cover - graph is acyclic
                    raise AssertionError("ZBV greedy scheduler stalled")
            (start, _, _, _, _, u), rank = best
            pending[rank].discard(u)
            finish[u] = start + 1.0
            rank_time[rank] = finish[u]
            seqs[rank].append(u)
            if u.kind == FWD:
                live[rank] += 1
            elif u.kind == BWD_W:
                live[rank] -= 1
            n_left -= 1

        peaks = []
        for seq in seqs:
            lv = pk = 0
            for u in seq:
                lv += 1 if u.kind == FWD else (-1 if u.kind == BWD_W else 0)
                pk = max(pk, lv)
            peaks.append(pk)
        self._peaks_cache[n_mbs] = peaks
        self._units_cache[n_mbs] = seqs
        return [list(seq) for seq in seqs]

    @property
    def name(self) -> str:
        return "ZB-V"


class LoopedBFS(Schedule):
    """Looped breadth-first schedule (Lamy-Poirier 2023, Llama-style):
    circular-repeat placement like :class:`Interleaved1F1B` (stage ``s``
    on actor ``s % n_actors``), but microbatches sweep *breadth-first* —
    every microbatch runs through a stage chunk before any advances to the
    next chunk, forward chunks in order, then backward chunks in reverse
    with microbatches drained LIFO.

    Each sweep is a GPipe wave over one chunk, so peak activation memory
    grows with ``n_mbs * circular_repeat`` (all activations live at the
    turn) — the trade for maximum send batching and a schedule whose
    per-chunk communication is perfectly regular.
    """

    def __init__(self, n_actors: int, circular_repeat: int):
        if circular_repeat < 1:
            raise ValueError("circular_repeat must be >= 1")
        self.n_actors = n_actors
        self.v = circular_repeat
        self.n_stages = n_actors * circular_repeat

    def actor_of_stage(self, stage: int) -> int:
        return stage % self.n_actors

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return n_mbs * self.v  # breadth-first holds every sweep's output

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p, v = self.n_actors, self.v
        out = []
        for rank in range(p):
            seq: list[Unit] = []
            for chunk in range(v):  # forward sweeps, chunk by chunk
                stage = chunk * p + rank
                seq += [Unit(i, stage, FWD) for i in range(n_mbs)]
            for chunk in reversed(range(v)):  # backward sweeps, reversed
                stage = chunk * p + rank
                seq += [Unit(i, stage, BWD) for i in reversed(range(n_mbs))]
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return f"LoopedBFS(v={self.v})"


class InterleavedZB(Interleaved1F1B):
    """Interleaved zero-bubble: :class:`Interleaved1F1B`'s circular-repeat
    order with Qi et al.'s backward split applied on top.

    Each backward of the base interleaved order becomes its
    input-gradient half (``bwd_i``) in place; the weight-gradient halves
    are deferred and emitted (a) when holding another activation would
    exceed the base schedule's peak, and (b) one after each ``bwd_i`` of
    the cooldown drain, where the base order idles waiting on the backward
    chain.  Downstream chunks wait only for the cheap ``bwd_i`` chain, so
    the makespan drops below interleaved-1F1B's while peak activation
    memory stays exactly at its level.
    """

    backward_split = True

    def __init__(self, n_actors: int, circular_repeat: int):
        super().__init__(n_actors, circular_repeat)
        self._peaks_cache: dict[int, list[int]] = {}

    def activation_bound(self, rank: int, n_mbs: int) -> int | None:
        return self._base_peaks(n_mbs)[rank]

    def _base_peaks(self, n_mbs: int, base: list[list[Unit]] | None = None) -> list[int]:
        """Per-rank peak live activations of the base interleaved order —
        the bounds the split variant preserves (computed from one base
        table build, memoised per ``n_mbs``)."""
        peaks = self._peaks_cache.get(n_mbs)
        if peaks is None:
            peaks = []
            for seq in base if base is not None else super().units(n_mbs):
                live = peak = 0
                for u in seq:
                    live += 1 if u.kind == FWD else -1
                    peak = max(peak, live)
                peaks.append(peak)
            self._peaks_cache[n_mbs] = peaks
        return peaks

    def units(self, n_mbs: int) -> list[list[Unit]]:
        base = super().units(n_mbs)
        bounds = self._base_peaks(n_mbs, base)
        out = []
        for rank, seq in enumerate(base):
            bound = bounds[rank]
            n_fwd_total = sum(1 for u in seq if u.kind == FWD)
            new: list[Unit] = []
            pending: deque[Unit] = deque()  # bwd_w units awaiting emission
            live = nf = 0
            for u in seq:
                if u.kind == FWD:
                    new.append(u)
                    live += 1
                    nf += 1
                    continue
                # base BWD -> bwd_i now, bwd_w deferred
                new.append(Unit(u.mb, u.stage, BWD_I))
                pending.append(u)
                # retire weight-gradients eagerly enough to keep the
                # activation count at the base interleaved peak (after the
                # bwd_i, where the base order idles anyway — never in
                # front of a forward, which would stall downstream)
                while live >= bound and pending:
                    w = pending.popleft()
                    new.append(Unit(w.mb, w.stage, BWD_W))
                    live -= 1
                # cooldown drain (no forwards left): one weight-gradient
                # per bwd_i fills the slot the base order spends waiting
                # on the backward chain
                if nf == n_fwd_total and pending:
                    w = pending.popleft()
                    new.append(Unit(w.mb, w.stage, BWD_W))
                    live -= 1
            while pending:  # whatever remains after the drain
                w = pending.popleft()
                new.append(Unit(w.mb, w.stage, BWD_W))
            out.append(new)
        return out

    @property
    def name(self) -> str:
        return f"Interleaved-ZB(v={self.v})"


# ---------------------------------------------------------------------------
# validation & analysis — thin delegates over the lowered ScheduleIR
# ---------------------------------------------------------------------------

def validate_schedule(schedule: Schedule, n_mbs: int) -> None:
    """Check completeness, placement, deadlock-freedom, and the per-rank
    activation-memory bound of a schedule by lowering it to its
    :class:`~repro.core.schedule_ir.ScheduleIR` and running the graph
    checks.  Raises ``ValueError`` describing the first violation.
    """
    schedule.lower(n_mbs).validate()


def toposort_units(schedule: Schedule, n_mbs: int) -> list[tuple[int, Unit]]:
    """Global topological order of a schedule's units as ``(actor, unit)``
    pairs (backwards-compatible wrapper over the IR — new code should
    lower once and walk :meth:`ScheduleIR.toposort`).

    Raises ``ValueError`` if the schedule cannot be executed.
    """
    return [(s.rank, s.unit) for s in schedule.lower(n_mbs).toposort()]


def schedule_stats(
    schedule: Schedule,
    n_mbs: int,
    fwd_time: float = 1.0,
    bwd_time: float = 2.0,
    cost_model=None,
) -> dict:
    """Analytic execution of a schedule under uniform stage costs — or
    heterogeneous per-stage costs when a
    :class:`repro.core.autotune.CostModel` is given (costs the lowered
    :class:`~repro.core.schedule_ir.ScheduleIR` directly; see
    :meth:`ScheduleIR.stats`)."""
    return schedule.lower(n_mbs).stats(
        fwd_time=fwd_time, bwd_time=bwd_time, cost_model=cost_model
    )
