"""Pipeline schedules: GPipe, 1F1B, Interleaved 1F1B, Eager 1F1B, ZB-H1
(§2.2.1, §4.2).

A schedule answers two questions:

- *placement*: which actor executes each pipeline stage
  (``actor_of_stage``), with backward stages pinned to their forward
  stage's actor (§3.3's assumption);
- *order*: the per-actor sequence of scheduled units
  ``(microbatch, stage, kind)`` — exactly the per-actor task lists of
  §4.2's listing.

Schedules are *data*, not control flow: the compiler unrolls the loop into
a task graph following the schedule, and the runtime executes whatever
order the schedule chose — this user-extensibility is the paper's core
flexibility claim (new schedules = new subclass, nothing else changes).

:func:`validate_schedule` checks the properties §2.2.1 requires: every
(microbatch, stage) pair runs exactly once in each direction, backward runs
on the forward's actor, and per-actor orders are consistent with the data
dependencies (simulated to completion — a schedule that would deadlock is
rejected here, before it ever reaches the runtime).

Schedules with ``backward_split = True`` (ZB-H1) split each backward into
an **input-gradient** unit (``bwd_i`` — the part downstream stages depend
on) and a **weight-gradient** unit (``bwd_w`` — purely local, free to fill
pipeline bubbles).  The dependency structure follows Qi et al.'s zero-
bubble decomposition: ``bwd_i`` of stage *s* needs the stage's forward and
the ``bwd_i`` of stage *s+1*; ``bwd_w`` only needs the local ``bwd_i``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

__all__ = [
    "Unit",
    "Schedule",
    "GPipe",
    "OneFOneB",
    "Eager1F1B",
    "Interleaved1F1B",
    "ZBH1",
    "validate_schedule",
    "schedule_stats",
    "iter_unit_deps",
    "toposort_units",
]

FWD = "fwd"
BWD = "bwd"
BWD_I = "bwd_i"  # input-gradient half of a split backward (ZB-H1)
BWD_W = "bwd_w"  # weight-gradient half of a split backward (ZB-H1)


@dataclasses.dataclass(frozen=True)
class Unit:
    """One scheduled work item: the ``Task(i=..., ty=..., stage=...)`` of
    the paper's schedule listing."""

    mb: int
    stage: int
    kind: str  # "fwd" | "bwd" | "bwd_i" | "bwd_w"

    def __repr__(self) -> str:
        tag = {FWD: "f", BWD: "b", BWD_I: "i", BWD_W: "w"}.get(self.kind, "?")
        return f"{tag}{self.stage}({self.mb})"


class Schedule:
    """Base class: a stage->actor placement plus per-actor unit orders."""

    n_actors: int
    n_stages: int
    #: True when units use the split backward (``bwd_i`` + ``bwd_w``)
    #: instead of a monolithic ``bwd`` — see the module docstring.
    backward_split: bool = False
    #: fraction of the full backward cost charged to ``bwd_i`` (the rest
    #: goes to ``bwd_w``); only meaningful when ``backward_split``.
    bwd_input_fraction: float = 0.5

    def actor_of_stage(self, stage: int) -> int:
        """Actor executing (forward and backward of) ``stage``."""
        raise NotImplementedError

    def stages_of_actor(self, actor: int) -> list[int]:
        """Stages placed on ``actor`` (≥1; >1 means circular repeat)."""
        return [s for s in range(self.n_stages) if self.actor_of_stage(s) == actor]

    def units(self, n_mbs: int) -> list[list[Unit]]:
        """Per-actor ordered unit lists for ``n_mbs`` microbatches."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Display name."""
        return type(self).__name__


class GPipe(Schedule):
    """GPipe (Huang et al. 2019): all forwards, then all backwards in
    reverse microbatch order. Peak activation memory grows with the number
    of microbatches — the §5.3 comparison point."""

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("GPipe places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def units(self, n_mbs: int) -> list[list[Unit]]:
        out = []
        for actor in range(self.n_actors):
            seq = [Unit(i, actor, FWD) for i in range(n_mbs)]
            seq += [Unit(i, actor, BWD) for i in reversed(range(n_mbs))]
            out.append(seq)
        return out


class OneFOneB(Schedule):
    """1F1B (PipeDream-flush, Narayanan et al. 2019): warm up with
    ``p - 1 - rank`` forwards, then alternate one-forward-one-backward.
    Peak activation memory grows with the number of *stages*, not
    microbatches (§2.2.1's 2-3x activation-memory reduction)."""

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("OneFOneB places one stage per actor; use Interleaved1F1B for circular repeat")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            warmup = min(p - 1 - rank, n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb = warmup, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD))
                nb += 1
            out.append(seq)
        return out


class Interleaved1F1B(Schedule):
    """Interleaved 1F1B (Narayanan et al. 2021): each actor owns
    ``circular_repeat`` (the paper's "degree of circular repeat", a.k.a.
    virtual pipeline) stages, assigned round-robin: stage ``s`` runs on
    actor ``s % n_actors``. Microbatches advance in groups of ``n_actors``.

    Requires ``n_mbs % n_actors == 0`` (Megatron's constraint).
    """

    def __init__(self, n_actors: int, circular_repeat: int):
        if circular_repeat < 1:
            raise ValueError("circular_repeat must be >= 1")
        self.n_actors = n_actors
        self.v = circular_repeat
        self.n_stages = n_actors * circular_repeat

    def actor_of_stage(self, stage: int) -> int:
        return stage % self.n_actors

    # -- Megatron-style global orders ----------------------------------------
    def _fwd_unit(self, rank: int, k: int, n_mbs: int) -> Unit:
        p, v = self.n_actors, self.v
        group, within = divmod(k, p * v)
        chunk, mb_in_group = divmod(within, p)
        mb = group * p + mb_in_group
        stage = chunk * p + rank
        return Unit(mb, stage, FWD)

    def _bwd_unit(self, rank: int, k: int, n_mbs: int) -> Unit:
        p, v = self.n_actors, self.v
        group, within = divmod(k, p * v)
        chunk, mb_in_group = divmod(within, p)
        mb = group * p + mb_in_group
        stage = (v - 1 - chunk) * p + rank
        return Unit(mb, stage, BWD)

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p, v = self.n_actors, self.v
        if n_mbs % p != 0:
            raise ValueError(
                f"Interleaved1F1B needs n_mbs divisible by n_actors ({n_mbs} % {p})"
            )
        total = n_mbs * v
        out = []
        for rank in range(p):
            warmup = min((p - rank - 1) * 2 + (v - 1) * p, total)
            seq: list[Unit] = []
            nf = nb = 0
            for _ in range(warmup):
                seq.append(self._fwd_unit(rank, nf, n_mbs))
                nf += 1
            while nf < total:
                seq.append(self._fwd_unit(rank, nf, n_mbs))
                nf += 1
                seq.append(self._bwd_unit(rank, nb, n_mbs))
                nb += 1
            while nb < total:
                seq.append(self._bwd_unit(rank, nb, n_mbs))
                nb += 1
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return f"Interleaved1F1B(v={self.v})"


class Eager1F1B(Schedule):
    """Eager 1F1B (PipeDream's eager warmup variant): same steady-state
    one-forward-one-backward alternation as :class:`OneFOneB`, but each
    rank warms up with ``2 * (p - 1 - rank)`` forwards instead of
    ``p - 1 - rank``.  The doubled warmup keeps an extra in-flight
    microbatch per downstream hop, so activation sends are posted well
    before their recvs are needed — the overlap headroom that hides P2P
    latency at scale — at the price of roughly twice 1F1B's peak
    activation memory (still bounded by stages, never by microbatches).
    """

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("Eager1F1B places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            warmup = min(2 * (p - 1 - rank), n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb = warmup, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD))
                nb += 1
            out.append(seq)
        return out


class ZBH1(Schedule):
    """Zero-bubble ZB-H1 (Qi et al. 2024): 1F1B with the backward split
    into an input-gradient unit (``bwd_i``, on the inter-stage critical
    path) and a weight-gradient unit (``bwd_w``, purely local).

    Weight-gradient work is deferred until either (a) holding more
    activations would exceed 1F1B's per-rank bound ``p - rank`` or (b) the
    rank runs out of other work (the cooldown phase, where ``bwd_w`` fills
    what 1F1B leaves as bubble).  Because downstream stages wait only for
    the cheaper ``bwd_i``, the backward sweep's critical path shrinks and
    the bubble drops to roughly a third of 1F1B's, at the same peak
    activation memory.
    """

    backward_split = True

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("ZBH1 places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            bound = p - rank  # 1F1B's peak live-activation count
            warmup = min(p - 1 - rank, n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb, nw = warmup, 0, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD_I))
                nb += 1
                # retire weight-gradients eagerly enough to keep the
                # activation count at 1F1B's bound
                while nw < nb and nf - nw >= bound:
                    seq.append(Unit(nw, rank, BWD_W))
                    nw += 1
            while nw < n_mbs:  # cooldown tail: pure bubble-filling
                seq.append(Unit(nw, rank, BWD_W))
                nw += 1
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return "ZB-H1"


# ---------------------------------------------------------------------------
# validation & analysis
# ---------------------------------------------------------------------------

def iter_unit_deps(unit: Unit, n_stages: int) -> Iterator[Unit]:
    """Units that must complete before ``unit`` may run.

    Encodes both the monolithic-backward dependency structure and the
    zero-bubble split one (a unit's kind determines which applies — a
    schedule's units are homogeneous in this respect).
    """
    if unit.kind == FWD:
        if unit.stage > 0:
            yield Unit(unit.mb, unit.stage - 1, FWD)
    elif unit.kind == BWD:
        yield Unit(unit.mb, unit.stage, FWD)
        if unit.stage < n_stages - 1:
            yield Unit(unit.mb, unit.stage + 1, BWD)
    elif unit.kind == BWD_I:
        yield Unit(unit.mb, unit.stage, FWD)
        if unit.stage < n_stages - 1:
            yield Unit(unit.mb, unit.stage + 1, BWD_I)
    elif unit.kind == BWD_W:
        yield Unit(unit.mb, unit.stage, BWD_I)
    else:  # pragma: no cover - guarded by validate_schedule
        raise ValueError(f"unknown unit kind {unit.kind!r}")


def toposort_units(schedule: Schedule, n_mbs: int) -> list[tuple[int, Unit]]:
    """Global topological order of a schedule's units as ``(actor, unit)``
    pairs — greedy over actors in per-actor program order, §4.2's emission
    order (shared by the compiler, the performance simulator, and the
    engine benchmarks).

    Raises ``ValueError`` if the schedule cannot be executed.
    """
    per_actor = schedule.units(n_mbs)
    order: list[tuple[int, Unit]] = []
    done: set[tuple[int, int, str]] = set()
    pcs = [0] * len(per_actor)
    total = sum(len(s) for s in per_actor)
    while len(order) < total:
        progressed = False
        for a, seq in enumerate(per_actor):
            while pcs[a] < len(seq):
                u = seq[pcs[a]]
                deps = (
                    (d.mb, d.stage, d.kind) for d in iter_unit_deps(u, schedule.n_stages)
                )
                if not all(d in done for d in deps):
                    break
                done.add((u.mb, u.stage, u.kind))
                order.append((a, u))
                pcs[a] += 1
                progressed = True
        if not progressed:
            stuck = [seq[pcs[a]] for a, seq in enumerate(per_actor) if pcs[a] < len(seq)]
            raise ValueError(
                f"schedule deadlocks (not executable); stuck units: {stuck[:4]}"
            )
    return order


def validate_schedule(schedule: Schedule, n_mbs: int) -> None:
    """Check completeness, placement, and deadlock-freedom of a schedule.

    Raises ``ValueError`` describing the first violation.
    """
    per_actor = schedule.units(n_mbs)
    if len(per_actor) != schedule.n_actors:
        raise ValueError("schedule emitted wrong number of actor lists")

    kinds = (FWD, BWD_I, BWD_W) if schedule.backward_split else (FWD, BWD)
    expected = {
        (mb, s, k)
        for mb in range(n_mbs)
        for s in range(schedule.n_stages)
        for k in kinds
    }
    seen: set[tuple[int, int, str]] = set()
    for actor, seq in enumerate(per_actor):
        for u in seq:
            if u.kind not in kinds:
                raise ValueError(
                    f"unit {u} has kind {u.kind!r}, but this "
                    f"{'split' if schedule.backward_split else 'monolithic'}"
                    f"-backward schedule may only emit {kinds}"
                )
            key = (u.mb, u.stage, u.kind)
            if key in seen:
                raise ValueError(f"unit {u} scheduled twice")
            seen.add(key)
            if schedule.actor_of_stage(u.stage) != actor:
                raise ValueError(
                    f"unit {u} scheduled on actor {actor}, but stage "
                    f"{u.stage} belongs to actor {schedule.actor_of_stage(u.stage)}"
                )
    if seen != expected:
        missing = sorted(expected - seen)[:5]
        raise ValueError(f"schedule incomplete; missing units like {missing}")

    # Deadlock-freedom: the greedy topological walk must cover every unit
    # (raises ValueError naming the stuck units otherwise).
    toposort_units(schedule, n_mbs)


def schedule_stats(
    schedule: Schedule,
    n_mbs: int,
    fwd_time: float = 1.0,
    bwd_time: float = 2.0,
) -> dict:
    """Analytic execution of a schedule under uniform stage costs.

    Returns makespan, per-actor busy/idle (bubble) time, and peak count of
    live activations per actor — the quantities behind §2.2.1's memory and
    §5.1's throughput discussions.

    For split-backward schedules the full backward cost is divided between
    the input-gradient and weight-gradient units according to the
    schedule's ``bwd_input_fraction``; an activation is held from its
    forward until its weight-gradient unit retires it.
    """

    def unit_time(u: Unit) -> float:
        if u.kind == FWD:
            return fwd_time
        if u.kind == BWD:
            return bwd_time
        f = schedule.bwd_input_fraction
        return bwd_time * (f if u.kind == BWD_I else 1.0 - f)

    per_actor = schedule.units(n_mbs)
    finish: dict[tuple[int, int, str], float] = {}
    actor_time = [0.0] * schedule.n_actors
    live = [0] * schedule.n_actors
    peak_live = [0] * schedule.n_actors
    pcs = [0] * schedule.n_actors
    total = sum(len(s) for s in per_actor)
    executed = 0
    while executed < total:
        progress = False
        for a, seq in enumerate(per_actor):
            while pcs[a] < len(seq):
                u = seq[pcs[a]]
                deps = list(iter_unit_deps(u, schedule.n_stages))
                if not all((d.mb, d.stage, d.kind) in finish for d in deps):
                    break
                start = max(
                    [actor_time[a]] + [finish[(d.mb, d.stage, d.kind)] for d in deps]
                )
                end = start + unit_time(u)
                finish[(u.mb, u.stage, u.kind)] = end
                actor_time[a] = end
                if u.kind == FWD:
                    live[a] += 1
                    peak_live[a] = max(peak_live[a], live[a])
                elif u.kind in (BWD, BWD_W):
                    live[a] -= 1
                pcs[a] += 1
                executed += 1
                progress = True
        if not progress:  # pragma: no cover - guarded by validate_schedule
            raise ValueError("schedule deadlocks")
    makespan = max(actor_time)
    busy = [sum(unit_time(u) for u in seq) for seq in per_actor]
    return {
        "makespan": makespan,
        "busy": busy,
        "bubble_fraction": 1.0 - sum(busy) / (makespan * schedule.n_actors),
        "peak_live_activations": peak_live,
    }
