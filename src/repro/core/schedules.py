"""Pipeline schedules: GPipe, 1F1B, Interleaved 1F1B (§2.2.1, §4.2).

A schedule answers two questions:

- *placement*: which actor executes each pipeline stage
  (``actor_of_stage``), with backward stages pinned to their forward
  stage's actor (§3.3's assumption);
- *order*: the per-actor sequence of scheduled units
  ``(microbatch, stage, kind)`` — exactly the per-actor task lists of
  §4.2's listing.

Schedules are *data*, not control flow: the compiler unrolls the loop into
a task graph following the schedule, and the runtime executes whatever
order the schedule chose — this user-extensibility is the paper's core
flexibility claim (new schedules = new subclass, nothing else changes).

:func:`validate_schedule` checks the properties §2.2.1 requires: every
(microbatch, stage) pair runs exactly once in each direction, backward runs
on the forward's actor, and per-actor orders are consistent with the data
dependencies (simulated to completion — a schedule that would deadlock is
rejected here, before it ever reaches the runtime).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

__all__ = [
    "Unit",
    "Schedule",
    "GPipe",
    "OneFOneB",
    "Interleaved1F1B",
    "validate_schedule",
    "schedule_stats",
]

FWD = "fwd"
BWD = "bwd"


@dataclasses.dataclass(frozen=True)
class Unit:
    """One scheduled work item: the ``Task(i=..., ty=..., stage=...)`` of
    the paper's schedule listing."""

    mb: int
    stage: int
    kind: str  # "fwd" | "bwd"

    def __repr__(self) -> str:
        return f"{self.kind[0]}{self.stage}({self.mb})"


class Schedule:
    """Base class: a stage->actor placement plus per-actor unit orders."""

    n_actors: int
    n_stages: int

    def actor_of_stage(self, stage: int) -> int:
        """Actor executing (forward and backward of) ``stage``."""
        raise NotImplementedError

    def stages_of_actor(self, actor: int) -> list[int]:
        """Stages placed on ``actor`` (≥1; >1 means circular repeat)."""
        return [s for s in range(self.n_stages) if self.actor_of_stage(s) == actor]

    def units(self, n_mbs: int) -> list[list[Unit]]:
        """Per-actor ordered unit lists for ``n_mbs`` microbatches."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Display name."""
        return type(self).__name__


class GPipe(Schedule):
    """GPipe (Huang et al. 2019): all forwards, then all backwards in
    reverse microbatch order. Peak activation memory grows with the number
    of microbatches — the §5.3 comparison point."""

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("GPipe places one stage per actor")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def units(self, n_mbs: int) -> list[list[Unit]]:
        out = []
        for actor in range(self.n_actors):
            seq = [Unit(i, actor, FWD) for i in range(n_mbs)]
            seq += [Unit(i, actor, BWD) for i in reversed(range(n_mbs))]
            out.append(seq)
        return out


class OneFOneB(Schedule):
    """1F1B (PipeDream-flush, Narayanan et al. 2019): warm up with
    ``p - 1 - rank`` forwards, then alternate one-forward-one-backward.
    Peak activation memory grows with the number of *stages*, not
    microbatches (§2.2.1's 2-3x activation-memory reduction)."""

    def __init__(self, n_stages: int, n_actors: int | None = None):
        if n_actors is None:
            n_actors = n_stages
        if n_stages != n_actors:
            raise ValueError("OneFOneB places one stage per actor; use Interleaved1F1B for circular repeat")
        self.n_stages = n_stages
        self.n_actors = n_actors

    def actor_of_stage(self, stage: int) -> int:
        return stage

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p = self.n_actors
        out = []
        for rank in range(p):
            warmup = min(p - 1 - rank, n_mbs)
            seq = [Unit(i, rank, FWD) for i in range(warmup)]
            nf, nb = warmup, 0
            while nb < n_mbs:
                if nf < n_mbs:
                    seq.append(Unit(nf, rank, FWD))
                    nf += 1
                seq.append(Unit(nb, rank, BWD))
                nb += 1
            out.append(seq)
        return out


class Interleaved1F1B(Schedule):
    """Interleaved 1F1B (Narayanan et al. 2021): each actor owns
    ``circular_repeat`` (the paper's "degree of circular repeat", a.k.a.
    virtual pipeline) stages, assigned round-robin: stage ``s`` runs on
    actor ``s % n_actors``. Microbatches advance in groups of ``n_actors``.

    Requires ``n_mbs % n_actors == 0`` (Megatron's constraint).
    """

    def __init__(self, n_actors: int, circular_repeat: int):
        if circular_repeat < 1:
            raise ValueError("circular_repeat must be >= 1")
        self.n_actors = n_actors
        self.v = circular_repeat
        self.n_stages = n_actors * circular_repeat

    def actor_of_stage(self, stage: int) -> int:
        return stage % self.n_actors

    # -- Megatron-style global orders ----------------------------------------
    def _fwd_unit(self, rank: int, k: int, n_mbs: int) -> Unit:
        p, v = self.n_actors, self.v
        group, within = divmod(k, p * v)
        chunk, mb_in_group = divmod(within, p)
        mb = group * p + mb_in_group
        stage = chunk * p + rank
        return Unit(mb, stage, FWD)

    def _bwd_unit(self, rank: int, k: int, n_mbs: int) -> Unit:
        p, v = self.n_actors, self.v
        group, within = divmod(k, p * v)
        chunk, mb_in_group = divmod(within, p)
        mb = group * p + mb_in_group
        stage = (v - 1 - chunk) * p + rank
        return Unit(mb, stage, BWD)

    def units(self, n_mbs: int) -> list[list[Unit]]:
        p, v = self.n_actors, self.v
        if n_mbs % p != 0:
            raise ValueError(
                f"Interleaved1F1B needs n_mbs divisible by n_actors ({n_mbs} % {p})"
            )
        total = n_mbs * v
        out = []
        for rank in range(p):
            warmup = min((p - rank - 1) * 2 + (v - 1) * p, total)
            seq: list[Unit] = []
            nf = nb = 0
            for _ in range(warmup):
                seq.append(self._fwd_unit(rank, nf, n_mbs))
                nf += 1
            while nf < total:
                seq.append(self._fwd_unit(rank, nf, n_mbs))
                nf += 1
                seq.append(self._bwd_unit(rank, nb, n_mbs))
                nb += 1
            while nb < total:
                seq.append(self._bwd_unit(rank, nb, n_mbs))
                nb += 1
            out.append(seq)
        return out

    @property
    def name(self) -> str:
        return f"Interleaved1F1B(v={self.v})"


# ---------------------------------------------------------------------------
# validation & analysis
# ---------------------------------------------------------------------------

def _iter_deps(unit: Unit, n_stages: int) -> Iterator[Unit]:
    """Units that must complete before ``unit`` may run."""
    if unit.kind == FWD:
        if unit.stage > 0:
            yield Unit(unit.mb, unit.stage - 1, FWD)
    else:
        yield Unit(unit.mb, unit.stage, FWD)
        if unit.stage < n_stages - 1:
            yield Unit(unit.mb, unit.stage + 1, BWD)


def validate_schedule(schedule: Schedule, n_mbs: int) -> None:
    """Check completeness, placement, and deadlock-freedom of a schedule.

    Raises ``ValueError`` describing the first violation.
    """
    per_actor = schedule.units(n_mbs)
    if len(per_actor) != schedule.n_actors:
        raise ValueError("schedule emitted wrong number of actor lists")

    expected = {
        (mb, s, k)
        for mb in range(n_mbs)
        for s in range(schedule.n_stages)
        for k in (FWD, BWD)
    }
    seen: set[tuple[int, int, str]] = set()
    for actor, seq in enumerate(per_actor):
        for u in seq:
            key = (u.mb, u.stage, u.kind)
            if key in seen:
                raise ValueError(f"unit {u} scheduled twice")
            seen.add(key)
            if schedule.actor_of_stage(u.stage) != actor:
                raise ValueError(
                    f"unit {u} scheduled on actor {actor}, but stage "
                    f"{u.stage} belongs to actor {schedule.actor_of_stage(u.stage)}"
                )
    if seen != expected:
        missing = sorted(expected - seen)[:5]
        raise ValueError(f"schedule incomplete; missing units like {missing}")

    # Deadlock-freedom: greedily execute respecting per-actor order and
    # cross-actor dependencies.
    done: set[tuple[int, int, str]] = set()
    pcs = [0] * schedule.n_actors
    total = sum(len(s) for s in per_actor)
    while len(done) < total:
        progress = False
        for a, seq in enumerate(per_actor):
            while pcs[a] < len(seq):
                u = seq[pcs[a]]
                deps = [
                    (d.mb, d.stage, d.kind) for d in _iter_deps(u, schedule.n_stages)
                ]
                if all(d in done for d in deps):
                    done.add((u.mb, u.stage, u.kind))
                    pcs[a] += 1
                    progress = True
                else:
                    break
        if not progress:
            stuck = [seq[pcs[a]] for a, seq in enumerate(per_actor) if pcs[a] < len(seq)]
            raise ValueError(f"schedule deadlocks; stuck units: {stuck[:4]}")


def schedule_stats(
    schedule: Schedule,
    n_mbs: int,
    fwd_time: float = 1.0,
    bwd_time: float = 2.0,
) -> dict:
    """Analytic execution of a schedule under uniform stage costs.

    Returns makespan, per-actor busy/idle (bubble) time, and peak count of
    live activations per actor — the quantities behind §2.2.1's memory and
    §5.1's throughput discussions.
    """
    per_actor = schedule.units(n_mbs)
    finish: dict[tuple[int, int, str], float] = {}
    actor_time = [0.0] * schedule.n_actors
    live = [0] * schedule.n_actors
    peak_live = [0] * schedule.n_actors
    pcs = [0] * schedule.n_actors
    total = sum(len(s) for s in per_actor)
    executed = 0
    while executed < total:
        progress = False
        for a, seq in enumerate(per_actor):
            while pcs[a] < len(seq):
                u = seq[pcs[a]]
                deps = list(_iter_deps(u, schedule.n_stages))
                if not all((d.mb, d.stage, d.kind) in finish for d in deps):
                    break
                start = max(
                    [actor_time[a]] + [finish[(d.mb, d.stage, d.kind)] for d in deps]
                )
                dur = fwd_time if u.kind == FWD else bwd_time
                end = start + dur
                finish[(u.mb, u.stage, u.kind)] = end
                actor_time[a] = end
                if u.kind == FWD:
                    live[a] += 1
                    peak_live[a] = max(peak_live[a], live[a])
                else:
                    live[a] -= 1
                pcs[a] += 1
                executed += 1
                progress = True
        if not progress:  # pragma: no cover - guarded by validate_schedule
            raise ValueError("schedule deadlocks")
    makespan = max(actor_time)
    busy = [
        sum(fwd_time if u.kind == FWD else bwd_time for u in seq) for seq in per_actor
    ]
    return {
        "makespan": makespan,
        "busy": busy,
        "bubble_fraction": 1.0 - sum(busy) / (makespan * schedule.n_actors),
        "peak_live_activations": peak_live,
    }
