"""The MPMD compiler: traced ``train_step`` -> fused per-actor programs.

This is the pipeline of §3-§4 end to end:

1. locate the ``pipeline_loop`` equation recorded by ``accumulate_grads``;
2. split its body into stage tasks at the ``pipeline_yield`` markers
   (:mod:`repro.core.stage_split`);
3. apply loop commuting to shared-weight gradients
   (:mod:`repro.core.loop_commute`, §3.4);
4. infer placement of everything outside the loop — §3.3: loop inputs pin
   to the actors of their consuming tasks, pre-loop computation is
   *replicated* onto every actor that needs it, post-loop computation
   follows its gradient operands;
5. unroll the loop over microbatches following the schedule, emitting
   send/recv pairs **at the moment the producing task is scheduled**, in
   global topological order — the §4.2 deadlock-free ordering (the
   ``"naive"`` strategy that Figure 5 warns about is also available, for
   the reproduction of that figure);
6. insert buffer deletions by liveness (§4.3);
7. fuse everything into one instruction list per actor (§4.4).

The result is a :class:`CompiledStep` the driver executes with
:class:`repro.runtime.executor.MpmdExecutor`.

Task payloads are lowered once more through the linear task VM
(:mod:`repro.ir.linearize`): each stage jaxpr compiles to a slot-indexed
:class:`~repro.ir.linearize.LinearProgram` (pre-bound impls, elementwise
fusion, liveness-driven frees and buffer donation), cached on jaxpr
identity so the one-time lowering amortizes over every microbatch of every
step — the paper's "pay trace/compile once, dispatch cheaply at steady
state".  ``task_backend="interpret"`` keeps the tree-walking
:func:`~repro.ir.interpreter.eval_jaxpr` as a differential-testing
reference, mirroring the runtime's ``engine="roundrobin"``.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.accumulate import ADD, STACK, pipeline_loop_p
from repro.core.loop_commute import commute_shared_gradients
from repro.core.schedule_ir import ScheduleIR
from repro.core.schedules import BWD, BWD_I, BWD_W, FWD, Schedule
from repro.core.stage_split import BWD_KIND, FUSED_KIND, SplitResult, StageTask, split_stages
from repro.ir.codegen import codegen
from repro.ir.interpreter import eval_jaxpr
from repro.ir.jaxpr import Atom, Eqn, Jaxpr, Literal, Var
from repro.ir.linearize import linearize
from repro.ir.opt import normalize_opt_level, optimize_split
from repro.runtime.instructions import (
    Accumulate,
    AllReduce,
    BufferRef,
    Delete,
    Instruction,
    Recv,
    RunTask,
    Send,
)

__all__ = ["CompiledStep", "compile_train_step", "find_batch_inputs"]

#: monotonically-increasing suffix making every ``CompiledStep``'s
#: ``program_key`` unique within the driver process.
_PROGRAM_KEYS = itertools.count()


def find_batch_inputs(jaxpr: Jaxpr) -> set[int]:
    """Flat train-step input indices that are passed directly as the
    microbatched batch of the ``pipeline_loop`` (used by the driver to
    shard inputs across data-parallel replicas)."""
    loops = [e for e in jaxpr.eqns if e.prim is pipeline_loop_p]
    if len(loops) != 1:
        raise ValueError(f"expected exactly one pipeline_loop, found {len(loops)}")
    loop_eqn = loops[0]
    invar_pos = {id(v): k for k, v in enumerate(jaxpr.invars)}
    out: set[int] = set()
    for k in range(loop_eqn.params["n_batch_leaves"]):
        atom = loop_eqn.invars[k]
        if isinstance(atom, Var) and id(atom) in invar_pos:
            out.add(invar_pos[id(atom)])
    return out


@dataclasses.dataclass
class CompiledStep:
    """A fully lowered training step.

    Attributes:
        n_actors: total actor count (pipeline depth x data-parallel size).
        programs: fused instruction list per actor (§4.4).
        input_placements: per flat train-step input, the ``(actor, uid)``
            pairs where the driver must place it before execution.
        batch_input_indices: flat input indices that carry the microbatched
            batch (sharded across data-parallel replicas by the driver).
        output_sources: per flat output, one of ``("literal", value)``,
            ``("input", flat_idx)``, or ``("buffer", actor, uid)``.
        split: the stage-split result (for introspection and tests).
        schedule: the schedule that was compiled against (with
            ``schedule="auto"``, the autotuner's winner).
        dp_size: data-parallel replication factor.
        n_commuted: shared-weight gradients rewritten by loop commuting.
        tune_report: the ranked :class:`~repro.core.autotune.TuneReport`
            when the schedule was chosen by ``schedule="auto"``, else
            ``None``.
        schedule_ir: the lowered :class:`~repro.core.schedule_ir.ScheduleIR`
            the programs were emitted from (drives runtime ready-queue
            seeding and introspection).
        task_backend: how stage-task payloads execute — ``"linear"`` (the
            slot-indexed :class:`~repro.ir.linearize.LinearProgram` VM),
            ``"codegen"`` (exec-compiled straight-line Python source per
            program, :mod:`repro.ir.codegen`) or ``"interpret"`` (the
            tree-walking reference interpreter).
        program_key: process-unique readable id for this compiled step —
            the cache-key prefix under which the persistent mp pool ships
            and caches its programs worker-side.  One traced jaxpr can
            compile into several *variants* (different ``optimize`` level,
            task backend, or ``codegen_actor`` fusion), so the key must
            encode the full variant tuple: ``compile_train_step`` keys are
            minted as ``step-{n}.{task_backend}.L{opt_level}`` and the
            pool's actor-fusion path appends its own ``.fused`` marker —
            two variants of the same step multiplexed on one warm pool
            never collide in the worker-side cache.
        opt_level: the algebraic-optimizer level the stage jaxprs were
            rewritten at (:mod:`repro.ir.opt`): 0 = untouched, 1 = exact
            rewrites (CSE / DCE / identity elision / cross-microbatch
            memoization), 2 = adds value-changing reassociation.
        opt_report: the per-task :class:`~repro.ir.opt.OptReport`
            (before/after eqn counts and boundary bytes) when the
            optimizer ran, else ``None``.
    """

    n_actors: int
    programs: list[list[Instruction]]
    input_placements: list[list[tuple[int, str]]]
    batch_input_indices: set[int]
    output_sources: list[tuple]
    split: SplitResult
    schedule: Schedule
    dp_size: int
    n_commuted: int
    schedule_ir: ScheduleIR | None = None
    task_backend: str = "linear"
    tune_report: Any = None
    program_key: str = dataclasses.field(
        default_factory=lambda: f"step-{next(_PROGRAM_KEYS)}"
    )
    opt_level: int = 0
    opt_report: Any = None

    @property
    def instruction_counts(self) -> dict[str, int]:
        """Histogram of instruction kinds over all programs (diagnostics)."""
        out: dict[str, int] = {}
        for prog in self.programs:
            for instr in prog:
                k = type(instr).__name__
                out[k] = out.get(k, 0) + 1
        return out


TASK_BACKENDS = ("linear", "interpret", "codegen")


# ---------------------------------------------------------------------------
# instruction payloads
#
# Every payload the compiler attaches to a RunTask is a module-level
# function or a small callable class over picklable state — never a
# closure or lambda.  The multi-process backend (engine="mp",
# :mod:`repro.runtime.mp`) ships per-actor programs to spawn-context
# workers with plain pickle, so payload picklability is part of the
# compiler's contract (tested by tests/core/test_pickle.py).
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _InterpretFn:
    """Reference payload: re-walk the stage jaxpr through the interpreter."""

    jaxpr: Jaxpr

    def __call__(self, vals: list) -> list:
        return eval_jaxpr(self.jaxpr, list(vals))


@dataclasses.dataclass
class _SliceFn:
    """Microbatch slicing: ``batch[i]`` for one microbatch index."""

    i: int

    def __call__(self, vals: list) -> list:
        return [np.asarray(vals[0])[self.i]]


@dataclasses.dataclass
class _ScaleFn:
    """Data-parallel mean: multiply by a pre-computed ``1/dp`` factor."""

    inv: np.float32

    def __call__(self, vals: list) -> list:
        return [vals[0] * self.inv]


def _stack_fn(vals: list) -> list:
    """STACK combine: stack per-microbatch outputs along a new axis."""
    return [np.stack(vals)]


def _sum_fn(vals: list) -> list:
    """Elementwise sum of commuted gradient parts (§3.4's combine)."""
    total = vals[0]
    for v in vals[1:]:
        total = total + v
    return [total]


@dataclasses.dataclass
class _EqnFn:
    """Payload for a single pre/post-loop train-level equation."""

    eqn: Eqn

    def __call__(self, vals: list) -> list:
        eqn = self.eqn
        full: list[Any] = []
        it = iter(vals)
        for a in eqn.invars:
            full.append(a.value if isinstance(a, Literal) else next(it))
        out = eqn.prim.impl(*full, **eqn.params)
        return list(out) if eqn.prim.multiple_results else [out]


def _make_task_fn(jaxpr: Jaxpr, spmd_config=None, task_backend: str = "linear") -> Callable[[list], list]:
    """Executable payload for a stage task.

    With an inner SPMD mesh configured, the task is partitioned once here
    and executed lock-step across the actor's devices on every call; the
    boundary values stay global (sharding at entry, unsharding at exit).

    Otherwise the payload is chosen by ``task_backend``: ``"linear"``
    compiles the jaxpr once into a cached slot-indexed
    :class:`~repro.ir.linearize.LinearProgram` (the steady-state fast
    path); ``"codegen"`` additionally emits that program as straight-line
    Python source exec-compiled once (:mod:`repro.ir.codegen`);
    ``"interpret"`` re-walks the jaxpr through ``tracer.bind`` on every
    call (the reference both compiled backends are differential-tested
    against).
    """
    if spmd_config is not None:
        from repro.spmd import Mesh, SpmdExecutor, partition

        mesh_axes, rules = spmd_config
        mesh = Mesh(mesh_axes)
        if mesh.n_devices > 1:
            prog = partition(jaxpr, mesh, in_specs=[None] * len(jaxpr.invars), rules=rules)

            def run_spmd(vals: list) -> list:
                return SpmdExecutor(mesh).run(prog, vals)

            return run_spmd

    if task_backend == "linear":
        # one lowering per distinct jaxpr; tasks are shared across
        # microbatches, so the cache amortizes over the whole schedule
        return linearize(jaxpr)

    if task_backend == "codegen":
        # lowers through the same LinearProgram pass, then emits and
        # exec-compiles one Python function per program (cached alongside)
        return codegen(jaxpr)

    return _InterpretFn(jaxpr)


def _make_eqn_fn(eqn: Eqn) -> Callable[[list], list]:
    """Executable payload for a single pre/post-loop equation."""
    return _EqnFn(eqn)


def compile_train_step(
    jaxpr: Jaxpr,
    schedule: Schedule | str | None = None,
    *,
    dp_size: int = 1,
    comm_strategy: str = "topo",
    spmd_config=None,
    cost_fn: Callable[[StageTask], float] | None = None,
    task_backend: str = "linear",
    n_actors: int | None = None,
    memory_budget: float | None = None,
    optimize: bool | int = True,
) -> CompiledStep:
    """Lower a traced training step into per-actor instruction programs.

    Args:
        jaxpr: the traced ``train_step`` containing exactly one
            ``pipeline_loop`` equation.
        schedule: overrides the schedule stored in the loop equation.
            The string ``"auto"`` runs the cost-aware autotuner
            (:mod:`repro.core.autotune`): per-stage costs are estimated
            from the traced stage jaxprs (or ``cost_fn`` when given), the
            compatible gallery schedules are priced, and the winner is
            compiled; its :class:`~repro.core.autotune.TuneReport` lands
            on ``CompiledStep.tune_report``.
        dp_size: data-parallel pipeline replicas (gradients are all-reduced
            and averaged across replicas after the loop).
        comm_strategy: ``"topo"`` (§4.2's deadlock-free ordering) or
            ``"naive"`` (recv-just-before-use; deadlocks under synchronous
            communication — Figure 5).
        spmd_config: optional ``(mesh_axes, rules)`` giving each actor an
            inner SPMD mesh for its tasks.
        cost_fn: optional per-task virtual cost (simulation mode).
        task_backend: stage-task execution backend — ``"linear"``
            (default; slot-indexed :class:`~repro.ir.linearize.LinearProgram`
            compiled once per task), ``"codegen"`` (each program emitted as
            straight-line Python source and exec-compiled once) or
            ``"interpret"`` (tree-walking reference interpreter).
        n_actors: pipeline rank count for ``schedule="auto"`` (the driver
            mesh's width; defaults to one rank per model stage).
        memory_budget: per-rank live-activation-byte budget for
            ``schedule="auto"`` — candidates whose peak exceeds it are
            excluded from the search.
        optimize: algebraic-optimizer level for the stage jaxprs
            (:mod:`repro.ir.opt`).  ``True`` (default) = level 1: CSE,
            identity elision, cross-boundary DCE, and cross-microbatch
            memoization — all bit-identical to ``False`` (level 0).
            ``2`` additionally reassociates matmul/transpose chains
            priced by :mod:`repro.perf.kernels` (value-changing in
            floats).  The report lands on ``CompiledStep.opt_report``.
    """
    if comm_strategy not in ("topo", "naive"):
        raise ValueError(f"unknown comm_strategy {comm_strategy!r}")
    if task_backend not in TASK_BACKENDS:
        raise ValueError(
            f"unknown task_backend {task_backend!r}; expected one of {TASK_BACKENDS}"
        )

    loop_positions = [i for i, e in enumerate(jaxpr.eqns) if e.prim is pipeline_loop_p]
    if len(loop_positions) != 1:
        raise ValueError(
            f"train_step must contain exactly one accumulate_grads loop, found {len(loop_positions)}"
        )
    L = loop_positions[0]
    loop_eqn = jaxpr.eqns[L]
    body: Jaxpr = loop_eqn.params["body_jaxpr"]
    out_ops: tuple[str, ...] = loop_eqn.params["out_ops"]
    n_batch = loop_eqn.params["n_batch_leaves"]
    n_mbs = loop_eqn.params["n_mbs"]
    if schedule is None:
        schedule = loop_eqn.params.get("schedule")
    if schedule is None:
        raise ValueError("no schedule: pass one to accumulate_grads or compile_train_step")

    split = split_stages(body)
    tune_report = None
    if isinstance(schedule, str):
        if schedule != "auto":
            raise ValueError(
                f"unknown schedule {schedule!r}; pass a Schedule or 'auto'"
            )
        from repro.core import autotune

        P_auto = split.n_stages if n_actors is None else n_actors
        cost_model = autotune.CostModel.from_tasks(split, cost_fn)
        tune_report = autotune.tune(
            cost_model, P_auto, n_mbs, memory_budget=memory_budget
        )
        schedule = tune_report.best.schedule
    if split.n_stages != schedule.n_stages:
        raise ValueError(
            f"model has {split.n_stages} pipeline stages (yields + 1) but the "
            f"schedule expects {schedule.n_stages}"
        )

    commute = commute_shared_gradients(body, out_ops, schedule, split)
    body, out_ops = commute.body, commute.out_ops
    if commute.n_commuted:
        split = split_stages(body)

    # ------------------------------------------------------------------
    # algebraic optimizer (ir/opt.py): rewrite every stage jaxpr before
    # linearization — CSE, identity elision, cross-boundary DCE, and
    # cross-microbatch memoization (level >= 1, bit-identical), plus
    # priced reassociation at level 2
    # ------------------------------------------------------------------
    opt_level = normalize_opt_level(optimize)
    prologues: dict[int, Any] = {}
    memo_vars: dict[int, tuple[int, int]] = {}
    memo_boundary: dict[int, tuple[int, int]] = {}
    out_aliases: list = []
    opt_report = None
    if opt_level > 0:
        sopt = optimize_split(
            split,
            n_batch=n_batch,
            n_mbs=n_mbs,
            level=opt_level,
            elide_sharding=spmd_config is None,
        )
        split = sopt.split
        prologues = sopt.prologues
        memo_vars = sopt.memo_vars
        memo_boundary = sopt.memo_boundary
        out_aliases = sopt.out_aliases
        opt_report = sopt.report

    tasks = split.tasks
    P = schedule.n_actors
    n_actors = P * dp_size

    # ------------------------------------------------------------------
    # index maps
    # ------------------------------------------------------------------
    producer: dict[int, tuple[int, int]] = {}  # id(body var) -> (task, out_pos)
    for t in tasks:
        for j, v in enumerate(t.out_vars):
            producer[id(v)] = (t.index, j)
    # deduplicated boundary outputs: extra body vars served by an
    # already-mapped (task, out_pos) slot
    for alias_var, alias_t, alias_j in out_aliases:
        producer[id(alias_var)] = (alias_t, alias_j)

    body_invar_pos = {id(v): k for k, v in enumerate(body.invars)}
    task_actor = [schedule.actor_of_stage(t.stage) for t in tasks]

    # consumers of each task output: list[(task_idx, out_pos)] -> [task idx]
    out_consumers: dict[tuple[int, int], list[int]] = {}
    # consumers of each memoized-boundary value: (task, memo out pos) -> [task]
    memo_consumers: dict[tuple[int, int], list[int]] = {}
    invar_consumers: dict[int, list[int]] = {k: [] for k in range(len(body.invars))}
    for t in tasks:
        for atom in t.in_atoms:
            if id(atom) in memo_vars:
                continue  # fed by this task's own memo prologue buffer
            elif id(atom) in memo_boundary:
                memo_consumers.setdefault(memo_boundary[id(atom)], []).append(t.index)
            elif id(atom) in body_invar_pos:
                invar_consumers[body_invar_pos[id(atom)]].append(t.index)
            elif id(atom) in producer:
                out_consumers.setdefault(producer[id(atom)], []).append(t.index)
            else:  # pragma: no cover - split invariant
                raise AssertionError("task input is neither body invar nor task output")
    # memo prologues consume loop-invariant captures on the task's actor
    for t_idx, pro in prologues.items():
        for atom in pro.in_atoms:
            if id(atom) in body_invar_pos:
                invar_consumers[body_invar_pos[id(atom)]].append(t_idx)

    # body outputs: (task, out_pos) and combine op per output
    body_out_sources: list[tuple[int, int] | None] = []
    for atom in body.outvars:
        body_out_sources.append(producer.get(id(atom)))

    # ------------------------------------------------------------------
    # classify train-level equations: pre (feeds the loop / independent)
    # vs post (depends on loop outputs)
    # ------------------------------------------------------------------
    loop_out_ids = {id(v) for v in loop_eqn.outvars}
    post_set: set[int] = set()
    post_val_ids: set[int] = set(loop_out_ids)
    for i, eqn in enumerate(jaxpr.eqns):
        if i == L:
            continue
        if any(isinstance(a, Var) and id(a) in post_val_ids for a in eqn.invars):
            post_set.add(i)
            post_val_ids.update(id(v) for v in eqn.outvars)
    pre_idx = [i for i in range(len(jaxpr.eqns)) if i != L and i not in post_set]
    post_idx = [i for i in range(len(jaxpr.eqns)) if i in post_set]

    # ------------------------------------------------------------------
    # uid naming for train-level atoms
    # ------------------------------------------------------------------
    invar_pos = {id(v): k for k, v in enumerate(jaxpr.invars)}
    pre_out_uid: dict[int, str] = {}
    for i in pre_idx:
        for j, v in enumerate(jaxpr.eqns[i].outvars):
            pre_out_uid[id(v)] = f"pre.e{i}.o{j}"
    post_out_uid: dict[int, str] = {}
    for i in post_idx:
        for j, v in enumerate(jaxpr.eqns[i].outvars):
            post_out_uid[id(v)] = f"post.e{i}.o{j}"

    # loop outputs -> uid (+ "dp-averaged" uid when dp_size > 1)
    def acc_uid(j: int) -> str:
        return f"acc.{j}" if dp_size == 1 else f"dpm.{j}"

    def stack_uid(j: int) -> str:
        return f"stack.{j}" if dp_size == 1 else f"dpm.stack.{j}"

    loop_out_uid: dict[int, tuple[str, int]] = {}  # id(train outvar) -> (uid, local actor)
    combine_uids: list[tuple[str, int]] = []
    direct_positions: dict[int, int] = {}  # new body-out idx -> train outvar position
    # constant loop outputs (e.g. the zero gradient of a weight the loss
    # never uses) have no producing task; the driver places the combined
    # value directly: sum over microbatches for ADD, a stack for STACK.
    const_loop_outputs: list[tuple[int, str, Literal]] = []
    for pos, (how, k) in enumerate(commute.out_map):
        train_var = loop_eqn.outvars[pos]
        if how == "direct":
            src = body_out_sources[k]
            if src is None:
                atom = body.outvars[k]
                if not isinstance(atom, Literal):
                    raise NotImplementedError(
                        "loop outputs that are loop inputs passed through "
                        "unchanged are not supported"
                    )
                if out_ops[k] == ADD:
                    value = np.asarray(atom.value) * n_mbs
                    aval = atom.aval
                else:
                    # one read-only broadcast view shared by every
                    # microbatch ref — never n_mbs materialized copies.
                    # Callers see this constant output as a non-writable
                    # zero-strided view; copy before mutating.
                    value = np.broadcast_to(
                        np.asarray(atom.value), (n_mbs,) + atom.aval.shape
                    )
                    aval = atom.aval.update(shape=(n_mbs,) + atom.aval.shape)
                uid = f"loopconst.{k}"
                const_loop_outputs.append((0, uid, Literal(value, aval)))
                loop_out_uid[id(train_var)] = (uid, 0)
                direct_positions[k] = pos
                continue
            actor = task_actor[src[0]]
            uid = acc_uid(k) if out_ops[k] == ADD else stack_uid(k)
            loop_out_uid[id(train_var)] = (uid, actor)
            direct_positions[k] = pos
        else:
            spec = commute.combines[k]
            first_src = body_out_sources[spec.part_indices[0]]
            actor = task_actor[first_src[0]]
            uid = f"combine.{k}"
            loop_out_uid[id(train_var)] = (uid, actor)
            combine_uids.append((uid, actor))

    def train_atom_uid(atom: Atom) -> tuple[str, Any]:
        """uid for a train-level atom; second element is a literal payload
        (or None)."""
        if isinstance(atom, Literal):
            return f"lit.{id(atom)}", atom
        if id(atom) in invar_pos:
            return f"in.{invar_pos[id(atom)]}", None
        if id(atom) in pre_out_uid:
            return pre_out_uid[id(atom)], None
        if id(atom) in post_out_uid:
            return post_out_uid[id(atom)], None
        if id(atom) in loop_out_uid:
            return loop_out_uid[id(atom)][0], None
        raise AssertionError("unplaced train atom")

    # ------------------------------------------------------------------
    # placement inference (§3.3)
    # ------------------------------------------------------------------
    # post equations: follow the first loop/post operand's actor
    post_actor: dict[int, int] = {}
    for i in post_idx:
        actor = None
        for a in jaxpr.eqns[i].invars:
            if isinstance(a, Var):
                if id(a) in loop_out_uid:
                    actor = loop_out_uid[id(a)][1]
                    break
                if id(a) in post_out_uid:
                    src_eqn = int(post_out_uid[id(a)].split(".")[1][1:])
                    actor = post_actor[src_eqn]
                    break
        post_actor[i] = 0 if actor is None else actor

    # needed-on sets, propagated backwards through pre equations
    needed_on: dict[str, set[int]] = {}

    def need(uid: str, actor: int) -> None:
        needed_on.setdefault(uid, set()).add(actor)

    # loop inputs pin to the actors of their consuming tasks
    for k, consumers in invar_consumers.items():
        atom = loop_eqn.invars[k]
        uid, _ = train_atom_uid(atom)
        for t in consumers:
            need(uid, task_actor[t])
    # post equations need their non-loop operands locally
    for i in post_idx:
        for a in jaxpr.eqns[i].invars:
            if isinstance(a, Var) and (id(a) in invar_pos or id(a) in pre_out_uid):
                need(train_atom_uid(a)[0], post_actor[i])
            elif isinstance(a, Literal):
                need(train_atom_uid(a)[0], post_actor[i])
    # combine tasks need their parts' accumulators (cross-actor handled below)
    # train outputs produced by pre eqns / invars / literals: actor 0
    for atom in jaxpr.outvars:
        if isinstance(atom, Literal) or id(atom) in invar_pos or id(atom) in pre_out_uid:
            need(train_atom_uid(atom)[0], 0)

    # propagate through pre eqns in reverse order
    for i in reversed(pre_idx):
        eqn = jaxpr.eqns[i]
        actors: set[int] = set()
        for j, v in enumerate(eqn.outvars):
            actors |= needed_on.get(f"pre.e{i}.o{j}", set())
        if not actors:
            continue
        for a in eqn.invars:
            if isinstance(a, (Var, Literal)):
                uid, _ = train_atom_uid(a) if not isinstance(a, Literal) else (None, None)
                if isinstance(a, Var):
                    for act in actors:
                        need(train_atom_uid(a)[0], act)
        # record where this eqn runs
        needed_on[f"pre.e{i}"] = actors

    # input placements (and literal placements)
    input_placements: list[list[tuple[int, str]]] = [[] for _ in jaxpr.invars]
    literal_placements: list[tuple[int, str, Any]] = []
    seen_lit: set[tuple[int, str]] = set()
    for k, v in enumerate(jaxpr.invars):
        uid = f"in.{k}"
        for actor in sorted(needed_on.get(uid, set())):
            input_placements[k].append((actor, uid))
    # literals used by loop captures or post eqns directly
    def note_literal(atom: Literal, actor: int) -> None:
        uid, _ = train_atom_uid(atom)
        if (actor, uid) not in seen_lit:
            seen_lit.add((actor, uid))
            literal_placements.append((actor, uid, atom))

    for k, consumers in invar_consumers.items():
        atom = loop_eqn.invars[k]
        if isinstance(atom, Literal):
            for t in consumers:
                note_literal(atom, task_actor[t])
    for i in post_idx:
        for a in jaxpr.eqns[i].invars:
            if isinstance(a, Literal):
                note_literal(a, post_actor[i])
    for i in pre_idx:
        for a in jaxpr.eqns[i].invars:
            if isinstance(a, Literal):
                for actor in needed_on.get(f"pre.e{i}", set()):
                    note_literal(a, actor)

    # batch inputs for data-parallel sharding
    batch_input_indices: set[int] = set()
    dp_ok = True
    for k in range(n_batch):
        atom = loop_eqn.invars[k]
        if isinstance(atom, Var) and id(atom) in invar_pos:
            batch_input_indices.add(invar_pos[id(atom)])
        else:
            dp_ok = False
    if dp_size > 1 and not dp_ok:
        raise ValueError(
            "data parallelism requires the microbatched batch to be passed "
            "directly to train_step (shape (n_mbs, mbsz, ...)), not computed "
            "inside it"
        )

    # ------------------------------------------------------------------
    # program emission
    # ------------------------------------------------------------------
    programs: list[list[Instruction]] = [[] for _ in range(n_actors)]
    task_fns = [_make_task_fn(t.jaxpr, spmd_config, task_backend) for t in tasks]
    memo_fns = {
        t_idx: _make_task_fn(pro.jaxpr, spmd_config, task_backend)
        for t_idx, pro in prologues.items()
    }
    task_costs = [cost_fn(t) if cost_fn else 0.0 for t in tasks]

    def memo_uid(t: int, j: int) -> str:
        return f"memo.t{t}.o{j}"

    # lower the schedule once: the IR's global topological order is §4.2's
    # iteration order, and its resolved edges carry the dependency model
    # (monolithic or zero-bubble split backward) — nothing is re-derived
    # from unit kinds here
    sched_ir = schedule.lower(n_mbs)
    order = [(slot.rank, slot.unit) for slot in sched_ir.toposort()]

    for replica in range(dp_size):
        base = replica * P

        def prog(a_local: int) -> list[Instruction]:
            return programs[base + a_local]

        # --- pre equations (replicated where needed) ---
        for i in pre_idx:
            eqn = jaxpr.eqns[i]
            for a_local in sorted(needed_on.get(f"pre.e{i}", set())):
                in_refs = [
                    BufferRef(train_atom_uid(a)[0])
                    for a in eqn.invars
                    if not isinstance(a, Literal)
                ]
                out_refs = [BufferRef(f"pre.e{i}.o{j}") for j in range(len(eqn.outvars))]
                prog(a_local).append(
                    RunTask(
                        name=f"pre.{eqn.prim.name}",
                        in_refs=in_refs,
                        out_refs=out_refs,
                        fn=_make_eqn_fn(eqn),
                        meta={"phase": "pre", "out_nbytes": [v.aval.nbytes for v in eqn.outvars]},
                    )
                )

        # --- microbatch slicing of batch inputs ---
        for k in range(n_batch):
            atom = loop_eqn.invars[k]
            uid, _ = train_atom_uid(atom)
            actors = sorted({task_actor[t] for t in invar_consumers[k]})
            for a_local in actors:
                for i in range(n_mbs):
                    prog(a_local).append(
                        RunTask(
                            name=f"slice.b{k}[{i}]",
                            in_refs=[BufferRef(uid)],
                            out_refs=[BufferRef(f"mb{i}.bin{k}")],
                            fn=_SliceFn(i),
                            meta={
                                "phase": "slice",
                                "out_nbytes": [body.invars[k].aval.nbytes],
                            },
                        )
                    )

        # --- once-per-step memoized prologues (ir/opt.py hoisting) ---
        # each runs the loop-invariant prefix of its stage task exactly
        # once; every microbatch instance then reads the memo buffers.
        # Memoized *boundary* values additionally ship to cross-actor
        # consumers here — one transfer per step instead of per microbatch.
        for t_idx in sorted(prologues):
            pro = prologues[t_idx]
            a_local = task_actor[t_idx]
            memo_in_refs = []
            for atom in pro.in_atoms:
                k = body_invar_pos[id(atom)]
                memo_in_refs.append(
                    BufferRef(train_atom_uid(loop_eqn.invars[k])[0])
                )
            prog(a_local).append(
                RunTask(
                    name=f"memo.t{t_idx}",
                    in_refs=memo_in_refs,
                    out_refs=[
                        BufferRef(memo_uid(t_idx, j))
                        for j in range(len(pro.jaxpr.outvars))
                    ],
                    fn=memo_fns[t_idx],
                    meta={
                        "phase": "memo",
                        "stage": tasks[t_idx].stage,
                        "kind": "memo",
                        "unit": "memo",
                        "out_nbytes": [
                            v.aval.nbytes for v in pro.jaxpr.outvars
                        ],
                    },
                )
            )
            for j in range(len(pro.jaxpr.outvars)):
                memo_sent: set[int] = set()
                for consumer_t in memo_consumers.get((t_idx, j), []):
                    dst_local = task_actor[consumer_t]
                    if dst_local == a_local or dst_local in memo_sent:
                        continue
                    memo_sent.add(dst_local)
                    uid = memo_uid(t_idx, j)
                    prog(a_local).append(Send(BufferRef(uid), base + dst_local, uid))
                    prog(dst_local).append(
                        Recv(
                            BufferRef(uid), base + a_local, uid,
                            pro.jaxpr.outvars[j].aval.nbytes,
                        )
                    )

        # --- the unrolled pipeline (§4.2) ---
        # naive mode: recvs deferred to just before the consuming instance,
        # keyed by (actor, task index, microbatch)
        pending_recvs: dict[tuple[int, int, int], list[Recv]] = {}

        def out_ref(mb: int, t: int, j: int) -> BufferRef:
            return BufferRef(f"mb{mb}.t{t}.o{j}")

        def task_in_refs(task: StageTask, mb: int) -> list[BufferRef]:
            refs = []
            for atom in task.in_atoms:
                if id(atom) in memo_vars:
                    refs.append(BufferRef(memo_uid(*memo_vars[id(atom)])))
                elif id(atom) in memo_boundary:
                    refs.append(BufferRef(memo_uid(*memo_boundary[id(atom)])))
                elif id(atom) in body_invar_pos:
                    k = body_invar_pos[id(atom)]
                    if k < n_batch:
                        refs.append(BufferRef(f"mb{mb}.bin{k}"))
                    else:
                        refs.append(BufferRef(train_atom_uid(loop_eqn.invars[k])[0]))
                else:
                    src_t, src_j = producer[id(atom)]
                    refs.append(out_ref(mb, src_t, src_j))
            return refs

        backward_split = schedule.backward_split
        bwd_frac = schedule.bwd_input_fraction

        def emit_accumulates(a_local: int, t_idx: int, mb: int) -> None:
            """Gradient accumulation for the ADD body outputs of one task."""
            for pos, src in enumerate(body_out_sources):
                if src is None or src[0] != t_idx:
                    continue
                if out_ops[pos] == ADD:
                    prog(a_local).append(
                        Accumulate(
                            acc=BufferRef(f"acc.{pos}"),
                            value=out_ref(mb, t_idx, src[1]),
                            delete_value=False,
                        )
                    )

        for a_local, u in order:
            fused_last = (
                u.stage == schedule.n_stages - 1
                and split.fwd_task_of_stage[u.stage] == split.bwd_task_of_stage[u.stage]
            )
            if u.kind in (BWD, BWD_I) and fused_last:
                continue  # fused into the forward unit
            if u.kind == BWD_W:
                # Zero-bubble weight-gradient unit: the numeric payload
                # already ran with the input-gradient unit (the split is an
                # ordering/cost split, not a recomputation), so this unit
                # charges the weight-gradient share of the backward cost
                # and commits the stage's gradients into their
                # accumulators — the deferral that lets ZB-H1 fill bubbles.
                t_idx = split.bwd_task_of_stage[u.stage]
                task = tasks[t_idx]
                w_cost = 0.0 if task.kind == FUSED_KIND else task_costs[t_idx] * (1.0 - bwd_frac)
                prog(a_local).append(
                    RunTask(
                        name=f"w{u.stage}({u.mb})",
                        in_refs=[],
                        out_refs=[],
                        fn=None,  # cost-only: the payload ran with bwd_i
                        cost=w_cost,
                        meta={
                            "phase": "loop",
                            "mb": u.mb,
                            "stage": u.stage,
                            "kind": task.kind,
                            "unit": BWD_W,
                            "out_nbytes": [],
                        },
                    )
                )
                emit_accumulates(a_local, t_idx, u.mb)
                continue
            t_idx = (
                split.fwd_task_of_stage[u.stage]
                if u.kind == FWD
                else split.bwd_task_of_stage[u.stage]
            )
            task = tasks[t_idx]
            prefix = {FWD: "f", BWD: "b", BWD_I: "bi"}[u.kind]
            name = f"{prefix}{u.stage}({u.mb})"
            if task.kind == FUSED_KIND:
                name = f"f{u.stage}b{u.stage}({u.mb})"
            cost = task_costs[t_idx]
            if u.kind == BWD_I:
                cost *= bwd_frac
            run = RunTask(
                name=name,
                in_refs=task_in_refs(task, u.mb),
                out_refs=[out_ref(u.mb, t_idx, j) for j in range(len(task.out_vars))],
                fn=task_fns[t_idx],
                cost=cost,
                meta={
                    "phase": "loop",
                    "mb": u.mb,
                    "stage": u.stage,
                    "kind": task.kind,
                    "unit": u.kind,
                    "out_nbytes": [v.aval.nbytes for v in task.out_vars],
                },
            )
            if comm_strategy == "naive":
                for r in pending_recvs.pop((a_local, t_idx, u.mb), []):
                    prog(a_local).append(r)
            prog(a_local).append(run)

            # sends to cross-actor consumers, immediately after production;
            # one transfer per destination actor even when several tasks
            # there consume the value
            for j, v in enumerate(task.out_vars):
                sent_to: dict[int, int] = {}  # dst actor -> first consumer task
                for consumer_t in out_consumers.get((t_idx, j), []):
                    dst_local = task_actor[consumer_t]
                    if dst_local == a_local or dst_local in sent_to:
                        continue
                    sent_to[dst_local] = consumer_t
                for dst_local, consumer_t in sent_to.items():
                    key = f"mb{u.mb}.t{t_idx}.o{j}"
                    nbytes = v.aval.nbytes
                    prog(a_local).append(Send(out_ref(u.mb, t_idx, j), base + dst_local, key))
                    recv = Recv(out_ref(u.mb, t_idx, j), base + a_local, key, nbytes)
                    if comm_strategy == "topo":
                        prog(dst_local).append(recv)
                    else:
                        pending_recvs.setdefault((dst_local, consumer_t, u.mb), []).append(recv)
            # gradient accumulation for ADD body outputs; under a split-
            # backward schedule, backward-produced gradients are committed
            # by the weight-gradient unit instead
            if not (backward_split and task.kind in (BWD_KIND, FUSED_KIND)):
                emit_accumulates(a_local, t_idx, u.mb)

        # --- data-parallel gradient synchronisation ---
        if dp_size > 1:
            inv = np.float32(1.0 / dp_size)
            for pos, op in enumerate(out_ops):
                src = body_out_sources[pos]
                if src is None or op != ADD:
                    continue
                a_local = task_actor[src[0]]
                group = tuple(r * P + a_local for r in range(dp_size))
                prog(a_local).append(
                    AllReduce(BufferRef(f"acc.{pos}"), group, group_key=f"dp.acc.{pos}")
                )
                prog(a_local).append(
                    RunTask(
                        name=f"dpmean.acc{pos}",
                        in_refs=[BufferRef(f"acc.{pos}")],
                        out_refs=[BufferRef(f"dpm.{pos}")],
                        fn=_ScaleFn(inv),
                        meta={"phase": "dp", "out_nbytes": [body.outvars[pos].aval.nbytes]},
                    )
                )

        # --- stacked outputs (losses) ---
        for pos, op in enumerate(out_ops):
            if op != STACK:
                continue
            src = body_out_sources[pos]
            if src is None:
                continue  # constant output: materialized by the driver
            t_idx, j = src
            a_local = task_actor[t_idx]
            refs = [out_ref(i, t_idx, j) for i in range(n_mbs)]
            target = f"stack.{pos}" if dp_size == 1 else f"stack.{pos}.raw"
            prog(a_local).append(
                RunTask(
                    name=f"stack.{pos}",
                    in_refs=refs,
                    out_refs=[BufferRef(target)],
                    fn=_stack_fn,
                    meta={
                        "phase": "stack",
                        "out_nbytes": [body.outvars[pos].aval.nbytes * n_mbs],
                    },
                )
            )
            if dp_size > 1:
                inv = np.float32(1.0 / dp_size)
                group = tuple(r * P + a_local for r in range(dp_size))
                prog(a_local).append(
                    AllReduce(BufferRef(target), group, group_key=f"dp.stack.{pos}")
                )
                prog(a_local).append(
                    RunTask(
                        name=f"dpmean.stack{pos}",
                        in_refs=[BufferRef(target)],
                        out_refs=[BufferRef(f"dpm.stack.{pos}")],
                        fn=_ScaleFn(inv),
                        meta={"phase": "dp", "out_nbytes": [body.outvars[pos].aval.nbytes * n_mbs]},
                    )
                )

        # --- deferred combines from loop commuting (§3.4) ---
        for k, spec in enumerate(commute.combines):
            parts = spec.part_indices
            target_actor = task_actor[body_out_sources[parts[0]][0]]
            part_refs = []
            for pos in parts:
                a_src = task_actor[body_out_sources[pos][0]]
                uid = acc_uid(pos)
                ref = BufferRef(uid)
                if a_src != target_actor:
                    key = f"combine.{k}.part{pos}"
                    prog(a_src).append(Send(ref, base + target_actor, key))
                    prog(target_actor).append(
                        Recv(ref, base + a_src, key, body.outvars[pos].aval.nbytes)
                    )
                part_refs.append(ref)

            prog(target_actor).append(
                RunTask(
                    name=f"combine.{k}",
                    in_refs=part_refs,
                    out_refs=[BufferRef(f"combine.{k}")],
                    fn=_sum_fn,
                    meta={
                        "phase": "combine",
                        "out_nbytes": [body.outvars[parts[0]].aval.nbytes],
                    },
                )
            )

        # --- post-loop equations ---
        for i in post_idx:
            eqn = jaxpr.eqns[i]
            a_local = post_actor[i]
            in_refs = []
            for a in eqn.invars:
                if isinstance(a, Literal):
                    continue
                uid, _ = train_atom_uid(a)
                src_actor = None
                if id(a) in loop_out_uid:
                    src_actor = loop_out_uid[id(a)][1]
                elif id(a) in post_out_uid:
                    src_actor = post_actor[int(uid.split(".")[1][1:])]
                if src_actor is not None and src_actor != a_local:
                    key = f"{uid}->post.e{i}"
                    prog(src_actor).append(Send(BufferRef(uid), base + a_local, key))
                    prog(a_local).append(Recv(BufferRef(uid), base + src_actor, key, a.aval.nbytes))
                in_refs.append(BufferRef(uid))
            out_refs = [BufferRef(f"post.e{i}.o{j}") for j in range(len(eqn.outvars))]
            prog(a_local).append(
                RunTask(
                    name=f"post.{eqn.prim.name}",
                    in_refs=in_refs,
                    out_refs=out_refs,
                    fn=_make_eqn_fn(eqn),
                    meta={"phase": "post", "out_nbytes": [v.aval.nbytes for v in eqn.outvars]},
                )
            )

    # literal placements become driver placements via input_placements of a
    # pseudo-input list; return them through output of the compiler:
    # (kept in closure of the driver below)

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    output_sources: list[tuple] = []
    for atom in jaxpr.outvars:
        if isinstance(atom, Literal):
            output_sources.append(("literal", atom.value))
        elif id(atom) in invar_pos:
            output_sources.append(("input", invar_pos[id(atom)]))
        elif id(atom) in loop_out_uid:
            uid, actor = loop_out_uid[id(atom)]
            output_sources.append(("buffer", actor, uid))
        elif id(atom) in post_out_uid:
            uid = post_out_uid[id(atom)]
            output_sources.append(("buffer", post_actor[int(uid.split(".")[1][1:])], uid))
        elif id(atom) in pre_out_uid:
            uid = pre_out_uid[id(atom)]
            actor = min(needed_on.get(uid, {0}))
            output_sources.append(("buffer", actor, uid))
        else:  # pragma: no cover
            raise AssertionError("unmapped train output")

    compiled = CompiledStep(
        n_actors=n_actors,
        programs=programs,
        input_placements=input_placements,
        batch_input_indices=batch_input_indices,
        output_sources=output_sources,
        split=split,
        schedule=schedule,
        dp_size=dp_size,
        n_commuted=commute.n_commuted,
        schedule_ir=sched_ir,
        task_backend=task_backend,
        tune_report=tune_report,
        # the full variant tuple: same jaxpr at another opt level or task
        # backend must never share a worker-side program-cache entry
        program_key=f"step-{next(_PROGRAM_KEYS)}.{task_backend}.L{opt_level}",
        opt_level=opt_level,
        opt_report=opt_report,
    )
    literal_placements.extend(const_loop_outputs)
    compiled.literal_placements = literal_placements  # type: ignore[attr-defined]
    _insert_deletions(compiled, jaxpr)
    return compiled


def _insert_deletions(compiled: CompiledStep, jaxpr: Jaxpr) -> None:
    """Buffer-liveness pass (§4.3): insert a Delete after each buffer's last
    use on every actor. Driver-placed inputs and output buffers are
    protected; buffers with in-flight sends are handled by the executor's
    pending-deletions queue."""
    protected_global: set[str] = set()
    for placements in compiled.input_placements:
        for _, uid in placements:
            protected_global.add(uid)
    for _, uid, _ in getattr(compiled, "literal_placements", []):
        protected_global.add(uid)
    for src in compiled.output_sources:
        if src[0] == "buffer":
            protected_global.add(src[2])

    for actor, prog in enumerate(compiled.programs):
        defined: set[str] = set()
        last_use: dict[str, int] = {}
        for idx, instr in enumerate(prog):
            if isinstance(instr, RunTask):
                for r in instr.in_refs:
                    last_use[r.uid] = idx
                for r in instr.out_refs:
                    defined.add(r.uid)
            elif isinstance(instr, Send):
                last_use[instr.ref.uid] = idx
            elif isinstance(instr, Recv):
                defined.add(instr.ref.uid)
            elif isinstance(instr, Accumulate):
                last_use[instr.value.uid] = idx
                defined.add(instr.acc.uid)
                last_use[instr.acc.uid] = max(last_use.get(instr.acc.uid, idx), idx)
            elif isinstance(instr, AllReduce):
                last_use[instr.ref.uid] = idx

        deletions_at: dict[int, list[str]] = {}
        for uid, idx in last_use.items():
            if uid in protected_global or uid not in defined:
                continue
            deletions_at.setdefault(idx, []).append(uid)

        new_prog: list[Instruction] = []
        for idx, instr in enumerate(prog):
            new_prog.append(instr)
            for uid in deletions_at.get(idx, []):
                new_prog.append(Delete(BufferRef(uid)))
        compiled.programs[actor] = new_prog
