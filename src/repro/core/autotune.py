"""Cost-aware schedule autotuner: the gallery as a decision procedure.

The paper's flexibility claim (§2.2.1, §5.1) only pays off when the
*right* schedule is chosen for the workload: zero-bubble families trade
activation memory for bubble, circular repeat trades dispatch overhead
for finer-grained overlap, and heterogeneous stage costs (uneven layers,
embedding/head stages) shift which trade wins.  This module closes that
loop:

1. a :class:`CostModel` maps ``(stage, unit kind) -> seconds`` plus
   per-stage activation/boundary bytes.  It can be built analytically
   (:meth:`CostModel.from_kernels` prices transformer stages through
   :mod:`repro.perf.kernels`; :meth:`CostModel.from_tasks` prices traced
   stage jaxprs by FLOP count) or *measured* — :meth:`CostModel.from_result`
   replays an :class:`~repro.runtime.executor.ExecutionResult` timeline,
   averaging each ``(stage, kind)``'s observed durations, so a second
   compile tunes against what actually ran;
2. :func:`tune` prices every candidate schedule on the real event engine
   (:func:`repro.perf.pipeline_sim.price_schedule`) under the cost model,
   excludes candidates whose peak live-activation bytes exceed the
   per-rank memory budget, and returns a ranked :class:`TuneReport`;
3. the search then feeds the best run's **wait profile** back in
   (:meth:`ExecutionResult.parked_by_rank`): warmup is shifted toward the
   longest-parked ranks via :class:`~repro.core.schedules.Hybrid1F1B`
   proposals, and the engine's ready-queue ``tie_break`` policies are
   swept for scheduler-visit cost — so a second round measurably shrinks
   makespan on skewed-cost workloads with non-trivial transfer latency.

``schedule="auto"`` in :meth:`repro.core.api.RemoteMesh.distributed` /
:func:`repro.core.compile.compile_train_step` runs this tuner at compile
time and stores the report on ``CompiledStep.tune_report``.

Cost-model contract
===================

All times are **seconds of device-busy virtual time per unit** (one
microbatch through one stage chunk); bytes are plain bytes.  ``fwd[s]``
is stage ``s``'s forward; ``bwd[s]`` is the *full* backward, which split
schedules divide into ``bwd_i = bwd * bwd_input_fraction`` and ``bwd_w =
bwd * (1 - frac)`` using each schedule's own fraction.
``activation_bytes[s]`` is held from the forward until the releasing
backward retires it; ``boundary_bytes[s]`` crosses the wire once per
cross-rank consumer of stage ``s``'s output.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Sequence

from repro.core.schedules import (
    BWD,
    BWD_I,
    BWD_W,
    FWD,
    Eager1F1B,
    GPipe,
    Hybrid1F1B,
    Interleaved1F1B,
    InterleavedZB,
    LoopedBFS,
    OneFOneB,
    Schedule,
    ZBH1,
    ZBH2,
    ZBV,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.stage_split import SplitResult
    from repro.runtime.executor import ExecutionResult

__all__ = [
    "CostModel",
    "TuneEntry",
    "TuneReport",
    "default_candidates",
    "tune",
]


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Heterogeneous per-stage cost table for schedule pricing.

    Attributes:
        fwd: per-stage forward seconds (one microbatch, one stage chunk).
        bwd: per-stage *full* backward seconds (split schedules divide it
            by their ``bwd_input_fraction``).
        act_bytes: per-stage activation bytes held from the forward until
            the releasing backward (memory-budget accounting).
        boundary: per-stage output-boundary bytes (sized onto each
            cross-rank transfer when pricing on the event engine).
    """

    fwd: tuple[float, ...]
    bwd: tuple[float, ...]
    act_bytes: tuple[float, ...] = ()
    boundary: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        n = len(self.fwd)
        if len(self.bwd) != n:
            raise ValueError("fwd and bwd must cover the same stages")
        if not self.act_bytes:
            object.__setattr__(self, "act_bytes", (1.0,) * n)
        if not self.boundary:
            object.__setattr__(self, "boundary", (0.0,) * n)
        if len(self.act_bytes) != n or len(self.boundary) != n:
            raise ValueError("act_bytes/boundary must cover the same stages")

    @property
    def n_stages(self) -> int:
        """Stages this table covers."""
        return len(self.fwd)

    def unit_time(self, stage: int, kind: str, bwd_input_fraction: float = 0.5) -> float:
        """Seconds for one scheduled unit of ``kind`` at ``stage``."""
        if kind == FWD:
            return self.fwd[stage]
        if kind == BWD:
            return self.bwd[stage]
        if kind == BWD_I:
            return self.bwd[stage] * bwd_input_fraction
        if kind == BWD_W:
            return self.bwd[stage] * (1.0 - bwd_input_fraction)
        raise ValueError(f"unknown unit kind {kind!r}")

    def activation_bytes(self, stage: int) -> float:
        """Bytes one live activation of ``stage`` holds."""
        return self.act_bytes[stage]

    def boundary_bytes(self, stage: int) -> float:
        """Bytes of ``stage``'s output boundary tensor."""
        return self.boundary[stage]

    @property
    def skew(self) -> float:
        """Max/min ratio of per-stage ``fwd + bwd`` cost (1.0 = uniform)."""
        totals = [f + b for f, b in zip(self.fwd, self.bwd)]
        lo = min(totals)
        return max(totals) / lo if lo > 0 else float("inf")

    # -- constructors --------------------------------------------------------
    @classmethod
    def uniform(
        cls, n_stages: int, fwd_time: float = 1.0, bwd_time: float = 2.0
    ) -> "CostModel":
        """The textbook uniform model (every stage equal)."""
        return cls(fwd=(fwd_time,) * n_stages, bwd=(bwd_time,) * n_stages)

    @classmethod
    def from_kernels(
        cls,
        model,
        gpu,
        kernels,
        n_stages: int,
        layers_per_stage: int,
        mbs: int = 1,
        tp: int = 1,
    ) -> "CostModel":
        """Analytic transformer stage costs through the §5.1 kernel model.

        Every stage carries ``layers_per_stage`` transformer blocks; the
        last stage additionally pays the logits projection + loss (the
        "head stage" heterogeneity), making the table genuinely skewed
        for real vocab sizes.  Activation/boundary bytes come from the
        model's §2.2.1 formulas, sharded ``tp`` ways.
        """
        fwd, bwd = [], []
        for s in range(n_stages):
            f = kernels.block_time(model, gpu, layers_per_stage, mbs, tp, "fwd")
            b = kernels.block_time(model, gpu, layers_per_stage, mbs, tp, "bwd")
            if s == n_stages - 1:
                f += kernels.logits_time(model, gpu, mbs, tp, "fwd")
                b += kernels.logits_time(model, gpu, mbs, tp, "bwd")
            fwd.append(f)
            bwd.append(b)
        act = model.layer_activation_bytes(mbs) * layers_per_stage / tp
        bnd = model.boundary_bytes(mbs) / tp
        return cls(
            fwd=tuple(fwd),
            bwd=tuple(bwd),
            act_bytes=(act,) * n_stages,
            boundary=(bnd,) * n_stages,
        )

    @classmethod
    def from_tasks(cls, split: "SplitResult", cost_fn=None) -> "CostModel":
        """Stage costs from traced stage jaxprs (the ``schedule="auto"``
        compile path).

        With ``cost_fn`` given it is called per
        :class:`~repro.core.stage_split.StageTask` (the existing
        simulation-mode contract); otherwise each task is priced by a
        static FLOP estimate over its equations.  A fused
        forward+loss+backward last stage splits its estimate 1:2 between
        the forward and backward unit, matching the backward's 2x FLOPs.
        Activation/boundary bytes are the stage's forward output bytes (a
        boundary-tensor proxy).
        """
        from repro.core.stage_split import BWD_KIND, FUSED_KIND, FWD_KIND

        n_stages = split.n_stages
        fwd = [0.0] * n_stages
        bwd = [0.0] * n_stages
        bnd = [0.0] * n_stages

        def price(task) -> float:
            if cost_fn is not None:
                return float(cost_fn(task))
            return _jaxpr_flops(task.jaxpr)

        for task in split.tasks:
            c = price(task)
            if task.kind == FWD_KIND:
                fwd[task.stage] += c
                bnd[task.stage] = sum(v.aval.nbytes for v in task.out_vars)
            elif task.kind == BWD_KIND:
                bwd[task.stage] += c
            elif task.kind == FUSED_KIND:
                fwd[task.stage] += c / 3.0
                bwd[task.stage] += 2.0 * c / 3.0
                bnd[task.stage] = sum(v.aval.nbytes for v in task.out_vars)
            else:  # pragma: no cover - split invariant
                raise ValueError(f"unknown task kind {task.kind!r}")
        act = tuple(b if b > 0 else 1.0 for b in bnd)
        return cls(fwd=tuple(fwd), bwd=tuple(bwd), act_bytes=act, boundary=tuple(bnd))

    @classmethod
    def from_result(cls, result: "ExecutionResult", n_stages: int) -> "CostModel":
        """Measured stage costs replayed from an execution's timeline.

        Every ``task`` event whose ``meta`` names a pipeline unit (a
        ``stage`` and a ``unit``/``kind`` in the fwd/bwd family) votes its
        observed duration; the table holds the per-``(stage, kind)``
        means, with split backwards re-summed into full backwards
        (``bwd = mean(bwd_i) + mean(bwd_w)``).  A *fused*
        forward+loss+backward unit (the last pipeline stage of a real
        numeric run executes both directions in one task) votes its
        duration 1:2 between the stage's forward and backward — the same
        convention :meth:`from_tasks` applies, matching the backward's
        2x FLOPs.  Replay semantics: the model prices *device-busy* time
        only — parked time is deliberately excluded (it belongs to the
        schedule being searched over, not to the workload), which is what
        makes replay-then-retune sound.  Only *loop-phase* events vote:
        an optimized run's once-per-step ``memo`` prologues
        (:mod:`repro.ir.opt` hoisting) carry a ``stage`` too, but they
        run outside the per-microbatch loop, so folding them into a
        stage's fwd/bwd rate would skew every per-microbatch estimate by
        ``1/n_mbs`` of the prologue — they stay in their own
        ``(stage, "memo")`` bucket, which the pipeline model doesn't
        price.  (Simulator timelines carry no ``phase`` key and vote as
        before.)
        """
        from repro.core.stage_split import FUSED_KIND

        sums: dict[tuple[int, str], float] = {}
        counts: dict[tuple[int, str], int] = {}

        def vote(stage: int, kind: str, dur: float) -> None:
            key = (int(stage), kind)
            sums[key] = sums.get(key, 0.0) + dur
            counts[key] = counts.get(key, 0) + 1

        for e in result.timeline:
            if e.kind != "task":
                continue
            phase = e.meta.get("phase")
            if phase is not None and phase != "loop":
                continue
            kind = e.meta.get("unit", e.meta.get("kind"))
            stage = e.meta.get("stage")
            if stage is None:
                continue
            dur = e.end - e.start
            if e.meta.get("kind") == FUSED_KIND and kind == FWD:
                vote(stage, FWD, dur / 3.0)
                vote(stage, BWD, 2.0 * dur / 3.0)
            elif kind in (FWD, BWD, BWD_I, BWD_W):
                vote(stage, kind, dur)
        if not sums:
            raise ValueError(
                "timeline carries no stage-annotated task events; run with a "
                "cost model attached (simulation mode) or price analytically"
            )

        def mean(stage: int, kind: str) -> float | None:
            key = (stage, kind)
            return sums[key] / counts[key] if key in counts else None

        fwd, bwd = [], []
        for s in range(n_stages):
            f = mean(s, FWD)
            b = mean(s, BWD)
            if b is None:
                bi, bw = mean(s, BWD_I), mean(s, BWD_W)
                if bi is not None and bw is None:
                    # a bwd_i without its bwd_w half would silently price
                    # the backward at bwd * frac — refuse instead
                    raise ValueError(
                        f"stage {s} has measured bwd_i durations but no "
                        "bwd_w ones; the timeline is incomplete"
                    )
                if bi is not None and bw is not None:
                    b = bi + bw
            if f is None or b is None:
                raise ValueError(f"stage {s} has no measured fwd/bwd durations")
            fwd.append(f)
            bwd.append(b)
        return cls(fwd=tuple(fwd), bwd=tuple(bwd))


def _jaxpr_flops(jaxpr) -> float:
    """Static FLOP estimate of a stage jaxpr: matmul-shaped equations
    count ``2 * out_size * contraction``, everything else one op per
    output element — coarse, but it captures the skew (wide vs narrow,
    deep vs shallow stages) the tuner needs."""
    total = 0.0
    for eqn in jaxpr.eqns:
        out_size = sum(float(v.aval.size) for v in eqn.outvars)
        if eqn.prim.name == "matmul":
            k = eqn.invars[0].aval.shape[-1] if eqn.invars[0].aval.shape else 1
            total += 2.0 * out_size * float(k)
        else:
            total += out_size
    return total


@dataclasses.dataclass
class TuneEntry:
    """One priced candidate in a :class:`TuneReport`.

    Attributes:
        schedule: the candidate.
        makespan: event-engine pipeline makespan (``inf`` when excluded).
        peak_act_bytes: max over ranks of peak live-activation bytes.
        peak_live: max over ranks of peak live-activation count (chunks).
        feasible: priced and within the memory budget.
        reason: why an infeasible candidate was excluded.
        round: search round that proposed it (0 = gallery, 1 = refinement).
        result: the raw pricing :class:`ExecutionResult` (wait profile
            included) for feasible entries.
    """

    schedule: Schedule
    makespan: float = float("inf")
    peak_act_bytes: float = 0.0
    peak_live: int = 0
    feasible: bool = True
    reason: str = ""
    round: int = 0
    result: "ExecutionResult | None" = None

    @property
    def name(self) -> str:
        """Candidate display name."""
        return self.schedule.name


@dataclasses.dataclass
class TuneReport:
    """Ranked outcome of one :func:`tune` search.

    Attributes:
        entries: all candidates, feasible first, by ascending makespan.
        cost_model: the table everything was priced under.
        n_mbs: microbatch count the search was specialised to.
        memory_budget: per-rank activation-byte budget (``None`` = unbounded).
        rounds: search rounds run (1 = gallery only, 2 = +wait-profile
            refinement).
        tie_break_visits: scheduler instruction-visit counts per
            ready-queue policy for the winning schedule (results are
            dataflow-identical across policies; this is pure scheduler
            cost).
        tie_break: the policy with the fewest visits.
    """

    entries: list[TuneEntry]
    cost_model: CostModel
    n_mbs: int
    memory_budget: float | None = None
    rounds: int = 1
    tie_break_visits: dict[str, int] = dataclasses.field(default_factory=dict)
    tie_break: str = "fifo"

    @property
    def best(self) -> TuneEntry:
        """The winning entry."""
        for e in self.entries:
            if e.feasible:
                return e
        raise ValueError("no feasible schedule (memory budget excludes all)")

    @property
    def feasible(self) -> list[TuneEntry]:
        """Feasible entries, best first."""
        return [e for e in self.entries if e.feasible]

    def speedup_vs(self, name: str) -> float:
        """Best makespan improvement over the named candidate (e.g.
        ``report.speedup_vs("GPipe")`` -> 1.25 means 25% less makespan).

        Only feasible candidates are comparable: they carry event-engine
        makespans under identical comm costs.  A memory-excluded
        candidate's makespan is analytic (no dispatch/transfer cost), so
        comparing against it would mix pricing models — re-``tune``
        without the budget to obtain a comparable baseline."""
        for e in self.entries:
            if e.name == name:
                if not e.feasible:
                    raise ValueError(
                        f"candidate {name!r} was excluded ({e.reason or 'infeasible'}); "
                        "its analytic makespan is not comparable to "
                        "engine-priced entries — tune without the memory "
                        "budget for a baseline"
                    )
                return e.makespan / self.best.makespan
        raise KeyError(f"no priced candidate named {name!r}")


def default_candidates(
    n_actors: int, n_stages: int | None = None
) -> list[Schedule]:
    """The gallery shapes compatible with ``n_actors`` ranks and (when
    given) ``n_stages`` model stages.

    With ``n_stages == n_actors`` the one-stage-per-rank family applies;
    with ``n_stages == v * n_actors`` the circular-repeat family at that
    ``v`` (ZB-V exactly at ``v == 2``).  Candidates with microbatch-count
    constraints (e.g. interleaving's ``n_mbs % p == 0``) are excluded
    later, at pricing time, so callers may pass the full list."""
    if n_stages is None:
        n_stages = n_actors
    if n_stages % n_actors != 0:
        raise ValueError(
            f"{n_stages} stages do not divide over {n_actors} ranks"
        )
    v = n_stages // n_actors
    if v == 1:
        return [
            GPipe(n_actors),
            OneFOneB(n_actors),
            Eager1F1B(n_actors),
            ZBH1(n_actors),
            ZBH2(n_actors),
        ]
    out: list[Schedule] = [
        Interleaved1F1B(n_actors, v),
        LoopedBFS(n_actors, v),
        InterleavedZB(n_actors, v),
    ]
    if v == 2:
        out.append(ZBV(n_actors))
    return out


def _price(
    schedule: Schedule,
    n_mbs: int,
    cost_model: CostModel,
    memory_budget: float | None,
    rnd: int,
    *,
    dispatch_s: float,
    p2p_latency_s: float,
    p2p_bandwidth: float,
) -> TuneEntry:
    """Validate, memory-check, and event-engine-price one candidate."""
    from repro.perf.pipeline_sim import price_schedule

    try:
        ir = schedule.lower(n_mbs).validate()
    except ValueError as e:
        return TuneEntry(schedule, feasible=False, reason=str(e), round=rnd)
    stats = ir.stats(cost_model=cost_model)
    peak_bytes = max(stats["peak_activation_bytes"])
    peak_live = max(stats["peak_live_activations"])
    if memory_budget is not None and peak_bytes > memory_budget:
        return TuneEntry(
            schedule,
            makespan=stats["makespan"],
            peak_act_bytes=peak_bytes,
            peak_live=peak_live,
            feasible=False,
            reason=(
                f"peak activation bytes {peak_bytes:.3g} over the per-rank "
                f"budget {memory_budget:.3g}"
            ),
            round=rnd,
        )
    res = price_schedule(
        schedule,
        n_mbs,
        cost_model,
        dispatch_s=dispatch_s,
        p2p_latency_s=p2p_latency_s,
        p2p_bandwidth=p2p_bandwidth,
    )
    return TuneEntry(
        schedule,
        makespan=res.makespan,
        peak_act_bytes=peak_bytes,
        peak_live=peak_live,
        round=rnd,
        result=res,
    )


def _warmup_proposals(
    entries: list[TuneEntry], n_mbs: int, cost_model: CostModel
) -> list[Schedule]:
    """Wait-profile-driven refinement candidates: shift 1F1B-family
    warmup toward the ranks the winning run shows parked longest.

    A rank parked on a recv is starved by its *upstream* — extra warmup
    upstream posts its sends ahead, hiding the transfer latency the park
    is made of.  So proposals add warmup strictly upstream of the
    longest-parked rank, on top of both the 1F1B (``p - 1 - r``) and the
    eager (``2(p - 1 - r)``) base vectors.  Only meaningful for
    one-stage-per-rank shapes (the warmup vector is the 1F1B family's
    only degree of freedom); vectors are capped at ``n_mbs``, repaired to
    the rank-wise non-increasing feasibility shape, and deduplicated
    against candidates already priced.
    """
    best = next((e for e in entries if e.feasible), None)
    if best is None or best.result is None:
        return []
    sched = best.schedule
    p = sched.n_actors
    if sched.n_stages != p:
        return []
    parked = best.result.parked_by_rank()
    base = [p - 1 - r for r in range(p)]
    eager = [2 * (p - 1 - r) for r in range(p)]

    def vector_of(s: Schedule) -> tuple[int, ...] | None:
        if isinstance(s, Hybrid1F1B):
            return tuple(min(w, n_mbs) for w in s.warmup)
        if isinstance(s, Eager1F1B):
            return tuple(min(w, n_mbs) for w in eager)
        if isinstance(s, OneFOneB):
            return tuple(min(w, n_mbs) for w in base)
        return None

    seen = {v for v in (vector_of(e.schedule) for e in entries) if v is not None}
    out: list[Schedule] = []

    def propose(warmup: Sequence[int]) -> None:
        w = [min(max(x, 0), n_mbs) for x in warmup]
        # repair to rank-wise non-increasing (a downstream rank warming up
        # more than its upstream would deadlock): lift upstream to match
        for r in reversed(range(p - 1)):
            w[r] = max(w[r], w[r + 1])
        wt = tuple(w)
        if wt not in seen:
            seen.add(wt)
            out.append(Hybrid1F1B(p, wt))

    longest = max(range(p), key=lambda r: parked[r])
    propose(eager)
    for vec in (base, eager):
        for delta in (1, 2):
            propose([vec[r] + (delta if r < max(longest, 1) else 0) for r in range(p)])
    # a uniform +1 tilt (every rank posts one extra send ahead)
    propose([w + 1 for w in base])
    return out


def tune(
    cost_model: CostModel,
    n_actors: int,
    n_mbs: int,
    *,
    candidates: Sequence[Schedule] | None = None,
    memory_budget: float | None = None,
    rounds: int = 2,
    dispatch_s: float = 0.0,
    p2p_latency_s: float = 0.0,
    p2p_bandwidth: float = float("inf"),
) -> TuneReport:
    """Search the schedule gallery for the cost model's best schedule.

    Round 0 prices every candidate (default: the compatible gallery
    shapes for ``cost_model.n_stages`` over ``n_actors`` ranks) on the
    event engine, excluding any whose peak live-activation bytes exceed
    ``memory_budget`` per rank.  With ``rounds >= 2``, the winner's wait
    profile seeds a refinement round — :class:`Hybrid1F1B` warmup vectors
    shifted toward the longest-parked ranks — and the winner's ready-queue
    ``tie_break`` policies are swept for scheduler-visit cost.

    Returns the ranked :class:`TuneReport`; ``report.best.schedule`` is
    what ``schedule="auto"`` compiles against.
    """
    if candidates is None:
        candidates = default_candidates(n_actors, cost_model.n_stages)
    price_kw = dict(
        dispatch_s=dispatch_s,
        p2p_latency_s=p2p_latency_s,
        p2p_bandwidth=p2p_bandwidth,
    )
    entries = [
        _price(s, n_mbs, cost_model, memory_budget, 0, **price_kw)
        for s in candidates
    ]

    def rank(es: list[TuneEntry]) -> list[TuneEntry]:
        # exact-makespan ties go to the candidate holding fewer
        # activation bytes (equal speed at less memory wins)
        return sorted(
            es,
            key=lambda e: (not e.feasible, e.makespan, e.peak_act_bytes, e.name),
        )

    entries = rank(entries)
    done_rounds = 1
    if rounds >= 2 and entries and entries[0].feasible:
        proposals = _warmup_proposals(entries, n_mbs, cost_model)
        entries = rank(
            entries
            + [
                _price(s, n_mbs, cost_model, memory_budget, 1, **price_kw)
                for s in proposals
            ]
        )
        done_rounds = 2

    report = TuneReport(
        entries=entries,
        cost_model=cost_model,
        n_mbs=n_mbs,
        memory_budget=memory_budget,
        rounds=done_rounds,
    )
    if entries and entries[0].feasible:
        from repro.perf.pipeline_sim import price_schedule
        from repro.runtime.executor import TIE_BREAKS

        best = entries[0]
        visits = {}
        for policy in TIE_BREAKS:
            if policy == "fifo" and best.result is not None:
                # every _price run uses the executor's default fifo
                # policy, so the winner's own result already carries it
                visits[policy] = best.result.visits
                continue
            res = price_schedule(
                best.schedule, n_mbs, cost_model, tie_break=policy, **price_kw
            )
            visits[policy] = res.visits
        report.tie_break_visits = visits
        report.tie_break = min(visits, key=lambda k: (visits[k], k))
    return report
