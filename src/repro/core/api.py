"""Driver-facing API: ``RemoteMesh`` and ``distributed`` (Figure 4, §4.1).

The user experience the paper promises::

    mesh = RemoteMesh((2,), spmd_mesh=(("model", 2),), rules={...})
    step_fn = mesh.distributed(train_step)
    for batch in dataset:
        state, loss = step_fn(state, batch)

``distributed`` traces ``train_step`` on first call (shapes are cached),
compiles it with :func:`repro.core.compile.compile_train_step`, and drives
the single-controller MPMD runtime: place inputs on their inferred actors,
dispatch one fused program per actor, fetch the outputs. Subsequent calls
with the same shapes reuse the compiled step — the paper's "single RPC per
actor per step".
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.compile import CompiledStep, compile_train_step
from repro.core.schedules import Schedule
from repro.ir import trace as ir_trace
from repro.ir.avals import abstractify
from repro.ir.pytree import tree_flatten, tree_unflatten
from repro.runtime.clock import CostModel
from repro.runtime.executor import CommMode, ExecutionResult, MpmdExecutor
from repro.runtime.instructions import BufferRef

__all__ = ["RemoteMesh", "StepFunction"]


class RemoteMesh:
    """A cluster of SPMD actors for MPMD pipeline execution (§4.1).

    Args:
        shape: ``(n_pipeline_actors,)`` or ``(dp, n_pipeline_actors)`` —
            the low-bandwidth mesh over which pipeline (and optionally
            data) parallelism run.
        spmd_mesh: optional inner mesh axes, e.g. ``(("model", 4),)`` — the
            high-bandwidth mesh each actor's tasks are SPMD-partitioned
            over.
        rules: logical-axis -> mesh-axis mapping for the inner mesh.
        cost_model: optional :class:`~repro.runtime.clock.CostModel`; with
            one attached, step functions also produce a virtual-time
            timeline (``step_fn.last_result``).
        comm_mode: point-to-point semantics (ASYNC = JaxPP's overlapped
            sends/recvs; SYNC = the blocking baseline).
        engine: runtime backend — ``"event"`` (default, in-process
            event engine), ``"roundrobin"`` (polling reference,
            differential testing), or ``"mp"`` (process-per-rank: every
            actor is a real OS process executing its program on real
            wall-clock time; see :mod:`repro.runtime.mp`).
        tie_break: event-engine ready-queue ordering for actors runnable
            at the same virtual time (``"fifo"`` / ``"depth_first"`` /
            ``"rank"``); results are identical under every policy.
        mp_watchdog_s: ``engine="mp"`` only — seconds of no worker
            progress before the driver reports a deadlock.
        mp_shm_threshold: ``engine="mp"`` only — ndarray bytes at which
            transfers switch to shared-memory segments.
        mp_persistent: ``engine="mp"`` only — keep one warm
            :class:`~repro.runtime.pool.ActorPool` per mesh (default):
            processes spawn once, programs ship once, and every step
            submission reuses them.  ``False`` restores the one-shot
            spawn-per-step driver (cold-start measurement, debugging).
        mp_max_inflight: ``engine="mp"`` only — the persistent pool's
            bound on outstanding submissions (backpressure).
        recovery: optional :class:`~repro.runtime.recovery.RecoveryPolicy`.
            With one set, ``distributed`` returns a
            :class:`~repro.runtime.recovery.ResilientStepFunction`:
            training steps snapshot program-owned state periodically and
            survive worker death by respawn + restore + bounded replay,
            degrading to the usual fail-fast once the policy's budgets
            are exhausted.
        fault_plan: optional :class:`~repro.runtime.faults.FaultPlan` —
            deterministic chaos injected into ``engine="mp"`` pool
            workers (kill / wedge / drop / delay / corrupt-checkpoint),
            gated on the pool generation so a fault fires exactly once
            even across respawns.  Testing hook; ``None`` costs nothing.
        codegen_actor: whole-actor loop fusion (the companion of
            ``task_backend="codegen"``, which fuses *within* a task).
            In-process engines: the per-actor instruction streams are
            merged into ONE exec-compiled driver per compiled step —
            send/recv pairs become local rebinds, so steady-state
            dispatch is O(task calls), not O(instructions).  The fused
            driver produces bit-identical values but no virtual-time
            timeline or wait profile (``step_fn.last_result`` carries a
            synthetic summary with ``engine="fused"``), so the flag
            refuses to combine with a ``cost_model``.  ``engine="mp"``:
            each worker regenerates a fused straight-line driver from
            its shipped program (cached per ship; the pickle-clean
            contract is unchanged) — timelines are real wall-clock and
            fully preserved there.
    """

    def __init__(
        self,
        shape: Sequence[int],
        spmd_mesh: Sequence[tuple[str, int]] | None = None,
        rules: Mapping[str, str | None] | None = None,
        cost_model: CostModel | None = None,
        comm_mode: CommMode = CommMode.ASYNC,
        engine: str = "event",
        tie_break: str = "fifo",
        mp_watchdog_s: float | None = None,
        mp_shm_threshold: int | None = None,
        mp_persistent: bool = True,
        mp_max_inflight: int = 4,
        codegen_actor: bool = False,
        recovery: Any = None,
        fault_plan: Any = None,
    ):
        shape = tuple(int(s) for s in shape)
        if len(shape) == 1:
            self.dp_size, self.n_pipeline_actors = 1, shape[0]
        elif len(shape) == 2:
            self.dp_size, self.n_pipeline_actors = shape
        else:
            raise ValueError(f"RemoteMesh shape must be (p,) or (dp, p), got {shape}")
        self.spmd_mesh = tuple(spmd_mesh) if spmd_mesh else None
        self.rules = dict(rules) if rules else {}
        from repro.runtime.executor import ENGINES, TIE_BREAKS

        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if tie_break not in TIE_BREAKS:
            raise ValueError(
                f"unknown tie_break {tie_break!r}; expected one of {TIE_BREAKS}"
            )
        if engine == "mp" and cost_model is not None:
            raise ValueError(
                "engine='mp' measures real wall-clock time; virtual cost "
                "models only apply to the in-process engines"
            )
        if codegen_actor and cost_model is not None:
            raise ValueError(
                "codegen_actor=True fuses away the per-instruction loop, so "
                "no virtual-time timeline is produced; drop the cost_model "
                "or the fusion flag"
            )
        self.codegen_actor = bool(codegen_actor)
        self.cost_model = cost_model
        self.comm_mode = comm_mode
        self.engine = engine
        self.tie_break = tie_break
        self.mp_watchdog_s = mp_watchdog_s
        self.mp_shm_threshold = mp_shm_threshold
        self.mp_persistent = bool(mp_persistent)
        self.mp_max_inflight = int(mp_max_inflight)
        self.recovery = recovery
        self.fault_plan = fault_plan
        self._mp_pool = None
        # 0-based count of pools this mesh has spawned; fault plans fire
        # only in the generation they name, so an injected failure does
        # not recur in the respawned pool that replays the step
        self._pool_generation = 0

    def _acquire_mp_pool(self, n_actors: int):
        """The mesh's warm :class:`~repro.runtime.pool.ActorPool`, spawned
        lazily on first use and respawned transparently after a failure
        (worker crash, deadlock) or an actor-count change."""
        from repro.runtime.pool import ActorPool

        pool = self._mp_pool
        if pool is not None and (not pool.alive() or pool.n_actors != n_actors):
            # alive() checks worker liveness too: a silently-killed worker
            # is grounds for a respawn even before the pool's own driver
            # thread has noticed and marked the pool failed
            pool.shutdown()
            pool = self._mp_pool = None
        if pool is None:
            pool = self._mp_pool = ActorPool(
                n_actors,
                comm_mode=self.comm_mode,
                watchdog_s=self.mp_watchdog_s,
                shm_threshold=self.mp_shm_threshold,
                max_inflight=self.mp_max_inflight,
                fault_plan=self.fault_plan,
                generation=self._pool_generation,
            )
            self._pool_generation += 1
        return pool

    def close(self) -> None:
        """Shut down the mesh's persistent actor pool (if one is warm).

        Idempotent; the mesh stays usable — the next ``engine="mp"`` step
        simply spawns a fresh pool.  An unclosed mesh cleans up via GC
        (the pool holds no reference back to the mesh)."""
        pool = self._mp_pool
        self._mp_pool = None
        if pool is not None:
            pool.shutdown()

    @property
    def n_actors(self) -> int:
        """Total actor count across data-parallel replicas."""
        return self.dp_size * self.n_pipeline_actors

    def distributed(
        self,
        train_step: Callable[..., Any],
        schedule: Schedule | str | None = None,
        comm_strategy: str = "topo",
        cost_fn: Callable[..., float] | None = None,
        task_backend: str = "linear",
        memory_budget: float | None = None,
        optimize: bool | int = True,
    ) -> "StepFunction":
        """Wrap ``train_step`` for MPMD execution on this mesh.

        The schedule normally comes from the ``accumulate_grads`` call
        inside ``train_step``; passing one here overrides it.  Passing
        ``schedule="auto"`` runs the cost-aware autotuner at first-call
        compile time: per-stage costs are estimated from the traced stage
        jaxprs (or ``cost_fn``), every gallery schedule compatible with
        this mesh's pipeline width is priced, candidates over the
        per-rank ``memory_budget`` (activation bytes) are excluded, and
        the winner is compiled — the ranked
        :class:`~repro.core.autotune.TuneReport` is available afterwards
        as ``step_fn.compiled.tune_report``.
        ``task_backend`` picks the stage-task payload: ``"linear"``
        (default; jaxprs compile once into slot-indexed
        :class:`~repro.ir.linearize.LinearProgram` s), ``"codegen"``
        (each jaxpr is emitted as straight-line Python source and
        exec-compiled once — :class:`~repro.ir.codegen.CodegenProgram`;
        bit-identical to ``"linear"``, fastest steady state, pairs with
        the mesh's ``codegen_actor`` whole-actor fusion), or
        ``"interpret"`` (the tree-walking reference, for differential
        testing).
        ``optimize`` sets the algebraic-optimizer level applied to the
        stage jaxprs before lowering (:mod:`repro.ir.opt`): ``True``
        (default) runs the exact level-1 pipeline — CSE, identity
        elision, cross-boundary DCE, cross-microbatch memoization —
        guaranteed bit-identical to ``False``; ``2`` additionally
        reassociates matmul/transpose chains priced by
        :mod:`repro.perf.kernels` (value-changing in floats).  The
        per-stage rewrite report is available afterwards as
        ``step_fn.compiled.opt_report``.
        """
        if isinstance(schedule, str) and schedule != "auto":
            raise ValueError(
                f"unknown schedule {schedule!r}; pass a Schedule or 'auto'"
            )
        fn = StepFunction(
            self, train_step, schedule, comm_strategy, cost_fn, task_backend,
            memory_budget, optimize,
        )
        if self.recovery is not None:
            from repro.runtime.recovery import ResilientStepFunction

            return ResilientStepFunction(fn, self.recovery)
        return fn


class StepFunction:
    """Compiled-on-first-call distributed step function.

    Attributes:
        last_result: the :class:`ExecutionResult` (timeline, makespan, P2P
            stats) of the most recent call.
        compiled: the underlying :class:`CompiledStep` after first call.
    """

    def __init__(
        self,
        mesh: RemoteMesh,
        train_step: Callable[..., Any],
        schedule: Schedule | str | None,
        comm_strategy: str,
        cost_fn: Callable[..., float] | None,
        task_backend: str = "linear",
        memory_budget: float | None = None,
        optimize: bool | int = True,
    ):
        self.mesh = mesh
        self.train_step = train_step
        self.schedule = schedule
        self.comm_strategy = comm_strategy
        self.cost_fn = cost_fn
        self.task_backend = task_backend
        self.memory_budget = memory_budget
        self.optimize = optimize
        self.compiled: CompiledStep | None = None
        self.last_result: ExecutionResult | None = None
        self._out_tree = None
        self._shape_key = None
        self._fused = None  # (compiled, MeshDriver, out_keys) cache
        self._executor = None

    # -- compilation -----------------------------------------------------------
    def _compile(self, args: tuple) -> None:
        from repro.core.compile import find_batch_inputs

        jaxpr, _, out_tree = ir_trace(self.train_step, *args)
        dp = self.mesh.dp_size
        if dp > 1:
            # Data parallelism shards the per-microbatch batch dimension, so
            # each replica's program must be traced at the *sharded* shape
            # (static shape parameters are baked in at trace time, exactly
            # like XLA). Re-trace with batch leaves pre-split.
            batch_idx = find_batch_inputs(jaxpr)
            flat, in_tree = tree_flatten(args)
            for k in batch_idx:
                leaf = np.asarray(flat[k])
                if leaf.ndim < 2 or leaf.shape[1] % dp != 0:
                    raise ValueError(
                        f"batch leaf of shape {leaf.shape} cannot be split "
                        f"{dp} ways along the microbatch-size axis"
                    )
                flat[k] = np.ascontiguousarray(leaf[:, : leaf.shape[1] // dp])
            sharded_args = tree_unflatten(in_tree, flat)
            jaxpr, _, out_tree = ir_trace(self.train_step, *sharded_args)
        spmd_config = (
            (self.mesh.spmd_mesh, self.mesh.rules) if self.mesh.spmd_mesh else None
        )
        self.compiled = compile_train_step(
            jaxpr,
            self.schedule,
            dp_size=dp,
            comm_strategy=self.comm_strategy,
            spmd_config=spmd_config,
            cost_fn=self.cost_fn,
            task_backend=self.task_backend,
            n_actors=self.mesh.n_pipeline_actors,
            memory_budget=self.memory_budget,
            optimize=self.optimize,
        )
        self._out_tree = out_tree

    # -- execution ---------------------------------------------------------------
    def __call__(self, *args: Any) -> Any:
        flat, in_tree = tree_flatten(args)
        shape_key = tuple(repr(abstractify(x)) for x in flat)
        if self.compiled is None or shape_key != self._shape_key:
            self._compile(args)
            self._shape_key = shape_key
        compiled = self.compiled
        assert compiled is not None

        if self.mesh.codegen_actor and self.mesh.engine != "mp":
            return self._call_fused(compiled, flat)

        mp_pool = None
        if self.mesh.engine == "mp" and self.mesh.mp_persistent:
            mp_pool = self.mesh._acquire_mp_pool(compiled.n_actors)
        executor = MpmdExecutor(
            compiled.n_actors,
            cost_model=self.mesh.cost_model,
            comm_mode=self.mesh.comm_mode,
            engine=self.mesh.engine,
            tie_break=self.mesh.tie_break,
            mp_watchdog_s=self.mesh.mp_watchdog_s,
            mp_shm_threshold=self.mesh.mp_shm_threshold,
            mp_pool=mp_pool,
            mp_program_key=compiled.program_key,
            mp_codegen_actor=self.mesh.codegen_actor,
        )

        P = self.mesh.n_pipeline_actors
        dp = compiled.dp_size
        for k, placements in enumerate(compiled.input_placements):
            if not placements:
                continue
            value = np.asarray(flat[k])
            nbytes = abstractify(flat[k]).nbytes
            shards: list[np.ndarray] | None = None
            if dp > 1 and k in compiled.batch_input_indices:
                if value.shape[1] % dp != 0:
                    raise ValueError(
                        f"microbatch size {value.shape[1]} not divisible by dp={dp}"
                    )
                shards = np.split(value, dp, axis=1)
            for replica in range(dp):
                v = shards[replica] if shards is not None else value
                nb = nbytes // dp if shards is not None else nbytes
                for actor, uid in placements:
                    executor.place(replica * P + actor, BufferRef(uid), v, nb, pinned=True)
        for actor, uid, lit in getattr(compiled, "literal_placements", []):
            for replica in range(dp):
                executor.place(
                    replica * P + actor, BufferRef(uid), np.asarray(lit.value),
                    lit.aval.nbytes, pinned=True,
                )

        # seed the event engine's ready-queue from the schedule IR: ranks
        # whose first slot is dependency-free are polled first (replicated
        # across data-parallel groups)
        wake_order = None
        if compiled.schedule_ir is not None:
            ranks = compiled.schedule_ir.initial_ready_ranks()
            wake_order = [
                replica * P + rank for replica in range(dp) for rank in ranks
            ]
        self.last_result = executor.execute(compiled.programs, wake_order=wake_order)
        self._executor = executor

        outs = []
        for src in compiled.output_sources:
            if src[0] == "literal":
                outs.append(src[1])
            elif src[0] == "input":
                outs.append(flat[src[1]])
            else:
                _, actor, uid = src
                outs.append(executor.fetch(actor, BufferRef(uid)))
        return tree_unflatten(self._out_tree, outs)

    def _call_fused(self, compiled: CompiledStep, flat: list) -> Any:
        """``codegen_actor=True`` in-process fast path: run the whole mesh's
        step through one exec-compiled driver (:mod:`repro.runtime.actorgen`),
        skipping the instruction-level engine entirely."""
        import time

        from repro.runtime.actorgen import fuse_mesh

        P = self.mesh.n_pipeline_actors
        dp = compiled.dp_size
        cached = self._fused
        if cached is None or cached[0] is not compiled:
            initial = []
            for placements in compiled.input_placements:
                for actor, uid in placements:
                    for replica in range(dp):
                        initial.append((replica * P + actor, uid))
            for actor, uid, _lit in getattr(compiled, "literal_placements", []):
                for replica in range(dp):
                    initial.append((replica * P + actor, uid))
            out_keys = [
                (src[1], src[2])
                for src in compiled.output_sources
                if src[0] == "buffer"
            ]
            driver = fuse_mesh(compiled.programs, out_keys, initial)
            cached = self._fused = (compiled, driver, out_keys)
        _, driver, out_keys = cached

        placed: dict[tuple[int, str], Any] = {}
        for k, placements in enumerate(compiled.input_placements):
            if not placements:
                continue
            value = np.asarray(flat[k])
            shards: list[np.ndarray] | None = None
            if dp > 1 and k in compiled.batch_input_indices:
                if value.shape[1] % dp != 0:
                    raise ValueError(
                        f"microbatch size {value.shape[1]} not divisible by dp={dp}"
                    )
                shards = np.split(value, dp, axis=1)
            for replica in range(dp):
                v = shards[replica] if shards is not None else value
                for actor, uid in placements:
                    placed[(replica * P + actor, uid)] = v
        for actor, uid, lit in getattr(compiled, "literal_placements", []):
            v = np.asarray(lit.value)
            for replica in range(dp):
                placed[(replica * P + actor, uid)] = v

        t0 = time.perf_counter()
        fetched = driver(placed)
        wall = time.perf_counter() - t0
        # synthetic summary: the fused driver trades the virtual-time
        # timeline for dispatch — makespan here is real wall-clock
        self.last_result = ExecutionResult(
            makespan=wall,
            timeline=[],
            actor_finish=[wall] * compiled.n_actors,
            p2p_bytes=driver.p2p_bytes,
            p2p_count=driver.p2p_count,
            engine="fused",
            visits=driver.n_instructions,
            repolls=0,
        )
        self._executor = None

        outs = []
        it = iter(fetched)
        for src in compiled.output_sources:
            if src[0] == "literal":
                outs.append(src[1])
            elif src[0] == "input":
                outs.append(flat[src[1]])
            else:
                outs.append(next(it))
        return tree_unflatten(self._out_tree, outs)

    # -- diagnostics ------------------------------------------------------------
    @property
    def peak_bytes_per_actor(self) -> list[int]:
        """Peak object-store occupancy of the last call, per actor."""
        if self.last_result is None:
            raise RuntimeError("call the step function first")
        if self._executor is None:
            raise RuntimeError(
                "codegen_actor=True skips the object stores; peak-memory "
                "accounting needs an unfused run"
            )
        return [s.peak_bytes for s in self._executor.stores]

    def __repr__(self) -> str:
        status = "compiled" if self.compiled is not None else "uncompiled"
        return f"StepFunction({self.train_step.__name__}, {status})"
