"""First-class schedule IR: one dependency-explicit table per schedule.

A :class:`Schedule` answers *what runs where, in which per-rank order*;
this module lowers that answer — once — into a :class:`ScheduleIR` that
every consumer walks instead of re-deriving unit dependencies:

- the **compiler** (:mod:`repro.core.compile`) emits instructions in the
  IR's global topological order;
- the **runtime** (:mod:`repro.runtime.executor`) seeds its event-engine
  ready-queue from :meth:`ScheduleIR.initial_ready_ranks`;
- the **performance simulator** (:mod:`repro.perf.pipeline_sim`) costs the
  IR's slots and materialises sends/recvs from its cross-rank edges;
- the **visualiser** (:mod:`repro.viz.ascii`) draws the slot table;
- **validation** (:func:`repro.core.schedules.validate_schedule`) is a
  graph check over the same table: completeness, placement, edge
  resolution, acyclicity/executability, and per-rank memory bounds.

The Slot/edge model
===================

One *slot* is one scheduled unit pinned to a position in a rank's program:
``Slot(rank, index, unit, acquires, releases)``.  ``acquires``/``releases``
are resource annotations counting activation buffers: a forward acquires
one, a (monolithic or weight-gradient) backward releases one, so a running
sum of ``acquires - releases`` along any execution order is the rank's
live-activation count.

Edges connect producing slots to consuming slots and come in two flavours:

- *intra-rank* — producer and consumer sit on the same rank; program order
  plus the local object store satisfy them with no communication;
- *cross-rank* — producer and consumer sit on different ranks; each one is
  a send/recv pair at runtime.

For ``OneFOneB(2)`` with two microbatches the table looks like::

    rank 0:  f0(0) ───► f0(1)      b0(0)        b0(1)
               │intra     │intra   ▲              ▲
               ▼cross     ▼cross   │cross         │cross
    rank 1:  f1(0) ───► b1(0) ──► f1(1) ───►    b1(1)

    slot     = one cell (a Unit at a rank/index)
    intra    = same-row arrow (program order / local buffer)
    cross    = between-row arrow (a send/recv pair)

``f0(1)``'s only dependency edge is intra-rank program order; ``b0(0)``
has a cross-rank edge from ``b1(0)`` (the gradient coming back up), which
is exactly the transfer the compiler emits and the simulator prices.

Dependency *structure* (which units feed which) is fixed by unit kinds —
:func:`iter_unit_deps` is the single encoding of it, and this module is
its only home; everything downstream sees resolved slot-to-slot edges.

Costing
=======

:meth:`ScheduleIR.stats` executes the IR analytically.  By default every
stage costs the same (``fwd_time``/``bwd_time``, the closed-form bubble
assumption); passing a cost model — ``unit_time(stage, kind,
bwd_input_fraction) -> seconds`` plus ``activation_bytes(stage)``,
canonically :class:`repro.core.autotune.CostModel` — prices
heterogeneous stages (uneven layers, embedding/head stages,
circular-repeat chunks) and reports peak live-activation *bytes* per
rank alongside the counts, which is what the autotuner's memory budget
is checked against.  Event-engine pricing of the same IR (with
communication) lives in :func:`repro.perf.pipeline_sim.price_schedule`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator

from repro.core.schedules import BWD, BWD_I, BWD_W, FWD, Unit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schedules import Schedule

__all__ = [
    "Slot",
    "ScheduleIR",
    "lower_schedule",
    "iter_unit_deps",
]


def iter_unit_deps(unit: Unit, n_stages: int) -> Iterator[Unit]:
    """Units that must complete before ``unit`` may run.

    Encodes both the monolithic-backward dependency structure and the
    zero-bubble split one (a unit's kind determines which applies — a
    schedule's units are homogeneous in this respect).  This is the single
    source of dependency structure; consumers walk the resolved edges of a
    :class:`ScheduleIR` instead of calling this directly.
    """
    if unit.kind == FWD:
        if unit.stage > 0:
            yield Unit(unit.mb, unit.stage - 1, FWD)
    elif unit.kind == BWD:
        yield Unit(unit.mb, unit.stage, FWD)
        if unit.stage < n_stages - 1:
            yield Unit(unit.mb, unit.stage + 1, BWD)
    elif unit.kind == BWD_I:
        yield Unit(unit.mb, unit.stage, FWD)
        if unit.stage < n_stages - 1:
            yield Unit(unit.mb, unit.stage + 1, BWD_I)
    elif unit.kind == BWD_W:
        yield Unit(unit.mb, unit.stage, BWD_I)
    else:
        raise ValueError(f"unknown unit kind {unit.kind!r}")


@dataclasses.dataclass(frozen=True)
class Slot:
    """One scheduled unit at a fixed position in a rank's program.

    Attributes:
        rank: the actor executing this slot.
        index: position in the rank's program order.
        unit: the scheduled work item.
        acquires: activation buffers acquired when this slot runs (1 for a
            forward, else 0).
        releases: activation buffers released when this slot retires (1
            for a monolithic or weight-gradient backward, else 0).
    """

    rank: int
    index: int
    unit: Unit
    acquires: int
    releases: int

    @property
    def key(self) -> tuple[int, int, str]:
        """The unit identity ``(mb, stage, kind)``."""
        u = self.unit
        return (u.mb, u.stage, u.kind)

    def __repr__(self) -> str:
        return f"Slot(r{self.rank}[{self.index}] {self.unit!r})"


class ScheduleIR:
    """Dependency-explicit lowering of a schedule for ``n_mbs`` microbatches.

    Construction (via :func:`lower_schedule` / ``Schedule.lower``) checks
    the *table* properties — every unit scheduled exactly once, on the
    stage's owning actor, with only the kinds the schedule's backward mode
    allows, and every dependency edge resolving to a scheduled slot.
    :meth:`validate` additionally checks the *graph* properties —
    executability (acyclicity of data + program-order edges, via the
    greedy topological walk) and the per-rank activation-memory bound.

    Attributes:
        schedule: the schedule this IR was lowered from.
        n_mbs: microbatch count the lowering is specialised to.
        n_stages / n_ranks: copied from the schedule.
        slots: per-rank ordered slot lists (the schedule table).
    """

    def __init__(self, schedule: "Schedule", n_mbs: int):
        self.schedule = schedule
        self.n_mbs = n_mbs
        self.n_stages = schedule.n_stages
        self.n_ranks = schedule.n_actors

        per_actor = schedule.units(n_mbs)
        if len(per_actor) != schedule.n_actors:
            raise ValueError("schedule emitted wrong number of actor lists")

        kinds = (FWD, BWD_I, BWD_W) if schedule.backward_split else (FWD, BWD)
        expected = {
            (mb, s, k)
            for mb in range(n_mbs)
            for s in range(schedule.n_stages)
            for k in kinds
        }

        self.slots: list[list[Slot]] = []
        self._slot_of: dict[tuple[int, int, str], Slot] = {}
        for rank, seq in enumerate(per_actor):
            row: list[Slot] = []
            for index, u in enumerate(seq):
                if u.kind not in kinds:
                    raise ValueError(
                        f"unit {u} has kind {u.kind!r}, but this "
                        f"{'split' if schedule.backward_split else 'monolithic'}"
                        f"-backward schedule may only emit {kinds}"
                    )
                key = (u.mb, u.stage, u.kind)
                if key in self._slot_of:
                    raise ValueError(f"unit {u} scheduled twice")
                if schedule.actor_of_stage(u.stage) != rank:
                    raise ValueError(
                        f"unit {u} scheduled on actor {rank}, but stage "
                        f"{u.stage} belongs to actor {schedule.actor_of_stage(u.stage)}"
                    )
                slot = Slot(
                    rank=rank,
                    index=index,
                    unit=u,
                    acquires=1 if u.kind == FWD else 0,
                    releases=1 if u.kind in (BWD, BWD_W) else 0,
                )
                row.append(slot)
                self._slot_of[key] = slot
            self.slots.append(row)

        if set(self._slot_of) != expected:
            missing = sorted(expected - set(self._slot_of))[:5]
            raise ValueError(f"schedule incomplete; missing units like {missing}")

        # resolve dependency edges slot-to-slot (edge completeness: every
        # dep of a scheduled unit must itself be scheduled — guaranteed by
        # the completeness check above, asserted here for clarity)
        self._deps: dict[tuple[int, int], tuple[Slot, ...]] = {}
        self._consumers: dict[tuple[int, int], list[Slot]] = {}
        for row in self.slots:
            for slot in row:
                deps = []
                for d in iter_unit_deps(slot.unit, self.n_stages):
                    dep_slot = self._slot_of.get((d.mb, d.stage, d.kind))
                    if dep_slot is None:  # pragma: no cover - completeness above
                        raise ValueError(
                            f"unit {slot.unit} depends on unscheduled unit {d}"
                        )
                    deps.append(dep_slot)
                    self._consumers.setdefault(
                        (dep_slot.rank, dep_slot.index), []
                    ).append(slot)
                self._deps[(slot.rank, slot.index)] = tuple(deps)

        self._topo: list[Slot] | None = None

    # -- table lookups -------------------------------------------------------
    def slot_of(self, unit: Unit) -> Slot:
        """The slot scheduling ``unit``."""
        return self._slot_of[(unit.mb, unit.stage, unit.kind)]

    def deps(self, slot: Slot) -> tuple[Slot, ...]:
        """Data-dependency edges into ``slot`` (producing slots)."""
        return self._deps[(slot.rank, slot.index)]

    def consumers(self, slot: Slot) -> tuple[Slot, ...]:
        """Data-dependency edges out of ``slot`` (consuming slots)."""
        return tuple(self._consumers.get((slot.rank, slot.index), ()))

    def cross_deps(self, slot: Slot) -> tuple[Slot, ...]:
        """Dependencies of ``slot`` produced on a *different* rank — each
        one is a send/recv pair at runtime."""
        return tuple(d for d in self.deps(slot) if d.rank != slot.rank)

    def cross_consumers(self, slot: Slot) -> tuple[Slot, ...]:
        """Consumers of ``slot`` on a *different* rank."""
        return tuple(c for c in self.consumers(slot) if c.rank != slot.rank)

    def buffer_deps(self, slot: Slot) -> tuple[Slot, ...]:
        """Dependencies instruction emitters materialise as buffer
        references: every cross-rank dep (delivered by a recv), plus a
        weight-gradient slot's local deps (its ``bwd_i`` buffer gates the
        deferred work and carries its cost attribution).  Other intra-rank
        deps are satisfied by program order alone."""
        if slot.unit.kind == BWD_W:
            return self.deps(slot)
        return self.cross_deps(slot)

    def send_dsts(self, slot: Slot) -> list[int]:
        """Destination ranks of ``slot``'s output, one transfer per rank
        (sorted for deterministic emission)."""
        return sorted({c.rank for c in self.cross_consumers(slot)})

    def edges(self) -> Iterator[tuple[Slot, Slot]]:
        """All data-dependency edges as ``(producer, consumer)`` pairs."""
        for row in self.slots:
            for slot in row:
                for dep in self.deps(slot):
                    yield dep, slot

    # -- aggregate shape -----------------------------------------------------
    @property
    def n_slots(self) -> int:
        """Total scheduled slots."""
        return sum(len(row) for row in self.slots)

    @property
    def n_edges(self) -> int:
        """Total data-dependency edges."""
        return sum(len(d) for d in self._deps.values())

    @property
    def n_cross_edges(self) -> int:
        """Data edges crossing ranks (send/recv pairs at runtime)."""
        return sum(
            1
            for (rank, _), deps in self._deps.items()
            for d in deps
            if d.rank != rank
        )

    @property
    def n_intra_edges(self) -> int:
        """Data edges satisfied locally (same rank)."""
        return self.n_edges - self.n_cross_edges

    # -- graph checks --------------------------------------------------------
    def toposort(self) -> list[Slot]:
        """Global topological order — greedy over ranks in program order,
        §4.2's emission order (shared by the compiler, the performance
        simulator, and the engine benchmarks).

        Raises ``ValueError`` if the schedule cannot be executed.
        """
        if self._topo is not None:
            return self._topo
        order: list[Slot] = []
        done: set[tuple[int, int, str]] = set()
        pcs = [0] * self.n_ranks
        total = self.n_slots
        while len(order) < total:
            progressed = False
            for rank, row in enumerate(self.slots):
                while pcs[rank] < len(row):
                    slot = row[pcs[rank]]
                    if not all(d.key in done for d in self.deps(slot)):
                        break
                    done.add(slot.key)
                    order.append(slot)
                    pcs[rank] += 1
                    progressed = True
            if not progressed:
                stuck = [
                    row[pcs[rank]].unit
                    for rank, row in enumerate(self.slots)
                    if pcs[rank] < len(row)
                ]
                raise ValueError(
                    f"schedule deadlocks (not executable); stuck units: {stuck[:4]}"
                )
        self._topo = order
        return order

    def check_edges(self) -> "ScheduleIR":
        """Edge-consistency: the resolved dependency tables must still
        agree with :func:`iter_unit_deps`, the single source of
        dependency structure.  A dropped, redirected, duplicated, or
        fabricated edge — whether from a buggy lowering or a fuzzer
        mutating the tables directly — raises ``ValueError`` here rather
        than executing a subtly-wrong dataflow graph downstream."""
        if len(self._deps) != self.n_slots:
            raise ValueError(
                f"dependency table has {len(self._deps)} entries for "
                f"{self.n_slots} slots (corrupt IR)"
            )
        consumers: dict[tuple[int, int], list[Slot]] = {}
        for row in self.slots:
            for slot in row:
                want: list[Slot] = []
                for d in iter_unit_deps(slot.unit, self.n_stages):
                    dep_slot = self._slot_of.get((d.mb, d.stage, d.kind))
                    if dep_slot is None:
                        raise ValueError(
                            f"unit {slot.unit} depends on unscheduled unit {d}"
                        )
                    want.append(dep_slot)
                    consumers.setdefault(
                        (dep_slot.rank, dep_slot.index), []
                    ).append(slot)
                have = self._deps.get((slot.rank, slot.index))
                if have is None or list(have) != want:
                    raise ValueError(
                        f"dependency edges of {slot!r} diverge from the unit "
                        f"dependency structure: IR has {list(have or ())}, "
                        f"expected {want} (corrupt or tampered edges)"
                    )
        for key in set(consumers) | set(self._consumers):
            if consumers.get(key, []) != self._consumers.get(key, []):
                rank, index = key
                raise ValueError(
                    f"consumer edges of slot r{rank}[{index}] diverge from "
                    "the unit dependency structure (corrupt or tampered edges)"
                )
        return self

    def validate(self) -> "ScheduleIR":
        """Graph checks on top of the construction-time table checks:
        edge consistency against the unit dependency structure
        (:meth:`check_edges`), executability (the greedy topological walk
        covers every slot), and the per-rank activation-memory bound when
        the schedule declares one.  Returns ``self`` for chaining; raises
        ``ValueError``."""
        self.check_edges()
        peak = self.peak_live()  # runs toposort: raises on deadlock
        for rank in range(self.n_ranks):
            bound = self.schedule.activation_bound(rank, self.n_mbs)
            if bound is not None and peak[rank] > bound:
                raise ValueError(
                    f"rank {rank} holds {peak[rank]} live activations, over "
                    f"the schedule's declared bound of {bound}"
                )
        return self

    def peak_live(self) -> list[int]:
        """Peak live-activation count per rank along the topological walk."""
        live = [0] * self.n_ranks
        peak = [0] * self.n_ranks
        for slot in self.toposort():
            live[slot.rank] += slot.acquires - slot.releases
            peak[slot.rank] = max(peak[slot.rank], live[slot.rank])
        return peak

    def initial_ready_ranks(self) -> list[int]:
        """Ranks ordered for runtime ready-queue seeding: ranks whose first
        slot has no unmet data dependency (they can start immediately)
        first, the rest after, both in rank order."""
        ready, blocked = [], []
        for rank, row in enumerate(self.slots):
            if row and not self.deps(row[0]):
                ready.append(rank)
            else:
                blocked.append(rank)
        return ready + blocked

    # -- analytic costing ----------------------------------------------------
    def stats(
        self,
        fwd_time: float = 1.0,
        bwd_time: float = 2.0,
        cost_model=None,
    ) -> dict:
        """Analytic execution of the IR under uniform or heterogeneous
        per-stage costs.

        Returns makespan, per-rank busy/idle (bubble) time, peak count of
        live activations per rank, and peak live activation *bytes* per
        rank — the quantities behind §2.2.1's memory and §5.1's
        throughput discussions.

        Args:
            fwd_time / bwd_time: uniform per-unit costs (the default —
                every stage costs the same, the assumption the closed-form
                bubble formulas make).
            cost_model: optional heterogeneous cost table — any object
                with ``unit_time(stage, kind, bwd_input_fraction) ->
                seconds`` and an ``activation_bytes(stage) -> bytes``
                method (:class:`repro.core.autotune.CostModel` is the
                canonical implementation).  When given it overrides
                ``fwd_time``/``bwd_time``, pricing uneven layers,
                embedding/head stages, and circular-repeat chunks
                individually.

        For split-backward schedules the full backward cost is divided
        between the input-gradient and weight-gradient units according to
        the schedule's ``bwd_input_fraction``; an activation is held from
        its forward until its weight-gradient unit retires it (encoded in
        the slots' acquire/release annotations), and its byte weight is
        the producing stage's ``activation_bytes``.

        ``cross_boundary_bytes`` totals the cross-rank dependency edges,
        each priced at the producing stage's
        ``cost_model.boundary_bytes`` (0.0 without a cost model) — the
        wire traffic the algebraic optimizer's boundary pruning and
        memoization (:mod:`repro.ir.opt`) is in the business of
        shrinking.
        """
        frac = self.schedule.bwd_input_fraction

        if cost_model is not None:
            def unit_time(u: Unit) -> float:
                return cost_model.unit_time(u.stage, u.kind, frac)

            def act_bytes(stage: int) -> float:
                return cost_model.activation_bytes(stage)

            def bnd_bytes(stage: int) -> float:
                return cost_model.boundary_bytes(stage)
        else:
            def unit_time(u: Unit) -> float:
                if u.kind == FWD:
                    return fwd_time
                if u.kind == BWD:
                    return bwd_time
                return bwd_time * (frac if u.kind == BWD_I else 1.0 - frac)

            def act_bytes(stage: int) -> float:
                return 1.0

            def bnd_bytes(stage: int) -> float:
                return 0.0

        finish: dict[tuple[int, int, str], float] = {}
        rank_time = [0.0] * self.n_ranks
        live = [0] * self.n_ranks
        peak_live = [0] * self.n_ranks
        live_bytes = [0.0] * self.n_ranks
        peak_bytes = [0.0] * self.n_ranks
        # a release retires the rank's *oldest* live acquisition's bytes —
        # FIFO per (rank, stage) is not tracked; instead charge/credit the
        # released slot's own stage, which matches because forward and its
        # retiring backward share a stage by construction
        cross_bytes = 0.0
        for slot in self.toposort():
            start = max(
                [rank_time[slot.rank]] + [finish[d.key] for d in self.deps(slot)]
            )
            end = start + unit_time(slot.unit)
            finish[slot.key] = end
            rank_time[slot.rank] = end
            delta = slot.acquires - slot.releases
            live[slot.rank] += delta
            peak_live[slot.rank] = max(peak_live[slot.rank], live[slot.rank])
            live_bytes[slot.rank] += delta * act_bytes(slot.unit.stage)
            peak_bytes[slot.rank] = max(peak_bytes[slot.rank], live_bytes[slot.rank])
            # each cross-rank dependency is a send/recv of the producing
            # stage's boundary bytes; the algebraic optimizer
            # (ir/opt.py) shrinks exactly this term when it prunes,
            # dedupes, or memoizes stage outputs
            for d in self.cross_deps(slot):
                cross_bytes += bnd_bytes(d.unit.stage)
        makespan = max(rank_time)
        busy = [sum(unit_time(s.unit) for s in row) for row in self.slots]
        return {
            "makespan": makespan,
            "busy": busy,
            "bubble_fraction": 1.0 - sum(busy) / (makespan * self.n_ranks),
            "peak_live_activations": peak_live,
            "peak_activation_bytes": peak_bytes,
            "cross_boundary_bytes": cross_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"ScheduleIR({self.schedule.name}, n_mbs={self.n_mbs}, "
            f"slots={self.n_slots}, edges={self.n_edges} "
            f"[{self.n_cross_edges} cross])"
        )


def lower_schedule(schedule: "Schedule", n_mbs: int) -> ScheduleIR:
    """Lower ``schedule`` for ``n_mbs`` microbatches into a
    :class:`ScheduleIR` (construction performs the table checks; call
    :meth:`ScheduleIR.validate` for the graph checks)."""
    return ScheduleIR(schedule, n_mbs)
