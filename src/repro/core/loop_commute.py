"""Loop commuting for shared-weight gradients (§3.4).

With weight sharing (tied embeddings), autodiff forms the full gradient as
a sum of per-stage partials *inside* the loop body::

    g = g_1 + g_2            # g_1 from the last stage, g_2 from the first

If the partials come from tasks on different actors, the naive schedule
ships a multi-gigabyte partial gradient **every microbatch**. The paper's
rewrite commutes the sum over microbatches::

    Σ_i (g_1^(i) + g_2^(i))   ⇝   (Σ_i g_1^(i)) + (Σ_i g_2^(i))

so each actor accumulates its own partial locally and a single add (one
transfer) happens after the loop. This pass detects such outputs, rewrites
the loop body to return the partials, and reports the deferred adds for the
compiler to place after the loop.
"""

from __future__ import annotations

import dataclasses

from repro.ir.jaxpr import Atom, Jaxpr, Literal, Var, dce
from repro.ir.ops import add_p
from repro.ir.pipeline import pipeline_yield_p
from repro.core.accumulate import ADD
from repro.core.schedules import Schedule
from repro.core.stage_split import SplitResult, split_stages

__all__ = ["CombineSpec", "CommuteResult", "commute_shared_gradients"]


@dataclasses.dataclass
class CombineSpec:
    """One deferred post-loop combination.

    Attributes:
        out_index: position in the *original* body output list whose value
            is now computed after the loop.
        part_indices: positions in the *rewritten* body output list holding
            the per-actor partial accumulators to be summed.
    """

    out_index: int
    part_indices: list[int]


@dataclasses.dataclass
class CommuteResult:
    """Rewritten body plus bookkeeping.

    Attributes:
        body: loop body with commuted sums removed from the outputs.
        out_ops: combine ops for the rewritten outputs.
        combines: deferred adds, in original-output order.
        out_map: for each original output index, either ``("direct", new_i)``
            or ``("combine", k)`` pointing into ``combines``.
        n_commuted: number of outputs rewritten (0 = pass was a no-op).
    """

    body: Jaxpr
    out_ops: tuple[str, ...]
    combines: list[CombineSpec]
    out_map: list[tuple[str, int]]
    n_commuted: int


def _flatten_add_tree(body: Jaxpr, atom: Atom, producer: dict[int, int]) -> list[Atom] | None:
    """Flatten nested ``add`` equations rooted at ``atom`` into leaf parts.

    Returns ``None`` when ``atom`` is not produced by an add.
    """
    if isinstance(atom, Literal) or id(atom) not in producer:
        return None
    eqn = body.eqns[producer[id(atom)]]
    if eqn.prim is not add_p:
        return None
    parts: list[Atom] = []
    for operand in eqn.invars:
        sub = _flatten_add_tree(body, operand, producer) if isinstance(operand, Var) else None
        if sub is None:
            parts.append(operand)
        else:
            parts.extend(sub)
    return parts


def commute_shared_gradients(
    body: Jaxpr,
    out_ops: tuple[str, ...],
    schedule: Schedule,
    split: SplitResult | None = None,
) -> CommuteResult:
    """Apply the §3.4 rewrite to every eligible ADD-accumulated output.

    An output is rewritten when it is a (possibly nested) sum whose parts
    are produced by tasks mapped to *different actors* under ``schedule``.
    Outputs summed within a single actor are left alone — the rewrite would
    only add accumulators without saving any communication.
    """
    if split is None:
        split = split_stages(body)
    # Work in the split's (DCE'd) body coordinates — `split.assignment`
    # indexes those equations.
    body = split.body if split.body is not None else body

    producer_eqn: dict[int, int] = {}
    for i, eqn in enumerate(body.eqns):
        for v in eqn.outvars:
            producer_eqn[id(v)] = i

    def actor_of_atom(atom: Atom) -> int | None:
        """Actor of the task that computes ``atom`` (internal vars too,
        via the split's raw eqn->task assignment)."""
        if not isinstance(atom, Var) or id(atom) not in producer_eqn:
            return None
        task_idx = split.assignment.get(producer_eqn[id(atom)])
        if task_idx is None:
            return None
        return schedule.actor_of_stage(split.tasks[task_idx].stage)

    new_outvars: list[Atom] = []
    new_ops: list[str] = []
    combines: list[CombineSpec] = []
    out_map: list[tuple[str, int]] = []
    n_commuted = 0

    for idx, (atom, op) in enumerate(zip(body.outvars, out_ops)):
        parts = _flatten_add_tree(body, atom, producer_eqn) if op == ADD else None
        eligible = False
        if parts is not None and len(parts) >= 2 and all(isinstance(p, Var) for p in parts):
            actors = {actor_of_atom(p) for p in parts}
            eligible = None not in actors and len(actors) >= 2
        if not eligible:
            out_map.append(("direct", len(new_outvars)))
            new_outvars.append(atom)
            new_ops.append(op)
            continue
        part_positions = []
        for p in parts:
            part_positions.append(len(new_outvars))
            new_outvars.append(p)
            new_ops.append(ADD)
        combines.append(CombineSpec(out_index=idx, part_indices=part_positions))
        out_map.append(("combine", len(combines) - 1))
        n_commuted += 1

    new_body = Jaxpr(body.invars, body.eqns, new_outvars)
    # The now-unreferenced add equations disappear; yield markers are kept.
    new_body = dce(new_body, keep_effects=lambda e: e.prim is pipeline_yield_p)
    return CommuteResult(
        body=new_body,
        out_ops=tuple(new_ops),
        combines=combines,
        out_map=out_map,
        n_commuted=n_commuted,
    )
