"""Stage splitting: pipeline-loop body -> per-stage tasks (§3.2–3.3).

Implements the paper's placement heuristic verbatim: *"a task is formed for
each pipeline_yield operation, comprising of all computations it depends
on"* (processed in topological order, each claiming the not-yet-assigned
part of its dependency closure), *"then the remaining computations ... are
placed on the same task of their operands or a new task"*.

For a body with forward yields ``0..n-1`` (so ``n+1`` stages) this yields
the task list of Figure 3::

    F0, F1, ..., F_{n-1},   # forward stages
    FLB_n,                  # fused last-stage forward + loss + backward
    B_{n-1}, ..., B1, B0    # backward stages

The fused ``FLB`` task falls out of the heuristic naturally: the first
*backward* yield's dependency closure contains the last forward stage, the
loss, and its backward.
"""

from __future__ import annotations

import dataclasses

from repro.ir.jaxpr import Atom, Eqn, Jaxpr, Literal, Var, dce, eqn_dependencies
from repro.ir.pipeline import BWD, FWD, pipeline_yield_p

__all__ = ["StageTask", "SplitResult", "split_stages"]

FWD_KIND = "fwd"
BWD_KIND = "bwd"
FUSED_KIND = "fwd_loss_bwd"


@dataclasses.dataclass
class StageTask:
    """One pipeline task: a closed sub-program of the loop body.

    Attributes:
        index: position in the body's task order (F0 .. B0).
        kind: ``"fwd"``, ``"bwd"``, or ``"fwd_loss_bwd"`` (fused last stage).
        stage: pipeline stage id in ``0..n_stages-1``.
        jaxpr: the task body; its invars are fresh Vars mirroring
            ``in_atoms``.
        in_atoms: body-coordinate atoms consumed (body invars or other
            tasks' outputs), aligned with ``jaxpr.invars``.
        out_vars: body-coordinate vars this task defines that escape it
            (consumed by other tasks or returned by the loop), aligned with
            ``jaxpr.outvars``.
    """

    index: int
    kind: str
    stage: int
    jaxpr: Jaxpr
    in_atoms: list[Atom]
    out_vars: list[Var]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StageTask({self.kind}, stage={self.stage}, eqns={self.jaxpr.n_eqns})"


@dataclasses.dataclass
class SplitResult:
    """Output of :func:`split_stages`.

    Attributes:
        tasks: tasks in body order.
        n_stages: number of pipeline stages (= forward yields + 1).
        fwd_task_of_stage / bwd_task_of_stage: task index by stage id (the
            last stage maps to the same fused task in both).
        assignment: body eqn index -> task index (the raw claim map; used
            by the loop-commuting pass to locate task-internal producers).
    """

    tasks: list[StageTask]
    n_stages: int
    fwd_task_of_stage: dict[int, int]
    bwd_task_of_stage: dict[int, int]
    assignment: dict[int, int] = dataclasses.field(default_factory=dict)
    # the DCE'd body the split (and `assignment` indices) refer to — callers
    # doing follow-up rewrites must work in these coordinates
    body: Jaxpr | None = None


def split_stages(body: Jaxpr) -> SplitResult:
    """Split a traced loop body at its ``pipeline_yield`` markers."""
    body = dce(body, keep_effects=lambda e: e.prim is pipeline_yield_p)
    deps = eqn_dependencies(body.eqns)

    markers = [
        (i, e) for i, e in enumerate(body.eqns) if e.prim is pipeline_yield_p
    ]
    fwd_indices = sorted(
        {e.params["index"] for _, e in markers if e.params["direction"] == FWD}
    )
    if not fwd_indices:
        raise ValueError(
            "pipeline body has no pipeline_yield markers; nothing to split"
        )
    if fwd_indices != list(range(len(fwd_indices))):
        raise ValueError(f"non-contiguous yield indices: {fwd_indices}")
    n_yields = len(fwd_indices)
    n_stages = n_yields + 1
    has_bwd = any(e.params["direction"] == BWD for _, e in markers)

    # Group markers by (direction, index): a pytree yield produces several
    # marker equations sharing one boundary.
    assignment: dict[int, int] = {}  # eqn idx -> task idx
    task_descr: list[tuple[str, int]] = []  # (kind, stage)

    def claim(eqn_idx: int, task_id: int) -> None:
        """Assign the unassigned dependency closure of ``eqn_idx``."""
        stack = [eqn_idx]
        while stack:
            i = stack.pop()
            if i in assignment:
                continue
            assignment[i] = task_id
            stack.extend(d for d in deps[i] if d not in assignment)

    # Process boundaries in topological (trace) order.
    seen_boundaries: list[tuple[str, int]] = []
    for i, e in markers:
        key = (e.params["direction"], e.params["index"])
        if key not in seen_boundaries:
            seen_boundaries.append(key)

    for direction, index in seen_boundaries:
        if direction == FWD:
            kind, stage = FWD_KIND, index
        elif index == n_yields - 1:
            # first backward boundary: fused last-stage fwd+loss+bwd
            kind, stage = FUSED_KIND, n_stages - 1
        else:
            kind, stage = BWD_KIND, index + 1
        task_id = len(task_descr)
        task_descr.append((kind, stage))
        for i, e in markers:
            if (e.params["direction"], e.params["index"]) == (direction, index):
                claim(i, task_id)

    # Remaining computations — §3.3: "the remaining computations that are
    # not dependencies of any pipeline_yield operation are placed on the
    # same task of their operands or a new task". The weight-gradient
    # matmuls are the canonical case: dW_k feeds no yield, but its operands
    # (activations of stage k, incoming cotangent) pin it to stage k's
    # backward task. The final "new task" is the backward of stage 0
    # (``b1`` in Figure 3), which receives the eqns downstream of the last
    # backward boundary.
    final_task_id = len(task_descr)
    if has_bwd:
        task_descr.append((BWD_KIND, 0))
    else:
        task_descr.append((FWD_KIND, n_stages - 1))

    # A yield marker's *output* logically belongs to the consuming side of
    # the boundary, not to the task that claimed the marker equation.
    task_of_boundary: dict[tuple[str, int], int] = {}
    for tid, key in enumerate(seen_boundaries):
        task_of_boundary[key] = tid
    boundary_target: dict[int, int] = {}  # id(marker outvar) -> task idx
    for i, e in markers:
        direction, index = e.params["direction"], e.params["index"]
        if direction == FWD:
            if index + 1 <= n_yields - 1:
                tgt = task_of_boundary[(FWD, index + 1)]
            elif has_bwd:
                tgt = task_of_boundary[(BWD, n_yields - 1)]  # fused FLB
            else:
                tgt = final_task_id
        else:
            tgt = task_of_boundary[(BWD, index - 1)] if index > 0 else final_task_id
        boundary_target[id(e.outvars[0])] = tgt

    producer_of: dict[int, int] = {}
    for i, e in enumerate(body.eqns):
        for v in e.outvars:
            producer_of[id(v)] = i

    for i in range(len(body.eqns)):
        if i in assignment:
            continue
        candidates: list[int] = []
        for a in body.eqns[i].invars:
            if not isinstance(a, Var):
                continue
            if id(a) in boundary_target:
                candidates.append(boundary_target[id(a)])
                continue
            p = producer_of.get(id(a))
            if p is not None and p in assignment:
                candidates.append(assignment[p])
        assignment[i] = max(candidates) if candidates else final_task_id

    return _build_tasks(body, assignment, task_descr, n_stages, has_bwd)


def _build_tasks(
    body: Jaxpr,
    assignment: dict[int, int],
    task_descr: list[tuple[str, int]],
    n_stages: int,
    has_bwd: bool,
) -> SplitResult:
    n_tasks = len(task_descr)
    eqns_of: list[list[Eqn]] = [[] for _ in range(n_tasks)]
    for i, eqn in enumerate(body.eqns):
        eqns_of[assignment[i]].append(eqn)

    producer_task: dict[int, int] = {}
    for i, eqn in enumerate(body.eqns):
        for v in eqn.outvars:
            producer_task[id(v)] = assignment[i]

    body_out_ids = {id(a) for a in body.outvars if isinstance(a, Var)}

    tasks: list[StageTask] = []
    for t in range(n_tasks):
        kind, stage = task_descr[t]
        in_atoms: list[Atom] = []
        in_ids: dict[int, Var] = {}
        sub_eqns: list[Eqn] = []
        local_of: dict[int, Var] = {}

        def local_in(atom: Atom) -> Atom:
            if isinstance(atom, Literal):
                return atom
            if id(atom) in local_of:
                return local_of[id(atom)]
            if id(atom) in in_ids:
                return in_ids[id(atom)]
            v = Var(atom.aval)
            in_ids[id(atom)] = v
            in_atoms.append(atom)
            return v

        for eqn in eqns_of[t]:
            new_in = []
            for a in eqn.invars:
                if isinstance(a, Var) and producer_task.get(id(a)) == t:
                    new_in.append(local_of[id(a)])
                else:
                    new_in.append(local_in(a))
            new_out = [Var(v.aval) for v in eqn.outvars]
            for old, new in zip(eqn.outvars, new_out):
                local_of[id(old)] = new
            sub_eqns.append(Eqn(eqn.prim, new_in, new_out, dict(eqn.params)))

        out_vars: list[Var] = []
        local_outs: list[Var] = []
        for eqn in eqns_of[t]:
            for v in eqn.outvars:
                used_elsewhere = False
                if id(v) in body_out_ids:
                    used_elsewhere = True
                else:
                    for j, other in enumerate(body.eqns):
                        if assignment[j] == t:
                            continue
                        if any(isinstance(a, Var) and a is v for a in other.invars):
                            used_elsewhere = True
                            break
                if used_elsewhere:
                    out_vars.append(v)
                    local_outs.append(local_of[id(v)])

        sub_invars = [in_ids[id(a)] for a in in_atoms]
        tasks.append(
            StageTask(
                index=t,
                kind=kind,
                stage=stage,
                jaxpr=Jaxpr(sub_invars, sub_eqns, list(local_outs)),
                in_atoms=in_atoms,
                out_vars=out_vars,
            )
        )

    fwd_of = {}
    bwd_of = {}
    for t in tasks:
        if t.kind in (FWD_KIND, FUSED_KIND):
            fwd_of[t.stage] = t.index
        if t.kind in (BWD_KIND, FUSED_KIND):
            bwd_of[t.stage] = t.index
    return SplitResult(tasks, n_stages, fwd_of, bwd_of, dict(assignment), body)
