"""JaxPP core: the paper's contribution.

User API (Figure 4)::

    from repro import core
    from repro.ir import pipeline_yield

    def train_step(state, batch):
        def microbatch_grads(mubatch):
            (loss, _), grads = ir.value_and_grad(loss_fn, has_aux=True)(...)
            return grads, loss
        grads, loss = core.accumulate_grads(
            microbatch_grads, core.Interleaved1F1B(2, 2))(batch)
        ...

    mesh = core.RemoteMesh((2,))
    step_fn = mesh.distributed(train_step)
"""

from repro.core.accumulate import ADD, STACK, accumulate_grads, pipeline_loop_p, reference_loop
from repro.core.api import RemoteMesh, StepFunction
from repro.core.compile import CompiledStep, compile_train_step
from repro.core.loop_commute import CombineSpec, CommuteResult, commute_shared_gradients
from repro.core.autotune import CostModel, TuneEntry, TuneReport, default_candidates, tune
from repro.core.schedule_ir import ScheduleIR, Slot, iter_unit_deps, lower_schedule
from repro.core.schedules import (
    GPipe,
    Eager1F1B,
    Hybrid1F1B,
    Interleaved1F1B,
    InterleavedZB,
    LoopedBFS,
    OneFOneB,
    Schedule,
    Unit,
    ZBH1,
    ZBH2,
    ZBV,
    schedule_stats,
    validate_schedule,
)
from repro.core.stage_split import SplitResult, StageTask, split_stages

__all__ = [
    "accumulate_grads", "reference_loop", "pipeline_loop_p", "ADD", "STACK",
    "RemoteMesh", "StepFunction",
    "compile_train_step", "CompiledStep",
    "commute_shared_gradients", "CommuteResult", "CombineSpec",
    "Schedule", "GPipe", "OneFOneB", "Eager1F1B", "Hybrid1F1B",
    "Interleaved1F1B", "ZBH1", "ZBH2", "ZBV", "LoopedBFS", "InterleavedZB",
    "CostModel", "TuneEntry", "TuneReport", "tune", "default_candidates",
    "ScheduleIR", "Slot", "lower_schedule",
    "Unit", "validate_schedule", "schedule_stats", "iter_unit_deps",
    "split_stages", "SplitResult", "StageTask",
]
