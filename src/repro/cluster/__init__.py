"""Hardware substrate: published DGX-H100/EOS specs and actor topology."""

from repro.cluster.specs import DGX_H100, EOS, H100_SXM, ClusterSpec, GpuSpec, NodeSpec
from repro.cluster.topology import Link, Topology

__all__ = [
    "GpuSpec", "NodeSpec", "ClusterSpec",
    "H100_SXM", "DGX_H100", "EOS",
    "Topology", "Link",
]
