"""Hardware constants for the paper's testbed (NVIDIA EOS, §5).

All numbers are published specs: DGX H100 nodes (8x H100-SXM 80GB,
NVLink4/NVSwitch intra-node) on an InfiniBand NDR400 fabric with a
400 Gb/s rail per GPU. The performance model consumes only these
constants, so retargeting to another cluster is a one-dataclass change.
"""

from __future__ import annotations

import dataclasses

__all__ = ["GpuSpec", "NodeSpec", "ClusterSpec", "H100_SXM", "DGX_H100", "EOS"]


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """One accelerator.

    Attributes:
        name: marketing name.
        bf16_tflops: dense BF16 peak in TFLOP/s (no sparsity).
        hbm_bytes: device memory capacity.
        hbm_bw: device memory bandwidth, bytes/s.
        nvlink_bw: NVLink bandwidth per GPU per direction, bytes/s.
    """

    name: str
    bf16_tflops: float
    hbm_bytes: float
    hbm_bw: float
    nvlink_bw: float

    @property
    def peak_flops(self) -> float:
        """Peak in FLOP/s."""
        return self.bf16_tflops * 1e12


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One server.

    Attributes:
        gpu: the accelerator model.
        gpus_per_node: accelerator count.
        ib_bw_per_gpu: internode bandwidth available per GPU (one NDR400
            rail each on DGX H100), bytes/s per direction.
        ib_latency: internode message latency, seconds.
        nvlink_latency: intranode P2P latency, seconds.
    """

    gpu: GpuSpec
    gpus_per_node: int
    ib_bw_per_gpu: float
    ib_latency: float = 5e-6
    nvlink_latency: float = 2e-6


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """A cluster of identical nodes."""

    name: str
    node: NodeSpec
    n_nodes: int

    @property
    def n_gpus(self) -> int:
        """Total accelerator count."""
        return self.n_nodes * self.node.gpus_per_node


H100_SXM = GpuSpec(
    name="H100-SXM",
    bf16_tflops=989.4,
    hbm_bytes=80e9,
    hbm_bw=3.35e12,
    nvlink_bw=450e9,
)

DGX_H100 = NodeSpec(
    gpu=H100_SXM,
    gpus_per_node=8,
    ib_bw_per_gpu=50e9,  # NDR400: 400 Gb/s = 50 GB/s per GPU rail
)

# EOS (TOP500 #9 at the time of the paper): 576 DGX H100 nodes.
EOS = ClusterSpec(name="EOS", node=DGX_H100, n_nodes=576)
