"""Cluster topology: mapping actors onto nodes and links.

The paper instantiates one JaxPP actor per DGX node ("JaxPP attempts to
group devices so that those assigned to an SPMD actor are connected
through a high-bandwidth interconnect", §3): tensor parallelism runs over
NVLink inside the actor, pipeline/data parallelism over InfiniBand between
actors. :class:`Topology` answers the two questions the cost models ask —
*are two actors on the same node?* and *what bandwidth/latency connects
them?*
"""

from __future__ import annotations

import dataclasses

from repro.cluster.specs import ClusterSpec, NodeSpec

__all__ = ["Topology", "Link"]


@dataclasses.dataclass(frozen=True)
class Link:
    """A point-to-point path between two actors."""

    bandwidth: float  # bytes/s per direction
    latency: float  # seconds
    kind: str  # "nvlink" | "ib" | "self"

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` one way."""
        if self.kind == "self":
            return 0.0
        return self.latency + nbytes / self.bandwidth


@dataclasses.dataclass(frozen=True)
class Topology:
    """Actors placed on a cluster.

    Attributes:
        cluster: the hardware.
        gpus_per_actor: devices grouped into one SPMD actor (8 = one DGX
            node, the paper's configuration).
    """

    cluster: ClusterSpec
    gpus_per_actor: int

    @property
    def node(self) -> NodeSpec:
        """Node spec shorthand."""
        return self.cluster.node

    @property
    def actors_per_node(self) -> int:
        """How many actors share one node (usually 1)."""
        return max(1, self.node.gpus_per_node // self.gpus_per_actor)

    def node_of_actor(self, actor: int) -> int:
        """Which node hosts this actor."""
        return actor // self.actors_per_node

    def link(self, src: int, dst: int) -> Link:
        """The path between two actors."""
        if src == dst:
            return Link(float("inf"), 0.0, "self")
        if self.node_of_actor(src) == self.node_of_actor(dst):
            return Link(self.node.gpu.nvlink_bw, self.node.nvlink_latency, "nvlink")
        # Per-GPU rail bandwidth aggregates across the GPUs of an actor:
        # stage boundaries are sharded over TP, each GPU ships its shard on
        # its own rail, so the *per-GPU* share is what matters and we model
        # the per-shard transfer at rail speed.
        return Link(self.node.ib_bw_per_gpu, self.node.ib_latency, "ib")

    def validate(self, n_actors: int) -> None:
        """Check the cluster is large enough for ``n_actors``."""
        need_nodes = (n_actors + self.actors_per_node - 1) // self.actors_per_node
        if need_nodes > self.cluster.n_nodes:
            raise ValueError(
                f"{n_actors} actors need {need_nodes} nodes; "
                f"{self.cluster.name} has {self.cluster.n_nodes}"
            )
