"""Kernel efficiency model: how fast one pipeline task actually runs.

The paper's §5.1.1 tradeoffs come from three effects this module models:

- **matmul efficiency rises with microbatch size** (t2 < 2*t1 in the
  paper's notation): modeled as a saturating function of tokens per
  microbatch, normalised per model/TP so smaller per-GPU matmuls sit lower
  on the curve;
- **dispatch overhead per task**: XLA's asynchronous dispatch cost, paid
  once per task — negligible for large tasks, visible at high circular
  repeat;
- **per-collective latency**: each tensor-parallel all-reduce has a fixed
  ring-latency cost on top of its bandwidth term, so many small
  microbatches pay more latency for the same bytes.

Constants are calibrated against Table 1 of the paper (see
``tests/perf/test_calibration.py`` for the acceptance bands) and are
deliberately exposed as dataclass fields: they are the *assumptions* of the
reproduction, not hidden magic.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.specs import GpuSpec
from repro.perf.transformer import ModelSpec

__all__ = ["KernelModel", "JAX_KERNELS", "NEMO_KERNELS"]


@dataclasses.dataclass(frozen=True)
class KernelModel:
    """Throughput assumptions for one software stack.

    Attributes:
        name: stack label.
        base_eff: asymptotic fraction of peak FLOPs the block kernels
            sustain for large inputs.
        tokens_half: tokens-per-microbatch at which efficiency reaches half
            of the asymptote gap (normalised to a 2048-token microbatch at
            reference shard width; lower = flatter curve = kernels that stay
            efficient at small batch, e.g. NeMo's fused kernels).
        dispatch_s: per-task launch overhead (seconds).
        allreduce_latency_s: fixed cost per tensor-parallel collective.
        ref_shard: reference per-GPU hidden width for the efficiency
            normalisation (GPT-3 at TP8).
    """

    name: str
    base_eff: float
    tokens_half: float
    dispatch_s: float
    allreduce_latency_s: float
    attn_eff: float = 0.35
    ref_shard: float = 12288.0 / 8.0
    # per-model multipliers on GEMM efficiency (e.g. GQA/SwiGLU shapes
    # without hand-tuned kernels)
    model_factors: tuple[tuple[str, float], ...] = ()

    def efficiency(self, model: ModelSpec, mbs: int, tp: int) -> float:
        """Sustained fraction of peak for the block's parameter GEMMs."""
        # work proxy: tokens, scaled by how the per-GPU shard width compares
        # to the reference (narrower shards -> lower arithmetic intensity)
        shard = model.hidden / tp
        tokens = mbs * model.seq * min(1.0, shard / self.ref_shard) ** 0.5
        x = tokens / 2048.0
        factor = dict(self.model_factors).get(model.name, 1.0)
        return factor * self.base_eff * x / (x + self.tokens_half)

    def block_time(
        self,
        model: ModelSpec,
        gpu: GpuSpec,
        n_layers: int,
        mbs: int,
        tp: int,
        direction: str = "fwd",
    ) -> float:
        """Compute seconds for ``n_layers`` blocks of a task (no comms).

        Parameter GEMMs run at :meth:`efficiency`; the attention
        score/context kernels (fused flash attention) at :attr:`attn_eff`.
        Backward is 2x forward FLOPs at the same sustained rates.
        """
        tokens = mbs * model.seq
        gemm = n_layers * model.layer_matmul_flops(tokens) / tp
        attn = n_layers * model.layer_attn_flops(tokens) / tp
        scale = 2.0 if direction == "bwd" else 1.0
        t = gemm / (gpu.peak_flops * self.efficiency(model, mbs, tp))
        t += attn / (gpu.peak_flops * self.attn_eff)
        return scale * t

    def logits_time(self, model: ModelSpec, gpu: GpuSpec, mbs: int, tp: int, direction: str = "fwd") -> float:
        """Output projection + loss time (vocab-parallel matmul)."""
        flops = model.logits_fwd_flops(mbs * model.seq) / tp
        if direction == "bwd":
            flops *= 2.0
        return flops / (gpu.peak_flops * self.efficiency(model, mbs, tp))


# The JAX/XLA stack (JaxPP, JAX FSDP, JAX SPMD PP): no custom kernels
# except cuDNN attention (§5.2).
JAX_KERNELS = KernelModel(
    name="jax",
    base_eff=0.60,
    tokens_half=0.22,
    dispatch_s=150e-6,
    allreduce_latency_s=12e-6,
)

# NeMo/Megatron: "several high-performance kernels that greatly improve
# end-to-end performance" (§5.2) — higher asymptote, a much flatter curve
# (stays efficient at microbatch size 1), and a fast fused attention.
NEMO_KERNELS = KernelModel(
    name="nemo",
    base_eff=0.625,
    tokens_half=0.045,
    dispatch_s=25e-6,
    allreduce_latency_s=8e-6,
    attn_eff=0.55,
)
