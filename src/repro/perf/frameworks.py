"""Step-time models for every system in the paper's evaluation (§5.2).

- :func:`jaxpp` — Interleaved-1F1B MPMD pipeline, asynchronous P2P,
  remat only if memory demands it (it doesn't, which is the point);
- :func:`jax_spmd_pp` — the GSPMD encoding of pipeline parallelism:
  GPipe schedule, synchronous stage-boundary communication, and the
  memory profile that forces full rematerialisation (§2.2.2, §5.3);
- :func:`jax_fsdp` — fully-sharded data parallelism with hierarchical
  weight gathers overlapped against compute;
- :func:`nemo` — Megatron-style interleaved 1F1B with NeMo's fused
  kernels (its own kernel-efficiency curve).

Every function returns a :class:`FrameworkResult` whose ``step_time`` is
the model's prediction and whose ``tflops`` uses the paper's model-FLOPs
metric. ``reported_tflops`` additionally applies the accounting quirk we
reverse-engineered from Table 1: NeMo's GPT-3 number includes its
recompute FLOPs (462*9.53/9.78 ~ 451 at model accounting vs the printed
500), so NeMo results carry a remat-inclusive figure too (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses

from repro.cluster.specs import DGX_H100, NodeSpec
from repro.perf import comms
from repro.perf.kernels import JAX_KERNELS, NEMO_KERNELS, KernelModel
from repro.perf.memory import BYTES_PER_PARAM, weights_optimizer_bytes
from repro.perf.pipeline_sim import PipelineSimConfig, SimResult, simulate_pipeline
from repro.perf.transformer import ModelSpec, tflops_per_device
from repro.runtime.executor import CommMode

__all__ = ["FrameworkResult", "jaxpp", "jax_spmd_pp", "jax_fsdp", "nemo"]


@dataclasses.dataclass
class FrameworkResult:
    """One system's predicted performance for one configuration.

    Attributes:
        name: system label.
        step_time: seconds per training step.
        tflops: TFLOPS/device at the paper's model-FLOPs accounting.
        reported_tflops: TFLOPS/device at the accounting the system itself
            reports (differs for NeMo, which counts recompute FLOPs).
        config: echo of the parallelism configuration.
        breakdown: component seconds (pipeline systems only).
        sim: the underlying :class:`SimResult` when one exists.
    """

    name: str
    step_time: float
    tflops: float
    reported_tflops: float
    config: dict
    breakdown: dict | None = None
    sim: SimResult | None = None


def _result(name, model, gbs, n_gpus, step_time, config, breakdown=None, sim=None, remat_fraction=0.0):
    tf = tflops_per_device(model, gbs, step_time, n_gpus)
    reported = tf
    if remat_fraction > 0.0:
        # remat-inclusive ("hardware") accounting: the forward is executed
        # (1 + extra) times, backward twice that work
        reported = tf * (3.0 + remat_fraction) / 3.0
    return FrameworkResult(name, step_time, tf, reported, config, breakdown, sim)


def jaxpp(
    model: ModelSpec,
    pp: int,
    tp: int,
    dp: int = 1,
    v: int = 1,
    mbs: int = 1,
    n_mbs: int = 1,
    node: NodeSpec = DGX_H100,
    schedule: str | None = None,
) -> FrameworkResult:
    """JaxPP: MPMD interleaved 1F1B with asynchronous P2P (§5)."""
    if schedule is None:
        schedule = "interleaved" if v > 1 else "1f1b"
    cfg = PipelineSimConfig(
        model=model, node=node, pp=pp, tp=tp, dp=dp, v=v, mbs=mbs, n_mbs=n_mbs,
        kernels=JAX_KERNELS, schedule=schedule, comm_mode=CommMode.ASYNC,
    )
    sim = simulate_pipeline(cfg)
    # JAX-stack results report model-FLOPs throughput (Table 1 decoding)
    return _result(
        "JaxPP", model, cfg.global_batch, cfg.n_gpus, sim.step_time,
        dict(pp=pp, tp=tp, dp=dp, v=v, mbs=mbs, ga=n_mbs),
        breakdown=sim.breakdown, sim=sim,
    )


def jax_spmd_pp(
    model: ModelSpec,
    pp: int,
    tp: int,
    dp: int = 1,
    mbs: int = 1,
    n_mbs: int = 1,
    node: NodeSpec = DGX_H100,
) -> FrameworkResult:
    """The SPMD (GSPMD-encoded) pipeline baseline (§2.2.2).

    GPipe schedule (autodiff of the stacked-weight loop yields exactly
    this), synchronous sends/receives at every loop iteration, and —
    because every microbatch's activations stay live until the backward
    loop — full rematerialisation.
    """
    cfg = PipelineSimConfig(
        model=model, node=node, pp=pp, tp=tp, dp=dp, v=1, mbs=mbs, n_mbs=n_mbs,
        kernels=JAX_KERNELS, schedule="gpipe", comm_mode=CommMode.SYNC,
    )
    sim = simulate_pipeline(cfg)
    # SPMD lockstep: every loop iteration synchronises all groups; idle
    # groups execute discarded work but cannot run ahead. The makespan of
    # the GPipe schedule under SYNC comms captures this already. Reported
    # throughput uses model accounting (the paper's 316 TF at 13.96s
    # decodes exactly so), even though the system runs full remat.
    return _result(
        "JAX SPMD PP", model, cfg.global_batch, cfg.n_gpus, sim.step_time,
        dict(pp=pp, tp=tp, dp=dp, v=1, mbs=mbs, ga=n_mbs),
        breakdown=sim.breakdown, sim=sim,
    )


def nemo(
    model: ModelSpec,
    pp: int,
    tp: int,
    dp: int = 1,
    v: int = 1,
    mbs: int = 1,
    n_mbs: int = 1,
    node: NodeSpec = DGX_H100,
) -> FrameworkResult:
    """NeMo/Megatron: interleaved 1F1B with fused custom kernels (§5.2).

    NeMo's published configs enable selective recompute for GPT-3-scale
    models; its reported TFLOPS include those FLOPs (see module docstring).
    """
    cfg = PipelineSimConfig(
        model=model, node=node, pp=pp, tp=tp, dp=dp, v=v, mbs=mbs, n_mbs=n_mbs,
        kernels=NEMO_KERNELS,
        schedule="interleaved" if v > 1 else "1f1b",
        comm_mode=CommMode.ASYNC,
        opt_shard=dp,  # NeMo's distributed optimizer (ZeRO-1 over DP)
    )
    sim = simulate_pipeline(cfg)
    # NeMo's GPT-3 recipes enable selective (attention) recompute; the
    # recompute costs ~10% of a forward pass, and NeMo's *reported* TFLOPS
    # use Megatron's hardware-FLOPs formula which includes those + softmax
    # terms (the factor Table 1 decodes to: 500 printed vs ~451 at model
    # accounting). GPT-3-class models (tied embeddings here) trip this.
    selective_compute_extra = 0.10 if model.tied_embeddings else 0.0
    reporting_extra = 0.33 if model.tied_embeddings else 0.0
    step = sim.step_time + selective_compute_extra * _fwd_compute_time(cfg)
    return _result(
        "NeMo", model, cfg.global_batch, cfg.n_gpus, step,
        dict(pp=pp, tp=tp, dp=dp, v=v, mbs=mbs, ga=n_mbs),
        breakdown=sim.breakdown, sim=sim,
        remat_fraction=sim.remat.extra_fwd_fraction + reporting_extra,
    )


def _fwd_compute_time(cfg: PipelineSimConfig) -> float:
    """Whole-model forward compute seconds for one full step on one device
    (used to price selective recompute)."""
    kern, model, gpu = cfg.kernels, cfg.model, cfg.node.gpu
    per_chunk = kern.block_time(model, gpu, cfg.layers_per_chunk, cfg.mbs, cfg.tp, "fwd")
    return per_chunk * cfg.v * cfg.n_mbs


# ---------------------------------------------------------------------------
# JAX FSDP (fully-sharded data parallelism)
# ---------------------------------------------------------------------------

#: fraction of communication time that overlaps with compute
FSDP_OVERLAP = 0.62
#: per-step fixed overhead (dispatch of the fused program, host sync)
FSDP_FIXED_S = 0.15
#: per-model efficiency of the XLA FSDP path: the longer Llama2 sequences
#: push activation memory past HBM, forcing XLA to rematerialise attention
#: blocks (~10% throughput cost the pipeline-parallel TP runs don't pay)
FSDP_MODEL_FACTORS = {"Llama2 70B": 0.90}
#: mild fabric/straggler degradation per doubling of cluster size past 64
FSDP_SCALE_PER_DOUBLING = 0.04


def jax_fsdp(
    model: ModelSpec,
    n_gpus: int,
    global_batch: int,
    fsdp_group: int | None = None,
    node: NodeSpec = DGX_H100,
) -> FrameworkResult:
    """JAX FSDP: ZeRO-3-style weight sharding with hierarchical gathers.

    Per layer and direction, the weights are all-gathered (and gradients
    reduce-scattered on the way back); NVSwitch handles the intra-node
    share while each GPU's IB rail carries ``1/gpus_per_node`` of the
    cross-node share. Communication overlaps compute with efficiency
    :data:`FSDP_OVERLAP`.
    """
    if fsdp_group is None:
        fsdp_group = min(n_gpus, 128)  # Table 1's FSDP column
    gpn = node.gpus_per_node
    gpu = node.gpu
    kern: KernelModel = JAX_KERNELS

    mbs_local = global_batch // n_gpus
    if mbs_local < 1:
        raise ValueError("global batch smaller than device count")
    tokens = mbs_local * model.seq
    factor = FSDP_MODEL_FACTORS.get(model.name, 1.0)
    eff = kern.efficiency(model, mbs_local, tp=1) * factor

    layer_fwd_t = kern.block_time(model, gpu, 1, mbs_local, 1, "fwd") / factor
    w_bytes = model.layer_params * 2.0  # bf16 gathered weights
    nodes_in_group = max(1, fsdp_group // gpn)
    cross = (nodes_in_group - 1) / nodes_in_group
    intra = (gpn - 1) / gpn
    gather_t = (
        w_bytes * cross / gpn / node.ib_bw_per_gpu
        + w_bytes * intra / gpu.nvlink_bw
        + node.ib_latency * 2 * nodes_in_group
    )
    rs_t = gather_t * 2.0  # fp32 gradient reduce-scatter moves 2x the bytes

    def exposed(compute: float, comm: float) -> float:
        # partial overlap: OVERLAP=1 -> max(compute, comm); 0 -> sum
        return max(compute, comm) + (1.0 - FSDP_OVERLAP) * min(compute, comm)

    import math

    scale = 1.0 + FSDP_SCALE_PER_DOUBLING * max(0.0, math.log2(n_gpus / 64))
    fwd = model.n_layers * exposed(layer_fwd_t, gather_t * scale)
    bwd = model.n_layers * exposed(2 * layer_fwd_t, (gather_t + rs_t) * scale)
    logits = 3.0 * model.logits_fwd_flops(tokens) / (gpu.peak_flops * eff)
    # gradient sync beyond the FSDP group (pure DP replicas)
    dp_replicas = n_gpus // fsdp_group
    dp_t = comms.dp_gradient_allreduce(model, node, pp=1, tp=fsdp_group, dp=dp_replicas)
    opt = model.total_params / fsdp_group * BYTES_PER_PARAM * 3.0 / gpu.hbm_bw
    step = fwd + bwd + logits + dp_t + opt + FSDP_FIXED_S * scale

    return _result(
        "JAX FSDP", model, global_batch, n_gpus, step,
        dict(fsdp=fsdp_group, dp=dp_replicas, gbs=global_batch),
        breakdown={
            "compute": model.n_layers * 3 * layer_fwd_t + logits,
            "exposed_comm": step - model.n_layers * 3 * layer_fwd_t - logits - dp_t - opt - FSDP_FIXED_S,
            "dp_allreduce": dp_t,
            "optimizer": opt,
        },
    )
