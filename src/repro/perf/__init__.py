"""Analytic performance model + discrete-event pipeline simulator.

Regenerates the paper's evaluation (Figures 6-10, Table 1) on the
published DGX-H100/EOS hardware constants. Correctness-scale execution is
in :mod:`repro.core`/:mod:`repro.runtime`; this package prices the same
schedules at 175B scale.
"""

from repro.perf.frameworks import FrameworkResult, jax_fsdp, jax_spmd_pp, jaxpp, nemo
from repro.perf.kernels import JAX_KERNELS, NEMO_KERNELS, KernelModel
from repro.perf.memory import RematDecision, decide_remat
from repro.perf.pipeline_sim import (
    PipelineSimConfig,
    SimResult,
    price_schedule,
    simulate_pipeline,
)
from repro.perf.transformer import (
    GPT3_175B,
    LLAMA2_70B,
    ModelSpec,
    model_flops_per_step,
    tflops_per_device,
)

__all__ = [
    "GPT3_175B", "LLAMA2_70B", "ModelSpec",
    "model_flops_per_step", "tflops_per_device",
    "KernelModel", "JAX_KERNELS", "NEMO_KERNELS",
    "RematDecision", "decide_remat",
    "PipelineSimConfig", "SimResult", "simulate_pipeline", "price_schedule",
    "FrameworkResult", "jaxpp", "jax_spmd_pp", "jax_fsdp", "nemo",
]
