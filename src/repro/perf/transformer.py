"""Model arithmetic for the paper's workloads: GPT-3 175B and Llama2 70B.

Everything downstream (kernel times, memory, TFLOPS metrics) derives from
the op-level FLOP and byte counts here. The throughput metric matches the
convention the paper's Table 1 numbers decode to: **model FLOPs** =
forward + backward (no rematerialisation), including the attention
quadratic term and the logits projection — dividing Table 1's step times
into this quantity reproduces the printed TFLOPS/device to within 1%.
"""

from __future__ import annotations

import dataclasses

__all__ = ["ModelSpec", "GPT3_175B", "LLAMA2_70B", "model_flops_per_step", "tflops_per_device"]


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """A decoder-only transformer.

    Attributes:
        name: display name.
        n_layers / hidden / n_heads / kv_heads: architecture.
        ffn_hidden: MLP inner width.
        n_ffn_matrices: 2 for GELU MLPs (GPT), 3 for SwiGLU (Llama).
        vocab: (padded) vocabulary size.
        seq: training sequence length.
        tied_embeddings: output projection reuses the embedding table.
    """

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    kv_heads: int
    ffn_hidden: int
    n_ffn_matrices: int
    vocab: int
    seq: int
    tied_embeddings: bool

    # -- parameter counts ------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden // self.n_heads

    @property
    def layer_params(self) -> int:
        """Parameters in one transformer block (ignoring small norms)."""
        h, hd = self.hidden, self.head_dim
        attn = h * h + 2 * h * (self.kv_heads * hd) + h * h  # q, kv, out
        mlp = self.n_ffn_matrices * h * self.ffn_hidden
        norms = 2 * h
        return attn + mlp + norms

    @property
    def embedding_params(self) -> int:
        """Token embedding (+ output head when untied)."""
        p = self.vocab * self.hidden
        if not self.tied_embeddings:
            p += self.vocab * self.hidden
        return p

    @property
    def total_params(self) -> int:
        """Total parameter count."""
        return self.n_layers * self.layer_params + self.embedding_params + self.hidden

    # -- FLOPs ------------------------------------------------------------------
    def layer_matmul_flops(self, tokens: int) -> float:
        """Forward FLOPs of one block's parameter matmuls (GEMM-shaped
        work that runs near peak)."""
        h, hd = self.hidden, self.head_dim
        qkv = 2 * tokens * h * (h + 2 * self.kv_heads * hd)
        out = 2 * tokens * h * h
        mlp = 2 * tokens * h * self.ffn_hidden * self.n_ffn_matrices
        return float(qkv + out + mlp)

    def layer_attn_flops(self, tokens: int) -> float:
        """Forward FLOPs of the attention score/context matmuls (the
        quadratic term; fused attention kernels sustain a lower fraction
        of peak than large GEMMs)."""
        s, hd = self.seq, self.head_dim
        return float(2 * 2 * tokens * s * hd * self.n_heads)

    def layer_fwd_flops(self, tokens: int) -> float:
        """Forward FLOPs of one block on ``tokens`` tokens."""
        return self.layer_matmul_flops(tokens) + self.layer_attn_flops(tokens)

    def logits_fwd_flops(self, tokens: int) -> float:
        """Forward FLOPs of the output projection."""
        return float(2 * tokens * self.hidden * self.vocab)

    def fwd_flops(self, tokens: int) -> float:
        """Full-model forward FLOPs on ``tokens`` tokens."""
        return self.n_layers * self.layer_fwd_flops(tokens) + self.logits_fwd_flops(tokens)

    # -- activation bytes -------------------------------------------------------
    def layer_activation_bytes(self, mbs: int, selective_remat: bool = False) -> float:
        """Stored-activation bytes per block per microbatch at BF16
        (Megatron's ``sbh(34 + 5·a·s/h)`` formula; selective remat drops
        the attention quadratic term)."""
        s, h = self.seq, self.hidden
        base = 34.0 * s * mbs * h
        if not selective_remat:
            base += 5.0 * self.n_heads * s * s * mbs
        return base

    def boundary_bytes(self, mbs: int) -> float:
        """Bytes crossing one pipeline-stage boundary per microbatch (the
        hidden-state tensor at BF16)."""
        return 2.0 * mbs * self.seq * self.hidden


# GPT-3 175B (Brown et al. 2020); vocab padded to a TP-friendly 51200 as
# all Megatron-style trainers do.
GPT3_175B = ModelSpec(
    name="GPT-3 175B",
    n_layers=96,
    hidden=12288,
    n_heads=96,
    kv_heads=96,
    ffn_hidden=4 * 12288,
    n_ffn_matrices=2,
    vocab=51200,
    seq=2048,
    tied_embeddings=True,
)

# Llama2 70B (Touvron et al. 2023): GQA with 8 KV heads, SwiGLU MLP.
LLAMA2_70B = ModelSpec(
    name="Llama2 70B",
    n_layers=80,
    hidden=8192,
    n_heads=64,
    kv_heads=8,
    ffn_hidden=28672,
    n_ffn_matrices=3,
    vocab=32000,
    seq=4096,
    tied_embeddings=False,
)


def model_flops_per_step(model: ModelSpec, global_batch: int) -> float:
    """Model FLOPs of one training step: forward + backward (2x forward),
    no rematerialisation — the numerator of the paper's TFLOPS metric."""
    tokens = global_batch * model.seq
    return 3.0 * model.fwd_flops(tokens)


def tflops_per_device(model: ModelSpec, global_batch: int, step_time: float, n_gpus: int) -> float:
    """The paper's throughput metric (TFLOPS / device)."""
    return model_flops_per_step(model, global_batch) / step_time / n_gpus / 1e12
