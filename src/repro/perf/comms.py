"""Communication time models on a topology.

Ring-based collective costs (the NCCL defaults at these scales) plus
point-to-point transfers, with the intra-node (NVLink) / inter-node
(InfiniBand) distinction the paper's actor placement is designed around.
"""

from __future__ import annotations

from repro.cluster.specs import NodeSpec
from repro.perf.transformer import ModelSpec

__all__ = [
    "ring_allreduce_time",
    "ring_allgather_time",
    "tp_allreduce_per_layer",
    "stage_p2p_time",
    "dp_gradient_allreduce",
]


def ring_allreduce_time(nbytes: float, n: int, bw: float, latency: float) -> float:
    """Ring all-reduce: ``2*(n-1)/n`` of the buffer over the slowest link,
    plus ``2*(n-1)`` latency hops."""
    if n <= 1:
        return 0.0
    return 2 * (n - 1) / n * nbytes / bw + 2 * (n - 1) * latency


def ring_allgather_time(nbytes_total: float, n: int, bw: float, latency: float) -> float:
    """Ring all-gather of a buffer whose *gathered* size is
    ``nbytes_total``."""
    if n <= 1:
        return 0.0
    return (n - 1) / n * nbytes_total / bw + (n - 1) * latency


#: fraction of tensor-parallel collective time exposed on the critical
#: path (the rest hides under dependent GEMMs via async launches)
TP_EXPOSED_FRACTION = 0.5


def tp_allreduce_per_layer(
    model: ModelSpec, node: NodeSpec, mbs: int, tp: int, direction: str, latency_s: float
) -> float:
    """Exposed tensor-parallel communication for one transformer block.

    Sequence-parallel accounting (what both Megatron and XLA's partitioner
    produce at these shapes): two reduce-scatter/all-gather pairs per
    direction, each moving ``(tp-1)/tp`` of the activation tensor one way
    over NVLink, partially overlapped with the adjacent GEMMs.
    """
    if tp <= 1:
        return 0.0
    nbytes = 2.0 * mbs * model.seq * model.hidden  # bf16 activations
    one_way = (tp - 1) / tp * nbytes / node.gpu.nvlink_bw + (tp - 1) * node.nvlink_latency
    per = one_way + latency_s  # one collective (rs or ag) + launch cost
    return 2.0 * 2.0 * per * TP_EXPOSED_FRACTION  # 2 pairs per direction


def stage_p2p_time(model: ModelSpec, node: NodeSpec, mbs: int, tp: int, cross_node: bool) -> float:
    """One pipeline-boundary transfer (hidden states for one microbatch).

    The tensor is sharded over TP; each GPU ships its shard on its own
    IB rail (cross-node) or NVLink (same node), so the per-GPU share
    governs the time.
    """
    nbytes = model.boundary_bytes(mbs) / tp
    if cross_node:
        return node.ib_latency + nbytes / node.ib_bw_per_gpu
    return node.nvlink_latency + nbytes / node.gpu.nvlink_bw


def dp_gradient_allreduce(
    model: ModelSpec,
    node: NodeSpec,
    pp: int,
    tp: int,
    dp: int,
    fp32_reduce: bool = False,
    congestion_per_doubling: float = 0.50,
) -> float:
    """End-of-step data-parallel gradient synchronisation.

    Each GPU owns ``params/(pp*tp)`` gradient elements, reduced across the
    ``dp`` replicas over InfiniBand. ``congestion_per_doubling`` models the
    mild fabric-contention growth observed at EOS scale (the 1024-GPU knee
    of Table 1 / Figure 8).
    """
    if dp <= 1:
        return 0.0
    bytes_per_gpu = model.total_params / (pp * tp) * (4.0 if fp32_reduce else 2.0)
    base = ring_allreduce_time(bytes_per_gpu, dp, node.ib_bw_per_gpu, node.ib_latency)
    import math

    congestion = 1.0 + congestion_per_doubling * math.log2(dp)
    return base * congestion
