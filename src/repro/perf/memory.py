"""Device-memory model and the rematerialisation decision (§5.3).

The step-time gap between GPipe-style SPMD pipelining and JaxPP's
Interleaved 1F1B is mostly a *memory* story: GPipe keeps one activation
set per **microbatch** in flight, 1F1B one per **stage** — so at large
gradient-accumulation counts GPipe must rematerialise (recompute the
forward during the backward), costing ≈20% of the step (§5.3, Fig. 10).
This module decides, for a given configuration, whether activations fit
and what remat policy a framework would have to run with.

Accounting (BF16 training, Adam):

- weights+optimizer: 16 bytes/param/GPU-shard (2 bf16 weight + 2 bf16 grad
  + 4 fp32 master + 8 fp32 Adam moments), divided over ``pp*tp`` (and over
  the FSDP group for FSDP);
- activations: flash-attention execution (the paper uses cuDNN attention)
  never materialises the s x s matrix, leaving ~24 bytes/token/hidden per
  block; full rematerialisation stores only the 2-byte block input.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.specs import GpuSpec
from repro.perf.transformer import ModelSpec

__all__ = ["RematDecision", "weights_optimizer_bytes", "activation_bytes_per_block", "decide_remat"]

BYTES_PER_PARAM = 16.0  # 2 bf16 weight + 2 bf16 grad + 12 fp32 master/Adam
WEIGHT_GRAD_BYTES = 4.0  # the unshardable part (bf16 weight + grad)
OPTIMIZER_BYTES = 12.0  # fp32 master + Adam moments (ZeRO-1-shardable)
ACT_COEFF_FLASH = 16.0  # bytes/token/hidden/block (flash attn, no dropout)
ACT_COEFF_FULL_REMAT = 2.0  # only the block input survives
HBM_USABLE_FRACTION = 0.92  # NCCL buffers, workspace, fragmentation


@dataclasses.dataclass(frozen=True)
class RematDecision:
    """Outcome of the memory fit.

    Attributes:
        kind: ``"none"`` or ``"full"``.
        extra_fwd_fraction: additional forward compute per backward pass
            (1.0 = recompute the whole forward).
        weight_bytes / activation_bytes: the accounting behind the call.
        fits: whether the chosen policy fits in HBM at all.
    """

    kind: str
    extra_fwd_fraction: float
    weight_bytes: float
    activation_bytes: float
    fits: bool


def weights_optimizer_bytes(
    model: ModelSpec, pp: int, tp: int, opt_shard: int = 1, shard_extra: int = 1
) -> float:
    """Per-GPU bytes for weights + gradients + optimizer state.

    ``opt_shard`` shards the fp32 master/Adam state across data-parallel
    replicas (Megatron's distributed optimizer / ZeRO-1); ``shard_extra``
    divides *everything* further (full FSDP/ZeRO-3 groups).
    """
    per_param = WEIGHT_GRAD_BYTES + OPTIMIZER_BYTES / max(opt_shard, 1)
    return model.total_params / (pp * tp * shard_extra) * per_param


def activation_bytes_per_block(model: ModelSpec, mbs: int, tp: int, coeff: float = ACT_COEFF_FLASH) -> float:
    """Stored activations for one block, one microbatch, per GPU."""
    return coeff * model.seq * mbs * model.hidden / tp


def decide_remat(
    model: ModelSpec,
    gpu: GpuSpec,
    pp: int,
    tp: int,
    mbs: int,
    layers_per_device: int,
    peak_live_microbatches: float,
    opt_shard: int = 1,
    shard_extra: int = 1,
) -> RematDecision:
    """Choose the cheapest remat policy that fits in device memory.

    ``peak_live_microbatches`` comes from the *schedule* (GPipe: all of
    them; 1F1B: at most the stage count) — see
    :func:`repro.core.schedules.schedule_stats`.
    """
    budget = gpu.hbm_bytes * HBM_USABLE_FRACTION
    w = weights_optimizer_bytes(model, pp, tp, opt_shard, shard_extra)

    def act(coeff: float) -> float:
        per_block = activation_bytes_per_block(model, mbs, tp, coeff)
        return per_block * layers_per_device * peak_live_microbatches

    a_none = act(ACT_COEFF_FLASH)
    if w + a_none <= budget:
        return RematDecision("none", 0.0, w, a_none, True)
    a_full = act(ACT_COEFF_FULL_REMAT)
    return RematDecision("full", 1.0, w, a_full, w + a_full <= budget)
