"""Discrete-event simulation of pipeline training at paper scale.

Reuses the *actual MPMD runtime executor* (:mod:`repro.runtime.executor`)
in simulation mode: tasks carry costs instead of payloads, transfers take
link time from the topology, and the virtual-clock makespan is the step
time. Schedule behaviour (bubbles, warmup, interleaving, overlap of
asynchronous P2P) therefore *emerges* from the same machinery the numeric
runtime uses, rather than from closed-form bubble formulas.

Two entry points share that machinery:

- :func:`simulate_pipeline` prices one full training step of a
  :class:`PipelineSimConfig` (hardware topology, kernels, remat, DP sync);
- :func:`price_schedule` prices a *bare schedule* under an explicit
  per-stage cost table (:class:`repro.core.autotune.CostModel`) — the
  engine behind ``core.autotune``'s ranked search.  It returns the raw
  :class:`~repro.runtime.executor.ExecutionResult`, so callers get the
  wait profile (who parked on what, for how long) alongside the makespan.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.specs import NodeSpec
from repro.cluster.topology import Topology
from repro.core.schedules import (
    BWD,
    BWD_I,
    BWD_W,
    FWD,
    Eager1F1B,
    GPipe,
    Interleaved1F1B,
    InterleavedZB,
    LoopedBFS,
    OneFOneB,
    Schedule,
    ZBH1,
    ZBH2,
    ZBV,
)
from repro.perf import comms
from repro.perf.kernels import KernelModel
from repro.perf.memory import RematDecision, decide_remat
from repro.perf.transformer import ModelSpec
from repro.runtime.clock import CostModel
from repro.runtime.executor import CommMode, MpmdExecutor
from repro.runtime.instructions import BufferRef, Recv, RunTask, Send

__all__ = ["PipelineSimConfig", "SimResult", "simulate_pipeline", "price_schedule"]


@dataclasses.dataclass(frozen=True)
class PipelineSimConfig:
    """One pipeline-parallel training configuration.

    Attributes:
        model: workload (GPT-3 175B, Llama2 70B, ...).
        node: hardware node spec.
        pp / tp / dp: pipeline, tensor, data parallel degrees.
        v: circular repeat (virtual pipeline chunks per actor).
        mbs: microbatch size (sequences).
        n_mbs: microbatches per pipeline per step (gradient accumulation).
        kernels: software-stack kernel model.
        schedule: ``"interleaved"`` / ``"1f1b"`` / ``"gpipe"`` /
            ``"eager1f1b"`` / ``"zbh1"`` / ``"zbh2"`` / ``"zbv"`` /
            ``"looped_bfs"`` / ``"interleaved_zb"``.
        comm_mode: ASYNC (JaxPP overlapped P2P) or SYNC (blocking baseline).
    """

    model: ModelSpec
    node: NodeSpec
    pp: int
    tp: int
    dp: int
    v: int
    mbs: int
    n_mbs: int
    kernels: KernelModel
    schedule: str = "interleaved"
    comm_mode: CommMode = CommMode.ASYNC
    # distributed-optimizer sharding across DP replicas (ZeRO-1); NeMo
    # enables this, plain JaxPP/JAX do not
    opt_shard: int = 1

    @property
    def n_gpus(self) -> int:
        """Total GPU count."""
        return self.pp * self.tp * self.dp

    @property
    def global_batch(self) -> int:
        """Global batch size in sequences."""
        return self.mbs * self.n_mbs * self.dp

    @property
    def layers_per_chunk(self) -> int:
        """Transformer blocks per scheduled task."""
        if self.model.n_layers % (self.pp * self.v) != 0:
            raise ValueError(
                f"{self.model.n_layers} layers do not divide into pp*v = {self.pp * self.v} chunks"
            )
        return self.model.n_layers // (self.pp * self.v)

    def build_schedule(self) -> Schedule:
        """Instantiate the schedule object."""
        if self.schedule == "gpipe":
            if self.v != 1:
                raise ValueError("GPipe has no circular repeat")
            return GPipe(self.pp)
        if self.schedule == "1f1b":
            if self.v != 1:
                raise ValueError("use schedule='interleaved' for v > 1")
            return OneFOneB(self.pp)
        if self.schedule == "eager1f1b":
            if self.v != 1:
                raise ValueError("Eager1F1B has no circular repeat")
            return Eager1F1B(self.pp)
        if self.schedule == "zbh1":
            if self.v != 1:
                raise ValueError("ZB-H1 has no circular repeat")
            return ZBH1(self.pp)
        if self.schedule == "zbh2":
            if self.v != 1:
                raise ValueError("ZB-H2 has no circular repeat")
            return ZBH2(self.pp)
        if self.schedule == "zbv":
            if self.v != 2:
                raise ValueError("ZB-V has exactly two v-shape chunks per actor")
            return ZBV(self.pp)
        if self.schedule == "interleaved":
            return Interleaved1F1B(self.pp, self.v)
        if self.schedule == "looped_bfs":
            return LoopedBFS(self.pp, self.v)
        if self.schedule == "interleaved_zb":
            return InterleavedZB(self.pp, self.v)
        raise ValueError(f"unknown schedule {self.schedule!r}")


@dataclasses.dataclass
class SimResult:
    """Simulation outcome.

    Attributes:
        step_time: end-to-end training-step seconds (pipeline makespan +
            data-parallel gradient sync + optimizer).
        makespan: pipeline-phase virtual time.
        remat: the memory/remat decision applied.
        breakdown: seconds by component on the critical actor —
            ``compute``, ``remat``, ``p2p``, ``bubble``, ``dp_allreduce``,
            ``optimizer``, ``dispatch``.
        p2p_bytes: total point-to-point traffic (bytes).
        n_tasks: scheduled task count per actor.
    """

    step_time: float
    makespan: float
    remat: RematDecision
    breakdown: dict
    p2p_bytes: int
    n_tasks: int


class _TopoCost(CostModel):
    def __init__(self, topo: Topology, kernels: KernelModel):
        self.topo = topo
        self.kernels = kernels

    def task_time(self, cost_hint: float, meta: dict) -> float:
        return cost_hint

    def dispatch_overhead(self) -> float:
        return self.kernels.dispatch_s

    def transfer_time(self, nbytes: int, src: int, dst: int) -> float:
        return self.topo.link(src, dst).transfer_time(nbytes)

    def collective_time(self, nbytes: int, group) -> float:  # pragma: no cover
        return 0.0


def simulate_pipeline(cfg: PipelineSimConfig) -> SimResult:
    """Simulate one training step of ``cfg`` and return timing."""
    model, node, kern = cfg.model, cfg.node, cfg.kernels
    gpu = node.gpu
    sched = cfg.build_schedule()
    n_stages = sched.n_stages
    chunk = cfg.layers_per_chunk
    sched_ir = sched.lower(cfg.n_mbs)

    # ---- memory / remat decision -------------------------------------------
    peak_chunks = sched_ir.peak_live()
    peak_live = max(peak_chunks) / cfg.v if cfg.v > 1 else max(peak_chunks)
    # peak_live is counted in *chunks*; per-device layers = chunk * v.
    remat = decide_remat(
        model, gpu, cfg.pp, cfg.tp, cfg.mbs,
        layers_per_device=chunk * cfg.v,
        peak_live_microbatches=peak_live,
        opt_shard=cfg.opt_shard,
    )

    # ---- per-stage task costs -----------------------------------------------
    tp_fwd = chunk * comms.tp_allreduce_per_layer(model, node, cfg.mbs, cfg.tp, "fwd", kern.allreduce_latency_s)
    tp_bwd = 2.0 * tp_fwd  # backward re-runs both collectives per matmul pair

    def fwd_cost(stage: int) -> float:
        t = kern.block_time(model, gpu, chunk, cfg.mbs, cfg.tp, "fwd") + tp_fwd
        if stage == n_stages - 1:
            t += kern.logits_time(model, gpu, cfg.mbs, cfg.tp, "fwd")
        return t

    def bwd_cost(stage: int) -> float:
        t = kern.block_time(model, gpu, chunk, cfg.mbs, cfg.tp, "bwd") + tp_bwd
        t += remat.extra_fwd_fraction * kern.block_time(model, gpu, chunk, cfg.mbs, cfg.tp, "fwd")
        if stage == n_stages - 1:
            t += kern.logits_time(model, gpu, cfg.mbs, cfg.tp, "bwd")
        return t

    # ---- emit instruction programs from the schedule IR ---------------------
    # the IR's slots are the tasks and its cross-rank edges are the
    # transfers; nothing about unit dependencies is re-derived here
    topo = Topology(cluster=_adhoc_cluster(node, cfg.pp), gpus_per_actor=cfg.tp)
    boundary = model.boundary_bytes(cfg.mbs) / cfg.tp

    ir = sched_ir
    programs: list[list] = [[] for _ in range(cfg.pp)]

    def uid(u) -> str:
        return f"{u.kind}{u.stage}.{u.mb}"

    remat_extra = remat.extra_fwd_fraction * kern.block_time(
        model, gpu, chunk, cfg.mbs, cfg.tp, "fwd"
    )

    def make_task(slot) -> RunTask:
        u = slot.unit
        # cross-rank inputs arrive as recv'd buffers; the weight-gradient
        # half waits on its local input-gradient buffer (ir.buffer_deps)
        in_refs = [BufferRef(uid(d.unit)) for d in ir.buffer_deps(slot)]
        is_remat = False
        if u.kind == FWD:
            cost = fwd_cost(u.stage)
        elif u.kind == BWD:
            cost = bwd_cost(u.stage)
            is_remat = remat.extra_fwd_fraction > 0
        elif u.kind == BWD_I:
            # activation recompute must precede the input gradient, so the
            # remat surcharge lands on this half of the split backward
            cost = (bwd_cost(u.stage) - remat_extra) * sched.bwd_input_fraction + remat_extra
            is_remat = remat.extra_fwd_fraction > 0
        else:  # BWD_W: the deferred, purely local weight-gradient half
            cost = (bwd_cost(u.stage) - remat_extra) * (1.0 - sched.bwd_input_fraction)
        glyph = {FWD: "f", BWD: "b", BWD_I: "bi", BWD_W: "w"}[u.kind]
        return RunTask(
            name=f"{glyph}{u.stage}({u.mb})",
            in_refs=in_refs,
            out_refs=[BufferRef(uid(u))],
            fn=None,
            cost=cost,
            meta={"kind": u.kind, "stage": u.stage, "mb": u.mb,
                  "out_nbytes": [int(boundary) if u.kind != BWD_W else 0],
                  "remat": is_remat},
        )

    # Per-iteration recv->compute->send ordering is only deadlock-free for
    # GPipe's phase-separated structure; under 1F1B-style schedules it is
    # exactly the Figure 5 deadlock. Everything else uses §4.2's global
    # topological emission (valid under both comm modes).
    use_iter_order = cfg.comm_mode is CommMode.SYNC and cfg.schedule == "gpipe"
    if not use_iter_order:
        # JaxPP emission (§4.2): the IR's global topological order,
        # send+recv posted the moment the producer runs -> receivers
        # prefetch.
        for slot in ir.toposort():
            a = slot.rank
            programs[a].append(make_task(slot))
            key = uid(slot.unit)
            for dst in ir.send_dsts(slot):
                programs[a].append(Send(BufferRef(key), dst, key))
                programs[dst].append(Recv(BufferRef(key), a, key, int(boundary)))
    else:
        # Synchronous lockstep (the SPMD-loop encoding of §2.2.2): each
        # iteration is recv -> compute -> send, per actor.
        for a, row in enumerate(ir.slots):
            for slot in row:
                for d in ir.cross_deps(slot):
                    k = uid(d.unit)
                    programs[a].append(Recv(BufferRef(k), d.rank, k, int(boundary)))
                programs[a].append(make_task(slot))
                key = uid(slot.unit)
                for dst in ir.send_dsts(slot):
                    programs[a].append(Send(BufferRef(key), dst, key))

    executor = MpmdExecutor(cfg.pp, cost_model=_TopoCost(topo, kern), comm_mode=cfg.comm_mode)
    res = executor.execute(programs, wake_order=ir.initial_ready_ranks())

    # ---- close the step: DP sync + optimizer --------------------------------
    dp_time = comms.dp_gradient_allreduce(model, node, cfg.pp, cfg.tp, cfg.dp)
    # optimizer: ~3 HBM passes over 16 bytes/param of state
    opt_time = model.total_params / (cfg.pp * cfg.tp) * 16.0 * 3.0 / gpu.hbm_bw
    step_time = res.makespan + dp_time + opt_time

    # ---- breakdown on the critical actor ------------------------------------
    crit = max(range(cfg.pp), key=lambda a: res.actor_finish[a])
    compute = remat_t = 0.0
    for e in res.timeline:
        if e.actor == crit and e.kind == "task":
            dur = e.end - e.start
            if e.meta.get("remat"):
                extra = remat.extra_fwd_fraction * kern.block_time(model, gpu, chunk, cfg.mbs, cfg.tp, "fwd")
                remat_t += extra
                compute += dur - extra
            else:
                compute += dur
    n_tasks_crit = sum(1 for e in res.timeline if e.actor == crit and e.kind == "task")
    dispatch = n_tasks_crit * kern.dispatch_s
    compute -= dispatch
    if cfg.comm_mode is CommMode.SYNC:
        p2p = sum(
            e.end - e.start for e in res.timeline if e.actor == crit and e.kind in ("send", "recv")
        )
    else:
        p2p = 0.0  # overlapped; residual shows up as bubble
    bubble = max(res.makespan - compute - remat_t - dispatch - p2p, 0.0)
    breakdown = {
        "compute": compute,
        "remat": remat_t,
        "p2p": p2p,
        "bubble": bubble,
        "dispatch": dispatch,
        "dp_allreduce": dp_time,
        "optimizer": opt_time,
    }
    return SimResult(
        step_time=step_time,
        makespan=res.makespan,
        remat=remat,
        breakdown=breakdown,
        p2p_bytes=res.p2p_bytes,
        n_tasks=len(ir.slots[0]),
    )


def price_schedule(
    schedule: Schedule,
    n_mbs: int,
    cost_model,
    *,
    dispatch_s: float = 0.0,
    p2p_latency_s: float = 0.0,
    p2p_bandwidth: float = float("inf"),
    comm_mode: CommMode = CommMode.ASYNC,
    tie_break: str = "fifo",
):
    """Price a schedule under an explicit per-stage cost table, on the
    real event engine.

    The schedule's :class:`~repro.core.schedule_ir.ScheduleIR` supplies
    the tasks (its slots) and the transfers (its cross-rank edges); the
    ``cost_model`` — any object with ``unit_time(stage, kind,
    bwd_input_fraction)`` and ``boundary_bytes(stage)``, canonically
    :class:`repro.core.autotune.CostModel` — supplies each task's device
    seconds and each boundary tensor's size.  Emission is §4.2's global
    topological order, identical to :func:`simulate_pipeline`'s, so
    pricing and full-step simulation see the same overlap behaviour.

    Returns the raw :class:`~repro.runtime.executor.ExecutionResult`:
    ``makespan`` is the schedule's pipeline-phase time, and
    ``wait_profile`` / ``parked_by_rank()`` carry the per-resource /
    per-rank parked-time feedback that drives ``core.autotune``'s
    second search round.
    """
    from repro.runtime.clock import LinearCost

    ir = schedule.lower(n_mbs)
    frac = schedule.bwd_input_fraction
    programs: list[list] = [[] for _ in range(ir.n_ranks)]

    def uid(u) -> str:
        return f"{u.kind}{u.stage}.{u.mb}"

    for slot in ir.toposort():
        u = slot.unit
        nbytes = int(cost_model.boundary_bytes(u.stage))
        programs[slot.rank].append(
            RunTask(
                name=f"{u.kind}{u.stage}({u.mb})",
                in_refs=[BufferRef(uid(d.unit)) for d in ir.buffer_deps(slot)],
                out_refs=[BufferRef(uid(u))],
                fn=None,
                cost=cost_model.unit_time(u.stage, u.kind, frac),
                meta={"kind": u.kind, "stage": u.stage, "mb": u.mb,
                      "out_nbytes": [nbytes if u.kind != BWD_W else 0]},
            )
        )
        key = uid(u)
        for dst in ir.send_dsts(slot):
            programs[slot.rank].append(Send(BufferRef(key), dst, key))
            programs[dst].append(Recv(BufferRef(key), slot.rank, key, nbytes))

    executor = MpmdExecutor(
        ir.n_ranks,
        cost_model=LinearCost(
            dispatch=dispatch_s,
            p2p_latency=p2p_latency_s,
            p2p_bandwidth=p2p_bandwidth,
        ),
        comm_mode=comm_mode,
        tie_break=tie_break,
    )
    return executor.execute(programs, wake_order=ir.initial_ready_ranks())


def _adhoc_cluster(node: NodeSpec, n_actors: int):
    """A cluster just big enough for the simulated pipeline (one actor per
    TP group; with tp == gpus/node each actor is one node)."""
    from repro.cluster.specs import ClusterSpec

    return ClusterSpec(name="sim", node=node, n_nodes=max(n_actors, 1))
