"""repro — reproduction of "Scaling Deep Learning Training with MPMD Pipeline
Parallelism" (JaxPP, MLSys 2025).

The package is organised as a stack of substrates mirroring the paper's
system diagram:

- :mod:`repro.ir` — a from-scratch mini-JAX: tracer, typed dataflow IR
  ("Jaxpr"), NumPy interpreter, reverse-mode autodiff, and the
  ``pipeline_yield`` stage-marking primitive.
- :mod:`repro.spmd` — a GSPMD-style named-axis sharding layer: device
  meshes, partition specs, sharding propagation, and a lock-step
  multi-device SPMD executor that inserts collectives automatically.
- :mod:`repro.core` — the paper's contribution: stage splitting, placement
  inference, pipeline schedules (GPipe / 1F1B / Interleaved 1F1B),
  the ``accumulate_grads`` loop, loop commuting for shared weights, task
  graph construction, send/recv inference, buffer liveness, task fusion,
  and the ``RemoteMesh.distributed`` driver API.
- :mod:`repro.runtime` — the single-controller MPMD runtime: per-actor
  fused instruction streams, ordered P2P channels, object stores, and a
  deterministic dataflow executor that doubles as a discrete-event
  performance simulator.
- :mod:`repro.cluster` / :mod:`repro.perf` — hardware topology and the
  analytic performance model used to regenerate the paper's evaluation
  (Figures 6-10 and Table 1) at DGX-H100 scale.
- :mod:`repro.models` — example networks (FFN, mini-GPT) written against
  the public API with logical-axis sharding annotations.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
