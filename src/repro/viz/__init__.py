"""Terminal visualisation of schedules, execution timelines (Fig. 2),
and autotuner reports."""

from repro.viz.ascii import render_schedule, render_timeline, render_tune_report

__all__ = ["render_schedule", "render_timeline", "render_tune_report"]
