"""Terminal visualisation of schedules and execution timelines (Fig. 2)."""

from repro.viz.ascii import render_schedule, render_timeline

__all__ = ["render_schedule", "render_timeline"]
