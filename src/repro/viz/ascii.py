"""ASCII rendering of pipeline schedules and execution timelines.

Reproduces the paper's Figure 2 visually: one row per actor, microbatch
numbers in execution order, forward/backward distinguished — plus a
wall-clock variant driven by the runtime's :class:`TimelineEvent` stream.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.schedules import Schedule
from repro.runtime.executor import TimelineEvent

__all__ = ["render_schedule", "render_timeline"]


def render_schedule(schedule: Schedule, n_mbs: int, width: int | None = None) -> str:
    """Figure-2-style logical timeline of a schedule, drawn from its
    lowered :class:`~repro.core.schedule_ir.ScheduleIR` slot table.

    Each cell is one slot: ``F3`` = forward of microbatch 3 (lowercase for
    backward). Zero-bubble split backwards render as ``i3`` (input
    gradient) and ``w3`` (weight gradient). With circular repeat, the
    chunk index is appended as ``F3'1`` for stage chunk 1. Cells advance
    in per-actor program order with stalls ignored (this is the *logical*
    order the paper's Figure 2 shows, not wall-clock).

    ``width`` limits each row *without* clipping a label mid-cell: labels
    are first abbreviated (the chunk suffix is dropped), and when whole
    cells still do not fit the row ends with ``…`` at a cell boundary.
    """
    glyph = {"fwd": "F", "bwd": "b", "bwd_i": "i", "bwd_w": "w"}
    ir = schedule.lower(n_mbs)
    has_chunks = schedule.n_stages > schedule.n_actors

    def cells_for(row, with_chunk: bool) -> list[str]:
        out = []
        for slot in row:
            u = slot.unit
            tag = f"{glyph.get(u.kind, '?')}{u.mb}"
            if with_chunk:
                tag += f"'{u.stage // schedule.n_actors}"
            out.append(tag)
        return out

    rows = []
    for actor, slot_row in enumerate(ir.slots):
        cells = cells_for(slot_row, has_chunks)
        row = " ".join(cells)
        if width and len(row) > width and has_chunks:
            # abbreviation level 1: drop the chunk suffix
            cells = cells_for(slot_row, False)
            row = " ".join(cells)
        if width and len(row) > width:
            # still too long: keep whole cells and elide at a boundary
            fitted: list[str] = []
            used = 0
            for cell in cells:
                step = len(cell) + (1 if fitted else 0)
                if used + step + 2 > width:  # reserve room for " …"
                    break
                fitted.append(cell)
                used += step
            row = " ".join(fitted) + " …"
        rows.append(f"actor {actor}: {row}")
    return "\n".join(rows)


def render_timeline(
    events: Sequence[TimelineEvent],
    n_actors: int,
    width: int = 100,
    kinds: tuple[str, ...] = ("task",),
) -> str:
    """Wall-clock timeline: one row per actor, proportional to virtual time.

    Task intervals are filled with the first letter of their name (``f``/
    ``b``), idle time with ``.`` — making pipeline bubbles literally
    visible in the terminal, which is how the schedule-comparison example
    shows GPipe's bubble against 1F1B's.
    """
    evs = [e for e in events if e.kind in kinds]
    if not evs:
        return "(empty timeline)"
    t_end = max(e.end for e in evs)
    if t_end <= 0:
        return "(zero-length timeline)"
    scale = width / t_end
    rows = []
    for actor in range(n_actors):
        row = ["."] * width
        for e in evs:
            if e.actor != actor:
                continue
            lo = int(e.start * scale)
            hi = max(lo + 1, int(e.end * scale))
            ch = (e.name[0] if e.name else "#")
            for i in range(lo, min(hi, width)):
                row[i] = ch
        rows.append(f"actor {actor}: |{''.join(row)}|")
    rows.append(f"{'':9}0{'':{width - 8}}t={t_end:.3g}s")
    return "\n".join(rows)
