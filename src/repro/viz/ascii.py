"""ASCII rendering of pipeline schedules, execution timelines, and
autotuner reports.

Reproduces the paper's Figure 2 visually: one row per actor, microbatch
numbers in execution order, forward/backward distinguished — plus a
wall-clock variant driven by the runtime's :class:`TimelineEvent` stream
and a table renderer for :class:`repro.core.autotune.TuneReport`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.schedules import Schedule
from repro.runtime.executor import ExecutionResult, TimelineEvent

__all__ = ["render_schedule", "render_timeline", "render_tune_report"]


def render_schedule(schedule: Schedule, n_mbs: int, width: int | None = None) -> str:
    """Figure-2-style logical timeline of a schedule, drawn from its
    lowered :class:`~repro.core.schedule_ir.ScheduleIR` slot table.

    Each cell is one slot: ``F3`` = forward of microbatch 3 (lowercase for
    backward). Zero-bubble split backwards render as ``i3`` (input
    gradient) and ``w3`` (weight gradient). With circular repeat, the
    chunk index is appended as ``F3'1`` for stage chunk 1. Cells advance
    in per-actor program order with stalls ignored (this is the *logical*
    order the paper's Figure 2 shows, not wall-clock).

    ``width`` limits each row *without* clipping a label mid-cell: labels
    are first abbreviated — the chunk suffix is dropped from chunk-0
    cells only, so two chunks of the same microbatch on one rank (the
    v-shape and interleaved placements) stay distinguishable — and when
    whole cells still do not fit the row ends with ``…`` at a cell
    boundary.
    """
    glyph = {"fwd": "F", "bwd": "b", "bwd_i": "i", "bwd_w": "w"}
    ir = schedule.lower(n_mbs)
    has_chunks = schedule.n_stages > schedule.n_actors

    def chunk_of(stage: int) -> int:
        # chunk index on its owning rank, in that rank's stage order —
        # round-robin placements count s // p; the v-shape counts how
        # many of the rank's stages precede s
        rank = schedule.actor_of_stage(stage)
        return schedule.stages_of_actor(rank).index(stage)

    def cells_for(row, chunk_mode: str) -> list[str]:
        out = []
        for slot in row:
            u = slot.unit
            tag = f"{glyph.get(u.kind, '?')}{u.mb}"
            if chunk_mode != "none" and has_chunks:
                c = chunk_of(u.stage)
                if chunk_mode == "full" or c > 0:
                    tag += f"'{c}"
            out.append(tag)
        return out

    rows = []
    for actor, slot_row in enumerate(ir.slots):
        cells = cells_for(slot_row, "full" if has_chunks else "none")
        row = " ".join(cells)
        if width and len(row) > width and has_chunks:
            # abbreviation level 1: drop the chunk suffix from chunk-0
            # cells (chunk > 0 keeps it — two chunks of one microbatch on
            # a rank must not collapse into identical labels)
            cells = cells_for(slot_row, "minimal")
            row = " ".join(cells)
        if width and len(row) > width:
            # still too long: keep whole cells and elide at a boundary
            fitted: list[str] = []
            used = 0
            for cell in cells:
                step = len(cell) + (1 if fitted else 0)
                if used + step + 2 > width:  # reserve room for " …"
                    break
                fitted.append(cell)
                used += step
            row = " ".join(fitted) + " …" if fitted else "…"
        rows.append(f"actor {actor}: {row}")
    return "\n".join(rows)


def render_tune_report(report, width: int = 100) -> str:
    """ASCII table of a :class:`repro.core.autotune.TuneReport`.

    One row per candidate, feasible candidates ranked by makespan with
    the relative slowdown vs the winner, then excluded candidates with
    their reason (memory budget, shape constraint).  Schedule names
    longer than the name column are elided with ``…`` rather than
    clipped mid-word.
    """
    name_w = max(20, min(30, max((len(e.name) for e in report.entries), default=20)))

    def fit(name: str) -> str:
        return name if len(name) <= name_w else name[: name_w - 1] + "…"

    header = (
        f"{'rank':>4}  {'schedule':<{name_w}} {'makespan':>10} {'vs best':>8} "
        f"{'peak act':>10} {'rnd':>3}  notes"
    )
    lines = [header, "-" * len(header)]
    best = None
    pos = 0
    for e in report.entries:
        if e.feasible:
            pos += 1
            if best is None:
                best = e.makespan
            rel = f"+{(e.makespan / best - 1.0) * 100.0:.1f}%" if best else "-"
            lines.append(
                f"{pos:>4}  {fit(e.name):<{name_w}} {e.makespan:>10.4g} {rel:>8} "
                f"{e.peak_act_bytes:>10.4g} {e.round:>3}  "
                + ("wait-profile proposal" if e.round else "")
            )
        else:
            reason = e.reason.split("\n")[0]
            budget = max(24, width - name_w - 44)
            if len(reason) > budget:
                reason = reason[: budget - 1] + "…"
            lines.append(
                f"{'-':>4}  {fit(e.name):<{name_w}} {'excluded':>10} {'-':>8} "
                f"{e.peak_act_bytes:>10.4g} {e.round:>3}  {reason}"
            )
    if report.memory_budget is not None:
        lines.append(
            f"memory budget: {report.memory_budget:.4g} activation bytes/rank"
        )
    if report.tie_break_visits:
        visits = ", ".join(
            f"{k}={v}" for k, v in sorted(report.tie_break_visits.items())
        )
        lines.append(
            f"tie-break sweep (scheduler visits, results identical): {visits} "
            f"-> {report.tie_break}"
        )
    return "\n".join(lines)


def render_timeline(
    events: "Sequence[TimelineEvent] | ExecutionResult",
    n_actors: int | None = None,
    width: int = 100,
    kinds: tuple[str, ...] = ("task",),
) -> str:
    """Wall-clock timeline: one row per actor, proportional to time.

    Task intervals are filled with the first letter of their name (``f``/
    ``b``), idle time with ``.`` — making pipeline bubbles literally
    visible in the terminal, which is how the schedule-comparison example
    shows GPipe's bubble against 1F1B's.

    ``events`` may be a raw event list or a whole
    :class:`~repro.runtime.executor.ExecutionResult` (``n_actors`` then
    defaults to the result's actor count).  Time is whatever the events
    carry: virtual seconds from the simulator, *real* wall-clock seconds
    from a measured ``engine="mp"`` run — the same renderer draws both.
    """
    if isinstance(events, ExecutionResult):
        if n_actors is None:
            n_actors = len(events.actor_finish)
        events = events.timeline
    evs = [e for e in events if e.kind in kinds]
    if n_actors is None:
        n_actors = 1 + max((e.actor for e in evs), default=-1)
    if not evs:
        return "(empty timeline)"
    t_end = max(e.end for e in evs)
    if t_end <= 0:
        return "(zero-length timeline)"
    scale = width / t_end
    rows = []
    for actor in range(n_actors):
        row = ["."] * width
        for e in evs:
            if e.actor != actor:
                continue
            lo = int(e.start * scale)
            hi = max(lo + 1, int(e.end * scale))
            ch = (e.name[0] if e.name else "#")
            for i in range(lo, min(hi, width)):
                row[i] = ch
        rows.append(f"actor {actor}: |{''.join(row)}|")
    rows.append(f"{'':9}0{'':{width - 8}}t={t_end:.3g}s")
    return "\n".join(rows)
