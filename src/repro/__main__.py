"""Artefact regenerator CLI: ``python -m repro <artefact>``.

Regenerates the paper's evaluation artefacts without pytest::

    python -m repro table1
    python -m repro fig6 fig8
    python -m repro all

and the generated documentation::

    python -m repro docs-schedules   # rewrites docs/SCHEDULES.md in place

and debugging aids::

    python -m repro dump-codegen     # generated source of the codegen backend

(The benchmark suite under ``benchmarks/`` runs the same computations with
acceptance assertions; this CLI is the quick interactive path.)
"""

from __future__ import annotations

import pathlib
import sys

from repro.perf import GPT3_175B, LLAMA2_70B, jax_fsdp, jax_spmd_pp, jaxpp, nemo


def table1() -> None:
    """Regenerate Table 1."""
    print(f"{'System':<12} {'Model':<7} {'GBS':>5} {'GPUs':>5} {'step(s)':>8} {'TF/dev':>7}")
    for dp in (1, 2, 4, 8, 16):
        r = jaxpp(GPT3_175B, pp=8, tp=8, dp=dp, v=6, mbs=4, n_mbs=32)
        print(f"{'JaxPP':<12} {'gpt3':<7} {128 * dp:>5} {64 * dp:>5} {r.step_time:>8.2f} {r.reported_tflops:>7.0f}")
    for n, grp in ((64, 64), (128, 128), (256, 128), (512, 128), (1024, 128)):
        r = jax_fsdp(GPT3_175B, n, 2 * n, fsdp_group=grp)
        print(f"{'JAX FSDP':<12} {'gpt3':<7} {2 * n:>5} {n:>5} {r.step_time:>8.2f} {r.reported_tflops:>7.0f}")
    r = jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)
    print(f"{'JAX SPMD PP':<12} {'gpt3':<7} {256:>5} {128:>5} {r.step_time:>8.2f} {r.reported_tflops:>7.0f}")
    r = nemo(GPT3_175B, pp=8, tp=4, dp=4, v=2, mbs=1, n_mbs=64)
    print(f"{'NeMo':<12} {'gpt3':<7} {256:>5} {128:>5} {r.step_time:>8.2f} {r.reported_tflops:>7.0f}")
    r = jaxpp(LLAMA2_70B, pp=4, tp=8, dp=2, v=5, mbs=4, n_mbs=16)
    print(f"{'JaxPP':<12} {'llama2':<7} {128:>5} {64:>5} {r.step_time:>8.2f} {r.reported_tflops:>7.0f}")
    r = jax_fsdp(LLAMA2_70B, 64, 128, fsdp_group=64)
    print(f"{'JAX FSDP':<12} {'llama2':<7} {128:>5} {64:>5} {r.step_time:>8.2f} {r.reported_tflops:>7.0f}")
    r = nemo(LLAMA2_70B, pp=4, tp=4, dp=4, v=4, mbs=1, n_mbs=32)
    print(f"{'NeMo':<12} {'llama2':<7} {128:>5} {64:>5} {r.step_time:>8.2f} {r.reported_tflops:>7.0f}")


def fig6() -> None:
    """Regenerate Figure 6."""
    combos = ((1, 128), (2, 64), (4, 32))
    print("circ  " + " ".join(f"{f'{m}-{g}':>8}" for m, g in combos))
    for v in (1, 2, 3, 6, 12):
        tf = [jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=v, mbs=m, n_mbs=g).tflops for m, g in combos]
        print(f"{v:>4}  " + " ".join(f"{x:>8.0f}" for x in tf))


def fig7() -> None:
    """Regenerate Figure 7."""
    print("n_mbs  " + " ".join(f"mbs={m}" for m in (1, 2, 4)))
    for n in (8, 16, 32, 64, 128, 256, 512):
        tf = [jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=m, n_mbs=n).tflops for m in (1, 2, 4)]
        print(f"{n:>5}  " + " ".join(f"{x:>6.0f}" for x in tf))


def fig8() -> None:
    """Regenerate Figure 8."""
    print(f"{'#GPUs':>6} {'JaxPP':>7} {'FSDP':>7}")
    for gpus, dp in ((64, 1), (128, 2), (256, 4), (512, 8), (1024, 16)):
        j = jaxpp(GPT3_175B, pp=8, tp=8, dp=dp, v=6, mbs=4, n_mbs=32)
        f = jax_fsdp(GPT3_175B, gpus, 2 * gpus, fsdp_group=min(gpus, 128))
        print(f"{gpus:>6} {j.tflops:>7.0f} {f.tflops:>7.0f}")


def fig9() -> None:
    """Regenerate Figure 9."""
    print("GPT-3 175B (GBS 256, 128 GPUs):")
    for name, r in [
        ("JAX SPMD PP", jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)),
        ("JAX FSDP", jax_fsdp(GPT3_175B, 128, 256, fsdp_group=128)),
        ("JaxPP", jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32)),
        ("NeMo", nemo(GPT3_175B, pp=8, tp=4, dp=4, v=2, mbs=1, n_mbs=64)),
    ]:
        print(f"  {name:<12} {r.reported_tflops:>6.0f} TF/dev  ({r.step_time:.2f}s)")
    print("Llama2 70B (GBS 128, 64 GPUs):")
    for name, r in [
        ("JAX FSDP", jax_fsdp(LLAMA2_70B, 64, 128, fsdp_group=64)),
        ("JaxPP", jaxpp(LLAMA2_70B, pp=4, tp=8, dp=2, v=5, mbs=4, n_mbs=16)),
        ("NeMo", nemo(LLAMA2_70B, pp=4, tp=4, dp=4, v=4, mbs=1, n_mbs=32)),
    ]:
        print(f"  {name:<12} {r.reported_tflops:>6.0f} TF/dev  ({r.step_time:.2f}s)")


def fig10() -> None:
    """Regenerate Figure 10."""
    spmd = jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)
    jx = jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32)
    print(f"{'segment':<22} {'SPMD PP':>8} {'JaxPP':>8}")
    for key in ("p2p", "remat", "compute", "bubble"):
        print(f"{key:<22} {spmd.breakdown[key]:>8.2f} {jx.breakdown[key]:>8.2f}")
    print(f"{'total step':<22} {spmd.step_time:>8.2f} {jx.step_time:>8.2f}")


def dump_codegen() -> None:
    """Print the generated Python source of the codegen task backend.

    Shows both fusion layers on a small demo: the per-task source one
    ``CodegenProgram`` exec-compiles from a lowered ``LinearProgram``
    (``task_backend="codegen"``), and the whole-mesh driver the in-process
    engine runs under ``codegen_actor=True`` (send/recv pairs collapsed
    into local rebinds)."""
    import numpy as np

    from repro import core, ir
    from repro.ir.codegen import codegen
    from repro.runtime.actorgen import fuse_mesh
    from repro.runtime.instructions import RunTask

    def loss_fn(w1, w2, x):
        h = ir.ops.tanh(ir.ops.matmul(x, w1))
        y = ir.ops.matmul(h, w2)
        return ir.ops.reduce_sum(ir.ops.mul(y, y))

    rng = np.random.RandomState(0)
    w1, w2 = rng.randn(8, 16).astype(np.float32), rng.randn(16, 4).astype(np.float32)
    x = rng.randn(2, 8).astype(np.float32)
    jaxpr, _, _ = ir.trace(ir.value_and_grad(loss_fn), w1, w2, x)
    program = codegen(jaxpr)
    print("== task source: CodegenProgram over value_and_grad(mlp) ==")
    print(program.source)

    def train_step(params, batch):
        def microbatch_grads(mb):
            def mb_loss(p, mb):
                h = ir.pipeline_yield(ir.ops.tanh(ir.ops.matmul(mb, p["w1"])))
                y = ir.ops.matmul(h, p["w2"])
                return ir.ops.reduce_sum(ir.ops.mul(y, y))

            loss, grads = ir.value_and_grad(mb_loss)(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(microbatch_grads, core.GPipe(2))(batch)
        return grads, losses

    params = {"w1": w1, "w2": w2}
    batch = rng.randn(2, 2, 8).astype(np.float32)
    from repro.core.compile import compile_train_step

    tj, _, _ = ir.trace(train_step, params, batch)
    compiled = compile_train_step(tj, core.GPipe(2), task_backend="codegen")
    out_keys = [(s[1], s[2]) for s in compiled.output_sources if s[0] == "buffer"]
    initial = [
        (a, uid) for pl in compiled.input_placements for a, uid in pl
    ] + [(a, uid) for a, uid, _ in compiled.literal_placements]
    driver = fuse_mesh(compiled.programs, out_keys, initial)
    n_tasks = sum(
        isinstance(i, RunTask) for prog in compiled.programs for i in prog
    )
    print(f"== mesh driver: 2-stage GPipe, {driver.n_instructions} instructions"
          f" / {n_tasks} tasks fused ==")
    print(driver.source)


def docs_schedules() -> None:
    """Regenerate ``docs/SCHEDULES.md`` from the live schedule gallery
    (diagrams and stats come from the real implementation, so the page
    cannot drift from the code — CI fails when it is stale)."""
    from repro.docsgen import write_schedules_md

    target = pathlib.Path(__file__).resolve().parents[2] / "docs" / "SCHEDULES.md"
    changed = write_schedules_md(target)
    print(f"{'regenerated' if changed else 'up to date'}: {target}")


ARTEFACTS = {
    "table1": table1, "fig6": fig6, "fig7": fig7,
    "fig8": fig8, "fig9": fig9, "fig10": fig10,
    "docs-schedules": docs_schedules,
    "dump-codegen": dump_codegen,
}


def main(argv: list[str]) -> int:
    """Entry point."""
    targets = argv or ["table1"]
    if targets == ["all"]:
        targets = list(ARTEFACTS)
    for t in targets:
        fn = ARTEFACTS.get(t)
        if fn is None:
            print(f"unknown artefact {t!r}; choose from {sorted(ARTEFACTS)} or 'all'")
            return 2
        print(f"\n=== {t} ===")
        fn()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
