"""Generator for ``docs/SCHEDULES.md`` — diagrams that cannot rot.

``python -m repro docs-schedules`` regenerates the schedule-gallery page
from the *actual* gallery: every ASCII diagram comes from
:func:`repro.viz.render_schedule` over the lowered
:class:`~repro.core.schedule_ir.ScheduleIR`, and every number from
:meth:`ScheduleIR.stats` at a fixed reference configuration.  CI re-runs
the generator and fails on diff, so the page can only ever show what the
code actually schedules.

Everything here is deterministic (fixed configurations, no timestamps,
no environment queries) — byte-identical output across runs is the
contract the freshness check relies on.
"""

from __future__ import annotations

import dataclasses

from repro.core.schedules import (
    Eager1F1B,
    GPipe,
    Interleaved1F1B,
    InterleavedZB,
    LoopedBFS,
    OneFOneB,
    Schedule,
    ZBH1,
    ZBH2,
    ZBV,
)
from repro.viz import render_schedule

__all__ = ["generate_schedules_md", "GALLERY_DOC"]

# reference configuration: 4 ranks, 8 microbatches; two-chunk schedules
# price units at half cost so total work per rank is identical everywhere
P, M = 4, 8
WIDTH = 104


@dataclasses.dataclass(frozen=True)
class _Doc:
    """Hand-written half of one gallery entry (the generated half is the
    diagram + stats)."""

    schedule: Schedule
    config: str  # pipeline_sim config string
    bound: str  # activation bound formula, per rank
    bubble: str  # bubble behaviour in one line
    use_when: str  # when-to-use guidance
    chunked: bool = False  # two stage chunks per rank (unit cost halved)


GALLERY_DOC: tuple[_Doc, ...] = (
    _Doc(
        GPipe(P),
        "gpipe",
        "`n_mbs` — every microbatch's activation is live at the turn",
        "`(p-1)/(m+p-1)` of the step; does not shrink with memory",
        "Debugging baseline, or when `n_mbs` is small and memory is no "
        "concern. Phase-separated structure is the only one that survives "
        "naive synchronous send/recv ordering (Figure 5).",
    ),
    _Doc(
        OneFOneB(P),
        "1f1b",
        "`min(p - rank, n_mbs)` — bounded by *stages*, not microbatches",
        "same as GPipe (`(p-1)/(m+p-1)`); 1F1B buys memory, not bubble",
        "The default workhorse: GPipe's makespan at a 2-3x activation-"
        "memory reduction (§2.2.1). Start here, then trade up.",
    ),
    _Doc(
        Eager1F1B(P),
        "eager1f1b",
        "`min(2(p - 1 - rank) + 1, n_mbs)` — roughly double 1F1B",
        "same uniform-cost makespan as 1F1B; wins once transfers have "
        "latency",
        "Clusters where P2P latency is visible: the doubled warmup posts "
        "sends one hop ahead, hiding transfer latency that 1F1B leaves on "
        "the critical path.",
    ),
    _Doc(
        ZBH1(P),
        "zbh1",
        "`min(p - rank, n_mbs)` — exactly 1F1B's bound",
        "about a third of 1F1B's: cooldown bubble is filled with deferred "
        "`bwd_w` units",
        "Free upgrade from 1F1B whenever the backward can be split "
        "(input-gradient vs weight-gradient): same memory, smaller bubble.",
    ),
    _Doc(
        ZBH2(P),
        "zbh2",
        "`min(2p - 1, n_mbs)` — uniform, roughly double 1F1B",
        "near zero when `n_mbs >> p`: warmup doubled, critical path is a "
        "pure `bwd_i` chain",
        "When activation memory has headroom: the paper's \"no bubble when "
        "memory allows\" point on the memory/bubble curve.",
    ),
    _Doc(
        ZBV(P),
        "zbv",
        "measured per rank; ~`2p` *chunk* activations = 1F1B's byte budget "
        "(each chunk holds half the layers)",
        "approaches ZB-H2's bubble at roughly ZB-H1's memory — the V "
        "placement re-enters each rank twice, so `bwd_w` finds bubbles "
        "without hoarding activations",
        "Zero-bubble appetite without ZB-H2's memory bill. Needs the model "
        "split into `2p` stages; the loss lands back on rank 0, so there "
        "is no idle cooldown on the last rank.",
        chunked=True,
    ),
    _Doc(
        Interleaved1F1B(P, 2),
        "interleaved",
        "grows with `v`: about `p·(v-1) + p - rank` chunk activations",
        "shrinks by ~`1/v`: each bubble slot is a chunk, not a full stage",
        "The Megatron default at scale (Fig. 6): more, smaller tasks cut "
        "the bubble at the price of `v`x dispatch overhead and more P2P "
        "traffic. Requires `n_mbs % p == 0`.",
        chunked=True,
    ),
    _Doc(
        LoopedBFS(P, 2),
        "looped_bfs",
        "`n_mbs * v` — GPipe-like, scaled by circular repeat",
        "GPipe's bubble per sweep; worst of the family at equal work",
        "Llama-style breadth-first sweeps: maximum send batching and "
        "perfectly regular per-chunk communication, for interconnects "
        "that prefer few large transfers over overlap.",
        chunked=True,
    ),
    _Doc(
        InterleavedZB(P, 2),
        "interleaved_zb",
        "exactly Interleaved-1F1B's per-rank peaks (measured, preserved "
        "by construction)",
        "below Interleaved-1F1B's at the same memory: downstream chunks "
        "wait only on `bwd_i`",
        "Interleaving's bubble shrink and zero-bubble's deferral stacked: "
        "pick it over plain interleaving whenever the backward splits. "
        "Requires `n_mbs % p == 0`.",
        chunked=True,
    ),
)


def _entry(doc: _Doc) -> str:
    s = doc.schedule
    if doc.chunked:
        stats = s.lower(M).stats(fwd_time=0.5, bwd_time=1.0)
    else:
        stats = s.lower(M).stats(fwd_time=1.0, bwd_time=2.0)
    peaks = stats["peak_live_activations"]
    lines = [
        f"### {s.name}",
        "",
        f"*config string:* `{doc.config}` · *class:* "
        f"`repro.core.{type(s).__name__}` · *backward:* "
        f"{'split (`bwd_i` + `bwd_w`)' if s.backward_split else 'monolithic'}",
        "",
        doc.use_when,
        "",
        "```",
        render_schedule(s, M, width=WIDTH),
        "```",
        "",
        f"- **activation bound / rank:** {doc.bound}",
        f"- **bubble:** {doc.bubble}",
        f"- **at the reference config:** makespan "
        f"{stats['makespan']:g}, bubble fraction "
        f"{stats['bubble_fraction']:.3f}, peak live activations {peaks}",
        "",
    ]
    return "\n".join(lines)


def _summary_table() -> str:
    rows = [
        "| schedule | config | chunks/rank | backward | makespan | bubble | peak live |",
        "|---|---|---|---|---|---|---|",
    ]
    for doc in GALLERY_DOC:
        s = doc.schedule
        if doc.chunked:
            stats = s.lower(M).stats(fwd_time=0.5, bwd_time=1.0)
        else:
            stats = s.lower(M).stats(fwd_time=1.0, bwd_time=2.0)
        rows.append(
            f"| {s.name} | `{doc.config}` | {s.n_stages // s.n_actors} | "
            f"{'split' if s.backward_split else 'monolithic'} | "
            f"{stats['makespan']:g} | {stats['bubble_fraction']:.3f} | "
            f"{max(stats['peak_live_activations'])} |"
        )
    return "\n".join(rows)


def generate_schedules_md() -> str:
    """The full, deterministic content of ``docs/SCHEDULES.md``."""
    head = f"""\
<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python -m repro docs-schedules
     CI fails when this file is stale. -->

# The schedule gallery

Every schedule below is *data, not control flow*: one `units()` method
producing per-rank lists of `(microbatch, stage, kind)` work items.
`Schedule.lower(n_mbs)` turns that into the dependency-explicit
[`ScheduleIR`](../src/repro/core/schedule_ir.py) every consumer walks —
the [compiler](../src/repro/core/compile.py) emits instructions in its
topological order, the [event engine](../src/repro/runtime/executor.py)
seeds its ready-queue from it, the
[simulator](../src/repro/perf/pipeline_sim.py) prices its slots and
cross-rank edges, and [`render_schedule`](../src/repro/viz/ascii.py)
draws the diagrams on this page from it. Adding a schedule touches
nothing downstream — the paper's core flexibility claim.

Diagrams and numbers are generated from the real implementation at the
**reference configuration**: {P} ranks, {M} microbatches, uniform unit
costs `fwd = 1, bwd = 2` (two-chunk schedules use `fwd = 0.5, bwd = 1`
per chunk so total work per rank is identical). Cell notation: `F3` =
forward of microbatch 3, `b3` = backward, `i3`/`w3` = the zero-bubble
input-/weight-gradient halves, `'1` = stage chunk 1 of a circular-repeat
placement.

Rather than reading this page as a menu, let the cost-aware autotuner
choose: [`core.autotune.tune`](../src/repro/core/autotune.py) prices
every schedule here under your per-stage cost model and memory budget
(`schedule="auto"` does it at compile time; see
[`examples/autotune.py`](../examples/autotune.py)).

## At a glance

{_summary_table()}

GPipe and 1F1B share one makespan (1F1B buys memory, not speed); the
zero-bubble family then converts memory headroom back into makespan, and
ZB-V reaches near-ZB-H2 bubble at roughly 1F1B's activation bytes.

## The gallery
"""
    body = "\n".join(_entry(doc) for doc in GALLERY_DOC)
    tail = """\
## Tuning knobs beyond the gallery

- **`Hybrid1F1B(p, warmup)`** — the 1F1B family parameterised by its
  per-rank warmup vector (`OneFOneB` is `warmup[r] = p-1-r`,
  `Eager1F1B` is `2(p-1-r)`). The autotuner's second round proposes
  vectors shifted toward the ranks the wait profile shows parked
  longest; the vector must be rank-wise non-increasing or the schedule
  deadlocks (and `validate_schedule` rejects it).
- **`bwd_input_fraction`** — how split-backward schedules divide the
  full backward cost between `bwd_i` and `bwd_w` (default 0.5).
- **`tie_break`** — the event engine's ready-queue policy
  (`fifo`/`depth_first`/`rank`). Results are dataflow-deterministic and
  identical under every policy; only scheduler visit counts differ, and
  `tune()` reports the cheapest.

## Validation

`validate_schedule(schedule, n_mbs)` runs the graph checks over the
lowered IR: every unit scheduled exactly once on its owning rank, every
dependency edge resolving, executability (a deadlocking order is
rejected before it reaches the runtime), and the per-rank activation
peak against the schedule's declared `activation_bound`.
"""
    return head + "\n" + body + tail


def write_schedules_md(path) -> bool:
    """Write the generated page to ``path``; returns True when the file
    changed (used by the CI freshness check)."""
    import pathlib

    p = pathlib.Path(path)
    new = generate_schedules_md()
    old = p.read_text() if p.exists() else None
    if old == new:
        return False
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(new)
    return True
