"""Train state, optimizers, and learning-rate schedules.

All update math is written with :mod:`repro.ir.ops` over pytrees, so the
optimizer runs *inside* the traced ``train_step`` and is placed by the
compiler's post-loop placement inference (§3.3) — each parameter's update
chain lands on the actor that owns its gradient accumulator.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

import numpy as np

from repro.ir import dtypes, ops, tree_map

__all__ = [
    "TrainState",
    "sgd_init",
    "sgd_apply",
    "adam_init",
    "adam_apply",
    "constant_lr",
    "warmup_cosine_lr",
]


@dataclasses.dataclass(frozen=True)
class TrainState:
    """Parameters plus optimizer state plus step counter (a pytree)."""

    params: Any
    opt_state: Any
    step: Any  # scalar int32


def constant_lr(lr: float) -> Callable[[Any], Any]:
    """Constant learning-rate schedule."""

    def schedule(step: Any) -> Any:
        del step
        return np.float32(lr)

    return schedule


def warmup_cosine_lr(
    peak: float, warmup_steps: int, total_steps: int, floor: float = 0.0
) -> Callable[[Any], Any]:
    """Linear warmup then cosine decay — the LLM-training standard.

    Written with traceable ops so it runs inside the compiled step (the
    replicated "lr_scheduler(state.step)" computation of Figure 4).
    """

    def schedule(step: Any) -> Any:
        s = ops.convert(step, dtypes.float32)
        warm = ops.mul(peak / max(warmup_steps, 1), s)
        progress = ops.div(
            ops.sub(s, float(warmup_steps)), float(max(total_steps - warmup_steps, 1))
        )
        progress = ops.minimum(ops.maximum(progress, 0.0), 1.0)
        cos = ops.mul(0.5, ops.add(1.0, ops.cos(ops.mul(np.pi, progress))))
        decay = ops.add(floor, ops.mul(peak - floor, cos))
        return ops.where(ops.less(s, float(warmup_steps)), warm, decay)

    return schedule


# ---------------------------------------------------------------------------
# SGD (with optional momentum)
# ---------------------------------------------------------------------------

def sgd_init(params: Any, momentum: float = 0.0) -> Any:
    """Optimizer state for SGD: momentum buffers (or ``None``)."""
    if momentum == 0.0:
        return None
    return tree_map(lambda p: np.zeros_like(p), params)


def sgd_apply(
    state: TrainState, grads: Any, lr: Any, momentum: float = 0.0
) -> TrainState:
    """One SGD step; returns the updated :class:`TrainState`."""
    if momentum == 0.0:
        new_params = tree_map(lambda p, g: ops.sub(p, ops.mul(lr, g)), state.params, grads)
        new_opt = state.opt_state
    else:
        new_opt = tree_map(
            lambda m, g: ops.add(ops.mul(momentum, m), g), state.opt_state, grads
        )
        new_params = tree_map(
            lambda p, m: ops.sub(p, ops.mul(lr, m)), state.params, new_opt
        )
    return TrainState(new_params, new_opt, ops.add(state.step, 1))


# ---------------------------------------------------------------------------
# Adam
# ---------------------------------------------------------------------------

def adam_init(params: Any) -> Any:
    """Adam first/second-moment buffers."""
    return {
        "m": tree_map(lambda p: np.zeros_like(p), params),
        "v": tree_map(lambda p: np.zeros_like(p), params),
    }


def adam_apply(
    state: TrainState,
    grads: Any,
    lr: Any,
    b1: float = 0.9,
    b2: float = 0.999,
    eps: float = 1e-8,
) -> TrainState:
    """One Adam step with bias correction."""
    step1 = ops.add(state.step, 1)
    t = ops.convert(step1, dtypes.float32)
    m = tree_map(
        lambda m, g: ops.add(ops.mul(b1, m), ops.mul(1 - b1, g)),
        state.opt_state["m"], grads,
    )
    v = tree_map(
        lambda v, g: ops.add(ops.mul(b2, v), ops.mul(1 - b2, ops.mul(g, g))),
        state.opt_state["v"], grads,
    )
    c1 = ops.sub(1.0, ops.pow(np.float32(b1), t))
    c2 = ops.sub(1.0, ops.pow(np.float32(b2), t))
    new_params = tree_map(
        lambda p, m_, v_: ops.sub(
            p,
            ops.mul(lr, ops.div(ops.div(m_, c1), ops.add(ops.sqrt(ops.div(v_, c2)), eps))),
        ),
        state.params, m, v,
    )
    return TrainState(new_params, {"m": m, "v": v}, step1)
