"""The paper's running example: a feed-forward network (Figures 1 & 4).

Implements ``ffn`` with logical named axes exactly as Figure 1a — no
collectives, runnable on one device — plus a pipeline-staged multi-layer
variant used by the quickstart example and the correctness tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ir import nn, ops, pipeline_yield
from repro.spmd import shard

__all__ = ["ffn", "init_mlp", "mlp_forward", "mlp_loss"]


def ffn(X: Any, W1: Any, W2: Any) -> Any:
    """Figure 1a: two-layer FFN with logical axis annotations.

    ``X: (batch, emb)``, ``W1: (emb, mlp)``, ``W2: (mlp, emb)``. The
    ``shard`` calls carry logical names only; whether this runs data-,
    tensor-, or 2-D-parallel is decided entirely by the mesh shape and the
    logical-axis rules (Figure 1c).
    """
    H1 = nn.relu(ops.matmul(X, W1))
    H1 = shard(H1, ("batch", "mlp"))
    H2 = ops.matmul(H1, W2)
    return shard(H2, ("batch", "emb"))


def init_mlp(
    rng: np.random.RandomState,
    n_stages: int,
    d_in: int,
    d_hidden: int,
    d_out: int,
) -> dict:
    """Initialise a pipeline-staged MLP: one hidden layer per stage."""
    dims = [d_in] + [d_hidden] * (n_stages - 1) + [d_out]
    params = {}
    for i in range(n_stages):
        scale = np.sqrt(2.0 / dims[i])
        params[f"w{i}"] = (rng.randn(dims[i], dims[i + 1]) * scale).astype(np.float32)
        params[f"b{i}"] = np.zeros(dims[i + 1], np.float32)
    return params


def mlp_forward(params: dict, x: Any, n_stages: int) -> Any:
    """Forward pass with a ``pipeline_yield`` after every non-final stage."""
    h = x
    for i in range(n_stages):
        h = ops.add(ops.matmul(h, params[f"w{i}"]), params[f"b{i}"])
        if i < n_stages - 1:
            h = nn.relu(h)
            h = pipeline_yield(h)
    return h


def mlp_loss(params: dict, mb: tuple, n_stages: int) -> Any:
    """Mean-squared-error loss over one microbatch ``(x, y)``."""
    x, y = mb
    out = mlp_forward(params, x, n_stages)
    return ops.mean((out - y) ** 2.0)
