"""Checkpointing: save/restore train state as ``.npz`` archives.

Long-running training jobs — the workload JaxPP targets (§6: "JaxPP
focuses on long-running training jobs") — need restartable state. Pytrees
are flattened to named arrays with a structure manifest so any
:class:`~repro.models.training.TrainState` (or arbitrary pytree of arrays)
round-trips exactly.

Checkpoints are also the recovery substrate
(:mod:`repro.runtime.recovery` replays failed steps from the last
snapshot), which imposes two durability guarantees:

- **Atomic writes.**  :func:`save_checkpoint` writes to a temporary file
  in the target directory and ``os.replace``\\ s it into place, so a
  crash mid-save leaves either the previous checkpoint or the new one —
  never a torn file under the real name.
- **Typed corruption errors.**  :func:`load_checkpoint` raises
  :class:`CheckpointCorruptError` for truncated archives, scribbled
  bytes, or a damaged structure manifest (and
  :class:`CheckpointError` for a missing file), so restore logic can
  fall back to an older snapshot instead of crashing on a bare
  ``zipfile``/``numpy`` internal exception.
"""

from __future__ import annotations

import json
import os
import pathlib
import zipfile
from typing import Any

import numpy as np

from repro.ir.pytree import TreeDef, tree_flatten, tree_unflatten

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointError",
    "CheckpointCorruptError",
]

_KINDS = {"leaf", "none", "list", "tuple", "dict", "namedtuple", "dataclass"}


class CheckpointError(ValueError):
    """A checkpoint could not be read (missing, unreadable, malformed)."""


class CheckpointCorruptError(CheckpointError):
    """The checkpoint file exists but its contents are damaged —
    truncated archive, scribbled bytes, missing arrays, or a structure
    manifest that does not parse.  Restore paths catch this and fall
    back to an older snapshot."""


def _treedef_to_json(td: TreeDef) -> dict:
    meta: Any
    if td.kind == "dict":
        meta = list(td.meta)
    elif td.kind == "namedtuple":
        meta = {"module": td.meta.__module__, "name": td.meta.__qualname__}
    elif td.kind == "dataclass":
        cls, fields = td.meta
        meta = {"module": cls.__module__, "name": cls.__qualname__, "fields": list(fields)}
    else:
        meta = None
    return {"kind": td.kind, "meta": meta, "children": [_treedef_to_json(c) for c in td.children]}


def _resolve(module: str, qualname: str):
    import importlib

    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _treedef_from_json(d: dict) -> TreeDef:
    kind = d["kind"]
    if kind not in _KINDS:
        raise CheckpointCorruptError(
            f"corrupt checkpoint: unknown node kind {kind!r}"
        )
    children = tuple(_treedef_from_json(c) for c in d["children"])
    meta: Any = None
    if kind == "dict":
        meta = tuple(d["meta"])
    elif kind == "namedtuple":
        meta = _resolve(d["meta"]["module"], d["meta"]["name"])
    elif kind == "dataclass":
        meta = (_resolve(d["meta"]["module"], d["meta"]["name"]), tuple(d["meta"]["fields"]))
    return TreeDef(kind, meta, children)


def save_checkpoint(
    path: str | pathlib.Path, state: Any, *, fsync: bool = True
) -> pathlib.Path:
    """Write a pytree of arrays/scalars to ``path`` (``.npz``), atomically.

    The archive is assembled in a same-directory temporary file and
    renamed into place, so a crash mid-save can never leave a torn file
    under the final name.  Like ``np.savez``, a missing ``.npz`` suffix
    is appended; the final path is returned.

    ``fsync=False`` skips flushing the archive to stable storage before
    the rename.  The file is still atomically complete for any reader in
    the surviving process tree (recovery snapshots use this: they guard
    against *worker* death, and a host crash kills the driver doing the
    replaying anyway) — but a machine crash may lose it.  Keep the
    default for checkpoints that must survive a reboot.
    """
    leaves, treedef = tree_flatten(state)
    arrays = {f"leaf_{i}": np.asarray(v) for i, v in enumerate(leaves)}
    arrays["__structure__"] = np.frombuffer(
        json.dumps(_treedef_to_json(treedef)).encode(), dtype=np.uint8
    )
    final = pathlib.Path(path)
    if final.suffix != ".npz":  # np.savez's suffix semantics, preserved
        final = final.with_name(final.name + ".npz")
    tmp = final.with_name(f".{final.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            np.savez(f, **arrays)
            f.flush()
            if fsync:
                os.fsync(f.fileno())
        os.replace(tmp, final)  # atomic within the directory
    finally:
        if tmp.exists():  # a failed write never leaves droppings
            tmp.unlink()
    return final


def load_checkpoint(path: str | pathlib.Path) -> Any:
    """Rebuild the pytree written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: ``path`` does not exist.
        CheckpointCorruptError: the file exists but is damaged —
            truncated or scribbled archive, missing arrays, or an
            unparseable structure manifest.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as data:
            structure = json.loads(
                bytes(data["__structure__"].tobytes()).decode()
            )
            treedef = _treedef_from_json(structure)
            leaves = [data[f"leaf_{i}"] for i in range(treedef.num_leaves)]
            # 0-d arrays come back as arrays; preserve them as numpy scalars
            leaves = [v[()] if v.ndim == 0 else v for v in leaves]
    except CheckpointError:
        raise
    except (zipfile.BadZipFile, KeyError, OSError, EOFError,
            json.JSONDecodeError, UnicodeDecodeError, ValueError) as e:
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: {e}"
        ) from e
    return tree_unflatten(treedef, leaves)
