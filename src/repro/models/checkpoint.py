"""Checkpointing: save/restore train state as ``.npz`` archives.

Long-running training jobs — the workload JaxPP targets (§6: "JaxPP
focuses on long-running training jobs") — need restartable state. Pytrees
are flattened to named arrays with a structure manifest so any
:class:`~repro.models.training.TrainState` (or arbitrary pytree of arrays)
round-trips exactly.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from repro.ir.pytree import TreeDef, tree_flatten, tree_unflatten

__all__ = ["save_checkpoint", "load_checkpoint"]

_KINDS = {"leaf", "none", "list", "tuple", "dict", "namedtuple", "dataclass"}


def _treedef_to_json(td: TreeDef) -> dict:
    meta: Any
    if td.kind == "dict":
        meta = list(td.meta)
    elif td.kind == "namedtuple":
        meta = {"module": td.meta.__module__, "name": td.meta.__qualname__}
    elif td.kind == "dataclass":
        cls, fields = td.meta
        meta = {"module": cls.__module__, "name": cls.__qualname__, "fields": list(fields)}
    else:
        meta = None
    return {"kind": td.kind, "meta": meta, "children": [_treedef_to_json(c) for c in td.children]}


def _resolve(module: str, qualname: str):
    import importlib

    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _treedef_from_json(d: dict) -> TreeDef:
    kind = d["kind"]
    if kind not in _KINDS:
        raise ValueError(f"corrupt checkpoint: unknown node kind {kind!r}")
    children = tuple(_treedef_from_json(c) for c in d["children"])
    meta: Any = None
    if kind == "dict":
        meta = tuple(d["meta"])
    elif kind == "namedtuple":
        meta = _resolve(d["meta"]["module"], d["meta"]["name"])
    elif kind == "dataclass":
        meta = (_resolve(d["meta"]["module"], d["meta"]["name"]), tuple(d["meta"]["fields"]))
    return TreeDef(kind, meta, children)


def save_checkpoint(path: str | pathlib.Path, state: Any) -> None:
    """Write a pytree of arrays/scalars to ``path`` (``.npz``)."""
    leaves, treedef = tree_flatten(state)
    arrays = {f"leaf_{i}": np.asarray(v) for i, v in enumerate(leaves)}
    arrays["__structure__"] = np.frombuffer(
        json.dumps(_treedef_to_json(treedef)).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_checkpoint(path: str | pathlib.Path) -> Any:
    """Rebuild the pytree written by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as data:
        structure = json.loads(bytes(data["__structure__"].tobytes()).decode())
        treedef = _treedef_from_json(structure)
        leaves = [data[f"leaf_{i}"] for i in range(treedef.num_leaves)]
        # 0-d arrays come back as arrays; preserve them as numpy scalars
        leaves = [v[()] if v.ndim == 0 else v for v in leaves]
    return tree_unflatten(treedef, leaves)
