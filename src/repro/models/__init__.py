"""Example models written against the public API: the paper's FFN
(Figures 1 & 4) and a mini-GPT with named-axis sharding, pipeline stage
marks, and optional tied embeddings."""

from repro.models.checkpoint import load_checkpoint, save_checkpoint
from repro.models.mlp import ffn, init_mlp, mlp_forward, mlp_loss
from repro.models.training import (
    TrainState,
    adam_apply,
    adam_init,
    constant_lr,
    sgd_apply,
    sgd_init,
    warmup_cosine_lr,
)
from repro.models.transformer import (
    TransformerConfig,
    init_transformer,
    transformer_forward,
    transformer_loss,
)

__all__ = [
    "save_checkpoint", "load_checkpoint",
    "ffn", "init_mlp", "mlp_forward", "mlp_loss",
    "TrainState", "sgd_init", "sgd_apply", "adam_init", "adam_apply",
    "constant_lr", "warmup_cosine_lr",
    "TransformerConfig", "init_transformer", "transformer_forward",
    "transformer_loss",
]
