"""A GPT-style decoder-only transformer written against the public API.

This is the numeric-mode stand-in for the paper's GPT-3/Llama2 workloads:
the same structure (embeddings, pre-norm blocks with causal attention and
an MLP, optional tied output embedding), annotated with logical axis names
for GSPMD sharding (``batch``/``heads``/``mlp`` map onto ``data``/``model``
mesh axes) and ``pipeline_yield`` boundaries every ``layers_per_stage``
blocks. Tied embeddings exercise the loop-commuting pass exactly like the
paper's §3.4 tied-embedding example.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

import numpy as np

from repro.ir import nn, ops, pipeline_yield
from repro.spmd import shard

__all__ = ["TransformerConfig", "init_transformer", "transformer_forward", "transformer_loss"]


@dataclasses.dataclass(frozen=True)
class TransformerConfig:
    """Mini-GPT hyperparameters.

    ``n_stages`` controls how many pipeline stages the forward pass is cut
    into (``n_layers`` must divide evenly). ``tie_embeddings`` reuses the
    token-embedding table for the output projection (GPT-2 style), putting
    one weight on both the first and last pipeline stage.
    """

    vocab: int = 64
    seq: int = 16
    d_model: int = 32
    n_heads: int = 4
    d_ff: int = 64
    n_layers: int = 4
    n_stages: int = 2
    tie_embeddings: bool = False

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.d_model // self.n_heads

    @property
    def layers_per_stage(self) -> int:
        """Transformer blocks per pipeline stage."""
        if self.n_layers % self.n_stages != 0:
            raise ValueError(
                f"{self.n_layers} layers do not divide into {self.n_stages} stages"
            )
        return self.n_layers // self.n_stages


def init_transformer(rng: np.random.RandomState, cfg: TransformerConfig) -> dict:
    """Initialise parameters (GPT-2-style scaled normal init)."""
    if cfg.d_model % cfg.n_heads != 0:
        raise ValueError("d_model must divide n_heads")
    s = 0.02
    p: dict[str, Any] = {
        "wte": (rng.randn(cfg.vocab, cfg.d_model) * s).astype(np.float32),
        "wpe": (rng.randn(cfg.seq, cfg.d_model) * s).astype(np.float32),
        "ln_f.g": np.ones(cfg.d_model, np.float32),
        "ln_f.b": np.zeros(cfg.d_model, np.float32),
    }
    if not cfg.tie_embeddings:
        p["w_out"] = (rng.randn(cfg.d_model, cfg.vocab) * s).astype(np.float32)
    res = s / math.sqrt(2 * cfg.n_layers)
    for i in range(cfg.n_layers):
        p[f"h{i}.ln1.g"] = np.ones(cfg.d_model, np.float32)
        p[f"h{i}.ln1.b"] = np.zeros(cfg.d_model, np.float32)
        p[f"h{i}.attn.wqkv"] = (rng.randn(cfg.d_model, 3 * cfg.d_model) * s).astype(np.float32)
        p[f"h{i}.attn.wo"] = (rng.randn(cfg.d_model, cfg.d_model) * res).astype(np.float32)
        p[f"h{i}.ln2.g"] = np.ones(cfg.d_model, np.float32)
        p[f"h{i}.ln2.b"] = np.zeros(cfg.d_model, np.float32)
        p[f"h{i}.mlp.wi"] = (rng.randn(cfg.d_model, cfg.d_ff) * s).astype(np.float32)
        p[f"h{i}.mlp.wo"] = (rng.randn(cfg.d_ff, cfg.d_model) * res).astype(np.float32)
    return p


def _attention(p: dict, i: int, h: Any, cfg: TransformerConfig) -> Any:
    """Causal multi-head self-attention with Megatron-style head sharding."""
    B, S, D = ops.shape_of(h)
    nh, hd = cfg.n_heads, cfg.head_dim
    qkv = ops.matmul(h, p[f"h{i}.attn.wqkv"])  # (B, S, 3D)
    qkv = shard(qkv, ("batch", None, "heads_x3"))
    q = ops.slice_(qkv, (0, 0, 0), (B, S, D))
    k = ops.slice_(qkv, (0, 0, D), (B, S, 2 * D))
    v = ops.slice_(qkv, (0, 0, 2 * D), (B, S, 3 * D))

    def split_heads(x):
        x = ops.reshape(x, (B, S, nh, hd))
        return ops.transpose(x, (0, 2, 1, 3))  # (B, nh, S, hd)

    q, k, v = split_heads(q), split_heads(k), split_heads(v)
    q = shard(q, ("batch", "heads", None, None))
    scores = ops.mul(ops.matmul(q, ops.swap_last2(k)), 1.0 / math.sqrt(hd))
    scores = ops.add(scores, nn.causal_mask(S))
    attn = nn.softmax(scores, axis=-1)
    ctx = ops.matmul(attn, v)  # (B, nh, S, hd)
    ctx = ops.transpose(ctx, (0, 2, 1, 3))
    ctx = ops.reshape(ctx, (B, S, D))
    out = ops.matmul(ctx, p[f"h{i}.attn.wo"])
    return shard(out, ("batch", None, "emb"))


def _block(p: dict, i: int, h: Any, cfg: TransformerConfig) -> Any:
    """Pre-norm transformer block."""
    a = _attention(p, i, nn.layer_norm(h, p[f"h{i}.ln1.g"], p[f"h{i}.ln1.b"]), cfg)
    h = ops.add(h, a)
    m = nn.layer_norm(h, p[f"h{i}.ln2.g"], p[f"h{i}.ln2.b"])
    m = nn.gelu(ops.matmul(m, p[f"h{i}.mlp.wi"]))
    m = shard(m, ("batch", None, "mlp"))
    m = ops.matmul(m, p[f"h{i}.mlp.wo"])
    return ops.add(h, m)


def transformer_forward(p: dict, tokens: Any, cfg: TransformerConfig) -> Any:
    """Token ids ``(B, S)`` -> logits ``(B, S, vocab)``.

    Inserts a ``pipeline_yield`` after every ``layers_per_stage`` blocks
    (except the last); the final stage adds the output norm and projection.
    """
    h = ops.add(ops.take(p["wte"], tokens), ops.take(p["wpe"], ops.iota(cfg.seq)))
    h = shard(h, ("batch", None, "emb"))
    per = cfg.layers_per_stage
    for i in range(cfg.n_layers):
        h = _block(p, i, h, cfg)
        if (i + 1) % per == 0 and i + 1 < cfg.n_layers:
            h = pipeline_yield(h)
    h = nn.layer_norm(h, p["ln_f.g"], p["ln_f.b"])
    w_out = ops.transpose(p["wte"]) if cfg.tie_embeddings else p["w_out"]
    return ops.matmul(h, w_out)


def transformer_loss(p: dict, mb: tuple, cfg: TransformerConfig) -> Any:
    """Mean next-token cross-entropy over one microbatch ``(tokens,
    targets)`` of int32 arrays shaped ``(mbsz, seq)``."""
    tokens, targets = mb
    logits = transformer_forward(p, tokens, cfg)
    onehot = nn.one_hot(targets, cfg.vocab)
    return ops.mean(nn.softmax_cross_entropy(logits, onehot))
