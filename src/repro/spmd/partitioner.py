"""The SPMD partitioner: global jaxpr -> per-device local jaxpr.

Given a program over *global* arrays, input partition specs, and logical
axis rules, this pass produces a program over per-device *shards* with
collective operations inserted where the math requires them — the job
GSPMD/XLA performs in the paper's §2.1. The Megatron patterns emerge from
two rules alone:

- ``matmul`` with the contraction dim sharded on both sides computes a
  partial product and appends an ``all_reduce`` (row-parallel layer, and —
  via the backward matmuls — data-parallel gradient synchronisation);
- conflicting or unsupported shardings fall back to replication through
  ``all_gather`` (correctness never depends on a clever rule existing).

The pass is deliberately eager about materialising partial sums (an
``all_reduce`` is emitted at the producing equation rather than deferred),
a documented simplification relative to GSPMD.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.ir.avals import ShapedArray, broadcast_shapes
from repro.ir.jaxpr import Atom, Eqn, Jaxpr, Literal, Var
from repro.spmd import collectives as coll
from repro.spmd.logical import resolve_names
from repro.spmd.mesh import Mesh
from repro.spmd.spec import PSpec, local_shape, merge_specs, replicated

__all__ = ["PartitionedProgram", "partition", "RULES"]


@dataclasses.dataclass
class PartitionedProgram:
    """Result of partitioning: a local jaxpr plus boundary specs.

    Attributes:
        local_jaxpr: program over per-device shards, containing collective
            equations (:mod:`repro.spmd.collectives`).
        mesh: the mesh it was partitioned for.
        in_specs: partition spec of each input.
        out_specs: inferred partition spec of each output.
    """

    local_jaxpr: Jaxpr
    mesh: Mesh
    in_specs: list[PSpec]
    out_specs: list[PSpec]


@dataclasses.dataclass
class Strategy:
    """A rule's decision for one equation.

    Attributes:
        in_specs: specs the inputs must be resharded to first.
        out_specs: specs of the outputs of the local equation.
        local_params: params for the local equation (shape params localized).
        post_all_reduce: per-output list of ``(mesh_axis, op)`` reductions to
            materialise partial results.
    """

    in_specs: list[PSpec]
    out_specs: list[PSpec]
    local_params: dict | None = None
    post_all_reduce: list[list[tuple[str, str]]] | None = None


Rule = Callable[[Mesh, list[PSpec], list[ShapedArray], dict], Strategy | None]

RULES: dict[str, Rule] = {}


def _rule(*names: str):
    def register(fn: Rule) -> Rule:
        for n in names:
            RULES[n] = fn
        return fn

    return register


# ---------------------------------------------------------------------------
# rule helpers
# ---------------------------------------------------------------------------

def _merge_broadcast(mesh: Mesh, in_specs: list[PSpec], in_avals: list[ShapedArray]) -> tuple[list[PSpec], PSpec]:
    """Broadcasting-aware elementwise merge.

    Returns required input specs and the output spec. Dims are aligned from
    the right; size-1 input dims must be replicated; conflicts replicate
    that dim.
    """
    out_shape = broadcast_shapes(*[a.shape for a in in_avals])
    nd = len(out_shape)
    out_dims: list[str | None] = [None] * nd
    for od in range(nd):
        candidates = set()
        for spec, aval in zip(in_specs, in_avals):
            idx = od - (nd - aval.ndim)
            if idx < 0 or aval.shape[idx] != out_shape[od] or aval.shape[idx] == 1:
                continue
            if spec.dims[idx] is not None:
                candidates.add(spec.dims[idx])
        if len(candidates) == 1:
            out_dims[od] = candidates.pop()
    # A mesh axis can shard only one output dim; later duplicates replicate.
    seen: set[str] = set()
    for i, d in enumerate(out_dims):
        if d is not None:
            if d in seen:
                out_dims[i] = None
            seen.add(d)
    out_spec = PSpec(out_dims)
    req = []
    for aval in in_avals:
        dims = []
        for idx in range(aval.ndim):
            od = idx + (nd - aval.ndim)
            if aval.shape[idx] == out_shape[od] and aval.shape[idx] != 1:
                dims.append(out_dims[od])
            else:
                dims.append(None)
        req.append(PSpec(dims))
    return req, out_spec


_ELEMENTWISE = (
    "add", "sub", "mul", "div", "pow", "maximum", "minimum",
    "greater", "greater_equal", "less", "less_equal", "equal", "not_equal",
    "where",
)


@_rule(*_ELEMENTWISE)
def _elementwise_rule(mesh, in_specs, in_avals, params):
    req, out = _merge_broadcast(mesh, in_specs, in_avals)
    return Strategy(req, [out])


_UNARY = (
    "neg", "exp", "log", "tanh", "sqrt", "erf", "sin", "cos", "abs", "sign",
    "logical_not", "convert", "stop_gradient", "pipeline_yield",
)


@_rule(*_UNARY)
def _unary_rule(mesh, in_specs, in_avals, params):
    return Strategy([in_specs[0]], [in_specs[0]])


@_rule("matmul")
def _matmul_rule(mesh, in_specs, in_avals, params):
    xs, ys = in_specs
    xa, ya = in_avals
    # Batch dims: elementwise merge over leading dims.
    batch_shape = broadcast_shapes(xa.shape[:-2], ya.shape[:-2])
    nb = len(batch_shape)

    def batch_dim(spec, aval, od):
        idx = od - (nb - (aval.ndim - 2))
        if idx < 0 or aval.shape[idx] == 1:
            return None
        return spec.dims[idx]

    out_batch: list[str | None] = []
    for od in range(nb):
        cands = {d for d in (batch_dim(xs, xa, od), batch_dim(ys, ya, od)) if d is not None}
        out_batch.append(cands.pop() if len(cands) == 1 else None)

    kx, ky = xs.dims[-1], ys.dims[-2]
    m, n = xs.dims[-2], ys.dims[-1]
    post: list[tuple[str, str]] = []
    if kx is not None and kx == ky:
        # Contraction sharded on both sides: partial product + all-reduce.
        k_req = kx
        post.append((kx, "sum"))
    else:
        k_req = None  # gather whichever side is sharded on k

    used = set(out_batch) - {None}
    if k_req is not None:
        used.add(k_req)
    if m in used:
        m = None
    if m is not None:
        used.add(m)
    if n in used:
        n = None

    # Required input specs: batch dims aligned to out_batch, then (m, k)/(k, n).
    def req_batch(aval, od_count):
        dims = []
        for idx in range(od_count):
            od = idx + (nb - od_count)
            if aval.shape[idx] == 1:
                dims.append(None)
            else:
                dims.append(out_batch[od])
        return dims

    req_x = PSpec(req_batch(xa, xa.ndim - 2) + [m, k_req])
    req_y = PSpec(req_batch(ya, ya.ndim - 2) + [k_req, n])
    out_spec = PSpec(out_batch + [m, n])
    return Strategy([req_x, req_y], [out_spec], post_all_reduce=[post])


def _make_reduce_rule(op: str) -> Rule:
    def rule(mesh, in_specs, in_avals, params):
        spec = in_specs[0]
        axes, keepdims = params["axes"], params["keepdims"]
        post = []
        out_dims = []
        for i, d in enumerate(spec.dims):
            if i in axes:
                if d is not None:
                    post.append((d, op))
                if keepdims:
                    out_dims.append(None)
            else:
                out_dims.append(d)
        return Strategy([spec], [PSpec(out_dims)], post_all_reduce=[post])

    return rule


RULES["reduce_sum"] = _make_reduce_rule("sum")
RULES["reduce_max"] = _make_reduce_rule("max")


@_rule("transpose")
def _transpose_rule(mesh, in_specs, in_avals, params):
    spec = in_specs[0]
    out = PSpec([spec.dims[p] for p in params["perm"]])
    return Strategy([spec], [out])


@_rule("broadcast_to")
def _broadcast_rule(mesh, in_specs, in_avals, params):
    spec, aval = in_specs[0], in_avals[0]
    shape = params["shape"]
    nd = len(shape)
    req_dims, out_dims = [], [None] * nd
    for idx in range(aval.ndim):
        od = idx + (nd - aval.ndim)
        if aval.shape[idx] == shape[od] and aval.shape[idx] != 1:
            out_dims[od] = spec.dims[idx]
            req_dims.append(spec.dims[idx])
        else:
            req_dims.append(None)
    req = PSpec(req_dims)
    out = PSpec(out_dims)
    local = dict(params, shape=local_shape(ShapedArray(tuple(shape), aval.dtype), out, mesh))
    return Strategy([req], [out], local_params=local)


def _reshape_segments(in_shape, out_shape):
    """Greedy factorization: yields (in_range, out_range) segments whose
    element counts match minimally."""
    segs = []
    i = j = 0
    while i < len(in_shape) or j < len(out_shape):
        i0, j0 = i, j
        pi = in_shape[i] if i < len(in_shape) else 1
        pj = out_shape[j] if j < len(out_shape) else 1
        i, j = i + (i < len(in_shape)), j + (j < len(out_shape))
        while pi != pj:
            if pi < pj and i < len(in_shape):
                pi *= in_shape[i]
                i += 1
            elif pj < pi and j < len(out_shape):
                pj *= out_shape[j]
                j += 1
            else:
                return None  # trailing ones etc.: give up, fall back
        segs.append(((i0, i), (j0, j)))
    return segs


@_rule("reshape")
def _reshape_rule(mesh, in_specs, in_avals, params):
    spec, aval = in_specs[0], in_avals[0]
    new_sizes = params["new_sizes"]
    if spec.is_replicated:
        return Strategy([spec], [replicated(len(new_sizes))])
    segs = _reshape_segments(aval.shape, new_sizes)
    if segs is None:
        return None
    out_dims: list[str | None] = [None] * len(new_sizes)
    req_dims = list(spec.dims)
    for (i0, i1), (j0, j1) in segs:
        sharded = [(k, spec.dims[k]) for k in range(i0, i1) if spec.dims[k] is not None]
        if not sharded:
            continue
        if len(sharded) > 1 or sharded[0][0] != i0:
            # Sharding of a non-leading factor does not survive a reshape:
            # fall back to gathering those dims.
            for k, _ in sharded:
                req_dims[k] = None
            continue
        axis = sharded[0][1]
        size = mesh.axis_size(axis)
        if j1 > j0 and new_sizes[j0] % size == 0:
            out_dims[j0] = axis
        else:
            req_dims[i0] = None
    req = PSpec(req_dims)
    out = PSpec(out_dims)
    local = dict(params, new_sizes=local_shape(ShapedArray(tuple(new_sizes), aval.dtype), out, mesh))
    return Strategy([req], [out], local_params=local)


@_rule("concatenate")
def _concat_rule(mesh, in_specs, in_avals, params):
    axis = params["axis"]
    merged: PSpec | None = in_specs[0].with_dim(axis, None)
    for s in in_specs[1:]:
        merged = merge_specs(merged, s.with_dim(axis, None)) if merged else None
    if merged is None:
        merged = replicated(in_avals[0].ndim)
    merged = merged.with_dim(axis, None)
    return Strategy([merged] * len(in_specs), [merged])


@_rule("slice")
def _slice_rule(mesh, in_specs, in_avals, params):
    spec, aval = in_specs[0], in_avals[0]
    starts, limits = params["starts"], params["limits"]
    req_dims, out_dims = [], []
    l_starts, l_limits = [], []
    for d in range(aval.ndim):
        full = starts[d] == 0 and limits[d] == aval.shape[d]
        if full and spec.dims[d] is not None:
            axis = spec.dims[d]
            req_dims.append(axis)
            out_dims.append(axis)
            loc = aval.shape[d] // mesh.axis_size(axis)
            l_starts.append(0)
            l_limits.append(loc)
        else:
            req_dims.append(None)
            out_dims.append(None)
            l_starts.append(starts[d])
            l_limits.append(limits[d])
    return Strategy(
        [PSpec(req_dims)], [PSpec(out_dims)],
        local_params=dict(starts=tuple(l_starts), limits=tuple(l_limits)),
    )


@_rule("take")
def _take_rule(mesh, in_specs, in_avals, params):
    table_spec, idx_spec = in_specs
    # Vocab dim must be replicated; trailing table dims may stay sharded.
    req_table = table_spec.with_dim(0, None)
    out = PSpec(tuple(idx_spec.dims) + tuple(req_table.dims[1:]))
    return Strategy([req_table, idx_spec], [out])


@_rule("scatter_add")
def _scatter_rule(mesh, in_specs, in_avals, params):
    idx_spec, upd_spec = in_specs
    idx_nd = in_avals[0].ndim
    # Require indices replicated; updates' leading (index-shaped) dims
    # sharded => partial contributions per device => all-reduce.
    req_idx = replicated(idx_nd)
    req_upd_lead = [None] * idx_nd
    post = []
    for d in range(idx_nd):
        if upd_spec.dims[d] is not None:
            # gathering would also be correct; reducing is cheaper
            req_upd_lead[d] = None
    trailing = list(upd_spec.dims[idx_nd:])
    req_upd = PSpec(req_upd_lead + trailing)
    out = PSpec([None] + trailing)
    shape = params["shape"]
    local = dict(params, shape=local_shape(
        ShapedArray(tuple(shape), in_avals[1].dtype), out, mesh))
    return Strategy([req_idx, req_upd], [out], local_params=local, post_all_reduce=[post])


@_rule("iota")
def _iota_rule(mesh, in_specs, in_avals, params):
    return Strategy([], [replicated(1)])


@_rule("unslice")
def _unslice_rule(mesh, in_specs, in_avals, params):
    # Conservative: replicate (appears only in backward of partial slices).
    nd = len(params["shape"])
    return Strategy([replicated(in_avals[0].ndim)], [replicated(nd)])


# ---------------------------------------------------------------------------
# the partitioning pass
# ---------------------------------------------------------------------------

class _Builder:
    """Accumulates local equations and the global->local variable map."""

    def __init__(self, mesh: Mesh):
        self.mesh = mesh
        self.eqns: list[Eqn] = []
        self.env: dict[int, tuple[Atom, PSpec]] = {}  # id(global var) -> (local atom, spec)

    def lookup(self, atom: Atom) -> tuple[Atom, PSpec]:
        if isinstance(atom, Literal):
            return atom, replicated(atom.aval.ndim)
        return self.env[id(atom)]

    def emit(self, prim, in_atoms: list[Atom], out_avals: list[ShapedArray], params: dict) -> list[Var]:
        outs = [Var(av) for av in out_avals]
        self.eqns.append(Eqn(prim, list(in_atoms), outs, params))
        return outs

    def reshard(self, atom: Atom, cur: PSpec, target: PSpec, global_aval: ShapedArray) -> Atom:
        """Emit collectives converting ``atom`` from ``cur`` to ``target``."""
        if cur.dims == target.dims:
            return atom
        mesh = self.mesh
        # 1) gather every dim whose sharding must change
        for dim, axis in enumerate(cur.dims):
            if axis is not None and target.dims[dim] != axis:
                size = mesh.axis_size(axis)
                cur = cur.with_dim(dim, None)
                if size == 1:  # size-1 axes shard nothing; elide (as XLA does)
                    continue
                local_av = ShapedArray(local_shape(global_aval, cur, mesh), global_aval.dtype)
                [atom] = self.emit(
                    coll.all_gather_p, [atom], [local_av],
                    dict(axis=axis, dim=dim, axis_size=size),
                )
        # 2) split every dim that must become sharded
        for dim, axis in enumerate(target.dims):
            if axis is not None and cur.dims[dim] is None:
                size = mesh.axis_size(axis)
                cur = cur.with_dim(dim, axis)
                if size == 1:
                    continue
                local_av = ShapedArray(local_shape(global_aval, cur, mesh), global_aval.dtype)
                [atom] = self.emit(
                    coll.mesh_split_p, [atom], [local_av],
                    dict(axis=axis, dim=dim, axis_size=size),
                )
        return atom


def partition(
    jaxpr: Jaxpr,
    mesh: Mesh,
    in_specs: list[PSpec | tuple | None],
    rules: dict[str, str | None] | None = None,
) -> PartitionedProgram:
    """Partition ``jaxpr`` over ``mesh``.

    Args:
        jaxpr: global program (typically one pipeline-stage task).
        mesh: the SPMD mesh of one actor.
        in_specs: per-input :class:`PSpec`, logical-name tuple (resolved via
            ``rules``), or ``None`` for replicated.
        rules: logical-axis -> mesh-axis mapping used to resolve
            ``shard_constraint`` annotations and name-based in_specs
            (Figure 1b of the paper).

    Returns:
        A :class:`PartitionedProgram` whose ``local_jaxpr`` computes each
        device's shard of every output.
    """
    rules = rules or {}
    builder = _Builder(mesh)

    norm_in: list[PSpec] = []
    for v, s in zip(jaxpr.invars, in_specs):
        if s is None:
            spec = replicated(v.aval.ndim)
        elif isinstance(s, PSpec):
            spec = s
        else:
            spec = resolve_names(tuple(s), rules)
        if spec.ndim != v.aval.ndim:
            raise ValueError(f"in_spec {spec} has wrong rank for {v.aval!r}")
        local_av = ShapedArray(local_shape(v.aval, spec, mesh), v.aval.dtype)
        lv = Var(local_av)
        builder.env[id(v)] = (lv, spec)
        norm_in.append(spec)
    local_invars = [builder.env[id(v)][0] for v in jaxpr.invars]

    for eqn in jaxpr.eqns:
        ins = [builder.lookup(a) for a in eqn.invars]
        in_atoms = [a for a, _ in ins]
        cur_specs = [s for _, s in ins]
        global_in_avals = [a.aval for a in eqn.invars]

        if eqn.prim is coll.shard_constraint_p:
            target = resolve_names(eqn.params["names"], rules)
            atom = builder.reshard(in_atoms[0], cur_specs[0], target, global_in_avals[0])
            builder.env[id(eqn.outvars[0])] = (atom, target)
            continue

        rule = RULES.get(eqn.prim.name)
        strategy = rule(mesh, cur_specs, global_in_avals, eqn.params) if rule else None
        if strategy is None:
            # Universal fallback: replicate everything. Correctness never
            # depends on a sharded rule existing.
            strategy = Strategy(
                [replicated(a.ndim) for a in global_in_avals],
                [replicated(v.aval.ndim) for v in eqn.outvars],
            )

        local_atoms = [
            builder.reshard(atom, cur, req, gav)
            for atom, cur, req, gav in zip(in_atoms, cur_specs, strategy.in_specs, global_in_avals)
        ]
        local_params = strategy.local_params if strategy.local_params is not None else dict(eqn.params)
        out_local_avals = [
            ShapedArray(local_shape(v.aval, spec, mesh), v.aval.dtype)
            for v, spec in zip(eqn.outvars, strategy.out_specs)
        ]
        # Cross-check against the primitive's own abstract rule on local avals.
        inferred = eqn.prim.abstract_eval(*[a.aval for a in local_atoms], **local_params)
        inferred = list(inferred) if eqn.prim.multiple_results else [inferred]
        for got, want in zip(inferred, out_local_avals):
            if got.shape != want.shape:
                raise AssertionError(
                    f"partitioner bug on {eqn.prim.name}: local abstract eval "
                    f"gives {got!r}, spec math gives {want!r}"
                )
        outs = builder.emit(eqn.prim, local_atoms, out_local_avals, local_params)

        post = strategy.post_all_reduce or [[] for _ in outs]
        for i, (v, out_var) in enumerate(zip(eqn.outvars, outs)):
            atom: Atom = out_var
            for axis, op in post[i]:
                if mesh.axis_size(axis) == 1:  # nothing to reduce over
                    continue
                [atom] = builder.emit(
                    coll.all_reduce_p, [atom], [atom.aval], dict(axis=axis, op=op)
                )
            builder.env[id(v)] = (atom, strategy.out_specs[i])

    out_atoms, out_specs = [], []
    for a in jaxpr.outvars:
        atom, spec = builder.lookup(a)
        out_atoms.append(atom)
        out_specs.append(spec)

    local_jaxpr = Jaxpr(local_invars, builder.eqns, out_atoms)
    return PartitionedProgram(local_jaxpr, mesh, norm_in, out_specs)
