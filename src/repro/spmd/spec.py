"""Partition specs: how an array's dims map onto mesh axes (§2.1).

``PSpec(("data", None))`` shards dim 0 over mesh axis ``data`` and
replicates dim 1 — the row-sharding of Figure 1. The *logical* named-axis
layer (``batch ▷ data`` in Figure 1b) is in :mod:`repro.spmd.logical`; it
resolves down to these concrete specs.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.ir.avals import ShapedArray
from repro.spmd.mesh import Mesh

__all__ = ["PSpec", "replicated", "local_shape", "merge_specs"]


@dataclasses.dataclass(frozen=True)
class PSpec:
    """Concrete partition spec: one mesh-axis name (or None) per array dim.

    A mesh axis may appear at most once; dims mapped to ``None`` are
    replicated over the unmentioned mesh axes, exactly as the paper
    describes.
    """

    dims: tuple[str | None, ...]

    def __init__(self, dims: Sequence[str | None]):
        dims = tuple(dims)
        named = [d for d in dims if d is not None]
        if len(set(named)) != len(named):
            raise ValueError(f"mesh axis used twice in spec: {dims}")
        object.__setattr__(self, "dims", dims)

    @property
    def ndim(self) -> int:
        """Array rank this spec applies to."""
        return len(self.dims)

    @property
    def is_replicated(self) -> bool:
        """True if no dim is sharded."""
        return all(d is None for d in self.dims)

    @property
    def sharded_axes(self) -> tuple[str, ...]:
        """Mesh axes used by this spec."""
        return tuple(d for d in self.dims if d is not None)

    def dim_of(self, axis: str) -> int:
        """Array dim sharded by mesh axis ``axis``."""
        for i, d in enumerate(self.dims):
            if d == axis:
                return i
        raise KeyError(f"axis {axis!r} not in spec {self}")

    def with_dim(self, dim: int, axis: str | None) -> "PSpec":
        """Copy with one dim's mapping replaced."""
        dims = list(self.dims)
        dims[dim] = axis
        return PSpec(dims)

    def __repr__(self) -> str:
        return "P(" + ", ".join("_" if d is None else d for d in self.dims) + ")"


def replicated(ndim: int) -> PSpec:
    """Fully-replicated spec of the given rank."""
    return PSpec((None,) * ndim)


def local_shape(aval: ShapedArray, spec: PSpec, mesh: Mesh) -> tuple[int, ...]:
    """Per-device shard shape for ``aval`` under ``spec``.

    Raises:
        ValueError: when a sharded dim is not divisible by its mesh axis
            size (we require even sharding, like GSPMD's default).
    """
    if len(spec.dims) != aval.ndim:
        raise ValueError(f"spec {spec} has wrong rank for {aval!r}")
    out = []
    for d, axis in zip(aval.shape, spec.dims):
        if axis is None:
            out.append(d)
        else:
            size = mesh.axis_size(axis)
            if d % size != 0:
                raise ValueError(
                    f"dim of size {d} not divisible by mesh axis {axis!r} ({size}) in {aval!r}"
                )
            out.append(d // size)
    return tuple(out)


def merge_specs(a: PSpec, b: PSpec) -> PSpec | None:
    """Merge two candidate specs for the same array dim-by-dim.

    ``None`` dims defer to the sharded side; two different shardings of the
    same dim are a conflict (returns ``None``; callers fall back to
    replication — a simplification of GSPMD's priority scheme, documented
    in DESIGN.md).
    """
    if a.ndim != b.ndim:
        return None
    dims: list[str | None] = []
    for da, db in zip(a.dims, b.dims):
        if da == db:
            dims.append(da)
        elif da is None:
            dims.append(db)
        elif db is None:
            dims.append(da)
        else:
            return None
    try:
        return PSpec(dims)
    except ValueError:
        return None
