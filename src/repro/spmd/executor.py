"""Lock-step multi-device SPMD executor.

Executes a partitioned (per-device) jaxpr across all devices of a mesh,
one equation at a time — a deterministic stand-in for XLA launching the
same program on every GPU. Collective equations are intercepted and applied
per communication group; everything else runs independently per device with
NumPy.

The executor also keeps :class:`CollectiveStats` — counts and *logical*
byte volumes per collective kind — which the tests use to assert that e.g.
Megatron-style tensor parallelism inserts exactly the expected all-reduces,
and which gives the cost model its communication volumes.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.ir.jaxpr import Literal
from repro.spmd import collectives as coll
from repro.spmd.mesh import Mesh
from repro.spmd.partitioner import PartitionedProgram
from repro.spmd.spec import PSpec

__all__ = ["CollectiveStats", "SpmdExecutor", "shard_array", "unshard_array"]


@dataclasses.dataclass
class CollectiveStats:
    """Aggregated collective activity of one execution."""

    counts: dict[str, int] = dataclasses.field(default_factory=dict)
    bytes: dict[str, int] = dataclasses.field(default_factory=dict)

    def record(self, kind: str, nbytes: int) -> None:
        """Accumulate one collective of ``kind`` moving ``nbytes`` per
        participating device."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.bytes[kind] = self.bytes.get(kind, 0) + nbytes

    @property
    def total_collectives(self) -> int:
        """Total number of collective operations executed."""
        return sum(self.counts.values())


def shard_array(x: np.ndarray, spec: PSpec, mesh: Mesh) -> list[np.ndarray]:
    """Split a global array into one shard per device (row-major device
    order), replicating over unmentioned axes."""
    out = []
    for dev in range(mesh.n_devices):
        piece = x
        for dim, axis in enumerate(spec.dims):
            if axis is None:
                continue
            size = mesh.axis_size(axis)
            k = mesh.axis_coord(dev, axis)
            step = piece.shape[dim] // size
            idx = [slice(None)] * piece.ndim
            idx[dim] = slice(k * step, (k + 1) * step)
            piece = piece[tuple(idx)]
        out.append(np.ascontiguousarray(piece))
    return out


def unshard_array(shards: Sequence[np.ndarray], spec: PSpec, mesh: Mesh, check_replicas: bool = True) -> np.ndarray:
    """Reassemble a global array from per-device shards.

    When ``check_replicas`` is set, replicated copies are verified to be
    bitwise identical across devices — a strong invariant that catches
    missing collectives.
    """
    axes = [a for a in spec.dims if a is not None]
    if not axes:
        base = shards[0]
        if check_replicas:
            for i, s in enumerate(shards[1:], 1):
                if not np.array_equal(s, base):
                    raise AssertionError(
                        f"replicated output differs between device 0 and {i}; "
                        "a collective is missing"
                    )
        return base
    # Reassemble along the first sharded dim by recursing on sub-groups.
    axis = axes[0]
    dim = spec.dim_of(axis)
    sub_spec = spec.with_dim(dim, None)
    groups = mesh.groups(axis)
    # For each position along `axis`, the devices at that coordinate form a
    # sub-collection; reassemble those with the remaining spec.
    size = mesh.axis_size(axis)
    pieces = []
    for k in range(size):
        devs_at_k = [g[k] for g in groups]
        sub_shards = [shards[d] for d in devs_at_k]
        # Build a "sub-mesh view": unshard_array only needs axis lookups, so
        # reuse the same mesh but with the already-handled axis ignored via
        # sub_spec. Replica checking within the slice still applies.
        pieces.append(_unshard_at(sub_shards, devs_at_k, sub_spec, mesh, check_replicas))
    return np.concatenate(pieces, axis=dim)


def _unshard_at(shards, devices, spec: PSpec, mesh: Mesh, check: bool) -> np.ndarray:
    axes = [a for a in spec.dims if a is not None]
    if not axes:
        base = shards[0]
        if check:
            for s in shards[1:]:
                if not np.array_equal(s, base):
                    raise AssertionError("replicated shard mismatch")
        return base
    axis = axes[0]
    dim = spec.dim_of(axis)
    sub_spec = spec.with_dim(dim, None)
    size = mesh.axis_size(axis)
    by_coord: dict[int, list[tuple[int, np.ndarray]]] = {k: [] for k in range(size)}
    for dev, sh in zip(devices, shards):
        by_coord[mesh.axis_coord(dev, axis)].append((dev, sh))
    pieces = []
    for k in range(size):
        devs = [d for d, _ in by_coord[k]]
        shs = [s for _, s in by_coord[k]]
        pieces.append(_unshard_at(shs, devs, sub_spec, mesh, check))
    return np.concatenate(pieces, axis=dim)


class SpmdExecutor:
    """Lock-step interpreter of a :class:`PartitionedProgram`."""

    def __init__(self, mesh: Mesh):
        self.mesh = mesh
        self.stats = CollectiveStats()

    # -- collective semantics -------------------------------------------------
    def _all_reduce(self, vals: list[np.ndarray], eqn) -> list[np.ndarray]:
        axis, op = eqn.params["axis"], eqn.params["op"]
        out = list(vals)
        for group in self.mesh.groups(axis):
            stack = np.stack([vals[d] for d in group])
            red = stack.sum(axis=0) if op == "sum" else stack.max(axis=0)
            for d in group:
                out[d] = red
        self.stats.record("all_reduce", vals[0].nbytes)
        return out

    def _all_gather(self, vals: list[np.ndarray], eqn) -> list[np.ndarray]:
        axis, dim = eqn.params["axis"], eqn.params["dim"]
        out = list(vals)
        for group in self.mesh.groups(axis):
            gathered = np.concatenate([vals[d] for d in group], axis=dim)
            for d in group:
                out[d] = gathered
        self.stats.record("all_gather", vals[0].nbytes)
        return out

    def _reduce_scatter(self, vals: list[np.ndarray], eqn) -> list[np.ndarray]:
        axis, dim = eqn.params["axis"], eqn.params["dim"]
        size = eqn.params["axis_size"]
        out = list(vals)
        for group in self.mesh.groups(axis):
            total = np.stack([vals[d] for d in group]).sum(axis=0)
            pieces = np.split(total, size, axis=dim)
            for k, d in enumerate(group):
                out[d] = pieces[k]
        self.stats.record("reduce_scatter", vals[0].nbytes)
        return out

    def _mesh_split(self, vals: list[np.ndarray], eqn) -> list[np.ndarray]:
        axis, dim = eqn.params["axis"], eqn.params["dim"]
        size = eqn.params["axis_size"]
        out = []
        for dev in range(self.mesh.n_devices):
            k = self.mesh.axis_coord(dev, axis)
            step = vals[dev].shape[dim] // size
            idx = [slice(None)] * vals[dev].ndim
            idx[dim] = slice(k * step, (k + 1) * step)
            out.append(np.ascontiguousarray(vals[dev][tuple(idx)]))
        # local slicing, no communication: not recorded in stats
        return out

    # -- main loop -------------------------------------------------------------
    def run(self, program: PartitionedProgram, global_args: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Execute the program on global inputs; return global outputs.

        Inputs are sharded per ``program.in_specs``; outputs reassembled per
        ``program.out_specs`` with replica verification.
        """
        mesh = self.mesh
        jaxpr = program.local_jaxpr
        if len(global_args) != len(jaxpr.invars):
            raise TypeError(
                f"program expects {len(jaxpr.invars)} args, got {len(global_args)}"
            )
        n = mesh.n_devices
        envs: list[dict[int, np.ndarray]] = [{} for _ in range(n)]
        for v, spec, arg in zip(jaxpr.invars, program.in_specs, global_args):
            for d, piece in enumerate(shard_array(np.asarray(arg), spec, mesh)):
                envs[d][id(v)] = piece

        def read(d: int, atom) -> np.ndarray:
            if isinstance(atom, Literal):
                return np.asarray(atom.value)
            return envs[d][id(atom)]

        for eqn in jaxpr.eqns:
            if eqn.prim in coll.COLLECTIVE_PRIMS:
                vals = [read(d, eqn.invars[0]) for d in range(n)]
                handler = {
                    coll.all_reduce_p: self._all_reduce,
                    coll.all_gather_p: self._all_gather,
                    coll.mesh_split_p: self._mesh_split,
                    coll.reduce_scatter_p: self._reduce_scatter,
                }[eqn.prim]
                outs = handler(vals, eqn)
                for d in range(n):
                    envs[d][id(eqn.outvars[0])] = outs[d]
                continue
            for d in range(n):
                invals = [read(d, a) for a in eqn.invars]
                out = eqn.prim.impl(*invals, **eqn.params)
                outs = out if eqn.prim.multiple_results else [out]
                for v, val in zip(eqn.outvars, outs):
                    envs[d][id(v)] = np.asarray(val)

        results = []
        for atom, spec in zip(jaxpr.outvars, program.out_specs):
            shards = [read(d, atom) for d in range(n)]
            results.append(unshard_array(shards, spec, mesh))
        return results
