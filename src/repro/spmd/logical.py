"""Logical named axes (Figure 1 of the paper).

Models annotate arrays with *logical* axis names (``("batch", "emb")``) via
:func:`shard`; a separate partitioning specification maps logical names to
mesh axes (``{"batch": "data", "mlp": "model"}``, Figure 1b). The same
model therefore instantiates as data-parallel, tensor-parallel, or both,
depending only on the mesh shape and the rules — the decoupling that
motivates JaxPP building on GSPMD instead of hand-rolled parallelism.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.ir.avals import abstractify
from repro.spmd.collectives import shard_constraint_p
from repro.spmd.spec import PSpec

__all__ = ["shard", "resolve_names"]


def shard(x: Any, names: Sequence[str | None]) -> Any:
    """Annotate ``x`` with logical axis names, one per dim (``None`` =
    unconstrained). Identity semantics; a hint consumed by the SPMD
    partitioner. Mirrors ``jax.lax.with_sharding_constraint`` with logical
    rules."""
    names = tuple(names)
    if len(names) != abstractify(x).ndim:
        raise ValueError(
            f"shard annotation {names} has wrong rank for shape {abstractify(x).shape}"
        )
    return shard_constraint_p.bind(x, names=names)


def resolve_names(names: Sequence[str | None], rules: Mapping[str, str | None]) -> PSpec:
    """Resolve logical axis names to a concrete :class:`PSpec` using the
    partitioning specification ``rules``.

    Unmapped names (or names mapped to ``None``) are replicated. A mesh
    axis claimed by two different dims keeps only the first (later dims
    replicate) so specs stay valid.
    """
    dims: list[str | None] = []
    seen: set[str] = set()
    for n in names:
        axis = rules.get(n) if n is not None else None
        if axis is not None and axis in seen:
            axis = None
        if axis is not None:
            seen.add(axis)
        dims.append(axis)
    return PSpec(dims)
