"""Logical device meshes (§2.1 of the paper).

A :class:`Mesh` arranges a set of devices in a named multi-dimensional
array, e.g. ``Mesh([("data", 4), ("model", 8)])``. Mesh axis names are what
partition specs refer to; collective operations run over *groups* — the
sets of devices that differ only in one mesh coordinate.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Sequence

__all__ = ["Mesh"]


@dataclasses.dataclass(frozen=True)
class Mesh:
    """A named logical mesh over ``n_devices`` devices.

    Attributes:
        axes: ordered ``(name, size)`` pairs; the product of sizes is the
            device count. Device *index* maps to mesh *coordinates*
            row-major, matching JAX's default device order.
        device_ids: optional explicit device identifiers (defaults to
            ``range(n)``); carried for topology-aware cost models.
    """

    axes: tuple[tuple[str, int], ...]
    device_ids: tuple[int, ...] = ()

    def __init__(self, axes: Sequence[tuple[str, int]], device_ids: Sequence[int] | None = None):
        axes = tuple((str(n), int(s)) for n, s in axes)
        names = [n for n, _ in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate mesh axis names: {names}")
        if any(s <= 0 for _, s in axes):
            raise ValueError(f"mesh axis sizes must be positive: {axes}")
        n = math.prod(s for _, s in axes)
        if device_ids is None:
            device_ids = tuple(range(n))
        else:
            device_ids = tuple(int(d) for d in device_ids)
            if len(device_ids) != n:
                raise ValueError(f"mesh of shape {axes} needs {n} devices, got {len(device_ids)}")
            if len(set(device_ids)) != n:
                raise ValueError("mesh devices must not repeat")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "device_ids", device_ids)

    # -- introspection -------------------------------------------------------
    @property
    def axis_names(self) -> tuple[str, ...]:
        """Mesh axis names in order."""
        return tuple(n for n, _ in self.axes)

    @property
    def shape(self) -> tuple[int, ...]:
        """Mesh axis sizes in order."""
        return tuple(s for _, s in self.axes)

    @property
    def n_devices(self) -> int:
        """Total device count."""
        return math.prod(self.shape)

    def axis_size(self, name: str) -> int:
        """Size of the named axis."""
        for n, s in self.axes:
            if n == name:
                return s
        raise KeyError(f"no mesh axis named {name!r} in {self.axis_names}")

    def axis_index(self, name: str) -> int:
        """Position of the named axis."""
        for i, (n, _) in enumerate(self.axes):
            if n == name:
                return i
        raise KeyError(f"no mesh axis named {name!r} in {self.axis_names}")

    # -- coordinates ----------------------------------------------------------
    def coords(self, device: int) -> tuple[int, ...]:
        """Mesh coordinates of a device index (row-major)."""
        if not (0 <= device < self.n_devices):
            raise IndexError(f"device {device} out of range")
        out = []
        rem = device
        for s in reversed(self.shape):
            out.append(rem % s)
            rem //= s
        return tuple(reversed(out))

    def device_at(self, coords: Sequence[int]) -> int:
        """Device index at the given mesh coordinates."""
        idx = 0
        for c, s in zip(coords, self.shape):
            if not (0 <= c < s):
                raise IndexError(f"coordinate {coords} out of mesh {self.shape}")
            idx = idx * s + c
        return idx

    def axis_coord(self, device: int, name: str) -> int:
        """This device's coordinate along the named axis."""
        return self.coords(device)[self.axis_index(name)]

    def groups(self, name: str) -> list[list[int]]:
        """Communication groups for a collective over axis ``name``: each
        group holds the devices that differ only in that coordinate, in
        axis order."""
        ai = self.axis_index(name)
        other = [range(s) for i, s in enumerate(self.shape) if i != ai]
        out: list[list[int]] = []
        for fixed in itertools.product(*other):
            group = []
            for k in range(self.shape[ai]):
                coords = list(fixed)
                coords.insert(ai, k)
                group.append(self.device_at(coords))
            out.append(group)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"({n!r}, {s})" for n, s in self.axes)
        return f"Mesh([{inner}])"
