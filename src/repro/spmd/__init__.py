"""GSPMD substrate: named-axis sharding, propagation, collective insertion,
and a lock-step multi-device executor (§2.1 of the paper).

Typical flow::

    from repro import ir, spmd

    mesh = spmd.Mesh([("data", 2), ("model", 2)])
    jaxpr, _, _ = ir.trace(f, x, w)
    prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None), (None, "mlp")],
                          rules={"batch": "data", "mlp": "model"})
    outs = spmd.SpmdExecutor(mesh).run(prog, [x, w])
"""

from repro.spmd.collectives import (
    COLLECTIVE_PRIMS,
    all_gather_p,
    all_reduce_p,
    mesh_split_p,
    reduce_scatter_p,
    shard_constraint_p,
)
from repro.spmd.executor import CollectiveStats, SpmdExecutor, shard_array, unshard_array
from repro.spmd.logical import resolve_names, shard
from repro.spmd.mesh import Mesh
from repro.spmd.partitioner import PartitionedProgram, partition
from repro.spmd.spec import PSpec, local_shape, merge_specs, replicated

__all__ = [
    "Mesh",
    "PSpec", "replicated", "local_shape", "merge_specs",
    "shard", "resolve_names",
    "partition", "PartitionedProgram",
    "SpmdExecutor", "CollectiveStats", "shard_array", "unshard_array",
    "all_reduce_p", "all_gather_p", "mesh_split_p", "reduce_scatter_p",
    "shard_constraint_p", "COLLECTIVE_PRIMS",
]
