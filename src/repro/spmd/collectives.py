"""Collective primitives inserted by the SPMD partitioner.

These never appear in user programs — the partitioner emits them, exactly
as XLA's SPMD partitioner does (§2.1: "the compiler automatically handles
the placement of collective operations"). Their ``impl`` rules raise: they
are only meaningful inside the lock-step executor, which intercepts them by
primitive identity and applies group semantics.

``shard_constraint`` is the one user-visible op here: the annotation that
:func:`repro.spmd.logical.shard` records (identity semantics, hint for the
partitioner).
"""

from __future__ import annotations

from repro.ir.avals import ShapedArray
from repro.ir.primitives import Primitive

__all__ = [
    "all_reduce_p",
    "all_gather_p",
    "mesh_split_p",
    "reduce_scatter_p",
    "shard_constraint_p",
    "COLLECTIVE_PRIMS",
]


def _no_eager(name: str):
    def impl(*args, **params):
        raise RuntimeError(
            f"collective {name!r} can only run inside the SPMD executor; "
            "it was evaluated eagerly"
        )

    return impl


all_reduce_p = Primitive("all_reduce")
all_reduce_p.def_impl(_no_eager("all_reduce"))


@all_reduce_p.def_abstract
def _all_reduce_abs(xa: ShapedArray, *, axis: str, op: str = "sum"):
    if op not in ("sum", "max"):
        raise ValueError(f"unsupported all_reduce op {op!r}")
    return xa


all_gather_p = Primitive("all_gather")
all_gather_p.def_impl(_no_eager("all_gather"))


@all_gather_p.def_abstract
def _all_gather_abs(xa: ShapedArray, *, axis: str, dim: int, axis_size: int):
    shape = list(xa.shape)
    shape[dim] = shape[dim] * axis_size
    return ShapedArray(tuple(shape), xa.dtype)


mesh_split_p = Primitive("mesh_split")
mesh_split_p.def_impl(_no_eager("mesh_split"))


@mesh_split_p.def_abstract
def _mesh_split_abs(xa: ShapedArray, *, axis: str, dim: int, axis_size: int):
    if xa.shape[dim] % axis_size != 0:
        raise ValueError(f"cannot split dim {dim} of {xa!r} {axis_size} ways")
    shape = list(xa.shape)
    shape[dim] = shape[dim] // axis_size
    return ShapedArray(tuple(shape), xa.dtype)


reduce_scatter_p = Primitive("reduce_scatter")
reduce_scatter_p.def_impl(_no_eager("reduce_scatter"))


@reduce_scatter_p.def_abstract
def _reduce_scatter_abs(xa: ShapedArray, *, axis: str, dim: int, axis_size: int):
    if xa.shape[dim] % axis_size != 0:
        raise ValueError(f"cannot reduce-scatter dim {dim} of {xa!r} {axis_size} ways")
    shape = list(xa.shape)
    shape[dim] = shape[dim] // axis_size
    return ShapedArray(tuple(shape), xa.dtype)


shard_constraint_p = Primitive("shard_constraint")


@shard_constraint_p.def_impl
def _shard_constraint_impl(x, *, names):
    return x  # identity outside the partitioner


@shard_constraint_p.def_abstract
def _shard_constraint_abs(xa: ShapedArray, *, names):
    if len(names) != xa.ndim:
        raise ValueError(f"shard annotation {names} has wrong rank for {xa!r}")
    return xa


@shard_constraint_p.def_vjp
def _shard_constraint_vjp(cts, invals, outvals, *, names):
    # The cotangent inherits the same logical layout (GSPMD behaviour).
    return [shard_constraint_p.bind(cts[0], names=tuple(names))]


COLLECTIVE_PRIMS = frozenset({all_reduce_p, all_gather_p, mesh_split_p, reduce_scatter_p})
