"""Quickstart: the paper's Figure 4 workflow on a 3-stage MLP.

Annotate a model with ``pipeline_yield``, wrap the gradient-accumulation
loop in ``accumulate_grads``, hand the step function to a ``RemoteMesh`` —
and verify the distributed execution is *numerically identical* to running
the same code on one device (the markers are the identity there).

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import core, ir
from repro.data import regression_batches
from repro.models import init_mlp, mlp_loss

N_STAGES = 3
N_MBS, MBSZ, D_IN, D_HIDDEN, D_OUT = 8, 16, 12, 32, 4
LR = 0.05


def train_step(params, batch):
    """One pipelined training step (compare with the paper's Figure 4)."""

    def microbatch_grads(mubatch):
        loss, grads = ir.value_and_grad(lambda p, mb: mlp_loss(p, mb, N_STAGES))(
            params, mubatch
        )
        return grads, loss

    grads, losses = core.accumulate_grads(
        microbatch_grads, core.OneFOneB(N_STAGES)
    )(batch)
    new_params = ir.tree_map(lambda w, g: w - LR * g, params, grads)
    return new_params, losses


def main() -> None:
    params = init_mlp(np.random.RandomState(0), N_STAGES, D_IN, D_HIDDEN, D_OUT)

    # one actor per pipeline stage, like `RemoteMesh((3,))` in the paper
    mesh = core.RemoteMesh((N_STAGES,))
    step_fn = mesh.distributed(train_step)

    ref_params = params
    print(f"training a {N_STAGES}-stage MLP on {mesh.n_actors} actors")
    print(f"{'step':>4} {'loss':>10} {'vs single-device':>18}")
    for i, batch in enumerate(
        regression_batches(D_IN, D_OUT, N_MBS, MBSZ, n_batches=10, seed=1)
    ):
        # distributed step
        params, losses = step_fn(params, batch)
        # single-device reference (identical code, eager mode)
        ref_params, ref_losses = train_step(ref_params, batch)
        err = max(
            float(np.abs(a - b).max())
            for a, b in zip(ir.tree_leaves(params), ir.tree_leaves(ref_params))
        )
        print(f"{i:>4} {float(np.mean(losses)):>10.5f} {err:>18.2e}")

    stats = step_fn.compiled.instruction_counts
    print(f"\ncompiled step: {stats}")
    print(f"P2P transfers/step: {step_fn.last_result.p2p_count} "
          f"({step_fn.last_result.p2p_bytes / 1024:.1f} KiB)")
    print("distributed == single-device: OK")


if __name__ == "__main__":
    main()
