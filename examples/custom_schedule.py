"""User-defined pipeline schedules (§4.2, §6).

The paper's flexibility claim: schedules are *data* — a per-actor list of
``Task(i, ty, stage)`` — so new ones need only a ``Schedule`` subclass;
task-graph unrolling, communication inference, liveness, and the runtime
are unchanged. This script defines two custom schedules:

- ``GPipeFIFO``: GPipe whose backward phase drains microbatches in FIFO
  order (plain GPipe uses LIFO) — a two-line change;
- ``EagerFlush``: 1F1B whose cooldown interleaves remaining forwards as
  early as dependencies allow.

Both are validated by the generic checker and executed end to end,
matching the single-device reference exactly — no compiler or runtime
changes required.

Run: ``python examples/custom_schedule.py``
"""

import numpy as np

from repro import core, ir
from repro.core.schedules import Unit, validate_schedule
from repro.data import regression_batches
from repro.models import init_mlp, mlp_loss
from repro.viz import render_schedule

N_STAGES, N_MBS, MBSZ, D = 3, 6, 8, 10


class GPipeFIFO(core.GPipe):
    """GPipe draining backwards in microbatch order instead of reverse."""

    def units(self, n_mbs):
        out = []
        for actor in range(self.n_actors):
            seq = [Unit(i, actor, "fwd") for i in range(n_mbs)]
            seq += [Unit(i, actor, "bwd") for i in range(n_mbs)]  # FIFO
            out.append(seq)
        return out

    @property
    def name(self):
        return "GPipeFIFO"


class EagerFlush(core.OneFOneB):
    """1F1B variant: once the steady state ends, issue every remaining
    forward before the remaining backwards (more activation memory, can
    start downstream actors earlier)."""

    def units(self, n_mbs):
        out = []
        p = self.n_actors
        for rank in range(p):
            warmup = min(p - 1 - rank, n_mbs)
            seq = [Unit(i, rank, "fwd") for i in range(warmup)]
            nf, nb = warmup, 0
            steady = n_mbs - warmup
            for _ in range(steady):
                seq.append(Unit(nf, rank, "fwd"))
                nf += 1
                seq.append(Unit(nb, rank, "bwd"))
                nb += 1
            # cooldown: flush all remaining work, forwards first
            seq += [Unit(i, rank, "fwd") for i in range(nf, n_mbs)]
            seq += [Unit(i, rank, "bwd") for i in range(nb, n_mbs)]
            out.append(seq)
        return out

    @property
    def name(self):
        return "EagerFlush"


def main() -> None:
    params = init_mlp(np.random.RandomState(0), N_STAGES, D, D, D)
    batch = next(regression_batches(D, D, N_MBS, MBSZ, 1, seed=1))

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(lambda p, m: mlp_loss(p, m, N_STAGES))(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: w - 0.05 * g, params, grads)
        return new, losses

    ref_params, ref_losses = train_step(params, batch)

    for schedule in (GPipeFIFO(N_STAGES), EagerFlush(N_STAGES)):
        validate_schedule(schedule, N_MBS)  # completeness + deadlock-freedom
        print(f"--- {schedule.name} (validated) ---")
        print(render_schedule(schedule, N_MBS))

        step_fn = core.RemoteMesh((N_STAGES,)).distributed(train_step, schedule=schedule)
        out_params, out_losses = step_fn(params, batch)
        err = max(float(np.abs(a - b).max())
                  for a, b in zip(ir.tree_leaves(out_params), ir.tree_leaves(ref_params)))
        print(f"max |custom schedule - single device| = {err:.2e}")
        assert err < 1e-5
        print()

    print("custom schedules run through the unchanged compiler/runtime: OK")


if __name__ == "__main__":
    main()
