"""Figure 2, live: compare GPipe / 1F1B / Interleaved 1F1B / Eager 1F1B /
zero-bubble ZB-H1, ZB-H2 & ZB-V / looped-BFS / interleaved-ZB.

Every schedule here is just a ``units()`` method: ``Schedule.lower``
turns it into the dependency-explicit ScheduleIR that the compiler,
runtime, simulator, and this renderer all consume — adding a schedule
touches nothing downstream.

Renders each schedule's logical order (the paper's Figure 2), executes the
same 4-stage model under each schedule on a virtual-time cost model, and
prints wall-clock timelines plus the §2.2.1 claims measured, not asserted:

- 1F1B's peak activation memory is bounded by the stage count while
  GPipe's (and looped-BFS's) grows with the microbatch count;
- interleaving trades smaller bubbles for more, smaller tasks;
- zero-bubble splits shrink the bubble further at equal (ZB-H1,
  interleaved-ZB) or doubled (ZB-H2) activation memory;
- the runtime's wait profile names the resources each run parked on.

Run: ``python examples/schedule_gallery.py``
"""

import numpy as np

from repro import core, ir
from repro.core.schedules import schedule_stats
from repro.data import regression_batches
from repro.models import init_mlp, mlp_loss
from repro.runtime import LinearCost
from repro.viz import render_schedule, render_timeline

N_MBS, MBSZ, D = 6, 8, 16


def make_step(n_stages, schedule):
    params = init_mlp(np.random.RandomState(0), n_stages, D, D, D)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(lambda p, m: mlp_loss(p, m, n_stages))(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(mg, schedule)(batch)
        new = ir.tree_map(lambda w, g: w - 0.05 * g, params, grads)
        return new, losses

    return train_step, params


def main() -> None:
    batch = next(regression_batches(D, D, N_MBS, MBSZ, 1, seed=0))
    # virtual costs: make compute dominate so bubbles are visible
    cost = LinearCost(dispatch=0.0, p2p_latency=0.002, p2p_bandwidth=5e6)

    for schedule, n_stages in [
        (core.GPipe(4), 4),
        (core.OneFOneB(4), 4),
        (core.Interleaved1F1B(2, 2), 4),
        (core.Eager1F1B(4), 4),
        (core.ZBH1(4), 4),
        (core.ZBH2(4), 4),
        (core.LoopedBFS(2, 2), 4),
        (core.InterleavedZB(2, 2), 4),
        (core.ZBV(2), 4),
    ]:
        print("=" * 72)
        print(f"{schedule.name}  ({n_stages} stages on {schedule.n_actors} actors, "
              f"{N_MBS} microbatches)")
        print("-" * 72)
        print("logical order (Figure 2):")
        print(render_schedule(schedule, N_MBS))

        stats = schedule_stats(schedule, N_MBS)
        print(f"\nbubble fraction: {stats['bubble_fraction']:.3f}   "
              f"peak live activations/actor: {stats['peak_live_activations']}")

        train_step, params = make_step(n_stages, schedule)
        mesh = core.RemoteMesh((schedule.n_actors,), cost_model=cost)
        step_fn = mesh.distributed(
            train_step, cost_fn=lambda task: 0.01 if task.kind == "fwd" else 0.02
        )
        out_params, losses = step_fn(params, batch)

        print(f"\nwall-clock timeline (virtual time, makespan "
              f"{step_fn.last_result.makespan:.3f}s):")
        loop_events = [e for e in step_fn.last_result.timeline
                       if e.kind == "task" and e.meta.get("phase") == "loop"]
        print(render_timeline(loop_events, schedule.n_actors, width=88))

        peaks = step_fn.peak_bytes_per_actor
        print(f"peak object-store bytes/actor: {[f'{p/1024:.0f}K' for p in peaks]}")

        top = step_fn.last_result.top_waits(3)
        if top:
            waits = ", ".join(f"{label} ({stat.total:.3f}s x{stat.count})"
                              for label, stat in top)
            print(f"longest-parked resources: {waits}")

        # and it is still exactly the single-device result:
        ref_params, ref_losses = train_step(params, batch)
        err = max(float(np.abs(a - b).max())
                  for a, b in zip(ir.tree_leaves(out_params), ir.tree_leaves(ref_params)))
        print(f"max |distributed - single device| = {err:.2e}\n")


if __name__ == "__main__":
    main()
