"""Process-per-rank MPMD execution and replay-tuning, end to end.

The same training step runs three ways:

1. on the in-process event engine (virtual time, the default);
2. on ``engine="mp"`` — every pipeline rank becomes a real OS process
   (spawn context) with its own object store, FIFO channels between rank
   pairs, and shared-memory transport for large tensors.  Results are
   bit-identical; timing is real wall-clock;
3. re-tuned: the measured mp timeline feeds
   ``CostModel.from_result``, and ``tune()`` picks the best schedule for
   the costs the hardware *actually* exhibited — the paper's
   measure → recompile loop.

Note the ``if __name__ == "__main__"`` guard: the spawn context re-imports
this module in every worker process, so top-level code must be guarded
(the standard ``multiprocessing`` rule).

Run: ``python examples/mp_runtime.py``
"""

import numpy as np

from repro import core, ir
from repro.core.autotune import CostModel, tune
from repro.models import init_mlp, mlp_loss
from repro.viz import render_timeline

N_STAGES = 4
N_MBS, MBSZ, D = 8, 16, 12
LR = 0.05


def train_step(params, batch):
    def microbatch_grads(mb):
        loss, grads = ir.value_and_grad(lambda p, m: mlp_loss(p, m, N_STAGES))(
            params, mb
        )
        return grads, loss

    grads, losses = core.accumulate_grads(
        microbatch_grads, core.OneFOneB(N_STAGES)
    )(batch)
    new_params = ir.tree_map(lambda w, g: w - LR * g, params, grads)
    return new_params, losses


def main() -> None:
    params = init_mlp(np.random.RandomState(0), N_STAGES, D, 2 * D, D)
    r = np.random.RandomState(1)
    batch = (
        r.randn(N_MBS, MBSZ, D).astype(np.float32),
        r.randn(N_MBS, MBSZ, D).astype(np.float32),
    )

    # 1. in-process reference
    ref_step = core.RemoteMesh((N_STAGES,)).distributed(train_step)
    ref_params, ref_losses = ref_step(params, batch)

    # 2. the same step across real OS processes
    mesh = core.RemoteMesh((N_STAGES,), engine="mp")
    mp_step = mesh.distributed(train_step)
    mp_params, mp_losses = mp_step(params, batch)

    same = all(
        np.array_equal(a, b)
        for a, b in zip(ir.tree_flatten(ref_params)[0], ir.tree_flatten(mp_params)[0])
    )
    print(f"{N_STAGES} actor processes, bit-identical to in-process: {same}")

    res = mp_step.last_result
    print(f"wall-clock makespan: {res.makespan * 1e3:.1f} ms, "
          f"{res.p2p_count} transfers, {res.p2p_bytes} bytes")
    print("\nmeasured wall-clock timeline (f = forward, b = backward):")
    print(render_timeline(res, width=80))

    # 3. replay-tune: feed the measured timeline back into the autotuner
    measured = CostModel.from_result(res, n_stages=N_STAGES)
    report = tune(measured, N_STAGES, N_MBS)
    print(f"\nmeasured per-stage fwd seconds: "
          f"{[f'{t*1e6:.0f}us' for t in measured.fwd]}")
    print(f"replay-tuned pick: {report.best.schedule.name} "
          f"(makespan {report.best.makespan * 1e3:.2f} ms under measured costs)")


if __name__ == "__main__":
    main()
