"""Figure 1, live: one model, three parallelism strategies, zero rewrites.

The paper's §2.1 demonstration: the FFN is written once with *logical*
axis names; instantiating it data-parallel, tensor-parallel (Megatron
style), or 2-D is purely a matter of the mesh shape and the logical-axis
rules. The script shows the per-device programs the partitioner generates —
including the all-reduce XLA would insert — and verifies every variant
against single-device execution.

Run: ``python examples/spmd_named_axes.py``
"""

import numpy as np

from repro import ir, spmd
from repro.models import ffn

RULES = {"batch": "data", "mlp": "model", "emb": None}
IN_SPECS = [("batch", "emb"), ("emb", "mlp"), ("mlp", "emb")]


def main() -> None:
    r = np.random.RandomState(0)
    X = r.randn(8, 16).astype(np.float32)
    W1 = r.randn(16, 32).astype(np.float32)
    W2 = r.randn(32, 16).astype(np.float32)

    jaxpr, _, _ = ir.trace(ffn, X, W1, W2)
    print("the model, traced once:")
    print(jaxpr)
    ref = ffn(X, W1, W2)

    for label, axes in [
        ("data parallel   [('data', 2), ('model', 1)]", [("data", 2), ("model", 1)]),
        ("tensor parallel [('data', 1), ('model', 2)]", [("data", 1), ("model", 2)]),
        ("2-D             [('data', 2), ('model', 2)]", [("data", 2), ("model", 2)]),
    ]:
        mesh = spmd.Mesh(axes)
        prog = spmd.partition(jaxpr, mesh, in_specs=IN_SPECS, rules=RULES)
        ex = spmd.SpmdExecutor(mesh)
        out = ex.run(prog, [X, W1, W2])[0]
        err = float(np.abs(out - ref).max())

        colls = [e.prim.name for e in prog.local_jaxpr.eqns
                 if e.prim.name in ("all_reduce", "all_gather", "mesh_split", "reduce_scatter")]
        shards = [v.aval.shape for v in prog.local_jaxpr.invars]
        print("=" * 72)
        print(f"{label}")
        print(f"  per-device input shards : X{shards[0]} W1{shards[1]} W2{shards[2]}")
        print(f"  collectives inserted    : {colls or 'none'}")
        print(f"  collective stats        : {ex.stats.counts} ({sum(ex.stats.bytes.values())} B)")
        print(f"  max |parallel - single| : {err:.2e}")
        assert err < 1e-4

    print("\nall three instantiations match the single-device model: OK")


if __name__ == "__main__":
    main()
