"""The cost-aware schedule autotuner, end to end.

Walks the full loop the tuner closes:

1. build a **heterogeneous cost model** — first a hand-skewed table (an
   expensive embedding-ish first stage), then an analytic transformer
   table through the paper's kernel model, where the head stage's logits
   projection skews the costs for real;
2. ``tune()`` prices every compatible gallery schedule on the actual
   event engine, excludes candidates over the activation-memory budget,
   and ranks the rest — printed with ``viz.render_tune_report``;
3. round two feeds the winner's **wait profile** back in: warmup shifts
   toward the longest-parked ranks (``Hybrid1F1B`` proposals) and beats
   the round-one winner when transfer latency is visible;
4. ``schedule="auto"`` does all of it at compile time on a real numeric
   pipeline — and the result stays bit-identical to the hand-picked
   schedule's.

Run: ``python examples/autotune.py``
"""

import numpy as np

from repro import core, ir
from repro.cluster.specs import DGX_H100
from repro.core.autotune import CostModel, tune
from repro.ir import nn, ops, pipeline_yield
from repro.perf import GPT3_175B, JAX_KERNELS
from repro.viz import render_schedule, render_tune_report

P, N_MBS = 4, 8


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    # ------------------------------------------------------------------
    banner("1. a skewed workload: stage 0 is 2x the other stages")
    cost = CostModel(
        fwd=(2.0, 1.0, 1.0, 1.0),
        bwd=(4.0, 2.0, 2.0, 2.0),
        act_bytes=(2.0, 1.0, 1.0, 1.0),
    )
    print(f"per-stage fwd costs: {cost.fwd}   skew: {cost.skew:.1f}x")

    report = tune(cost, n_actors=P, n_mbs=N_MBS)
    print(render_tune_report(report))
    print(f"\nwinner: {report.best.name} — "
          f"{(report.speedup_vs('GPipe') - 1) * 100:.0f}% faster than GPipe")

    # ------------------------------------------------------------------
    banner("2. a memory budget changes the answer")
    # 13 activation-bytes per rank: the doubled-warmup family (Eager,
    # ZB-H2 at 14) and GPipe (16) fall out; ZB-H1 keeps 1F1B's footprint
    budget = 13.0
    report = tune(cost, n_actors=P, n_mbs=N_MBS, memory_budget=budget)
    print(render_tune_report(report))
    print(f"\nwinner under the budget: {report.best.name}")

    # ------------------------------------------------------------------
    banner("3. wait-profile feedback: round 2 beats round 1 under latency")
    r1 = tune(cost, n_actors=P, n_mbs=N_MBS,
              candidates=[core.GPipe(P), core.OneFOneB(P)],
              rounds=1, p2p_latency_s=0.5)
    r2 = tune(cost, n_actors=P, n_mbs=N_MBS,
              candidates=[core.GPipe(P), core.OneFOneB(P)],
              rounds=2, p2p_latency_s=0.5)
    parked = r1.best.result.parked_by_rank()
    print(f"round 1 winner: {r1.best.name}  makespan {r1.best.makespan:.1f}")
    print(f"  parked time by rank: {[f'{t:.1f}' for t in parked]}")
    print(f"round 2 winner: {r2.best.name}  makespan {r2.best.makespan:.1f}  "
          f"({(1 - r2.best.makespan / r1.best.makespan) * 100:.0f}% less)")
    print("\nthe tuned warmup, rendered:")
    print(render_schedule(r2.best.schedule, N_MBS, width=100))

    # ------------------------------------------------------------------
    banner("4. analytic transformer costs: the head stage skews the table")
    # the paper's chunk granularity: 96 layers / (pp=8 x v=6) = 2 blocks
    # per scheduled task — at which the head's logits projection is a
    # visible surcharge on the last stage
    tcost = CostModel.from_kernels(
        GPT3_175B, DGX_H100.gpu, JAX_KERNELS,
        n_stages=8, layers_per_stage=2, mbs=1, tp=8,
    )
    print(f"fwd seconds by stage: {[f'{t:.4f}' for t in tcost.fwd]}  "
          f"(skew {tcost.skew:.2f}x from the logits head)")
    treport = tune(tcost, n_actors=8, n_mbs=16)
    print(render_tune_report(treport))

    # ------------------------------------------------------------------
    banner('5. schedule="auto" on a real numeric pipeline')
    rng = np.random.RandomState(0)
    d = 16
    params = {f"w{i}": (rng.randn(d, d) * 0.3).astype(np.float32) for i in range(P)}
    X = rng.randn(N_MBS, 6, d).astype(np.float32)
    Y = rng.randn(N_MBS, 6, d).astype(np.float32)

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(P):
            h = ops.matmul(h, p[f"w{i}"])
            if i < P - 1:
                h = pipeline_yield(nn.relu(h))
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.05, g)), params, grads)
        return new, loss

    mesh = core.RemoteMesh((P,))
    auto_fn = mesh.distributed(train_step, schedule="auto")
    auto_out, _ = auto_fn(params, (X, Y))
    picked = auto_fn.compiled.schedule
    print(f"the compiler picked: {picked.name}")
    print(render_tune_report(auto_fn.compiled.tune_report))

    ref_fn = mesh.distributed(train_step, schedule=core.OneFOneB(P))
    ref_out, _ = ref_fn(params, (X, Y))
    same = all(
        np.array_equal(a, b)
        for a, b in zip(ir.tree_leaves(auto_out), ir.tree_leaves(ref_out))
    )
    print(f"bit-identical to the hand-picked 1F1B run: {same}")


if __name__ == "__main__":
    main()
