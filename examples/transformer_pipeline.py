"""Train a mini-GPT with pipeline parallelism, tied embeddings, and Adam.

This is the paper's headline workload shrunk to laptop scale: a decoder-
only transformer cut into pipeline stages with ``pipeline_yield``, trained
with ``accumulate_grads`` + Adam under an Interleaved 1F1B schedule on a
2-actor mesh with 2 data-parallel replicas (4 actors total). Tied
embeddings put the same weight on the first and last stage, so the §3.4
loop-commuting pass kicks in — the script prints how many gradients were
commuted and the per-step P2P traffic.

Run: ``python examples/transformer_pipeline.py``
"""

import numpy as np

from repro import core, ir
from repro.data import token_batches
from repro.models import (
    TrainState,
    TransformerConfig,
    adam_apply,
    adam_init,
    constant_lr,
    init_transformer,
    transformer_loss,
)

CFG = TransformerConfig(
    vocab=64, seq=12, d_model=32, n_heads=4, d_ff=64,
    n_layers=4, n_stages=4, tie_embeddings=True,
)
N_MBS, MBSZ = 4, 8
SCHEDULE = core.Interleaved1F1B(n_actors=2, circular_repeat=2)  # 4 stages on 2 actors
DP = 2


def train_step(state: TrainState, batch):
    def microbatch_grads(mubatch):
        loss, grads = ir.value_and_grad(
            lambda p, mb: transformer_loss(p, mb, CFG)
        )(state.params, mubatch)
        return grads, loss

    grads, losses = core.accumulate_grads(microbatch_grads, SCHEDULE)(batch)
    new_state = adam_apply(state, grads, constant_lr(3e-3)(state.step))
    return new_state, losses


def main() -> None:
    params = init_transformer(np.random.RandomState(0), CFG)
    state = TrainState(params, adam_init(params), np.int32(0))

    mesh = core.RemoteMesh((DP, SCHEDULE.n_actors))
    step_fn = mesh.distributed(train_step)

    n_params = sum(int(np.asarray(p).size) for p in ir.tree_leaves(params))
    print(f"mini-GPT: {n_params/1e3:.1f}k params, {CFG.n_layers} layers, "
          f"{CFG.n_stages} stages on {SCHEDULE.n_actors} actors x {DP} replicas")
    print(f"schedule: {SCHEDULE.name}")

    losses_hist = []
    for i, batch in enumerate(token_batches(CFG.vocab, CFG.seq, N_MBS, MBSZ, 30, seed=2)):
        state, losses = step_fn(state, batch)
        loss = float(np.mean(losses))
        losses_hist.append(loss)
        if i % 5 == 0:
            print(f"step {i:>3}: loss {loss:.4f}")

    c = step_fn.compiled
    print(f"\nfinal loss  : {losses_hist[-1]:.4f} (from {losses_hist[0]:.4f})")
    print(f"commuted shared-weight gradients (§3.4): {c.n_commuted}")
    print(f"instructions: {c.instruction_counts}")
    print(f"P2P per step: {step_fn.last_result.p2p_count} transfers")
    assert losses_hist[-1] < losses_hist[0], "training must reduce the loss"
    assert c.n_commuted >= 1, "tied embeddings must trigger loop commuting"
    print("OK")


if __name__ == "__main__":
    main()
