"""Plan a GPT-3 175B training run on DGX-H100s with the performance model.

Uses the calibrated simulator behind the paper's evaluation to answer the
practical question §5.1 is about: *given a GPU budget, which parallelism
configuration should you run?* Sweeps (pp, tp, v, mbs) for a fixed global
batch, reports predicted step time / TFLOPS / memory-remat status, and
prints the winner next to the paper's published configuration.

Run: ``python examples/paper_scale_planner.py``
"""

from repro.perf import GPT3_175B, jaxpp

N_GPUS = 64
GBS = 128


def main() -> None:
    print(f"planning GPT-3 175B on {N_GPUS} H100s, global batch {GBS}\n")
    print(f"{'pp':>3} {'tp':>3} {'v':>3} {'mbs':>4} {'GA':>4} "
          f"{'step(s)':>8} {'TF/dev':>7} {'remat':>6} {'bubble%':>8}")

    rows = []
    for pp, tp in [(8, 8), (4, 8), (8, 4), (16, 4)]:
        if pp * tp != N_GPUS:
            continue
        for v in (1, 2, 3, 6, 12):
            if GPT3_175B.n_layers % (pp * v) != 0:
                continue
            for mbs in (1, 2, 4):
                n_mbs = GBS // mbs
                if n_mbs % pp != 0:
                    continue
                r = jaxpp(GPT3_175B, pp=pp, tp=tp, dp=1, v=v, mbs=mbs, n_mbs=n_mbs)
                bubble = r.sim.breakdown["bubble"] / r.sim.makespan * 100
                rows.append((r.step_time, pp, tp, v, mbs, n_mbs, r, bubble))

    rows.sort()
    for step, pp, tp, v, mbs, n_mbs, r, bubble in rows[:12]:
        print(f"{pp:>3} {tp:>3} {v:>3} {mbs:>4} {n_mbs:>4} "
              f"{step:>8.2f} {r.tflops:>7.0f} {r.sim.remat.kind:>6} {bubble:>7.1f}%")

    best = rows[0]
    print(f"\nbest found : pp={best[1]} tp={best[2]} v={best[3]} mbs={best[4]} "
          f"-> {best[0]:.2f}s ({best[6].tflops:.0f} TF/dev)")
    print("paper's run: pp=8  tp=8 v=6 mbs=4 -> 9.53s (462 TF/dev)")


if __name__ == "__main__":
    main()
