"""Fault-tolerant training steps: kill a rank mid-run, watch it recover.

A 12-step training loop runs on the persistent process-per-rank pool
with recovery enabled::

    mesh = core.RemoteMesh((N_STAGES,), engine="mp",
                           recovery=RecoveryPolicy(snapshot_every=2))

and a deterministic fault plan that kills rank 1 with ``os._exit(137)``
right before step 5 — the same injection harness the test suite uses, so
the "failure" is reproducible rather than a hand-timed ``kill -9``.

What happens at step 5:

1. the pool reports ``actor 1 died without reporting (exitcode 137)``;
2. the wrapper classifies the failure as recoverable and records a
   :class:`~repro.runtime.recovery.RankFailure`;
3. the mesh respawns a fresh pool (generation 2 — the fault plan is
   generation-gated, so the kill does not recur);
4. the newest snapshot is restored and the lost steps are replayed.

Steps are functional and deterministic, so the final parameters are
**bit-identical** to an uninterrupted run on the in-process event
engine — the loop never sees the failure except through the
``step_fn.failures`` history.

Note the ``if __name__ == "__main__"`` guard: the spawn context
re-imports this module in every worker process, so top-level code must
be guarded (the standard ``multiprocessing`` rule).

Run: ``python examples/recovery.py``
"""

import numpy as np

from repro import core, ir
from repro.models import init_mlp, mlp_loss
from repro.runtime import FaultPlan, RecoveryPolicy

N_STAGES = 4
N_MBS, MBSZ, D = 8, 16, 12
N_STEPS = 12
KILLED_RANK, KILLED_STEP = 1, 5
LR = 0.05


def train_step(params, batch):
    def microbatch_grads(mb):
        loss, grads = ir.value_and_grad(lambda p, m: mlp_loss(p, m, N_STAGES))(
            params, mb
        )
        return grads, loss

    grads, losses = core.accumulate_grads(
        microbatch_grads, core.OneFOneB(N_STAGES)
    )(batch)
    new_params = ir.tree_map(lambda w, g: w - LR * g, params, grads)
    return new_params, losses


def run_loop(step_fn, params, batches):
    losses = []
    for batch in batches:
        params, step_losses = step_fn(params, batch)
        losses.append(float(np.mean(step_losses)))
    return params, losses


def main() -> None:
    params = init_mlp(np.random.RandomState(0), N_STAGES, D, 2 * D, D)
    r = np.random.RandomState(1)
    batches = [
        (r.randn(N_MBS, MBSZ, D).astype(np.float32),
         r.randn(N_MBS, MBSZ, D).astype(np.float32))
        for _ in range(N_STEPS)
    ]

    # reference: the same loop, uninterrupted, on the in-process engine
    ref_step = core.RemoteMesh((N_STAGES,)).distributed(
        train_step, schedule=core.OneFOneB(N_STAGES)
    )
    ref_params, ref_losses = run_loop(ref_step, params, batches)

    # the resilient run: snapshot every 2 steps, kill rank 1 before step 5
    mesh = core.RemoteMesh(
        (N_STAGES,), engine="mp",
        recovery=RecoveryPolicy(snapshot_every=2, keep=2),
        fault_plan=FaultPlan(kill_rank=KILLED_RANK, at_step=KILLED_STEP),
    )
    step_fn = mesh.distributed(train_step, schedule=core.OneFOneB(N_STAGES))
    try:
        got_params, got_losses = run_loop(step_fn, params, batches)

        print(f"{N_STEPS}-step loop, rank {KILLED_RANK} killed before "
              f"step {KILLED_STEP}:")
        for f in step_fn.failures:
            print(f"  step {f.step}: {f.kind} on ranks {f.ranks} "
                  f"(attempt {f.attempt}) -> recovered")
        print(f"  recoveries: {step_fn.recoveries}, "
              f"snapshots written: {step_fn.snapshots_written}, "
              f"pool generations: {mesh._pool_generation}")

        same = all(
            np.array_equal(a, b)
            for a, b in zip(ir.tree_flatten(ref_params)[0],
                            ir.tree_flatten(got_params)[0])
        )
        print(f"  final params bit-identical to uninterrupted run: {same}")
        print(f"  losses match: {got_losses == ref_losses}")
    finally:
        step_fn.close()
        mesh.close()


if __name__ == "__main__":
    main()
