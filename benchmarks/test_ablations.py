"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but quantified versions of its design
arguments, at paper scale on the calibrated model:

- schedule ablation (GPipe vs 1F1B vs Interleaved at the same budget);
- asynchronous vs synchronous P2P (§5.3's overlap);
- dispatch-overhead sensitivity (why §5.1.1's tradeoff exists at all);
- loop commuting's traffic saving (§3.4), measured on the *numeric*
  runtime with real tied-embedding gradients.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster.specs import DGX_H100
from repro.perf import GPT3_175B
from repro.perf.kernels import JAX_KERNELS
from repro.perf.pipeline_sim import PipelineSimConfig, simulate_pipeline
from repro.runtime.executor import CommMode

from .conftest import emit


def _sim(**kw):
    base = dict(model=GPT3_175B, node=DGX_H100, pp=8, tp=8, dp=1, v=1,
                mbs=2, n_mbs=32, kernels=JAX_KERNELS, schedule="1f1b",
                comm_mode=CommMode.ASYNC)
    base.update(kw)
    return simulate_pipeline(PipelineSimConfig(**base))


def test_ablation_schedules(benchmark, results_dir):
    def run():
        return {
            "GPipe (sync, as SPMD PP would)": _sim(schedule="gpipe", comm_mode=CommMode.SYNC),
            "GPipe (async)": _sim(schedule="gpipe"),
            "1F1B": _sim(schedule="1f1b"),
            "Interleaved v=3": _sim(schedule="interleaved", v=3),
            "Interleaved v=6": _sim(schedule="interleaved", v=6),
        }

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["GPT-3 175B, TP8 x PP8, mbs 2, GA 32 — schedule ablation",
             f"{'schedule':<32} {'step(s)':>8} {'bubble(s)':>10} {'remat':>6}"]
    for name, r in res.items():
        lines.append(f"{name:<32} {r.step_time:>8.2f} "
                     f"{r.breakdown['bubble']:>10.2f} {r.remat.kind:>6}")
    emit(results_dir, "ablation_schedules", "\n".join(lines))

    assert res["Interleaved v=6"].step_time < res["1F1B"].step_time
    assert res["1F1B"].step_time <= res["GPipe (async)"].step_time * 1.02
    # GPipe at GA 32 with mbs 2 must rematerialise; 1F1B must not
    assert res["GPipe (async)"].remat.kind == "full"
    assert res["1F1B"].remat.kind == "none"


def test_ablation_async_p2p(benchmark, results_dir):
    def run():
        return {m.value: _sim(comm_mode=m).makespan for m in (CommMode.ASYNC, CommMode.SYNC)}

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = res["sync"] / res["async"]
    emit(results_dir, "ablation_async_p2p",
         f"1F1B makespan — async {res['async']:.2f}s vs sync {res['sync']:.2f}s "
         f"({gain:.3f}x from overlapping P2P)")
    assert gain > 1.0


def test_ablation_dispatch_overhead(benchmark, results_dir):
    def run():
        out = {}
        for disp in (0.0, 150e-6, 1e-3):
            kern = dataclasses.replace(JAX_KERNELS, dispatch_s=disp)
            out[disp] = {
                v: _sim(schedule="interleaved", v=v, mbs=1, n_mbs=64, kernels=kern).step_time
                for v in (1, 6, 12)
            }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["dispatch-overhead sensitivity (step seconds, mbs 1, GA 64)",
             f"{'dispatch':>10} {'v=1':>8} {'v=6':>8} {'v=12':>8}"]
    for disp, row in res.items():
        lines.append(f"{disp * 1e6:>8.0f}us {row[1]:>8.2f} {row[6]:>8.2f} {row[12]:>8.2f}")
    emit(results_dir, "ablation_dispatch", "\n".join(lines))

    # with free dispatch, more interleaving only helps; at 1 ms it hurts
    assert res[0.0][12] <= res[0.0][6]
    assert res[1e-3][12] > res[1e-3][6]


def test_ablation_loop_commuting_traffic(benchmark, results_dir):
    """§3.4 measured: tied-embedding gradient traffic with and without the
    rewrite, on the numeric runtime."""
    from repro import core, ir
    from repro.core.loop_commute import CommuteResult
    import repro.core.compile as cc
    from repro.ir import nn, ops, pipeline_yield

    r = np.random.RandomState(0)
    n_mbs, mbsz, d = 8, 8, 16
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    params = {"w0": (r.randn(d, d) * 0.3).astype(np.float32),
              "w1": (r.randn(d, d) * 0.3).astype(np.float32)}

    def loss_fn(p, mb):
        x, y = mb
        h = pipeline_yield(nn.relu(ops.matmul(x, p["w0"])))
        h = pipeline_yield(nn.relu(ops.matmul(h, p["w1"])))
        h = ops.matmul(h, p["w0"])  # tied reuse of w0 on the last stage
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.1, g)), params, grads)
        return new, loss

    def run():
        out = {}
        step = core.RemoteMesh((3,)).distributed(train_step, schedule=core.OneFOneB(3))
        step(params, (X, Y))
        out["commuted"] = (step.last_result.p2p_count, step.last_result.p2p_bytes,
                           step.compiled.n_commuted)
        orig = cc.commute_shared_gradients
        cc.commute_shared_gradients = lambda body, out_ops, schedule, split=None: CommuteResult(
            body=split.body if split and split.body is not None else body,
            out_ops=tuple(out_ops), combines=[],
            out_map=[("direct", i) for i in range(len(out_ops))], n_commuted=0)
        try:
            step2 = core.RemoteMesh((3,)).distributed(train_step, schedule=core.OneFOneB(3))
            step2(params, (X, Y))
        finally:
            cc.commute_shared_gradients = orig
        out["naive"] = (step2.last_result.p2p_count, step2.last_result.p2p_bytes, 0)
        # both must still be exact
        ref_p, _ = train_step(params, (X, Y))
        for s in (step, step2):
            got_p, _ = s(params, (X, Y))
            for k in params:
                np.testing.assert_allclose(got_p[k], ref_p[k], atol=1e-5)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    (c_n, c_b, n_comm), (u_n, u_b, _) = res["commuted"], res["naive"]
    emit(results_dir, "ablation_loop_commuting",
         f"tied-weight gradient traffic over {n_mbs} microbatches (3 stages):\n"
         f"  with loop commuting (§3.4): {c_n} transfers, {c_b} bytes "
         f"({n_comm} gradient(s) commuted)\n"
         f"  without                   : {u_n} transfers, {u_b} bytes\n"
         f"  saving: {u_n - c_n} transfers ({(1 - c_b / u_b) * 100:.0f}% bytes)")
    assert n_comm == 1
    assert c_n < u_n
    assert c_b < u_b
