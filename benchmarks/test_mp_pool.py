"""Persistent-pool benchmark: steady-state overhead + concurrent throughput.

``BENCH_mp.json`` records the *cold* process-per-rank trajectory (~139×
a tiny in-process step, dominated by spawn + program pickling).  This
record answers the follow-up question: once the :class:`ActorPool` has
spawned the mesh and shipped the program, what does a step cost?

Persisted to ``BENCH_mp_pool.json``:

1. **Steady state** — the same pp=4 transformer step as ``BENCH_mp``
   through one warm pool: first (cold) call vs the median warm step, the
   warm overhead vs the in-process event engine, results bit-identical.
   Acceptance (ISSUE 6): steady-state ``mp_overhead_x`` ≤ 5.

2. **Concurrent submitters** — 4 driver threads, each its own compiled
   step multiplexed onto the *same* pool, measuring aggregate steps/s.
   The workers serialise execution (one mesh), so this is a submission-
   pipeline stress: shipping, input staging, and result merging overlap
   step execution rather than adding to it.
"""

import json
import statistics
import threading
import time

from repro import core
from tests.core.test_linear_backend import assert_bit_identical

from .conftest import emit
from .test_mp_runtime import _transformer_problem

WATCHDOG_S = 120.0

#: steady-state sample size (median over these, after the cold call).
N_WARM = 15

#: concurrent-submitter stress shape.
N_THREADS = 4
STEPS_PER_THREAD = 8


def test_mp_pool_steady_state_and_concurrency(results_dir):
    record = {}

    # ---- 1. steady state: one warm pool vs the event engine -------------
    train_step, params, batch = _transformer_problem()
    event_step = core.RemoteMesh((4,)).distributed(
        train_step, schedule=core.OneFOneB(4)
    )
    want = event_step(params, batch)  # compile + reference run
    event_times = []
    for _ in range(N_WARM):
        t0 = time.perf_counter()
        want = event_step(params, batch)
        event_times.append(time.perf_counter() - t0)
    event_s = statistics.median(event_times)

    mesh = core.RemoteMesh((4,), engine="mp", mp_watchdog_s=WATCHDOG_S)
    try:
        mp_step = mesh.distributed(train_step, schedule=core.OneFOneB(4))
        t0 = time.perf_counter()
        got = mp_step(params, batch)  # spawns the pool + ships the program
        cold_s = time.perf_counter() - t0
        assert_bit_identical(want, got)

        warm_times = []
        for _ in range(N_WARM):
            t0 = time.perf_counter()
            got = mp_step(params, batch)
            warm_times.append(time.perf_counter() - t0)
        warm_s = statistics.median(warm_times)
        assert_bit_identical(want, got)

        pool = mesh._mp_pool
        overhead_x = warm_s / event_s if event_s > 0 else float("inf")
        record["steady_state"] = {
            "workload": "pp=4 transformer (4 layers, d=16), n_mbs=4",
            "event_step_s": event_s,
            "cold_first_step_s": cold_s,
            "warm_step_s": warm_s,
            "mp_overhead_x": overhead_x,
            "warmup_amortized_x": cold_s / warm_s if warm_s > 0 else float("inf"),
            "n_warm_samples": N_WARM,
            "ship_count": pool.ship_count,
            "submit_count": pool.submit_count,
        }
        assert pool.ship_count == 1, "steady state must reuse the shipped program"

        # ISSUE 6 acceptance: low-single-digit steady-state overhead
        # (vs ~139x cold) — the pool pays queue hops and input staging,
        # never spawn or program pickling
        assert overhead_x <= 5.0, (
            f"steady-state mp overhead {overhead_x:.2f}x exceeds the 5x bound "
            f"(warm {warm_s * 1e3:.1f}ms vs event {event_s * 1e3:.1f}ms)"
        )

        # ---- 2. four concurrent submitters on the same pool -------------
        steps = [
            mesh.distributed(train_step, schedule=core.OneFOneB(4))
            for _ in range(N_THREADS)
        ]
        for s in steps:
            s(params, batch)  # compile + ship each step's program once

        errors = []

        def submitter(step_fn):
            try:
                for _ in range(STEPS_PER_THREAD):
                    step_fn(params, batch)
            except BaseException as e:  # pragma: no cover - surfaced below
                errors.append(e)

        threads = [
            threading.Thread(target=submitter, args=(s,)) for s in steps
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        assert not errors, errors
        total_steps = N_THREADS * STEPS_PER_THREAD
        record["concurrent"] = {
            "n_submitters": N_THREADS,
            "steps_per_submitter": STEPS_PER_THREAD,
            "wall_s": wall,
            "steps_per_s": total_steps / wall,
            "serial_steps_per_s": 1.0 / warm_s,
            "ship_count": pool.ship_count,  # 1 + one per extra compiled step
            "max_inflight": pool.max_inflight,
        }
        # the shared mesh serialises execution; concurrency must not
        # collapse throughput below a serial submitter's
        assert record["concurrent"]["steps_per_s"] >= 0.5 / warm_s
    finally:
        mesh.close()

    (results_dir / "BENCH_mp_pool.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    emit(results_dir, "mp_pool", json.dumps(record, indent=2))
