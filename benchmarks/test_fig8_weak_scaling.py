"""Figure 8: weak scaling, 64 -> 1024 GPUs (GBS = 2 x #GPUs).

JaxPP (TP8 x PP8, interleaved v=6, GA 32, growing DP) against JAX FSDP.
The paper reports 92.87% weak-scaling efficiency for JaxPP vs 93.97% for
FSDP, with JaxPP ahead in absolute throughput at every point.
"""

import pytest

from repro.perf import GPT3_175B, jax_fsdp, jaxpp

from .conftest import emit

SCALES = ((64, 1), (128, 2), (256, 4), (512, 8), (1024, 16))
PAPER_JAXPP = {64: 462, 128: 457, 256: 452, 512: 454, 1024: 430}
PAPER_FSDP = {64: 415, 128: 412, 256: 404, 512: 400, 1024: 390}


@pytest.fixture(scope="module")
def fig8_data():
    rows = []
    for gpus, dp in SCALES:
        j = jaxpp(GPT3_175B, pp=8, tp=8, dp=dp, v=6, mbs=4, n_mbs=32)
        f = jax_fsdp(GPT3_175B, gpus, 2 * gpus, fsdp_group=min(gpus, 128))
        rows.append((gpus, j, f))
    return rows


def test_fig8_regenerate(benchmark, results_dir, fig8_data):
    benchmark.pedantic(
        lambda: jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32),
        rounds=1, iterations=1,
    )
    lines = ["GPT-3 175B weak scaling, global batch = 2 x #GPUs",
             f"{'#GPUs':>6} {'JaxPP TF/dev':>13} {'(paper)':>8} {'FSDP TF/dev':>12} {'(paper)':>8}"]
    for gpus, j, f in fig8_data:
        lines.append(
            f"{gpus:>6} {j.tflops:>13.0f} {PAPER_JAXPP[gpus]:>8} "
            f"{f.tflops:>12.0f} {PAPER_FSDP[gpus]:>8}"
        )
    j64, j1024 = fig8_data[0][1].tflops, fig8_data[-1][1].tflops
    f64, f1024 = fig8_data[0][2].tflops, fig8_data[-1][2].tflops
    lines.append(f"\nweak-scaling efficiency 64->1024: "
                 f"JaxPP {j1024 / j64:.2%} (paper 92.87%), "
                 f"FSDP {f1024 / f64:.2%} (paper 93.97%)")
    emit(results_dir, "fig8_weak_scaling", "\n".join(lines))


def test_fig8_jaxpp_leads_at_every_scale(benchmark, fig8_data):
    def check():
        for gpus, j, f in fig8_data:
            assert j.tflops > f.tflops, gpus
            assert j.step_time < f.step_time, gpus

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig8_efficiencies_in_band(benchmark, fig8_data):
    def check():
        j_eff = fig8_data[-1][1].tflops / fig8_data[0][1].tflops
        f_eff = fig8_data[-1][2].tflops / fig8_data[0][2].tflops
        assert j_eff == pytest.approx(0.9287, abs=0.035)
        assert f_eff == pytest.approx(0.9397, abs=0.035)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig8_absolute_bands(benchmark, fig8_data):
    def check():
        for gpus, j, f in fig8_data:
            assert j.tflops == pytest.approx(PAPER_JAXPP[gpus], rel=0.10), gpus
            assert f.tflops == pytest.approx(PAPER_FSDP[gpus], rel=0.10), gpus

    benchmark.pedantic(check, rounds=1, iterations=1)