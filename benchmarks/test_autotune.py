"""Autotuner guard: the ISSUE-4 acceptance criterion, measured.

On a skewed-cost transformer workload (GPT-3 175B stage costs through
the §5.1 kernel model, where the head stage pays the logits projection),
``tune()`` searched over both chunk granularities (one stage per rank,
and the two-chunk circular/v-shape placements) must select a schedule
that

- beats **GPipe's makespan by >= 20%** in the pipeline pricing engine, and
- respects a **1F1B-level activation-memory budget** per rank (which
  GPipe itself, holding every microbatch's activation, cannot).

A ``BENCH_autotune.json`` perf record tracks the margin across PRs.
"""

import json

from repro.cluster.specs import DGX_H100
from repro.core.autotune import CostModel, tune
from repro.perf import GPT3_175B, JAX_KERNELS
from repro.viz import render_tune_report

from .conftest import emit

PP = 8          # pipeline ranks
N_MBS = 12      # microbatches per step
LAYERS = 96     # GPT-3 blocks: 12 per rank -> v=1: 12/stage, v=2: 6/chunk


def _cost(n_stages: int, layers_per_stage: int) -> CostModel:
    return CostModel.from_kernels(
        GPT3_175B, DGX_H100.gpu, JAX_KERNELS,
        n_stages=n_stages, layers_per_stage=layers_per_stage, mbs=1, tp=8,
    )


def test_tuned_schedule_beats_gpipe_within_memory_budget(results_dir):
    cm_v1 = _cost(PP, LAYERS // PP)
    cm_v2 = _cost(2 * PP, LAYERS // (2 * PP))
    assert cm_v1.skew > 1.0  # the head stage genuinely skews the table

    # unbudgeted baseline run: GPipe's event-engine makespan
    base = tune(cm_v1, PP, N_MBS, rounds=1)
    gpipe = next(e for e in base.entries if e.name == "GPipe")
    assert gpipe.feasible

    # the budget: 1F1B's activation bytes (+5% slack), per rank
    one_f1b = next(e for e in base.entries if e.name == "OneFOneB")
    budget = one_f1b.peak_act_bytes * 1.05

    r1 = tune(cm_v1, PP, N_MBS, memory_budget=budget)
    r2 = tune(cm_v2, PP, N_MBS, memory_budget=budget)
    tuned = min([r1.best, r2.best], key=lambda e: e.makespan)

    # GPipe (all 12 microbatches live) and ZB-H2 (2p - 1 live) are over
    # the 1F1B budget; the winner fits it
    assert not next(e for e in r1.entries if e.name == "GPipe").feasible
    assert not next(e for e in r1.entries if e.name == "ZB-H2").feasible
    assert tuned.peak_act_bytes <= budget

    improvement = 1.0 - tuned.makespan / gpipe.makespan
    assert improvement >= 0.20, (
        f"tuned {tuned.name} at {tuned.makespan:.4f}s only "
        f"{improvement:.1%} better than GPipe's {gpipe.makespan:.4f}s"
    )

    lines = [
        f"workload: GPT-3 175B over pp={PP}, tp=8, mbs=1, n_mbs={N_MBS} "
        f"(head-stage skew {cm_v1.skew:.2f}x)",
        f"memory budget: {budget:.3e} activation bytes/rank (1F1B level)",
        f"GPipe makespan:  {gpipe.makespan:.4f}s",
        f"tuned makespan:  {tuned.makespan:.4f}s  ({tuned.name}, "
        f"round {tuned.round})",
        f"improvement:     {improvement:.1%}  (acceptance floor: 20%)",
        "",
        "one-stage-per-rank search (budgeted):",
        render_tune_report(r1),
        "",
        "two-chunk search (budgeted):",
        render_tune_report(r2),
    ]
    emit(results_dir, "autotune_vs_gpipe", "\n".join(lines))

    record = {
        "workload": {
            "model": GPT3_175B.name, "pp": PP, "tp": 8, "mbs": 1,
            "n_mbs": N_MBS, "kernels": JAX_KERNELS.name,
            "head_skew": cm_v1.skew,
        },
        "memory_budget_bytes": budget,
        "gpipe_makespan_s": gpipe.makespan,
        "tuned_makespan_s": tuned.makespan,
        "tuned_schedule": tuned.name,
        "tuned_peak_act_bytes": tuned.peak_act_bytes,
        "improvement_fraction": improvement,
        "tie_break_visits": (r2 if tuned is r2.best else r1).tie_break_visits,
    }
    (results_dir / "BENCH_autotune.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )


def test_wait_profile_round_improves_latency_bound_search(results_dir):
    """The round-2 guard: on a skewed table with visible transfer
    latency, the wait-profile-driven warmup proposals must strictly beat
    the best gallery 1F1B-family candidate of round 1."""
    from repro import core

    cm = CostModel(fwd=(2.0, 1.0, 1.0, 1.0), bwd=(4.0, 2.0, 2.0, 2.0))
    cands = lambda: [core.GPipe(4), core.OneFOneB(4)]
    r1 = tune(cm, 4, 8, candidates=cands(), rounds=1, p2p_latency_s=0.5)
    r2 = tune(cm, 4, 8, candidates=cands(), rounds=2, p2p_latency_s=0.5)
    assert r2.best.makespan < r1.best.makespan
    emit(
        results_dir,
        "autotune_wait_profile_round",
        f"round 1: {r1.best.name} {r1.best.makespan:.2f}\n"
        f"round 2: {r2.best.name} {r2.best.makespan:.2f} "
        f"({(1 - r2.best.makespan / r1.best.makespan):.1%} faster)\n"
        f"parked by rank (round 1 winner): "
        f"{[round(t, 1) for t in r1.best.result.parked_by_rank()]}",
    )
