"""Engine × schedule matrix: the event-driven runtime vs the round-robin
reference, across all five schedule families.

Two claims are checked here (and a comparison table is emitted):

1. **Equivalence** — for every schedule and comm mode, both engines
   produce identical ``ExecutionResult``s (makespan, timeline, P2P
   counts).  The randomized version of this lives in
   ``tests/runtime/test_engine_equivalence.py``; this file covers the
   paper's actual schedule shapes at benchmark scale.

2. **O(1) instruction visits** — the acceptance criterion for the
   engine rewrite, asserted on counters rather than wall-clock: on the
   8-actor × 32-microbatch 1F1B program the event engine performs *zero*
   re-polls (visits of an instruction still blocked on an unchanged
   resource) while the round-robin fixpoint re-polls every blocked actor
   on every pass — at least 5× the event engine's count (counting its
   floor of one), and strictly more total visits.

The programs are instruction-level encodings of each schedule with §4.2
topological send/recv placement — the same shape ``compile_train_step``
emits and ``perf.pipeline_sim`` simulates.
"""

import pytest

from repro.core.schedules import (
    Eager1F1B,
    GPipe,
    Interleaved1F1B,
    InterleavedZB,
    LoopedBFS,
    OneFOneB,
    ZBH1,
    ZBH2,
    schedule_stats,
)
from repro.runtime import BufferRef, CommMode, LinearCost, MpmdExecutor, Recv, RunTask, Send

from .conftest import emit

B = BufferRef
FWD_T, BWD_T = 1.0, 2.0
NBYTES = 8


def build_programs(sched, n_mbs):
    """Instruction programs for a schedule, read off its lowered
    ScheduleIR: one RunTask per slot with the IR's local dependencies as
    in_refs, one send/recv pair per cross-rank edge, all placed in the
    IR's global topological order (§4.2)."""
    ir = sched.lower(n_mbs)
    progs = [[] for _ in range(ir.n_ranks)]

    def uid(u):
        return f"{u.kind}{u.stage}.{u.mb}"

    frac = sched.bwd_input_fraction
    cost_of = {"fwd": FWD_T, "bwd": BWD_T, "bwd_i": BWD_T * frac, "bwd_w": BWD_T * (1 - frac)}
    for slot in ir.toposort():
        a, u = slot.rank, slot.unit
        in_refs = [B(uid(d.unit)) for d in ir.buffer_deps(slot)]
        progs[a].append(
            RunTask(f"{u.kind}{u.stage}({u.mb})", in_refs, [B(uid(u))],
                    fn=None, cost=cost_of[u.kind], meta={"out_nbytes": [NBYTES]})
        )
        for dst in ir.send_dsts(slot):
            key = uid(u)
            progs[a].append(Send(B(key), dst, key))
            progs[dst].append(Recv(B(key), a, key, NBYTES))
    return progs


SCHEDULES = [
    ("GPipe", GPipe(8)),
    ("1F1B", OneFOneB(8)),
    ("Eager1F1B", Eager1F1B(8)),
    ("ZB-H1", ZBH1(8)),
    ("ZB-H2", ZBH2(8)),
    ("Interleaved(v=2)", Interleaved1F1B(8, 2)),
    ("LoopedBFS(v=2)", LoopedBFS(8, 2)),
    ("Interleaved-ZB(v=2)", InterleavedZB(8, 2)),
]
N_MBS = 32


def run_engines(sched, n_mbs, mode):
    out = {}
    for engine in ("event", "roundrobin"):
        ex = MpmdExecutor(sched.n_actors, cost_model=LinearCost(), comm_mode=mode,
                          engine=engine)
        out[engine] = ex.execute(build_programs(sched, n_mbs))
    return out


def test_engines_identical_across_schedule_matrix(results_dir):
    rows = [f"{'schedule':18s} {'mode':6s} {'makespan':>9s} {'instrs':>7s} "
            f"{'ev visits':>9s} {'rr visits':>9s} {'ev repoll':>9s} {'rr repoll':>9s}"]
    for name, sched in SCHEDULES:
        n_instr = sum(len(p) for p in build_programs(sched, N_MBS))
        for mode in (CommMode.ASYNC, CommMode.SYNC):
            res = run_engines(sched, N_MBS, mode)
            ev, rr = res["event"], res["roundrobin"]
            assert ev.makespan == rr.makespan, (name, mode)
            assert ev.timeline == rr.timeline, (name, mode)
            assert ev.p2p_count == rr.p2p_count and ev.p2p_bytes == rr.p2p_bytes
            assert ev.actor_finish == rr.actor_finish
            # O(1) visits per instruction, every schedule and mode: one
            # visit per task, at most post + completion per comm op
            assert ev.repolls == 0, (name, mode)
            assert ev.visits <= 2 * n_instr, (name, mode)
            assert ev.visits <= rr.visits, (name, mode)
            rows.append(
                f"{name:18s} {mode.value:6s} {ev.makespan:9.1f} {n_instr:7d} "
                f"{ev.visits:9d} {rr.visits:9d} {ev.repolls:9d} {rr.repolls:9d}"
            )
    emit(results_dir, "schedule_engine_matrix", "\n".join(rows))


@pytest.mark.parametrize("mode", [CommMode.ASYNC, CommMode.SYNC], ids=lambda m: m.value)
def test_event_engine_visit_counts_1f1b_8x32(mode):
    """The acceptance criterion, asserted on the re-poll counter for the
    8-actor x 32-microbatch 1F1B program.

    The fixpoint's waste is *re-polling*: visiting an instruction that is
    still blocked on an unchanged resource.  The event engine eliminates
    re-polls entirely (zero, vs 21 ASYNC / 180 SYNC for the reference at
    this size — far beyond the 5x bar, with its floor of one counted for
    the ratio), visits each instruction O(1) times (<= post + completion
    for comm ops), and never exceeds the reference's total visits.
    """
    progs = build_programs(OneFOneB(8), 32)
    n_instr = sum(len(p) for p in progs)
    res = run_engines(OneFOneB(8), 32, mode)
    ev, rr = res["event"], res["roundrobin"]
    # the event engine never revisits an unchanged wait condition...
    assert ev.repolls == 0
    # ...while the round-robin fixpoint re-polls blocked actors every pass
    assert rr.repolls >= 5 * max(1, ev.repolls)
    # O(1) visits per instruction, and strictly fewer than the reference
    assert ev.visits <= 2 * n_instr
    assert ev.visits < rr.visits
    assert ev.visits <= rr.visits - rr.repolls + 1  # the gap is the re-polling


def test_event_engine_visits_scale_linearly():
    """Visits per instruction stay bounded as the program grows."""
    for p, m in [(4, 8), (8, 32)]:
        progs = build_programs(OneFOneB(p), m)
        n_instr = sum(len(x) for x in progs)
        ex = MpmdExecutor(p, cost_model=LinearCost(), comm_mode=CommMode.SYNC,
                          engine="event")
        res = ex.execute(progs)
        # 1 visit per task, <=2 per comm op (post + completion after wake)
        assert res.visits <= 2 * n_instr
        assert res.repolls == 0


def test_zbh1_beats_1f1b_makespan(results_dir):
    """Zero-bubble's point, measured on the actual runtime: same work,
    smaller makespan, because weight-gradient units fill the bubble — and
    ZB-H2's relaxed memory bound shrinks it further."""
    rows = []
    makespans = {}
    for name, sched in SCHEDULES:
        res = run_engines(sched, N_MBS, CommMode.ASYNC)["event"]
        stats = schedule_stats(sched, N_MBS, fwd_time=FWD_T, bwd_time=BWD_T)
        makespans[name] = res.makespan
        # the discrete-event engine and the analytic recurrence must agree
        assert res.makespan == pytest.approx(stats["makespan"])
        rows.append(f"{name:20s} makespan={res.makespan:7.1f}  "
                    f"bubble={stats['bubble_fraction']:.3f}  "
                    f"peak_live={stats['peak_live_activations']}")
    assert makespans["ZB-H1"] < makespans["1F1B"]
    assert makespans["ZB-H2"] < makespans["ZB-H1"]
    assert makespans["1F1B"] <= makespans["GPipe"]
    # zero-bubble within the circular-repeat family too
    assert makespans["Interleaved-ZB(v=2)"] < makespans["Interleaved(v=2)"]
    emit(results_dir, "schedule_engine_makespans", "\n".join(rows))


def test_ir_emission_visit_counts_stay_linear(results_dir):
    """The O(n²) regression guard for the IR refactor: per schedule, the
    event engine's visit count divided by the instruction count must stay
    a small constant (<= 2: one visit per task, at most post + completion
    per comm op) as programs are now emitted from the ScheduleIR.  The
    round-robin reference's ratio is emitted alongside as the quadratic
    baseline the event engine is measured against."""
    rows = [f"{'schedule':20s} {'instrs':>7s} {'ev v/i':>7s} {'rr v/i':>7s}"]
    for name, sched in SCHEDULES:
        n_instr = sum(len(p) for p in build_programs(sched, N_MBS))
        res = run_engines(sched, N_MBS, CommMode.SYNC)
        ev, rr = res["event"], res["roundrobin"]
        assert ev.repolls == 0, name
        assert ev.visits <= 2 * n_instr, (name, ev.visits, n_instr)
        assert ev.visits <= rr.visits, name
        rows.append(f"{name:20s} {n_instr:7d} {ev.visits / n_instr:7.2f} "
                    f"{rr.visits / n_instr:7.2f}")
    emit(results_dir, "schedule_engine_ir_visits", "\n".join(rows))


def test_wait_profile_names_pipeline_channels(results_dir):
    """The wait-profile satellite, at benchmark scale: under SYNC 1F1B the
    resources actors park on longest are inter-stage channels, and the
    histogram says which."""
    res = run_engines(OneFOneB(8), N_MBS, CommMode.SYNC)["event"]
    assert res.wait_profile, "SYNC 1F1B must record parked time"
    top = res.top_waits(8)
    assert all(stat.total >= 0.0 and stat.count > 0 for _, stat in top)
    assert any(label.startswith("channel ") for label, _ in top)
    rows = [f"{label:28s} count={stat.count:4d} parked={stat.total:8.1f}"
            for label, stat in top]
    emit(results_dir, "schedule_engine_wait_profile", "\n".join(rows))
