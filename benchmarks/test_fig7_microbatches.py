"""Figure 7: utilization vs number of microbatches.

GPT-3 175B on 64 H100s (TP8 x PP8), circular repeat 6: TFLOPS/device as
gradient accumulation grows from 8 to 512 microbatches, for microbatch
sizes 1, 2, 4. The §5.1.2 tradeoff: more microbatches shrink the bubble
(throughput saturates upward) but serialize more work per step.
"""

import pytest

from repro.perf import GPT3_175B, jaxpp

from .conftest import emit

N_MBS = (8, 16, 32, 64, 128, 256, 512)
MBS = (1, 2, 4)


@pytest.fixture(scope="module")
def fig7_data():
    return {
        mbs: {m: jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=mbs, n_mbs=m).tflops
              for m in N_MBS}
        for mbs in MBS
    }


def test_fig7_regenerate(benchmark, results_dir, fig7_data):
    benchmark.pedantic(
        lambda: jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=2, n_mbs=64),
        rounds=1, iterations=1,
    )
    lines = ["GPT-3 175B, TP=8 x PP=8 H100, circular repeat 6",
             f"{'n_mbs':>6} " + " ".join(f"mbs={m:>4}" for m in MBS)]
    for m in N_MBS:
        lines.append(f"{m:>6} " + " ".join(f"{fig7_data[mbs][m]:>8.0f}" for mbs in MBS))
    emit(results_dir, "fig7_microbatches", "\n".join(lines))


def test_fig7_monotone_rise(benchmark, fig7_data):
    def check():
        for mbs in MBS:
            series = [fig7_data[mbs][m] for m in N_MBS]
            assert all(a < b for a, b in zip(series, series[1:])), mbs

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig7_saturation(benchmark, fig7_data):
    def check():
        for mbs in MBS:
            first_gain = fig7_data[mbs][16] - fig7_data[mbs][8]
            last_gain = fig7_data[mbs][512] - fig7_data[mbs][256]
            assert last_gain < 0.25 * first_gain

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig7_mbs_ordering(benchmark, fig7_data):
    def check():
        for m in N_MBS:
            assert fig7_data[1][m] < fig7_data[2][m] < fig7_data[4][m]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig7_saturated_band(benchmark, fig7_data):
    def check():
        # the saturated mbs=2 curve approaches the paper's ~450 level
        assert fig7_data[2][512] == pytest.approx(450, rel=0.10)

    benchmark.pedantic(check, rounds=1, iterations=1)