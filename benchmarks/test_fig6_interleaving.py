"""Figure 6: interleaving & dispatch-overhead tradeoff.

GPT-3 175B on 64 H100s (TP8 x PP8), global batch 128: TFLOPS/device across
circular-repeat sizes {1, 2, 3, 6, 12} for the paper's three
(microbatch-size, gradient-accumulation) pairs. (The paper's x-axis also
shows 8, which does not divide 96 layers / 8 stages evenly; we sweep the
divisible sizes.)

Expected shape (§5.1.1): throughput rises with circular repeat as the
bubble shrinks, then flattens or drops once tasks become small enough that
XLA dispatch overheads and P2P latencies emerge; larger microbatches
improve kernel efficiency.
"""

import pytest

from repro.perf import GPT3_175B, jaxpp

from .conftest import emit

VS = (1, 2, 3, 6, 12)
COMBOS = ((1, 128), (2, 64), (4, 32))  # (mbs, GA): the paper's "MBS-GA"


@pytest.fixture(scope="module")
def fig6_data():
    data = {}
    for mbs, ga in COMBOS:
        data[(mbs, ga)] = {
            v: jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=v, mbs=mbs, n_mbs=ga).tflops
            for v in VS
        }
    return data


def test_fig6_regenerate(benchmark, results_dir, fig6_data):
    benchmark.pedantic(
        lambda: jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=4, n_mbs=32),
        rounds=1, iterations=1,
    )
    lines = ["GPT-3 175B, TP=8 x PP=8 H100, global batch size 128",
             f"{'circ':>5} " + " ".join(f"{f'{m}-{g}':>8}" for m, g in COMBOS)]
    for v in VS:
        lines.append(
            f"{v:>5} " + " ".join(f"{fig6_data[(m, g)][v]:>8.0f}" for m, g in COMBOS)
        )
    lines.append("\n(paper peaks ~450 TFLOPS at circular repeat 6; ours "
                 f"peaks at {max(fig6_data[(4, 32)].values()):.0f})")
    emit(results_dir, "fig6_interleaving", "\n".join(lines))


def test_fig6_interleaving_improves_then_saturates(benchmark, fig6_data):
    def check():
        for combo in COMBOS:
            series = fig6_data[combo]
            assert series[6] > series[1], combo  # interleaving helps
        # small tasks eventually hurt: mbs=1 declines from its peak by circ 12
        mbs1 = fig6_data[(1, 128)]
        assert mbs1[12] < max(mbs1.values())

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig6_larger_microbatch_wins_overall(benchmark, fig6_data):
    def check():
        # "Increasing the microbatch size ... overall improving performance"
        best = {c: max(s.values()) for c, s in fig6_data.items()}
        assert best[(4, 32)] > best[(2, 64)] > best[(1, 128)]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig6_peak_location_matches_paper(benchmark, fig6_data):
    def check():
        for combo in COMBOS:
            series = fig6_data[combo]
            peak_v = max(series, key=series.get)
            assert peak_v in (3, 6, 12)
            assert peak_v != 1

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig6_absolute_band(benchmark, fig6_data):
    def check():
        # best configuration lands near the paper's ~458-462 TFLOPS
        assert fig6_data[(4, 32)][6] == pytest.approx(460, rel=0.10)

    benchmark.pedantic(check, rounds=1, iterations=1)