"""Figure 9: training-performance comparison across systems.

GPT-3 175B (GBS 256, 128 GPUs) and Llama2 70B (GBS 128, 64 GPUs):
JAX SPMD PP vs JAX FSDP vs JaxPP vs NeMo, at the paper's configurations.

Bars use each system's own reporting convention (NeMo's GPT-3 number
includes selective-recompute FLOPs — see EXPERIMENTS.md for the decoding).
"""

import pytest

from repro.perf import GPT3_175B, LLAMA2_70B, jax_fsdp, jax_spmd_pp, jaxpp, nemo

from .conftest import emit

PAPER_GPT = {"JAX SPMD PP": 316, "JAX FSDP": 412, "JaxPP": 457, "NeMo": 500}
PAPER_LLAMA = {"JAX FSDP": 431, "JaxPP": 432, "NeMo": 519}


@pytest.fixture(scope="module")
def fig9_data():
    gpt = {
        "JAX SPMD PP": jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128),
        "JAX FSDP": jax_fsdp(GPT3_175B, 128, 256, fsdp_group=128),
        "JaxPP": jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32),
        "NeMo": nemo(GPT3_175B, pp=8, tp=4, dp=4, v=2, mbs=1, n_mbs=64),
    }
    llama = {
        "JAX FSDP": jax_fsdp(LLAMA2_70B, 64, 128, fsdp_group=64),
        "JaxPP": jaxpp(LLAMA2_70B, pp=4, tp=8, dp=2, v=5, mbs=4, n_mbs=16),
        "NeMo": nemo(LLAMA2_70B, pp=4, tp=4, dp=4, v=4, mbs=1, n_mbs=32),
    }
    return gpt, llama


def test_fig9_regenerate(benchmark, results_dir, fig9_data):
    gpt, llama = fig9_data
    benchmark.pedantic(
        lambda: jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32),
        rounds=1, iterations=1,
    )
    lines = ["GPT-3 175B — GBS 256, 128 GPUs, seq 2048"]
    for name, r in gpt.items():
        lines.append(f"  {name:<12} {r.reported_tflops:>6.0f} TF/dev "
                     f"(paper {PAPER_GPT[name]:>3}; step {r.step_time:.2f}s)")
    lines.append("Llama2 70B — GBS 128, 64 GPUs, seq 4096")
    for name, r in llama.items():
        lines.append(f"  {name:<12} {r.reported_tflops:>6.0f} TF/dev "
                     f"(paper {PAPER_LLAMA[name]:>3}; step {r.step_time:.2f}s)")
    emit(results_dir, "fig9_comparison", "\n".join(lines))


def test_fig9_gpt3_bar_ordering(benchmark, fig9_data):
    def check():
        gpt, _ = fig9_data
        assert (gpt["JAX SPMD PP"].reported_tflops
                < gpt["JAX FSDP"].reported_tflops
                < gpt["JaxPP"].reported_tflops
                < gpt["NeMo"].reported_tflops)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig9_headline_ratios(benchmark, fig9_data):
    def check():
        gpt, _ = fig9_data
        # 44.6% faster than SPMD PP
        assert gpt["JAX SPMD PP"].step_time / gpt["JaxPP"].step_time == pytest.approx(1.446, rel=0.15)
        # 1.11x over FSDP
        assert gpt["JaxPP"].tflops / gpt["JAX FSDP"].tflops == pytest.approx(1.11, abs=0.05)
        # 91.4% of NeMo's (reported) throughput
        assert gpt["JaxPP"].reported_tflops / gpt["NeMo"].reported_tflops == pytest.approx(0.914, abs=0.06)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig9_llama_relationships(benchmark, fig9_data):
    def check():
        _, llama = fig9_data
        # JaxPP ~ FSDP; NeMo ahead at 83.2%
        assert llama["JaxPP"].tflops == pytest.approx(llama["JAX FSDP"].tflops, rel=0.06)
        ratio = llama["JaxPP"].tflops / llama["NeMo"].reported_tflops
        assert ratio == pytest.approx(0.832, abs=0.08)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig9_absolute_bands(benchmark, fig9_data):
    def check():
        gpt, llama = fig9_data
        for name, want in PAPER_GPT.items():
            assert gpt[name].reported_tflops == pytest.approx(want, rel=0.12), name
        for name, want in PAPER_LLAMA.items():
            assert llama[name].reported_tflops == pytest.approx(want, rel=0.12), name

    benchmark.pedantic(check, rounds=1, iterations=1)