"""Algebraic-optimizer differential benchmark (the PR 10 acceptance run).

Compiles the mini-GPT pipeline step at every opt level and reports what
the rewrite pipeline (:mod:`repro.ir.opt`) buys on a real transformer:

- per-microbatch equation counts, per stage and total, with the
  acceptance floor **>= 15% eqn reduction on at least one stage** at
  level 1 (the transformer backward recomputes attention masks, causal
  iotas, and weight transposes every microbatch — exactly the
  loop-invariant work memoization hoists);
- boundary traffic: the optimized split's total escaping-output bytes
  must be **strictly smaller** (a memoized escaping value moves off the
  per-microbatch boundary onto the once-per-step memo path);
- end-to-end bit-identity of the level-1 step and allclose of level 2,
  plus wall-clock columns for all three levels (informational — the
  step is compile-bound at this scale, the win is eqns off the loop
  path).

Writes ``BENCH_opt.json``.
"""

import json
import time

import numpy as np

from repro import core, ir
from repro.core.compile import compile_train_step
from repro.data import token_batches
from repro.models import TransformerConfig, init_transformer, transformer_loss

from .conftest import emit

CFG = TransformerConfig(
    vocab=32, seq=12, d_model=32, n_heads=4, d_ff=64,
    n_layers=4, n_stages=4, tie_embeddings=False,
)
N_MBS, MBSZ = 4, 8

#: acceptance floor: best per-stage eqn reduction at level 1
STAGE_EQN_REDUCTION_FLOOR = 0.15


def _transformer_step():
    params = init_transformer(np.random.RandomState(0), CFG)
    batch = next(token_batches(CFG.vocab, CFG.seq, N_MBS, MBSZ, 1, seed=2))

    def train_step(params, batch):
        def microbatch_grads(mb):
            loss, grads = ir.value_and_grad(
                lambda p, mb: transformer_loss(p, mb, CFG)
            )(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(
            microbatch_grads, core.OneFOneB(CFG.n_stages)
        )(batch)
        new = ir.tree_map(lambda w, g: ir.ops.sub(w, ir.ops.mul(0.01, g)), params, grads)
        return new, losses

    return train_step, params, batch


def _best_of(fn, repeats=7):
    fn()  # warm
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_opt_differential_and_floors(results_dir):
    train_step, params, batch = _transformer_step()
    jaxpr, _, _ = ir.trace(train_step, params, batch)

    compiled = {
        lvl: compile_train_step(jaxpr, core.OneFOneB(CFG.n_stages), optimize=lvl)
        for lvl in (0, 1, 2)
    }
    rep1, rep2 = compiled[1].opt_report, compiled[2].opt_report

    # ---- acceptance: per-stage eqn reduction floor at level 1 ----------
    reduction = rep1.stage_eqn_reduction()
    best_stage = max(reduction, key=reduction.get)
    assert reduction[best_stage] >= STAGE_EQN_REDUCTION_FLOOR, (
        f"best per-stage eqn reduction {reduction[best_stage]:.1%} "
        f"(stage {best_stage}) under the {STAGE_EQN_REDUCTION_FLOOR:.0%} floor"
    )
    assert rep1.eqns_after < rep1.eqns_before

    # ---- acceptance: strictly smaller boundary traffic -----------------
    assert rep1.boundary_bytes_after < rep1.boundary_bytes_before, (
        f"boundary bytes did not shrink: {rep1.boundary_bytes_before} -> "
        f"{rep1.boundary_bytes_after}"
    )
    # memoization moved at least one escaping value off the boundary
    assert sum(t.outputs_memoized for t in rep1.tasks) >= 1

    # ---- level-2 report: reassociation genuinely fires ------------------
    assert sum(t.reassociated for t in rep2.tasks) >= 1
    assert rep2.eqns_after <= rep1.eqns_after

    # ---- end-to-end: L1 bit-identical, L2 allclose ----------------------
    steps, outs = {}, {}
    for lvl in (0, 1, 2):
        mesh = core.RemoteMesh((CFG.n_stages,))
        steps[lvl] = mesh.distributed(train_step, optimize=lvl)
        outs[lvl] = steps[lvl](params, batch)
    f0, t0 = ir.tree_flatten(outs[0])
    f1, t1 = ir.tree_flatten(outs[1])
    f2, _ = ir.tree_flatten(outs[2])
    assert repr(t0) == repr(t1)
    for a, b in zip(f0, f1):
        a, b = np.asarray(a), np.asarray(b)
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)
    for a, c in zip(f0, f2):
        np.testing.assert_allclose(
            np.asarray(a), np.asarray(c), rtol=1e-4, atol=1e-5
        )

    # ---- wall-clock columns (informational) -----------------------------
    wall = {
        lvl: _best_of(lambda s=steps[lvl]: s(params, batch), repeats=9)
        for lvl in (0, 1, 2)
    }

    per_stage = {
        str(s): round(r, 4) for s, r in sorted(reduction.items())
    }
    record = {
        "model": "mini-GPT 4L/4stages d=32",
        "opt_levels": {
            str(lvl): {
                # level 0 carries no report (the optimizer never ran):
                # count the shipped split directly
                "eqns_per_microbatch": sum(
                    t.jaxpr.n_eqns for t in compiled[lvl].split.tasks
                ),
                "boundary_bytes": sum(
                    v.aval.nbytes
                    for t in compiled[lvl].split.tasks
                    for v in t.out_vars
                ),
                "program_key": compiled[lvl].program_key,
            }
            for lvl in (0, 1, 2)
        },
        "level1": {
            "eqns_before": rep1.eqns_before,
            "eqns_after": rep1.eqns_after,
            "stage_eqn_reduction": per_stage,
            "best_stage": best_stage,
            "floor": STAGE_EQN_REDUCTION_FLOOR,
            "boundary_bytes_before": rep1.boundary_bytes_before,
            "boundary_bytes_after": rep1.boundary_bytes_after,
            "cse_removed": sum(t.cse_removed for t in rep1.tasks),
            "identity_elided": sum(t.identity_elided for t in rep1.tasks),
            "dce_removed": sum(t.dce_removed for t in rep1.tasks),
            "hoisted": sum(t.hoisted for t in rep1.tasks),
            "outputs_memoized": sum(t.outputs_memoized for t in rep1.tasks),
            "outputs_deduped": sum(t.outputs_deduped for t in rep1.tasks),
        },
        "level2": {
            "reassociated": sum(t.reassociated for t in rep2.tasks),
            "eqns_after": rep2.eqns_after,
        },
        "step_wallclock_s": {str(lvl): round(t, 6) for lvl, t in wall.items()},
    }
    (results_dir / "BENCH_opt.json").write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        "algebraic optimizer on the mini-GPT pipeline step (pp=4, 1F1B)",
        "",
        f"eqns/microbatch     : {rep1.eqns_before} -> {rep1.eqns_after} at L1, "
        f"{rep2.eqns_after} at L2",
        f"per-stage reduction : "
        + ", ".join(f"s{s}: {r:.1%}" for s, r in sorted(reduction.items()))
        + f" (floor {STAGE_EQN_REDUCTION_FLOOR:.0%} on best stage)",
        f"boundary bytes      : {rep1.boundary_bytes_before} -> "
        f"{rep1.boundary_bytes_after} "
        f"({sum(t.outputs_memoized for t in rep1.tasks)} memoized, "
        f"{sum(t.outputs_deduped for t in rep1.tasks)} deduped outputs)",
        f"rewrites            : cse {sum(t.cse_removed for t in rep1.tasks)}, "
        f"identity {sum(t.identity_elided for t in rep1.tasks)}, "
        f"dce {sum(t.dce_removed for t in rep1.tasks)}, "
        f"hoisted {sum(t.hoisted for t in rep1.tasks)} "
        f"(once-per-step), reassociated {sum(t.reassociated for t in rep2.tasks)} (L2)",
        f"step wall-clock     : "
        + ", ".join(f"L{lvl} {t * 1e3:.2f} ms" for lvl, t in wall.items()),
        "",
        rep1.summary(),
    ]
    emit(results_dir, "opt_differential", "\n".join(lines))
