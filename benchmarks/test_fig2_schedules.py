"""Figure 2: GPipe vs 1F1B schedule structure and memory behaviour.

Regenerates the paper's schedule comparison: logical per-actor orders,
bubble fractions, and the activation-memory contrast (GPipe ∝ microbatches
vs 1F1B ∝ stages) that motivates MPMD schedules in §2.2.1.
"""

from repro.core.schedules import GPipe, Interleaved1F1B, OneFOneB, schedule_stats
from repro.viz import render_schedule

from .conftest import emit

P, M = 4, 8  # interleaving needs n_mbs divisible by the actor count


def _render() -> tuple[str, dict]:
    lines = []
    stats = {}
    for sched in (GPipe(P), OneFOneB(P), Interleaved1F1B(P, 2)):
        st = schedule_stats(sched, M)
        stats[sched.name] = st
        lines.append(f"--- {sched.name} ({P} actors, {M} microbatches) ---")
        lines.append(render_schedule(sched, M))
        lines.append(
            f"bubble fraction {st['bubble_fraction']:.3f}   "
            f"peak live activations {st['peak_live_activations']}"
        )
        lines.append("")
    return "\n".join(lines), stats


def test_fig2_schedule_structure(benchmark, results_dir):
    text, stats = benchmark.pedantic(_render, rounds=1, iterations=1)
    emit(results_dir, "fig2_schedules", text)

    gpipe = stats["GPipe"]
    ofob = stats["OneFOneB"]
    inter = stats["Interleaved1F1B(v=2)"]
    # GPipe holds every microbatch's activations; 1F1B at most the depth
    assert max(gpipe["peak_live_activations"]) == M
    assert max(ofob["peak_live_activations"]) == P
    # same bubble for GPipe and plain 1F1B; interleaving shrinks it
    assert abs(gpipe["bubble_fraction"] - ofob["bubble_fraction"]) < 1e-9
    inter_adj = schedule_stats(Interleaved1F1B(P, 2), M, fwd_time=0.5, bwd_time=1.0)
    assert inter_adj["bubble_fraction"] < ofob["bubble_fraction"]


def test_fig2_memory_ratio_2_to_3x(benchmark, results_dir):
    """§2.2.1: 1F1B's eager backward scheduling yields a 2-3x activation
    memory reduction at typical microbatch counts."""

    def ratios():
        out = {}
        for m in (8, 12, 16):
            g = max(schedule_stats(GPipe(P), m)["peak_live_activations"])
            o = max(schedule_stats(OneFOneB(P), m)["peak_live_activations"])
            out[m] = g / o
        return out

    r = benchmark.pedantic(ratios, rounds=1, iterations=1)
    emit(results_dir, "fig2_memory_ratio",
         "\n".join(f"m={m}: GPipe/1F1B activation memory = {v:.1f}x" for m, v in r.items()))
    assert r[8] == 2.0
    assert r[12] == 3.0
    assert r[16] == 4.0
