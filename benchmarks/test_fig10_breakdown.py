"""Figure 10: step-time breakdown, JAX SPMD PP vs JaxPP.

§5.3's explanation of the gap: the GPipe-scheduled SPMD encoding holds
every microbatch's activations, forcing full rematerialisation (~20% of
its step), and its synchronous sends/receives sit on the critical path;
JaxPP's interleaved 1F1B needs no remat and overlaps its P2P.
"""

import pytest

from repro.perf import GPT3_175B, jax_spmd_pp, jaxpp

from .conftest import emit


@pytest.fixture(scope="module")
def fig10_data():
    spmd = jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)
    jx = jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32)
    return spmd, jx


def _segments(r):
    b = r.breakdown
    other = b["dp_allreduce"] + b["optimizer"]
    return {
        "P2P (exposed)": b["p2p"],
        "Rematerialization": b["remat"],
        "Compute+Collectives": b["compute"] + b["dispatch"] + other,
        "Bubble": b["bubble"],
    }


def test_fig10_regenerate(benchmark, results_dir, fig10_data):
    spmd, jx = fig10_data
    benchmark.pedantic(
        lambda: jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128),
        rounds=1, iterations=1,
    )
    lines = ["GPT-3 175B training step time breakdown (seconds)",
             f"{'segment':<22} {'JAX SPMD PP':>12} {'JaxPP':>8}"]
    s1, s2 = _segments(spmd), _segments(jx)
    for k in s1:
        lines.append(f"{k:<22} {s1[k]:>12.2f} {s2[k]:>8.2f}")
    lines.append(f"{'total step':<22} {spmd.step_time:>12.2f} {jx.step_time:>8.2f}")
    lines.append(f"\n(paper: 13.96s vs 9.64s; remat ~20% of the SPMD PP step)")
    emit(results_dir, "fig10_breakdown", "\n".join(lines))


def test_fig10_remat_only_in_spmd_pp(benchmark, fig10_data):
    def check():
        spmd, jx = fig10_data
        assert spmd.breakdown["remat"] > 0.0
        assert jx.breakdown["remat"] == 0.0
        assert spmd.sim.remat.kind == "full"
        assert jx.sim.remat.kind == "none"

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig10_remat_is_about_20_percent(benchmark, fig10_data):
    def check():
        spmd, _ = fig10_data
        assert spmd.breakdown["remat"] / spmd.step_time == pytest.approx(0.20, abs=0.07)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig10_totals_match_table1_band(benchmark, fig10_data):
    def check():
        spmd, jx = fig10_data
        assert spmd.step_time == pytest.approx(13.96, rel=0.12)
        assert jx.step_time == pytest.approx(9.64, rel=0.12)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig10_majority_of_gap_is_remat_and_p2p(benchmark, fig10_data):
    def check():
        spmd, jx = fig10_data
        gap = spmd.step_time - jx.step_time
        explained = spmd.breakdown["remat"] + spmd.breakdown["p2p"] + spmd.breakdown["bubble"]
        assert explained > 0.6 * gap

    benchmark.pedantic(check, rounds=1, iterations=1)