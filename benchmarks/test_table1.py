"""Table 1: full training-performance table, paper vs model.

Every row of the paper's Table 1 regenerated: step time and TFLOPS/device
for JaxPP, JAX FSDP, JAX SPMD PP, and NeMo on GPT-3 175B and Llama2 70B.
"""

import pytest

from repro.perf import GPT3_175B, LLAMA2_70B, jax_fsdp, jax_spmd_pp, jaxpp, nemo

from .conftest import emit

# (system, model, GBS, GA, GPUs, PP, TP, DP, FSDP, paper step, paper TF)
ROWS = [
    ("JaxPP", "gpt3", 128, 32, 64, 8, 8, 1, 1, 9.53, 462),
    ("JaxPP", "gpt3", 256, 32, 128, 8, 8, 2, 1, 9.64, 457),
    ("JaxPP", "gpt3", 512, 32, 256, 8, 8, 4, 1, 9.74, 452),
    ("JaxPP", "gpt3", 1024, 32, 512, 8, 8, 8, 1, 9.71, 454),
    ("JaxPP", "gpt3", 2048, 32, 1024, 8, 8, 16, 1, 10.26, 430),
    ("JAX FSDP", "gpt3", 128, 1, 64, 1, 1, 1, 64, 10.63, 415),
    ("JAX FSDP", "gpt3", 256, 1, 128, 1, 1, 1, 128, 10.70, 412),
    ("JAX FSDP", "gpt3", 512, 1, 256, 1, 1, 2, 128, 10.91, 404),
    ("JAX FSDP", "gpt3", 1024, 1, 512, 1, 1, 4, 128, 11.01, 400),
    ("JAX FSDP", "gpt3", 2048, 1, 1024, 1, 1, 8, 128, 11.30, 390),
    ("JAX SPMD PP", "gpt3", 256, 128, 128, 16, 4, 2, 1, 13.96, 316),
    ("NeMo", "gpt3", 256, 64, 128, 8, 4, 4, 1, 9.78, 500),
    ("JaxPP", "llama2", 128, 16, 64, 4, 8, 2, 1, 8.42, 432),
    ("JAX FSDP", "llama2", 128, 1, 64, 1, 1, 1, 64, 8.44, 431),
    ("NeMo", "llama2", 128, 32, 64, 4, 4, 4, 1, 7.02, 519),
]


def _run_row(system, model_key, gbs, ga, gpus, pp, tp, dp, fsdp):
    model = GPT3_175B if model_key == "gpt3" else LLAMA2_70B
    if system == "JaxPP":
        v = 6 if model_key == "gpt3" else 5
        mbs = gbs // (ga * dp)
        return jaxpp(model, pp=pp, tp=tp, dp=dp, v=v, mbs=mbs, n_mbs=ga)
    if system == "JAX FSDP":
        return jax_fsdp(model, gpus, gbs, fsdp_group=fsdp)
    if system == "JAX SPMD PP":
        mbs = gbs // (ga * dp)
        return jax_spmd_pp(model, pp=pp, tp=tp, dp=dp, mbs=mbs, n_mbs=ga)
    if system == "NeMo":
        v = 2 if model_key == "gpt3" else 4
        mbs = gbs // (ga * dp)
        return nemo(model, pp=pp, tp=tp, dp=dp, v=v, mbs=mbs, n_mbs=ga)
    raise ValueError(system)


@pytest.fixture(scope="module")
def table1_data():
    return [
        (row, _run_row(*row[:9]))
        for row in ROWS
    ]


def test_table1_regenerate(benchmark, results_dir, table1_data):
    benchmark.pedantic(
        lambda: _run_row("JaxPP", "gpt3", 128, 32, 64, 8, 8, 1, 1),
        rounds=1, iterations=1,
    )
    lines = [
        f"{'System':<12} {'Model':<7} {'GBS':>5} {'GA':>4} {'GPUs':>5} "
        f"{'PP':>3} {'TP':>3} {'DP':>3} {'FSDP':>5} "
        f"{'step(s)':>8} {'paper':>6} {'TF/dev':>7} {'paper':>6}"
    ]
    for row, r in table1_data:
        system, model_key, gbs, ga, gpus, pp, tp, dp, fsdp, p_step, p_tf = row
        lines.append(
            f"{system:<12} {model_key:<7} {gbs:>5} {ga:>4} {gpus:>5} "
            f"{pp:>3} {tp:>3} {dp:>3} {fsdp:>5} "
            f"{r.step_time:>8.2f} {p_step:>6.2f} {r.reported_tflops:>7.0f} {p_tf:>6}"
        )
    emit(results_dir, "table1", "\n".join(lines))


def test_table1_step_times_in_band(benchmark, table1_data):
    def check():
        for row, r in table1_data:
            paper_step = row[9]
            assert r.step_time == pytest.approx(paper_step, rel=0.12), row[:2]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_table1_tflops_in_band(benchmark, table1_data):
    def check():
        for row, r in table1_data:
            paper_tf = row[10]
            assert r.reported_tflops == pytest.approx(paper_tf, rel=0.12), row[:2]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_table1_gpt3_ranking_preserved(benchmark, table1_data):
    def check():
        by = {(row[0], row[1], row[2]): r for row, r in table1_data}
        spmd = by[("JAX SPMD PP", "gpt3", 256)]
        fsdp = by[("JAX FSDP", "gpt3", 256)]
        jx = by[("JaxPP", "gpt3", 256)]
        assert spmd.step_time > fsdp.step_time > jx.step_time

    benchmark.pedantic(check, rounds=1, iterations=1)