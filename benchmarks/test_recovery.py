"""Recovery benchmark: what does fault tolerance cost when nothing fails,
and how long does recovering from a killed rank take?

Persisted to ``BENCH_recovery.json``:

1. **Snapshot overhead** — the pp=4 transformer step through one warm
   pool, bare vs wrapped in ``RecoveryPolicy(snapshot_every=2, keep=2)``
   (the differential recovery suite's policy).  Both step functions
   share the *same* pool and compiled program, and samples interleave
   A/B, so pool-to-pool and drift noise cancel out of the ratio.
   Acceptance (ISSUE 9): the async-snapshot overhead on the median warm
   step is ≤ 10%.

2. **Recovery latency** — the same loop with rank 1 killed before one
   step via a deterministic :class:`~repro.runtime.faults.FaultPlan`.
   The interrupted step's wall time *is* the end-to-end recovery cost:
   death detection (the pool's 1s liveness beat), respawning the mesh,
   re-shipping the program, restoring the snapshot, replaying the
   window, and re-running the step.  Recorded both raw and with the
   healthy warm step subtracted.
"""

import json
import statistics
import time

from repro import core
from repro.runtime import FaultPlan, RecoveryPolicy, ResilientStepFunction
from tests.core.test_linear_backend import assert_bit_identical

from .conftest import emit
from .test_mp_runtime import _transformer_problem

WATCHDOG_S = 120.0

#: warm-step sample size (median over these, after the cold call).
N_WARM = 20

#: which step the injected kill interrupts in the latency measurement.
KILL_STEP = 3


def test_recovery_overhead_and_latency(results_dir):
    record = {}
    # mbsz=8 (vs the 2 of BENCH_mp): snapshot cost is fixed per step —
    # state size, not batch size — so a realistically-sized step is the
    # honest denominator for a relative-overhead bound
    train_step, params, batch = _transformer_problem(mbsz=8)
    schedule = core.OneFOneB(4)

    # ---- 1. snapshot overhead, A/B on one warm pool ----------------------
    mesh = core.RemoteMesh((4,), engine="mp", mp_watchdog_s=WATCHDOG_S)
    try:
        plain_step = mesh.distributed(train_step, schedule=schedule)
        r_step = ResilientStepFunction(
            plain_step, RecoveryPolicy(snapshot_every=2, keep=2)
        )
        want = plain_step(params, batch)  # spawn + ship + cold step
        got = r_step(params, batch)
        assert_bit_identical(want, got)

        # at snapshot_every=2 the wrapped series is bimodal (alternate
        # steps snapshot), so a single median would sit on the knife edge
        # between the modes — bucket by whether the step snapshotted and
        # amortize the two stable per-mode medians instead
        plain_times, snap_on, snap_off = [], [], []
        for _ in range(N_WARM):
            t0 = time.perf_counter()
            got_a = plain_step(params, batch)
            plain_times.append(time.perf_counter() - t0)
            before = r_step.snapshots_written
            t0 = time.perf_counter()
            got_b = r_step(params, batch)
            dt = time.perf_counter() - t0
            (snap_on if r_step.snapshots_written > before else snap_off).append(dt)
        assert_bit_identical(got_a, got_b)
        plain_s = statistics.median(plain_times)
        on_s = statistics.median(snap_on)
        off_s = statistics.median(snap_off)
        snap_s = (on_s + off_s) / 2  # amortized per-step cost at cadence 2
        assert r_step.snapshots_written >= N_WARM // 2
        assert r_step.failures == []
        overhead_x = snap_s / plain_s if plain_s > 0 else float("inf")
        record["snapshot_overhead"] = {
            "workload": "pp=4 transformer (4 layers, d=16), n_mbs=4, mbsz=8",
            "plain_warm_step_s": plain_s,
            "snapshotting_step_s": on_s,
            "skipping_step_s": off_s,
            "amortized_warm_step_s": snap_s,
            "snapshot_overhead_x": overhead_x,
            "snapshot_every": 2,
            "snapshot_async": True,
            "n_warm_samples": N_WARM,
        }
        # ISSUE 9 acceptance: per-step snapshot cost ≤ 10% (async writes
        # overlap the step; only the state hand-off and snapshot pruning
        # are synchronous, ~1.5ms on this workload)
        assert overhead_x <= 1.10, (
            f"snapshot overhead {overhead_x:.3f}x exceeds the 1.10x bound "
            f"(snap {snap_s * 1e3:.1f}ms vs plain {plain_s * 1e3:.1f}ms)"
        )
        r_step.close()
    finally:
        mesh.close()

    # ---- 2. end-to-end recovery latency for one killed rank --------------
    mesh = core.RemoteMesh(
        (4,), engine="mp", mp_watchdog_s=WATCHDOG_S,
        recovery=RecoveryPolicy(snapshot_every=1, keep=2),
        fault_plan=FaultPlan(kill_rank=1, at_step=KILL_STEP),
    )
    try:
        step = mesh.distributed(train_step, schedule=schedule)
        state = params
        step_times = []
        for _ in range(KILL_STEP + 3):
            t0 = time.perf_counter()
            state, _ = step(state, batch)
            step_times.append(time.perf_counter() - t0)
        assert step.recoveries == 1
        assert [f.step for f in step.failures] == [KILL_STEP]
        # skip the cold spawn step; the interrupted one is the latency
        healthy = [t for i, t in enumerate(step_times) if i not in (0, KILL_STEP)]
        healthy_s = statistics.median(healthy)
        recovery_s = step_times[KILL_STEP]
        record["recovery_latency"] = {
            "killed_rank": 1,
            "killed_step": KILL_STEP,
            "interrupted_step_s": recovery_s,
            "healthy_step_s": healthy_s,
            "recovery_cost_s": recovery_s - healthy_s,
            "failures": [f.kind for f in step.failures],
        }
        # detection alone costs ~1s (the pool's liveness beat); respawn,
        # re-ship, restore, and replay ride on top — well under a minute
        assert recovery_s < 60.0
        step.close()
    finally:
        mesh.close()

    (results_dir / "BENCH_recovery.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    emit(results_dir, "recovery", json.dumps(record, indent=2))
