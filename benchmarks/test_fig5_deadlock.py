"""Figure 5: send/recv ordering — naive inference deadlocks, JaxPP's
topological inference doesn't.

This is the *numeric* runtime (real NumPy training step), not the
simulator: the same model and schedule are compiled with both comm
strategies and executed under synchronous (NCCL-rendezvous) semantics.
"""

import numpy as np
import pytest

from repro import core, ir
from repro.models import init_mlp, mlp_loss
from repro.runtime import CommMode, DeadlockError

from .conftest import emit

N_STAGES, N_MBS, MBSZ, D = 3, 4, 8, 8


def _make():
    params = init_mlp(np.random.RandomState(0), N_STAGES, D, D, D)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(lambda p, m: mlp_loss(p, m, N_STAGES))(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(mg, core.OneFOneB(N_STAGES))(batch)
        new = ir.tree_map(lambda w, g: w - 0.05 * g, params, grads)
        return new, losses

    r = np.random.RandomState(1)
    batch = (
        r.randn(N_MBS, MBSZ, D).astype(np.float32),
        r.randn(N_MBS, MBSZ, D).astype(np.float32),
    )
    return train_step, params, batch


def test_fig5_naive_ordering_deadlocks(benchmark, results_dir):
    train_step, params, batch = _make()

    def attempt():
        mesh = core.RemoteMesh((N_STAGES,), comm_mode=CommMode.SYNC)
        step = mesh.distributed(train_step, schedule=core.OneFOneB(N_STAGES),
                                comm_strategy="naive")
        try:
            step(params, batch)
            return None
        except DeadlockError as e:
            return str(e)

    msg = benchmark.pedantic(attempt, rounds=1, iterations=1)
    assert msg is not None, "naive ordering must deadlock under SYNC comms"
    emit(results_dir, "fig5_deadlock",
         "naive recv-before-use ordering + synchronous sends:\n"
         f"DeadlockError: {msg[:400]}")


def test_fig5_topological_ordering_completes(benchmark, results_dir):
    train_step, params, batch = _make()
    ref_p, _ = train_step(params, batch)

    def run():
        mesh = core.RemoteMesh((N_STAGES,), comm_mode=CommMode.SYNC)
        step = mesh.distributed(train_step, schedule=core.OneFOneB(N_STAGES),
                                comm_strategy="topo")
        return step(params, batch)

    out_p, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    err = max(float(np.abs(a - b).max())
              for a, b in zip(ir.tree_leaves(out_p), ir.tree_leaves(ref_p)))
    emit(results_dir, "fig5_topo_ok",
         f"JaxPP topological send/recv inference under the same SYNC "
         f"semantics completes;\nmax error vs single device = {err:.2e}")
    assert err < 1e-5


def test_fig5_async_overlap_beats_sync(benchmark, results_dir):
    """§5.3's other lever: asynchronous P2P overlaps prefetch with compute."""
    from repro.perf import GPT3_175B
    from repro.perf.kernels import JAX_KERNELS
    from repro.perf.pipeline_sim import PipelineSimConfig, simulate_pipeline

    def both():
        out = {}
        for mode in (CommMode.ASYNC, CommMode.SYNC):
            cfg = PipelineSimConfig(
                model=GPT3_175B, node=__import__("repro.cluster", fromlist=["DGX_H100"]).DGX_H100,
                pp=8, tp=8, dp=1, v=1, mbs=2, n_mbs=16,
                kernels=JAX_KERNELS, schedule="1f1b", comm_mode=mode,
            )
            out[mode.value] = simulate_pipeline(cfg).makespan
        return out

    times = benchmark.pedantic(both, rounds=1, iterations=1)
    emit(results_dir, "fig5_async_vs_sync",
         f"1F1B pipeline makespan, async P2P: {times['async']:.3f}s; "
         f"sync P2P: {times['sync']:.3f}s "
         f"({times['sync'] / times['async']:.3f}x)")
    assert times["async"] < times["sync"]
