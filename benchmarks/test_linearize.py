"""Linear task VM guard: the steady-state dispatch claim, measured.

The paper's economics are "pay trace/compile once, dispatch cheaply at
steady state".  For the numeric runtime that means the per-microbatch hot
path must not re-interpret stage jaxprs.  This benchmark pins the claim on
the transformer example (the paper's headline workload at laptop scale):

- **dispatch guard** — per training step, the linear backend performs
  strictly fewer VM instructions than the interpreter's equation
  dispatches (fusion + folding + identity elision), and at least **2x
  fewer Python-level calls**.  Per equation the interpreter costs
  ``bind + abstract_eval + impl`` plus two normalizations per operand
  (``_concretize`` + ``abstractify``); the VM costs one pre-bound call
  per instruction — both counts are computed statically from the lowered
  programs, so the guard is deterministic.

- **wall-clock guard** — lowering once must also *win* time: evaluating
  the transformer's gradient jaxpr through the VM must be no slower than
  the tree-walking interpreter (in practice it is several times faster;
  the guard only asserts parity to stay robust on noisy CI machines).

A ``BENCH_linearize.json`` perf record is emitted next to the usual text
artefact so the trajectory is tracked across PRs.
"""

import json
import time

import numpy as np

from repro import core, ir
from repro.core.compile import compile_train_step
from repro.data import token_batches
from repro.ir.linearize import LinearProgram, linearize
from repro.models import TransformerConfig, init_transformer, transformer_loss
from repro.runtime.instructions import RunTask

from .conftest import emit

CFG = TransformerConfig(
    vocab=32, seq=12, d_model=32, n_heads=4, d_ff=64,
    n_layers=4, n_stages=4, tie_embeddings=False,
)
N_MBS, MBSZ = 4, 8


def _transformer_step():
    params = init_transformer(np.random.RandomState(0), CFG)
    batch = next(token_batches(CFG.vocab, CFG.seq, N_MBS, MBSZ, 1, seed=2))

    def train_step(params, batch):
        def microbatch_grads(mb):
            loss, grads = ir.value_and_grad(
                lambda p, mb: transformer_loss(p, mb, CFG)
            )(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(microbatch_grads, core.OneFOneB(CFG.n_stages))(batch)
        new = ir.tree_map(lambda w, g: ir.ops.sub(w, ir.ops.mul(0.01, g)), params, grads)
        return new, losses

    return train_step, params, batch


def test_linear_backend_dispatch_and_wallclock_guard(results_dir):
    train_step, params, batch = _transformer_step()
    jaxpr, _, _ = ir.trace(train_step, params, batch)
    compiled = compile_train_step(jaxpr, core.OneFOneB(CFG.n_stages))

    # ---- static per-step dispatch accounting over every loop RunTask ----
    totals = {"eqns": 0, "instructions": 0, "vm_calls": 0, "interp_calls": 0}
    per_task: dict[int, dict] = {}
    for prog in compiled.programs:
        for instr in prog:
            if isinstance(instr, RunTask) and isinstance(instr.fn, LinearProgram):
                s = instr.fn.stats
                totals["eqns"] += s["n_eqns"]
                totals["instructions"] += s["n_instructions"]
                totals["vm_calls"] += s["vm_calls_per_run"]
                totals["interp_calls"] += s["interp_calls_per_run"]
                per_task.setdefault(id(instr.fn), s)

    assert totals["instructions"] > 0, "no linear task payloads found"
    # strictly fewer VM instructions than interpreter eqn dispatches
    assert totals["instructions"] < totals["eqns"]
    # >= 2x fewer Python-level dispatches per step (the acceptance bar)
    call_ratio = totals["interp_calls"] / totals["vm_calls"]
    assert call_ratio >= 2.0, f"dispatch reduction only {call_ratio:.2f}x"
    # lowering happened once per distinct task, not once per microbatch
    n_tasks_with_payload = len(per_task)
    assert n_tasks_with_payload <= len(compiled.split.tasks)

    # ---- wall-clock: transformer gradient jaxpr, VM vs interpreter -------
    mb = (batch[0][0], batch[1][0])
    grad_jaxpr, _, _ = ir.trace(
        lambda p, mb: ir.value_and_grad(
            lambda p, mb: transformer_loss(p, mb, CFG)
        )(p, mb),
        params, mb,
    )
    flat, _ = ir.tree_flatten((params, mb))
    prog = linearize(grad_jaxpr)

    ref = ir.eval_jaxpr(grad_jaxpr, flat)
    got = prog(flat)
    for a, b in zip(ref, got):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def best_of(fn, repeats=7):
        fn()  # warm
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_interp = best_of(lambda: ir.eval_jaxpr(grad_jaxpr, flat))
    t_linear = best_of(lambda: prog(flat))
    assert t_linear <= t_interp, (
        f"linear VM slower than interpreter: {t_linear:.6f}s vs {t_interp:.6f}s"
    )

    gstats = prog.stats
    record = {
        "model": "mini-GPT 4L/4stages d=32",
        "per_step": dict(totals, call_ratio=round(call_ratio, 3),
                         eqn_ratio=round(totals["eqns"] / totals["instructions"], 3)),
        "grad_jaxpr": {
            "n_eqns": gstats["n_eqns"],
            "n_instructions": gstats["n_instructions"],
            "folded": gstats["folded"],
            "aliased": gstats["aliased"],
            "fused_away": gstats["fused_away"],
            "donations": gstats["donations"],
        },
        "wallclock_s": {
            "interpret": round(t_interp, 6),
            "linear": round(t_linear, 6),
            "speedup": round(t_interp / t_linear, 3),
        },
    }
    (results_dir / "BENCH_linearize.json").write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        "linear task VM vs tree-walking interpreter (transformer example)",
        "",
        f"per-step loop tasks : {totals['eqns']} eqn dispatches -> "
        f"{totals['instructions']} VM instructions "
        f"({totals['eqns'] / totals['instructions']:.2f}x fewer)",
        f"python-level calls  : {totals['interp_calls']} -> {totals['vm_calls']} "
        f"({call_ratio:.2f}x fewer)",
        f"grad jaxpr lowering : {gstats['n_eqns']} eqns -> "
        f"{gstats['n_instructions']} instrs "
        f"(folded={gstats['folded']}, aliased={gstats['aliased']}, "
        f"fused={gstats['fused_away']}, donations={gstats['donations']})",
        f"wall-clock          : interpret {t_interp * 1e3:.2f} ms, "
        f"linear {t_linear * 1e3:.2f} ms ({t_interp / t_linear:.2f}x)",
    ]
    emit(results_dir, "linearize_dispatch", "\n".join(lines))


def test_linear_backend_end_to_end_step_identical(results_dir):
    """The full distributed step is bit-identical across backends on the
    transformer (gallery-wide coverage lives in tier-1; this pins the
    benchmark workload itself)."""
    train_step, params, batch = _transformer_step()
    outs = {}
    for backend in ("linear", "interpret"):
        mesh = core.RemoteMesh((CFG.n_stages,))
        step = mesh.distributed(train_step, task_backend=backend)
        outs[backend] = step(params, batch)
    fa, _ = ir.tree_flatten(outs["linear"])
    fb, _ = ir.tree_flatten(outs["interpret"])
    for a, b in zip(fa, fb):
        a, b = np.asarray(a), np.asarray(b)
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)
