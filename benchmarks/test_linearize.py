"""Task-backend benchmark: interpret vs linear VM vs codegen (PR 3 + PR 7).

Three execution tiers for the same lowered stage tasks:

- ``interpret``: tree-walking reference (one Python dispatch per eqn);
- ``linear``: slot-indexed VM over a ``LinearProgram`` (PR 3 — one
  dispatch per *instruction*, with folding/aliasing/fusion);
- ``codegen``: each program exec-compiled into straight-line Python
  source (PR 7 — dispatch only at guaranteed impl-call sites).

The acceptance floor rides on the *deployed* steady state: a full
pipeline step with ``task_backend="codegen"`` under whole-actor fusion
(``codegen_actor=True`` merges every actor's instruction stream into one
generated driver) must be >= 2x faster wall-clock than the current
``"linear"`` backend on the stock event engine, bit-identical outputs
included.  Task-level columns are reported alongside (they share the
same C-kernel floor, so their ratio saturates below the step-level one).

Writes ``BENCH_linearize.json`` with the three-column matrix,
per-backend Python-call counts, and the step-level measure.
"""

import json
import time

import numpy as np

from repro import core, ir
from repro.core.compile import compile_train_step
from repro.data import token_batches
from repro.ir.codegen import CodegenProgram, codegen
from repro.ir.linearize import linearize
from repro.models import TransformerConfig, init_transformer, transformer_loss
from repro.runtime.instructions import RunTask

from .conftest import emit

CFG = TransformerConfig(
    vocab=32, seq=12, d_model=32, n_heads=4, d_ff=64,
    n_layers=4, n_stages=4, tie_embeddings=False,
)
N_MBS, MBSZ = 4, 8

#: step-level acceptance floor: codegen backend + fused actor driver vs
#: the linear backend on the stock event engine
STEP_SPEEDUP_FLOOR = 2.0


def _transformer_step():
    params = init_transformer(np.random.RandomState(0), CFG)
    batch = next(token_batches(CFG.vocab, CFG.seq, N_MBS, MBSZ, 1, seed=2))

    def train_step(params, batch):
        def microbatch_grads(mb):
            loss, grads = ir.value_and_grad(
                lambda p, mb: transformer_loss(p, mb, CFG)
            )(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(microbatch_grads, core.OneFOneB(CFG.n_stages))(batch)
        new = ir.tree_map(lambda w, g: ir.ops.sub(w, ir.ops.mul(0.01, g)), params, grads)
        return new, losses

    return train_step, params, batch


def _best_of(fn, repeats=7):
    fn()  # warm
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_backend_matrix_and_step_wallclock_floor(results_dir):
    train_step, params, batch = _transformer_step()
    jaxpr, _, _ = ir.trace(train_step, params, batch)
    compiled = compile_train_step(
        jaxpr, core.OneFOneB(CFG.n_stages), task_backend="codegen"
    )

    # ---- static per-step dispatch accounting over every loop RunTask ----
    # CodegenProgram.stats carries the whole column stack: eqn dispatches
    # (interpret), VM instruction calls (linear), and guaranteed call
    # sites of the generated source (codegen).
    totals = {
        "eqns": 0, "instructions": 0,
        "interp_calls": 0, "vm_calls": 0, "codegen_calls": 0,
        "codegen_residual_checks": 0,
    }
    per_task: dict[int, dict] = {}
    for prog in compiled.programs:
        for instr in prog:
            # loop phase only: memo prologues (ir/opt.py hoisting) carry
            # their own per-step codegen payloads, counted separately
            if (
                isinstance(instr, RunTask)
                and isinstance(instr.fn, CodegenProgram)
                and instr.meta.get("phase") == "loop"
            ):
                s = instr.fn.stats
                totals["eqns"] += s["n_eqns"]
                totals["instructions"] += s["n_instructions"]
                totals["interp_calls"] += s["interp_calls_per_run"]
                totals["vm_calls"] += s["vm_calls_per_run"]
                totals["codegen_calls"] += s["codegen_calls_per_run"]
                totals["codegen_residual_checks"] += s["codegen_residual_checks"]
                per_task.setdefault(id(instr.fn), s)

    assert totals["instructions"] > 0, "no codegen task payloads found"
    assert totals["instructions"] < totals["eqns"]
    vm_ratio = totals["interp_calls"] / totals["vm_calls"]
    cg_ratio = totals["interp_calls"] / totals["codegen_calls"]
    assert vm_ratio >= 2.0, f"linear dispatch reduction only {vm_ratio:.2f}x"
    assert cg_ratio >= 2.0, f"codegen call reduction only {cg_ratio:.2f}x"
    # codegen's count is exhaustive (impls + input conversions + residual
    # dtype checks); the VM performs those too but counts only instruction
    # dispatches, so the columns are floors, not directly ordered.  What
    # must hold: almost all dynamic dtype checks are resolved at gen time.
    assert totals["codegen_residual_checks"] < totals["instructions"]
    assert len(per_task) <= len(compiled.split.tasks)

    # ---- task-level wall-clock: transformer gradient jaxpr, 3 columns ---
    mb = (batch[0][0], batch[1][0])
    grad_jaxpr, _, _ = ir.trace(
        lambda p, mb: ir.value_and_grad(
            lambda p, mb: transformer_loss(p, mb, CFG)
        )(p, mb),
        params, mb,
    )
    flat, _ = ir.tree_flatten((params, mb))
    lin = linearize(grad_jaxpr)
    cg = codegen(grad_jaxpr)

    ref = ir.eval_jaxpr(grad_jaxpr, flat)
    for backend_out in (lin(flat), cg(flat)):
        for a, b in zip(ref, backend_out):
            a, b = np.asarray(a), np.asarray(b)
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    t_interp = _best_of(lambda: ir.eval_jaxpr(grad_jaxpr, flat))
    t_linear = _best_of(lambda: lin(flat))
    t_codegen = _best_of(lambda: cg(flat))
    assert t_linear <= t_interp
    assert t_codegen <= t_linear, (
        f"codegen slower than linear VM: {t_codegen:.6f}s vs {t_linear:.6f}s"
    )

    # ---- step-level wall-clock: deployed steady state (the floor) -------
    # linear backend on the stock event engine vs codegen backend with the
    # whole-actor fused driver — same schedule, same inputs, bit-identical.
    mesh_lin = core.RemoteMesh((CFG.n_stages,))
    step_lin = mesh_lin.distributed(train_step, task_backend="linear")
    mesh_cg = core.RemoteMesh((CFG.n_stages,), codegen_actor=True)
    step_cg = mesh_cg.distributed(train_step, task_backend="codegen")

    out_lin = step_lin(params, batch)
    out_cg = step_cg(params, batch)
    fa, _ = ir.tree_flatten(out_lin)
    fb, _ = ir.tree_flatten(out_cg)
    for a, b in zip(fa, fb):
        a, b = np.asarray(a), np.asarray(b)
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)

    t_step_lin = _best_of(lambda: step_lin(params, batch), repeats=25)
    t_step_cg = _best_of(lambda: step_cg(params, batch), repeats=25)
    step_speedup = t_step_lin / t_step_cg
    assert step_speedup >= STEP_SPEEDUP_FLOOR, (
        f"codegen+fused step only {step_speedup:.2f}x over linear "
        f"({t_step_cg * 1e3:.2f} ms vs {t_step_lin * 1e3:.2f} ms); "
        f"floor is {STEP_SPEEDUP_FLOOR}x"
    )

    driver = step_cg._fused[1]
    gstats = cg.stats
    record = {
        "model": "mini-GPT 4L/4stages d=32",
        "per_step_python_calls": {
            "interpret": totals["interp_calls"],
            "linear": totals["vm_calls"],
            "codegen": totals["codegen_calls"],
            "codegen_residual_checks": totals["codegen_residual_checks"],
            "eqns": totals["eqns"],
            "vm_instructions": totals["instructions"],
            "linear_call_ratio": round(vm_ratio, 3),
            "codegen_call_ratio": round(cg_ratio, 3),
        },
        "grad_jaxpr": {
            "n_eqns": gstats["n_eqns"],
            "n_instructions": gstats["n_instructions"],
            "folded": gstats["folded"],
            "aliased": gstats["aliased"],
            "fused_away": gstats["fused_away"],
            "donations": gstats["donations"],
            "codegen_calls_per_run": gstats["codegen_calls_per_run"],
        },
        "task_wallclock_s": {
            "interpret": round(t_interp, 6),
            "linear": round(t_linear, 6),
            "codegen": round(t_codegen, 6),
            "linear_speedup_vs_interpret": round(t_interp / t_linear, 3),
            "codegen_speedup_vs_interpret": round(t_interp / t_codegen, 3),
            "codegen_speedup_vs_linear": round(t_linear / t_codegen, 3),
        },
        "step_wallclock_s": {
            "linear_event": round(t_step_lin, 6),
            "codegen_fused_actor": round(t_step_cg, 6),
            "speedup": round(step_speedup, 3),
            "floor": STEP_SPEEDUP_FLOOR,
            "fused_instructions": driver.n_instructions,
            "fused_task_calls": driver.n_tasks,
            "fused_p2p_rebinds": driver.p2p_count,
        },
    }
    (results_dir / "BENCH_linearize.json").write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        "task backends: interpret vs linear VM vs codegen (transformer example)",
        "",
        f"per-step loop tasks : {totals['eqns']} eqn dispatches -> "
        f"{totals['instructions']} VM instructions",
        f"python-level calls  : interpret {totals['interp_calls']} -> "
        f"linear {totals['vm_calls']} ({vm_ratio:.2f}x) -> "
        f"codegen {totals['codegen_calls']} ({cg_ratio:.2f}x, "
        f"{totals['codegen_residual_checks']} residual dtype checks)",
        f"grad jaxpr          : {gstats['n_eqns']} eqns -> "
        f"{gstats['n_instructions']} instrs -> "
        f"{gstats['codegen_calls_per_run']} generated call sites",
        f"task wall-clock     : interpret {t_interp * 1e3:.2f} ms, "
        f"linear {t_linear * 1e3:.2f} ms ({t_interp / t_linear:.2f}x), "
        f"codegen {t_codegen * 1e3:.2f} ms ({t_interp / t_codegen:.2f}x)",
        f"step wall-clock     : linear/event {t_step_lin * 1e3:.2f} ms, "
        f"codegen+fused-actor {t_step_cg * 1e3:.2f} ms "
        f"({step_speedup:.2f}x; floor {STEP_SPEEDUP_FLOOR}x); "
        f"driver fuses {driver.n_instructions} instructions into "
        f"{driver.n_tasks} task calls + {driver.p2p_count} rebinds",
    ]
    emit(results_dir, "linearize_dispatch", "\n".join(lines))


def test_backend_end_to_end_step_identical(results_dir):
    """The full distributed step is bit-identical across all three task
    backends on the benchmark workload itself (gallery-wide coverage
    lives in tier-1)."""
    train_step, params, batch = _transformer_step()
    outs = {}
    for backend in ("linear", "interpret", "codegen"):
        mesh = core.RemoteMesh((CFG.n_stages,))
        step = mesh.distributed(train_step, task_backend=backend)
        outs[backend] = step(params, batch)
    fa, _ = ir.tree_flatten(outs["linear"])
    for other in ("interpret", "codegen"):
        fb, _ = ir.tree_flatten(outs[other])
        for a, b in zip(fa, fb):
            a, b = np.asarray(a), np.asarray(b)
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)
