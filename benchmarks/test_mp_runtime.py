"""Multi-process runtime guard: real-process overhead + replay-tuning.

Two measurements, both persisted to ``BENCH_mp.json``:

1. **Overhead** — one pp=4 transformer training step executed by the
   in-process event engine vs the process-per-rank ``engine="mp"``
   backend (spawn, channels, shared-memory transport included), results
   asserted bit-identical.  The mp wall-clock is dominated by process
   start-up at this scale; the record tracks the trajectory across PRs
   rather than enforcing a ratio.

2. **Replay-tune acceptance (ISSUE 5)** — a *measured* mp run of a
   skewed pp=8 workload feeds ``CostModel.from_result``; ``tune()`` on
   the measured table must select a schedule at least as good (under
   that measured model) as the analytic pick from FLOP-estimated stage
   costs.  This is the measure → ``from_result`` → recompile loop
   closed end-to-end on a genuinely parallel execution.
"""

import json
import time

import numpy as np

from repro import core, ir
from repro.core.autotune import CostModel, default_candidates, tune
from repro.ir import nn, ops, pipeline_yield
from repro.models import TransformerConfig, init_transformer, transformer_loss
from tests.core.test_linear_backend import assert_bit_identical

from .conftest import emit

WATCHDOG_S = 120.0


def _transformer_problem(n_stages=4, n_mbs=4, mbsz=2):
    cfg = TransformerConfig(
        vocab=32, seq=8, d_model=16, n_heads=2, d_ff=32,
        n_layers=n_stages, n_stages=n_stages,
    )
    params = init_transformer(np.random.RandomState(0), cfg)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(
                lambda p, m: transformer_loss(p, m, cfg)
            )(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(mg, core.OneFOneB(n_stages))(batch)
        new = ir.tree_map(lambda w, g: w - 0.05 * g, params, grads)
        return new, losses

    r = np.random.RandomState(1)
    batch = (
        r.randint(0, cfg.vocab, (n_mbs, mbsz, cfg.seq)).astype(np.int32),
        r.randint(0, cfg.vocab, (n_mbs, mbsz, cfg.seq)).astype(np.int32),
    )
    return train_step, params, batch


def _skewed_problem(n_stages=8, n_mbs=8, mbsz=4, d=8, heavy_stage=0, repeats=6):
    """MLP pipeline with one deliberately expensive stage (extra matmul
    passes), so the measured cost table is genuinely skewed."""
    r = np.random.RandomState(2)
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    params = {
        f"w{i}": (r.randn(d, d) * 0.3).astype(np.float32) for i in range(n_stages)
    }

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            n_mm = repeats if i == heavy_stage else 1
            for _ in range(n_mm):
                h = nn.relu(ops.matmul(h, p[f"w{i}"]))
            if i < n_stages - 1:
                h = pipeline_yield(h)
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.1, g)), params, grads)
        return new, loss

    return train_step, params, (X, Y)


def test_mp_overhead_and_replay_tune(results_dir):
    record = {}

    # ---- 1. pp=4 transformer step: mp overhead vs in-process ------------
    train_step, params, batch = _transformer_problem()
    event_step = core.RemoteMesh((4,)).distributed(
        train_step, schedule=core.OneFOneB(4)
    )
    want = event_step(params, batch)  # compile + reference run
    t0 = time.perf_counter()
    want = event_step(params, batch)
    event_s = time.perf_counter() - t0

    # mp_persistent=False on purpose: this record tracks the *cold*
    # spawn-per-step trajectory; the warm-pool numbers live in
    # BENCH_mp_pool.json (benchmarks/test_mp_pool.py)
    mp_step = core.RemoteMesh(
        (4,), engine="mp", mp_persistent=False, mp_watchdog_s=WATCHDOG_S
    ).distributed(train_step, schedule=core.OneFOneB(4))
    t0 = time.perf_counter()
    got = mp_step(params, batch)
    mp_s = time.perf_counter() - t0
    assert_bit_identical(want, got)

    res = mp_step.last_result
    record["overhead"] = {
        "workload": "pp=4 transformer (4 layers, d=16), n_mbs=4",
        "event_step_s": event_s,
        "mp_step_s": mp_s,
        "mp_overhead_x": mp_s / event_s if event_s > 0 else float("inf"),
        "mp_makespan_s": res.makespan,
        "p2p_count": res.p2p_count,
        "p2p_bytes": res.p2p_bytes,
        "visits": res.visits,
    }
    assert res.engine == "mp" and res.makespan > 0.0

    # ---- 2. skewed pp=8: measured mp run replay-tunes end-to-end --------
    PP, N_MBS = 8, 8
    train_step, params, batch = _skewed_problem(PP, N_MBS)

    # analytic pick: FLOP-estimated stage costs at compile time
    jaxpr, _, _ = ir.trace(train_step, params, batch)
    from repro.core.stage_split import split_stages
    from repro.core.accumulate import pipeline_loop_p

    loop = next(e for e in jaxpr.eqns if e.prim is pipeline_loop_p)
    split = split_stages(loop.params["body_jaxpr"])
    analytic_cm = CostModel.from_tasks(split)
    analytic = tune(analytic_cm, PP, N_MBS).best

    # measured table: one real mp run of the baseline schedule
    mp_step = core.RemoteMesh(
        (PP,), engine="mp", mp_persistent=False, mp_watchdog_s=WATCHDOG_S
    ).distributed(train_step, schedule=core.OneFOneB(PP))
    mp_step(params, batch)
    measured_res = mp_step.last_result
    measured_cm = CostModel.from_result(measured_res, n_stages=PP)
    assert measured_cm.skew > 1.5, (
        f"heavy stage not visible in measured table (skew {measured_cm.skew:.2f})"
    )

    # retune on the measured table, with the analytic pick in the field
    candidates = default_candidates(PP)
    if all(type(s) is not type(analytic.schedule) for s in candidates):
        candidates.append(analytic.schedule)
    measured_report = tune(measured_cm, PP, N_MBS, candidates=candidates)
    replay_best = measured_report.best

    # the analytic pick priced under the *measured* model
    analytic_under_measured = next(
        (e for e in measured_report.entries if e.name == analytic.schedule.name),
        None,
    )
    if analytic_under_measured is None:
        analytic_report = tune(
            measured_cm, PP, N_MBS, candidates=[analytic.schedule], rounds=1
        )
        analytic_under_measured = analytic_report.best

    record["replay_tune"] = {
        "workload": f"pp={PP} skewed MLP (stage 0 heavy), n_mbs={N_MBS}",
        "measured_skew": measured_cm.skew,
        "analytic_pick": analytic.schedule.name,
        "replay_pick": replay_best.schedule.name,
        "analytic_pick_makespan_measured": analytic_under_measured.makespan,
        "replay_pick_makespan_measured": replay_best.makespan,
        "mp_run_makespan_s": measured_res.makespan,
        "mp_run_json_bytes": len(measured_res.to_json()),
    }

    # acceptance: replay-tuned at least as good as the analytic pick
    assert replay_best.makespan <= analytic_under_measured.makespan + 1e-12

    (results_dir / "BENCH_mp.json").write_text(json.dumps(record, indent=2) + "\n")
    emit(
        results_dir,
        "mp_runtime",
        json.dumps(record, indent=2),
    )
