"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures, printing the
series and writing it to ``benchmarks/results/`` so the output survives
pytest's capture. Heavy simulations run once per benchmark
(``benchmark.pedantic`` with a single round) — these are model evaluations,
not microbenchmarks.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"
_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark as ``slow`` so `-m "not slow"` keeps the
    tier-1 lane fast; the CI smoke job runs this directory explicitly."""
    for item in items:
        try:
            in_benchmarks = _BENCH_DIR in pathlib.Path(str(item.fspath)).parents
        except (OSError, ValueError):  # pragma: no cover - exotic collectors
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated figures/tables."""
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a regenerated artefact and persist it."""
    banner = f"\n{'=' * 74}\n{name}\n{'=' * 74}\n"
    print(banner + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
