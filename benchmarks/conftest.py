"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures, printing the
series and writing it to ``benchmarks/results/`` so the output survives
pytest's capture. Heavy simulations run once per benchmark
(``benchmark.pedantic`` with a single round) — these are model evaluations,
not microbenchmarks.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated figures/tables."""
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a regenerated artefact and persist it."""
    banner = f"\n{'=' * 74}\n{name}\n{'=' * 74}\n"
    print(banner + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
