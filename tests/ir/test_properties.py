"""Hypothesis property tests on the IR: algebraic identities, gradient
linearity, shape-op roundtrips, and trace/eval equivalence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.ir import ops

SETTINGS = dict(max_examples=30, deadline=None)


def arrays(max_side=4, min_dims=1, max_dims=3):
    return st.integers(1, max_side).flatmap(
        lambda _: st.lists(st.integers(1, max_side), min_size=min_dims, max_size=max_dims)
    ).flatmap(
        lambda shape: st.builds(
            lambda seed: np.random.RandomState(seed).randn(*shape).astype(np.float32),
            st.integers(0, 2**31 - 1),
        )
    )


class TestAlgebraicIdentities:
    @given(x=arrays())
    @settings(**SETTINGS)
    def test_add_neg_is_zero(self, x):
        np.testing.assert_allclose(ops.add(x, ops.neg(x)), np.zeros_like(x), atol=1e-6)

    @given(x=arrays())
    @settings(**SETTINGS)
    def test_exp_log_roundtrip(self, x):
        pos = np.abs(x) + 0.5
        np.testing.assert_allclose(ops.exp(ops.log(pos)), pos, rtol=1e-5)

    @given(x=arrays(max_dims=2), seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_transpose_involution(self, x, seed):
        perm = np.random.RandomState(seed).permutation(x.ndim)
        t = ops.transpose(ops.transpose(x, perm), np.argsort(perm))
        np.testing.assert_array_equal(t, x)

    @given(x=arrays())
    @settings(**SETTINGS)
    def test_reshape_flat_roundtrip(self, x):
        flat = ops.reshape(x, (-1,))
        np.testing.assert_array_equal(ops.reshape(flat, x.shape), x)

    @given(x=arrays())
    @settings(**SETTINGS)
    def test_sum_matches_numpy(self, x):
        np.testing.assert_allclose(ops.reduce_sum(x), x.sum(), rtol=1e-4, atol=1e-4)


class TestTraceEvalEquivalence:
    @given(x=arrays(), y_seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_traced_equals_eager(self, x, y_seed):
        y = np.random.RandomState(y_seed).randn(*x.shape).astype(np.float32)

        def f(x, y):
            return ops.tanh(ops.add(ops.mul(x, y), ops.exp(ops.neg(ops.abs_(x))))).sum()

        jaxpr, _, _ = ir.trace(f, x, y)
        ir.validate(jaxpr)
        np.testing.assert_allclose(ir.eval_jaxpr(jaxpr, [x, y])[0], f(x, y), rtol=1e-5)

    @given(x=arrays())
    @settings(**SETTINGS)
    def test_dce_preserves_semantics(self, x):
        def f(x):
            dead = ops.exp(x)  # noqa: F841
            live = ops.tanh(x)
            return live.sum()

        jaxpr, _, _ = ir.trace(f, x)
        pruned = ir.dce(jaxpr)
        assert pruned.n_eqns < jaxpr.n_eqns
        np.testing.assert_allclose(
            ir.eval_jaxpr(pruned, [x])[0], ir.eval_jaxpr(jaxpr, [x])[0], rtol=1e-6
        )


class TestGradientProperties:
    @given(x=arrays())
    @settings(**SETTINGS)
    def test_grad_of_sum_is_ones(self, x):
        g = ir.grad(lambda x: x.sum())(x)
        np.testing.assert_allclose(g, np.ones_like(x))

    @given(x=arrays(), a=st.floats(-2, 2), b=st.floats(-2, 2))
    @settings(**SETTINGS)
    def test_grad_linearity(self, x, a, b):
        # grad(a*f + b*g) == a*grad(f) + b*grad(g)
        f = lambda x: ops.tanh(x).sum()
        g = lambda x: (x ** 2.0).sum()
        combined = ir.grad(lambda x: ops.add(ops.mul(a, f(x)), ops.mul(b, g(x))))(x)
        expected = a * np.asarray(ir.grad(f)(x)) + b * np.asarray(ir.grad(g)(x))
        np.testing.assert_allclose(combined, expected, rtol=1e-4, atol=1e-5)

    @given(x=arrays())
    @settings(**SETTINGS)
    def test_grad_of_quadratic(self, x):
        g = ir.grad(lambda x: (x ** 2.0).sum())(x)
        np.testing.assert_allclose(g, 2 * x, rtol=1e-5)

    @given(x=arrays(max_dims=2))
    @settings(**SETTINGS)
    def test_stop_gradient_zeroes(self, x):
        g = ir.grad(lambda x: ops.stop_gradient(x ** 2.0).sum())(x)
        np.testing.assert_allclose(g, np.zeros_like(x))
