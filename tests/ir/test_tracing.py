"""Tests for the tracer: jaxpr construction, literals, free vars, DCE."""

import numpy as np
import pytest

from repro import ir
from repro.ir import ops
from repro.ir.jaxpr import Literal, eqn_dependencies
from repro.ir.tracer import trace_flat
from tests.helpers import rng


def _f32(*shape, seed=0):
    return rng(seed).randn(*shape).astype(np.float32)


class TestTrace:
    def test_simple_structure(self):
        def f(x, y):
            return ops.add(ops.mul(x, y), 1.0)

        jaxpr, _, _ = ir.trace(f, _f32(2), _f32(2))
        assert [e.prim.name for e in jaxpr.eqns] == ["mul", "add"]
        assert len(jaxpr.invars) == 2
        ir.validate(jaxpr)

    def test_literal_embedding(self):
        def f(x):
            return ops.add(x, 3.5)

        jaxpr, _, _ = ir.trace(f, _f32(2))
        lit = jaxpr.eqns[0].invars[1]
        assert isinstance(lit, Literal)
        assert float(np.asarray(lit.value)) == 3.5

    def test_constant_output_is_literal(self):
        def f(x):
            return np.float32(7.0)

        jaxpr, _, _ = ir.trace(f, _f32(2))
        assert isinstance(jaxpr.outvars[0], Literal)

    def test_eval_matches_eager(self):
        def f(x, y):
            return ops.tanh(ops.matmul(x, y)).sum()

        x, y = _f32(3, 4, seed=1), _f32(4, 2, seed=2)
        jaxpr, _, _ = ir.trace(f, x, y)
        np.testing.assert_allclose(ir.eval_jaxpr(jaxpr, [x, y])[0], f(x, y), rtol=1e-6)

    def test_pytree_args_and_outputs(self):
        def f(params, batch):
            h = ops.matmul(batch["x"], params["w"])
            return {"out": h, "aux": (h.sum(),)}

        params = {"w": _f32(3, 2)}
        batch = {"x": _f32(4, 3)}
        jaxpr, in_tree, out_tree = ir.trace(f, params, batch)
        # flatten order follows the argument tuple: params leaves then batch
        outs = ir.eval_jaxpr(jaxpr, [params["w"], batch["x"]])
        rebuilt = ir.tree_unflatten(out_tree, outs)
        assert set(rebuilt.keys()) == {"out", "aux"}

    def test_operator_overloads(self):
        def f(x, y):
            return ((x + y) * 2.0 - y) / (x ** 2.0 + 1.0)

        x, y = _f32(3, seed=3), _f32(3, seed=4)
        jaxpr, _, _ = ir.trace(f, x, y)
        np.testing.assert_allclose(ir.eval_jaxpr(jaxpr, [x, y])[0], f(x, y), rtol=1e-5)

    def test_matmul_operator(self):
        x, y = _f32(2, 3), _f32(3, 2)

        def f(x, y):
            return x @ y

        jaxpr, _, _ = ir.trace(f, x, y)
        assert jaxpr.eqns[0].prim.name == "matmul"

    def test_getitem_int_and_slice(self):
        x = _f32(4, 6)

        def f(x):
            return x[1, 2:5]

        jaxpr, _, _ = ir.trace(f, x)
        np.testing.assert_array_equal(ir.eval_jaxpr(jaxpr, [x])[0], x[1, 2:5])

    def test_tracer_bool_raises(self):
        def f(x):
            if x.sum() > 0:  # traced comparison used in Python control flow
                return x
            return x

        with pytest.raises(TypeError):
            ir.trace(f, _f32(3))

    def test_trace_shape_properties(self):
        def f(x):
            assert x.shape == (3, 4)
            assert x.ndim == 2
            assert len(x) == 3
            return x.sum()

        ir.trace(f, _f32(3, 4))


class TestFreeVars:
    def test_closure_lifting(self):
        x = _f32(3, seed=5)

        def outer(a):
            # inner trace closes over tracer `a`
            def inner(b):
                return [ops.add(a, b)]

            jaxpr, free = trace_flat(inner, [ir.abstractify(x)])
            assert len(free) == 1  # `a` lifted
            assert len(jaxpr.invars) == 2
            return ir.eval_jaxpr(jaxpr, [a, free[0]])[0]

        jaxpr, _, _ = ir.trace(outer, x)
        np.testing.assert_allclose(ir.eval_jaxpr(jaxpr, [x])[0], x + x)

    def test_free_var_dedup(self):
        x = _f32(2)

        def outer(a):
            def inner(b):
                return [ops.add(ops.add(a, b), a)]  # `a` used twice

            jaxpr, free = trace_flat(inner, [ir.abstractify(x)])
            assert len(free) == 1
            return ir.eval_jaxpr(jaxpr, [a, free[0]])[0]

        ir.trace(outer, x)

    def test_trace_rejects_open_function(self):
        captured = {}

        def f(x):
            captured["x"] = x
            return x.sum()

        ir.trace(f, _f32(2))

        def g(y):
            return ops.add(y, captured["x"]).sum()  # leaked tracer

        with pytest.raises(ValueError):
            ir.trace(g, _f32(2))


class TestValidateDce:
    def test_validate_catches_undefined(self):
        def f(x):
            return ops.mul(x, 2.0)

        jaxpr, _, _ = ir.trace(f, _f32(2))
        # Corrupt: drop the defining equation.
        bad = ir.Jaxpr(jaxpr.invars, [], jaxpr.outvars)
        with pytest.raises(ValueError):
            ir.validate(bad)

    def test_dce_removes_dead(self):
        def f(x):
            dead = ops.exp(x)  # noqa: F841 unused on purpose
            return ops.mul(x, 2.0)

        jaxpr, _, _ = ir.trace(f, _f32(2))
        pruned = ir.dce(jaxpr)
        assert pruned.n_eqns == 1
        assert pruned.eqns[0].prim.name == "mul"
        ir.validate(pruned)

    def test_dce_keeps_live_chain(self):
        def f(x):
            a = ops.exp(x)
            b = ops.log(a)
            return b.sum()

        jaxpr, _, _ = ir.trace(f, _f32(2))
        assert ir.dce(jaxpr).n_eqns == jaxpr.n_eqns

    def test_eqn_dependencies(self):
        def f(x):
            a = ops.exp(x)
            b = ops.neg(x)
            return ops.add(a, b)

        jaxpr, _, _ = ir.trace(f, _f32(2))
        deps = eqn_dependencies(jaxpr.eqns)
        assert deps[0] == set() and deps[1] == set()
        assert deps[2] == {0, 1}

    def test_pretty_print_runs(self):
        def f(x):
            return ops.add(x, 1.0)

        jaxpr, _, _ = ir.trace(f, _f32(2))
        s = ir.pretty_print(jaxpr)
        assert "add" in s and "lambda" in s
