"""Unit tests for dtype canonicalization, promotion, and abstract values."""

import numpy as np
import pytest

from repro.ir import ShapedArray, abstractify, dtypes
from repro.ir.avals import broadcast_shapes


class TestDtypes:
    def test_canonicalize_float64_down(self):
        assert dtypes.canonicalize_dtype(np.float64) is dtypes.float32

    def test_canonicalize_int64_down(self):
        assert dtypes.canonicalize_dtype(np.int64) is dtypes.int32

    def test_canonicalize_passthrough(self):
        assert dtypes.canonicalize_dtype(dtypes.bfloat16) is dtypes.bfloat16

    def test_canonicalize_bool(self):
        assert dtypes.canonicalize_dtype(np.bool_) is dtypes.bool_

    def test_canonicalize_rejects_unknown(self):
        with pytest.raises(TypeError):
            dtypes.canonicalize_dtype(np.complex64)

    def test_bfloat16_accounting_itemsize(self):
        # bf16 computes in fp32 but is accounted at 2 bytes (paper trains BF16).
        assert dtypes.bfloat16.np_dtype == np.float32
        assert dtypes.bfloat16.itemsize == 2

    def test_promotion_lattice(self):
        assert dtypes.promote_types(dtypes.int32, dtypes.float32) is dtypes.float32
        assert dtypes.promote_types(dtypes.bool_, dtypes.int32) is dtypes.int32
        assert dtypes.promote_types(dtypes.bfloat16, dtypes.float32) is dtypes.float32

    def test_promotion_same(self):
        assert dtypes.promote_types(dtypes.bfloat16, dtypes.bfloat16) is dtypes.bfloat16

    def test_promotion_unordered_halfs(self):
        assert dtypes.promote_types(dtypes.float16, dtypes.bfloat16) is dtypes.float32

    def test_is_float(self):
        assert dtypes.is_float(dtypes.bfloat16)
        assert not dtypes.is_float(dtypes.int32)


class TestShapedArray:
    def test_basic_props(self):
        a = ShapedArray((4, 8), dtypes.float32)
        assert a.ndim == 2
        assert a.size == 32
        assert a.nbytes == 128

    def test_bf16_nbytes_logical(self):
        a = ShapedArray((10,), dtypes.bfloat16)
        assert a.nbytes == 20  # 2 bytes/elt even though storage is fp32

    def test_scalar(self):
        a = ShapedArray((), dtypes.float32)
        assert a.size == 1 and a.ndim == 0

    def test_update(self):
        a = ShapedArray((4, 8), dtypes.float32)
        b = a.update(shape=(2, 2))
        assert b.shape == (2, 2) and b.dtype is dtypes.float32
        c = a.update(dtype=dtypes.bfloat16)
        assert c.shape == (4, 8) and c.dtype is dtypes.bfloat16

    def test_hashable_equality(self):
        assert ShapedArray((1, 2), dtypes.float32) == ShapedArray((1, 2), dtypes.float32)
        assert hash(ShapedArray((1, 2), dtypes.float32)) == hash(ShapedArray((1, 2), dtypes.float32))

    def test_repr(self):
        assert repr(ShapedArray((3, 4), dtypes.float32)) == "float32[3,4]"


class TestAbstractify:
    def test_ndarray(self):
        a = abstractify(np.zeros((2, 3), np.float32))
        assert a == ShapedArray((2, 3), dtypes.float32)

    def test_python_scalars(self):
        assert abstractify(1.5).dtype is dtypes.float32
        assert abstractify(2).dtype is dtypes.int32
        assert abstractify(True).dtype is dtypes.bool_

    def test_float64_canonicalized(self):
        assert abstractify(np.zeros(3)).dtype is dtypes.float32


class TestBroadcastShapes:
    def test_simple(self):
        assert broadcast_shapes((4, 1), (1, 5)) == (4, 5)

    def test_scalar(self):
        assert broadcast_shapes((), (3, 2)) == (3, 2)

    def test_rank_extension(self):
        assert broadcast_shapes((5,), (2, 5)) == (2, 5)

    def test_incompatible(self):
        with pytest.raises(ValueError):
            broadcast_shapes((3,), (4,))
