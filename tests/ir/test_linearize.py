"""Unit tests for the linear task VM (:mod:`repro.ir.linearize`).

Differential coverage against the tree-walking interpreter lives in
``tests/core/test_linear_backend.py`` (the full schedule gallery); here we
test the lowering itself: constant folding, identity aliasing, elementwise
fusion, the liveness plan, and buffer-donation safety.
"""

import numpy as np
import pytest

from repro import ir
from repro.ir import nn, ops, pipeline_yield
from repro.ir.linearize import FusedChain, LinearProgram, linearize
from tests.helpers import rng


def identical(a_list, b_list):
    assert len(a_list) == len(b_list)
    for a, b in zip(a_list, b_list):
        a, b = np.asarray(a), np.asarray(b)
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)


def both_backends(f, *args):
    """(interpreter outputs, linear-VM outputs, program) for traced ``f``."""
    jaxpr, _, _ = ir.trace(f, *args)
    flat, _ = ir.tree_flatten(args)
    prog = linearize(jaxpr)
    return ir.eval_jaxpr(jaxpr, flat), prog(flat), prog


class TestEquivalence:
    def test_mixed_elementwise_matmul(self):
        r = rng(0)
        x, w = r.randn(6, 6).astype(np.float32), r.randn(6, 6).astype(np.float32)

        def f(x, w):
            h = ops.tanh(ops.matmul(x, w))
            g = ops.exp(ops.mul(h, 0.5))
            return ops.matmul(g, w), ops.reduce_sum(g)

        a, b, prog = both_backends(f, x, w)
        identical(a, b)
        assert prog.stats["fused_groups"] >= 1

    def test_reductions_where_comparisons(self):
        r = rng(1)
        x = r.randn(5, 7).astype(np.float32)

        def f(x):
            m = ops.reduce_max(x, axes=1, keepdims=True)
            p = ops.where(ops.greater(x, m), x, ops.mul(x, 0.1))
            return ops.mean(p), ops.reduce_sum(p, axes=0)

        a, b, _ = both_backends(f, x)
        identical(a, b)

    def test_nn_composites(self):
        r = rng(2)
        x = r.randn(4, 8).astype(np.float32)
        g_, b_ = np.ones(8, np.float32), np.zeros(8, np.float32)

        def f(x):
            return nn.gelu(nn.layer_norm(x, g_, b_))

        a, b, prog = both_backends(f, x)
        identical(a, b)
        # gelu/layer_norm are elementwise-rich: fusion must engage
        assert prog.stats["fused_away"] > 0

    def test_float64_inputs_canonicalized_like_interpreter(self):
        x = np.linspace(0.0, 1.0, 12).reshape(3, 4)  # float64
        a, b, _ = both_backends(lambda x: ops.mul(ops.add(x, 1.0), x), x)
        identical(a, b)

    def test_grad_jaxpr(self):
        r = rng(3)
        x, w = r.randn(4, 4).astype(np.float32), r.randn(4, 4).astype(np.float32)

        def loss(w, x):
            return ops.mean(ops.tanh(ops.matmul(x, w)) ** 2.0)

        def f(w, x):
            return ir.value_and_grad(loss)(w, x)

        a, b, _ = both_backends(f, w, x)
        identical(a, b)

    def test_passthrough_and_literal_outputs(self):
        x = np.arange(6, dtype=np.float32)

        def f(x):
            return x, np.float32(3.0), ops.add(x, 0.0)

        a, b, _ = both_backends(f, x)
        identical(a, b)


class TestFoldingAndAliasing:
    def test_literal_only_eqns_folded(self):
        x = np.ones((3,), np.float32)

        def f(x):
            c = ops.add(ops.ones((3,)), 2.0)  # literal-only under trace
            return ops.mul(x, c)

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.stats["folded"] >= 1
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_identity_markers_aliased(self):
        x = np.ones((2, 2), np.float32)

        def f(x):
            h = pipeline_yield(ops.add(x, 1.0))
            return ops.stop_gradient(ops.mul(h, 2.0))

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.stats["aliased"] == 2
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_aliased_output_canonicalized_like_interpreter(self):
        # a float64 value reaching an output purely through elided
        # identity markers must still get the canonicalization the
        # interpreter performs when it executes the marker
        x = np.linspace(0.0, 1.0, 4)  # float64

        def f(x):
            return pipeline_yield(x), ops.stop_gradient(x)

        a, b, prog = both_backends(f, x)
        identical(a, b)
        assert np.asarray(b[0]).dtype == np.float32
        assert prog.stats["aliased"] == 2

    def test_direct_passthrough_stays_raw(self):
        # with no eqn touching it, the interpreter returns the input
        # unconverted — so must the VM
        x = np.linspace(0.0, 1.0, 4)  # float64
        a, b, _ = both_backends(lambda x: (x,), x)
        identical(a, b)
        assert np.asarray(b[0]).dtype == np.float64

    def test_same_storage_convert_aliased(self):
        x = np.ones((2,), np.float32)

        def f(x):
            return ops.convert(x, ir.bfloat16)  # bf16 stores as float32

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.stats["aliased"] == 1
        assert prog.n_instructions == 0
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_real_convert_not_aliased(self):
        x = np.ones((2,), np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.convert(x, ir.int32), x)
        prog = linearize(jaxpr)
        assert prog.stats["aliased"] == 0
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))


class TestLiveness:
    def test_intermediate_freed_at_last_use(self):
        r = rng(4)
        x, w = r.randn(4, 4).astype(np.float32), r.randn(4, 4).astype(np.float32)

        def f(x, w):
            h = ops.matmul(x, w)       # slot dies at the second matmul
            g = ops.matmul(h, w)
            return ops.matmul(g, w)

        jaxpr, _, _ = ir.trace(f, x, w)
        prog = linearize(jaxpr)
        h_slot = prog.slot_of(jaxpr.eqns[0].outvars[0])
        # last instruction reading h's slot is instruction 1
        assert h_slot in prog.free_plan[1]
        assert all(h_slot not in fr for i, fr in enumerate(prog.free_plan) if i != 1)

    def test_freed_slots_never_read_later(self):
        r = rng(5)
        x = r.randn(8, 8).astype(np.float32)

        def f(x):
            h = nn.gelu(ops.matmul(x, x))
            return ops.mean((h - 1.0) ** 2.0), ops.reduce_max(h)

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        freed: set[int] = set()
        for idx, (instr, frees) in enumerate(zip(prog._instrs, prog.free_plan)):
            assert not (set(instr[1]) & freed), f"instr {idx} reads a freed slot"
            freed |= set(frees)

    def test_everything_dead_by_program_end(self):
        r = rng(6)
        x = r.randn(4, 4).astype(np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.reduce_sum(ops.exp(ops.matmul(x, x))), x)
        prog = linearize(jaxpr)
        freed = {s for fr in prog.free_plan for s in fr}
        produced = {s for instr in prog._instrs for s in (instr[3] if instr[3] is not None else (instr[2],))}
        live_at_end = produced - freed
        assert live_at_end == set(prog._out_slots) & produced


class TestDonation:
    def test_dying_fresh_operand_is_donated(self):
        x = np.ones((4, 4), np.float32)

        def f(x):
            h = ops.matmul(x, x)  # fresh, single consumer
            return ops.add(h, 1.0)

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.stats["donations"] == 1
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_program_inputs_never_donated(self):
        x = np.ones((4,), np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.add(x, 1.0), x)
        prog = linearize(jaxpr)
        assert prog.stats["donations"] == 0
        out = prog([x])[0]
        np.testing.assert_array_equal(x, np.ones((4,), np.float32))  # untouched
        assert out is not x

    def test_multi_consumer_view_escape_not_donated(self):
        # b has two consumers (a reshape view and an add); donating b into
        # the add would corrupt the escaping view
        r = rng(7)
        x = r.randn(4, 4).astype(np.float32)

        def f(x):
            b = ops.exp(x)
            c = ops.reshape(b, (16,))
            d = ops.add(b, 1.0)
            return c, d

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.stats["donations"] == 0
        a_out, b_out = ir.eval_jaxpr(jaxpr, [x]), prog([x])
        identical(a_out, b_out)
        np.testing.assert_array_equal(np.asarray(b_out[0]).reshape(4, 4), np.exp(x))

    def test_view_producer_output_not_donated(self):
        # t is a transpose view of the (dying) matmul result: t is not
        # fresh, so the elementwise consumer must not write into it
        r = rng(8)
        x = r.randn(4, 4).astype(np.float32)

        def f(x):
            h = ops.matmul(x, x)
            t = ops.transpose(h, (1, 0))
            return ops.add(t, t)

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.stats["donations"] == 0
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_scalar_results_not_donated(self):
        x = np.ones((4,), np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.neg(ops.reduce_sum(x)), x)
        prog = linearize(jaxpr)
        assert prog.stats["donations"] == 0
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_chain_internal_donation_correct(self):
        r = rng(9)
        x = r.randn(64,).astype(np.float32)

        def f(x):
            return ops.tanh(ops.exp(ops.mul(ops.add(x, 1.0), 0.5)))

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.stats["fused_groups"] == 1
        assert prog.stats["donations"] >= 2  # intra-chain temps die stepwise
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))


class TestFusion:
    def test_single_consumer_chain_one_instruction(self):
        x = np.ones((8,), np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.exp(ops.mul(ops.add(x, 1.0), 2.0)), x)
        prog = linearize(jaxpr)
        assert prog.n_instructions == 1
        assert isinstance(prog._instrs[0][0], FusedChain)
        assert prog.stats["fused_away"] == 2

    def test_fanout_breaks_chain(self):
        x = np.ones((8,), np.float32)

        def f(x):
            a = ops.exp(x)
            return ops.add(a, 1.0), ops.mul(a, 2.0)  # a consumed twice

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        # exp cannot fuse into either consumer
        assert prog.n_instructions == 3
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_matmul_not_fused(self):
        r = rng(10)
        x = r.randn(4, 4).astype(np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.exp(ops.matmul(x, x)), x)
        prog = linearize(jaxpr)
        assert prog.stats["fused_groups"] == 0
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))

    def test_tree_shaped_group(self):
        r = rng(11)
        x = r.randn(8,).astype(np.float32)

        def f(x):
            a = ops.exp(x)
            b = ops.neg(x)
            return ops.add(a, b)  # both producers single-consumed: one group

        jaxpr, _, _ = ir.trace(f, x)
        prog = linearize(jaxpr)
        assert prog.n_instructions == 1
        identical(ir.eval_jaxpr(jaxpr, [x]), prog([x]))


class TestProgramBehaviour:
    def test_cache_identity(self):
        x = np.ones((2,), np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.add(x, 1.0), x)
        assert linearize(jaxpr) is linearize(jaxpr)

    def test_wrong_arity_raises(self):
        x = np.ones((2,), np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.add(x, 1.0), x)
        with pytest.raises(TypeError, match="inputs"):
            linearize(jaxpr)([x, x])

    def test_traced_fallback_inlines(self):
        # calling a LinearProgram under an active trace must splice the
        # jaxpr into the outer trace, exactly like eval_jaxpr
        x = np.full((3,), 2.0, np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.mul(ops.add(x, 1.0), 2.0), x)
        prog = linearize(jaxpr)
        outer, _, _ = ir.trace(lambda x: ops.neg(prog([x])[0]), x)
        assert outer.n_eqns >= 3  # inlined, not opaque
        np.testing.assert_array_equal(
            ir.eval_jaxpr(outer, [x])[0], -(x + 1.0) * 2.0
        )

    def test_repeated_runs_are_independent(self):
        # donation/liveness must not leak state between calls
        r = rng(12)
        x = r.randn(4, 4).astype(np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.add(ops.matmul(x, x), 1.0), x)
        prog = linearize(jaxpr)
        first = [np.array(v, copy=True) for v in prog([x])]
        second = prog([x])
        identical(first, second)

    def test_unsupported_dtype_raises_like_interpreter(self):
        x = np.ones((3,), np.uint8)  # not in the canonicalization table
        jaxpr, _, _ = ir.trace(
            lambda x: ops.add(x, x), np.ones((3,), np.int32)
        )
        prog = linearize(jaxpr)
        with pytest.raises(TypeError, match="unsupported dtype"):
            ir.eval_jaxpr(jaxpr, [x])
        with pytest.raises(TypeError, match="unsupported dtype"):
            prog([x])

    def test_folded_constant_output_matches_interpreter_raw(self):
        # a literal-only eqn whose (possibly non-canonical) impl output is
        # a program output: the interpreter returns the raw impl result,
        # so folding must store it raw too
        from repro.ir.jaxpr import Eqn, Jaxpr, Literal, Var
        from repro.ir.ops import sqrt_p

        lit = Literal(np.asarray([4, 9], np.int32))
        out = Var(sqrt_p.abstract_eval(lit.aval))
        jaxpr = Jaxpr([], [Eqn(sqrt_p, [lit], [out], {})], [out])
        a = ir.eval_jaxpr(jaxpr, [])
        prog = linearize(jaxpr)
        assert prog.stats["folded"] == 1
        identical(a, prog([]))

    def test_dispatch_accounting(self):
        r = rng(13)
        x = r.randn(4, 4).astype(np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.exp(ops.mul(ops.matmul(x, x), 0.5)), x)
        prog = linearize(jaxpr)
        s = prog.stats
        assert s["n_instructions"] < s["n_eqns"]
        assert s["vm_calls_per_run"] < s["interp_calls_per_run"]


class TestProgramCachePins:
    """The weak program cache's strong-pin set (:class:`RecentPins`).

    Regression for the miss-only pin bug: the pin deque used to be
    appended only on cache miss, so a hot program whose sole strong
    holder was the pin (the eager ``accumulate_grads`` path) aged out
    after 128 *other* lowerings and silently re-lowered every step.
    Pins must refresh on hit, and repeated touches of one program must
    not consume multiple pin slots.
    """

    def _fresh_jaxpr(self, seed):
        x = np.float32(seed)
        jaxpr, _, _ = ir.trace(lambda x: ops.mul(ops.add(x, 1.0), 2.0), x)
        return jaxpr

    def test_hot_program_survives_129_interleaved_lowerings(self):
        import gc

        hot = self._fresh_jaxpr(0)
        hot_prog_id = id(linearize(hot))
        # interleave: touch the hot program (hit), then lower a fresh
        # jaxpr (miss).  N > maxlen would evict the hot pin under
        # miss-only appends; with on-hit refresh it stays the most
        # recently used pin throughout.
        cold = []  # keep cold jaxprs alive so ids stay distinct
        for i in range(1, 140):
            assert id(linearize(hot)) == hot_prog_id
            cold.append(self._fresh_jaxpr(i))
            linearize(cold[-1])
        gc.collect()
        # same object => never re-lowered (the only strong holder was the pin)
        assert id(linearize(hot)) == hot_prog_id

    def test_codegen_cache_shares_pin_semantics(self):
        import gc

        from repro.ir.codegen import codegen

        hot = self._fresh_jaxpr(1000)
        hot_prog_id = id(codegen(hot))
        cold = []
        for i in range(1, 140):
            assert id(codegen(hot)) == hot_prog_id
            cold.append(self._fresh_jaxpr(1000 + i))
            codegen(cold[-1])
        gc.collect()
        assert id(codegen(hot)) == hot_prog_id

    def test_touch_dedupes_slots(self):
        from repro.ir.linearize import RecentPins

        pins = RecentPins(maxlen=4)
        progs = [object() for _ in range(3)]
        for _ in range(10):
            for p in progs:
                pins.touch(p)
        assert len(pins) == 3
        assert all(p in pins for p in progs)
        # LRU eviction beyond maxlen evicts the least recently touched
        extra = [object(), object()]
        pins.touch(extra[0])
        pins.touch(extra[1])
        assert progs[0] not in pins
        assert progs[1] in pins and extra[0] in pins and extra[1] in pins
        assert len(pins) == 4
