"""Unit tests for the minimal pytree utilities."""

import collections

import numpy as np
import pytest

from repro.ir import tree_flatten, tree_leaves, tree_map, tree_structure, tree_unflatten

Point = collections.namedtuple("Point", ["x", "y"])


class TestFlattenUnflatten:
    def test_leaf(self):
        leaves, td = tree_flatten(42)
        assert leaves == [42]
        assert tree_unflatten(td, leaves) == 42

    def test_nested(self):
        t = {"a": [1, 2], "b": (3, {"c": 4})}
        leaves, td = tree_flatten(t)
        assert leaves == [1, 2, 3, 4]
        assert tree_unflatten(td, leaves) == t

    def test_dict_key_order_deterministic(self):
        t1 = {"b": 1, "a": 2}
        t2 = {"a": 2, "b": 1}
        assert tree_flatten(t1) == tree_flatten(t2)
        assert tree_flatten(t1)[0] == [2, 1]  # sorted keys: a, b

    def test_none_is_structure(self):
        leaves, td = tree_flatten({"a": None, "b": 1})
        assert leaves == [1]
        assert tree_unflatten(td, leaves) == {"a": None, "b": 1}

    def test_namedtuple(self):
        p = Point(1, (2, 3))
        leaves, td = tree_flatten(p)
        assert leaves == [1, 2, 3]
        out = tree_unflatten(td, leaves)
        assert isinstance(out, Point) and out == p

    def test_too_many_leaves_raises(self):
        _, td = tree_flatten((1, 2))
        with pytest.raises(ValueError):
            tree_unflatten(td, [1, 2, 3])

    def test_num_leaves(self):
        _, td = tree_flatten({"a": [1, 2, 3], "b": None})
        assert td.num_leaves == 3


class TestTreeMap:
    def test_single(self):
        assert tree_map(lambda x: x * 2, {"a": 1, "b": [2, 3]}) == {"a": 2, "b": [4, 6]}

    def test_multi(self):
        a = {"x": 1, "y": 2}
        b = {"x": 10, "y": 20}
        assert tree_map(lambda p, q: p + q, a, b) == {"x": 11, "y": 22}

    def test_structure_mismatch(self):
        with pytest.raises(ValueError):
            tree_map(lambda p, q: p, {"x": 1}, {"y": 1})

    def test_arrays(self):
        t = {"w": np.ones((2, 2))}
        out = tree_map(np.sum, t)
        assert out == {"w": 4.0}


class TestStructure:
    def test_leaves(self):
        assert tree_leaves([1, {"a": 2}, (3,)]) == [1, 2, 3]

    def test_structure_equality(self):
        assert tree_structure({"a": 1}) == tree_structure({"a": 99})
        assert tree_structure([1]) != tree_structure((1,))
