"""Gradient correctness: every differentiable op against finite differences."""

import numpy as np
import pytest

from repro import ir
from repro.ir import nn, ops
from tests.helpers import check_grads, rng


def _f32(*shape, seed=0):
    return rng(seed).randn(*shape).astype(np.float32)


class TestElementwiseGrads:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: ops.add(x, 2.0).sum(),
            lambda x: ops.sub(3.0, x).sum(),
            lambda x: ops.mul(x, x).sum(),
            lambda x: ops.div(x, 2.5).sum(),
            lambda x: ops.neg(x).sum(),
            lambda x: ops.tanh(x).sum(),
            lambda x: ops.exp(x).sum(),
            lambda x: ops.sin(x).sum(),
            lambda x: ops.cos(x).sum(),
            lambda x: ops.pow(x, 2.0).sum(),
        ],
    )
    def test_unary_like(self, fn):
        check_grads(fn, [_f32(3, 2, seed=1)])

    def test_log_sqrt(self):
        x = np.abs(_f32(4, seed=2)) + 0.5
        check_grads(lambda x: ops.log(x).sum(), [x])
        check_grads(lambda x: ops.sqrt(x).sum(), [x])

    def test_erf(self):
        check_grads(lambda x: ops.erf(x).sum(), [_f32(4, seed=3)])

    def test_abs_away_from_zero(self):
        x = _f32(4, seed=4)
        x = np.where(np.abs(x) < 0.2, 0.5, x).astype(np.float32)
        check_grads(lambda x: ops.abs_(x).sum(), [x])

    def test_maximum_both_args(self):
        x, y = _f32(5, seed=5), _f32(5, seed=6)
        check_grads(lambda x, y: ops.maximum(x, y).sum(), [x, y], argnum=0)
        check_grads(lambda x, y: ops.maximum(x, y).sum(), [x, y], argnum=1)

    def test_minimum(self):
        x, y = _f32(5, seed=7), _f32(5, seed=8)
        check_grads(lambda x, y: ops.minimum(x, y).sum(), [x, y], argnum=0)

    def test_where(self):
        c = rng(9).rand(4) > 0.5
        x, y = _f32(4, seed=10), _f32(4, seed=11)
        check_grads(lambda x, y: ops.where(c, x, y).sum(), [x, y], argnum=0)
        check_grads(lambda x, y: ops.where(c, x, y).sum(), [x, y], argnum=1)

    def test_mul_broadcast_unbroadcast(self):
        x, y = _f32(4, 3, seed=12), _f32(3, seed=13)
        check_grads(lambda x, y: ops.mul(x, y).sum(), [x, y], argnum=1)

    def test_div_wrt_denominator(self):
        x = _f32(4, seed=14)
        y = np.abs(_f32(4, seed=15)) + 0.5
        check_grads(lambda x, y: ops.div(x, y).sum(), [x, y], argnum=1)


class TestStructuralGrads:
    def test_matmul_both(self):
        x, y = _f32(3, 4, seed=16), _f32(4, 2, seed=17)
        check_grads(lambda x, y: ops.matmul(x, y).sum(), [x, y], argnum=0)
        check_grads(lambda x, y: ops.matmul(x, y).sum(), [x, y], argnum=1)

    def test_matmul_batched_broadcast(self):
        x, y = _f32(2, 3, 4, seed=18), _f32(4, 2, seed=19)
        check_grads(lambda x, y: (ops.matmul(x, y) ** 2.0).sum(), [x, y], argnum=1)

    def test_reshape_transpose(self):
        x = _f32(2, 6, seed=20)
        check_grads(lambda x: ops.reduce_sum(ops.reshape(x, (3, 4)), 0).sum(), [x])
        check_grads(lambda x: (ops.transpose(x) ** 2.0).sum(), [x])

    def test_broadcast_to(self):
        x = _f32(1, 3, seed=21)
        check_grads(lambda x: (ops.broadcast_to(x, (4, 3)) ** 2.0).sum(), [x])

    def test_concatenate(self):
        x, y = _f32(2, 3, seed=22), _f32(4, 3, seed=23)
        check_grads(lambda x, y: (ops.concatenate([x, y], 0) ** 2.0).sum(), [x, y], argnum=0)
        check_grads(lambda x, y: (ops.concatenate([x, y], 0) ** 2.0).sum(), [x, y], argnum=1)

    def test_slice_unslice(self):
        x = _f32(5, 4, seed=24)
        check_grads(lambda x: (ops.slice_(x, (1, 0), (4, 2)) ** 2.0).sum(), [x])
        g = _f32(2, 2, seed=25)
        check_grads(lambda g: (ops.unslice(g, (4, 4), (1, 1)) ** 2.0).sum(), [g])

    def test_take_scatter(self):
        x = _f32(6, 3, seed=26)
        idx = np.array([0, 2, 2, 5], np.int32)
        check_grads(lambda x: (ops.take(x, idx) ** 2.0).sum(), [x])

    def test_reduce_sum_keepdims(self):
        x = _f32(3, 4, seed=27)
        check_grads(lambda x: (ops.reduce_sum(x, 1, keepdims=True) ** 2.0).sum(), [x])

    def test_reduce_max(self):
        x = _f32(3, 4, seed=28)
        check_grads(lambda x: ops.reduce_max(x, 1).sum(), [x])

    def test_mean(self):
        x = _f32(3, 4, seed=29)
        check_grads(lambda x: (ops.mean(x, 0) ** 2.0).sum(), [x])

    def test_stop_gradient_blocks(self):
        x = _f32(3, seed=30)
        _, g = ir.value_and_grad(lambda x: (ops.stop_gradient(x) * x).sum())(x)
        np.testing.assert_allclose(g, x, rtol=1e-6)  # only the non-stopped path


class TestApi:
    def test_value_and_grad_value(self):
        x = _f32(3, seed=31)
        v, g = ir.value_and_grad(lambda x: (x ** 2.0).sum())(x)
        np.testing.assert_allclose(v, (x ** 2).sum(), rtol=1e-6)
        np.testing.assert_allclose(g, 2 * x, rtol=1e-5)

    def test_grad_pytree(self):
        params = {"w": _f32(3, 2, seed=32), "b": _f32(2, seed=33)}
        x = _f32(4, 3, seed=34)

        def loss(p, x):
            return ((ops.matmul(x, p["w"]) + p["b"]) ** 2.0).sum()

        g = ir.grad(loss)(params, x)
        assert set(g.keys()) == {"w", "b"}
        check_grads(loss, [params, x], argnum=0)

    def test_argnums_tuple(self):
        x, y = _f32(3, seed=35), _f32(3, seed=36)
        _, (gx, gy) = ir.value_and_grad(lambda x, y: (x * y).sum(), argnums=(0, 1))(x, y)
        np.testing.assert_allclose(gx, y, rtol=1e-6)
        np.testing.assert_allclose(gy, x, rtol=1e-6)

    def test_has_aux(self):
        x = _f32(3, seed=37)

        def f(x):
            return (x ** 2.0).sum(), {"norm": ops.abs_(x).sum()}

        (loss, aux), g = ir.value_and_grad(f, has_aux=True)(x)
        assert "norm" in aux
        np.testing.assert_allclose(g, 2 * x, rtol=1e-5)

    def test_grad_wrapper(self):
        x = _f32(3, seed=38)
        g = ir.grad(lambda x: (x ** 2.0).sum())(x)
        np.testing.assert_allclose(g, 2 * x, rtol=1e-5)

    def test_unused_input_zero_grad(self):
        x, y = _f32(3, seed=39), _f32(2, seed=40)
        _, (gx, gy) = ir.value_and_grad(lambda x, y: (x ** 2.0).sum(), argnums=(0, 1))(x, y)
        np.testing.assert_allclose(gy, np.zeros_like(y))

    def test_nonscalar_loss_rejected(self):
        with pytest.raises(TypeError):
            ir.value_and_grad(lambda x: x)(_f32(3))

    def test_int_loss_rejected(self):
        with pytest.raises(TypeError):
            ir.value_and_grad(lambda x: ops.convert(x.sum(), ir.int32))(_f32(3))

    def test_grad_under_trace_inlines(self):
        # value_and_grad used inside a traced function must splice fwd+bwd
        # equations into the outer jaxpr (the Figure 3 mechanism).
        x = _f32(3, seed=41)

        def train_step(x):
            loss, g = ir.value_and_grad(lambda x: (x ** 2.0).sum())(x)
            return ops.sub(x, ops.mul(0.1, g))

        jaxpr, _, _ = ir.trace(train_step, x)
        ir.validate(jaxpr)
        out = ir.eval_jaxpr(jaxpr, [x])[0]
        np.testing.assert_allclose(out, x - 0.1 * 2 * x, rtol=1e-5)

    def test_second_order_not_needed_but_composes_eagerly(self):
        # grad of a function that itself calls grad (different variables).
        x = _f32(3, seed=42)

        def inner(y):
            return (y ** 2.0).sum()

        def outer(x):
            g = ir.grad(inner)(x)
            return (g * x).sum()  # = sum(2x * x)

        check_grads(outer, [x])


class TestNNGrads:
    def test_relu(self):
        x = _f32(4, 3, seed=43) + 0.05
        check_grads(lambda x: nn.relu(x).sum(), [x])

    def test_gelu_both(self):
        x = _f32(4, seed=44)
        check_grads(lambda x: nn.gelu(x, approximate=True).sum(), [x])
        check_grads(lambda x: nn.gelu(x, approximate=False).sum(), [x])

    def test_softmax_rows_sum_one(self):
        x = _f32(3, 5, seed=45)
        s = nn.softmax(x)
        np.testing.assert_allclose(s.sum(-1), np.ones(3), rtol=1e-6)
        check_grads(lambda x: (nn.softmax(x) ** 2.0).sum(), [x])

    def test_log_softmax_grad(self):
        x = _f32(3, 5, seed=46)
        check_grads(lambda x: (nn.log_softmax(x) * 0.1).sum(), [x])

    def test_cross_entropy_matches_manual(self):
        logits = _f32(4, 6, seed=47)
        labels = np.array([0, 2, 5, 1], np.int32)
        onehot = np.eye(6, dtype=np.float32)[labels]
        loss = nn.softmax_cross_entropy(logits, onehot)
        ref = -np.take_along_axis(
            logits - np.log(np.exp(logits).sum(-1, keepdims=True)), labels[:, None], 1
        )[:, 0]
        np.testing.assert_allclose(loss, ref, rtol=1e-5)
        check_grads(lambda l: nn.softmax_cross_entropy(l, onehot).sum(), [logits])

    def test_layer_norm(self):
        x = _f32(4, 8, seed=48)
        gamma, beta = np.ones(8, np.float32), np.zeros(8, np.float32)
        out = nn.layer_norm(x, gamma, beta)
        np.testing.assert_allclose(out.mean(-1), np.zeros(4), atol=1e-5)
        check_grads(lambda x: (nn.layer_norm(x, gamma, beta) ** 2.0).sum(), [x])
        check_grads(lambda g: (nn.layer_norm(x, g, beta) ** 2.0).sum(), [gamma])

    def test_rms_norm(self):
        x = _f32(4, 8, seed=49)
        gamma = np.ones(8, np.float32)
        check_grads(lambda x: (nn.rms_norm(x, gamma) ** 2.0).sum(), [x])

    def test_one_hot(self):
        labels = np.array([0, 2, 1], np.int32)
        np.testing.assert_array_equal(nn.one_hot(labels, 3), np.eye(3, dtype=np.float32)[labels])

    def test_label_smoothing(self):
        onehot = np.eye(4, dtype=np.float32)[[1, 2]]
        sm = nn.label_smoothing(onehot, 0.1, 4)
        np.testing.assert_allclose(sm.sum(-1), np.ones(2), rtol=1e-6)
        assert sm.min() == pytest.approx(0.025)

    def test_causal_mask(self):
        m = nn.causal_mask(4)
        assert m[0, 1] < -1e8 and m[1, 0] == 0.0 and m[2, 2] == 0.0

    def test_silu_sigmoid(self):
        x = _f32(5, seed=50)
        np.testing.assert_allclose(nn.sigmoid(x), 1 / (1 + np.exp(-x)), rtol=1e-5)
        check_grads(lambda x: nn.silu(x).sum(), [x])
