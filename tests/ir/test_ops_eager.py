"""Eager-mode numerical tests: every op against its NumPy reference."""

import numpy as np
import pytest
from scipy import special

from repro.ir import dtypes, ops
from tests.helpers import rng


def _f32(*shape, seed=0):
    return rng(seed).randn(*shape).astype(np.float32)


class TestBinaryOps:
    @pytest.mark.parametrize(
        "op,ref",
        [
            (ops.add, np.add),
            (ops.sub, np.subtract),
            (ops.mul, np.multiply),
            (ops.div, np.divide),
            (ops.maximum, np.maximum),
            (ops.minimum, np.minimum),
        ],
    )
    def test_arith(self, op, ref):
        x, y = _f32(3, 4, seed=1), _f32(3, 4, seed=2)
        np.testing.assert_allclose(op(x, y), ref(x, y), rtol=1e-6)

    def test_broadcasting(self):
        x, y = _f32(3, 1), _f32(1, 4)
        np.testing.assert_allclose(ops.add(x, y), x + y)

    def test_scalar_lift(self):
        x = _f32(2, 2)
        np.testing.assert_allclose(ops.mul(x, 3.0), x * 3.0)

    def test_pow(self):
        x = np.abs(_f32(3)) + 0.1
        np.testing.assert_allclose(ops.pow(x, 2.0), x ** 2.0, rtol=1e-6)

    @pytest.mark.parametrize(
        "op,ref",
        [
            (ops.greater, np.greater),
            (ops.greater_equal, np.greater_equal),
            (ops.less, np.less),
            (ops.less_equal, np.less_equal),
            (ops.equal, np.equal),
            (ops.not_equal, np.not_equal),
        ],
    )
    def test_comparisons_bool(self, op, ref):
        x = np.array([1.0, 2.0, 3.0], np.float32)
        y = np.array([2.0, 2.0, 2.0], np.float32)
        out = op(x, y)
        assert out.dtype == np.bool_
        np.testing.assert_array_equal(out, ref(x, y))


class TestUnaryOps:
    @pytest.mark.parametrize(
        "op,ref",
        [
            (ops.neg, np.negative),
            (ops.exp, np.exp),
            (ops.tanh, np.tanh),
            (ops.sin, np.sin),
            (ops.cos, np.cos),
            (ops.abs_, np.abs),
            (ops.sign, np.sign),
            (ops.erf, special.erf),
        ],
    )
    def test_unary(self, op, ref):
        x = _f32(4, 3, seed=3)
        np.testing.assert_allclose(op(x), ref(x), rtol=1e-5, atol=1e-6)

    def test_log_sqrt_positive(self):
        x = np.abs(_f32(5, seed=4)) + 0.5
        np.testing.assert_allclose(ops.log(x), np.log(x), rtol=1e-6)
        np.testing.assert_allclose(ops.sqrt(x), np.sqrt(x), rtol=1e-6)
        np.testing.assert_allclose(ops.rsqrt(x), 1 / np.sqrt(x), rtol=1e-5)

    def test_where(self):
        c = np.array([True, False, True])
        x, y = _f32(3, seed=5), _f32(3, seed=6)
        np.testing.assert_allclose(ops.where(c, x, y), np.where(c, x, y))

    def test_convert(self):
        x = _f32(3)
        out = ops.convert(x, dtypes.int32)
        assert out.dtype == np.int32

    def test_stop_gradient_identity(self):
        x = _f32(3)
        np.testing.assert_array_equal(ops.stop_gradient(x), x)


class TestMatmul:
    def test_2d(self):
        x, y = _f32(3, 4, seed=7), _f32(4, 5, seed=8)
        np.testing.assert_allclose(ops.matmul(x, y), x @ y, rtol=1e-5)

    def test_batched(self):
        x, y = _f32(2, 3, 4, seed=9), _f32(2, 4, 5, seed=10)
        np.testing.assert_allclose(ops.matmul(x, y), x @ y, rtol=1e-5)

    def test_batch_broadcast(self):
        x, y = _f32(2, 3, 4, seed=11), _f32(4, 5, seed=12)
        np.testing.assert_allclose(ops.matmul(x, y), x @ y, rtol=1e-5)

    def test_contraction_mismatch(self):
        with pytest.raises(ValueError):
            ops.matmul(_f32(3, 4), _f32(5, 6))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            ops.matmul(_f32(4), _f32(4, 2))


class TestShapeOps:
    def test_reshape(self):
        x = _f32(2, 6)
        np.testing.assert_array_equal(ops.reshape(x, (3, 4)), x.reshape(3, 4))

    def test_reshape_minus_one(self):
        x = _f32(2, 6)
        assert ops.reshape(x, (4, -1)).shape == (4, 3)

    def test_reshape_bad_size(self):
        with pytest.raises(ValueError):
            ops.reshape(_f32(2, 3), (4, 4))

    def test_transpose(self):
        x = _f32(2, 3, 4)
        np.testing.assert_array_equal(ops.transpose(x, (2, 0, 1)), x.transpose(2, 0, 1))
        np.testing.assert_array_equal(ops.transpose(x), x.T)

    def test_broadcast_to(self):
        x = _f32(1, 3)
        np.testing.assert_array_equal(ops.broadcast_to(x, (4, 3)), np.broadcast_to(x, (4, 3)))

    def test_expand_squeeze(self):
        x = _f32(3, 4)
        e = ops.expand_dims(x, 1)
        assert e.shape == (3, 1, 4)
        np.testing.assert_array_equal(ops.squeeze(e, 1), x)

    def test_squeeze_non_unit_raises(self):
        with pytest.raises(ValueError):
            ops.squeeze(_f32(3, 4), 0)

    def test_concatenate(self):
        x, y = _f32(2, 3, seed=1), _f32(4, 3, seed=2)
        np.testing.assert_array_equal(ops.concatenate([x, y], 0), np.concatenate([x, y], 0))

    def test_concatenate_single(self):
        x = _f32(2, 2)
        assert ops.concatenate([x], 0) is x

    def test_slice(self):
        x = _f32(4, 6)
        np.testing.assert_array_equal(ops.slice_(x, (1, 2), (3, 5)), x[1:3, 2:5])

    def test_slice_bad_bounds(self):
        with pytest.raises(ValueError):
            ops.slice_(_f32(3, 3), (0, 0), (4, 3))

    def test_unslice_roundtrip(self):
        g = _f32(2, 3)
        out = ops.unslice(g, (4, 6), (1, 2))
        assert out.shape == (4, 6)
        np.testing.assert_array_equal(out[1:3, 2:5], g)
        assert out.sum() == pytest.approx(g.sum(), rel=1e-5)

    def test_iota(self):
        np.testing.assert_array_equal(ops.iota(5), np.arange(5, dtype=np.int32))


class TestGatherScatter:
    def test_take_rows(self):
        x = _f32(10, 4)
        idx = np.array([3, 3, 0], np.int32)
        np.testing.assert_array_equal(ops.take(x, idx), x[idx])

    def test_take_2d_indices(self):
        x = _f32(10, 4)
        idx = np.array([[1, 2], [3, 4]], np.int32)
        assert ops.take(x, idx).shape == (2, 2, 4)

    def test_take_rejects_float_indices(self):
        with pytest.raises(ValueError):
            ops.take(_f32(4, 2), _f32(3))

    def test_scatter_add_accumulates_duplicates(self):
        idx = np.array([1, 1, 0], np.int32)
        upd = np.ones((3, 2), np.float32)
        out = ops.scatter_add(idx, upd, (4, 2))
        np.testing.assert_array_equal(out[1], [2.0, 2.0])
        np.testing.assert_array_equal(out[0], [1.0, 1.0])
        np.testing.assert_array_equal(out[2], [0.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        x = _f32(3, 4)
        np.testing.assert_allclose(ops.reduce_sum(x), x.sum(), rtol=1e-6)

    def test_sum_axis_keepdims(self):
        x = _f32(3, 4)
        np.testing.assert_allclose(ops.reduce_sum(x, 0, keepdims=True), x.sum(0, keepdims=True), rtol=1e-6)

    def test_sum_negative_axis(self):
        x = _f32(3, 4)
        np.testing.assert_allclose(ops.reduce_sum(x, -1), x.sum(-1), rtol=1e-6)

    def test_max(self):
        x = _f32(3, 4)
        np.testing.assert_allclose(ops.reduce_max(x, 1), x.max(1))

    def test_mean(self):
        x = _f32(3, 4)
        np.testing.assert_allclose(ops.mean(x, 0), x.mean(0), rtol=1e-6)


class TestGetitemHelpers:
    def test_shape_of(self):
        assert ops.shape_of(np.zeros((2, 3))) == (2, 3)
        assert ops.shape_of(1.0) == ()

    def test_unbroadcast_identity(self):
        x = _f32(3, 4)
        assert ops.unbroadcast(x, (3, 4)) is x

    def test_unbroadcast_sums(self):
        g = np.ones((5, 3, 4), np.float32)
        out = ops.unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        np.testing.assert_allclose(out, np.full((3, 1), 20.0))
