"""Tests for the pipeline_yield stage-marking primitive."""

import numpy as np

from repro import ir
from repro.ir import ops, pipeline_yield
from repro.ir.pipeline import BWD, FWD
from tests.helpers import check_grads, rng


def _f32(*shape, seed=0):
    return rng(seed).randn(*shape).astype(np.float32)


def _yields(jaxpr):
    return [e for e in jaxpr.eqns if e.prim.name == "pipeline_yield"]


class TestEagerSemantics:
    def test_identity_outside_trace(self):
        x = _f32(3)
        assert pipeline_yield(x) is x

    def test_pytree_identity(self):
        t = {"a": _f32(2), "b": (_f32(3),)}
        out = pipeline_yield(t)
        assert out["a"] is t["a"]


class TestMarkers:
    def test_indices_assigned_in_call_order(self):
        def f(x):
            a = pipeline_yield(ops.mul(x, 2.0))
            b = pipeline_yield(ops.add(a, 1.0))
            return b.sum()

        jaxpr, _, _ = ir.trace(f, _f32(3))
        ys = _yields(jaxpr)
        assert [y.params["index"] for y in ys] == [0, 1]
        assert all(y.params["direction"] == FWD for y in ys)

    def test_pytree_leaves_share_index(self):
        def f(x):
            pair = pipeline_yield((ops.mul(x, 2.0), ops.mul(x, 3.0)))
            return ops.add(pair[0], pair[1]).sum()

        jaxpr, _, _ = ir.trace(f, _f32(3))
        ys = _yields(jaxpr)
        assert len(ys) == 2
        assert ys[0].params["index"] == ys[1].params["index"] == 0

    def test_backward_markers_mirror_forward(self):
        def loss(w, x):
            h = pipeline_yield(ops.matmul(x, w))
            h = pipeline_yield(ops.tanh(h))
            return (h ** 2.0).sum()

        w, x = _f32(3, 3, seed=1), _f32(2, 3, seed=2)
        jaxpr, _, _ = ir.trace(lambda w, x: ir.value_and_grad(loss)(w, x), w, x)
        ys = _yields(jaxpr)
        fwd = [y.params["index"] for y in ys if y.params["direction"] == FWD]
        bwd = [y.params["index"] for y in ys if y.params["direction"] == BWD]
        assert fwd == [0, 1]
        assert bwd == [1, 0]  # reverse order

    def test_gradient_value_unaffected_by_yields(self):
        def plain(w, x):
            h = ops.matmul(x, w)
            h = ops.tanh(h)
            return (h ** 2.0).sum()

        def marked(w, x):
            h = pipeline_yield(ops.matmul(x, w))
            h = pipeline_yield(ops.tanh(h))
            return (h ** 2.0).sum()

        w, x = _f32(3, 3, seed=3), _f32(2, 3, seed=4)
        _, g0 = ir.value_and_grad(plain)(w, x)
        _, g1 = ir.value_and_grad(marked)(w, x)
        np.testing.assert_allclose(g0, g1, rtol=1e-6)
        check_grads(marked, [w, x])

    def test_multiple_grad_calls_restart_indices(self):
        def loss(w, x):
            return pipeline_yield(ops.matmul(x, w)).sum()

        w, x = _f32(2, 2, seed=5), _f32(2, 2, seed=6)

        def step(w, x):
            _, g1 = ir.value_and_grad(loss)(w, x)
            _, g2 = ir.value_and_grad(loss)(w, x)
            return ops.add(g1, g2).sum()

        jaxpr, _, _ = ir.trace(step, w, x)
        idxs = [y.params["index"] for y in _yields(jaxpr) if y.params["direction"] == FWD]
        # each value_and_grad call traces in a fresh sub-trace: indices restart
        assert idxs == [0, 0]
