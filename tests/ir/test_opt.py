"""Unit tests for the algebraic optimizer (:mod:`repro.ir.opt`).

The local pipeline (CSE / identity elision / DCE / level-2
reassociation) is checked eqn-by-eqn on handcrafted jaxprs; the
cross-stage sweep (:func:`optimize_split`) on real ``split_stages``
outputs.  End-to-end bit-identity of optimized compiled steps lives in
``tests/core/test_opt_backend.py`` — here we pin the *structural*
contract: what each rewrite may remove, what it must preserve.
"""

import dataclasses

import numpy as np
import pytest

from repro import ir
from repro.core.stage_split import SplitResult, split_stages
from repro.ir import nn, ops, pipeline_yield
from repro.ir.jaxpr import Eqn, Jaxpr, Var, validate
from repro.ir.opt import (
    OPT_LEVELS,
    OptReport,
    default_matmul_price,
    normalize_opt_level,
    optimize_jaxpr,
    optimize_split,
    used_invars,
)
from tests.helpers import rng


def _f32(*shape, seed=0):
    return rng(seed).randn(*shape).astype(np.float32)


class TestNormalizeOptLevel:
    def test_bools(self):
        assert normalize_opt_level(True) == 1
        assert normalize_opt_level(False) == 0

    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_explicit_levels(self, level):
        assert normalize_opt_level(level) == level

    @pytest.mark.parametrize("bad", [-1, 3, 7])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError, match="optimize"):
            normalize_opt_level(bad)

    def test_bad_level_rejected_by_optimize_jaxpr(self):
        jaxpr, _, _ = ir.trace(lambda x: ops.add(x, 1.0), _f32(2))
        with pytest.raises(ValueError, match="opt level"):
            optimize_jaxpr(jaxpr, 5)


class TestCSE:
    def test_duplicate_subexpression_merged(self):
        def f(x, y):
            a = ops.tanh(ops.matmul(x, y))
            b = ops.tanh(ops.matmul(x, y))
            return ops.add(a, b)

        x, y = _f32(3, 4, seed=1), _f32(4, 4, seed=2)
        jaxpr, _, _ = ir.trace(f, x, y)
        out, stats = optimize_jaxpr(jaxpr)
        assert stats.cse_removed == 2  # one matmul + one tanh
        assert out.n_eqns == jaxpr.n_eqns - 2
        np.testing.assert_array_equal(
            ir.eval_jaxpr(jaxpr, [x, y])[0], ir.eval_jaxpr(out, [x, y])[0]
        )

    def test_commutative_operands_canonicalized(self):
        def f(x, y):
            return ops.sub(ops.add(x, y), ops.add(y, x))

        x, y = _f32(3, seed=1), _f32(3, seed=2)
        jaxpr, _, _ = ir.trace(f, x, y)
        out, stats = optimize_jaxpr(jaxpr)
        assert stats.cse_removed == 1
        np.testing.assert_array_equal(
            ir.eval_jaxpr(out, [x, y])[0], np.zeros(3, np.float32)
        )

    def test_noncommutative_not_merged(self):
        def f(x, y):
            return ops.add(ops.sub(x, y), ops.sub(y, x))

        jaxpr, _, _ = ir.trace(f, _f32(3, seed=1), _f32(3, seed=2))
        _, stats = optimize_jaxpr(jaxpr)
        assert stats.cse_removed == 0

    def test_small_literals_merge_by_value(self):
        def f(x):
            return ops.add(ops.mul(x, 2.0), ops.mul(x, 2.0))

        x = _f32(3)
        jaxpr, _, _ = ir.trace(f, x)
        out, stats = optimize_jaxpr(jaxpr)
        assert stats.cse_removed == 1
        np.testing.assert_array_equal(
            ir.eval_jaxpr(jaxpr, [x])[0], ir.eval_jaxpr(out, [x])[0]
        )

    def test_identity_elision_stop_gradient(self):
        def f(x):
            return ops.add(ops.stop_gradient(x), ops.stop_gradient(x))

        x = _f32(3)
        jaxpr, _, _ = ir.trace(f, x)
        out, stats = optimize_jaxpr(jaxpr)
        assert stats.identity_elided == 2
        assert [e.prim.name for e in out.eqns] == ["add"]
        np.testing.assert_array_equal(
            ir.eval_jaxpr(out, [x])[0], (x + x).astype(np.float32)
        )

    def test_pipeline_yield_elided(self):
        def f(x):
            return ops.mul(pipeline_yield(x), 3.0)

        jaxpr, _, _ = ir.trace(f, _f32(3))
        out, stats = optimize_jaxpr(jaxpr)
        assert stats.identity_elided == 1
        assert all(e.prim.name != "pipeline_yield" for e in out.eqns)

    def test_level_zero_is_a_noop(self):
        def f(x):
            return ops.add(ops.tanh(x), ops.tanh(x))

        jaxpr, _, _ = ir.trace(f, _f32(3))
        out, stats = optimize_jaxpr(jaxpr, 0)
        assert out is jaxpr
        assert stats.removed == 0


class TestDCE:
    def test_dead_chain_removed(self):
        # build the dead chain by hand: the tracer's own DCE would never
        # record it, but optimize_split creates exactly this shape when a
        # boundary output is pruned
        x = Var(ir.ShapedArray((3,), ir.float32))
        live = Var(ir.ShapedArray((3,), ir.float32))
        d1 = Var(ir.ShapedArray((3,), ir.float32))
        d2 = Var(ir.ShapedArray((3,), ir.float32))
        jaxpr = Jaxpr(
            [x],
            [
                Eqn(ops.tanh_p, [x], [live], {}),
                Eqn(ops.mul_p, [x, x], [d1], {}),
                Eqn(ops.add_p, [d1, x], [d2], {}),
            ],
            [live],
        )
        validate(jaxpr)
        out, stats = optimize_jaxpr(jaxpr)
        assert stats.dce_removed == 2
        assert [e.prim.name for e in out.eqns] == ["tanh"]

    def test_used_invars_mask(self):
        x = Var(ir.ShapedArray((3,), ir.float32))
        unused = Var(ir.ShapedArray((3,), ir.float32))
        y = Var(ir.ShapedArray((3,), ir.float32))
        jaxpr = Jaxpr([x, unused], [Eqn(ops.tanh_p, [x], [y], {})], [y])
        assert used_invars(jaxpr) == [True, False]


class TestLevel2Reassociation:
    def test_transpose_transpose_aliases_to_source(self):
        def f(x):
            return ops.add(ops.transpose(ops.transpose(x)), 1.0)

        x = _f32(3, 4)
        jaxpr, _, _ = ir.trace(f, x)
        out, stats = optimize_jaxpr(jaxpr, 2)
        assert stats.reassociated >= 1
        assert all(e.prim.name != "transpose" for e in out.eqns)
        np.testing.assert_array_equal(
            ir.eval_jaxpr(out, [x])[0], (x + 1.0).astype(np.float32)
        )

    def test_matmul_chain_reassociated_when_cheaper(self):
        # (x @ y) @ z with a tall x and skinny z: right association
        # contracts y @ z first, saving ~20x the FLOPs — the kernel
        # price must prefer it
        def f(x, y, z):
            return ops.matmul(ops.matmul(x, y), z)

        x, y, z = _f32(128, 64, seed=1), _f32(64, 64, seed=2), _f32(64, 2, seed=3)
        jaxpr, _, _ = ir.trace(f, x, y, z)
        out, stats = optimize_jaxpr(jaxpr, 2)
        assert stats.reassociated == 1
        # still two matmuls, but the first now contracts y @ z
        mm = [e for e in out.eqns if e.prim.name == "matmul"]
        assert len(mm) == 2
        assert mm[0].outvars[0].aval.shape == (64, 2)
        np.testing.assert_allclose(
            ir.eval_jaxpr(out, [x, y, z])[0],
            ir.eval_jaxpr(jaxpr, [x, y, z])[0],
            rtol=1e-4, atol=1e-5,
        )

    def test_matmul_chain_kept_when_not_cheaper(self):
        # fat x: left association is already optimal
        def f(x, y, z):
            return ops.matmul(ops.matmul(x, y), z)

        jaxpr, _, _ = ir.trace(
            f, _f32(64, 2, seed=1), _f32(2, 2, seed=2), _f32(2, 64, seed=3)
        )
        _, stats = optimize_jaxpr(jaxpr, 2)
        assert stats.reassociated == 0

    def test_level_1_never_reassociates(self):
        def f(x, y, z):
            return ops.matmul(ops.matmul(x, y), z)

        jaxpr, _, _ = ir.trace(
            f, _f32(128, 64, seed=1), _f32(64, 64, seed=2), _f32(64, 2, seed=3)
        )
        _, stats = optimize_jaxpr(jaxpr, 1)
        assert stats.reassociated == 0

    def test_price_is_monotone_with_dispatch_floor(self):
        price = default_matmul_price()
        assert price(0.0) > 0.0  # dispatch overhead
        assert price(1e9) < price(2e9)


# -- the cross-stage sweep over a real SplitResult --------------------------


def _mlp_split(n_stages=3, d=8, mbsz=4, dup_yield=False):
    """Stage-split fwd+bwd body of an MLP; optionally yield h twice so the
    producer's boundary carries a duplicated output."""
    r = rng(0)
    params = {
        f"w{i}": (r.randn(d, d) * 0.4).astype(np.float32)
        for i in range(n_stages)
    }
    X = r.randn(mbsz, d).astype(np.float32)
    Y = r.randn(mbsz, d).astype(np.float32)

    def loss_fn(p, x, y):
        h = x
        for i in range(n_stages):
            w = p[f"w{i}"]
            h = nn.relu(ops.matmul(h, w)) if i < n_stages - 1 else ops.matmul(h, w)
            if i < n_stages - 1:
                if dup_yield and i == 0:
                    h = ops.add(pipeline_yield(h), pipeline_yield(h))
                    h = ops.mul(h, 0.5)
                else:
                    h = pipeline_yield(h)
        return ops.mean((h - y) ** 2.0)

    def body(p, x, y):
        loss, grads = ir.value_and_grad(loss_fn)(p, x, y)
        return grads, loss

    jaxpr, _, _ = ir.trace(body, params, X, Y)
    return split_stages(jaxpr), len(params) + 2  # n leaves incl. x, y


class TestOptimizeSplit:
    def test_level0_preserves_everything(self):
        split, _ = _mlp_split()
        opt = optimize_split(split, n_batch=2, n_mbs=4, level=0)
        assert opt.split is split
        assert not opt.prologues and not opt.memo_vars and not opt.memo_boundary
        assert opt.report.level == 0
        assert opt.report.eqns_before == opt.report.eqns_after

    def test_bad_level_rejected(self):
        split, _ = _mlp_split()
        with pytest.raises(ValueError, match="opt level"):
            optimize_split(split, n_batch=2, n_mbs=4, level=9)

    def test_rewritten_tasks_validate_and_shrink(self):
        split, _ = _mlp_split()
        opt = optimize_split(split, n_batch=2, n_mbs=4)
        assert opt.report.eqns_after < opt.report.eqns_before
        for task in opt.split.tasks:
            validate(task.jaxpr)
            assert len(task.in_atoms) == len(task.jaxpr.invars)
        # task identity/ordering metadata untouched
        assert [t.index for t in opt.split.tasks] == [
            t.index for t in split.tasks
        ]
        assert [t.kind for t in opt.split.tasks] == [t.kind for t in split.tasks]

    def test_backward_weight_transposes_hoisted(self):
        # x and y are microbatched; the w transposes in the backward
        # depend only on captured weights, so every bwd task gets a
        # prologue and its pseudo in_atoms land in memo_vars
        split, _ = _mlp_split()
        opt = optimize_split(split, n_batch=2, n_mbs=4)
        assert opt.prologues
        body_invar_pos = {id(v): k for k, v in enumerate(split.body.invars)}
        for t_idx, pro in opt.prologues.items():
            validate(pro.jaxpr)
            assert len(pro.in_atoms) == len(pro.jaxpr.invars)
            assert len(pro.out_vars) == len(pro.jaxpr.outvars)
            # prologue inputs are loop-invariant body invars (weights):
            # positions at/after n_batch in the body signature
            for a in pro.in_atoms:
                assert body_invar_pos[id(a)] >= 2
            for j, pv in enumerate(pro.out_vars):
                if pv is not None:
                    assert opt.memo_vars[id(pv)] == (t_idx, j)
        # every memo pseudo var appears in exactly one task's in_atoms
        pseudo_uses = {
            id(a)
            for t in opt.split.tasks
            for a in t.in_atoms
            if id(a) in opt.memo_vars
        }
        assert pseudo_uses == set(opt.memo_vars)

    def test_memoization_gated_on_n_mbs(self):
        split, _ = _mlp_split()
        opt = optimize_split(split, n_batch=2, n_mbs=1)
        assert not opt.prologues
        assert not opt.memo_vars

    def test_duplicate_yield_dedupes_boundary(self):
        split, _ = _mlp_split(dup_yield=True)
        opt = optimize_split(split, n_batch=2, n_mbs=4)
        entry = next(
            e for e in opt.report.tasks if e.kind == "fwd" and e.stage == 0
        )
        assert entry.outputs_deduped >= 1
        assert entry.boundary_bytes_after < entry.boundary_bytes_before
        assert any(t_idx == entry.index for _, t_idx, _ in opt.out_aliases)
        # the aliased body var resolves to a surviving out position
        task = opt.split.tasks[entry.index]
        for _, t_idx, pos in opt.out_aliases:
            assert 0 <= pos < len(opt.split.tasks[t_idx].out_vars)
        assert task.out_vars  # dedup never empties the boundary

    def test_dead_boundary_output_pruned_with_its_chain(self):
        # splice a dead escaping output into the stage-0 forward: an
        # extra eqn chain ending in a boundary var nobody consumes.  The
        # reverse sweep must prune the output and DCE the chain.
        split, _ = _mlp_split()
        t_idx = split.fwd_task_of_stage[0]
        task = split.tasks[t_idx]
        src = task.jaxpr.outvars[0]
        dead_local = Var(src.aval)
        dead_body = Var(src.aval)
        jaxpr = Jaxpr(
            task.jaxpr.invars,
            list(task.jaxpr.eqns) + [Eqn(ops.mul_p, [src, src], [dead_local], {})],
            list(task.jaxpr.outvars) + [dead_local],
        )
        validate(jaxpr)
        tasks = list(split.tasks)
        tasks[t_idx] = dataclasses.replace(
            task, jaxpr=jaxpr, out_vars=list(task.out_vars) + [dead_body]
        )
        split = SplitResult(
            tasks=tasks,
            n_stages=split.n_stages,
            fwd_task_of_stage=dict(split.fwd_task_of_stage),
            bwd_task_of_stage=dict(split.bwd_task_of_stage),
            assignment=dict(split.assignment),
            body=split.body,
        )
        opt = optimize_split(split, n_batch=2, n_mbs=4)
        entry = next(e for e in opt.report.tasks if e.index == t_idx)
        assert entry.outputs_pruned == 1
        assert entry.boundary_bytes_after < entry.boundary_bytes_before
        new_task = opt.split.tasks[t_idx]
        assert all(v is not dead_body for v in new_task.out_vars)
        assert all(
            v is not dead_local
            for e in new_task.jaxpr.eqns
            for v in e.outvars
        )

    def test_report_summary_and_stage_reduction(self):
        split, _ = _mlp_split()
        opt = optimize_split(split, n_batch=2, n_mbs=4)
        text = opt.report.summary()
        assert "opt_level=1" in text
        assert f"{opt.report.eqns_before} -> {opt.report.eqns_after}" in text
        red = opt.report.stage_eqn_reduction()
        assert set(red) == set(range(split.n_stages))
        assert all(0.0 <= r < 1.0 for r in red.values())

    def test_report_is_a_fresh_object_per_call(self):
        split, _ = _mlp_split()
        a = optimize_split(split, n_batch=2, n_mbs=4).report
        b = optimize_split(split, n_batch=2, n_mbs=4).report
        assert isinstance(a, OptReport) and a is not b
        assert a.eqns_after == b.eqns_after
