"""Fuzz the MPMD executor with random-but-valid instruction programs.

Property: any program generated from a random task DAG with §4.2-style
send/recv placement (a) executes without deadlock in both comm modes,
(b) produces values identical to a sequential reference evaluation, and
(c) ends with exactly the undeleted buffers live.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    BufferRef,
    CommMode,
    Delete,
    LinearCost,
    MpmdExecutor,
    Recv,
    RunTask,
    Send,
)


def build_random_program(seed: int, n_actors: int, n_tasks: int):
    """Random DAG: task t (on a random actor) sums a random subset of
    earlier tasks' outputs plus its own constant."""
    r = np.random.RandomState(seed)
    actor_of = [int(r.randint(n_actors)) for _ in range(n_tasks)]
    deps = [sorted(r.choice(t, size=min(t, r.randint(0, 3)), replace=False).tolist())
            if t else [] for t in range(n_tasks)]
    consts = [float(r.randn()) for _ in range(n_tasks)]

    programs = [[] for _ in range(n_actors)]
    # one pass in topological (index) order, sends right after production
    consumers = {t: [] for t in range(n_tasks)}
    for t, ds in enumerate(deps):
        for d in ds:
            consumers[d].append(t)

    for t in range(n_tasks):
        a = actor_of[t]
        in_refs = [BufferRef(f"v{d}") for d in deps[t]]

        def fn(vals, c=consts[t]):
            return [np.float64(c) + sum(vals)]

        programs[a].append(RunTask(f"t{t}", in_refs, [BufferRef(f"v{t}")], fn=fn,
                                   cost=0.001, meta={"out_nbytes": [8]}))
        sent = set()
        for c in consumers[t]:
            dst = actor_of[c]
            if dst != a and dst not in sent:
                sent.add(dst)
                programs[a].append(Send(BufferRef(f"v{t}"), dst, f"v{t}"))
                programs[dst].append(Recv(BufferRef(f"v{t}"), a, f"v{t}", 8))

    # reference values
    ref = {}
    for t in range(n_tasks):
        ref[t] = consts[t] + sum(ref[d] for d in deps[t])
    return programs, actor_of, ref


class TestExecutorFuzz:
    @given(
        seed=st.integers(0, 10_000),
        n_actors=st.integers(2, 5),
        n_tasks=st.integers(3, 25),
        mode=st.sampled_from([CommMode.ASYNC, CommMode.SYNC]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_dags_execute_exactly(self, seed, n_actors, n_tasks, mode):
        programs, actor_of, ref = build_random_program(seed, n_actors, n_tasks)
        ex = MpmdExecutor(n_actors, cost_model=LinearCost(p2p_latency=0.01), comm_mode=mode)
        res = ex.execute(programs)
        for t, want in ref.items():
            got = ex.fetch(actor_of[t], BufferRef(f"v{t}"))
            assert got == np.float64(0) + want or abs(got - want) < 1e-9
        assert res.makespan >= 0.001 * max(
            sum(1 for a in actor_of if a == k) for k in range(n_actors)
        ) - 1e-12

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_deletions_never_break_execution(self, seed):
        programs, actor_of, ref = build_random_program(seed, 3, 12)
        # append a Delete after the last instruction touching each buffer
        for prog in programs:
            last_use = {}
            for i, instr in enumerate(prog):
                if isinstance(instr, RunTask):
                    for rf in instr.in_refs + instr.out_refs:
                        last_use[rf.uid] = i
                elif isinstance(instr, (Send, Recv)):
                    last_use[instr.ref.uid] = i
            out = []
            for i, instr in enumerate(prog):
                out.append(instr)
                for uid, k in last_use.items():
                    if k == i:
                        out.append(Delete(BufferRef(uid)))
            prog[:] = out
        ex = MpmdExecutor(3, comm_mode=CommMode.ASYNC)
        ex.execute(programs)
        # everything reclaimed
        for store in ex.stores:
            assert store.bytes_in_use == 0
            assert not store.pending_deletions
