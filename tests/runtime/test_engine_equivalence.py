"""Differential tests: the event-driven engine must reproduce the
round-robin reference engine's results exactly.

Both engines share the instruction interpreter, so this suite pins down
the part that differs — scheduling and wake-up order: randomized
instruction streams (the fuzz generators), deletion-heavy programs, the
full numeric compile path for every schedule family, and data-parallel
all-reduce rendezvous must all produce identical ``ExecutionResult``s
(makespan, timeline, p2p counts) and identical object-store contents.

Also covers the event engine's structural guarantees: zero re-polls
(every wake-up is for a changed resource) and the wait-for-graph deadlock
diagnostics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import core, ir
from repro.runtime import (
    BufferRef,
    CommMode,
    DeadlockError,
    Delete,
    LinearCost,
    MpmdExecutor,
    Recv,
    RunTask,
    Send,
)
from tests.runtime.test_executor_fuzz import build_random_program

B = BufferRef


def run_both(n_actors, programs_builder, mode=CommMode.ASYNC, cost_model=None):
    """Execute fresh copies of a program under both engines."""
    results = {}
    for engine in ("event", "roundrobin"):
        ex = MpmdExecutor(n_actors, cost_model=cost_model, comm_mode=mode, engine=engine)
        results[engine] = (ex, ex.execute(programs_builder()))
    return results


def assert_identical(results):
    (ex_a, res_a), (ex_b, res_b) = results["event"], results["roundrobin"]
    assert res_a.makespan == res_b.makespan
    assert res_a.actor_finish == res_b.actor_finish
    assert res_a.p2p_bytes == res_b.p2p_bytes
    assert res_a.p2p_count == res_b.p2p_count
    assert res_a.timeline == res_b.timeline
    for store_a, store_b in zip(ex_a.stores, ex_b.stores):
        assert store_a.live_refs() == store_b.live_refs()
        assert store_a.bytes_in_use == store_b.bytes_in_use
        assert store_a.pending_deletions == store_b.pending_deletions
        for uid in store_a.live_refs():
            va = store_a.get(B(uid)).value
            vb = store_b.get(B(uid)).value
            assert np.array_equal(np.asarray(va), np.asarray(vb)) or (va is None and vb is None)
    return res_a, res_b


class TestRandomizedEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        n_actors=st.integers(2, 5),
        n_tasks=st.integers(3, 25),
        mode=st.sampled_from([CommMode.ASYNC, CommMode.SYNC]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_dags_identical(self, seed, n_actors, n_tasks, mode):
        def build():
            programs, _, _ = build_random_program(seed, n_actors, n_tasks)
            return programs

        results = run_both(
            n_actors, build, mode=mode, cost_model=LinearCost(p2p_latency=0.01)
        )
        res_a, _ = assert_identical(results)
        # the event engine never re-polls an unchanged wait condition
        assert res_a.repolls == 0

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=30, deadline=None)
    def test_deletion_heavy_programs_identical(self, seed):
        def build():
            programs, _, _ = build_random_program(seed, 3, 14)
            for prog in programs:
                last_use = {}
                for i, instr in enumerate(prog):
                    if isinstance(instr, RunTask):
                        for rf in instr.in_refs + instr.out_refs:
                            last_use[rf.uid] = i
                    elif isinstance(instr, (Send, Recv)):
                        last_use[instr.ref.uid] = i
                out = []
                for i, instr in enumerate(prog):
                    out.append(instr)
                    for uid, k in last_use.items():
                        if k == i:
                            out.append(Delete(B(uid)))
                prog[:] = out
            return programs

        results = run_both(3, build, mode=CommMode.ASYNC)
        assert_identical(results)
        for ex, _ in results.values():
            for store in ex.stores:
                assert store.bytes_in_use == 0
                assert not store.pending_deletions

    @given(seed=st.integers(0, 2_000), mode=st.sampled_from([CommMode.ASYNC, CommMode.SYNC]))
    @settings(max_examples=20, deadline=None)
    def test_values_match_sequential_reference(self, seed, mode):
        programs, actor_of, ref = build_random_program(seed, 4, 18)
        ex = MpmdExecutor(4, comm_mode=mode, engine="event")
        ex.execute(programs)
        for t, want in ref.items():
            got = ex.fetch(actor_of[t], B(f"v{t}"))
            assert abs(got - want) < 1e-9


def _mlp_problem(n_stages=4, n_mbs=8, mbsz=4, d=8):
    from repro.models import init_mlp, mlp_loss

    params = init_mlp(np.random.RandomState(0), n_stages, d, d, d)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(lambda p, m: mlp_loss(p, m, n_stages))(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: w - 0.05 * g, params, grads)
        return new, losses

    r = np.random.RandomState(1)
    batch = (
        r.randn(n_mbs, mbsz, d).astype(np.float32),
        r.randn(n_mbs, mbsz, d).astype(np.float32),
    )
    return train_step, params, batch


SCHEDULES = [
    core.GPipe(4),
    core.OneFOneB(4),
    core.Eager1F1B(4),
    core.ZBH1(4),
    core.Interleaved1F1B(2, 2),
]


class TestCompiledEquivalence:
    @pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.name)
    def test_numeric_step_identical_across_engines(self, schedule):
        train_step, params, batch = _mlp_problem()
        outs = {}
        for engine in ("event", "roundrobin"):
            mesh = core.RemoteMesh((schedule.n_actors,), engine=engine)
            step = mesh.distributed(train_step, schedule=schedule)
            outs[engine] = (step(params, batch), step.last_result)
        (p_a, l_a), res_a = outs["event"]
        (p_b, l_b), res_b = outs["roundrobin"]
        for k in p_a:
            np.testing.assert_array_equal(p_a[k], p_b[k])
        np.testing.assert_array_equal(l_a, l_b)
        assert res_a.makespan == res_b.makespan
        assert res_a.timeline == res_b.timeline
        assert res_a.p2p_count == res_b.p2p_count
        assert res_a.repolls == 0

    def test_data_parallel_allreduce_identical(self):
        train_step, params, batch = _mlp_problem(n_stages=2, mbsz=4)
        outs = {}
        for engine in ("event", "roundrobin"):
            mesh = core.RemoteMesh((2, 2), engine=engine)
            step = mesh.distributed(train_step, schedule=core.OneFOneB(2))
            outs[engine] = (step(params, batch), step.last_result)
        (p_a, _), res_a = outs["event"]
        (p_b, _), res_b = outs["roundrobin"]
        for k in p_a:
            np.testing.assert_array_equal(p_a[k], p_b[k])
        assert res_a.timeline == res_b.timeline


class TestDeadlockDiagnostics:
    def _cross_send_programs(self):
        def const(v):
            return lambda vals: [np.asarray(v)]

        return [
            [
                RunTask("a", [], [B("x")], fn=const(1.0)),
                Send(B("x"), 1, "x"),
                Recv(B("y"), 1, "y", 8),
            ],
            [
                RunTask("b", [], [B("y")], fn=const(2.0)),
                Send(B("y"), 0, "y"),
                Recv(B("x"), 0, "x", 8),
            ],
        ]

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_sync_cross_send_cycle_reported(self, engine):
        ex = MpmdExecutor(2, comm_mode=CommMode.SYNC, engine=engine)
        with pytest.raises(DeadlockError) as exc:
            ex.execute(self._cross_send_programs())
        msg = str(exc.value)
        # both stuck actors, their blocking channels, and the cycle
        assert "actor 0 stuck at" in msg and "actor 1 stuck at" in msg
        assert "channel 0->1" in msg and "channel 1->0" in msg
        assert "wait-for cycle" in msg

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_missing_buffer_named(self, engine):
        ex = MpmdExecutor(1, engine=engine)
        with pytest.raises(DeadlockError) as exc:
            ex.execute([[RunTask("a", [B("ghost")], [B("y")], fn=lambda v: v)]])
        msg = str(exc.value)
        assert "buffer 'ghost'" in msg

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_unmatched_recv_names_sender(self, engine):
        # a recv whose sender never posts: the wait-for edge points at the
        # posted recv's source actor
        ex = MpmdExecutor(2, comm_mode=CommMode.ASYNC, engine=engine)
        progs = [
            [Recv(B("x"), 1, "x", 8), RunTask("use", [B("x")], [B("z")], fn=lambda v: v)],
            [],
        ]
        with pytest.raises(DeadlockError) as exc:
            ex.execute(progs)
        assert "buffer 'x'" in str(exc.value)

    def test_allreduce_rendezvous_reported(self):
        from repro.runtime import AllReduce

        def const(v):
            return lambda vals: [np.asarray(v)]

        ex = MpmdExecutor(2, engine="event")
        progs = [
            [RunTask("a", [], [B("g")], fn=const(1.0)), AllReduce(B("g"), (0, 1), "k")],
            [],  # actor 1 never joins
        ]
        with pytest.raises(DeadlockError) as exc:
            ex.execute(progs)
        msg = str(exc.value)
        assert "rendezvous 'k'" in msg and "missing actors [1]" in msg
