"""Differential tests: the event-driven engine must reproduce the
round-robin reference engine's results exactly.

Both engines share the instruction interpreter, so this suite pins down
the part that differs — scheduling and wake-up order: randomized
instruction streams (the fuzz generators), deletion-heavy programs, the
full numeric compile path for every schedule family, and data-parallel
all-reduce rendezvous must all produce identical ``ExecutionResult``s
(makespan, timeline, p2p counts) and identical object-store contents.

Also covers the event engine's structural guarantees: zero re-polls
(every wake-up is for a changed resource) and the wait-for-graph deadlock
diagnostics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import core, ir
from repro.runtime import (
    BufferRef,
    CommMode,
    DeadlockError,
    Delete,
    LinearCost,
    MpmdExecutor,
    Recv,
    RunTask,
    Send,
)
from tests.runtime.test_executor_fuzz import build_random_program

B = BufferRef


def run_both(n_actors, programs_builder, mode=CommMode.ASYNC, cost_model=None):
    """Execute fresh copies of a program under both engines."""
    results = {}
    for engine in ("event", "roundrobin"):
        ex = MpmdExecutor(n_actors, cost_model=cost_model, comm_mode=mode, engine=engine)
        results[engine] = (ex, ex.execute(programs_builder()))
    return results


def assert_identical(results):
    (ex_a, res_a), (ex_b, res_b) = results["event"], results["roundrobin"]
    assert res_a.makespan == res_b.makespan
    assert res_a.actor_finish == res_b.actor_finish
    assert res_a.p2p_bytes == res_b.p2p_bytes
    assert res_a.p2p_count == res_b.p2p_count
    assert res_a.timeline == res_b.timeline
    for store_a, store_b in zip(ex_a.stores, ex_b.stores):
        assert store_a.live_refs() == store_b.live_refs()
        assert store_a.bytes_in_use == store_b.bytes_in_use
        assert store_a.pending_deletions == store_b.pending_deletions
        for uid in store_a.live_refs():
            va = store_a.get(B(uid)).value
            vb = store_b.get(B(uid)).value
            assert np.array_equal(np.asarray(va), np.asarray(vb)) or (va is None and vb is None)
    return res_a, res_b


class TestRandomizedEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        n_actors=st.integers(2, 5),
        n_tasks=st.integers(3, 25),
        mode=st.sampled_from([CommMode.ASYNC, CommMode.SYNC]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_dags_identical(self, seed, n_actors, n_tasks, mode):
        def build():
            programs, _, _ = build_random_program(seed, n_actors, n_tasks)
            return programs

        results = run_both(
            n_actors, build, mode=mode, cost_model=LinearCost(p2p_latency=0.01)
        )
        res_a, _ = assert_identical(results)
        # the event engine never re-polls an unchanged wait condition
        assert res_a.repolls == 0

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=30, deadline=None)
    def test_deletion_heavy_programs_identical(self, seed):
        def build():
            programs, _, _ = build_random_program(seed, 3, 14)
            for prog in programs:
                last_use = {}
                for i, instr in enumerate(prog):
                    if isinstance(instr, RunTask):
                        for rf in instr.in_refs + instr.out_refs:
                            last_use[rf.uid] = i
                    elif isinstance(instr, (Send, Recv)):
                        last_use[instr.ref.uid] = i
                out = []
                for i, instr in enumerate(prog):
                    out.append(instr)
                    for uid, k in last_use.items():
                        if k == i:
                            out.append(Delete(B(uid)))
                prog[:] = out
            return programs

        results = run_both(3, build, mode=CommMode.ASYNC)
        assert_identical(results)
        for ex, _ in results.values():
            for store in ex.stores:
                assert store.bytes_in_use == 0
                assert not store.pending_deletions

    @given(seed=st.integers(0, 2_000), mode=st.sampled_from([CommMode.ASYNC, CommMode.SYNC]))
    @settings(max_examples=20, deadline=None)
    def test_values_match_sequential_reference(self, seed, mode):
        programs, actor_of, ref = build_random_program(seed, 4, 18)
        ex = MpmdExecutor(4, comm_mode=mode, engine="event")
        ex.execute(programs)
        for t, want in ref.items():
            got = ex.fetch(actor_of[t], B(f"v{t}"))
            assert abs(got - want) < 1e-9


def _mlp_problem(n_stages=4, n_mbs=8, mbsz=4, d=8):
    from repro.models import init_mlp, mlp_loss

    params = init_mlp(np.random.RandomState(0), n_stages, d, d, d)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(lambda p, m: mlp_loss(p, m, n_stages))(params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: w - 0.05 * g, params, grads)
        return new, losses

    r = np.random.RandomState(1)
    batch = (
        r.randn(n_mbs, mbsz, d).astype(np.float32),
        r.randn(n_mbs, mbsz, d).astype(np.float32),
    )
    return train_step, params, batch


SCHEDULES = [
    core.GPipe(4),
    core.OneFOneB(4),
    core.Eager1F1B(4),
    core.ZBH1(4),
    core.ZBH2(4),
    core.Interleaved1F1B(2, 2),
    core.LoopedBFS(2, 2),
    core.InterleavedZB(2, 2),
]


class TestCompiledEquivalence:
    @pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.name)
    def test_numeric_step_identical_across_engines(self, schedule):
        train_step, params, batch = _mlp_problem()
        outs = {}
        for engine in ("event", "roundrobin"):
            mesh = core.RemoteMesh((schedule.n_actors,), engine=engine)
            step = mesh.distributed(train_step, schedule=schedule)
            outs[engine] = (step(params, batch), step.last_result)
        (p_a, l_a), res_a = outs["event"]
        (p_b, l_b), res_b = outs["roundrobin"]
        for k in p_a:
            np.testing.assert_array_equal(p_a[k], p_b[k])
        np.testing.assert_array_equal(l_a, l_b)
        assert res_a.makespan == res_b.makespan
        assert res_a.timeline == res_b.timeline
        assert res_a.p2p_count == res_b.p2p_count
        assert res_a.repolls == 0

    @pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.name)
    @pytest.mark.parametrize("tie_break", ["fifo", "depth_first", "rank"])
    def test_tie_break_policies_identical(self, schedule, tie_break):
        """Every ready-queue tie-break must reproduce the round-robin
        reference bit-for-bit: execution is dataflow-deterministic, so the
        policy may only change scheduler visit patterns."""
        train_step, params, batch = _mlp_problem()
        mesh = core.RemoteMesh(
            (schedule.n_actors,), engine="event", tie_break=tie_break
        )
        step = mesh.distributed(train_step, schedule=schedule)
        (p_a, l_a) = step(params, batch)
        res_a = step.last_result

        ref_mesh = core.RemoteMesh((schedule.n_actors,), engine="roundrobin")
        ref_step = ref_mesh.distributed(train_step, schedule=schedule)
        (p_b, l_b) = ref_step(params, batch)
        res_b = ref_step.last_result

        for k in p_a:
            np.testing.assert_array_equal(p_a[k], p_b[k])
        np.testing.assert_array_equal(l_a, l_b)
        assert res_a.makespan == res_b.makespan
        assert res_a.timeline == res_b.timeline
        assert res_a.repolls == 0

    def test_unknown_tie_break_rejected(self):
        with pytest.raises(ValueError, match="tie_break"):
            MpmdExecutor(2, tie_break="lifo")
        with pytest.raises(ValueError, match="tie_break"):
            core.RemoteMesh((2,), tie_break="lifo")

    def test_data_parallel_allreduce_identical(self):
        train_step, params, batch = _mlp_problem(n_stages=2, mbsz=4)
        outs = {}
        for engine in ("event", "roundrobin"):
            mesh = core.RemoteMesh((2, 2), engine=engine)
            step = mesh.distributed(train_step, schedule=core.OneFOneB(2))
            outs[engine] = (step(params, batch), step.last_result)
        (p_a, _), res_a = outs["event"]
        (p_b, _), res_b = outs["roundrobin"]
        for k in p_a:
            np.testing.assert_array_equal(p_a[k], p_b[k])
        assert res_a.timeline == res_b.timeline


class TestDeadlockDiagnostics:
    def _cross_send_programs(self):
        def const(v):
            return lambda vals: [np.asarray(v)]

        return [
            [
                RunTask("a", [], [B("x")], fn=const(1.0)),
                Send(B("x"), 1, "x"),
                Recv(B("y"), 1, "y", 8),
            ],
            [
                RunTask("b", [], [B("y")], fn=const(2.0)),
                Send(B("y"), 0, "y"),
                Recv(B("x"), 0, "x", 8),
            ],
        ]

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_sync_cross_send_cycle_reported(self, engine):
        ex = MpmdExecutor(2, comm_mode=CommMode.SYNC, engine=engine)
        with pytest.raises(DeadlockError) as exc:
            ex.execute(self._cross_send_programs())
        msg = str(exc.value)
        # both stuck actors, their blocking channels, and the cycle
        assert "actor 0 stuck at" in msg and "actor 1 stuck at" in msg
        assert "channel 0->1" in msg and "channel 1->0" in msg
        assert "wait-for cycle" in msg

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_missing_buffer_named(self, engine):
        ex = MpmdExecutor(1, engine=engine)
        with pytest.raises(DeadlockError) as exc:
            ex.execute([[RunTask("a", [B("ghost")], [B("y")], fn=lambda v: v)]])
        msg = str(exc.value)
        assert "buffer 'ghost'" in msg

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_unmatched_recv_names_sender(self, engine):
        # a recv whose sender never posts: the wait-for edge points at the
        # posted recv's source actor
        ex = MpmdExecutor(2, comm_mode=CommMode.ASYNC, engine=engine)
        progs = [
            [Recv(B("x"), 1, "x", 8), RunTask("use", [B("x")], [B("z")], fn=lambda v: v)],
            [],
        ]
        with pytest.raises(DeadlockError) as exc:
            ex.execute(progs)
        assert "buffer 'x'" in str(exc.value)

    def test_allreduce_rendezvous_reported(self):
        from repro.runtime import AllReduce

        def const(v):
            return lambda vals: [np.asarray(v)]

        ex = MpmdExecutor(2, engine="event")
        progs = [
            [RunTask("a", [], [B("g")], fn=const(1.0)), AllReduce(B("g"), (0, 1), "k")],
            [],  # actor 1 never joins
        ]
        with pytest.raises(DeadlockError) as exc:
            ex.execute(progs)
        msg = str(exc.value)
        assert "rendezvous 'k'" in msg and "missing actors [1]" in msg


class TestWaitProfile:
    """The per-resource time-parked histogram on ExecutionResult."""

    def _producer_consumer(self, cost=3.0):
        """Consumer on actor 0 (polled first by both engines, so it
        genuinely parks), slow producer on actor 1."""

        def const(v):
            return lambda vals: [np.asarray(v)]

        return [
            [
                Recv(B("x"), 1, "x", 8),
                RunTask("use", [B("x")], [B("y")], fn=lambda v: v,
                        meta={"out_nbytes": [8]}),
            ],
            [
                RunTask("slow", [], [B("x")], fn=const(1.0), cost=cost,
                        meta={"out_nbytes": [8]}),
                Send(B("x"), 0, "x"),
            ],
        ]

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_parked_time_charged_to_buffer(self, engine):
        # actor 0 posts its recv at t=0 and its consuming task parks on
        # the buffer until the slow producer delivers at t=3
        ex = MpmdExecutor(2, cost_model=LinearCost(), comm_mode=CommMode.ASYNC,
                          engine=engine)
        res = ex.execute(self._producer_consumer(cost=3.0))
        assert "buffer a0:x" in res.wait_profile
        stat = res.wait_profile["buffer a0:x"]
        assert stat.count == 1
        assert stat.total == pytest.approx(3.0, abs=0.2)

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_sync_mode_charges_channels(self, engine):
        ex = MpmdExecutor(2, cost_model=LinearCost(p2p_latency=0.5),
                          comm_mode=CommMode.SYNC, engine=engine)
        res = ex.execute(self._producer_consumer(cost=2.0))
        # the receiver parks on the 1->0 channel until the send matches
        assert any(label == "channel 1->0" for label in res.wait_profile)
        assert all(s.total >= 0.0 and s.count > 0 for s in res.wait_profile.values())

    def test_top_waits_sorted_by_parked_time(self):
        ex = MpmdExecutor(2, cost_model=LinearCost(), engine="event")
        res = ex.execute(self._producer_consumer())
        top = res.top_waits(10)
        totals = [stat.total for _, stat in top]
        assert totals == sorted(totals, reverse=True)

    def test_no_waits_no_profile(self):
        ex = MpmdExecutor(1, engine="event")
        res = ex.execute([[RunTask("a", [], [B("x")], fn=lambda v: [1.0])]])
        assert res.wait_profile == {}
        assert res.parked_by_rank() == [0.0]

    @pytest.mark.parametrize("engine", ["event", "roundrobin"])
    def test_parked_by_rank_attributes_the_waiter(self, engine):
        # actor 0 is the one parked on the buffer; actor 1 never waits
        ex = MpmdExecutor(2, cost_model=LinearCost(), comm_mode=CommMode.ASYNC,
                          engine=engine)
        res = ex.execute(self._producer_consumer(cost=3.0))
        parked = res.parked_by_rank()
        assert parked[0] == pytest.approx(3.0, abs=0.2)
        assert parked[1] == 0.0
        # per-rank split sums back to the per-resource totals
        assert sum(parked) == pytest.approx(
            sum(s.total for s in res.wait_profile.values())
        )

    def test_compiled_step_exposes_profile(self):
        train_step, params, batch = _mlp_problem(n_stages=2, mbsz=4)
        from repro.runtime import LinearCost as LC

        mesh = core.RemoteMesh((2,), cost_model=LC(p2p_latency=0.01))
        step = mesh.distributed(train_step, schedule=core.OneFOneB(2),
                                cost_fn=lambda task: 0.01)
        step(params, batch)
        prof = step.last_result.wait_profile
        assert prof, "a real pipeline must park at least once"
        assert all(s.count > 0 and s.total >= 0.0 for s in prof.values())


class TestTieBreakRandomized:
    @given(
        seed=st.integers(0, 3_000),
        tie_break=st.sampled_from(["fifo", "depth_first", "rank"]),
        mode=st.sampled_from([CommMode.ASYNC, CommMode.SYNC]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_dags_identical_under_all_policies(self, seed, tie_break, mode):
        def build():
            programs, _, _ = build_random_program(seed, 4, 16)
            return programs

        results = {}
        for engine, tb in [("event", tie_break), ("roundrobin", "fifo")]:
            ex = MpmdExecutor(4, cost_model=LinearCost(p2p_latency=0.01),
                              comm_mode=mode, engine=engine, tie_break=tb)
            results[engine] = (ex, ex.execute(build()))
        assert_identical(results)
