"""Differential suite: ``engine="mp"`` (real OS processes) vs ``"event"``.

The process-per-rank backend must be *bit-identical* to the in-process
event engine for every schedule in the gallery — same losses, same
gradients, same dtypes — and a schedule that deadlocks must be *reported*
(watchdog path) rather than hanging the suite.  Every test in this module
runs under a hard SIGALRM timeout so a regression in the watchdog itself
can never wedge CI.

The tier-1 lane runs a small gallery subset (spawn start-up costs real
seconds per schedule); the full 10-schedule sweep and the heavier
scenarios carry the ``slow`` marker and run with the benchmarks lane.
"""

import signal

import numpy as np
import pytest

from repro import core, ir
from repro.runtime import (
    BufferRef,
    CommMismatchError,
    CommMode,
    DeadlockError,
    MpmdExecutor,
    Recv,
    RunTask,
    Send,
)
from tests.core.test_linear_backend import GALLERY, assert_bit_identical, make_problem

#: generous per-test wall-clock cap — far above any healthy run, far
#: below a wedged CI job (pytest-timeout is not available in this image).
HARD_TIMEOUT_S = 300

#: mp watchdog used by the happy-path tests (a healthy schedule never
#: goes silent this long; a regression fails fast instead of eating the
#: SIGALRM budget).
WATCHDOG_S = 60.0

SUBSET = [s for s in GALLERY if s.name in ("1F1B", "ZB-H1", "Interleaved(v=2)")]


@pytest.fixture(autouse=True)
def hard_timeout():
    def boom(signum, frame):  # pragma: no cover - only fires on regression
        raise TimeoutError(
            f"mp differential test exceeded the hard {HARD_TIMEOUT_S}s cap"
        )

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


def _run(schedule, engine, n_mbs=8, comm_mode=CommMode.ASYNC, **mesh_kw):
    ts, params, batch = make_problem(4, n_mbs=n_mbs)
    mesh = core.RemoteMesh(
        (schedule.n_actors,), comm_mode=comm_mode, engine=engine, **mesh_kw
    )
    step = mesh.distributed(ts, schedule=schedule)
    out = step(params, batch)
    return out, step


class TestGalleryEquivalence:
    @pytest.mark.parametrize("schedule", SUBSET, ids=lambda s: s.name)
    def test_subset_bit_identical(self, schedule):
        want, _ = _run(schedule, "event")
        got, step = _run(schedule, "mp", mp_watchdog_s=WATCHDOG_S)
        assert_bit_identical(want, got)
        assert step.last_result.engine == "mp"

    @pytest.mark.slow
    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_full_gallery_bit_identical(self, schedule):
        want, _ = _run(schedule, "event")
        got, step = _run(schedule, "mp", mp_watchdog_s=WATCHDOG_S)
        assert_bit_identical(want, got)

    @pytest.mark.slow
    def test_sync_mode_bit_identical(self):
        schedule = core.OneFOneB(4)
        want, _ = _run(schedule, "event", comm_mode=CommMode.SYNC)
        got, _ = _run(
            schedule, "mp", comm_mode=CommMode.SYNC, mp_watchdog_s=WATCHDOG_S
        )
        assert_bit_identical(want, got)

    def test_shared_memory_transport_bit_identical(self):
        """Forcing every ndarray through shared-memory segments changes
        the transport, never the data."""
        schedule = core.OneFOneB(4)
        want, _ = _run(schedule, "event")
        got, step = _run(
            schedule, "mp", mp_watchdog_s=WATCHDOG_S, mp_shm_threshold=1
        )
        assert_bit_identical(want, got)

    @pytest.mark.slow
    def test_data_parallel_bit_identical(self):
        """dp=2 exercises the barrier-backed all-reduce across replicas."""
        ts, params, batch = make_problem(2, n_mbs=4, mbsz=8)
        results = {}
        for engine in ("event", "mp"):
            mesh = core.RemoteMesh(
                (2, 2), engine=engine,
                **({"mp_watchdog_s": WATCHDOG_S} if engine == "mp" else {}),
            )
            results[engine] = mesh.distributed(ts, schedule=core.OneFOneB(2))(
                params, batch
            )
        assert_bit_identical(results["event"], results["mp"])


class TestMeasuredResult:
    def test_timeline_feeds_cost_model(self):
        """A measured mp run replays through ``CostModel.from_result`` —
        the measure → retune loop closes on a real execution."""
        from repro.core.autotune import CostModel, tune

        schedule = core.OneFOneB(4)
        _, step = _run(schedule, "mp", mp_watchdog_s=WATCHDOG_S)
        res = step.last_result
        assert res.makespan > 0.0
        measured = CostModel.from_result(res, n_stages=4)
        assert all(f > 0.0 for f in measured.fwd)
        assert all(b > 0.0 for b in measured.bwd)
        report = tune(measured, 4, 8)
        assert report.best.feasible

    def test_result_json_round_trip(self):
        from repro.core.autotune import CostModel

        _, step = _run(core.OneFOneB(4), "mp", mp_watchdog_s=WATCHDOG_S)
        res = step.last_result
        back = type(res).from_json(res.to_json())
        live = CostModel.from_result(res, n_stages=4)
        replayed = CostModel.from_result(back, n_stages=4)
        assert replayed.fwd == live.fwd
        assert replayed.bwd == live.bwd

    def test_wall_clock_timeline_renders(self):
        from repro.viz import render_timeline

        _, step = _run(core.OneFOneB(4), "mp", mp_watchdog_s=WATCHDOG_S)
        out = render_timeline(step.last_result, width=60)
        assert "actor 0" in out and "actor 3" in out


class TestDeadlockReporting:
    def test_misordered_channels_report_not_hang(self):
        """Figure 5's naive recv-before-use ordering under synchronous
        sends deadlocks across real processes; the watchdog reports it —
        with per-actor program counters — inside its timeout."""
        ts, params, batch = make_problem(3, n_mbs=4)
        mesh = core.RemoteMesh(
            (3,), engine="mp", comm_mode=CommMode.SYNC, mp_watchdog_s=3.0
        )
        step = mesh.distributed(
            ts, schedule=core.OneFOneB(3), comm_strategy="naive"
        )
        with pytest.raises(DeadlockError) as err:
            step(params, batch)
        msg = str(err.value)
        assert "watchdog" in msg
        assert "program counters" in msg
        assert "stuck at" in msg

    def test_event_engine_agrees_it_deadlocks(self):
        ts, params, batch = make_problem(3, n_mbs=4)
        mesh = core.RemoteMesh((3,), comm_mode=CommMode.SYNC)
        step = mesh.distributed(
            ts, schedule=core.OneFOneB(3), comm_strategy="naive"
        )
        with pytest.raises(DeadlockError):
            step(params, batch)


def _mk_vals(vals):
    a = np.arange(4, dtype=np.float32)
    return [a, a + 1]


def _use_vals(vals):
    return []


class TestChannelContract:
    def _mismatch_programs(self):
        progs = [
            [
                RunTask("mk", [], [BufferRef("x"), BufferRef("y")],
                        fn=_mk_vals, meta={"out_nbytes": [16, 16]}),
                Send(BufferRef("x"), 1, "first"),
                Send(BufferRef("y"), 1, "second"),
            ],
            [
                Recv(BufferRef("y"), 0, "second", 16),  # wrong order
                Recv(BufferRef("x"), 0, "first", 16),
                RunTask("use", [BufferRef("x"), BufferRef("y")], [],
                        fn=_use_vals, meta={"out_nbytes": []}),
            ],
        ]
        return progs

    def test_key_mismatch_surfaces_as_error(self):
        """Pairwise-FIFO matching pairs the k-th send with the k-th recv;
        disagreeing keys are the data corruption NCCL would produce, and
        both engines must refuse identically."""
        progs = self._mismatch_programs()
        for engine in ("event", "mp"):
            ex = MpmdExecutor(
                2, comm_mode=CommMode.SYNC, engine=engine, mp_watchdog_s=30.0
            )
            with pytest.raises(CommMismatchError, match="mismatch"):
                ex.execute(progs)

    def test_mp_rejects_cost_model(self):
        from repro.runtime import LinearCost

        with pytest.raises(ValueError, match="wall-clock"):
            MpmdExecutor(2, cost_model=LinearCost(), engine="mp")
        with pytest.raises(ValueError, match="wall-clock"):
            core.RemoteMesh((2,), engine="mp", cost_model=LinearCost())
