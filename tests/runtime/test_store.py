"""Object store tests: byte accounting, peaks, pinning, pending deletes."""

import pytest

from repro.runtime.instructions import BufferRef
from repro.runtime.store import ObjectStore


class TestObjectStore:
    def test_put_get(self):
        s = ObjectStore(0)
        s.put(BufferRef("a"), 42, 100)
        assert s.get(BufferRef("a")).value == 42
        assert s.bytes_in_use == 100

    def test_duplicate_put_rejected(self):
        s = ObjectStore(0)
        s.put(BufferRef("a"), 1, 10)
        with pytest.raises(KeyError):
            s.put(BufferRef("a"), 2, 10)

    def test_missing_get_is_loud(self):
        s = ObjectStore(3)
        with pytest.raises(KeyError, match="actor 3"):
            s.get(BufferRef("nope"))

    def test_delete_frees_bytes(self):
        s = ObjectStore(0)
        s.put(BufferRef("a"), 1, 100)
        s.put(BufferRef("b"), 2, 50)
        s.delete(BufferRef("a"))
        assert s.bytes_in_use == 50
        assert BufferRef("a") not in s

    def test_peak_tracking(self):
        s = ObjectStore(0)
        s.put(BufferRef("a"), 1, 100)
        s.put(BufferRef("b"), 2, 50)
        s.delete(BufferRef("a"))
        s.put(BufferRef("c"), 3, 20)
        assert s.peak_bytes == 150
        assert s.bytes_in_use == 70

    def test_pinned_delete_rejected(self):
        s = ObjectStore(0)
        s.put(BufferRef("w"), 1, 10, pinned=True)
        with pytest.raises(ValueError, match="pinned"):
            s.delete(BufferRef("w"))

    def test_update_adjusts_bytes(self):
        s = ObjectStore(0)
        s.put(BufferRef("a"), 1, 100)
        s.update(BufferRef("a"), 2, nbytes=300)
        assert s.bytes_in_use == 300
        assert s.get(BufferRef("a")).value == 2

    def test_update_without_nbytes(self):
        s = ObjectStore(0)
        s.put(BufferRef("a"), 1, 100)
        s.update(BufferRef("a"), 5)
        assert s.bytes_in_use == 100

    def test_live_refs(self):
        s = ObjectStore(0)
        s.put(BufferRef("b"), 1, 1)
        s.put(BufferRef("a"), 1, 1)
        assert s.live_refs() == ["a", "b"]

    def test_double_delete_is_loud(self):
        s = ObjectStore(0)
        s.put(BufferRef("a"), 1, 1)
        s.delete(BufferRef("a"))
        with pytest.raises(KeyError):
            s.delete(BufferRef("a"))
