"""Differential recovery suite: every path through the fault-tolerance
state machine, driven deterministically by :mod:`repro.runtime.faults`.

The headline contract is the issue's acceptance criterion: a 20-step
pooled training loop with a rank killed mid-run — snapshot, respawn,
restore, replay — finishes **bit-identical** to the same loop on the
in-process event engine, with the failure recorded as a typed
:class:`RankFailure`.  Around it, every fault kind exercises its own
recovery path (kill before/after, wedge, dead channel, delayed channel,
corrupt snapshot), the retry/lifetime budgets degrade to the exact
fail-fast behavior of a policy-less mesh, and the snapshot machinery
(cadence, pruning, async writes, private-dir cleanup) is pinned down on
the cheap event engine where no processes are needed.

Batches differ per step throughout, so a replay that picked the wrong
window entry could never pass the bit-identical check.
"""

import pathlib
import signal

import numpy as np
import pytest

from repro import core
from repro.models.checkpoint import CheckpointCorruptError, load_checkpoint
from repro.runtime import (
    CommMismatchError,
    CorruptCheckpoint,
    DeadlockError,
    DropMessage,
    FaultPlan,
    KillRank,
    RankFailure,
    RecoveryPolicy,
    ResilientMesh,
    ResilientStepFunction,
    WedgeRank,
    is_recoverable,
)
from repro.runtime.recovery import classify_failure
from tests.core.test_linear_backend import GALLERY, assert_bit_identical, make_problem

HARD_TIMEOUT_S = 300

WATCHDOG_S = 60.0

#: small watchdog for the deadlock-mediated faults (wedge, dead channel).
TRIP_WATCHDOG_S = 3.0


@pytest.fixture(autouse=True)
def hard_timeout():
    def boom(signum, frame):  # pragma: no cover - only fires on regression
        raise TimeoutError(
            f"recovery test exceeded the hard {HARD_TIMEOUT_S}s cap"
        )

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


def _batches(batch, n_steps):
    """Per-step batches (same shapes, different values): replay must pull
    the *right* batch from its window to stay bit-identical."""
    X, Y = batch
    return [(np.roll(X, s, axis=0), Y) for s in range(n_steps)]


def _loop(step, params, batches):
    losses = []
    for b in batches:
        params, loss = step(params, b)
        losses.append(loss)
    return params, losses


def _reference(ts, params, batches, schedule):
    """The uninterrupted event-engine run every recovery must match."""
    step = core.RemoteMesh((schedule.n_actors,)).distributed(ts, schedule=schedule)
    return _loop(step, params, batches)


def _recovering_mesh(plan, policy, schedule, watchdog_s=WATCHDOG_S):
    return core.RemoteMesh(
        (schedule.n_actors,),
        engine="mp",
        mp_watchdog_s=watchdog_s,
        recovery=policy,
        fault_plan=plan,
    )


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"snapshot_every": 0},
            {"keep": 0},
            {"max_retries": -1},
            {"give_up_after": -1},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_rejects_bad_budgets(self, kw):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kw)


class TestClassification:
    def test_recoverable_infrastructure_failures(self):
        assert is_recoverable(DeadlockError("mp pool watchdog: no progress"))
        assert is_recoverable(
            RuntimeError(
                "mp pool worker for actor 1 died without reporting (exitcode 137)"
            )
        )
        assert is_recoverable(RuntimeError("ActorPool is dead"))
        assert is_recoverable(RuntimeError("mp pool driver thread crashed: x"))

    def test_unrecoverable_program_failures(self):
        assert not is_recoverable(CommMismatchError("send/recv order mismatch"))
        assert not is_recoverable(RuntimeError("actor 0 raised ValueError: boom"))
        assert not is_recoverable(ValueError("boom"))

    def test_classify_kinds_and_ranks(self):
        kind, ranks = classify_failure(
            RuntimeError(
                "mp pool worker for actor 1 died without reporting (exitcode 137)"
            )
        )
        assert (kind, ranks) == ("crash", (1,))
        kind, ranks = classify_failure(
            DeadlockError("mp pool watchdog: actor 0 and actor 1 made no progress")
        )
        assert (kind, ranks) == ("deadlock", (0, 1))
        kind, ranks = classify_failure(RuntimeError("ActorPool is dead"))
        assert (kind, ranks) == ("pool", ())


class TestKillRecovery:
    def test_twenty_step_loop_survives_mid_run_kill(self):
        """The acceptance criterion: kill rank 1 before step 7 of a
        20-step pooled loop; the run recovers and stays bit-identical to
        the uninterrupted event-engine run."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 20)
        want = _reference(ts, params, batches, schedule)
        mesh = _recovering_mesh(
            FaultPlan(kill_rank=1, at_step=7),
            RecoveryPolicy(snapshot_every=2, keep=2),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            assert isinstance(step, ResilientStepFunction)
            got = _loop(step, params, batches)
            assert_bit_identical(want, got)
            assert step.recoveries == 1
            assert [f for f in step.failures] == [
                RankFailure(
                    step=7, attempt=1, kind="crash", ranks=(1,),
                    message=step.failures[0].message,
                )
            ]
            assert "died without reporting" in step.failures[0].message
            assert mesh._pool_generation == 2  # original + respawn
            assert step.snapshots_written == 10  # every 2nd of 20 steps
        finally:
            step.close()
            mesh.close()

    def test_kill_after_replays_completed_work(self):
        """``when="after"`` loses a step that fully executed — recovery
        must replay it, and the replay must produce the same result."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 10)
        want = _reference(ts, params, batches, schedule)
        mesh = _recovering_mesh(
            FaultPlan(kill_rank=0, at_step=4, when="after"),
            RecoveryPolicy(snapshot_every=3, keep=2),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            got = _loop(step, params, batches)
            assert_bit_identical(want, got)
            assert step.recoveries == 1
            assert step.failures[0].kind == "crash"
        finally:
            step.close()
            mesh.close()


class TestWatchdogRecovery:
    def test_wedged_worker_recovers(self):
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 8)
        want = _reference(ts, params, batches, schedule)
        mesh = _recovering_mesh(
            FaultPlan([WedgeRank(rank=1, at_step=3)]),
            RecoveryPolicy(snapshot_every=2, keep=2),
            schedule,
            watchdog_s=TRIP_WATCHDOG_S,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            got = _loop(step, params, batches)
            assert_bit_identical(want, got)
            assert step.recoveries == 1
            assert step.failures[0].kind == "deadlock"
        finally:
            step.close()
            mesh.close()

    def test_dead_channel_recovers(self):
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 8)
        want = _reference(ts, params, batches, schedule)
        mesh = _recovering_mesh(
            FaultPlan([DropMessage(rank=0, dst=1, at_step=3)]),
            RecoveryPolicy(snapshot_every=2, keep=2),
            schedule,
            watchdog_s=TRIP_WATCHDOG_S,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            got = _loop(step, params, batches)
            assert_bit_identical(want, got)
            assert step.recoveries == 1
            assert step.failures[0].kind == "deadlock"
        finally:
            step.close()
            mesh.close()


class TestSnapshotFaults:
    def test_restore_falls_back_past_corrupt_snapshot(self):
        """With ``snapshot_every=2`` the kill at step 5 restores from the
        step-4 snapshot (write #2) — which the plan corrupts.  Restore
        must fall back to the step-2 snapshot and replay three steps."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 10)
        want = _reference(ts, params, batches, schedule)
        mesh = _recovering_mesh(
            FaultPlan(
                [CorruptCheckpoint(at_snapshot=2, mode="scribble")],
                kill_rank=1,
                at_step=5,
            ),
            RecoveryPolicy(snapshot_every=2, keep=2),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            got = _loop(step, params, batches)
            assert_bit_identical(want, got)
            assert step.recoveries == 1
        finally:
            step.close()
            mesh.close()

    def test_no_loadable_snapshot_reraises_the_failure(self):
        """``keep=1`` plus a corrupt newest snapshot leaves nothing to
        restore from: the underlying crash re-raises."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = _recovering_mesh(
            FaultPlan(
                [CorruptCheckpoint(at_snapshot=2, mode="truncate")],
                kill_rank=1,
                at_step=5,
            ),
            RecoveryPolicy(snapshot_every=2, keep=1),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            with pytest.raises(RuntimeError, match="died without reporting"):
                _loop(step, params, _batches(batch, 10))
            assert step.recoveries == 0
            assert len(step.failures) == 1
        finally:
            step.close()
            mesh.close()


class TestBudgets:
    def test_fail_fast_without_recovery(self):
        """The acceptance criterion's other half: the same plan on a mesh
        *without* a policy fails fast with the PR 6 crash diagnostic."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = core.RemoteMesh(
            (2,), engine="mp", mp_watchdog_s=WATCHDOG_S,
            fault_plan=FaultPlan(kill_rank=1, at_step=7),
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            with pytest.raises(RuntimeError, match="died without reporting"):
                _loop(step, params, _batches(batch, 20))
        finally:
            mesh.close()

    def test_give_up_after_zero_disables_recovery(self):
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = _recovering_mesh(
            FaultPlan(kill_rank=1, at_step=2),
            RecoveryPolicy(give_up_after=0),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            with pytest.raises(RuntimeError, match="died without reporting"):
                _loop(step, params, _batches(batch, 5))
            assert step.recoveries == 0
            assert len(step.failures) == 1  # classified, then re-raised
        finally:
            step.close()
            mesh.close()

    def test_max_retries_exhaustion_reraises(self):
        """Kills armed in generations 0 and 1 make the same step fail
        twice; ``max_retries=1`` re-raises the second failure."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        plan = FaultPlan([
            KillRank(rank=1, at_step=2, generation=0),
            # after the respawn the retried step is the new pool's first
            # submission (snapshot_every=1: empty replay window)
            KillRank(rank=1, at_step=0, generation=1),
        ])
        mesh = _recovering_mesh(
            plan, RecoveryPolicy(snapshot_every=1, max_retries=1, give_up_after=10),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            with pytest.raises(RuntimeError, match="died without reporting"):
                _loop(step, params, _batches(batch, 5))
            assert [f.attempt for f in step.failures] == [1, 2]
            assert step.recoveries == 1  # first recovery completed, then died again
        finally:
            step.close()
            mesh.close()

    def test_lifetime_budget_spans_steps(self):
        """``give_up_after=1`` tolerates one failure across the whole run;
        a second failure at a later step re-raises even though its own
        per-step attempt budget is untouched."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        plan = FaultPlan([
            KillRank(rank=1, at_step=2, generation=0),
            # generation-1 submissions: retried step 2 is local 0, then
            # steps 3, 4, 5... — local 3 is driver step 5
            KillRank(rank=0, at_step=3, generation=1),
        ])
        mesh = _recovering_mesh(
            plan, RecoveryPolicy(snapshot_every=1, max_retries=2, give_up_after=1),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            with pytest.raises(RuntimeError, match="died without reporting"):
                _loop(step, params, _batches(batch, 8))
            assert [f.step for f in step.failures] == [2, 5]
            assert step.recoveries == 1
        finally:
            step.close()
            mesh.close()


class TestChaosBattery:
    def test_three_failures_three_recoveries(self):
        """Kill, kill-after, wedge in successive pool generations over a
        10-step loop — the loop survives all three and stays
        bit-identical (the ci ``recovery-chaos`` lane's core)."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 10)
        want = _reference(ts, params, batches, schedule)
        # snapshot_every=1 keeps the generation-local submission index
        # predictable: each respawned pool starts at the failed step
        plan = FaultPlan([
            KillRank(rank=1, at_step=3, generation=0),  # driver step 3
            KillRank(rank=0, at_step=2, generation=1, when="after"),  # step 5
            WedgeRank(rank=1, at_step=3, generation=2),  # driver step 8
        ])
        mesh = _recovering_mesh(
            plan,
            RecoveryPolicy(snapshot_every=1, keep=2, give_up_after=3),
            schedule,
            watchdog_s=TRIP_WATCHDOG_S,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            got = _loop(step, params, batches)
            assert_bit_identical(want, got)
            assert step.recoveries == 3
            assert [f.kind for f in step.failures] == ["crash", "crash", "deadlock"]
            assert [f.step for f in step.failures] == [3, 5, 8]
            assert mesh._pool_generation == 4
        finally:
            step.close()
            mesh.close()


class TestSnapshotMachinery:
    """Snapshot cadence/pruning/cleanup on the event engine — no
    processes, so these stay cheap even in the tier-1 lane."""

    def _event_step(self, policy, schedule=None, n=2):
        schedule = schedule or core.OneFOneB(n)
        ts, params, batch = make_problem(n, n_mbs=4)
        mesh = core.RemoteMesh((n,), recovery=policy)
        return mesh.distributed(ts, schedule=schedule), params, batch

    def test_recovery_is_transparent_on_a_healthy_run(self):
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 6)
        want = _reference(ts, params, batches, schedule)
        step, params2, _ = self._event_step(RecoveryPolicy(snapshot_every=2))
        got = _loop(step, params2, batches)
        assert_bit_identical(want, got)
        assert step.failures == [] and step.recoveries == 0
        step.close()

    def test_cadence_and_pruning(self, tmp_path):
        policy = RecoveryPolicy(
            snapshot_every=1, keep=2, snapshot_dir=tmp_path, snapshot_async=False
        )
        step, params, batch = self._event_step(policy)
        for b in _batches(batch, 5):
            params, _ = step(params, b)
        assert step.snapshots_written == 5
        on_disk = sorted(p.name for p in tmp_path.glob("snap-*.npz"))
        assert on_disk == ["snap-00000003.npz", "snap-00000004.npz"]
        # retained snapshots restore to exactly the states they named
        state = load_checkpoint(tmp_path / "snap-00000004.npz")
        assert sorted(state) == sorted(params)  # step-4 *input* state keys
        step.close()
        assert tmp_path.exists()  # explicit snapshot_dir is left alone

    def test_async_snapshots_join_on_close(self, tmp_path):
        policy = RecoveryPolicy(snapshot_every=1, keep=8, snapshot_dir=tmp_path)
        step, params, batch = self._event_step(policy)
        for b in _batches(batch, 3):
            params, _ = step(params, b)
        step.close()  # joins the in-flight writer thread
        assert len(list(tmp_path.glob("snap-*.npz"))) == 3
        for p in tmp_path.glob("snap-*.npz"):
            load_checkpoint(p)  # every joined write is complete + loadable

    def test_private_snapshot_dir_removed_on_close(self):
        step, params, batch = self._event_step(RecoveryPolicy())
        params, _ = step(params, (batch[0], batch[1]))
        private = step._dir
        assert private.exists()
        step.close()
        assert not private.exists()


class TestResilientMeshWrapper:
    def test_wraps_a_plain_mesh(self):
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        batches = _batches(batch, 4)
        want = _reference(ts, params, batches, schedule)
        rmesh = ResilientMesh(core.RemoteMesh((2,)), RecoveryPolicy())
        assert rmesh.n_actors == 2  # delegation
        step = rmesh.distributed(ts, schedule=schedule)
        assert isinstance(step, ResilientStepFunction)
        got = _loop(step, params, batches)
        assert_bit_identical(want, got)
        step.close()
        rmesh.close()

    def test_does_not_double_wrap(self):
        mesh = core.RemoteMesh((2,), recovery=RecoveryPolicy())
        rmesh = ResilientMesh(mesh, RecoveryPolicy())
        ts, _, _ = make_problem(2, n_mbs=4)
        step = rmesh.distributed(ts, schedule=core.OneFOneB(2))
        assert isinstance(step, ResilientStepFunction)
        assert not isinstance(step._inner, ResilientStepFunction)
        step.close()
        mesh.close()


@pytest.mark.slow
class TestGalleryRecovery:
    """Full-gallery differential lane: a mid-run kill recovers
    bit-identically under every schedule family (benchmarks/slow lane)."""

    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_kill_mid_run_bit_identical(self, schedule):
        ts, params, batch = make_problem(4, n_mbs=8)
        batches = _batches(batch, 6)
        want = _reference(ts, params, batches, schedule)
        mesh = _recovering_mesh(
            FaultPlan(kill_rank=1, at_step=2),
            RecoveryPolicy(snapshot_every=2, keep=2),
            schedule,
        )
        try:
            step = mesh.distributed(ts, schedule=schedule)
            got = _loop(step, params, batches)
            assert_bit_identical(want, got)
            assert step.recoveries == 1
        finally:
            step.close()
            mesh.close()
